// Ablation benchmarks for the design choices DESIGN.md calls out:
// the Postgres sampling shortcut, the RDF layout's column budget,
// reformulation memoization, UCQ-vs-USCQ factorization, and the
// materialized-view extension.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/cover"
	"repro/internal/engine"
	"repro/internal/lubm"
	"repro/internal/query"
	"repro/internal/reformulate"
	"repro/internal/search"
	"repro/internal/sqlexec"
	"repro/internal/sqlgen"
	"repro/internal/views"
)

// BenchmarkAblationSampling isolates the §6.3 estimation anomaly: GDL
// under the Postgres profile with and without the sampling shortcut on
// Q9 (whose reformulation has 300 arms). Without sampling the search
// costs more but picks the better cover.
func BenchmarkAblationSampling(b *testing.B) {
	env, _, _ := benchEnvs()
	ref := reformulate.New(env.TBox)
	q9 := lubm.Queries()[8]
	run := func(b *testing.B, sampled bool) {
		prof := engine.ProfilePostgres()
		if !sampled {
			prof.SampleThreshold = 0
		}
		est := &search.RDBMSEstimator{DB: env.DB, Profile: prof}
		for i := 0; i < b.N; i++ {
			res := search.GDL(q9, env.TBox, ref, est, search.Options{})
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	}
	b.Run("Q9/sampled-estimation", func(b *testing.B) { run(b, true) })
	b.Run("Q9/full-estimation", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationRDFSlots sweeps the RDF layout's hashed-column
// budget: more columns mean longer SQL per atom (the statement-length
// failure driver) and slower probes.
func BenchmarkAblationRDFSlots(b *testing.B) {
	u := reformulate.New(lubm.TBox())
	q3 := lubm.Queries()[2]
	ucq := u.MustReformulate(q3)
	for _, slots := range []int{6, 12, 24} {
		b.Run(fmt.Sprintf("slots=%d/sqlgen", slots), func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				size = len(sqlgen.UCQ(ucq, sqlgen.Options{Layout: engine.LayoutRDF, Slots: slots}))
			}
			b.ReportMetric(float64(size), "sql-bytes")
		})
	}
}

// BenchmarkAblationMemoization compares GDL with a shared (memoizing)
// Reformulator against a fresh one per cover estimate — the reuse that
// makes cover search affordable.
func BenchmarkAblationMemoization(b *testing.B) {
	env, _, _ := benchEnvs()
	q := lubm.Queries()[9] // Q10, 9 atoms
	est := &search.ExtEstimator{Model: env.A.Model}
	b.Run("memoized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ref := reformulate.New(env.TBox) // shared across the search
			res := search.GDL(q, env.TBox, ref, est, search.Options{})
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	})
	b.Run("unmemoized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Estimate every enumerated cover with a cold reformulator:
			// enumerate the same covers GDL's first round would.
			root := cover.RootCover(q, env.TBox)
			for f1 := 0; f1 < len(root.Frags); f1++ {
				for f2 := f1 + 1; f2 < len(root.Frags); f2++ {
					cold := reformulate.New(env.TBox)
					j, err := root.UnionFragments(f1, f2).ReformulateJUCQ(cold)
					if err != nil {
						b.Fatal(err)
					}
					est.EstimateJUCQ(j)
				}
			}
		}
	})
}

// BenchmarkAblationFactorization compares evaluating Q3's reformulation
// as a UCQ against the factorized USCQ ([33]'s finding that USCQs
// evaluate better).
func BenchmarkAblationFactorization(b *testing.B) {
	env, _, _ := benchEnvs()
	ref := reformulate.New(env.TBox)
	q3 := lubm.Queries()[2]
	ucq := ref.MustReformulate(q3)
	uscq := query.FactorizeUCQ(ucq)
	b.Run("ucq/160-arms", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			engine.EvaluateUCQ(ucq, env.DB, env.Profile)
		}
	})
	b.Run(fmt.Sprintf("uscq/%d-scqs", len(uscq.Disjuncts)), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			engine.EvaluateUSCQ(uscq, env.DB, env.Profile)
		}
	})
}

// BenchmarkAblationViews measures the §7 future-work extension:
// answering the A3–A6 star family with and without the materialized
// fragment-view cache.
func BenchmarkAblationViews(b *testing.B) {
	env, _, _ := benchEnvs()
	ref := reformulate.New(env.TBox)
	stars := lubm.StarQueries()
	b.Run("without-views", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range stars {
				c := cover.RootCover(q, env.TBox)
				j, err := c.ReformulateJUCQ(ref)
				if err != nil {
					b.Fatal(err)
				}
				engine.EvaluateJUCQ(j, env.DB, env.Profile)
			}
		}
	})
	b.Run("with-views", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mgr := views.NewManager(env.DB, env.Profile)
			for _, q := range stars {
				c := cover.RootCover(q, env.TBox)
				if _, err := mgr.AnswerCover(c, ref); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAblationSQLPath compares the engine's native JUCQ evaluation
// with the full SQL round-trip (generate text, parse, execute) — the
// overhead a driver-to-RDBMS hop adds on top of plan execution.
func BenchmarkAblationSQLPath(b *testing.B) {
	env, _, _ := benchEnvs()
	ref := reformulate.New(env.TBox)
	q3 := lubm.Queries()[2]
	c := cover.RootCover(q3, env.TBox)
	j, err := c.ReformulateJUCQ(ref)
	if err != nil {
		b.Fatal(err)
	}
	sql := sqlgen.JUCQ(j, sqlgen.Options{Layout: engine.LayoutSimple})
	b.Run("native", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			engine.EvaluateJUCQ(j, env.DB, env.Profile)
		}
	})
	b.Run("sql-roundtrip", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sqlexec.Exec(sql, env.DB); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationParallelUnion sweeps worker counts for the largest
// workload reformulation (Q9, 300 arms), through the parallel union
// operator.
func BenchmarkAblationParallelUnion(b *testing.B) {
	env, _, _ := benchEnvs()
	ref := reformulate.New(env.TBox)
	u := ref.MustReformulate(lubm.Queries()[8])
	plan := engine.PlanUCQ(u, env.DB, env.Profile)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				engine.Drain(engine.CompileUCQ(plan, env.DB, nil, workers))
			}
		})
	}
}

// BenchmarkAblationExecPath compares the executors on UCQ
// reformulations: the streaming batched operator pipeline (cold =
// compile per execution, warm = compiled tree re-executed, the serving
// mode) against the materialize-everything reference path. Run with
// -benchmem to see the allocation gap the streaming model exists for.
func BenchmarkAblationExecPath(b *testing.B) {
	env, _, _ := benchEnvs()
	ref := reformulate.New(env.TBox)
	for _, qi := range []int{2, 8} { // Q3 (160 arms), Q9 (300 arms)
		q := lubm.Queries()[qi]
		plan := engine.PlanUCQ(ref.MustReformulate(q), env.DB, env.Profile)
		b.Run(q.Name+"/streaming-cold", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				engine.ExecUCQ(plan, env.DB)
			}
		})
		b.Run(q.Name+"/streaming-warm", func(b *testing.B) {
			b.ReportAllocs()
			op := engine.CompileUCQ(plan, env.DB, nil, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				engine.Drain(op)
			}
		})
		b.Run(q.Name+"/materialized", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				engine.ExecUCQMaterialized(plan, env.DB)
			}
		})
	}
}
