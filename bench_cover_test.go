// Cover-execution benchmarks: the streaming hash-join pipeline against
// the materialize-every-fragment fold on multi-fragment covers
// (BenchmarkCoverExec), and the answer cache against the full
// reformulate-search-plan pipeline on repeated queries
// (BenchmarkCoverCache). CI runs these once per push (-bench=Cover
// -benchtime=1x); cmd/benchcover emits the same series as
// BENCH_cover.json.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/engine"
	"repro/internal/lubm"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/reformulate"
	"repro/internal/shard"
)

// coverBenchQueries picks the Q3/Q9-style workload queries whose root
// covers are genuinely multi-fragment.
func coverBenchQueries() []query.CQ {
	qs := lubm.Queries()
	return []query.CQ{qs[2], qs[8]} // Q3, Q9
}

// BenchmarkCoverExec compares materialized and streaming execution of
// multi-fragment root covers, the streaming side at 1/2/4/8 workers
// (clamped to GOMAXPROCS on small machines). Run with -benchmem for the
// bytes/op series.
func BenchmarkCoverExec(b *testing.B) {
	env, _, _ := benchEnvs()
	ref := reformulate.New(env.TBox)
	for _, q := range coverBenchQueries() {
		c := cover.RootCover(q, env.TBox)
		j, err := c.ReformulateJUCQ(ref)
		if err != nil {
			b.Fatal(err)
		}
		plan := engine.PlanJUCQ(j, env.DB, env.Profile)
		b.Run(q.Name+"/materialized", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				engine.ExecJUCQMaterialized(plan, env.DB)
			}
		})
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/streaming-w%d", q.Name, workers), func(b *testing.B) {
				b.ReportAllocs()
				op := engine.CompileJUCQ(plan, env.DB, nil, workers)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					engine.Drain(op)
				}
			})
		}
	}
}

// BenchmarkCoverShard compares the native streaming backend (serial
// baseline) against the shard backend at 1/2/4/8 shards on the same
// workload plans. Partitioning happens once per shard count, outside
// the timed loop — the series measures steady-state execution, the
// regime a long-lived server runs in. On a single-core machine the
// sharded series degenerates to the partition-scan overhead; see
// BENCH_shard.json for the recorded GOMAXPROCS.
func BenchmarkCoverShard(b *testing.B) {
	env, _, _ := benchEnvs()
	ref := reformulate.New(env.TBox)
	for _, q := range coverBenchQueries() {
		c := cover.RootCover(q, env.TBox)
		j, err := c.ReformulateJUCQ(ref)
		if err != nil {
			b.Fatal(err)
		}
		ir := plan.Rewrite(plan.FromJUCQ(j))
		b.Run(q.Name+"/native", func(b *testing.B) {
			b.ReportAllocs()
			exec, err := engine.NewBackend(env.DB, env.Profile).Compile(ir)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := exec.Run(1); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, shards := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/shard-n%d", q.Name, shards), func(b *testing.B) {
				b.ReportAllocs()
				sb, err := shard.New(env.DB, env.Profile, shards)
				if err != nil {
					b.Fatal(err)
				}
				exec, err := sb.Compile(ir)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := exec.Run(shards); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkCoverCache measures what the answer cache eliminates: the
// same query answered repeatedly with the plan cache on (search,
// reformulation, and planning amortized to one miss) versus off (the
// full pipeline every time).
func BenchmarkCoverCache(b *testing.B) {
	env, _, _ := benchEnvs()
	q := lubm.Queries()[8] // Q9
	for _, mode := range []string{"cached", "uncached"} {
		b.Run("Q9/gdl-ext/"+mode, func(b *testing.B) {
			b.ReportAllocs()
			a := core.New(env.TBox, env.DB, env.Profile)
			if mode == "uncached" {
				a.Cache = nil
				a.SearchOpts.Memo = nil
			}
			if _, err := a.Answer(q, core.StrategyGDLExt); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.Answer(q, core.StrategyGDLExt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
