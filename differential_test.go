// Differential tests for cover execution: the streaming hash-join
// pipeline, the materialize-every-fragment fold, and the
// single-fragment UCQ expansion must compute identical certain answers
// on the LUBM∃ workload (Theorem 1 — covers change cost, never
// semantics).
package repro

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/cover"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/lubm"
	"repro/internal/query"
	"repro/internal/reformulate"
	"repro/internal/search"
)

// tupleSet canonicalizes a relation for set comparison.
func tupleSet(rel *engine.Relation, db *engine.DB) map[string]bool {
	out := make(map[string]bool, len(rel.Rows))
	for _, row := range rel.Decode(db.Dict) {
		out[strings.Join(row, "\x00")] = true
	}
	return out
}

func diffKeys(a, b map[string]bool) []string {
	var out []string
	for k := range a {
		if !b[k] {
			out = append(out, strings.ReplaceAll(k, "\x00", ","))
		}
	}
	sort.Strings(out)
	return out
}

func requireSameAnswers(t *testing.T, label string, got, want map[string]bool) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d answers, want %d (missing %v, extra %v)",
			label, len(got), len(want), diffKeys(want, got), diffKeys(got, want))
		return
	}
	for k := range want {
		if !got[k] {
			t.Errorf("%s: missing answer %s", label, strings.ReplaceAll(k, "\x00", ","))
			return
		}
	}
}

// TestCoverExecutionDifferentialLUBM: for every workload query and for
// both the root cover and the GDL-chosen cover, streaming JUCQ/JUSCQ
// execution (sequential and parallel) and the materialized fold all
// agree with the single-fragment UCQ expansion.
func TestCoverExecutionDifferentialLUBM(t *testing.T) {
	env := exp.BuildEnv(2, 1, engine.LayoutSimple, engine.ProfilePostgres())
	ref := reformulate.New(env.TBox)
	est := &search.ExtEstimator{Model: env.A.Model}
	for _, q := range lubm.Queries() {
		u := ref.MustReformulate(q)
		truth := tupleSet(engine.ExecUCQ(engine.PlanUCQ(u, env.DB, env.Profile), env.DB), env.DB)

		covers := map[string]cover.Cover{"croot": cover.RootCover(q, env.TBox)}
		if sr := search.GDL(q, env.TBox, ref, est, search.Options{}); sr.Err == nil {
			covers["gdl"] = sr.Cover
		} else {
			t.Fatalf("%s: GDL failed: %v", q.Name, sr.Err)
		}
		for cname, c := range covers {
			j, err := c.ReformulateJUCQ(ref)
			if err != nil {
				t.Fatalf("%s/%s: %v", q.Name, cname, err)
			}
			plan := engine.PlanJUCQ(j, env.DB, env.Profile)
			mat := tupleSet(engine.ExecJUCQMaterialized(plan, env.DB), env.DB)
			requireSameAnswers(t, q.Name+"/"+cname+"/jucq-materialized", mat, truth)
			for _, workers := range []int{1, 4} {
				got := tupleSet(engine.Drain(engine.CompileJUCQ(plan, env.DB, nil, workers)), env.DB)
				requireSameAnswers(t, q.Name+"/"+cname+"/jucq-streaming", got, truth)
			}

			js, err := c.ReformulateJUSCQ(ref)
			if err != nil {
				t.Fatalf("%s/%s: %v", q.Name, cname, err)
			}
			splan := engine.PlanJUSCQ(js, env.DB, env.Profile)
			smat := tupleSet(engine.ExecJUSCQMaterialized(splan, env.DB), env.DB)
			requireSameAnswers(t, q.Name+"/"+cname+"/juscq-materialized", smat, truth)
			for _, workers := range []int{1, 4} {
				got := tupleSet(engine.Drain(engine.CompileJUSCQ(splan, env.DB, nil, workers)), env.DB)
				requireSameAnswers(t, q.Name+"/"+cname+"/juscq-streaming", got, truth)
			}
		}
	}
}

// TestCoverExecutionEdgeCasesLUBM: fragment joins with an empty
// fragment (absent predicate) and with no shared variable behave
// identically on the streaming and materialized paths over the LUBM
// database.
func TestCoverExecutionEdgeCasesLUBM(t *testing.T) {
	env := exp.BuildEnv(1, 1, engine.LayoutSimple, engine.ProfilePostgres())
	frag := func(text string) query.UCQ {
		return query.UCQ{Disjuncts: []query.CQ{query.MustParseCQ(text)}}
	}
	cases := []struct {
		name  string
		j     query.JUCQ
		empty bool
	}{
		{
			name: "empty-fragment",
			j: query.JUCQ{Name: "q", Head: []query.Term{query.Var("x")},
				Subs: []query.UCQ{
					frag("f1(x) <- Professor(x)"),
					frag("f2(x) <- NoSuchConcept(x)"),
				}},
			empty: true,
		},
		{
			name: "no-shared-variable",
			j: query.JUCQ{Name: "q", Head: []query.Term{query.Var("x"), query.Var("y")},
				Subs: []query.UCQ{
					frag("f1(x) <- Department(x)"),
					frag("f2(y) <- ResearchGroup(y)"),
				}},
		},
	}
	for _, tc := range cases {
		plan := engine.PlanJUCQ(tc.j, env.DB, env.Profile)
		want := tupleSet(engine.ExecJUCQMaterialized(plan, env.DB), env.DB)
		if tc.empty != (len(want) == 0) {
			t.Fatalf("%s: materialized returned %d answers, empty=%v", tc.name, len(want), tc.empty)
		}
		if tc.name == "no-shared-variable" && len(want) == 0 {
			t.Fatalf("%s: expected a non-empty cross product", tc.name)
		}
		for _, workers := range []int{1, 4} {
			got := tupleSet(engine.Drain(engine.CompileJUCQ(plan, env.DB, nil, workers)), env.DB)
			requireSameAnswers(t, tc.name, got, want)
		}
	}
}
