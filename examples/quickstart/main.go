// Quickstart: the paper's running example (Examples 1–4) end to end.
//
// Builds the Table 2 TBox and the Example 1 ABox, shows that plain
// evaluation misses the certain answer, reformulates the Example 3
// query, and answers it through the engine under several strategies.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dllite"
	"repro/internal/engine"
	"repro/internal/query"
)

func main() {
	// Table 2: the TBox (T1)–(T7).
	tbox, err := dllite.ParseTBoxString(`
PhDStudent <= Researcher
exists worksWith <= Researcher
exists worksWith- <= Researcher
worksWith <= worksWith-
role: supervisedBy <= worksWith
exists supervisedBy <= PhDStudent
PhDStudent <= not exists supervisedBy-
`)
	if err != nil {
		log.Fatal(err)
	}
	// Example 1: the ABox (A1)–(A3).
	abox := dllite.MustParseABox(`
worksWith(Ioana, Francois)
supervisedBy(Damian, Ioana)
supervisedBy(Damian, Francois)
`)

	// Consistency (Section 2.1): no PhD student supervises anyone.
	kb := dllite.KB{T: tbox, A: abox}
	if err := kb.CheckConsistency(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("KB is T-consistent")

	// Example 2: entailments that are nowhere in the data.
	fmt.Println("K ⊨ PhDStudent(Damian):",
		kb.EntailsConcept(dllite.C("PhDStudent"), "Damian"))
	fmt.Println("K ⊨ worksWith(Francois, Damian):",
		kb.EntailsRole(dllite.R("worksWith"), "Francois", "Damian"))

	// Example 3: the query asking for PhD students somebody works with.
	q := query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(y, x)")

	db := engine.NewDB(engine.LayoutSimple)
	db.LoadABox(abox)

	// Plain evaluation ignores the constraints: no answers.
	plain := engine.EvaluateCQ(q, db, engine.ProfilePostgres())
	fmt.Printf("plain evaluation: %d answers\n", len(plain.Tuples))

	// Query answering via FOL reformulation: {Damian}, under every
	// strategy (Theorems 1 and 3).
	answerer := core.New(tbox, db, engine.ProfilePostgres())
	for _, s := range core.Strategies() {
		res, err := answerer.Answer(q, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s -> %v  (fragments=%d, disjuncts=%d, SQL=%dB)\n",
			s, res.Tuples, res.NumFragments, res.NumDisjuncts, res.SQLSize)
	}
}
