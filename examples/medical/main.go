// Medical: the introduction's motivating domain — a Snomed-CT-flavoured
// clinical ontology. Shows (i) ontological constraints turning sparse
// clinical records into complete answers, and (ii) disjointness
// constraints catching contradictory records via reformulation-based
// consistency checking (core.Answerer.CheckConsistency).
//
// Run with: go run ./examples/medical
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dllite"
	"repro/internal/engine"
	"repro/internal/query"
)

const clinicalTBox = `
# diagnosis hierarchy (Snomed-style "is a" axes)
BacterialPneumonia <= Pneumonia
ViralPneumonia <= Pneumonia
Pneumonia <= LungDisease
LungDisease <= Disease
Influenza <= ViralInfection
ViralInfection <= Disease
Diabetes <= ChronicDisease
ChronicDisease <= Disease

# roles: domains and ranges
exists diagnosedWith <= Patient
exists diagnosedWith- <= Disease
exists treatedWith <= Patient
exists treatedWith- <= Treatment
exists prescribes <= Clinician
exists prescribes- <= Treatment
exists attendedBy <= Patient
exists attendedBy- <= Clinician

# every patient with a bacterial pneumonia diagnosis gets an antibiotic
Antibiotic <= Treatment
Antiviral <= Treatment
BacterialPneumonia <= exists indicatedTreatment
role: indicatedTreatment <= indicatedTreatment

# clinical disjointness: an infection cannot be both bacterial and viral
BacterialPneumonia <= not ViralPneumonia
Treatment <= not Disease
Patient <= not Clinician
`

const clinicalABox = `
# Sparse records: many types are implicit.
diagnosedWith(alice, dx1)
BacterialPneumonia(dx1)
treatedWith(alice, rx1)
Antibiotic(rx1)
attendedBy(alice, drsmith)
diagnosedWith(bob, dx2)
Influenza(dx2)
prescribes(drsmith, rx1)
diagnosedWith(carol, dx3)
ViralPneumonia(dx3)
`

func main() {
	tbox, err := dllite.ParseTBoxString(clinicalTBox)
	if err != nil {
		log.Fatal(err)
	}
	db := engine.NewDB(engine.LayoutSimple)
	db.LoadABox(dllite.MustParseABox(clinicalABox))
	answerer := core.New(tbox, db, engine.ProfileDB2())

	// The records never say anyone is a Patient, a Clinician, or what a
	// Disease is — the ontology fills it all in.
	for _, text := range []string{
		"q(x) <- Patient(x)",
		"q(x) <- Clinician(x)",
		"q(p, d) <- diagnosedWith(p, d), LungDisease(d)",
		"q(p) <- diagnosedWith(p, d), Disease(d), treatedWith(p, t), Treatment(t)",
	} {
		q := query.MustParseCQ(text)
		res, err := answerer.Answer(q, core.StrategyGDLExt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-72s -> %v\n", text, res.Tuples)
	}

	// Consistency: the record base is fine...
	violations, err := answerer.CheckConsistency()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nviolations: %d (record base is consistent)\n", len(violations))

	// ...until a contradictory diagnosis arrives.
	db2 := engine.NewDB(engine.LayoutSimple)
	db2.LoadABox(dllite.MustParseABox(clinicalABox + "ViralPneumonia(dx1)\n"))
	answerer2 := core.New(tbox, db2, engine.ProfileDB2())
	violations, err = answerer2.CheckConsistency()
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range violations {
		fmt.Printf("CONTRADICTION: %s violated by %v\n", v.Axiom, v.Witness)
	}
}
