// University: the paper's headline scenario at example scale — generate
// a LUBM∃ database, then compare how the strategies of Section 6
// (plain UCQ, the root cover, cost-driven GDL under two estimators)
// evaluate a reformulation-heavy query.
//
// Run with: go run ./examples/university
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lubm"
	"repro/internal/query"
)

func main() {
	tbox := lubm.TBox()
	fmt.Printf("LUBM∃ TBox: %d concepts, %d roles, %d constraints\n",
		len(tbox.ConceptNames()), len(tbox.RoleNames()), tbox.NumConstraints())

	db := engine.NewDB(engine.LayoutSimple)
	lubm.Generate(lubm.Config{Universities: 8, Seed: 1}, db)
	db.Finalize()
	fmt.Printf("generated %d facts, %d entities\n\n", db.NumFacts(), db.Dict.Size())

	// Q3 of the workload: articles written by professors, with their
	// department and university — 160 CQs after reformulation.
	q := query.MustParseCQ(
		"q(x, y) <- Article(x), authorOf(y, x), Professor(y), worksFor(y, d), subOrganizationOf(d, u)")

	answerer := core.New(tbox, db, engine.ProfilePostgres())
	fmt.Printf("%-10s  %9s  %9s  %8s  %9s  %6s\n",
		"strategy", "eval", "search", "answers", "disjuncts", "frags")
	for _, s := range []core.Strategy{
		core.StrategyUCQ, core.StrategyUSCQ, core.StrategyCroot,
		core.StrategyGDLRDBMS, core.StrategyGDLExt,
	} {
		res, err := answerer.Answer(q, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s  %9v  %9v  %8d  %9d  %6d\n",
			s, res.EvalTime.Round(10_000), res.SearchTime.Round(10_000),
			len(res.Tuples), res.NumDisjuncts, res.NumFragments)
	}

	// The winning cover often differs from both extremes: show it.
	res, err := answerer.Answer(q, core.StrategyGDLExt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGDL/ext cover: %v\n", res.Cover)
	fmt.Printf("explored %d simple + %d generalized covers in %v\n",
		res.Search.ExploredLq, res.Search.ExploredGq, res.SearchTime)
}
