// Package repro is a from-scratch Go reproduction of
//
//	Damian Bursztyn, François Goasdoué, Ioana Manolescu.
//	"Teaching an RDBMS about ontological constraints." VLDB 2016.
//
// The library implements cost-driven cover-based query answering for
// DL-LiteR ontologies over an RDBMS-style engine, together with every
// substrate the paper depends on. The packages are:
//
//	internal/dllite       DL-LiteR TBoxes/ABoxes, dep(N), consistency
//	internal/query        CQ/UCQ/SCQ/USCQ/JUCQ/JUSCQ dialects (Table 4)
//	internal/reformulate  CQ-to-UCQ (PerfectRef) and CQ-to-USCQ
//	internal/cover        covers, safe covers, Croot, Lq, Gq (Defs 1-7)
//	internal/engine       the RDBMS substrate (two layouts, two profiles)
//	                      with a streaming batched operator pipeline:
//	                      plans compile to Open/Next(*Batch)/Close
//	                      operator trees (scan, index-nested-loop join,
//	                      filter, project, streaming distinct, and
//	                      sequential/parallel union), with per-operator
//	                      row counters feeding the cost model
//	internal/sqlgen       SQL translation, statement-size accounting
//	internal/cost         the external cost model ε (Section 6.1)
//	internal/search       EDL and GDL (Algorithm 1), time-limited GDL
//	internal/core         the Answerer tying everything together
//	internal/lubm         the LUBM∃ benchmark (TBox, generator, Q1-Q13)
//	internal/exp          the experiment harness behind cmd/experiments
//
// See README.md for a tour, DESIGN.md for the system inventory and the
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured
// results. The benchmarks in bench_test.go regenerate every table and
// figure of the paper's evaluation section.
package repro
