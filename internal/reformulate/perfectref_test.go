package reformulate

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dllite"
	"repro/internal/query"
)

// Table 2 TBox.
const paperTBox = `
PhDStudent <= Researcher
exists worksWith <= Researcher
exists worksWith- <= Researcher
worksWith <= worksWith-
role: supervisedBy <= worksWith
exists supervisedBy <= PhDStudent
PhDStudent <= not exists supervisedBy-
`

// Example 7 TBox.
const runningTBox = `
Graduate <= exists supervisedBy
role: supervisedBy <= worksWith
`

func ucqKeys(u query.UCQ) map[string]bool {
	m := make(map[string]bool, len(u.Disjuncts))
	for _, d := range u.Disjuncts {
		m[query.CanonicalKey(d)] = true
	}
	return m
}

func containsCQ(t *testing.T, u query.UCQ, text string) bool {
	t.Helper()
	return ucqKeys(u)[query.CanonicalKey(query.MustParseCQ(text))]
}

// TestExample4 reproduces Table 5: the CQ-to-UCQ reformulation of
// q(x) ← PhDStudent(x) ∧ worksWith(y,x) has exactly the ten CQs q1–q10.
func TestExample4(t *testing.T) {
	tb := dllite.MustParseTBox(paperTBox)
	q := query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(y, x)")
	u, err := CQToUCQ(q, tb)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"q(x) <- PhDStudent(x), worksWith(y, x)",
		"q(x) <- PhDStudent(x), worksWith(x, y)",
		"q(x) <- PhDStudent(x), supervisedBy(y, x)",
		"q(x) <- PhDStudent(x), supervisedBy(x, y)",
		"q(x) <- supervisedBy(x, z), worksWith(y, x)",
		"q(x) <- supervisedBy(x, z), worksWith(x, y)",
		"q(x) <- supervisedBy(x, z), supervisedBy(y, x)",
		"q(x) <- supervisedBy(x, z), supervisedBy(x, y)",
		"q(x) <- supervisedBy(x, x)",
		"q(x) <- supervisedBy(x, y)",
	}
	if len(u.Disjuncts) != len(want) {
		for _, d := range u.Disjuncts {
			t.Logf("got: %v", d)
		}
		t.Fatalf("got %d disjuncts, want %d", len(u.Disjuncts), len(want))
	}
	for _, w := range want {
		if !containsCQ(t, u, w) {
			t.Errorf("missing disjunct %s", w)
		}
	}
	if query.CanonicalKey(u.Disjuncts[0]) != query.CanonicalKey(q) {
		t.Error("first disjunct must be the input query")
	}
}

// TestExample4Minimal reproduces Section 2.3: the minimal UCQ is
// q1 ∨ q2 ∨ q3 ∨ q10.
func TestExample4Minimal(t *testing.T) {
	tb := dllite.MustParseTBox(paperTBox)
	q := query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(y, x)")
	u, err := CQToUCQ(q, tb)
	if err != nil {
		t.Fatal(err)
	}
	m := u.Minimize()
	if len(m.Disjuncts) != 4 {
		t.Fatalf("minimal UCQ has %d disjuncts, want 4: %v", len(m.Disjuncts), m)
	}
	for _, w := range []string{
		"q(x) <- PhDStudent(x), worksWith(y, x)",
		"q(x) <- PhDStudent(x), worksWith(x, y)",
		"q(x) <- PhDStudent(x), supervisedBy(y, x)",
		"q(x) <- supervisedBy(x, y)",
	} {
		if !containsCQ(t, m, w) {
			t.Errorf("minimal UCQ missing %s", w)
		}
	}
}

// TestExample7 reproduces the running example reformulation (4 CQs).
func TestExample7(t *testing.T) {
	tb := dllite.MustParseTBox(runningTBox)
	q := query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(x, y), supervisedBy(z, y)")
	u, err := CQToUCQ(q, tb)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"q(x) <- PhDStudent(x), worksWith(x, y), supervisedBy(z, y)",
		"q(x) <- PhDStudent(x), supervisedBy(x, y), supervisedBy(z, y)",
		"q(x) <- PhDStudent(x), supervisedBy(x, y)",
		"q(x) <- PhDStudent(x), Graduate(x)",
	}
	if len(u.Disjuncts) != len(want) {
		for _, d := range u.Disjuncts {
			t.Logf("got: %v", d)
		}
		t.Fatalf("got %d disjuncts, want %d", len(u.Disjuncts), len(want))
	}
	for _, w := range want {
		if !containsCQ(t, u, w) {
			t.Errorf("missing disjunct %s", w)
		}
	}
}

// TestExample7Fragments reproduces the fragment reformulations of
// Example 7 (cover C1) and Example 9 (cover C2).
func TestExample7Fragments(t *testing.T) {
	tb := dllite.MustParseTBox(runningTBox)
	// q1(x,y) ← PhDStudent(x) ∧ worksWith(x,y): head y blocks ∃-rules.
	u1, err := CQToUCQ(query.MustParseCQ("q1(x, y) <- PhDStudent(x), worksWith(x, y)"), tb)
	if err != nil {
		t.Fatal(err)
	}
	if len(u1.Disjuncts) != 2 {
		t.Fatalf("q1 fragment: got %d disjuncts, want 2: %v", len(u1.Disjuncts), u1)
	}
	// q2(y) ← supervisedBy(z,y): no applicable constraint.
	u2, err := CQToUCQ(query.MustParseCQ("q2(y) <- supervisedBy(z, y)"), tb)
	if err != nil {
		t.Fatal(err)
	}
	if len(u2.Disjuncts) != 1 {
		t.Fatalf("q2 fragment: got %d disjuncts, want 1: %v", len(u2.Disjuncts), u2)
	}
	// Example 9's second fragment: qUCQ2(x) ← wW(x,y) ∧ sB(z,y) has 4.
	u3, err := CQToUCQ(query.MustParseCQ("f(x) <- worksWith(x, y), supervisedBy(z, y)"), tb)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"f(x) <- worksWith(x, y), supervisedBy(z, y)",
		"f(x) <- supervisedBy(x, y), supervisedBy(z, y)",
		"f(x) <- supervisedBy(x, y)",
		"f(x) <- Graduate(x)",
	}
	if len(u3.Disjuncts) != len(want) {
		for _, d := range u3.Disjuncts {
			t.Logf("got: %v", d)
		}
		t.Fatalf("Example 9 fragment: got %d disjuncts, want 4", len(u3.Disjuncts))
	}
	for _, w := range want {
		if !containsCQ(t, u3, w) {
			t.Errorf("missing %s", w)
		}
	}
}

// naive evaluation of a CQ over an ABox, used as an oracle.
func evalCQ(q query.CQ, ab *dllite.ABox) map[string]bool {
	results := make(map[string]bool)
	var rec func(i int, bind map[string]string)
	rec = func(i int, bind map[string]string) {
		if i == len(q.Atoms) {
			parts := make([]string, len(q.Head))
			for j, h := range q.Head {
				parts[j] = bind[h.Name]
			}
			results[strings.Join(parts, "\x00")] = true
			return
		}
		a := q.Atoms[i]
		match := func(t query.Term, val string) (map[string]string, bool) {
			if t.Const {
				if t.Name == val {
					return bind, true
				}
				return nil, false
			}
			if v, ok := bind[t.Name]; ok {
				if v == val {
					return bind, true
				}
				return nil, false
			}
			nb := make(map[string]string, len(bind)+1)
			for k, v := range bind {
				nb[k] = v
			}
			nb[t.Name] = val
			return nb, true
		}
		for _, as := range ab.Assertions {
			if as.Pred != a.Pred || (as.IsRole() != (a.Arity() == 2)) {
				continue
			}
			b1, ok := match(a.Args[0], as.S)
			if !ok {
				continue
			}
			if a.Arity() == 2 {
				b2, ok := matchWith(b1, a.Args[1], as.O)
				if !ok {
					continue
				}
				rec(i+1, b2)
			} else {
				rec(i+1, b1)
			}
		}
	}
	rec(0, map[string]string{})
	return results
}

func matchWith(bind map[string]string, t query.Term, val string) (map[string]string, bool) {
	if t.Const {
		return bind, t.Name == val
	}
	if v, ok := bind[t.Name]; ok {
		return bind, v == val
	}
	nb := make(map[string]string, len(bind)+1)
	for k, v := range bind {
		nb[k] = v
	}
	nb[t.Name] = val
	return nb, true
}

func evalUCQ(u query.UCQ, ab *dllite.ABox) map[string]bool {
	out := make(map[string]bool)
	for _, d := range u.Disjuncts {
		for k := range evalCQ(d, ab) {
			out[k] = true
		}
	}
	return out
}

// TestExample3Answer: evaluating the reformulation of Example 3's query
// over the paper's ABox yields {Damian}, while the plain query yields ∅.
func TestExample3Answer(t *testing.T) {
	tb := dllite.MustParseTBox(paperTBox)
	ab := dllite.MustParseABox(`
worksWith(Ioana, Francois)
supervisedBy(Damian, Ioana)
supervisedBy(Damian, Francois)
`)
	q := query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(y, x)")
	if got := evalCQ(q, ab); len(got) != 0 {
		t.Fatalf("plain evaluation must be empty, got %v", got)
	}
	u, err := CQToUCQ(q, tb)
	if err != nil {
		t.Fatal(err)
	}
	got := evalUCQ(u, ab)
	if len(got) != 1 || !got["Damian"] {
		t.Fatalf("answer = %v, want {Damian}", got)
	}
	// The minimized UCQ must give the same answer.
	got = evalUCQ(u.Minimize(), ab)
	if len(got) != 1 || !got["Damian"] {
		t.Fatalf("minimized answer = %v, want {Damian}", got)
	}
}

// TestExample7Answer: the running example KB answers {Damian}.
func TestExample7Answer(t *testing.T) {
	tb := dllite.MustParseTBox(runningTBox)
	ab := dllite.MustParseABox("PhDStudent(Damian)\nGraduate(Damian)")
	q := query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(x, y), supervisedBy(z, y)")
	u, err := CQToUCQ(q, tb)
	if err != nil {
		t.Fatal(err)
	}
	got := evalUCQ(u, ab)
	if len(got) != 1 || !got["Damian"] {
		t.Fatalf("answer = %v, want {Damian}", got)
	}
}

// TestConstantsInQuery: constants survive reformulation.
func TestConstantsInQuery(t *testing.T) {
	tb := dllite.MustParseTBox(paperTBox)
	q := query.MustParseCQ("q(x) <- worksWith(x, 'Francois')")
	u, err := CQToUCQ(q, tb)
	if err != nil {
		t.Fatal(err)
	}
	// worksWith(x,'Francois') ∨ worksWith('Francois',x) ∨
	// supervisedBy(x,'Francois') ∨ supervisedBy('Francois',x)... via T4/T5
	if len(u.Disjuncts) < 3 {
		t.Fatalf("expected role-hierarchy rewrites, got %v", u)
	}
	ab := dllite.MustParseABox("supervisedBy(Damian, Francois)")
	got := evalUCQ(u, ab)
	if !got["Damian"] {
		t.Fatalf("Damian works with Francois via supervisedBy ⊑ worksWith: %v", got)
	}
}

// TestBooleanQuery: zero-ary head works end to end.
func TestBooleanQuery(t *testing.T) {
	tb := dllite.MustParseTBox(paperTBox)
	q := query.CQ{Name: "b", Atoms: []query.Atom{
		query.ConceptAtom("PhDStudent", query.Var("x")),
	}}
	u, err := CQToUCQ(q, tb)
	if err != nil {
		t.Fatal(err)
	}
	ab := dllite.MustParseABox("supervisedBy(Damian, Ioana)")
	got := evalUCQ(u, ab)
	if len(got) != 1 {
		t.Fatalf("boolean query should be true: %v", got)
	}
}

// TestUnboundnessBlocksExistsRule: ∃-rules must not fire on bound
// positions (the paper's q1(x,y) fragment illustrates this; here a
// direct check).
func TestUnboundnessBlocksExistsRule(t *testing.T) {
	tb := dllite.MustParseTBox("Graduate <= exists supervisedBy")
	// y is shared → bound → no rewrite of supervisedBy(x,y) to Graduate(x).
	q := query.MustParseCQ("q(x) <- supervisedBy(x, y), Tutor(y)")
	u, err := CQToUCQ(q, tb)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Disjuncts) != 1 {
		t.Fatalf("no rewrite expected, got %v", u)
	}
	// y unbound → rewrite fires.
	q2 := query.MustParseCQ("q(x) <- supervisedBy(x, y)")
	u2, err := CQToUCQ(q2, tb)
	if err != nil {
		t.Fatal(err)
	}
	if len(u2.Disjuncts) != 2 {
		t.Fatalf("want Graduate(x) rewrite, got %v", u2)
	}
}

// TestRoleInclusionOrientations covers all four LR/RR inversion combos.
func TestRoleInclusionOrientations(t *testing.T) {
	cases := []struct {
		axiom string
		want  string // rewriting of q(x,y) <- P(x,y)
	}{
		{"role: Q <= P", "q(x, y) <- Q(x, y)"},
		{"Q- <= P", "q(x, y) <- Q(y, x)"},
		{"Q <= P-", "q(x, y) <- Q(y, x)"},
		{"role: Q- <= P-", "q(x, y) <- Q(x, y)"},
	}
	for _, c := range cases {
		tb := dllite.MustParseTBox(c.axiom)
		u, err := CQToUCQ(query.MustParseCQ("q(x, y) <- P(x, y)"), tb)
		if err != nil {
			t.Fatal(err)
		}
		if len(u.Disjuncts) != 2 {
			t.Fatalf("%s: got %d disjuncts", c.axiom, len(u.Disjuncts))
		}
		if !containsCQ(t, u, c.want) {
			t.Errorf("%s: missing %s in %v", c.axiom, c.want, u)
		}
	}
}

// TestExistsHierarchyRewrites covers ∃R ⊑ ∃S and inverse variants
// (Table 3 rows 6–9).
func TestExistsHierarchyRewrites(t *testing.T) {
	cases := []struct {
		axiom string
		query string
		want  string
	}{
		{"exists Q <= exists P", "q(x) <- P(x, y)", "q(x) <- Q(x, y)"},
		{"exists Q- <= exists P", "q(x) <- P(x, y)", "q(x) <- Q(y, x)"},
		{"exists Q <= exists P-", "q(x) <- P(y, x)", "q(x) <- Q(x, y)"},
		{"exists Q- <= exists P-", "q(x) <- P(y, x)", "q(x) <- Q(y, x)"},
	}
	for _, c := range cases {
		tb := dllite.MustParseTBox(c.axiom)
		u, err := CQToUCQ(query.MustParseCQ(c.query), tb)
		if err != nil {
			t.Fatal(err)
		}
		if !containsCQ(t, u, c.want) {
			t.Errorf("%s on %s: missing %s, got %v", c.axiom, c.query, c.want, u)
		}
	}
}

// TestMemoization: repeated reformulation hits the memo.
func TestMemoization(t *testing.T) {
	tb := dllite.MustParseTBox(paperTBox)
	r := New(tb)
	q := query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(y, x)")
	u1 := r.MustReformulate(q)
	u2 := r.MustReformulate(q)
	if len(u1.Disjuncts) != len(u2.Disjuncts) {
		t.Fatal("memoized result differs")
	}
	if len(r.memo) != 1 {
		t.Fatalf("memo size = %d", len(r.memo))
	}
}

// TestMaxQueriesGuard: the blowup guard trips.
func TestMaxQueriesGuard(t *testing.T) {
	// Chain of subclasses; reformulation of conjunction over several
	// atoms multiplies.
	var sb strings.Builder
	for i := 0; i < 20; i++ {
		sb.WriteString("A")
		sb.WriteString(string(rune('a' + i)))
		sb.WriteString(" <= Top\n")
	}
	tb := dllite.MustParseTBox(sb.String())
	r := New(tb)
	r.MaxQueries = 10
	q := query.MustParseCQ("q(x) <- Top(x), Top(y), R(x, y)")
	if _, err := r.Reformulate(q); err == nil {
		t.Fatal("expected MaxQueries error")
	}
}

// TestCQToUSCQEquivalence: the USCQ expands back to the UCQ disjunct set.
func TestCQToUSCQEquivalence(t *testing.T) {
	tb := dllite.MustParseTBox(paperTBox)
	q := query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(y, x)")
	u, err := CQToUCQ(q, tb)
	if err != nil {
		t.Fatal(err)
	}
	s, err := CQToUSCQ(q, tb)
	if err != nil {
		t.Fatal(err)
	}
	back := s.Expand().Dedup()
	if len(back.Disjuncts) != len(u.Dedup().Disjuncts) {
		t.Fatalf("USCQ expansion has %d disjuncts, UCQ has %d", len(back.Disjuncts), len(u.Dedup().Disjuncts))
	}
	keys := ucqKeys(back)
	for _, d := range u.Disjuncts {
		if !keys[query.CanonicalKey(d)] {
			t.Errorf("USCQ lost disjunct %v", d)
		}
	}
	// The factorized form should be no larger than the UCQ.
	if len(s.Disjuncts) > len(u.Disjuncts) {
		t.Errorf("USCQ has more SCQs (%d) than UCQ disjuncts (%d)", len(s.Disjuncts), len(u.Disjuncts))
	}
}

// randKB builds a small random DL-LiteR KB (positive axioms only).
func randKB(r *rand.Rand) (*dllite.TBox, *dllite.ABox) {
	concepts := []string{"A", "B", "C", "D"}
	roles := []string{"P", "Q"}
	randConcept := func() dllite.Concept {
		switch r.Intn(3) {
		case 0:
			return dllite.C(concepts[r.Intn(len(concepts))])
		case 1:
			return dllite.Some(dllite.R(roles[r.Intn(len(roles))]))
		default:
			return dllite.Some(dllite.RInv(roles[r.Intn(len(roles))]))
		}
	}
	var axioms []dllite.Axiom
	n := 1 + r.Intn(6)
	for i := 0; i < n; i++ {
		if r.Intn(4) == 0 {
			lr := dllite.R(roles[r.Intn(len(roles))])
			rr := dllite.R(roles[r.Intn(len(roles))])
			if r.Intn(2) == 0 {
				lr = lr.Inverse()
			}
			if r.Intn(2) == 0 {
				rr = rr.Inverse()
			}
			axioms = append(axioms, dllite.RIncl(lr, rr))
		} else {
			axioms = append(axioms, dllite.CIncl(randConcept(), randConcept()))
		}
	}
	tb := dllite.MustTBox(axioms)
	ab := dllite.NewABox()
	inds := []string{"a", "b", "c", "d"}
	m := 2 + r.Intn(8)
	for i := 0; i < m; i++ {
		if r.Intn(2) == 0 {
			ab.Add(dllite.ConceptAssertion(concepts[r.Intn(len(concepts))], inds[r.Intn(len(inds))]))
		} else {
			ab.Add(dllite.RoleAssertion(roles[r.Intn(len(roles))], inds[r.Intn(len(inds))], inds[r.Intn(len(inds))]))
		}
	}
	return tb, ab
}

// TestPropAtomicQueryMatchesSaturation cross-checks PerfectRef against
// the independent saturation-based entailment of package dllite:
// for random KBs, ans(reformulate(A(x))) over the explicit ABox equals
// the set of individuals with K ⊨ A(ind); same for roles.
func TestPropAtomicQueryMatchesSaturation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tb, ab := randKB(r)
		kb := dllite.KB{T: tb, A: ab}
		// concept query
		q := query.MustParseCQ("q(x) <- A(x)")
		u, err := CQToUCQ(q, tb)
		if err != nil {
			return false
		}
		got := evalUCQ(u, ab)
		for _, ind := range ab.Individuals() {
			want := kb.EntailsConcept(dllite.C("A"), ind)
			if got[ind] != want {
				t.Logf("seed %d concept: ind=%s got=%v want=%v", seed, ind, got[ind], want)
				return false
			}
		}
		// role query
		qr := query.MustParseCQ("q(x, y) <- P(x, y)")
		ur, err := CQToUCQ(qr, tb)
		if err != nil {
			return false
		}
		gotR := evalUCQ(ur, ab)
		inds := ab.Individuals()
		for _, a := range inds {
			for _, b := range inds {
				want := kb.EntailsRole(dllite.R("P"), a, b)
				if gotR[a+"\x00"+b] != want {
					t.Logf("seed %d role: (%s,%s) got=%v want=%v", seed, a, b, gotR[a+"\x00"+b], want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestPropReformulationGrowsAnswersMonotonically: every disjunct's
// answers are answers of the reformulated query, and the original
// query's plain answers are always included.
func TestPropReformulationContainsPlainAnswers(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tb, ab := randKB(r)
		q := query.MustParseCQ("q(x) <- A(x), P(x, y)")
		u, err := CQToUCQ(q, tb)
		if err != nil {
			return false
		}
		plain := evalCQ(q, ab)
		all := evalUCQ(u, ab)
		for k := range plain {
			if !all[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestDisjunctOrderIsDeterministic guards benchmark reproducibility.
func TestDisjunctOrderIsDeterministic(t *testing.T) {
	tb := dllite.MustParseTBox(paperTBox)
	q := query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(y, x)")
	u1 := New(tb).MustReformulate(q)
	u2 := New(tb).MustReformulate(q)
	if len(u1.Disjuncts) != len(u2.Disjuncts) {
		t.Fatal("nondeterministic disjunct count")
	}
	var k1, k2 []string
	for i := range u1.Disjuncts {
		k1 = append(k1, query.CanonicalKey(u1.Disjuncts[i]))
		k2 = append(k2, query.CanonicalKey(u2.Disjuncts[i]))
	}
	sort.Strings(k1)
	sort.Strings(k2)
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatal("nondeterministic disjunct set")
		}
	}
}
