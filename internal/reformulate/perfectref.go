// Package reformulate implements FOL reformulation of conjunctive
// queries w.r.t. DL-LiteR TBoxes: the pioneering CQ-to-UCQ technique of
// Calvanese et al. (PerfectRef) that the paper builds on (Section 2.2),
// and a CQ-to-USCQ variant obtained by exact factorization of the UCQ
// (Section 2.2, [33]).
package reformulate

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/dllite"
	"repro/internal/query"
)

// DefaultMaxQueries bounds the number of CQs generated during a single
// reformulation; DL-LiteR guarantees termination, but the bound turns
// accidental exponential blowups into errors instead of hangs.
const DefaultMaxQueries = 200000

// Reformulator compiles DL-LiteR TBox constraints into queries. It
// pre-indexes the positive axioms by their right-hand side, so a single
// Reformulator should be reused across queries over the same TBox.
// Reformulator is safe for concurrent use: the axiom indexes are
// read-only after New, and the internal memo is mutex-guarded (two
// goroutines may redundantly reformulate the same fresh query; the
// results are identical and one wins the memo slot).
type Reformulator struct {
	T          *dllite.TBox
	MaxQueries int

	conceptRHS map[string][]dllite.Axiom  // B ⊑ A, indexed by A
	existsRHS  map[roleKey][]dllite.Axiom // B ⊑ ∃R(⁻), indexed by R(⁻)
	roleRHS    map[string][]dllite.Axiom  // R1 ⊑ R2(⁻), indexed by name(R2)

	mu   sync.Mutex
	memo map[string]query.UCQ // canonical CQ key -> reformulation
}

// memoGet looks up a memoized reformulation under the mutex.
func (r *Reformulator) memoGet(key string) (query.UCQ, bool) {
	r.mu.Lock()
	u, ok := r.memo[key]
	r.mu.Unlock()
	return u, ok
}

// memoPut stores a memoized reformulation under the mutex.
func (r *Reformulator) memoPut(key string, u query.UCQ) {
	r.mu.Lock()
	r.memo[key] = u
	r.mu.Unlock()
}

type roleKey struct {
	name string
	inv  bool
}

// New builds a Reformulator for the TBox.
func New(t *dllite.TBox) *Reformulator {
	r := &Reformulator{
		T:          t,
		MaxQueries: DefaultMaxQueries,
		conceptRHS: make(map[string][]dllite.Axiom),
		existsRHS:  make(map[roleKey][]dllite.Axiom),
		roleRHS:    make(map[string][]dllite.Axiom),
		memo:       make(map[string]query.UCQ),
	}
	for _, ax := range t.PositiveAxioms() {
		switch ax.Kind {
		case dllite.ConceptInclusion:
			if ax.RC.Exists {
				k := roleKey{name: ax.RC.Role.Name, inv: ax.RC.Role.Inv}
				r.existsRHS[k] = append(r.existsRHS[k], ax)
			} else {
				r.conceptRHS[ax.RC.Name] = append(r.conceptRHS[ax.RC.Name], ax)
			}
		case dllite.RoleInclusion:
			r.roleRHS[ax.RR.Name] = append(r.roleRHS[ax.RR.Name], ax)
		}
	}
	return r
}

// Reformulate computes the UCQ reformulation of q w.r.t. the TBox
// (PerfectRef). The first disjunct is always (a deduplicated copy of) q
// itself.
//
// Results are memoized per rendered query string — NOT per canonical
// key: the reformulation's variable names matter downstream (JUCQ
// fragments join on head variable names), so two isomorphic queries
// with different variable names must not share a memo entry.
func (r *Reformulator) Reformulate(q query.CQ) (query.UCQ, error) {
	key := memoKey(q)
	if u, ok := r.memoGet(key); ok {
		return u, nil
	}
	u, err := r.reformulate(q)
	if err != nil {
		return query.UCQ{}, err
	}
	r.memoPut(key, u)
	return u, nil
}

// memoKey renders head and body literally (variable names included)
// but ignores the query name, so the same fragment produced by
// different covers hits the same entry.
func memoKey(q query.CQ) string {
	var b strings.Builder
	for _, h := range q.Head {
		b.WriteString(h.String())
		b.WriteByte(',')
	}
	b.WriteString("<-")
	for _, a := range q.Atoms {
		b.WriteString(a.String())
		b.WriteByte('&')
	}
	return b.String()
}

// MustReformulate panics on error (blowup past MaxQueries).
func (r *Reformulator) MustReformulate(q query.CQ) query.UCQ {
	u, err := r.Reformulate(q)
	if err != nil {
		panic(err)
	}
	return u
}

func (r *Reformulator) reformulate(q query.CQ) (query.UCQ, error) {
	gen := query.NewFreshVarGen(q)
	start := q.DedupAtoms()
	result := []query.CQ{start}
	seen := map[string]bool{query.CanonicalKey(start): true}

	add := func(nq query.CQ) {
		nq = nq.DedupAtoms()
		k := query.CanonicalKey(nq)
		if !seen[k] {
			seen[k] = true
			result = append(result, nq)
		}
	}

	for i := 0; i < len(result); i++ {
		if len(result) > r.MaxQueries {
			return query.UCQ{}, fmt.Errorf("reformulate %s: more than %d CQs generated", q.Name, r.MaxQueries)
		}
		cur := result[i]
		// (a) Backward application of positive inclusions to each atom.
		for ai, atom := range cur.Atoms {
			for _, repl := range r.applicableRewrites(cur, atom, gen) {
				nq := cur.Clone()
				nq.Atoms[ai] = repl
				add(nq)
			}
		}
		// (b) Reduce: unify pairs of atoms.
		headVar := cur.HeadVarSet()
		shared := sharedVarSet(cur)
		prefer := func(v string) bool { return headVar[v] || shared[v] }
		for x := 0; x < len(cur.Atoms); x++ {
			for y := x + 1; y < len(cur.Atoms); y++ {
				s := query.UnifyPrefer(cur.Atoms[x], cur.Atoms[y], prefer)
				if s == nil {
					continue
				}
				add(cur.Subst(s))
			}
		}
	}
	return query.UCQ{Name: q.Name, Disjuncts: result}, nil
}

// sharedVarSet returns variables occurring in ≥2 body positions or in
// the head; unification representatives prefer these so that anonymous
// variables never capture meaningful ones.
func sharedVarSet(q query.CQ) map[string]bool {
	occ := q.VarOccurrences()
	out := make(map[string]bool, len(occ))
	for v, n := range occ {
		if n >= 2 {
			out[v] = true
		}
	}
	return out
}

// applicableRewrites returns the atoms gr(g, I) for every positive
// inclusion I applicable to atom g in query cur (Section 2.2).
func (r *Reformulator) applicableRewrites(cur query.CQ, g query.Atom, gen *query.FreshVarGen) []query.Atom {
	var out []query.Atom
	unbound := func(t query.Term) bool {
		return t.IsVar() && cur.IsUnbound(t.Name)
	}
	switch g.Arity() {
	case 1:
		x := g.Args[0]
		for _, ax := range r.conceptRHS[g.Pred] {
			out = append(out, backwardConcept(ax.LC, x, gen))
		}
	case 2:
		x1, x2 := g.Args[0], g.Args[1]
		// RHS = ∃P applies when the second argument is unbound.
		if unbound(x2) {
			for _, ax := range r.existsRHS[roleKey{name: g.Pred, inv: false}] {
				out = append(out, backwardExists(ax.LC, x1, gen))
			}
		}
		// RHS = ∃P⁻ applies when the first argument is unbound.
		if unbound(x1) {
			for _, ax := range r.existsRHS[roleKey{name: g.Pred, inv: true}] {
				out = append(out, backwardExists(ax.LC, x2, gen))
			}
		}
		// Role inclusions always apply.
		for _, ax := range r.roleRHS[g.Pred] {
			// ax: LR ⊑ RR with name(RR) = g.Pred. Align orientation:
			// if RR is direct, LR read forward replaces (x1,x2);
			// if RR is inverse, LR replaces (x2,x1).
			a, b := x1, x2
			if ax.RR.Inv {
				a, b = b, a
			}
			if ax.LR.Inv {
				out = append(out, query.RoleAtom(ax.LR.Name, b, a))
			} else {
				out = append(out, query.RoleAtom(ax.LR.Name, a, b))
			}
		}
	}
	return out
}

// backwardConcept rewrites atom A(x) using axiom LC ⊑ A.
func backwardConcept(lc dllite.Concept, x query.Term, gen *query.FreshVarGen) query.Atom {
	if !lc.Exists {
		return query.ConceptAtom(lc.Name, x)
	}
	if lc.Role.Inv {
		return query.RoleAtom(lc.Role.Name, gen.Fresh(), x) // ∃P⁻ ⊑ A: P(_, x)
	}
	return query.RoleAtom(lc.Role.Name, x, gen.Fresh()) // ∃P ⊑ A: P(x, _)
}

// backwardExists rewrites atom P(x,_) (or P(_,x)) using axiom LC ⊑ ∃P
// (resp. LC ⊑ ∃P⁻); x is the term in the projected position.
func backwardExists(lc dllite.Concept, x query.Term, gen *query.FreshVarGen) query.Atom {
	if !lc.Exists {
		return query.ConceptAtom(lc.Name, x)
	}
	if lc.Role.Inv {
		return query.RoleAtom(lc.Role.Name, gen.Fresh(), x) // ∃P1⁻ ⊑ ∃P: P1(_, x)
	}
	return query.RoleAtom(lc.Role.Name, x, gen.Fresh()) // ∃P1 ⊑ ∃P: P1(x, _)
}

// CQToUCQ is a convenience wrapper: reformulate q w.r.t. t.
func CQToUCQ(q query.CQ, t *dllite.TBox) (query.UCQ, error) {
	return New(t).Reformulate(q)
}

// CQToUSCQ reformulates q into a USCQ: the UCQ reformulation compressed
// by exact cartesian factorization. The result is equivalent to the UCQ
// reformulation.
func CQToUSCQ(q query.CQ, t *dllite.TBox) (query.USCQ, error) {
	u, err := CQToUCQ(q, t)
	if err != nil {
		return query.USCQ{}, err
	}
	return query.FactorizeUCQ(u), nil
}
