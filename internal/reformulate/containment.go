package reformulate

import "repro/internal/query"

// ContainedUnderTBox decides containment modulo the ontology:
// q1 ⊑_T q2 holds when every certain answer of q1 is a certain answer
// of q2 over every T-consistent ABox. By FOL-reducibility this reduces
// to plain UCQ containment of the reformulations, and containment of a
// CQ in a union of CQs holds iff it is contained in one of the
// disjuncts (Sagiv–Yannakakis).
//
// With negative constraints in the TBox the test is sound but may be
// incomplete: a disjunct whose frozen body is T-inconsistent can never
// produce answers, so it could be ignored; we keep it, erring toward
// "not contained".
func ContainedUnderTBox(q1, q2 query.CQ, r *Reformulator) (bool, error) {
	u1, err := r.Reformulate(q1)
	if err != nil {
		return false, err
	}
	u2, err := r.Reformulate(q2)
	if err != nil {
		return false, err
	}
	for _, d1 := range u1.Disjuncts {
		found := false
		for _, d2 := range u2.Disjuncts {
			if query.ContainedIn(d1, d2) {
				found = true
				break
			}
		}
		if !found {
			return false, nil
		}
	}
	return true, nil
}

// EquivalentUnderTBox reports mutual containment modulo the ontology.
func EquivalentUnderTBox(q1, q2 query.CQ, r *Reformulator) (bool, error) {
	a, err := ContainedUnderTBox(q1, q2, r)
	if err != nil || !a {
		return false, err
	}
	return ContainedUnderTBox(q2, q1, r)
}

// ReformulateMinimal returns the minimal UCQ reformulation (§2.3 of the
// paper): the PerfectRef output with containment-redundant disjuncts
// removed. Results are memoized separately from Reformulate.
func (r *Reformulator) ReformulateMinimal(q query.CQ) (query.UCQ, error) {
	key := "min//" + memoKey(q)
	if u, ok := r.memoGet(key); ok {
		return u, nil
	}
	u, err := r.Reformulate(q)
	if err != nil {
		return query.UCQ{}, err
	}
	m := u.Minimize()
	r.memoPut(key, m)
	return m, nil
}
