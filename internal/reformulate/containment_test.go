package reformulate

import (
	"testing"

	"repro/internal/dllite"
	"repro/internal/query"
)

func TestContainedUnderTBox(t *testing.T) {
	tb := dllite.MustParseTBox(`
PhDStudent <= Student
Student <= Person
role: advisedBy <= supervisedBy
`)
	r := New(tb)
	cases := []struct {
		q1, q2 string
		want   bool
	}{
		// Subclass: asking for PhD students is contained in asking for persons.
		{"q(x) <- PhDStudent(x)", "q(x) <- Person(x)", true},
		{"q(x) <- Person(x)", "q(x) <- PhDStudent(x)", false},
		// Subrole.
		{"q(x, y) <- advisedBy(x, y)", "q(x, y) <- supervisedBy(x, y)", true},
		{"q(x, y) <- supervisedBy(x, y)", "q(x, y) <- advisedBy(x, y)", false},
		// Conjunction weakening.
		{"q(x) <- PhDStudent(x), advisedBy(x, y)", "q(x) <- Student(x)", true},
		// Plain equivalence is still detected.
		{"q(x) <- Student(x), Student(x)", "q(x) <- Student(x)", true},
	}
	for _, c := range cases {
		got, err := ContainedUnderTBox(query.MustParseCQ(c.q1), query.MustParseCQ(c.q2), r)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("%s ⊑_T %s: got %v, want %v", c.q1, c.q2, got, c.want)
		}
	}
}

func TestEquivalentUnderTBox(t *testing.T) {
	// A ≡_T B when A ⊑ B and B ⊑ A.
	tb := dllite.MustParseTBox("A <= B\nB <= A")
	r := New(tb)
	eq, err := EquivalentUnderTBox(
		query.MustParseCQ("q(x) <- A(x)"),
		query.MustParseCQ("q(x) <- B(x)"), r)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("A and B are equivalent under the cyclic TBox")
	}
	neq, err := EquivalentUnderTBox(
		query.MustParseCQ("q(x) <- A(x)"),
		query.MustParseCQ("q(x) <- C(x)"), r)
	if err != nil {
		t.Fatal(err)
	}
	if neq {
		t.Error("A and C are unrelated")
	}
}

func TestReformulateMinimalPaperExample(t *testing.T) {
	tb := dllite.MustParseTBox(paperTBox)
	r := New(tb)
	q := query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(y, x)")
	m, err := r.ReformulateMinimal(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Disjuncts) != 4 {
		t.Fatalf("minimal UCQ has %d disjuncts, want 4 (§2.3)", len(m.Disjuncts))
	}
	// Memoized on second call.
	m2, err := r.ReformulateMinimal(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.Disjuncts) != 4 {
		t.Fatal("memoized minimal reformulation differs")
	}
}

func TestMinimalEquivalentToFull(t *testing.T) {
	// The minimal UCQ answers exactly like the full one.
	tb := dllite.MustParseTBox(paperTBox)
	r := New(tb)
	q := query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(y, x)")
	full := r.MustReformulate(q)
	min, err := r.ReformulateMinimal(q)
	if err != nil {
		t.Fatal(err)
	}
	ab := dllite.MustParseABox(`
worksWith(Ioana, Francois)
supervisedBy(Damian, Ioana)
PhDStudent(Alice)
worksWith(Bob, Alice)
`)
	if got, want := evalUCQ(min, ab), evalUCQ(full, ab); len(got) != len(want) {
		t.Fatalf("minimal answers %v differ from full %v", got, want)
	}
}
