package lubm

import "repro/internal/query"

// Queries returns the 13-query workload of Section 6.1 (2–10 atoms,
// average ≈5.8; UCQ reformulation sizes spanning tens to hundreds of
// CQs). The mix mirrors the paper's: star joins, chains, queries whose
// root cover is very fragmented (where Croot performs poorly), and a
// 2-atom query with the largest reformulation (the paper's Q11).
func Queries() []query.CQ {
	qs := []string{
		// Q1 — 6-atom star on x (the basis of A3–A6, Section 6.2). The
		// predicates have pairwise-independent dependency sets except
		// takesCourse, so the root cover fragments completely.
		`Q1(x) <- takesCourse(x, c), researchInterest(x, r), attends(x, e), affiliatedWith(x, o), organizes(x, v), reviews(x, p)`,
		// Q2 — 4-atom chain: graduate students, their advisors, courses.
		`Q2(x, c) <- GraduateStudent(x), advisedBy(x, y), teacherOf(y, c), offeredBy(c, d)`,
		// Q3 — 5 atoms: articles by professors and their departments.
		`Q3(x, y) <- Article(x), authorOf(y, x), Professor(y), worksFor(y, d), subOrganizationOf(d, u)`,
		// Q4 — 3 atoms: who heads a department.
		`Q4(x) <- Person(x), headOf(x, d), Department(d)`,
		// Q5 — 7 atoms: course ecosystem around a department.
		`Q5(x, d) <- Course(x), offeredBy(x, d), teacherOf(y, x), takesCourse(z, x), memberOf(z, d), worksFor(y, d), Department(d)`,
		// Q6 — 5 atoms with a selective join but unselective singleton
		// fragments (Croot materializes the Faculty fragment ⇒ poor,
		// like the paper's Q6–Q8).
		`Q6(x) <- Chair(x), headOf(x, d), attends(x, e), organizes(y, e), Faculty(y)`,
		// Q7 — 6 atoms, same flavor.
		`Q7(x, y) <- Student(x), supervisedBy(x, y), teacherOf(y, c), GraduateCourse(c), attends(x, e), organizes(y, e)`,
		// Q8 — 7 atoms.
		`Q8(x) <- Faculty(x), worksFor(x, d), subOrganizationOf(d, u), University(u), hasAlumnus(u, a), advisedBy(s, x), enrolledIn(s, p)`,
		// Q9 — 10 atoms (the paper's largest; its SQL breaks DB2's RDF
		// layout limit).
		`Q9(x, p) <- Faculty(x), worksFor(x, d), subOrganizationOf(d, u), teacherOf(x, c), takesCourse(s, c), advisedBy(s, x), authorOf(x, p), Article(p), cites(q, p), researchInterest(x, r)`,
		// Q10 — 9 atoms.
		`Q10(x, d) <- GraduateStudent(x), memberOf(x, d), Department(d), takesCourse(x, c), offeredBy(c, d), teacherOf(y, c), Professor(y), researchInterest(y, r), researchInterest(x, r)`,
		// Q11 — 2 atoms, the largest single-atom union (the paper's
		// 667-CQ Q11): Person(x) rewrites into the whole subclass and
		// domain/range closure.
		`Q11(x) <- Person(x), attends(x, e)`,
		// Q12 — 4 atoms.
		`Q12(x, u) <- GraduateStudent(x), degreeFrom(x, u), University(u), locatedIn(u, p)`,
		// Q13 — 5 atoms with fragmented root cover.
		`Q13(x) <- Person(x), authorOf(x, p), reviews(y, p), attends(y, e), Colloquium(e)`,
	}
	out := make([]query.CQ, len(qs))
	for i, s := range qs {
		out[i] = query.MustParseCQ(s)
	}
	return out
}

// StarQueries returns A3–A6 (Section 6.2): star joins of 3..6 atoms on
// a common subject, derived from Q1; A6 is Q1 itself.
func StarQueries() []query.CQ {
	q1 := Queries()[0]
	names := []string{"A3", "A4", "A5", "A6"}
	out := make([]query.CQ, 0, len(names))
	for i, name := range names {
		n := i + 3
		out = append(out, query.CQ{Name: name, Head: q1.Head, Atoms: q1.Atoms[:n]})
	}
	return out
}
