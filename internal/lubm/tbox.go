// Package lubm provides the LUBM∃ benchmark environment of Section 6.1:
// a university-domain DL-LiteR TBox with the same shape as the paper's
// (128 concepts, 34 roles, 212 constraints — asserted by tests), a
// deterministic EUDG-style ABox generator, and the query workload
// (Q1–Q13, plus the star queries A3–A6 of Section 6.2).
package lubm

import (
	"repro/internal/dllite"
)

// conceptParents lists every non-root concept with its direct parent;
// the root is Entity. One concept-inclusion axiom per entry.
var conceptParents = [][2]string{
	// People (50)
	{"Person", "Entity"},
	{"Employee", "Person"},
	{"Faculty", "Employee"},
	{"Professor", "Faculty"},
	{"FullProfessor", "Professor"},
	{"AssociateProfessor", "Professor"},
	{"AssistantProfessor", "Professor"},
	{"VisitingProfessor", "Professor"},
	{"EmeritusProfessor", "Professor"},
	{"Lecturer", "Faculty"},
	{"SeniorLecturer", "Lecturer"},
	{"PostDoc", "Faculty"},
	{"ResearchScientist", "Employee"},
	{"Researcher", "Person"},
	{"Chair", "Professor"},
	{"Dean", "Employee"},
	{"Director", "Employee"},
	{"AdministrativeStaff", "Employee"},
	{"ClericalStaff", "AdministrativeStaff"},
	{"SystemsStaff", "AdministrativeStaff"},
	{"SupportStaff", "AdministrativeStaff"},
	{"Student", "Person"},
	{"UndergraduateStudent", "Student"},
	{"GraduateStudent", "Student"},
	{"PhDStudent", "GraduateStudent"},
	{"MastersStudent", "GraduateStudent"},
	{"TeachingAssistant", "GraduateStudent"},
	{"ResearchAssistant", "GraduateStudent"},
	{"Tutor", "Student"},
	{"Mentor", "Person"},
	{"Advisor", "Faculty"},
	{"Alumnus", "Person"},
	{"ExchangeStudent", "Student"},
	{"HonorsStudent", "UndergraduateStudent"},
	{"PartTimeStudent", "Student"},
	{"FullTimeStudent", "Student"},
	{"CommitteeMember", "Person"},
	{"ProgramChair", "CommitteeMember"},
	{"Reviewer", "Person"},
	{"Speaker", "Person"},
	{"KeynoteSpeaker", "Speaker"},
	{"Author", "Person"},
	{"PrincipalInvestigator", "Researcher"},
	{"CoInvestigator", "Researcher"},
	{"LabManager", "Employee"},
	{"GrantHolder", "Researcher"},
	{"Librarian", "Employee"},
	{"Registrar", "Employee"},
	{"Provost", "Employee"},
	{"Trustee", "Person"},
	// Organizations (18)
	{"Organization", "Entity"},
	{"University", "Organization"},
	{"College", "Organization"},
	{"Department", "Organization"},
	{"Institute", "Organization"},
	{"ResearchGroup", "Organization"},
	{"ResearchLab", "Organization"},
	{"Program", "Organization"},
	{"GraduateProgram", "Program"},
	{"UndergraduateProgram", "Program"},
	{"Library", "Organization"},
	{"Publisher", "Organization"},
	{"FundingAgency", "Organization"},
	{"Committee", "Organization"},
	{"AlumniAssociation", "Organization"},
	{"StudentUnion", "Organization"},
	{"Consortium", "Organization"},
	{"AcademicPress", "Publisher"},
	// Works (35)
	{"Work", "Entity"},
	{"Course", "Work"},
	{"GraduateCourse", "Course"},
	{"UndergraduateCourse", "Course"},
	{"Seminar", "Course"},
	{"Research", "Work"},
	{"Publication", "Work"},
	{"Article", "Publication"},
	{"JournalArticle", "Article"},
	{"ConferencePaper", "Article"},
	{"WorkshopPaper", "Article"},
	{"TechnicalReport", "Publication"},
	{"Book", "Publication"},
	{"BookChapter", "Publication"},
	{"Manual", "Publication"},
	{"Thesis", "Publication"},
	{"MastersThesis", "Thesis"},
	{"DoctoralThesis", "Thesis"},
	{"Software", "Publication"},
	{"Specification", "Publication"},
	{"UnofficialPublication", "Publication"},
	{"Survey", "Article"},
	{"Poster", "Publication"},
	{"Demo", "Publication"},
	{"Patent", "Work"},
	{"Dataset", "Work"},
	{"Benchmark", "Dataset"},
	{"Project", "Work"},
	{"ResearchProject", "Project"},
	{"LectureNotes", "Work"},
	{"Exam", "Work"},
	{"Assignment", "Work"},
	{"Curriculum", "Work"},
	{"Grant", "Work"},
	{"Proposal", "Work"},
	// Misc (24)
	{"Schedule", "Entity"},
	{"Semester", "Schedule"},
	{"AcademicTerm", "Schedule"},
	{"Degree", "Entity"},
	{"BachelorsDegree", "Degree"},
	{"MastersDegree", "Degree"},
	{"DoctoralDegree", "Degree"},
	{"Award", "Entity"},
	{"Fellowship", "Award"},
	{"Scholarship", "Award"},
	{"Event", "Entity"},
	{"Meeting", "Event"},
	{"Colloquium", "Event"},
	{"Talk", "Event"},
	{"Conference", "Event"},
	{"Workshop", "Event"},
	{"Place", "Entity"},
	{"Building", "Place"},
	{"Room", "Place"},
	{"Office", "Room"},
	{"Classroom", "Room"},
	{"Auditorium", "Room"},
	{"Campus", "Place"},
	{"ResearchArea", "Entity"},
}

// roleDomains and roleRanges define the ∃R ⊑ C and ∃R⁻ ⊑ C axioms.
// Together they contribute 60 constraints; roles absent from a map
// inherit typing through the role hierarchy instead.
var roleDomains = map[string]string{
	"worksFor":            "Employee",
	"memberOf":            "Person",
	"headOf":              "Person",
	"affiliatedWith":      "Person",
	"subOrganizationOf":   "Organization",
	"teacherOf":           "Faculty",
	"takesCourse":         "Student",
	"teachingAssistantOf": "TeachingAssistant",
	"advisedBy":           "Student",
	"authorOf":            "Author",
	"supervisedBy":        "Person",
	"worksWith":           "Person",
	"collaboratesWith":    "Researcher",
	"degreeFrom":          "Person",
	"researchInterest":    "Person",
	"investigates":        "ResearchGroup",
	"fundedBy":            "Project",
	"enrolledIn":          "Person",
	"offeredBy":           "Course",
	"attends":             "Entity",
	"organizes":           "Person",
	"reviews":             "Reviewer",
	"cites":               "Publication",
	"partOf":              "Work",
	"prerequisiteOf":      "Course",
	"locatedIn":           "Organization",
	"scheduledIn":         "Course",
	"leads":               "Person",
	"contributesTo":       "Person",
	"awardedTo":           "Award",
}

var roleRanges = map[string]string{
	"worksFor":          "Organization",
	"memberOf":          "Organization",
	"headOf":            "Organization",
	"affiliatedWith":    "Organization",
	"subOrganizationOf": "Organization",
	// The ranges of the teaching roles sit at the top of the Work
	// hierarchy: deep targets here would close dependency chains and
	// collapse every workload query's root cover into one fragment
	// (cf. Section 5.2's observation that dependency-rich TBoxes yield
	// few, large Croot fragments — we keep enough fragmentation for the
	// cover spaces of Table 6 to be non-trivial).
	"teacherOf":           "Work",
	"takesCourse":         "Work",
	"teachingAssistantOf": "Work",
	"advisedBy":           "Professor",
	"authorOf":            "Publication",
	"supervisedBy":        "Person",
	"worksWith":           "Person",
	"collaboratesWith":    "Researcher",
	"degreeFrom":          "University",
	"researchInterest":    "ResearchArea",
	"investigates":        "ResearchArea",
	"fundedBy":            "FundingAgency",
	"enrolledIn":          "Program",
	"offeredBy":           "Organization",
	"attends":             "Event",
	"organizes":           "Event",
	"reviews":             "Publication",
	"cites":               "Publication",
	"partOf":              "Work",
	"prerequisiteOf":      "Course",
	"locatedIn":           "Place",
	"scheduledIn":         "Room",
	"leads":               "ResearchGroup",
	"contributesTo":       "Work",
	"awardedTo":           "Person",
}

// allRoles lists the 34 role names; four of them (the degree-flavored
// subroles and hasAlumnus) are typed only through the role hierarchy.
var allRoles = []string{
	"worksFor", "memberOf", "headOf", "affiliatedWith", "subOrganizationOf",
	"teacherOf", "takesCourse", "teachingAssistantOf", "advisedBy", "authorOf",
	"supervisedBy", "worksWith", "collaboratesWith", "degreeFrom",
	"mastersDegreeFrom", "doctoralDegreeFrom", "undergraduateDegreeFrom",
	"hasAlumnus", "researchInterest", "investigates", "fundedBy", "enrolledIn",
	"offeredBy", "attends", "organizes", "reviews", "cites", "partOf",
	"prerequisiteOf", "locatedIn", "scheduledIn", "leads", "contributesTo",
	"awardedTo",
}

// roleHierarchy lists role inclusions (lhs role, rhs role, rhsInverse).
var roleHierarchy = []struct {
	L, R string
	RInv bool
}{
	{"mastersDegreeFrom", "degreeFrom", false},
	{"doctoralDegreeFrom", "degreeFrom", false},
	{"undergraduateDegreeFrom", "degreeFrom", false},
	{"hasAlumnus", "degreeFrom", true}, // hasAlumnus ⊑ degreeFrom⁻
	{"supervisedBy", "worksWith", false},
	{"collaboratesWith", "worksWith", false},
	{"worksWith", "worksWith", true}, // symmetry
	{"headOf", "worksFor", false},
	{"worksFor", "memberOf", false},
	{"advisedBy", "supervisedBy", false},
	{"teachingAssistantOf", "contributesTo", false},
}

// existentials lists C ⊑ ∃R axioms (inv selects ∃R⁻).
var existentials = []struct {
	C, R string
	Inv  bool
}{
	{"Professor", "teacherOf", false},
	{"Student", "takesCourse", false},
	{"PhDStudent", "advisedBy", false},
	{"Publication", "authorOf", true}, // every publication has an author
	{"Department", "subOrganizationOf", false},
	{"Course", "offeredBy", false},
	{"GraduateStudent", "degreeFrom", false},
	{"Employee", "worksFor", false},
	{"ResearchGroup", "leads", true}, // every group is led by someone
	{"ResearchProject", "fundedBy", false},
}

// disjointness lists the negative constraints.
var disjointness = [][2]string{
	{"Person", "Organization"},
	{"Person", "Work"},
	{"Organization", "Work"},
	{"UndergraduateStudent", "GraduateStudent"},
}

// TBox builds the LUBM∃ TBox. The result is freshly allocated; callers
// may extend it (e.g. DeclareConcept) without affecting others.
func TBox() *dllite.TBox {
	var axioms []dllite.Axiom
	for _, e := range conceptParents {
		axioms = append(axioms, dllite.CIncl(dllite.C(e[0]), dllite.C(e[1])))
	}
	for _, role := range allRoles {
		if d, ok := roleDomains[role]; ok {
			axioms = append(axioms, dllite.CIncl(dllite.Some(dllite.R(role)), dllite.C(d)))
		}
		if r, ok := roleRanges[role]; ok {
			axioms = append(axioms, dllite.CIncl(dllite.Some(dllite.RInv(role)), dllite.C(r)))
		}
	}
	for _, rh := range roleHierarchy {
		rr := dllite.R(rh.R)
		if rh.RInv {
			rr = rr.Inverse()
		}
		axioms = append(axioms, dllite.RIncl(dllite.R(rh.L), rr))
	}
	for _, ex := range existentials {
		r := dllite.R(ex.R)
		if ex.Inv {
			r = r.Inverse()
		}
		axioms = append(axioms, dllite.CIncl(dllite.C(ex.C), dllite.Some(r)))
	}
	for _, d := range disjointness {
		axioms = append(axioms, dllite.CDisj(dllite.C(d[0]), dllite.C(d[1])))
	}
	return dllite.MustTBox(axioms)
}
