package lubm

import (
	"testing"

	"repro/internal/cover"
	"repro/internal/dllite"
	"repro/internal/engine"
	"repro/internal/reformulate"
)

// TestTBoxShape asserts the paper's vocabulary sizes (Section 6.1):
// "The TBox consists of 34 roles, 128 concepts and 212 constraints."
func TestTBoxShape(t *testing.T) {
	tb := TBox()
	if got := len(tb.ConceptNames()); got != 128 {
		t.Errorf("concepts = %d, want 128", got)
	}
	if got := len(tb.RoleNames()); got != 34 {
		t.Errorf("roles = %d, want 34", got)
	}
	if got := tb.NumConstraints(); got != 212 {
		t.Errorf("constraints = %d, want 212", got)
	}
}

func TestTBoxConsistentGeneration(t *testing.T) {
	tb := TBox()
	ab := GenerateABox(Config{Universities: 1, Seed: 7})
	kb := dllite.KB{T: tb, A: ab}
	if err := kb.CheckConsistency(); err != nil {
		t.Fatalf("generated data must be T-consistent: %v", err)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := GenerateABox(Config{Universities: 2, Seed: 42})
	b := GenerateABox(Config{Universities: 2, Seed: 42})
	if a.Size() != b.Size() {
		t.Fatalf("sizes differ: %d vs %d", a.Size(), b.Size())
	}
	for i := range a.Assertions {
		if a.Assertions[i] != b.Assertions[i] {
			t.Fatalf("fact %d differs", i)
		}
	}
	c := GenerateABox(Config{Universities: 2, Seed: 43})
	if c.Size() == 0 {
		t.Fatal("empty generation")
	}
}

func TestGeneratorScales(t *testing.T) {
	s1 := &CountingSink{}
	Generate(Config{Universities: 1, Seed: 1}, s1)
	s4 := &CountingSink{}
	Generate(Config{Universities: 4, Seed: 1}, s4)
	if s4.Total() < 3*s1.Total() {
		t.Errorf("4 universities should be ~4x bigger: %d vs %d", s4.Total(), s1.Total())
	}
	if s1.Total() < 500 {
		t.Errorf("one university should exceed 500 facts, got %d", s1.Total())
	}
}

// TestWorkloadShape checks the Section 6.1 workload parameters: 13 CQs,
// 2–10 atoms, average ≈5.8, and UCQ reformulation sizes in the tens to
// hundreds (the paper spans 35–667, average 290).
func TestWorkloadShape(t *testing.T) {
	tb := TBox()
	qs := Queries()
	if len(qs) != 13 {
		t.Fatalf("want 13 queries, got %d", len(qs))
	}
	ref := reformulate.New(tb)
	totalAtoms := 0
	minSize, maxSize := 1<<30, 0
	for _, q := range qs {
		n := len(q.Atoms)
		totalAtoms += n
		if n < 2 || n > 10 {
			t.Errorf("%s has %d atoms; workload range is 2–10", q.Name, n)
		}
		u, err := ref.Reformulate(q)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		size := len(u.Disjuncts)
		t.Logf("%s: %d atoms, UCQ size %d", q.Name, n, size)
		if size < minSize {
			minSize = size
		}
		if size > maxSize {
			maxSize = size
		}
		if size < 10 || size > 900 {
			t.Errorf("%s: UCQ size %d outside workload band [10,900]", q.Name, size)
		}
	}
	avg := float64(totalAtoms) / float64(len(qs))
	if avg < 4.5 || avg > 7 {
		t.Errorf("average atoms = %.2f, want ≈5.8", avg)
	}
	if maxSize < 300 {
		t.Errorf("largest reformulation is %d; want hundreds like the paper's 667", maxSize)
	}
	if minSize > 60 {
		t.Errorf("smallest reformulation is %d; want tens like the paper's 35", minSize)
	}
}

// TestStarQueriesShape: A3–A6 are prefixes of Q1 and their root covers
// fragment completely (so |Gq| explodes with the atom count, Table 6).
func TestStarQueriesShape(t *testing.T) {
	tb := TBox()
	stars := StarQueries()
	if len(stars) != 4 {
		t.Fatalf("want A3..A6")
	}
	for i, q := range stars {
		want := i + 3
		if len(q.Atoms) != want {
			t.Errorf("%s has %d atoms, want %d", q.Name, len(q.Atoms), want)
		}
		root := cover.RootCover(q, tb)
		if len(root.Frags) != want {
			t.Errorf("%s root cover has %d fragments, want %d (independent predicates)",
				q.Name, len(root.Frags), want)
		}
	}
	// Table 6 shape: |Lq| grows as the Bell number, |Gq| much faster.
	a5 := stars[2]
	lq := cover.CountSafeCovers(a5, tb, 0)
	if lq != 52 { // Bell(5)
		t.Errorf("|Lq(A5)| = %d, want 52", lq)
	}
	gq := cover.CountGeneralizedCovers(a5, tb, 30000)
	if gq <= lq*10 {
		t.Errorf("|Gq(A5)| = %d should dwarf |Lq| = %d", gq, lq)
	}
	a6 := stars[3]
	gq6 := cover.CountGeneralizedCovers(a6, tb, 20003)
	if gq6 != 20003 {
		t.Errorf("|Gq(A6)| should exceed the 20003 cutoff, got %d", gq6)
	}
}

// TestDepStructure spot-checks the dependency sets that drive safety.
func TestDepStructure(t *testing.T) {
	tb := TBox()
	if !tb.DepShared("worksWith", "supervisedBy") {
		t.Error("worksWith must depend on supervisedBy")
	}
	if !tb.DepShared("memberOf", "worksFor") {
		t.Error("memberOf must depend on worksFor")
	}
	if tb.DepShared("attends", "researchInterest") {
		t.Error("attends and researchInterest must be independent")
	}
	if !tb.Dep("Person")["PhDStudent"] {
		t.Error("Person depends on PhDStudent (subclass chain)")
	}
	if !tb.Dep("degreeFrom")["hasAlumnus"] {
		t.Error("degreeFrom depends on hasAlumnus (inverse subrole)")
	}
}

// TestEveryQueryHasAnswers guards generator/workload drift: each
// workload query must return at least one certain answer on a
// moderately sized generated database (otherwise a figure would
// silently measure empty evaluations).
func TestEveryQueryHasAnswers(t *testing.T) {
	tb := TBox()
	db := engine.NewDB(engine.LayoutSimple)
	Generate(Config{Universities: 4, Seed: 1}, db)
	db.Finalize()
	ref := reformulate.New(tb)
	for _, q := range Queries() {
		u, err := ref.Reformulate(q)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		ans := engine.EvaluateUCQ(u, db, engine.ProfilePostgres())
		if len(ans.Tuples) == 0 {
			t.Errorf("%s: zero answers on generated data", q.Name)
		}
	}
}
