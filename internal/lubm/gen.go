package lubm

import (
	"fmt"
	"math/rand"

	"repro/internal/dllite"
)

// Sink receives generated facts. engine.DB satisfies it directly, so
// large ABoxes stream into the store without an intermediate list.
type Sink interface {
	AddConceptFact(concept, ind string)
	AddRoleFact(role, s, o string)
}

// Config parameterizes the generator.
type Config struct {
	// Universities scales the dataset (~6000 facts per university).
	Universities int
	// Seed makes generation deterministic.
	Seed int64
}

// aboxSink adapts *dllite.ABox to Sink.
type aboxSink struct{ ab *dllite.ABox }

func (s aboxSink) AddConceptFact(c, ind string) { s.ab.Add(dllite.ConceptAssertion(c, ind)) }
func (s aboxSink) AddRoleFact(r, a, b string)   { s.ab.Add(dllite.RoleAssertion(r, a, b)) }

// GenerateABox materializes a generated ABox (small scales; benchmarks
// stream into engine.DB instead).
func GenerateABox(cfg Config) *dllite.ABox {
	ab := dllite.NewABox()
	Generate(cfg, aboxSink{ab})
	return ab
}

// Generate produces a deterministic LUBM∃-style ABox in the spirit of
// the EUDG generator [23]: universities with departments, faculty,
// students, courses, publications, groups and the relations among them.
// Like EUDG, the data is deliberately incomplete — some type assertions
// are omitted when the ontology can re-derive them (e.g. a professor
// known only through advisedBy⁻, a student known only through
// takesCourse) — so plain query evaluation loses answers that
// reformulation-based query answering must recover.
func Generate(cfg Config, sink Sink) {
	if cfg.Universities <= 0 {
		cfg.Universities = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	areas := make([]string, 12)
	for i := range areas {
		areas[i] = fmt.Sprintf("Area%d", i)
		sink.AddConceptFact("ResearchArea", areas[i])
	}
	for u := 0; u < cfg.Universities; u++ {
		genUniversity(u, cfg.Universities, rng, sink, areas)
	}
}

// genCampus emits the physical-plant facts of one university.
func genCampus(univ string, sink Sink) {
	campus := univ + "_Campus"
	sink.AddConceptFact("Campus", campus)
	sink.AddRoleFact("locatedIn", univ, campus)
}

func genUniversity(u, total int, rng *rand.Rand, sink Sink, areas []string) {
	univ := fmt.Sprintf("Univ%d", u)
	sink.AddConceptFact("University", univ)
	genCampus(univ, sink)
	otherUniv := func() string {
		return fmt.Sprintf("Univ%d", rng.Intn(total))
	}
	for d := 0; d < 4; d++ {
		dept := fmt.Sprintf("%s_Dept%d", univ, d)
		sink.AddConceptFact("Department", dept)
		sink.AddRoleFact("subOrganizationOf", dept, univ)
		building := fmt.Sprintf("%s_Bldg", dept)
		sink.AddConceptFact("Building", building)
		sink.AddRoleFact("locatedIn", dept, building)
		room := fmt.Sprintf("%s_Room1", dept)
		sink.AddConceptFact("Classroom", room)

		event := fmt.Sprintf("%s_Colloquium", dept)
		sink.AddConceptFact("Colloquium", event)

		group := fmt.Sprintf("%s_Group0", dept)
		sink.AddConceptFact("ResearchGroup", group)
		sink.AddRoleFact("subOrganizationOf", group, dept)
		sink.AddRoleFact("investigates", group, areas[rng.Intn(len(areas))])

		// Courses.
		courses := make([]string, 10)
		for c := range courses {
			courses[c] = fmt.Sprintf("%s_Course%d", dept, c)
			if c < 3 {
				sink.AddConceptFact("GraduateCourse", courses[c])
			} else if rng.Float64() < 0.85 {
				// EUDG-style incompleteness: some courses are typed only
				// through offeredBy⁻ / takesCourse⁻.
				sink.AddConceptFact("UndergraduateCourse", courses[c])
			}
			sink.AddRoleFact("offeredBy", courses[c], dept)
			if rng.Float64() < 0.3 {
				sink.AddRoleFact("scheduledIn", courses[c], room)
			}
		}
		sink.AddRoleFact("prerequisiteOf", courses[0], courses[1])

		// Publications.
		pubs := make([]string, 12)
		pubTypes := []string{"JournalArticle", "ConferencePaper", "TechnicalReport",
			"WorkshopPaper", "Book", "Survey"}
		for p := range pubs {
			pubs[p] = fmt.Sprintf("%s_Pub%d", dept, p)
			if rng.Float64() < 0.9 {
				sink.AddConceptFact(pubTypes[p%len(pubTypes)], pubs[p])
			}
			if p > 0 && rng.Float64() < 0.4 {
				sink.AddRoleFact("cites", pubs[p], pubs[rng.Intn(p)])
			}
		}

		// Faculty.
		profTypes := []string{"FullProfessor", "FullProfessor",
			"AssociateProfessor", "AssociateProfessor", "AssociateProfessor",
			"AssistantProfessor", "AssistantProfessor", "AssistantProfessor"}
		profs := make([]string, len(profTypes))
		for i, pt := range profTypes {
			profs[i] = fmt.Sprintf("%s_Prof%d", dept, i)
			if rng.Float64() < 0.8 {
				// Incompleteness: untyped professors remain reachable as
				// Professors through advisedBy's range.
				sink.AddConceptFact(pt, profs[i])
			}
			sink.AddRoleFact("worksFor", profs[i], dept)
			sink.AddRoleFact("teacherOf", profs[i], courses[rng.Intn(len(courses))])
			sink.AddRoleFact("researchInterest", profs[i], areas[rng.Intn(len(areas))])
			sink.AddRoleFact("doctoralDegreeFrom", profs[i], otherUniv())
			sink.AddRoleFact("authorOf", profs[i], pubs[rng.Intn(len(pubs))])
			if rng.Float64() < 0.5 {
				sink.AddRoleFact("attends", profs[i], event)
			}
			if i > 0 && rng.Float64() < 0.6 {
				sink.AddRoleFact("collaboratesWith", profs[i], profs[rng.Intn(i)])
			}
			if rng.Float64() < 0.4 {
				sink.AddRoleFact("reviews", profs[i], pubs[rng.Intn(len(pubs))])
			}
			if rng.Float64() < 0.35 {
				sink.AddRoleFact("affiliatedWith", profs[i], group)
			}
			if i > 0 && rng.Float64() < 0.3 {
				sink.AddRoleFact("worksWith", profs[i], profs[rng.Intn(i)])
			}
		}
		sink.AddConceptFact("Chair", profs[0])
		sink.AddRoleFact("headOf", profs[0], dept)
		sink.AddRoleFact("leads", profs[1%len(profs)], group)
		sink.AddRoleFact("organizes", profs[2%len(profs)], event)

		lecturers := make([]string, 2)
		for i := range lecturers {
			lecturers[i] = fmt.Sprintf("%s_Lect%d", dept, i)
			sink.AddConceptFact("Lecturer", lecturers[i])
			sink.AddRoleFact("worksFor", lecturers[i], dept)
			sink.AddRoleFact("teacherOf", lecturers[i], courses[rng.Intn(len(courses))])
		}

		// Graduate students.
		for i := 0; i < 6; i++ {
			phd := fmt.Sprintf("%s_PhD%d", dept, i)
			if rng.Float64() < 0.8 {
				sink.AddConceptFact("PhDStudent", phd)
			}
			adv := profs[rng.Intn(len(profs))]
			sink.AddRoleFact("advisedBy", phd, adv)
			sink.AddRoleFact("memberOf", phd, dept)
			sink.AddRoleFact("takesCourse", phd, courses[rng.Intn(3)])
			sink.AddRoleFact("undergraduateDegreeFrom", phd, otherUniv())
			sink.AddRoleFact("researchInterest", phd, areas[rng.Intn(len(areas))])
			if rng.Float64() < 0.5 {
				sink.AddRoleFact("authorOf", phd, pubs[rng.Intn(len(pubs))])
			}
			if rng.Float64() < 0.4 {
				sink.AddRoleFact("teachingAssistantOf", phd, courses[3+rng.Intn(7)])
			}
			if rng.Float64() < 0.3 {
				sink.AddRoleFact("attends", phd, event)
			}
			if rng.Float64() < 0.25 {
				sink.AddRoleFact("affiliatedWith", phd, group)
			}
			if rng.Float64() < 0.2 {
				sink.AddRoleFact("enrolledIn", phd, dept+"_GradProgram")
			}
		}
		// One senior PhD student per department participates in
		// everything — guaranteeing answers for the Q1/A* star joins.
		senior := fmt.Sprintf("%s_PhD0", dept)
		sink.AddRoleFact("researchInterest", senior, areas[rng.Intn(len(areas))])
		sink.AddRoleFact("attends", senior, event)
		sink.AddRoleFact("affiliatedWith", senior, group)
		sink.AddRoleFact("organizes", senior, event)
		sink.AddRoleFact("reviews", senior, pubs[rng.Intn(len(pubs))])

		// A funded research project per department.
		proj := dept + "_Proj0"
		sink.AddConceptFact("ResearchProject", proj)
		sink.AddRoleFact("fundedBy", proj, "NSF")
		sink.AddRoleFact("contributesTo", profs[0], proj)
		for i := 0; i < 5; i++ {
			ms := fmt.Sprintf("%s_MS%d", dept, i)
			sink.AddConceptFact("MastersStudent", ms)
			sink.AddRoleFact("memberOf", ms, dept)
			sink.AddRoleFact("enrolledIn", ms, dept+"_GradProgram")
			sink.AddRoleFact("takesCourse", ms, courses[rng.Intn(len(courses))])
			sink.AddRoleFact("mastersDegreeFrom", ms, univ)
		}
		sink.AddConceptFact("GraduateProgram", dept+"_GradProgram")

		// Undergraduates.
		for i := 0; i < 20; i++ {
			ug := fmt.Sprintf("%s_UG%d", dept, i)
			if rng.Float64() < 0.75 {
				sink.AddConceptFact("UndergraduateStudent", ug)
			}
			sink.AddRoleFact("takesCourse", ug, courses[3+rng.Intn(7)])
			if rng.Float64() < 0.5 {
				sink.AddRoleFact("takesCourse", ug, courses[3+rng.Intn(7)])
			}
			sink.AddRoleFact("memberOf", ug, dept)
			if rng.Float64() < 0.2 {
				sink.AddRoleFact("enrolledIn", ug, dept+"_UGProgram")
			}
			if rng.Float64() < 0.15 {
				sink.AddRoleFact("attends", ug, event)
			}
			if rng.Float64() < 0.1 {
				tutor := profs[rng.Intn(len(profs))]
				sink.AddRoleFact("supervisedBy", ug, tutor)
			}
		}
		sink.AddConceptFact("UndergraduateProgram", dept+"_UGProgram")

		// Alumni links close the degreeFrom loop.
		sink.AddRoleFact("hasAlumnus", univ, profs[rng.Intn(len(profs))])
	}
	// A university-level award.
	award := univ + "_Award"
	sink.AddConceptFact("Fellowship", award)
	sink.AddRoleFact("awardedTo", award, fmt.Sprintf("%s_Dept0_Prof0", univ))
}

// CountingSink counts facts (used to size datasets).
type CountingSink struct {
	Concepts, Roles int
	Inner           Sink
}

// AddConceptFact counts and forwards.
func (c *CountingSink) AddConceptFact(concept, ind string) {
	c.Concepts++
	if c.Inner != nil {
		c.Inner.AddConceptFact(concept, ind)
	}
}

// AddRoleFact counts and forwards.
func (c *CountingSink) AddRoleFact(role, s, o string) {
	c.Roles++
	if c.Inner != nil {
		c.Inner.AddRoleFact(role, s, o)
	}
}

// Total returns the number of generated facts.
func (c *CountingSink) Total() int { return c.Concepts + c.Roles }
