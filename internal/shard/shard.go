// Package shard is the hash-partitioned execution backend: the third
// plan.Backend, scaling the native streaming engine out across N
// first-column shards of every concept and role table. A plan compiles
// once per shard (reusing engine.Backend against a per-shard view),
// the shard trees run concurrently under the existing parallel-union
// operator, and a final distinct merges the answer streams. Joins
// aligned on the partition column run entirely shard-local; when the
// join key is bound but not partition-aligned, a shuffle exchange
// repartitions each fragment's stream to the shard owning the key
// instead of broadcasting (align.go holds both analyses); relations
// neither analysis can place are broadcast — every shard reads their
// full base table. Estimate prices sharded plans (including the
// exchange's transfer term) through the same IR the cover search
// scores native and SQL plans with.
//
// Two LRU caches make repeated queries cheap: a plan cache keyed by
// (canonical plan, data version) skips per-shard recompilation, and a
// result cache keyed by (canonical plan, shard, data version) replays
// a shard's deduplicated answer stream without re-executing it. Both
// age out on data mutations via DB.Version() in the key;
// core.Answerer.InvalidateTBox calls PurgeCache for ontology swaps.
package shard

import (
	"fmt"
	"sync"

	"repro/internal/cache"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/query"
)

// Cache capacities. Plans are small (compiled artifacts); results hold
// materialized per-shard relations, so the result cache is the one to
// tune on memory pressure.
const (
	DefaultPlanCacheSize   = 64
	DefaultResultCacheSize = 512
)

// planKey identifies one compiled plan per data version.
type planKey struct {
	plan string
	ver  uint64
}

// resultKey identifies one shard's cached answer stream: the canonical
// plan (the executed IR, exchange wrappers included), the backend's
// shard, and the data version — the per-shard analogue of
// core.AnswerCache's key.
type resultKey struct {
	plan  string
	shard int
	ver   uint64
}

// Backend executes logical plans against a hash-partitioned database.
// It is safe for concurrent use.
type Backend struct {
	part  *engine.Partitioning
	prof  *engine.Profile
	model *cost.Model

	mu    sync.Mutex
	views map[string][]*engine.DB // relSetKey(partitioned) → one view per shard

	plans   *cache.LRU[planKey, plan.Executable]
	results *cache.LRU[resultKey, *engine.Relation]
}

// New partitions db into n first-column hash shards and returns the
// backend. Per-shard compilation uses a copy of prof with adaptive
// feedback detached: shard-local scans see 1/n of every aligned
// relation, and folding those fanouts into the shared feedback map
// would corrupt the native backend's statistics (each backend keeps
// its own — see the per-backend feedback work).
func New(db *engine.DB, prof *engine.Profile, n int) (*Backend, error) {
	part, err := engine.Partition(db, n)
	if err != nil {
		return nil, err
	}
	p := *prof
	p.Feedback = nil
	return &Backend{
		part:    part,
		prof:    &p,
		model:   cost.NewModel(db),
		views:   make(map[string][]*engine.DB),
		plans:   cache.New[planKey, plan.Executable](DefaultPlanCacheSize),
		results: cache.New[resultKey, *engine.Relation](DefaultResultCacheSize),
	}, nil
}

// Name identifies the backend (it keys answer-cache entries).
func (b *Backend) Name() string { return "shard" }

// NumShards returns the shard count.
func (b *Backend) NumShards() int { return b.part.NumShards() }

// PurgeCache drops the compiled-plan and per-shard result caches.
// core.Answerer calls it on TBox invalidation; data mutations need no
// purge — every key carries DB.Version().
func (b *Backend) PurgeCache() {
	b.plans.Purge()
	b.results.Purge()
}

// CacheStats sums cumulative hit/miss counts over the plan and result
// caches.
func (b *Backend) CacheStats() (hits, misses uint64) {
	h1, m1 := b.plans.Stats()
	h2, m2 := b.results.Stats()
	return h1 + h2, m1 + m2
}

// CacheLen counts the live entries across the plan and result caches.
func (b *Backend) CacheLen() int { return b.plans.Len() + b.results.Len() }

// viewsFor returns the per-shard databases for one alignment decision.
// A plan with no alignment gets a single full view — evaluating an
// unaligned plan on every shard would do n times the work only to
// deduplicate it away.
func (b *Backend) viewsFor(an analysis) []*engine.DB {
	if !an.aligned() {
		return []*engine.DB{b.part.Base}
	}
	return b.viewsByRels(an.partitioned)
}

// viewsByRels returns the per-shard views restricting the given
// relations to their shard slices (cached by the relation set).
func (b *Backend) viewsByRels(rels map[string]bool) []*engine.DB {
	key := relSetKey(rels)
	b.mu.Lock()
	defer b.mu.Unlock()
	if vs, ok := b.views[key]; ok {
		return vs
	}
	vs := make([]*engine.DB, b.part.NumShards())
	for i := range vs {
		vs[i] = b.part.View(i, rels)
	}
	b.views[key] = vs
	return vs
}

// analyze validates and extracts the plan and picks the co-partitioned
// alignment. Validation runs once here for both Compile and Estimate;
// the per-shard engine compiles re-check, but a malformed plan never
// reaches partitioned views.
func (b *Backend) analyze(n *plan.Node) (analysis, plan.Lowered, error) {
	if err := plan.Validate(n); err != nil {
		return analysis{}, plan.Lowered{}, err
	}
	lo, err := plan.Extract(n)
	if err != nil {
		return analysis{}, plan.Lowered{}, err
	}
	return analyze(lo, b.part.Base.Stats()), lo, nil
}

// pickExchange decides whether the plan should repartition instead of
// broadcasting: only when the co-partitioned analysis is not already a
// perfect fit (fully aligned, nothing broadcast) and the exchange
// analysis finds a usable key.
func (b *Backend) pickExchange(an analysis, lo plan.Lowered) *exchange {
	if an.aligned() && len(an.broadcast) == 0 {
		return nil
	}
	return analyzeExchange(lo, b.part.Base.Stats(), b.NumShards())
}

// Compile lowers the plan once per shard view, through the plan cache:
// an unchanged database serves the previously compiled executable.
func (b *Backend) Compile(n *plan.Node) (plan.Executable, error) {
	key := planKey{plan: n.String(), ver: b.part.Base.Version()}
	if e, ok := b.plans.Get(key); ok {
		return e, nil
	}
	e, err := b.compile(n)
	if err != nil {
		return nil, err
	}
	b.plans.Put(key, e)
	return e, nil
}

func (b *Backend) compile(n *plan.Node) (plan.Executable, error) {
	an, lo, err := b.analyze(n)
	if err != nil {
		return nil, err
	}
	if ex := b.pickExchange(an, lo); ex != nil {
		if xe, err := b.compileExchange(n, ex); err == nil {
			return xe, nil
		}
		// A shape the exchange compiler cannot take apart falls back to
		// the co-partitioned/broadcast path below rather than failing.
	}
	views := b.viewsFor(an)
	parts := make([]*engine.Compiled, len(views))
	var est plan.Estimate
	for i, v := range views {
		c, err := engine.NewBackend(v, b.prof).CompilePlan(n)
		if err != nil {
			return nil, fmt.Errorf("shard %d/%d: %w", i, len(views), err)
		}
		parts[i] = c
		e := c.Estimate()
		est.Cost += e.Cost
		est.Card += e.Card
	}
	return &executable{b: b, node: n, an: an, parts: parts, est: est}, nil
}

// coverParts takes a cover plan apart: Distinct(Project(Join(frags))).
// Returns nils when the plan has any other shape.
func coverParts(n *plan.Node) (proj *plan.Node, frags []*plan.Node) {
	if n == nil || n.Op != plan.OpDistinct || len(n.Inputs) != 1 {
		return nil, nil
	}
	proj = n.Inputs[0]
	if proj.Op != plan.OpProject || len(proj.Inputs) != 1 || proj.Inputs[0].Op != plan.OpJoin {
		return nil, nil
	}
	return proj, proj.Inputs[0].Inputs
}

// compileExchange lowers a cover plan into the shuffle execution: each
// fragment compiled per shard against its own partitioned views (or
// once, for broadcast fragments), a global join order fixed from the
// base-database fragment estimates, and the executed IR — the original
// cover with Exchange wrappers on the repartitioned fragments —
// validated so the exchange invariants are machine-checked.
func (b *Backend) compileExchange(n *plan.Node, ex *exchange) (*exchangeExec, error) {
	proj, frags := coverParts(n)
	if frags == nil || len(frags) != len(ex.frags) {
		return nil, fmt.Errorf("shard: exchange needs the cover shape distinct(project(join(...)))")
	}
	nsh := b.NumShards()
	base := engine.NewBackend(b.part.Base, b.prof)
	parts := make([][]*engine.Compiled, len(frags))
	fragEst := make([]plan.Estimate, len(frags))
	wrapped := make([]*plan.Node, len(frags))
	exNodes := make([]*plan.Node, len(frags))
	for j, frag := range frags {
		fragEst[j] = base.Estimate(frag)
		fp := ex.frags[j]
		if fp.mode == fragBroadcast {
			c, err := base.CompilePlan(frag)
			if err != nil {
				return nil, fmt.Errorf("shard: broadcast fragment %d: %w", j, err)
			}
			parts[j] = []*engine.Compiled{c}
			wrapped[j] = frag
			continue
		}
		views := b.viewsByRels(fp.partitioned)
		parts[j] = make([]*engine.Compiled, nsh)
		for i, v := range views {
			c, err := engine.NewBackend(v, b.prof).CompilePlan(frag)
			if err != nil {
				return nil, fmt.Errorf("shard %d/%d: fragment %d: %w", i, nsh, j, err)
			}
			parts[j][i] = c
		}
		wrapped[j] = frag
		if fp.mode == fragShuffle {
			exNodes[j] = &plan.Node{Op: plan.OpExchange, Key: ex.key, Inputs: []*plan.Node{frag}}
			wrapped[j] = exNodes[j]
		}
	}
	exIR := &plan.Node{Op: plan.OpDistinct, Name: n.Name, Inputs: []*plan.Node{
		{Op: plan.OpProject, Head: proj.Head, Name: proj.Name, Inputs: []*plan.Node{
			{Op: plan.OpJoin, Inputs: wrapped},
		}},
	}}
	if err := plan.Validate(exIR); err != nil {
		return nil, err
	}
	// One global join order from the base-database estimates. Per-shard
	// orders would differ with the data skew, and exchange build sides
	// are only deadlock-free when every destination loads the same hubs
	// in the same sequence.
	cards := make([]float64, len(frags))
	for j, e := range fragEst {
		cards[j] = e.Card
	}
	probe, builds := engine.CoverJoinOrder(cards)
	est := b.exchangeEstimate(n, ex, fragEst)
	return &exchangeExec{
		b: b, node: n, exIR: exIR, ex: ex,
		head: proj.Head, frags: frags, exNodes: exNodes,
		parts: parts, fragEst: fragEst,
		probe: probe, builds: builds, est: est,
	}, nil
}

// exchangeEstimate prices the shuffle execution: the single-node cost
// of the whole plan (partitioned scans split 1/n across n shards, so
// their total is the single-node figure), plus the transfer term for
// every row the shuffled fragments emit, plus the (n-1) extra
// evaluations a broadcast fragment would cost if replayed per shard —
// it is evaluated once here, but its rows enter n build tables.
func (b *Backend) exchangeEstimate(n *plan.Node, ex *exchange, fragEst []plan.Estimate) plan.Estimate {
	est := engine.NewBackend(b.part.Base, b.prof).Estimate(n)
	moved := 0.0
	for j, fp := range ex.frags {
		switch fp.mode {
		case fragShuffle:
			moved += fragEst[j].Card
		case fragBroadcast:
			est.Cost += fragEst[j].Cost * float64(b.NumShards()-1)
		}
	}
	est.Cost += b.model.ExchangeCost(moved)
	return est
}

// Estimate scores a plan without compiling it. The exchange path uses
// exchangeEstimate; the co-partitioned path sums the per-shard engine
// estimates (broadcast relations counted once per shard, which is
// exactly the work done; Card double-counts rows produced by more than
// one shard before the merge distinct — an upper bound, like every
// union-arm estimate in the engine). Malformed plans cost +Inf,
// delegated through the base engine backend.
func (b *Backend) Estimate(n *plan.Node) plan.Estimate {
	an, lo, err := b.analyze(n)
	if err != nil {
		return engine.NewBackend(b.part.Base, b.prof).Estimate(n)
	}
	if ex := b.pickExchange(an, lo); ex != nil {
		if _, frags := coverParts(n); frags != nil && len(frags) == len(ex.frags) {
			base := engine.NewBackend(b.part.Base, b.prof)
			fragEst := make([]plan.Estimate, len(frags))
			for j, frag := range frags {
				fragEst[j] = base.Estimate(frag)
			}
			return b.exchangeEstimate(n, ex, fragEst)
		}
	}
	var est plan.Estimate
	for _, v := range b.viewsFor(an) {
		e := engine.NewBackend(v, b.prof).Estimate(n)
		est.Cost += e.Cost
		est.Card += e.Card
	}
	return est
}

// perShardWorkers splits one worker budget across n shard pipelines
// without starving any of them: integer division floored at 1 (seven
// shards on a two-core budget must not hand a shard zero workers —
// engine.clampWorkers rejects 0, but the split must never produce it).
func perShardWorkers(workers, n int) int {
	per := workers / n
	if per < 1 {
		per = 1
	}
	return per
}

// executable is a compiled sharded plan on the co-partitioned path:
// one engine compilation per shard view plus the merge recipe.
// Physical operator state is built per Run, so concurrent runs are
// independent.
type executable struct {
	b     *Backend
	node  *plan.Node
	an    analysis
	parts []*engine.Compiled
	est   plan.Estimate
}

// Estimate returns the summed per-shard estimate frozen at compile
// time.
func (e *executable) Estimate() plan.Estimate { return e.est }

// Run builds one operator tree per shard (or replays a shard's cached
// relation), unions them under the parallel union, deduplicates the
// merged stream, and drains. The worker budget is split across shards
// — each shard tree plans with perShardWorkers(workers, n) — while the
// merging union spends the full budget pulling shard streams
// concurrently; both go through clampWorkers inside the engine, so the
// pool never oversubscribes GOMAXPROCS. Each shard that runs live to
// completion is captured into the result cache; on this path shards
// are independent, so partial hits replay what they can.
func (e *executable) Run(workers int) (*plan.RunResult, error) {
	n := len(e.parts)
	perShard := perShardWorkers(workers, n)
	ver := e.b.part.Base.Version()
	ckey := e.node.String()
	roots := make([]engine.Operator, n)
	caps := make([]*engine.Capture, n)
	annotate := make([]func(map[*plan.Node]*plan.ExplainNode), n)
	cachedRows := make([]int64, n)
	hits := 0
	for i, c := range e.parts {
		if r, ok := e.b.results.Get(resultKey{plan: ckey, shard: i, ver: ver}); ok {
			roots[i] = engine.NewRelationSource(r)
			cachedRows[i] = int64(len(r.Rows))
			hits++
			continue
		}
		t, at := c.Tree(perShard)
		caps[i] = engine.NewCapture(t)
		roots[i] = caps[i]
		annotate[i] = at
	}
	merged := engine.NewUnionParallel(roots[0].Schema(), roots, workers)
	rel := engine.Drain(engine.NewDistinctOperator(merged))
	for i, c := range caps {
		if c == nil {
			continue
		}
		if r, ok := c.Result(); ok {
			e.b.results.Put(resultKey{plan: ckey, shard: i, ver: ver}, r)
		}
	}

	shards := make([]*plan.ExplainNode, n)
	for i, c := range e.parts {
		sroot, at := plan.Skeleton(e.node)
		est := c.Estimate()
		sn := &plan.ExplainNode{
			Op:       "shard",
			Detail:   fmt.Sprintf("shard %d/%d", i, n),
			EstRows:  est.Card,
			EstCost:  est.Cost,
			Children: []*plan.ExplainNode{sroot},
		}
		if annotate[i] == nil {
			sn.Detail += " (cache hit)"
			sn.ActualRows = cachedRows[i]
		} else {
			annotate[i](at)
			sn.ActualRows = roots[i].Stats().Rows
		}
		shards[i] = sn
	}
	root := &plan.ExplainNode{
		Op: "shard-merge",
		Detail: fmt.Sprintf("%s; shard-cache %d/%d hits",
			e.an.describe(e.b.NumShards()), hits, n),
		EstRows:    e.est.Card,
		EstCost:    e.est.Cost,
		ActualRows: int64(len(rel.Rows)),
		Children:   shards,
	}
	ex := &plan.Explain{Backend: e.b.Name(), EstCost: e.est.Cost, EstCard: e.est.Card, Root: root}
	return &plan.RunResult{Tuples: rel.Decode(e.b.part.Base.Dict), Explain: ex}, nil
}

// exchangeExec is a compiled sharded plan on the shuffle path: every
// fragment compiled per shard against its own partitioned views
// (broadcast fragments once, on the base), one global join order, and
// the exchange-wrapped IR for EXPLAIN and cache identity.
type exchangeExec struct {
	b       *Backend
	node    *plan.Node
	exIR    *plan.Node
	ex      *exchange
	head    []query.Term
	frags   []*plan.Node
	exNodes []*plan.Node // per fragment: its OpExchange wrapper, or nil
	parts   [][]*engine.Compiled
	fragEst []plan.Estimate
	probe   int
	builds  []int
	est     plan.Estimate
}

// Estimate returns the exchange estimate frozen at compile time.
func (e *exchangeExec) Estimate() plan.Estimate { return e.est }

// Run wires the shuffle execution. Per destination shard: a hash join
// over one child per fragment — the shard's own local tree, the
// shard's exchange endpoint (fed by all source shards), or a replay of
// the broadcast fragment's single evaluation — projected onto the
// cover head and deduplicated, then captured for the result cache. The
// merge is the fan-in union (one dedicated consumer per destination —
// a destination without a consumer would stall the bounded exchange
// channels feeding the others) under the global distinct.
//
// A destination's stream depends on every source shard through the
// exchange, so the result cache is all-or-nothing here: only a full
// set of cached destinations short-circuits execution.
func (e *exchangeExec) Run(workers int) (*plan.RunResult, error) {
	nsh := e.b.NumShards()
	perShard := perShardWorkers(workers, nsh)
	base := e.b.part.Base
	ver := base.Version()
	ckey := e.exIR.String()

	cached := make([]*engine.Relation, nsh)
	hits := 0
	for i := 0; i < nsh; i++ {
		if r, ok := e.b.results.Get(resultKey{plan: ckey, shard: i, ver: ver}); ok {
			cached[i] = r
			hits++
		}
	}
	if hits == nsh {
		return e.replayCached(cached)
	}

	nf := len(e.parts)
	srcs := make([][]engine.Operator, nf)
	annots := make([][]func(map[*plan.Node]*plan.ExplainNode), nf)
	bcast := make([]*engine.Relation, nf)
	for j := 0; j < nf; j++ {
		if e.ex.frags[j].mode == fragBroadcast {
			t, at := e.parts[j][0].Tree(workers)
			bcast[j] = engine.Drain(t)
			annots[j] = []func(map[*plan.Node]*plan.ExplainNode){at}
			continue
		}
		srcs[j] = make([]engine.Operator, nsh)
		annots[j] = make([]func(map[*plan.Node]*plan.ExplainNode), nsh)
		for i := 0; i < nsh; i++ {
			srcs[j][i], annots[j][i] = e.parts[j][i].Tree(perShard)
		}
	}
	hubs := make([]*engine.Exchange, nf)
	eps := make([][]engine.Operator, nf)
	for j := 0; j < nf; j++ {
		if e.ex.frags[j].mode != fragShuffle {
			continue
		}
		hub, endpoints, err := engine.NewExchange(srcs[j], e.ex.key, workers)
		if err != nil {
			return nil, err
		}
		hubs[j] = hub
		eps[j] = endpoints
	}
	caps := make([]*engine.Capture, nsh)
	roots := make([]engine.Operator, nsh)
	for i := 0; i < nsh; i++ {
		children := make([]engine.Operator, nf)
		for j := 0; j < nf; j++ {
			switch e.ex.frags[j].mode {
			case fragBroadcast:
				children[j] = engine.NewRelationSource(bcast[j])
			case fragShuffle:
				children[j] = eps[j][i]
			default:
				children[j] = srcs[j][i]
			}
		}
		joined := engine.NewHashJoin(children, e.probe, e.builds, perShard)
		caps[i] = engine.NewCapture(engine.NewDistinctOperator(engine.NewProjectNamed(joined, e.head, base)))
		roots[i] = caps[i]
	}
	merged := engine.NewUnionFanIn(roots[0].Schema(), roots)
	rel := engine.Drain(engine.NewDistinctOperator(merged))
	for i, c := range caps {
		if r, ok := c.Result(); ok {
			e.b.results.Put(resultKey{plan: ckey, shard: i, ver: ver}, r)
		}
	}

	var moved int64
	for _, h := range hubs {
		if h != nil {
			moved += h.RowsMoved()
		}
	}
	shards := make([]*plan.ExplainNode, nsh)
	for i := 0; i < nsh; i++ {
		sroot, at := plan.Skeleton(e.exIR)
		for j := 0; j < nf; j++ {
			if e.ex.frags[j].mode == fragBroadcast {
				annots[j][0](at)
			} else {
				annots[j][i](at)
			}
		}
		for j, hub := range hubs {
			if hub == nil {
				continue
			}
			if en := at[e.exNodes[j]]; en != nil {
				en.ActualRows = hub.DeliveredTo(i)
				en.EstRows = e.fragEst[j].Card / float64(nsh)
				en.Detail += fmt.Sprintf(" sent=%d recv=%d", hub.SentFrom(i), hub.DeliveredTo(i))
			}
		}
		shards[i] = &plan.ExplainNode{
			Op:         "shard",
			Detail:     fmt.Sprintf("shard %d/%d", i, nsh),
			EstRows:    e.est.Card / float64(nsh),
			EstCost:    e.est.Cost / float64(nsh),
			ActualRows: roots[i].Stats().Rows,
			Children:   []*plan.ExplainNode{sroot},
		}
	}
	root := &plan.ExplainNode{
		Op: "shard-merge",
		Detail: fmt.Sprintf("%s; moved %d rows; shard-cache %d/%d hits",
			e.ex.describe(nsh), moved, 0, nsh),
		EstRows:    e.est.Card,
		EstCost:    e.est.Cost,
		ActualRows: int64(len(rel.Rows)),
		Children:   shards,
	}
	exp := &plan.Explain{Backend: e.b.Name(), EstCost: e.est.Cost, EstCard: e.est.Card, Root: root}
	return &plan.RunResult{Tuples: rel.Decode(base.Dict), Explain: exp}, nil
}

// replayCached merges a full set of cached destination relations —
// the repeated-query fast path: no compilation, no scans, no shuffle.
func (e *exchangeExec) replayCached(cached []*engine.Relation) (*plan.RunResult, error) {
	nsh := len(cached)
	roots := make([]engine.Operator, nsh)
	for i, r := range cached {
		roots[i] = engine.NewRelationSource(r)
	}
	merged := engine.NewUnionParallel(roots[0].Schema(), roots, nsh)
	rel := engine.Drain(engine.NewDistinctOperator(merged))
	shards := make([]*plan.ExplainNode, nsh)
	for i, r := range cached {
		sroot, _ := plan.Skeleton(e.exIR)
		shards[i] = &plan.ExplainNode{
			Op:         "shard",
			Detail:     fmt.Sprintf("shard %d/%d (cache hit)", i, nsh),
			EstRows:    e.est.Card / float64(nsh),
			EstCost:    e.est.Cost / float64(nsh),
			ActualRows: int64(len(r.Rows)),
			Children:   []*plan.ExplainNode{sroot},
		}
	}
	root := &plan.ExplainNode{
		Op: "shard-merge",
		Detail: fmt.Sprintf("%s; shard-cache %d/%d hits",
			e.ex.describe(nsh), nsh, nsh),
		EstRows:    e.est.Card,
		EstCost:    e.est.Cost,
		ActualRows: int64(len(rel.Rows)),
		Children:   shards,
	}
	exp := &plan.Explain{Backend: e.b.Name(), EstCost: e.est.Cost, EstCard: e.est.Card, Root: root}
	return &plan.RunResult{Tuples: rel.Decode(e.b.part.Base.Dict), Explain: exp}, nil
}
