// Package shard is the hash-partitioned execution backend: the third
// plan.Backend, scaling the native streaming engine out across N
// first-column shards of every concept and role table. A plan compiles
// once per shard (reusing engine.Backend against a per-shard view),
// the shard trees run concurrently under the existing parallel-union
// operator, and a final distinct merges the answer streams. Joins
// aligned on the partition column run entirely shard-local; relations
// the alignment analysis (align.go) cannot align are broadcast — every
// shard reads their full base table. Estimate sums the per-shard
// figures so the cover search scores sharded plans through the same IR
// it scores native and SQL plans.
package shard

import (
	"fmt"
	"sync"

	"repro/internal/engine"
	"repro/internal/plan"
)

// Backend executes logical plans against a hash-partitioned database.
// It is safe for concurrent use.
type Backend struct {
	part *engine.Partitioning
	prof *engine.Profile

	mu    sync.Mutex
	views map[string][]*engine.DB // analysis.key() → one view per shard
}

// New partitions db into n first-column hash shards and returns the
// backend. Per-shard compilation uses a copy of prof with adaptive
// feedback detached: shard-local scans see 1/n of every aligned
// relation, and folding those fanouts into the shared feedback map
// would corrupt the native backend's statistics (each backend keeps
// its own — see the per-backend feedback work).
func New(db *engine.DB, prof *engine.Profile, n int) (*Backend, error) {
	part, err := engine.Partition(db, n)
	if err != nil {
		return nil, err
	}
	p := *prof
	p.Feedback = nil
	return &Backend{part: part, prof: &p, views: make(map[string][]*engine.DB)}, nil
}

// Name identifies the backend (it keys answer-cache entries).
func (b *Backend) Name() string { return "shard" }

// NumShards returns the shard count.
func (b *Backend) NumShards() int { return b.part.NumShards() }

// viewsFor returns the per-shard databases for one alignment decision,
// cached by the partitioned relation set. A plan with no alignment
// gets a single full view — evaluating an unaligned plan on every
// shard would do n times the work only to deduplicate it away.
func (b *Backend) viewsFor(an analysis) []*engine.DB {
	if !an.aligned() {
		return []*engine.DB{b.part.Base}
	}
	key := an.key()
	b.mu.Lock()
	defer b.mu.Unlock()
	if vs, ok := b.views[key]; ok {
		return vs
	}
	vs := make([]*engine.DB, b.part.NumShards())
	for i := range vs {
		vs[i] = b.part.View(i, an.partitioned)
	}
	b.views[key] = vs
	return vs
}

// analyzeViews validates and extracts the plan, picks the alignment,
// and returns the shard views to compile against. Validation runs once
// here for both Compile and Estimate; the per-shard engine compiles
// re-check, but a malformed plan never reaches partitioned views.
func (b *Backend) analyzeViews(n *plan.Node) (analysis, []*engine.DB, error) {
	if err := plan.Validate(n); err != nil {
		return analysis{}, nil, err
	}
	lo, err := plan.Extract(n)
	if err != nil {
		return analysis{}, nil, err
	}
	an := analyze(lo, b.part.Base.Stats())
	return an, b.viewsFor(an), nil
}

// Compile lowers the plan once per shard view.
func (b *Backend) Compile(n *plan.Node) (plan.Executable, error) {
	an, views, err := b.analyzeViews(n)
	if err != nil {
		return nil, err
	}
	parts := make([]*engine.Compiled, len(views))
	var est plan.Estimate
	for i, v := range views {
		c, err := engine.NewBackend(v, b.prof).CompilePlan(n)
		if err != nil {
			return nil, fmt.Errorf("shard %d/%d: %w", i, len(views), err)
		}
		parts[i] = c
		e := c.Estimate()
		est.Cost += e.Cost
		est.Card += e.Card
	}
	return &executable{b: b, node: n, an: an, parts: parts, est: est}, nil
}

// Estimate sums the per-shard engine estimates: the cost of running
// the plan on every shard (broadcast relations counted once per shard,
// which is exactly the work done). Card double-counts rows produced by
// more than one shard before the merge distinct — an upper bound, like
// every union-arm estimate in the engine. Malformed plans cost +Inf,
// delegated through the base engine backend.
func (b *Backend) Estimate(n *plan.Node) plan.Estimate {
	_, views, err := b.analyzeViews(n)
	if err != nil {
		return engine.NewBackend(b.part.Base, b.prof).Estimate(n)
	}
	var est plan.Estimate
	for _, v := range views {
		e := engine.NewBackend(v, b.prof).Estimate(n)
		est.Cost += e.Cost
		est.Card += e.Card
	}
	return est
}

// executable is a compiled sharded plan: one engine compilation per
// shard view plus the merge recipe. Physical operator state is built
// per Run, so concurrent runs are independent.
type executable struct {
	b     *Backend
	node  *plan.Node
	an    analysis
	parts []*engine.Compiled
	est   plan.Estimate
}

// Estimate returns the summed per-shard estimate frozen at compile
// time.
func (e *executable) Estimate() plan.Estimate { return e.est }

// Run builds one operator tree per shard, unions them under the
// parallel union (the shard fan-out), deduplicates the merged stream,
// and drains. The worker budget is split across shards — each shard
// tree plans with workers/n — while the merging union spends the full
// budget pulling shard streams concurrently; both go through
// clampWorkers inside the engine, so the pool never oversubscribes
// GOMAXPROCS.
func (e *executable) Run(workers int) (*plan.RunResult, error) {
	n := len(e.parts)
	perShard := workers / n
	if perShard < 1 {
		perShard = 1
	}
	roots := make([]engine.Operator, n)
	annotate := make([]func(map[*plan.Node]*plan.ExplainNode), n)
	for i, c := range e.parts {
		roots[i], annotate[i] = c.Tree(perShard)
	}
	merged := engine.NewUnionParallel(roots[0].Schema(), roots, workers)
	rel := engine.Drain(engine.NewDistinctOperator(merged))

	shards := make([]*plan.ExplainNode, n)
	for i, c := range e.parts {
		sroot, at := plan.Skeleton(e.node)
		annotate[i](at)
		est := c.Estimate()
		shards[i] = &plan.ExplainNode{
			Op:         "shard",
			Detail:     fmt.Sprintf("shard %d/%d", i, n),
			EstRows:    est.Card,
			EstCost:    est.Cost,
			ActualRows: roots[i].Stats().Rows,
			Children:   []*plan.ExplainNode{sroot},
		}
	}
	root := &plan.ExplainNode{
		Op:         "shard-merge",
		Detail:     e.an.describe(e.b.NumShards()),
		EstRows:    e.est.Card,
		EstCost:    e.est.Cost,
		ActualRows: int64(len(rel.Rows)),
		Children:   shards,
	}
	ex := &plan.Explain{Backend: e.b.Name(), EstCost: e.est.Cost, EstCard: e.est.Card, Root: root}
	return &plan.RunResult{Tuples: rel.Decode(e.b.part.Base.Dict), Explain: ex}, nil
}
