package shard

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/query"
)

// shuffleCover is the canonical non-first-position cover: worksFor
// binds the join key y in object position, Company in subject
// position, so no single partition variable aligns both fragments —
// the exchange must repartition the worksFor stream on y.
func shuffleCover() *plan.Node {
	return plan.FromJUCQ(query.JUCQ{Name: "q",
		Head: query.MustParseCQ("q(x, y) <- worksFor(x, y)").Head,
		Subs: []query.UCQ{
			ucq("q1(x, y) <- worksFor(x, y)"),
			ucq("q2(y) <- Company(y)"),
		}})
}

// skewABox concentrates almost every worksFor row on one company, so
// the exchange routes nearly the whole stream to a single shard.
func skewABox() string {
	var b strings.Builder
	b.WriteString(testABox)
	for i := 0; i < 60; i++ {
		fmt.Fprintf(&b, "worksFor(extra%d, acme)\n", i)
	}
	return b.String()
}

func TestAnalyzeExchange(t *testing.T) {
	db := loadDB(t, testABox)
	st := db.Stats()
	lo, err := plan.Extract(shuffleCover())
	if err != nil {
		t.Fatal(err)
	}
	ex := analyzeExchange(lo, st, 3)
	if ex == nil || ex.key != "y" {
		t.Fatalf("exchange = %+v", ex)
	}
	if len(ex.frags) != 2 {
		t.Fatalf("fragments = %+v", ex.frags)
	}
	f0, f1 := ex.frags[0], ex.frags[1]
	if f0.mode != fragShuffle || f0.scanVar != "x" || !f0.partitioned["worksFor"] {
		t.Fatalf("worksFor fragment = %+v", f0)
	}
	if f1.mode != fragLocal || f1.scanVar != "y" || !f1.partitioned["Company"] {
		t.Fatalf("Company fragment = %+v", f1)
	}
	if d := ex.describe(3); !strings.Contains(d, "exchange on y") ||
		!strings.Contains(d, "worksFor@x") || !strings.Contains(d, "local Company") {
		t.Fatalf("describe = %q", d)
	}

	// Below two shards there is nothing to repartition.
	if ex := analyzeExchange(lo, st, 1); ex != nil {
		t.Fatalf("single shard must not exchange, got %+v", ex)
	}
	// A single fragment has no cover join to repartition for.
	slo, err := plan.Extract(plan.FromUCQ(ucq("q(x, y) <- worksFor(x, y)")))
	if err != nil {
		t.Fatal(err)
	}
	if ex := analyzeExchange(slo, st, 3); ex != nil {
		t.Fatalf("single fragment must not exchange, got %+v", ex)
	}
	// A fully co-partitioned cover needs no shuffle fragment at all.
	alo, err := plan.Extract(plan.FromJUCQ(query.JUCQ{Name: "q",
		Head: query.MustParseCQ("q(x) <- Employee(x)").Head,
		Subs: []query.UCQ{ucq("q1(x) <- Employee(x)"), ucq("q2(x) <- Manager(x)")}}))
	if err != nil {
		t.Fatal(err)
	}
	if ex := analyzeExchange(alo, st, 3); ex != nil {
		t.Fatalf("aligned cover must not exchange, got %+v", ex)
	}
	// A fragment whose scans never align (constant first position)
	// broadcasts inside an otherwise-shuffled plan.
	blo, err := plan.Extract(plan.FromJUCQ(query.JUCQ{Name: "q",
		Head: query.MustParseCQ("q(x, y) <- worksFor(x, y)").Head,
		Subs: []query.UCQ{
			ucq("q1(x, y) <- worksFor(x, y)"),
			ucq("q2(y) <- locatedIn('acme', y)"),
		}}))
	if err != nil {
		t.Fatal(err)
	}
	bex := analyzeExchange(blo, st, 3)
	if bex == nil || bex.frags[1].mode != fragBroadcast {
		t.Fatalf("constant-rooted fragment must broadcast, got %+v", bex)
	}
}

// exchangeDiffQueries are covers that exercise the shuffle path:
// the plain shuffle join, the skewed variant (same plan, hot data),
// and a cover with a broadcast fragment riding along.
func exchangeDiffQueries() []*plan.Node {
	return []*plan.Node{
		shuffleCover(),
		plan.FromJUCQ(query.JUCQ{Name: "q",
			Head: query.MustParseCQ("q(x, y) <- worksFor(x, y)").Head,
			Subs: []query.UCQ{
				ucq("q1(x, y) <- worksFor(x, y)"),
				ucq("q2(y) <- Company(y)", "q2(y) <- locatedIn(y, z)"),
			}}),
		plan.FromJUCQ(query.JUCQ{Name: "q",
			Head: query.MustParseCQ("q(x, y) <- worksFor(x, y)").Head,
			Subs: []query.UCQ{
				ucq("q1(x, y) <- worksFor(x, y)"),
				ucq("q2(y) <- locatedIn('acme', y)"),
			}}),
	}
}

// TestExchangeDifferential runs the shuffle covers against the native
// backend on the full data, the hot-key skew, and the empty ABox, at
// 1/2/7 shards (run under -race in CI).
func TestExchangeDifferential(t *testing.T) {
	for _, abox := range []string{testABox, skewABox(), ""} {
		db := loadDB(t, abox)
		prof := engine.ProfilePostgres()
		native := engine.NewBackend(db, prof)
		for _, shards := range []int{1, 2, 7} {
			sb, err := New(db, prof, shards)
			if err != nil {
				t.Fatal(err)
			}
			for qi, n := range exchangeDiffQueries() {
				want := sortTuples(runPlan(t, native, n, 4))
				got := sortTuples(runPlan(t, sb, n, 4))
				if len(want) != len(got) {
					t.Fatalf("q%d shards=%d abox=%d: native %d tuples, shard %d",
						qi, shards, len(abox), len(want), len(got))
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("q%d shards=%d: tuple %d differs: %q vs %q",
							qi, shards, i, want[i], got[i])
					}
				}
			}
		}
	}
}

// findExplain walks an explain tree collecting nodes by operator name.
func findExplain(n *plan.ExplainNode, op string, out *[]*plan.ExplainNode) {
	if n == nil {
		return
	}
	if n.Op == op {
		*out = append(*out, n)
	}
	for _, c := range n.Children {
		findExplain(c, op, out)
	}
}

// TestExchangeExplain asserts the EXPLAIN surface of the shuffle path:
// the merge root names the exchange and the rows moved, and every
// destination carries an exchange node with its per-shard delivery
// actuals.
func TestExchangeExplain(t *testing.T) {
	db := loadDB(t, testABox)
	sb, err := New(db, engine.ProfilePostgres(), 3)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := sb.Compile(shuffleCover())
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	root := res.Explain.Root
	if !strings.Contains(root.Detail, "exchange on y") ||
		!strings.Contains(root.Detail, "moved") {
		t.Fatalf("root detail = %q", root.Detail)
	}
	if len(root.Children) != 3 {
		t.Fatalf("destinations = %d", len(root.Children))
	}
	var exNodes []*plan.ExplainNode
	findExplain(root, "exchange", &exNodes)
	if len(exNodes) != 3 {
		t.Fatalf("exchange nodes = %d, want one per destination", len(exNodes))
	}
	var delivered int64
	for _, en := range exNodes {
		if !strings.Contains(en.Detail, "on y") || !strings.Contains(en.Detail, "sent=") ||
			!strings.Contains(en.Detail, "recv=") {
			t.Fatalf("exchange detail = %q", en.Detail)
		}
		delivered += en.ActualRows
	}
	// Every worksFor row is delivered to exactly one destination.
	if delivered != 5 {
		t.Fatalf("delivered actuals sum to %d, want 5", delivered)
	}
	if res.Explain.Text() == "" {
		t.Fatal("explain text empty")
	}
}

// TestSevenShardsTwoProcs is the regression for the worker split
// rounding to zero: seven shards on a two-core budget must still hand
// every shard pipeline at least one worker.
func TestSevenShardsTwoProcs(t *testing.T) {
	old := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(old)
	db := loadDB(t, testABox)
	prof := engine.ProfilePostgres()
	native := engine.NewBackend(db, prof)
	sb, err := New(db, prof, 7)
	if err != nil {
		t.Fatal(err)
	}
	for qi, n := range []*plan.Node{
		shuffleCover(),
		plan.FromUCQ(ucq("q(x, y) <- worksFor(x, y), Manager(x)")),
	} {
		want := sortTuples(runPlan(t, native, n, 2))
		got := sortTuples(runPlan(t, sb, n, 2))
		if len(want) != len(got) {
			t.Fatalf("q%d: native %d tuples, shard %d", qi, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("q%d: tuple %d differs: %q vs %q", qi, i, want[i], got[i])
			}
		}
	}
}

func TestPerShardWorkersFloorsAtOne(t *testing.T) {
	for _, c := range []struct{ workers, n, want int }{
		{2, 7, 1}, {0, 3, 1}, {8, 2, 4}, {7, 2, 3}, {1, 1, 1},
	} {
		if got := perShardWorkers(c.workers, c.n); got != c.want {
			t.Fatalf("perShardWorkers(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
}

// TestShardResultCache runs the same plans twice on an unchanged
// database: the second run must replay every shard from the result
// cache (visible in EXPLAIN and the backend counters), and PurgeCache
// must force the third run back to live execution.
func TestShardResultCache(t *testing.T) {
	db := loadDB(t, testABox)
	sb, err := New(db, engine.ProfilePostgres(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for name, n := range map[string]*plan.Node{
		"aligned":  plan.FromUCQ(ucq("q(x) <- Employee(x), worksFor(x, y)")),
		"exchange": shuffleCover(),
	} {
		sb.PurgeCache()
		ex, err := sb.Compile(n)
		if err != nil {
			t.Fatal(err)
		}
		first, err := ex.Run(4)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(first.Explain.Root.Detail, "shard-cache 0/3 hits") {
			t.Fatalf("%s first run detail = %q", name, first.Explain.Root.Detail)
		}
		// Same plan, unchanged data: compile is served by the plan cache
		// and every shard replays from the result cache.
		ex2, err := sb.Compile(n)
		if err != nil {
			t.Fatal(err)
		}
		second, err := ex2.Run(4)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(second.Explain.Root.Detail, "shard-cache 3/3 hits") {
			t.Fatalf("%s second run detail = %q", name, second.Explain.Root.Detail)
		}
		if sortTuples(first.Tuples)[0] != sortTuples(second.Tuples)[0] ||
			len(first.Tuples) != len(second.Tuples) {
			t.Fatalf("%s cached tuples differ", name)
		}
		var cacheHits []*plan.ExplainNode
		findExplain(second.Explain.Root, "shard", &cacheHits)
		for _, sn := range cacheHits {
			if !strings.Contains(sn.Detail, "(cache hit)") {
				t.Fatalf("%s shard detail = %q", name, sn.Detail)
			}
		}
		if h, _ := sb.CacheStats(); h == 0 {
			t.Fatalf("%s: no cache hits recorded", name)
		}
		sb.PurgeCache()
		ex3, err := sb.Compile(n)
		if err != nil {
			t.Fatal(err)
		}
		third, err := ex3.Run(4)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(third.Explain.Root.Detail, "shard-cache 0/3 hits") {
			t.Fatalf("%s post-purge detail = %q", name, third.Explain.Root.Detail)
		}
	}
}
