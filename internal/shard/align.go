package shard

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/query"
)

// Alignment analysis: which relations of a plan can be evaluated
// shard-local, and which must be read in full on every shard.
//
// The partitioning splits every relation on its first column, so a
// plan evaluates correctly shard-by-shard when there is one partition
// variable v such that every occurrence of every "partitioned"
// relation binds v in its first argument: all rows contributing to a
// match with v = a then live in shard hash(a), and the union of the
// per-shard results is exactly the full result (the merge distinct
// removes the duplicates broadcast relations can produce). Relations
// that cannot be aligned stay broadcast — each shard reads their full
// base table, which only ever adds rows a shard could miss, never
// drops one.
//
// Across cover fragments the analysis must also make sure the
// fragment hash-join equates v: if v is mentioned by more than one
// fragment, it must appear in the head of each of them, otherwise two
// fragments could match different v values inside one shard.

// occurrence is one use of a relation in the extracted query.
type occurrence struct {
	pred  string
	first query.Term
}

// fragment summarizes one joined subquery for the cross-fragment
// alignment condition.
type fragment struct {
	vars map[string]bool // every variable mentioned anywhere in the fragment
	head map[string]bool // the fragment's head variables
	occs []occurrence    // this fragment's atom occurrences
}

// analysis is the partitioning decision for one plan.
type analysis struct {
	// partVar is the chosen partition variable; empty when nothing
	// aligns and the plan falls back to one full (unsharded) evaluation.
	partVar string
	// partitioned names the relations evaluated shard-local.
	partitioned map[string]bool
	// broadcast names the relations the plan touches but reads in full
	// on every shard (sorted; diagnostics only).
	broadcast []string
}

func (a analysis) aligned() bool { return a.partVar != "" }

// describe renders the decision for EXPLAIN output.
func (a analysis) describe(n int) string {
	if !a.aligned() {
		return fmt.Sprintf("%d shards, no co-partitioned alignment: single full evaluation", n)
	}
	parts := make([]string, 0, len(a.partitioned))
	for name := range a.partitioned {
		parts = append(parts, name)
	}
	sort.Strings(parts)
	s := fmt.Sprintf("%d shards on %s: local %s", n, a.partVar, strings.Join(parts, ","))
	if len(a.broadcast) > 0 {
		s += " / broadcast " + strings.Join(a.broadcast, ",")
	}
	return s
}

// key identifies the view set the decision needs (cache key).
func (a analysis) key() string {
	if !a.aligned() {
		return ""
	}
	return relSetKey(a.partitioned)
}

// relSetKey canonicalizes a partitioned-relation set (view cache key).
func relSetKey(rels map[string]bool) string {
	parts := make([]string, 0, len(rels))
	for name := range rels {
		parts = append(parts, name)
	}
	sort.Strings(parts)
	return strings.Join(parts, "\x00")
}

// collect gathers every atom occurrence of the extracted query and one
// fragment summary per joined subquery (a single-fragment dialect
// yields one summary; the cross-fragment condition is then vacuous).
func collect(lo plan.Lowered) (occs []occurrence, frags []fragment) {
	newFrag := func(head []query.Term) *fragment {
		f := &fragment{vars: map[string]bool{}, head: map[string]bool{}}
		for _, t := range head {
			if t.IsVar() {
				f.head[t.Name] = true
				f.vars[t.Name] = true
			}
		}
		return f
	}
	addAtom := func(f *fragment, a query.Atom) {
		if len(a.Args) > 0 {
			o := occurrence{a.Pred, a.Args[0]}
			occs = append(occs, o)
			f.occs = append(f.occs, o)
		}
		for _, t := range a.Args {
			if t.IsVar() {
				f.vars[t.Name] = true
			}
		}
	}
	addUCQ := func(u query.UCQ) {
		f := newFrag(u.Head())
		for _, d := range u.Disjuncts {
			for _, a := range d.Atoms {
				addAtom(f, a)
			}
		}
		frags = append(frags, *f)
	}
	addUSCQ := func(u query.USCQ) {
		var head []query.Term
		if len(u.Disjuncts) > 0 {
			head = u.Disjuncts[0].Head
		}
		f := newFrag(head)
		for _, s := range u.Disjuncts {
			for _, b := range s.Blocks {
				for _, a := range b {
					addAtom(f, a)
				}
			}
		}
		frags = append(frags, *f)
	}
	switch lo.Kind {
	case plan.KindUCQ:
		addUCQ(lo.UCQ)
	case plan.KindUSCQ:
		addUSCQ(lo.USCQ)
	case plan.KindJUCQ:
		for _, u := range lo.JUCQ.Subs {
			addUCQ(u)
		}
	case plan.KindJUSCQ:
		for _, u := range lo.JUSCQ.Subs {
			addUSCQ(u)
		}
	}
	return occs, frags
}

// analyze picks the partition variable and relation split for one
// extracted plan. Among the valid candidates it prefers the one whose
// shard-local relations carry the most rows (statistics from the base
// database), so the biggest scans are the ones that shrink N-fold;
// ties break on relation count, then variable name, keeping the choice
// deterministic.
func analyze(lo plan.Lowered, st *engine.Statistics) analysis {
	occs, frags := collect(lo)
	if len(occs) == 0 {
		return analysis{}
	}
	// Candidate partition variables: anything bound in first position.
	candidates := map[string]bool{}
	for _, o := range occs {
		if o.first.IsVar() {
			candidates[o.first.Name] = true
		}
	}
	// Cross-fragment condition: a variable mentioned by several joined
	// fragments is only equated across them when each lists it in its
	// head.
	for v := range candidates {
		mentions := 0
		headAll := true
		for _, f := range frags {
			if f.vars[v] {
				mentions++
				if !f.head[v] {
					headAll = false
				}
			}
		}
		if mentions > 1 && !headAll {
			delete(candidates, v)
		}
	}
	best := analysis{}
	bestWeight, bestCount := -1.0, -1
	var names []string
	for v := range candidates {
		names = append(names, v)
	}
	sort.Strings(names)
	for _, v := range names {
		// A relation is shard-local under v only when every one of its
		// occurrences binds v first (a constant or another variable in
		// first position forces broadcast: its rows may live in a
		// different shard than the match).
		misaligned := map[string]bool{}
		for _, o := range occs {
			if !(o.first.IsVar() && o.first.Name == v) {
				misaligned[o.pred] = true
			}
		}
		part := map[string]bool{}
		weight := 0.0
		for _, o := range occs {
			if o.first.IsVar() && o.first.Name == v && !misaligned[o.pred] && !part[o.pred] {
				part[o.pred] = true
				weight += float64(st.CardConcept(o.pred) + st.CardRole(o.pred))
			}
		}
		if len(part) == 0 {
			continue
		}
		if weight > bestWeight || (weight == bestWeight && len(part) > bestCount) {
			bestWeight, bestCount = weight, len(part)
			best = analysis{partVar: v, partitioned: part}
		}
	}
	if !best.aligned() {
		return best
	}
	seen := map[string]bool{}
	for _, o := range occs {
		if !best.partitioned[o.pred] && !seen[o.pred] {
			seen[o.pred] = true
			best.broadcast = append(best.broadcast, o.pred)
		}
	}
	sort.Strings(best.broadcast)
	return best
}

// Exchange analysis: when the co-partitioned analysis above would
// broadcast a fragment's relations (the join key is bound, but not in
// first position everywhere), a shuffle exchange can still keep the
// cover join shard-local. Each fragment is evaluated partitioned on
// whatever variable its own scans align on, and its result rows are
// hash-repartitioned on the join key so that shard i receives exactly
// the rows with ShardOf(key) = i. Fragments already partitioned on the
// key stay put; fragments with no usable alignment (or not mentioning
// the key) are evaluated once and replayed at every shard.

// fragMode classifies how one fragment participates in an exchange
// plan.
type fragMode int

const (
	// fragLocal: the fragment's scans align on the exchange key — its
	// rows are already at the owning shard.
	fragLocal fragMode = iota
	// fragShuffle: the fragment partitions on its own scan variable
	// and its result stream is repartitioned on the key.
	fragShuffle
	// fragBroadcast: no alignment; evaluated once on the base database
	// and replayed at every shard.
	fragBroadcast
)

// fragPlan is the per-fragment decision of an exchange analysis.
type fragPlan struct {
	mode fragMode
	// scanVar is the variable the fragment's own scans partition on
	// (the key for fragLocal, the fragment's best-aligned variable for
	// fragShuffle, empty for fragBroadcast).
	scanVar string
	// partitioned names the relations read shard-local within the
	// fragment; the rest of the fragment's relations are read in full
	// on every shard.
	partitioned map[string]bool
}

// exchange is the repartitioning decision for one cover plan.
type exchange struct {
	key   string
	frags []fragPlan
}

// describe renders the decision for EXPLAIN output.
func (e *exchange) describe(n int) string {
	var local, shuffle, bcast []string
	for j, fp := range e.frags {
		rels := make([]string, 0, len(fp.partitioned))
		for r := range fp.partitioned {
			rels = append(rels, r)
		}
		sort.Strings(rels)
		switch fp.mode {
		case fragLocal:
			local = append(local, rels...)
		case fragShuffle:
			shuffle = append(shuffle, fmt.Sprintf("%s@%s", strings.Join(rels, "+"), fp.scanVar))
		case fragBroadcast:
			bcast = append(bcast, fmt.Sprintf("frag%d", j))
		}
	}
	s := fmt.Sprintf("%d shards exchange on %s: shuffle %s", n, e.key, strings.Join(shuffle, ","))
	if len(local) > 0 {
		sort.Strings(local)
		s += " / local " + strings.Join(local, ",")
	}
	if len(bcast) > 0 {
		s += " / broadcast " + strings.Join(bcast, ",")
	}
	return s
}

// analyzeExchange picks a repartitioning plan for a cover query, or
// nil when none applies. Candidate keys are head variables shared by
// at least two fragments and exposed in the head of every fragment
// mentioning them (the cover-join invariant — anything else cannot be
// a join key at all). A plan is valid when at least one fragment
// genuinely needs the shuffle (all-local is the co-partitioned case,
// handled without an exchange); among valid keys the analysis prefers
// fewer broadcast fragments, then more shard-local rows, then the
// lexicographically first variable — deterministic like analyze.
func analyzeExchange(lo plan.Lowered, st *engine.Statistics, nsh int) *exchange {
	if nsh < 2 {
		return nil
	}
	_, frags := collect(lo)
	if len(frags) < 2 {
		return nil
	}
	shared := map[string]int{}
	for _, f := range frags {
		for v := range f.head {
			shared[v]++
		}
	}
	var names []string
	for v, c := range shared {
		if c < 2 {
			continue
		}
		ok := true
		for _, f := range frags {
			if f.vars[v] && !f.head[v] {
				ok = false
				break
			}
		}
		if ok {
			names = append(names, v)
		}
	}
	sort.Strings(names)
	var best *exchange
	bestBcast, bestWeight := 0, 0.0
	for _, v := range names {
		plans := make([]fragPlan, len(frags))
		shuffles, bcasts := 0, 0
		weight := 0.0
		for j, f := range frags {
			plans[j] = classifyFrag(f, v, st)
			switch plans[j].mode {
			case fragShuffle:
				shuffles++
			case fragBroadcast:
				bcasts++
			}
			for r := range plans[j].partitioned {
				weight += float64(st.CardConcept(r) + st.CardRole(r))
			}
		}
		if shuffles == 0 {
			continue
		}
		if best == nil || bcasts < bestBcast || (bcasts == bestBcast && weight > bestWeight) {
			best = &exchange{key: v, frags: plans}
			bestBcast, bestWeight = bcasts, weight
		}
	}
	return best
}

// classifyFrag decides how one fragment participates under a given
// key. A fragment that does not expose the key in its head cannot be
// routed on it and broadcasts. Otherwise: shard-local if any of its
// relations align on the key within the fragment; shuffled if some
// other variable aligns its scans (rows are then produced exactly once
// across shards and carry the key to route on); broadcast as the last
// resort.
func classifyFrag(f fragment, key string, st *engine.Statistics) fragPlan {
	if !f.vars[key] || !f.head[key] {
		return fragPlan{mode: fragBroadcast}
	}
	if rels := alignedRels(f, key); len(rels) > 0 {
		return fragPlan{mode: fragLocal, scanVar: key, partitioned: rels}
	}
	var bestVar string
	var bestRels map[string]bool
	bestWeight := -1.0
	var vars []string
	for v := range f.vars {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	for _, w := range vars {
		if w == key {
			continue
		}
		rels := alignedRels(f, w)
		if len(rels) == 0 {
			continue
		}
		weight := 0.0
		for r := range rels {
			weight += float64(st.CardConcept(r) + st.CardRole(r))
		}
		if weight > bestWeight {
			bestVar, bestRels, bestWeight = w, rels, weight
		}
	}
	if bestVar == "" {
		return fragPlan{mode: fragBroadcast}
	}
	return fragPlan{mode: fragShuffle, scanVar: bestVar, partitioned: bestRels}
}

// alignedRels returns the fragment's relations whose every occurrence
// within the fragment binds w in first position.
func alignedRels(f fragment, w string) map[string]bool {
	mis := map[string]bool{}
	for _, o := range f.occs {
		if !(o.first.IsVar() && o.first.Name == w) {
			mis[o.pred] = true
		}
	}
	out := map[string]bool{}
	for _, o := range f.occs {
		if !mis[o.pred] {
			out[o.pred] = true
		}
	}
	return out
}
