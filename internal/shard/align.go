package shard

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/query"
)

// Alignment analysis: which relations of a plan can be evaluated
// shard-local, and which must be read in full on every shard.
//
// The partitioning splits every relation on its first column, so a
// plan evaluates correctly shard-by-shard when there is one partition
// variable v such that every occurrence of every "partitioned"
// relation binds v in its first argument: all rows contributing to a
// match with v = a then live in shard hash(a), and the union of the
// per-shard results is exactly the full result (the merge distinct
// removes the duplicates broadcast relations can produce). Relations
// that cannot be aligned stay broadcast — each shard reads their full
// base table, which only ever adds rows a shard could miss, never
// drops one.
//
// Across cover fragments the analysis must also make sure the
// fragment hash-join equates v: if v is mentioned by more than one
// fragment, it must appear in the head of each of them, otherwise two
// fragments could match different v values inside one shard.

// occurrence is one use of a relation in the extracted query.
type occurrence struct {
	pred  string
	first query.Term
}

// fragment summarizes one joined subquery for the cross-fragment
// alignment condition.
type fragment struct {
	vars map[string]bool // every variable mentioned anywhere in the fragment
	head map[string]bool // the fragment's head variables
}

// analysis is the partitioning decision for one plan.
type analysis struct {
	// partVar is the chosen partition variable; empty when nothing
	// aligns and the plan falls back to one full (unsharded) evaluation.
	partVar string
	// partitioned names the relations evaluated shard-local.
	partitioned map[string]bool
	// broadcast names the relations the plan touches but reads in full
	// on every shard (sorted; diagnostics only).
	broadcast []string
}

func (a analysis) aligned() bool { return a.partVar != "" }

// describe renders the decision for EXPLAIN output.
func (a analysis) describe(n int) string {
	if !a.aligned() {
		return fmt.Sprintf("%d shards, no co-partitioned alignment: single full evaluation", n)
	}
	parts := make([]string, 0, len(a.partitioned))
	for name := range a.partitioned {
		parts = append(parts, name)
	}
	sort.Strings(parts)
	s := fmt.Sprintf("%d shards on %s: local %s", n, a.partVar, strings.Join(parts, ","))
	if len(a.broadcast) > 0 {
		s += " / broadcast " + strings.Join(a.broadcast, ",")
	}
	return s
}

// key identifies the view set the decision needs (cache key).
func (a analysis) key() string {
	if !a.aligned() {
		return ""
	}
	parts := make([]string, 0, len(a.partitioned))
	for name := range a.partitioned {
		parts = append(parts, name)
	}
	sort.Strings(parts)
	return strings.Join(parts, "\x00")
}

// collect gathers every atom occurrence of the extracted query and one
// fragment summary per joined subquery (a single-fragment dialect
// yields one summary; the cross-fragment condition is then vacuous).
func collect(lo plan.Lowered) (occs []occurrence, frags []fragment) {
	newFrag := func(head []query.Term) *fragment {
		f := &fragment{vars: map[string]bool{}, head: map[string]bool{}}
		for _, t := range head {
			if t.IsVar() {
				f.head[t.Name] = true
				f.vars[t.Name] = true
			}
		}
		return f
	}
	addAtom := func(f *fragment, a query.Atom) {
		if len(a.Args) > 0 {
			occs = append(occs, occurrence{a.Pred, a.Args[0]})
		}
		for _, t := range a.Args {
			if t.IsVar() {
				f.vars[t.Name] = true
			}
		}
	}
	addUCQ := func(u query.UCQ) {
		f := newFrag(u.Head())
		for _, d := range u.Disjuncts {
			for _, a := range d.Atoms {
				addAtom(f, a)
			}
		}
		frags = append(frags, *f)
	}
	addUSCQ := func(u query.USCQ) {
		var head []query.Term
		if len(u.Disjuncts) > 0 {
			head = u.Disjuncts[0].Head
		}
		f := newFrag(head)
		for _, s := range u.Disjuncts {
			for _, b := range s.Blocks {
				for _, a := range b {
					addAtom(f, a)
				}
			}
		}
		frags = append(frags, *f)
	}
	switch lo.Kind {
	case plan.KindUCQ:
		addUCQ(lo.UCQ)
	case plan.KindUSCQ:
		addUSCQ(lo.USCQ)
	case plan.KindJUCQ:
		for _, u := range lo.JUCQ.Subs {
			addUCQ(u)
		}
	case plan.KindJUSCQ:
		for _, u := range lo.JUSCQ.Subs {
			addUSCQ(u)
		}
	}
	return occs, frags
}

// analyze picks the partition variable and relation split for one
// extracted plan. Among the valid candidates it prefers the one whose
// shard-local relations carry the most rows (statistics from the base
// database), so the biggest scans are the ones that shrink N-fold;
// ties break on relation count, then variable name, keeping the choice
// deterministic.
func analyze(lo plan.Lowered, st *engine.Statistics) analysis {
	occs, frags := collect(lo)
	if len(occs) == 0 {
		return analysis{}
	}
	// Candidate partition variables: anything bound in first position.
	candidates := map[string]bool{}
	for _, o := range occs {
		if o.first.IsVar() {
			candidates[o.first.Name] = true
		}
	}
	// Cross-fragment condition: a variable mentioned by several joined
	// fragments is only equated across them when each lists it in its
	// head.
	for v := range candidates {
		mentions := 0
		headAll := true
		for _, f := range frags {
			if f.vars[v] {
				mentions++
				if !f.head[v] {
					headAll = false
				}
			}
		}
		if mentions > 1 && !headAll {
			delete(candidates, v)
		}
	}
	best := analysis{}
	bestWeight, bestCount := -1.0, -1
	var names []string
	for v := range candidates {
		names = append(names, v)
	}
	sort.Strings(names)
	for _, v := range names {
		// A relation is shard-local under v only when every one of its
		// occurrences binds v first (a constant or another variable in
		// first position forces broadcast: its rows may live in a
		// different shard than the match).
		misaligned := map[string]bool{}
		for _, o := range occs {
			if !(o.first.IsVar() && o.first.Name == v) {
				misaligned[o.pred] = true
			}
		}
		part := map[string]bool{}
		weight := 0.0
		for _, o := range occs {
			if o.first.IsVar() && o.first.Name == v && !misaligned[o.pred] && !part[o.pred] {
				part[o.pred] = true
				weight += float64(st.CardConcept(o.pred) + st.CardRole(o.pred))
			}
		}
		if len(part) == 0 {
			continue
		}
		if weight > bestWeight || (weight == bestWeight && len(part) > bestCount) {
			bestWeight, bestCount = weight, len(part)
			best = analysis{partVar: v, partitioned: part}
		}
	}
	if !best.aligned() {
		return best
	}
	seen := map[string]bool{}
	for _, o := range occs {
		if !best.partitioned[o.pred] && !seen[o.pred] {
			seen[o.pred] = true
			best.broadcast = append(best.broadcast, o.pred)
		}
	}
	sort.Strings(best.broadcast)
	return best
}
