package shard

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/dllite"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/query"
)

const testABox = `
worksFor(ann, acme)
worksFor(bob, acme)
worksFor(cat, initech)
worksFor(dan, initech)
worksFor(eve, hooli)
Employee(ann)
Employee(bob)
Employee(cat)
Employee(dan)
Employee(eve)
Manager(ann)
Manager(cat)
Company(acme)
Company(initech)
Company(hooli)
locatedIn(acme, paris)
locatedIn(initech, lyon)
`

func loadDB(t *testing.T, text string) *engine.DB {
	t.Helper()
	db := engine.NewDB(engine.LayoutSimple)
	if text != "" {
		db.LoadABox(dllite.MustParseABox(text))
	}
	db.Finalize()
	return db
}

func ucq(cqs ...string) query.UCQ {
	u := query.UCQ{Name: "q"}
	for _, s := range cqs {
		u.Disjuncts = append(u.Disjuncts, query.MustParseCQ(s))
	}
	return u
}

func sortTuples(ts [][]string) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = strings.Join(t, "\x00")
	}
	sort.Strings(out)
	return out
}

func runPlan(t *testing.T, b plan.Backend, n *plan.Node, workers int) [][]string {
	t.Helper()
	ex, err := b.Compile(n)
	if err != nil {
		t.Fatalf("%s compile: %v", b.Name(), err)
	}
	res, err := ex.Run(workers)
	if err != nil {
		t.Fatalf("%s run: %v", b.Name(), err)
	}
	return res.Tuples
}

func TestPartitionPreservesFacts(t *testing.T) {
	db := loadDB(t, testABox)
	p, err := engine.Partition(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := 0; i < p.NumShards(); i++ {
		total += p.Shard(i).NumFacts()
	}
	if total != db.NumFacts() {
		t.Fatalf("shards hold %d facts, base holds %d", total, db.NumFacts())
	}
	if _, err := engine.Partition(db, 0); err == nil {
		t.Fatal("expected error for 0 shards")
	}
	rdf := engine.NewDB(engine.LayoutRDF)
	rdf.Finalize()
	if _, err := engine.Partition(rdf, 2); err == nil {
		t.Fatal("expected error for RDF layout")
	}
}

func TestAnalyzeAlignment(t *testing.T) {
	db := loadDB(t, testABox)
	st := db.Stats()

	// worksFor and Employee both bind x first; Company binds y.
	lo, err := plan.Extract(plan.FromUCQ(ucq("q(x) <- Employee(x), worksFor(x, y), Company(y)")))
	if err != nil {
		t.Fatal(err)
	}
	an := analyze(lo, st)
	if an.partVar != "x" || !an.partitioned["Employee"] || !an.partitioned["worksFor"] {
		t.Fatalf("analysis = %+v", an)
	}
	if an.partitioned["Company"] || len(an.broadcast) != 1 || an.broadcast[0] != "Company" {
		t.Fatalf("Company must broadcast, analysis = %+v", an)
	}

	// A constant in first position forces the relation to broadcast
	// everywhere; with no other relation left the plan cannot align.
	lo, err = plan.Extract(plan.FromUCQ(ucq("q(y) <- worksFor('ann', y), worksFor(x, y)")))
	if err != nil {
		t.Fatal(err)
	}
	if an := analyze(lo, st); an.aligned() {
		t.Fatalf("constant first arg must kill alignment, got %+v", an)
	}

	// Cross-fragment: x is shared through both fragment heads — valid.
	j := query.JUCQ{Name: "q", Head: query.MustParseCQ("q(x) <- Employee(x)").Head,
		Subs: []query.UCQ{ucq("q1(x) <- worksFor(x, y)"), ucq("q2(x) <- Manager(x)")}}
	lo, err = plan.Extract(plan.FromJUCQ(j))
	if err != nil {
		t.Fatal(err)
	}
	an = analyze(lo, st)
	if an.partVar != "x" || !an.partitioned["worksFor"] || !an.partitioned["Manager"] {
		t.Fatalf("cover analysis = %+v", an)
	}

	// A variable mentioned by two fragments but absent from a head is
	// not equated by the fragment join — it must not partition.
	j = query.JUCQ{Name: "q", Head: query.MustParseCQ("q(y) <- Company(y)").Head,
		Subs: []query.UCQ{ucq("q1(y) <- worksFor(x, y)"), ucq("q2(z) <- worksFor(x, z)")}}
	lo, err = plan.Extract(plan.FromJUCQ(j))
	if err != nil {
		t.Fatal(err)
	}
	if an := analyze(lo, st); an.partVar == "x" {
		t.Fatalf("x is not joined across fragments, got %+v", an)
	}
}

func diffQueries() []*plan.Node {
	return []*plan.Node{
		plan.FromUCQ(ucq("q(x) <- Employee(x)")),
		plan.FromUCQ(ucq("q(x, y) <- worksFor(x, y), Manager(x)")),
		plan.FromUCQ(ucq("q(x, z) <- worksFor(x, y), locatedIn(y, z)")),
		plan.FromUCQ(ucq(
			"q(x) <- Manager(x)",
			"q(x) <- worksFor(x, y), locatedIn(y, z)",
		)),
		plan.FromJUCQ(query.JUCQ{Name: "q",
			Head: query.MustParseCQ("q(x) <- Employee(x)").Head,
			Subs: []query.UCQ{
				ucq("q1(x) <- Employee(x)", "q1(x) <- Manager(x)"),
				ucq("q2(x) <- worksFor(x, y)"),
			}}),
		plan.FromUCQ(ucq("q(x) <- Unicorn(x)")),
	}
}

func TestShardMatchesNativeDifferential(t *testing.T) {
	for _, abox := range []string{testABox, ""} {
		db := loadDB(t, abox)
		prof := engine.ProfilePostgres()
		native := engine.NewBackend(db, prof)
		for _, shards := range []int{1, 2, 3, 7} {
			sb, err := New(db, prof, shards)
			if err != nil {
				t.Fatal(err)
			}
			for qi, n := range diffQueries() {
				want := sortTuples(runPlan(t, native, n, 4))
				got := sortTuples(runPlan(t, sb, n, 4))
				if len(want) != len(got) {
					t.Fatalf("q%d shards=%d abox=%d: native %d tuples, shard %d",
						qi, shards, len(abox), len(want), len(got))
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("q%d shards=%d: tuple %d differs: %q vs %q",
							qi, shards, i, want[i], got[i])
					}
				}
			}
		}
	}
}

func TestShardEstimateSumsShards(t *testing.T) {
	db := loadDB(t, testABox)
	prof := engine.ProfilePostgres()
	n := plan.FromUCQ(ucq("q(x, y) <- worksFor(x, y), Manager(x)"))
	sb, err := New(db, prof, 4)
	if err != nil {
		t.Fatal(err)
	}
	est := sb.Estimate(n)
	if est.Cost <= 0 {
		t.Fatalf("estimate cost = %v", est.Cost)
	}
	ex, err := sb.Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Estimate() != est {
		t.Fatalf("compile-time estimate %+v != Estimate %+v", ex.Estimate(), est)
	}
}

func TestShardExplainPerShardCounters(t *testing.T) {
	db := loadDB(t, testABox)
	sb, err := New(db, engine.ProfilePostgres(), 3)
	if err != nil {
		t.Fatal(err)
	}
	n := plan.FromUCQ(ucq("q(x) <- Employee(x), worksFor(x, y)"))
	ex, err := sb.Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	root := res.Explain.Root
	if root.Op != "shard-merge" || len(root.Children) != 3 {
		t.Fatalf("root = %s with %d children", root.Op, len(root.Children))
	}
	if root.ActualRows != int64(len(res.Tuples)) {
		t.Fatalf("root actual %d, tuples %d", root.ActualRows, len(res.Tuples))
	}
	var sum int64
	for i, c := range root.Children {
		if c.Op != "shard" || len(c.Children) != 1 {
			t.Fatalf("child %d = %+v", i, c)
		}
		if c.ActualRows < 0 {
			t.Fatalf("child %d actual rows unknown", i)
		}
		sum += c.ActualRows
	}
	// Employee and worksFor are co-partitioned on x: the shards
	// partition the five employees without duplication.
	if sum != int64(len(res.Tuples)) {
		t.Fatalf("per-shard actuals sum to %d, want %d", sum, len(res.Tuples))
	}
	if !strings.Contains(root.Detail, "shards on x") {
		t.Fatalf("detail = %q", root.Detail)
	}
}

func TestUnalignedPlanUsesSingleView(t *testing.T) {
	db := loadDB(t, testABox)
	sb, err := New(db, engine.ProfilePostgres(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Constant first argument: no alignment, single full evaluation.
	n := plan.FromUCQ(ucq("q(y) <- worksFor('ann', y)"))
	ex, err := sb.Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Explain.Root.Children) != 1 {
		t.Fatalf("unaligned plan ran on %d views", len(res.Explain.Root.Children))
	}
	if len(res.Tuples) != 1 || res.Tuples[0][0] != "acme" {
		t.Fatalf("tuples = %v", res.Tuples)
	}
}
