// Package cache provides the bounded LRU map shared by the answer
// cache (internal/core) and the shard backend's plan/result caches
// (internal/shard). One implementation, typed per use via generics, so
// every cache in the system has the same eviction and hit-accounting
// behavior.
package cache

import (
	"container/list"
	"sync"
)

// LRU is a bounded least-recently-used map. Safe for concurrent use.
type LRU[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used
	entries  map[K]*list.Element
	hits     uint64
	misses   uint64
}

type lruEntry[K comparable, V any] struct {
	key K
	val V
}

// New returns an LRU holding at most capacity entries. A non-positive
// capacity yields a cache that stores nothing (every Get misses).
func New[K comparable, V any](capacity int) *LRU[K, V] {
	return &LRU[K, V]{
		capacity: capacity,
		order:    list.New(),
		entries:  map[K]*list.Element{},
	}
}

// Get returns the value under k, marking it most recently used.
func (c *LRU[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry[K, V]).val, true
}

// Put stores v under k, evicting the least recently used entry when
// over capacity.
func (c *LRU[K, V]) Put(k K, v V) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		el.Value.(*lruEntry[K, V]).val = v
		c.order.MoveToFront(el)
		return
	}
	c.entries[k] = c.order.PushFront(&lruEntry[K, V]{key: k, val: v})
	if c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruEntry[K, V]).key)
	}
}

// Len returns the number of cached entries.
func (c *LRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns cumulative hit and miss counts.
func (c *LRU[K, V]) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Purge drops every entry (hit/miss counters keep accumulating).
func (c *LRU[K, V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.entries = map[K]*list.Element{}
}
