package cost

import (
	"strings"
	"testing"

	"repro/internal/dllite"
	"repro/internal/engine"
	"repro/internal/query"
)

func buildDB(t *testing.T, layout engine.Layout) *engine.DB {
	t.Helper()
	var sb strings.Builder
	for i := 0; i < 300; i++ {
		sb.WriteString("R(s")
		sb.WriteString(itoa(i % 60))
		sb.WriteString(", o")
		sb.WriteString(itoa(i % 17))
		sb.WriteString(")\n")
	}
	for i := 0; i < 40; i++ {
		sb.WriteString("A(s")
		sb.WriteString(itoa(i))
		sb.WriteString(")\n")
	}
	db := engine.NewDB(layout)
	db.LoadABox(dllite.MustParseABox(sb.String()))
	return db
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	n := len(buf)
	for i > 0 {
		n--
		buf[n] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[n:])
}

func TestCQCostPositive(t *testing.T) {
	m := NewModel(buildDB(t, engine.LayoutSimple))
	e := m.CQ(query.MustParseCQ("q(x) <- A(x), R(x, y)"))
	if e.Cost <= 0 || e.Card <= 0 {
		t.Fatalf("degenerate estimate: %+v", e)
	}
}

func TestCostMonotoneInUnionSize(t *testing.T) {
	m := NewModel(buildDB(t, engine.LayoutSimple))
	d := query.MustParseCQ("q(x) <- A(x), R(x, y)")
	u5 := query.UCQ{Disjuncts: []query.CQ{d, d, d, d, d}}
	u10 := query.UCQ{Disjuncts: append(append([]query.CQ{}, u5.Disjuncts...), u5.Disjuncts...)}
	if m.UCQ(u10).Cost <= m.UCQ(u5).Cost {
		t.Error("UCQ cost must grow with the number of arms")
	}
}

func TestIndexedAccessCheaperThanScan(t *testing.T) {
	m := NewModel(buildDB(t, engine.LayoutSimple))
	// A(x) ∧ R(x,y): after binding x via A, R is index-accessed.
	withIndex := m.CQ(query.MustParseCQ("q(x) <- A(x), R(x, y)"))
	// The disconnected R(z,y) atom forces a full scan per binding.
	scan := m.CQ(query.MustParseCQ("q(x) <- A(x), R(x, w), R(z, y)"))
	if withIndex.Cost >= scan.Cost {
		t.Errorf("indexed plan (%.1f) should be cheaper than scan-heavy plan (%.1f)",
			withIndex.Cost, scan.Cost)
	}
}

func TestRDFLayoutMultiplier(t *testing.T) {
	q := query.MustParseCQ("q(x, y) <- R(x, y)")
	mS := NewModel(buildDB(t, engine.LayoutSimple))
	mR := NewModel(buildDB(t, engine.LayoutRDF))
	if mR.CQ(q).Cost <= mS.CQ(q).Cost {
		t.Error("RDF layout access must be estimated costlier")
	}
}

func TestJUCQCostIncludesMaterialization(t *testing.T) {
	m := NewModel(buildDB(t, engine.LayoutSimple))
	u := query.UCQ{Disjuncts: []query.CQ{query.MustParseCQ("f(x) <- A(x)")}}
	j1 := query.JUCQ{Head: []query.Term{query.Var("x")}, Subs: []query.UCQ{u}}
	j2 := query.JUCQ{Head: []query.Term{query.Var("x")}, Subs: []query.UCQ{u, u}}
	if m.JUCQ(j2).Cost <= m.JUCQ(j1).Cost {
		t.Error("extra fragments must add materialization cost")
	}
}

func TestSCQCheaperThanExpansion(t *testing.T) {
	m := NewModel(buildDB(t, engine.LayoutSimple))
	s := query.SCQ{
		Head: []query.Term{query.Var("x")},
		Blocks: [][]query.Atom{
			{query.ConceptAtom("A", query.Var("x")), query.ConceptAtom("B", query.Var("x"))},
			{query.RoleAtom("R", query.Var("x"), query.Var("y")),
				query.RoleAtom("S", query.Var("x"), query.Var("y"))},
		},
	}
	factored := m.SCQ(s)
	expanded := m.UCQ(s.Expand())
	if factored.Cost > expanded.Cost {
		t.Errorf("factorized evaluation (%.1f) should not exceed expansion (%.1f)",
			factored.Cost, expanded.Cost)
	}
}

func TestUSCQAndJUSCQ(t *testing.T) {
	m := NewModel(buildDB(t, engine.LayoutSimple))
	s := query.SCQ{
		Head:   []query.Term{query.Var("x")},
		Blocks: [][]query.Atom{{query.ConceptAtom("A", query.Var("x"))}},
	}
	u := query.USCQ{Disjuncts: []query.SCQ{s, s}}
	if m.USCQ(u).Cost <= m.SCQ(s).Cost {
		t.Error("USCQ cost must exceed a single SCQ's")
	}
	j := query.JUSCQ{Head: []query.Term{query.Var("x")}, Subs: []query.USCQ{u}}
	if m.JUSCQ(j).Cost <= m.USCQ(u).Cost {
		t.Error("JUSCQ adds materialization on top of the USCQ")
	}
}

func TestCalibrateReturnsScale(t *testing.T) {
	db := buildDB(t, engine.LayoutSimple)
	m := NewModel(db)
	probes := []query.CQ{
		query.MustParseCQ("q(x) <- A(x), R(x, y)"),
		query.MustParseCQ("q(x, y) <- R(x, y)"),
	}
	scale := m.Calibrate(db, engine.ProfilePostgres(), probes)
	if scale <= 0 {
		t.Errorf("calibration scale = %v, want > 0", scale)
	}
	if m.Calibrate(db, engine.ProfilePostgres(), nil) != 0 {
		t.Error("no probes → zero scale")
	}
}

func TestEmptyTablesZeroCard(t *testing.T) {
	m := NewModel(buildDB(t, engine.LayoutSimple))
	e := m.CQ(query.MustParseCQ("q(x) <- Missing(x)"))
	if e.Card != 0 {
		t.Errorf("unknown table must estimate zero rows, got %v", e.Card)
	}
}
