// Package cost implements the paper's external cost estimation function
// ε (Section 6.1): textbook formulas over stored-table statistics
// (cardinalities, distinct values per attribute) under the uniform
// distribution and independent distributions assumptions, with joins
// assumed linear in their input sizes (hash joins with enough memory)
// and data access costed by comparing the applicable indexes.
//
// Unlike the engine profiles' estimators (which emulate each RDBMS's
// explain facility, shortcuts included), this model treats queries of
// all sizes uniformly — the property that makes GDL/ext beat GDL/RDBMS
// on the largest reformulations under Postgres (Section 6.3).
package cost

import (
	"math"
	"time"

	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/query"
)

// Constants are the calibratable coefficients of the model.
type Constants struct {
	Scan   float64 // per tuple scanned sequentially
	Probe  float64 // per index probe
	Emit   float64 // per produced tuple
	Dedup  float64 // per tuple entering DISTINCT
	Mat    float64 // per tuple materialized (WITH)
	Join   float64 // per tuple flowing through a hash join
	Xfer   float64 // per tuple repartitioned through a shuffle exchange
	RDFMul float64 // access multiplier on the RDF layout
}

// DefaultConstants are reasonable pre-calibration values.
func DefaultConstants() Constants {
	// Materializing and joining intermediate tuples (temp-table write,
	// hash build/probe, final DISTINCT) is substantially more expensive
	// per row than an index probe — this is what makes semijoin
	// reducers (generalized covers) pay off, cf. Sections 5.2 and 6.3.
	// Moving a row through an exchange (copy into a staging batch, a
	// bounded-channel hop, copy out) costs more than a hash-join probe
	// but well under a materialization.
	return Constants{Scan: 1, Probe: 1.5, Emit: 0.5, Dedup: 1.2, Mat: 3, Join: 1.5, Xfer: 2, RDFMul: float64(engine.DefaultRDFSlots)}
}

// Estimate is a (cost, cardinality) pair in abstract cost units.
type Estimate struct {
	Cost float64
	Card float64
}

// Model is the ε estimator bound to a database's statistics.
type Model struct {
	Stats  *engine.Statistics
	Layout engine.Layout
	C      Constants
}

// NewModel builds a model over the given database.
func NewModel(db *engine.DB) *Model {
	return &Model{Stats: db.Stats(), Layout: db.Layout, C: DefaultConstants()}
}

// ExchangeCost prices repartitioning rows through the shard backend's
// shuffle exchange: linear in rows moved, like the join term.
func (m *Model) ExchangeCost(rows float64) float64 {
	if rows < 0 {
		return 0
	}
	return rows * m.C.Xfer
}

func (m *Model) accessMul() float64 {
	if m.Layout == engine.LayoutRDF {
		return m.C.RDFMul
	}
	return 1
}

// CQ estimates a conjunctive query: greedy smallest-relation-first join
// order, independence across predicates, uniformity within attributes.
func (m *Model) CQ(q query.CQ) Estimate {
	n := len(q.Atoms)
	used := make([]bool, n)
	bound := map[string]bool{}
	card, cost := 1.0, 0.0
	mul := m.accessMul()
	ent := float64(m.Stats.TotalEntities)
	if ent < 1 {
		ent = 1
	}
	for picked := 0; picked < n; picked++ {
		best := -1
		var bOut, bCost float64
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			out, c := m.atomStep(q.Atoms[i], bound, card, ent, mul)
			if best < 0 || out < bOut {
				best, bOut, bCost = i, out, c
			}
		}
		used[best] = true
		for _, t := range q.Atoms[best].Args {
			if t.IsVar() {
				bound[t.Name] = true
			}
		}
		card = bOut
		cost += bCost
	}
	return Estimate{Cost: cost, Card: card}
}

func (m *Model) atomStep(a query.Atom, bound map[string]bool, in, ent, mul float64) (out, cost float64) {
	isBound := func(t query.Term) bool { return t.Const || bound[t.Name] }
	if a.Arity() == 1 {
		cardA := float64(m.Stats.CardConcept(a.Pred))
		if isBound(a.Args[0]) {
			out = in * cardA / ent
			cost = in*m.C.Probe*mul + out*m.C.Emit
			return
		}
		out = in * cardA
		cost = in*cardA*m.C.Scan*mul + out*m.C.Emit
		return
	}
	cardR := float64(m.Stats.CardRole(a.Pred))
	dS := maxf(float64(m.Stats.RoleDistS[a.Pred]), 1)
	dO := maxf(float64(m.Stats.RoleDistO[a.Pred]), 1)
	sB, oB := isBound(a.Args[0]), isBound(a.Args[1])
	sameVar := a.Args[0].IsVar() && a.Args[1].IsVar() && a.Args[0].Name == a.Args[1].Name
	switch {
	case sB && (oB || sameVar):
		sel := minf(cardR/(dS*dO), 1)
		out = in * sel
		cost = in*m.C.Probe*mul + out*m.C.Emit
	case sB:
		out = in * cardR / dS
		cost = in*m.C.Probe*mul + out*m.C.Emit
	case oB:
		out = in * cardR / dO
		cost = in*m.C.Probe*mul + out*m.C.Emit
	default:
		out = in * cardR
		if sameVar {
			out = in * cardR / maxf(dS, dO)
		}
		cost = in*cardR*m.C.Scan*mul + out*m.C.Emit
	}
	return
}

// UCQ estimates a union: the sum of the disjuncts plus DISTINCT. Every
// arm is estimated — no sampling, regardless of size.
func (m *Model) UCQ(u query.UCQ) Estimate {
	var e Estimate
	for _, d := range u.Disjuncts {
		de := m.CQ(d)
		e.Cost += de.Cost
		e.Card += de.Card
	}
	e.Cost += e.Card * m.C.Dedup
	return e
}

// JUCQ estimates the WITH-materialize-then-join shape: every fragment
// is materialized with DISTINCT, then hash-joined.
func (m *Model) JUCQ(j query.JUCQ) Estimate {
	var frags []Estimate
	cost := 0.0
	for _, sub := range j.Subs {
		fe := m.UCQ(sub)
		frags = append(frags, fe)
		cost += fe.Cost + fe.Card*m.C.Mat
	}
	card := 1.0
	minCard := -1.0
	for _, fe := range frags {
		card *= maxf(fe.Card, 1)
		cost += fe.Card * m.C.Join
		if minCard < 0 || fe.Card < minCard {
			minCard = fe.Card
		}
	}
	if minCard >= 0 && minCard < card {
		card = minCard
	}
	cost += card * m.C.Emit
	return Estimate{Cost: cost, Card: card}
}

// SCQ estimates a factorized block query.
func (m *Model) SCQ(s query.SCQ) Estimate {
	n := len(s.Blocks)
	used := make([]bool, n)
	bound := map[string]bool{}
	card, cost := 1.0, 0.0
	mul := m.accessMul()
	ent := maxf(float64(m.Stats.TotalEntities), 1)
	for picked := 0; picked < n; picked++ {
		best := -1
		var bOut, bCost float64
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			var out, c float64
			for _, a := range s.Blocks[i] {
				o, cc := m.atomStep(a, bound, card, ent, mul)
				out += o
				c += cc
			}
			if best < 0 || out < bOut {
				best, bOut, bCost = i, out, c
			}
		}
		used[best] = true
		for _, a := range s.Blocks[best] {
			for _, t := range a.Args {
				if t.IsVar() {
					bound[t.Name] = true
				}
			}
		}
		card = bOut
		cost += bCost
	}
	return Estimate{Cost: cost, Card: card}
}

// USCQ estimates a union of SCQs.
func (m *Model) USCQ(u query.USCQ) Estimate {
	var e Estimate
	for _, s := range u.Disjuncts {
		se := m.SCQ(s)
		e.Cost += se.Cost
		e.Card += se.Card
	}
	e.Cost += e.Card * m.C.Dedup
	return e
}

// JUSCQ estimates the USCQ fragment join.
func (m *Model) JUSCQ(j query.JUSCQ) Estimate {
	var frags []Estimate
	cost := 0.0
	for _, sub := range j.Subs {
		fe := m.USCQ(sub)
		frags = append(frags, fe)
		cost += fe.Cost + fe.Card*m.C.Mat
	}
	card := 1.0
	minCard := -1.0
	for _, fe := range frags {
		card *= maxf(fe.Card, 1)
		cost += fe.Card * m.C.Join
		if minCard < 0 || fe.Card < minCard {
			minCard = fe.Card
		}
	}
	if minCard >= 0 && minCard < card {
		card = minCard
	}
	cost += card * m.C.Emit
	return Estimate{Cost: cost, Card: card}
}

// Calibrate fits the model's time scale against the engine by running a
// small probe workload and comparing measured wall time with estimated
// cost, as the paper calibrates its Java cost model per RDBMS
// (Section 6.1: "we calibrated the cost model for each of Postgres and
// DB2, by empirically determining the values of a few constant
// coefficients"). It returns the fitted cost-unit→seconds factor and
// scales nothing in place: the factor only matters when comparing
// against wall clocks, not for ranking covers.
func (m *Model) Calibrate(db *engine.DB, prof *engine.Profile, probes []query.CQ) float64 {
	if len(probes) == 0 {
		return 0
	}
	var estSum, secSum float64
	for _, q := range probes {
		est := m.CQ(q)
		start := time.Now()
		engine.EvaluateCQ(q, db, prof)
		secSum += time.Since(start).Seconds()
		estSum += est.Cost
	}
	if estSum == 0 {
		return 0
	}
	return secSum / estSum
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Estimate scores a logical plan tree by extracting it back into its
// dialect and applying the matching formula — the same ε figures the
// search obtains on JUCQs, now reachable from any plan.Node. A
// malformed tree costs +Inf (search treats it as "never pick this").
func (m *Model) Estimate(n *plan.Node) plan.Estimate {
	lo, err := plan.Extract(n)
	if err != nil {
		return plan.Estimate{Cost: math.Inf(1)}
	}
	var e Estimate
	switch lo.Kind {
	case plan.KindUCQ:
		e = m.UCQ(lo.UCQ)
	case plan.KindUSCQ:
		e = m.USCQ(lo.USCQ)
	case plan.KindJUCQ:
		e = m.JUCQ(lo.JUCQ)
	default:
		e = m.JUSCQ(lo.JUSCQ)
	}
	return plan.Estimate{Cost: e.Cost, Card: e.Card}
}
