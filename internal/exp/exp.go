// Package exp implements the paper's experimental harness (Section 6):
// building scaled LUBM∃ databases, running every strategy over the
// workload on both engine profiles and layouts, and producing the rows
// behind each table and figure (see the per-experiment index in
// DESIGN.md). cmd/experiments renders these rows as text tables;
// bench_test.go wraps them as testing.B benchmarks.
package exp

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/dllite"
	"repro/internal/engine"
	"repro/internal/lubm"
	"repro/internal/query"
	"repro/internal/reformulate"
	"repro/internal/search"
	"repro/internal/sqlgen"
)

// Env bundles everything needed to run one experimental configuration.
type Env struct {
	TBox    *dllite.TBox
	DB      *engine.DB
	Profile *engine.Profile
	A       *core.Answerer
	Scale   int // universities
}

// BuildEnv generates a LUBM∃ database of the given scale (universities)
// and wires an Answerer. Layout and profile choose the configuration of
// Figures 2 and 3.
func BuildEnv(universities int, seed int64, layout engine.Layout, prof *engine.Profile) *Env {
	tb := lubm.TBox()
	db := engine.NewDB(layout)
	lubm.Generate(lubm.Config{Universities: universities, Seed: seed}, db)
	db.Finalize()
	return &Env{TBox: tb, DB: db, Profile: prof, A: core.New(tb, db, prof), Scale: universities}
}

// Cell is one measurement of one strategy on one query.
type Cell struct {
	Query    string
	Strategy core.Strategy
	Layout   engine.Layout

	EvalTime   time.Duration
	SearchTime time.Duration
	Answers    int
	Disjuncts  int
	Fragments  int
	SQLSize    int
	Err        error // e.g. statement too long (grey bars in Figure 3)
}

// Label renders the series name the way the figures do.
func (c Cell) Label() string {
	return fmt.Sprintf("%s / %s", c.Strategy, c.Layout)
}

// RunCell answers one query under one strategy and reports the cell.
func RunCell(env *Env, q query.CQ, s core.Strategy) Cell {
	res, err := env.A.Answer(q, s)
	cell := Cell{Query: q.Name, Strategy: s, Layout: env.DB.Layout, Err: err}
	if res != nil {
		cell.EvalTime = res.EvalTime
		cell.SearchTime = res.SearchTime
		cell.Answers = len(res.Tuples)
		cell.Disjuncts = res.NumDisjuncts
		cell.Fragments = res.NumFragments
		cell.SQLSize = res.SQLSize
	}
	return cell
}

// Figure2Strategies are the four series of Figure 2 (Postgres, simple
// layout): UCQ, Croot, GDL with the RDBMS cost model, GDL with ours.
func Figure2Strategies() []core.Strategy {
	return []core.Strategy{core.StrategyUCQ, core.StrategyCroot, core.StrategyGDLRDBMS, core.StrategyGDLExt}
}

// RunFigure2 evaluates the Q1–Q13 workload under the Figure 2 series.
func RunFigure2(env *Env) []Cell {
	var out []Cell
	for _, q := range lubm.Queries() {
		for _, s := range Figure2Strategies() {
			out = append(out, RunCell(env, q, s))
		}
	}
	return out
}

// RunFigure3 evaluates the workload under the Figure 3 series: the
// four simple-layout strategies on envSimple plus UCQ, Croot and
// GDL/RDBMS on envRDF (both environments must use the DB2 profile).
func RunFigure3(envSimple, envRDF *Env) []Cell {
	var out []Cell
	for _, q := range lubm.Queries() {
		for _, s := range Figure2Strategies() {
			out = append(out, RunCell(envSimple, q, s))
		}
		for _, s := range []core.Strategy{core.StrategyUCQ, core.StrategyCroot, core.StrategyGDLRDBMS} {
			out = append(out, RunCell(envRDF, q, s))
		}
	}
	return out
}

// Table6Row reproduces one row group of Table 6 for a star query.
type Table6Row struct {
	Query      string
	Atoms      int
	Lq         int // |Lq| (exact)
	Gq         int // |Gq| capped at GqCap
	GqCapped   bool
	GDLLq      int // Lq covers explored by GDL
	GDLGq      int // Gq covers explored by GDL
	GDLElapsed time.Duration
}

// GqCap mirrors the paper's enumeration cutoff for A6.
const GqCap = 20003

// RunTable6 computes the search-space statistics of Section 6.2.
func RunTable6(env *Env) []Table6Row {
	ref := reformulate.New(env.TBox)
	var rows []Table6Row
	for _, q := range lubm.StarQueries() {
		row := Table6Row{Query: q.Name, Atoms: len(q.Atoms)}
		row.Lq = cover.CountSafeCovers(q, env.TBox, 0)
		row.Gq = cover.CountGeneralizedCovers(q, env.TBox, GqCap)
		row.GqCapped = row.Gq >= GqCap
		res := search.GDL(q, env.TBox, ref,
			&search.ExtEstimator{Model: env.A.Model}, search.Options{})
		row.GDLLq = res.ExploredLq
		row.GDLGq = res.ExploredGq
		row.GDLElapsed = res.Elapsed
		rows = append(rows, row)
	}
	return rows
}

// StatsRow carries the per-query reformulation statistics of
// Sections 2.3 and 6.1.
type StatsRow struct {
	Query        string
	Atoms        int
	UCQSize      int
	MinUCQSize   int
	USCQSize     int // number of SCQs after factorization
	SQLSimple    int // bytes
	SQLRDF       int // bytes
	RDFTooLong   bool
	ReformSimple time.Duration
}

// RunStats computes reformulation sizes and SQL lengths per query.
// minimize controls whether the (quadratic) UCQ minimization runs.
func RunStats(env *Env, minimize bool) []StatsRow {
	ref := reformulate.New(env.TBox)
	limit := engine.ProfileDB2().MaxStatementBytes
	var rows []StatsRow
	for _, q := range lubm.Queries() {
		start := time.Now()
		u := ref.MustReformulate(q)
		elapsed := time.Since(start)
		row := StatsRow{
			Query:        q.Name,
			Atoms:        len(q.Atoms),
			UCQSize:      len(u.Disjuncts),
			USCQSize:     len(query.FactorizeUCQ(u).Disjuncts),
			ReformSimple: elapsed,
		}
		if minimize {
			row.MinUCQSize = len(u.Minimize().Disjuncts)
		}
		row.SQLSimple = len(sqlgen.UCQ(u, sqlgen.Options{Layout: engine.LayoutSimple}))
		row.SQLRDF = len(sqlgen.UCQ(u, sqlgen.Options{Layout: engine.LayoutRDF}))
		row.RDFTooLong = row.SQLRDF > limit
		rows = append(rows, row)
	}
	return rows
}

// TimeLimitedRow compares full GDL with the 20 ms-limited variant
// (Section 6.4).
type TimeLimitedRow struct {
	Query       string
	FullCost    float64
	FullTime    time.Duration
	LimitedCost float64
	LimitedTime time.Duration
	SameCover   bool
}

// RunTimeLimited compares GDL with and without the 20 ms budget.
func RunTimeLimited(env *Env, budget time.Duration) []TimeLimitedRow {
	ref := reformulate.New(env.TBox)
	est := &search.ExtEstimator{Model: env.A.Model}
	var rows []TimeLimitedRow
	for _, q := range lubm.Queries() {
		full := search.GDL(q, env.TBox, ref, est, search.Options{})
		limited := search.GDL(q, env.TBox, ref, est, search.Options{TimeLimit: budget})
		rows = append(rows, TimeLimitedRow{
			Query:       q.Name,
			FullCost:    full.Cost,
			FullTime:    full.Elapsed,
			LimitedCost: limited.Cost,
			LimitedTime: limited.Elapsed,
			SameCover:   full.Cover.Key() == limited.Cover.Key(),
		})
	}
	return rows
}

// MinVsBestRow reproduces the Section 2.3 headline comparison: the
// minimal UCQ reformulation evaluated directly versus the best
// cover-based reformulation found by GDL ("reduces this to 156 ms —
// 36 times faster — just by giving the engine a different (yet
// equivalent) SQLized FOL reformulation").
type MinVsBestRow struct {
	Query        string
	MinUCQSize   int
	MinimizeTime time.Duration // one-time cost of computing the minimal UCQ
	MinUCQTime   time.Duration
	BestTime     time.Duration
	BestCover    string
	SameAnswers  bool
}

// RunMinVsBest compares StrategyUCQMin with StrategyGDLExt per query.
// MinimizeTime is measured on a cold reformulator: minimization is
// quadratic in the union size with a homomorphism check per pair, the
// cost the paper's cover approach never pays ("our approach ... never
// requires work to detect common (repeated) sub-expressions").
func RunMinVsBest(env *Env) []MinVsBestRow {
	var rows []MinVsBestRow
	for _, q := range lubm.Queries() {
		cold := reformulate.New(env.TBox)
		startMin := time.Now()
		_, minErr := cold.ReformulateMinimal(q)
		minimizeTime := time.Since(startMin)
		minCell, _ := env.A.Answer(q, core.StrategyUCQMin)
		bestCell, _ := env.A.Answer(q, core.StrategyGDLExt)
		row := MinVsBestRow{Query: q.Name, MinimizeTime: minimizeTime}
		if minErr != nil {
			row.MinimizeTime = 0
		}
		if minCell != nil {
			row.MinUCQSize = minCell.NumDisjuncts
			row.MinUCQTime = minCell.EvalTime
		}
		if bestCell != nil {
			row.BestTime = bestCell.EvalTime
			row.BestCover = bestCell.Cover.String()
		}
		if minCell != nil && bestCell != nil {
			row.SameAnswers = len(minCell.Tuples) == len(bestCell.Tuples)
		}
		rows = append(rows, row)
	}
	return rows
}

// GCovRow reports whether GDL picked a generalized cover (Section 6.3:
// "always (when using our cost model) and about half of the time (with
// the RDBMS cost model), GDL picked a generalized cover").
type GCovRow struct {
	Query          string
	ExtGeneralized bool
	RDBMSGenerali  bool
}

// RunGCov measures how often each estimator's winner is generalized.
func RunGCov(env *Env) []GCovRow {
	ref := reformulate.New(env.TBox)
	ext := &search.ExtEstimator{Model: env.A.Model}
	rdbms := &search.RDBMSEstimator{DB: env.DB, Profile: env.Profile}
	var rows []GCovRow
	for _, q := range lubm.Queries() {
		re := search.GDL(q, env.TBox, ref, ext, search.Options{})
		rr := search.GDL(q, env.TBox, ref, rdbms, search.Options{})
		rows = append(rows, GCovRow{
			Query:          q.Name,
			ExtGeneralized: re.Cover.IsGeneralized(),
			RDBMSGenerali:  rr.Cover.IsGeneralized(),
		})
	}
	return rows
}
