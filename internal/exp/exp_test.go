package exp

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lubm"
	"repro/internal/reformulate"
)

func smallEnv(t *testing.T, layout engine.Layout, prof *engine.Profile) *Env {
	t.Helper()
	return BuildEnv(1, 11, layout, prof)
}

// TestStrategiesAgreeOnWorkload is the end-to-end correctness gate: on
// a generated database, every strategy returns the same number of
// certain answers for every workload query (Theorems 1 and 3 in vivo).
func TestStrategiesAgreeOnWorkload(t *testing.T) {
	env := smallEnv(t, engine.LayoutSimple, engine.ProfilePostgres())
	for _, q := range lubm.Queries() {
		counts := map[core.Strategy]int{}
		for _, s := range Figure2Strategies() {
			cell := RunCell(env, q, s)
			if cell.Err != nil {
				t.Fatalf("%s/%s: %v", q.Name, s, cell.Err)
			}
			counts[s] = cell.Answers
		}
		base := counts[core.StrategyUCQ]
		for s, n := range counts {
			if n != base {
				t.Errorf("%s: strategy %s found %d answers, UCQ found %d", q.Name, s, n, base)
			}
		}
	}
}

// TestReasoningMatters: on the generated (incomplete) data, at least
// some queries must have answers that plain evaluation misses.
func TestReasoningMatters(t *testing.T) {
	env := smallEnv(t, engine.LayoutSimple, engine.ProfilePostgres())
	gains := 0
	for _, q := range lubm.Queries() {
		plain := engine.EvaluateCQ(q, env.DB, env.Profile)
		cell := RunCell(env, q, core.StrategyUCQ)
		if cell.Err != nil {
			t.Fatal(cell.Err)
		}
		if cell.Answers < len(plain.Tuples) {
			t.Errorf("%s: reformulation lost answers (%d < %d)", q.Name, cell.Answers, len(plain.Tuples))
		}
		if cell.Answers > len(plain.Tuples) {
			gains++
		}
	}
	if gains < 5 {
		t.Errorf("only %d/13 queries gained answers from reasoning; the generator should be less complete", gains)
	}
}

func TestTable6Shape(t *testing.T) {
	env := smallEnv(t, engine.LayoutSimple, engine.ProfilePostgres())
	rows := RunTable6(env)
	if len(rows) != 4 {
		t.Fatalf("want A3..A6, got %d rows", len(rows))
	}
	for i, r := range rows {
		if r.Atoms != i+3 {
			t.Errorf("%s atoms = %d", r.Query, r.Atoms)
		}
		if r.Gq < r.Lq {
			t.Errorf("%s: |Gq| (%d) < |Lq| (%d)", r.Query, r.Gq, r.Lq)
		}
		explored := r.GDLLq + r.GDLGq
		if explored == 0 {
			t.Errorf("%s: GDL explored nothing", r.Query)
		}
		if explored > r.Gq && !r.GqCapped {
			t.Errorf("%s: GDL explored %d > |Gq| %d", r.Query, explored, r.Gq)
		}
	}
	// The Table 6 headline: Gq growth makes EDL impractical by A6.
	if !rows[3].GqCapped {
		t.Errorf("A6 enumeration should hit the %d cutoff, got %d", GqCap, rows[3].Gq)
	}
	// GDL exploration grows very moderately with query size.
	if last := rows[3].GDLLq + rows[3].GDLGq; last > 400 {
		t.Errorf("GDL explored %d covers on A6; expected tens", last)
	}
}

func TestStatsRows(t *testing.T) {
	env := smallEnv(t, engine.LayoutSimple, engine.ProfilePostgres())
	rows := RunStats(env, true)
	if len(rows) != 13 {
		t.Fatalf("want 13 rows")
	}
	for _, r := range rows {
		if r.UCQSize <= 0 || r.SQLSimple <= 0 || r.SQLRDF <= 0 {
			t.Errorf("%s: degenerate stats %+v", r.Query, r)
		}
		if r.MinUCQSize > r.UCQSize {
			t.Errorf("%s: minimal UCQ larger than UCQ", r.Query)
		}
		if r.USCQSize > r.UCQSize {
			t.Errorf("%s: USCQ larger than UCQ", r.Query)
		}
		if r.SQLRDF <= r.SQLSimple {
			t.Errorf("%s: RDF SQL (%d) should exceed simple SQL (%d)", r.Query, r.SQLRDF, r.SQLSimple)
		}
	}
	// Section 6.3's failure mode: at least one query's RDF-layout SQL
	// exceeds DB2's statement limit.
	tooLong := 0
	for _, r := range rows {
		if r.RDFTooLong {
			tooLong++
		}
	}
	if tooLong == 0 {
		t.Error("no query exceeds the DB2 statement limit on the RDF layout; Figure 3's failures would not reproduce")
	}
}

// TestFigure3Failures: running the actual Figure 3 harness at small
// scale produces statement-too-long errors on the RDF layout only.
func TestFigure3Failures(t *testing.T) {
	envS := smallEnv(t, engine.LayoutSimple, engine.ProfileDB2())
	envR := smallEnv(t, engine.LayoutRDF, engine.ProfileDB2())
	cells := RunFigure3(envS, envR)
	simpleErrs, rdfErrs := 0, 0
	for _, c := range cells {
		if c.Err == nil {
			continue
		}
		var tooLong *engine.StatementTooLongError
		if !errors.As(c.Err, &tooLong) {
			t.Fatalf("%s/%s: unexpected error %v", c.Query, c.Strategy, c.Err)
		}
		if c.Layout == engine.LayoutRDF {
			rdfErrs++
		} else {
			simpleErrs++
		}
	}
	if simpleErrs != 0 {
		t.Errorf("simple layout should never exceed the limit, got %d failures", simpleErrs)
	}
	if rdfErrs == 0 {
		t.Error("RDF layout should produce statement-too-long failures (Figure 3 grey bars)")
	}
}

func TestTimeLimitedRows(t *testing.T) {
	env := smallEnv(t, engine.LayoutSimple, engine.ProfilePostgres())
	rows := RunTimeLimited(env, 20*time.Millisecond)
	if len(rows) != 13 {
		t.Fatalf("want 13 rows")
	}
	for _, r := range rows {
		if r.LimitedCost < r.FullCost {
			t.Errorf("%s: limited GDL found a better cover than full GDL", r.Query)
		}
	}
}

func TestGCovRows(t *testing.T) {
	env := smallEnv(t, engine.LayoutSimple, engine.ProfilePostgres())
	rows := RunGCov(env)
	extGen := 0
	for _, r := range rows {
		if r.ExtGeneralized {
			extGen++
		}
	}
	// Section 6.3: GDL regularly picks generalized covers ("always" on
	// the paper's workload with their model; "about half the time" with
	// the RDBMS's). Our workload must exhibit the effect on several
	// queries for the Gq space to be worth searching.
	if extGen < 2 {
		t.Errorf("GDL/ext picked generalized covers on %d/13 queries; expected several", extGen)
	}
}

func TestMinVsBestRows(t *testing.T) {
	env := smallEnv(t, engine.LayoutSimple, engine.ProfilePostgres())
	rows := RunMinVsBest(env)
	if len(rows) != 13 {
		t.Fatalf("want 13 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if !r.SameAnswers {
			t.Errorf("%s: minimal UCQ and best cover disagree on answers", r.Query)
		}
		if r.MinUCQSize <= 0 {
			t.Errorf("%s: minimal UCQ size missing", r.Query)
		}
	}
}

// tupleSet canonicalizes decoded tuples for set comparison.
func tupleSet(tuples [][]string) map[string]bool {
	out := make(map[string]bool, len(tuples))
	for _, tu := range tuples {
		out[strings.Join(tu, "\x00")] = true
	}
	return out
}

// TestStrategiesMatchMaterializedOnLUBM is the executor-refactor gate:
// on the LUBM∃ suite, every core strategy — now running through the
// streaming operator pipeline — returns exactly the certain answers the
// old materialize-everything executor computes for the full UCQ
// reformulation. EDL is exercised on the small queries it is meant for
// (the paper's cutoff makes it impractical beyond that).
func TestStrategiesMatchMaterializedOnLUBM(t *testing.T) {
	env := smallEnv(t, engine.LayoutSimple, engine.ProfilePostgres())
	ref := reformulate.New(env.TBox)
	for _, q := range lubm.Queries() {
		u := ref.MustReformulate(q)
		oracle := engine.ExecUCQMaterialized(engine.PlanUCQ(u, env.DB, env.Profile), env.DB)
		want := tupleSet(oracle.Decode(env.DB.Dict))
		strategies := []core.Strategy{
			core.StrategyUCQ, core.StrategyUSCQ, core.StrategyCroot,
			core.StrategyGDLRDBMS, core.StrategyGDLExt,
		}
		if len(q.Atoms) <= 4 {
			strategies = append(strategies, core.StrategyEDL)
		}
		for _, s := range strategies {
			res, err := env.A.Answer(q, s)
			if err != nil {
				t.Fatalf("%s/%s: %v", q.Name, s, err)
			}
			got := tupleSet(res.Tuples)
			if len(got) != len(want) {
				t.Errorf("%s/%s: %d answers, materialized oracle has %d", q.Name, s, len(got), len(want))
				continue
			}
			for k := range want {
				if !got[k] {
					t.Errorf("%s/%s: missing tuple present in materialized oracle", q.Name, s)
					break
				}
			}
		}
	}
}

// TestParallelAnswererMatchesSequential: Answerer.Workers routes union
// evaluation through the parallel union operator without changing the
// certain answers.
func TestParallelAnswererMatchesSequential(t *testing.T) {
	env := smallEnv(t, engine.LayoutSimple, engine.ProfilePostgres())
	par := core.New(env.TBox, env.DB, env.Profile)
	par.Workers = 4
	for _, q := range lubm.Queries()[:6] {
		seq, err := env.A.Answer(q, core.StrategyUCQ)
		if err != nil {
			t.Fatal(err)
		}
		got, err := par.Answer(q, core.StrategyUCQ)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(tupleSet(seq.Tuples), tupleSet(got.Tuples)) {
			t.Errorf("%s: parallel answerer differs (%d vs %d tuples)", q.Name, len(got.Tuples), len(seq.Tuples))
		}
	}
}
