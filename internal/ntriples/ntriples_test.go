package ntriples

import (
	"strings"
	"testing"

	"repro/internal/dllite"
	"repro/internal/lubm"
)

func TestWriteShape(t *testing.T) {
	ab := dllite.MustParseABox(`
PhDStudent(Damian)
supervisedBy(Damian, Ioana)
`)
	out := WriteString(ab, Options{})
	want := []string{
		"<http://example.org/Damian> <" + RDFType + "> <http://example.org/PhDStudent> .",
		"<http://example.org/Damian> <http://example.org/supervisedBy> <http://example.org/Ioana> .",
	}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Errorf("missing line %q in:\n%s", w, out)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	ab := dllite.MustParseABox(`
PhDStudent(Damian)
Researcher(Ioana)
supervisedBy(Damian, Ioana)
worksWith(Ioana, Francois)
`)
	back, err := ReadString(WriteString(ab, Options{}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != ab.Size() {
		t.Fatalf("round trip lost facts: %d vs %d", back.Size(), ab.Size())
	}
	for i, as := range ab.Assertions {
		if back.Assertions[i] != as {
			t.Errorf("fact %d: %v != %v", i, back.Assertions[i], as)
		}
	}
}

func TestCustomBase(t *testing.T) {
	ab := dllite.MustParseABox("A(x)")
	o := Options{Base: "urn:uni:"}
	out := WriteString(ab, o)
	if !strings.Contains(out, "<urn:uni:x>") {
		t.Errorf("custom base not applied:\n%s", out)
	}
	back, err := ReadString(out, o)
	if err != nil {
		t.Fatal(err)
	}
	if back.Assertions[0] != dllite.ConceptAssertion("A", "x") {
		t.Errorf("round trip = %v", back.Assertions[0])
	}
}

func TestForeignIRIsKeptVerbatim(t *testing.T) {
	in := `<http://other.org/alice> <http://example.org/knows> <http://other.org/bob> .`
	ab, err := ReadString(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	as := ab.Assertions[0]
	if as.S != "http://other.org/alice" || as.Pred != "knows" || as.O != "http://other.org/bob" {
		t.Errorf("parsed = %v", as)
	}
}

func TestCommentsAndBlanksSkipped(t *testing.T) {
	in := "# a comment\n\n<http://example.org/a> <" + RDFType + "> <http://example.org/A> .\n"
	ab, err := ReadString(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ab.Size() != 1 {
		t.Fatalf("size = %d", ab.Size())
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		`<a> <b> <c>`,                // missing dot
		`<a> <b> .`,                  // two terms
		`<a> <b> <c> <d> .`,          // four terms
		`<a> <b> "literal" .`,        // literal unsupported
		`<a> <b <c> .`,               // unterminated IRI
		`<> <p> <o> .`,               // empty IRI
		`plain text without angle .`, // not a triple
	} {
		if _, err := ReadString(bad, Options{}); err == nil {
			t.Errorf("ReadString(%q) should fail", bad)
		}
	}
}

func TestLUBMExportImport(t *testing.T) {
	ab := lubm.GenerateABox(lubm.Config{Universities: 1, Seed: 9})
	nt := WriteString(ab, Options{Base: "http://lubm.example.org/"})
	back, err := ReadString(nt, Options{Base: "http://lubm.example.org/"})
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != ab.Size() {
		t.Fatalf("LUBM round trip: %d vs %d facts", back.Size(), ab.Size())
	}
}
