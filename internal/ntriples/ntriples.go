// Package ntriples reads and writes ABoxes as N-Triples, the exchange
// format of the paper's RDF setting: role assertions become plain
// triples, concept assertions become rdf:type triples. Only the
// IRI-resource subset is supported (our individuals are resources, not
// literals), with a configurable base IRI for round-tripping the
// compact local names used everywhere else in this repository.
package ntriples

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/dllite"
)

// RDFType is the predicate IRI marking concept assertions.
const RDFType = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

// DefaultBase is the default namespace for local names.
const DefaultBase = "http://example.org/"

// Options configure the mapping between local names and IRIs.
type Options struct {
	// Base is prepended to local names on write and stripped on read;
	// defaults to DefaultBase.
	Base string
}

func (o Options) base() string {
	if o.Base == "" {
		return DefaultBase
	}
	return o.Base
}

// Write serializes the ABox as N-Triples.
func Write(w io.Writer, ab *dllite.ABox, o Options) error {
	bw := bufio.NewWriter(w)
	base := o.base()
	for _, as := range ab.Assertions {
		var err error
		if as.IsRole() {
			_, err = fmt.Fprintf(bw, "<%s%s> <%s%s> <%s%s> .\n", base, as.S, base, as.Pred, base, as.O)
		} else {
			_, err = fmt.Fprintf(bw, "<%s%s> <%s> <%s%s> .\n", base, as.S, RDFType, base, as.Pred)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteString serializes to a string.
func WriteString(ab *dllite.ABox, o Options) string {
	var sb strings.Builder
	_ = Write(&sb, ab, o)
	return sb.String()
}

// Read parses N-Triples into an ABox. IRIs under the base are
// shortened to local names; rdf:type triples become concept assertions.
// Blank lines and '#' comments are skipped.
func Read(r io.Reader, o Options) (*dllite.ABox, error) {
	ab := dllite.NewABox()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	base := o.base()
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, p, obj, err := parseTriple(line)
		if err != nil {
			return nil, fmt.Errorf("ntriples: line %d: %w", lineNo, err)
		}
		subj := strings.TrimPrefix(s, base)
		pred := strings.TrimPrefix(p, base)
		object := strings.TrimPrefix(obj, base)
		if p == RDFType {
			ab.Add(dllite.ConceptAssertion(object, subj))
		} else {
			ab.Add(dllite.RoleAssertion(pred, subj, object))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ab, nil
}

// ReadString parses from a string.
func ReadString(s string, o Options) (*dllite.ABox, error) {
	return Read(strings.NewReader(s), o)
}

// parseTriple splits one "<s> <p> <o> ." line.
func parseTriple(line string) (s, p, o string, err error) {
	rest, ok := strings.CutSuffix(line, ".")
	if !ok {
		return "", "", "", fmt.Errorf("missing terminating '.' in %q", line)
	}
	rest = strings.TrimSpace(rest)
	var parts []string
	for len(rest) > 0 {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			break
		}
		if rest[0] != '<' {
			return "", "", "", fmt.Errorf("expected IRI in %q (literals are unsupported)", line)
		}
		end := strings.IndexByte(rest, '>')
		if end < 0 {
			return "", "", "", fmt.Errorf("unterminated IRI in %q", line)
		}
		parts = append(parts, rest[1:end])
		rest = rest[end+1:]
	}
	if len(parts) != 3 {
		return "", "", "", fmt.Errorf("want 3 terms, got %d in %q", len(parts), line)
	}
	for _, part := range parts {
		if part == "" {
			return "", "", "", fmt.Errorf("empty IRI in %q", line)
		}
	}
	return parts[0], parts[1], parts[2], nil
}
