// Package sqlgen translates the FOL query dialects into SQL text for
// the two physical layouts of Section 6.1. The generated text is what
// the paper's statement-size measurements are about: simple-layout SQL
// grows linearly with the number of union arms, while RDF-layout SQL
// additionally multiplies every atom by a CASE over the hashed
// predicate columns — the combination that drives DB2 past its
// statement-length limit on Q9/Q10 (Section 6.3).
package sqlgen

import (
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/query"
)

// Options control SQL rendering.
type Options struct {
	Layout engine.Layout
	// Slots is the number of hashed predicate columns rendered per atom
	// on the RDF layout; defaults to engine.DefaultRDFSlots.
	Slots int
	// Pretty inserts newlines/indentation (diagnostics); benchmarks use
	// the compact form, matching how drivers ship statements.
	Pretty bool
}

func (o Options) slots() int {
	if o.Slots > 0 {
		return o.Slots
	}
	return engine.DefaultRDFSlots
}

func (o Options) sep() string {
	if o.Pretty {
		return "\n"
	}
	return " "
}

// sanitize maps predicate names to SQL identifiers.
func sanitize(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// CQ renders one conjunctive query as a SELECT.
func CQ(q query.CQ, o Options) string {
	var b strings.Builder
	writeCQ(&b, q, o)
	return b.String()
}

func writeCQ(b *strings.Builder, q query.CQ, o Options) {
	sep := o.sep()
	// FROM clause with one aliased table (or RDF subselect) per atom.
	b.WriteString("SELECT DISTINCT ")
	if len(q.Head) == 0 {
		b.WriteString("1")
	}
	varCol := map[string]string{}
	// First binding of each variable names its column.
	for i, a := range q.Atoms {
		alias := fmt.Sprintf("t%d", i)
		for j, t := range a.Args {
			if t.IsVar() {
				if _, ok := varCol[t.Name]; !ok {
					varCol[t.Name] = alias + "." + colName(a, j)
				}
			}
		}
	}
	for i, h := range q.Head {
		if i > 0 {
			b.WriteString(", ")
		}
		if h.Const {
			b.WriteString("'" + h.Name + "'")
		} else {
			b.WriteString(varCol[h.Name])
		}
		fmt.Fprintf(b, " AS h%d", i)
	}
	b.WriteString(sep)
	b.WriteString("FROM ")
	for i, a := range q.Atoms {
		if i > 0 {
			b.WriteString(", ")
		}
		writeAtomSource(b, a, o)
		fmt.Fprintf(b, " t%d", i)
	}
	// WHERE: join conditions + constants.
	var conds []string
	seenVar := map[string]string{}
	for i, a := range q.Atoms {
		alias := fmt.Sprintf("t%d", i)
		for j, t := range a.Args {
			col := alias + "." + colName(a, j)
			if t.Const {
				conds = append(conds, col+" = '"+t.Name+"'")
				continue
			}
			if prev, ok := seenVar[t.Name]; ok {
				if prev != col {
					conds = append(conds, prev+" = "+col)
				}
			} else {
				seenVar[t.Name] = col
			}
		}
	}
	if len(conds) > 0 {
		b.WriteString(sep)
		b.WriteString("WHERE ")
		b.WriteString(strings.Join(conds, " AND "))
	}
}

func colName(a query.Atom, j int) string {
	if a.Arity() == 1 {
		return "id"
	}
	if j == 0 {
		return "s"
	}
	return "o"
}

// writeAtomSource renders the table (simple layout) or the hashed-column
// subselect (RDF layout) backing one atom.
func writeAtomSource(b *strings.Builder, a query.Atom, o Options) {
	name := sanitize(a.Pred)
	if o.Layout == engine.LayoutSimple {
		if a.Arity() == 1 {
			b.WriteString("c_" + name)
		} else {
			b.WriteString("r_" + name)
		}
		return
	}
	// RDF layout: the DB2RDF access expands the predicate over every
	// hashed column of the DPH table (cf. [9]); concepts go through the
	// reserved rdf:type predicate.
	k := o.slots()
	b.WriteString("(SELECT entry AS ")
	if a.Arity() == 1 {
		b.WriteString("id FROM dph WHERE ")
		for i := 0; i < k; i++ {
			if i > 0 {
				b.WriteString(" OR ")
			}
			fmt.Fprintf(b, "(pred%d = 'rdf:type' AND val%d = 'class:%s')", i, i, a.Pred)
		}
		b.WriteString(")")
		return
	}
	b.WriteString("s, CASE ")
	for i := 0; i < k; i++ {
		fmt.Fprintf(b, "WHEN pred%d = '%s' THEN val%d ", i, a.Pred, i)
	}
	b.WriteString("END AS o FROM dph WHERE ")
	for i := 0; i < k; i++ {
		if i > 0 {
			b.WriteString(" OR ")
		}
		fmt.Fprintf(b, "pred%d = '%s'", i, a.Pred)
	}
	b.WriteString(")")
}

// UCQ renders a union of CQs.
func UCQ(u query.UCQ, o Options) string {
	var b strings.Builder
	writeUCQ(&b, u, o)
	return b.String()
}

func writeUCQ(b *strings.Builder, u query.UCQ, o Options) {
	sep := o.sep()
	for i, d := range u.Disjuncts {
		if i > 0 {
			b.WriteString(sep)
			b.WriteString("UNION")
			b.WriteString(sep)
		}
		writeCQ(b, d, o)
	}
}

// SCQ renders a semi-conjunctive query: each block becomes an inline
// union subselect, joined with the others.
func SCQ(s query.SCQ, o Options) string {
	var b strings.Builder
	writeSCQ(&b, s, o)
	return b.String()
}

func writeSCQ(b *strings.Builder, s query.SCQ, o Options) {
	sep := o.sep()
	b.WriteString("SELECT DISTINCT ")
	if len(s.Head) == 0 {
		b.WriteString("1")
	}
	varCol := map[string]string{}
	for i, block := range s.Blocks {
		alias := fmt.Sprintf("b%d", i)
		a := block[0]
		for j, t := range a.Args {
			if t.IsVar() {
				if _, ok := varCol[t.Name]; !ok {
					varCol[t.Name] = alias + "." + colName(a, j)
				}
			}
		}
	}
	for i, h := range s.Head {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(varCol[h.Name])
		fmt.Fprintf(b, " AS h%d", i)
	}
	b.WriteString(sep)
	b.WriteString("FROM ")
	for i, block := range s.Blocks {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("(")
		for k, a := range block {
			if k > 0 {
				b.WriteString(" UNION ")
			}
			b.WriteString("SELECT ")
			for j := range a.Args {
				if j > 0 {
					b.WriteString(", ")
				}
				b.WriteString(colName(a, j))
			}
			b.WriteString(" FROM ")
			writeAtomSource(b, a, o)
		}
		fmt.Fprintf(b, ") b%d", i)
	}
	var conds []string
	seenVar := map[string]string{}
	for i, block := range s.Blocks {
		alias := fmt.Sprintf("b%d", i)
		a := block[0]
		for j, t := range a.Args {
			col := alias + "." + colName(a, j)
			if t.Const {
				conds = append(conds, col+" = '"+t.Name+"'")
				continue
			}
			if prev, ok := seenVar[t.Name]; ok {
				if prev != col {
					conds = append(conds, prev+" = "+col)
				}
			} else {
				seenVar[t.Name] = col
			}
		}
	}
	if len(conds) > 0 {
		b.WriteString(sep)
		b.WriteString("WHERE ")
		b.WriteString(strings.Join(conds, " AND "))
	}
}

// USCQ renders a union of SCQs.
func USCQ(u query.USCQ, o Options) string {
	var b strings.Builder
	for i, s := range u.Disjuncts {
		if i > 0 {
			b.WriteString(o.sep())
			b.WriteString("UNION")
			b.WriteString(o.sep())
		}
		writeSCQ(&b, s, o)
	}
	return b.String()
}

// JUCQ renders the WITH-based shape of Section 3:
//
//	WITH f1 AS (...), ..., fn AS (...)
//	SELECT DISTINCT x̄ FROM f1, ..., fn WHERE cond(1..n)
func JUCQ(j query.JUCQ, o Options) string {
	var b strings.Builder
	sep := o.sep()
	b.WriteString("WITH ")
	for i, sub := range j.Subs {
		if i > 0 {
			b.WriteString(", ")
			b.WriteString(sep)
		}
		fmt.Fprintf(&b, "f%d AS (", i+1)
		writeUCQ(&b, sub, o)
		b.WriteString(")")
	}
	b.WriteString(sep)
	writeJoinTail(&b, j.Head, headsOf(j), o)
	return b.String()
}

// JUSCQ renders the USCQ variant of the WITH shape.
func JUSCQ(j query.JUSCQ, o Options) string {
	var b strings.Builder
	sep := o.sep()
	b.WriteString("WITH ")
	for i, sub := range j.Subs {
		if i > 0 {
			b.WriteString(", ")
			b.WriteString(sep)
		}
		fmt.Fprintf(&b, "f%d AS (", i+1)
		b.WriteString(USCQ(sub, o))
		b.WriteString(")")
	}
	b.WriteString(sep)
	var heads [][]query.Term
	for _, sub := range j.Subs {
		if len(sub.Disjuncts) > 0 {
			heads = append(heads, sub.Disjuncts[0].Head)
		} else {
			heads = append(heads, nil)
		}
	}
	writeJoinTail(&b, j.Head, heads, o)
	return b.String()
}

func headsOf(j query.JUCQ) [][]query.Term {
	out := make([][]query.Term, len(j.Subs))
	for i, sub := range j.Subs {
		out[i] = sub.Head()
	}
	return out
}

// writeJoinTail writes the final SELECT over the materialized fragments.
func writeJoinTail(b *strings.Builder, head []query.Term, fragHeads [][]query.Term, o Options) {
	sep := o.sep()
	// Map each variable to its first fragment column.
	varCol := map[string]string{}
	for i, fh := range fragHeads {
		for j, t := range fh {
			if _, ok := varCol[t.Name]; !ok {
				varCol[t.Name] = fmt.Sprintf("f%d.h%d", i+1, j)
			}
		}
	}
	b.WriteString("SELECT DISTINCT ")
	if len(head) == 0 {
		b.WriteString("1")
	}
	for i, h := range head {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(varCol[h.Name])
	}
	b.WriteString(sep)
	b.WriteString("FROM ")
	for i := range fragHeads {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "f%d", i+1)
	}
	var conds []string
	seen := map[string]string{}
	for i, fh := range fragHeads {
		for j, t := range fh {
			col := fmt.Sprintf("f%d.h%d", i+1, j)
			if prev, ok := seen[t.Name]; ok {
				if prev != col {
					conds = append(conds, prev+" = "+col)
				}
			} else {
				seen[t.Name] = col
			}
		}
	}
	if len(conds) > 0 {
		b.WriteString(sep)
		b.WriteString("WHERE ")
		b.WriteString(strings.Join(conds, " AND "))
	}
}
