package sqlgen

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/query"
)

func TestCQSimpleLayout(t *testing.T) {
	q := query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(y, x)")
	sql := CQ(q, Options{Layout: engine.LayoutSimple})
	for _, want := range []string{
		"SELECT DISTINCT",
		"c_PhDStudent t0",
		"r_worksWith t1",
		"t0.id = t1.o",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("missing %q in:\n%s", want, sql)
		}
	}
}

func TestCQConstants(t *testing.T) {
	q := query.MustParseCQ("q(x) <- worksWith(x, 'Francois')")
	sql := CQ(q, Options{Layout: engine.LayoutSimple})
	if !strings.Contains(sql, "t0.o = 'Francois'") {
		t.Errorf("constant condition missing:\n%s", sql)
	}
}

func TestBooleanCQ(t *testing.T) {
	q := query.CQ{Name: "b", Atoms: []query.Atom{query.ConceptAtom("A", query.Var("x"))}}
	sql := CQ(q, Options{Layout: engine.LayoutSimple})
	if !strings.Contains(sql, "SELECT DISTINCT 1") {
		t.Errorf("boolean head missing:\n%s", sql)
	}
}

func TestUCQUnion(t *testing.T) {
	u := query.UCQ{Disjuncts: []query.CQ{
		query.MustParseCQ("q(x) <- A(x)"),
		query.MustParseCQ("q(x) <- B(x)"),
	}}
	sql := UCQ(u, Options{Layout: engine.LayoutSimple})
	if strings.Count(sql, "UNION") != 1 {
		t.Errorf("want exactly 1 UNION:\n%s", sql)
	}
}

func TestRDFLayoutBlowup(t *testing.T) {
	q := query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(y, x), supervisedBy(x, z)")
	simple := CQ(q, Options{Layout: engine.LayoutSimple})
	rdf := CQ(q, Options{Layout: engine.LayoutRDF})
	if len(rdf) < 5*len(simple) {
		t.Errorf("RDF SQL should be much longer: %d vs %d bytes", len(rdf), len(simple))
	}
	if !strings.Contains(rdf, "CASE WHEN pred0") {
		t.Errorf("RDF role access must expand hashed columns:\n%s", rdf[:200])
	}
	if !strings.Contains(rdf, "rdf:type") {
		t.Error("RDF concept access must go through rdf:type")
	}
	// Every hashed column of every role atom appears.
	if got := strings.Count(rdf, "pred11"); got < 3 {
		t.Errorf("expected all %d slots rendered per atom, pred11 count = %d", engine.DefaultRDFSlots, got)
	}
}

func TestJUCQWithShape(t *testing.T) {
	j := query.JUCQ{
		Name: "q",
		Head: []query.Term{query.Var("x")},
		Subs: []query.UCQ{
			{Disjuncts: []query.CQ{query.MustParseCQ("f1(x) <- A(x)")}},
			{Disjuncts: []query.CQ{
				query.MustParseCQ("f2(x, y) <- R(x, y)"),
				query.MustParseCQ("f2(x, y) <- S(x, y)"),
			}},
		},
	}
	sql := JUCQ(j, Options{Layout: engine.LayoutSimple})
	for _, want := range []string{
		"WITH f1 AS (",
		"f2 AS (",
		"UNION",
		"FROM f1, f2",
		"f1.h0 = f2.h0",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("missing %q in:\n%s", want, sql)
		}
	}
}

func TestJUSCQ(t *testing.T) {
	j := query.JUSCQ{
		Name: "q",
		Head: []query.Term{query.Var("x")},
		Subs: []query.USCQ{
			{Disjuncts: []query.SCQ{{
				Name: "f1",
				Head: []query.Term{query.Var("x")},
				Blocks: [][]query.Atom{
					{query.ConceptAtom("A", query.Var("x")), query.ConceptAtom("B", query.Var("x"))},
				},
			}}},
		},
	}
	sql := JUSCQ(j, Options{Layout: engine.LayoutSimple})
	if !strings.Contains(sql, "WITH f1 AS (") || !strings.Contains(sql, "UNION SELECT") {
		t.Errorf("JUSCQ shape wrong:\n%s", sql)
	}
}

func TestSCQFactorizedShape(t *testing.T) {
	s := query.SCQ{
		Name: "q",
		Head: []query.Term{query.Var("x")},
		Blocks: [][]query.Atom{
			{query.ConceptAtom("A", query.Var("x")), query.ConceptAtom("B", query.Var("x"))},
			{query.RoleAtom("R", query.Var("x"), query.Var("y"))},
		},
	}
	sql := SCQ(s, Options{Layout: engine.LayoutSimple})
	for _, want := range []string{"b0.id = b1.s", "UNION SELECT id FROM c_B"} {
		if !strings.Contains(sql, want) {
			t.Errorf("missing %q in:\n%s", want, sql)
		}
	}
}

func TestSanitize(t *testing.T) {
	q := query.CQ{Name: "q", Head: []query.Term{query.Var("x")},
		Atoms: []query.Atom{query.ConceptAtom("weird-name.x", query.Var("x"))}}
	sql := CQ(q, Options{Layout: engine.LayoutSimple})
	if !strings.Contains(sql, "c_weird_name_x") {
		t.Errorf("identifier not sanitized:\n%s", sql)
	}
}

func TestPrettyVsCompact(t *testing.T) {
	q := query.MustParseCQ("q(x) <- A(x), R(x, y)")
	pretty := CQ(q, Options{Layout: engine.LayoutSimple, Pretty: true})
	compact := CQ(q, Options{Layout: engine.LayoutSimple})
	if !strings.Contains(pretty, "\n") {
		t.Error("pretty output should contain newlines")
	}
	if strings.Contains(compact, "\n") {
		t.Error("compact output should not contain newlines")
	}
}

// TestStatementLengthGrowsLinearly: the statement-size accounting the
// experiments rely on — union arms add length proportionally.
func TestStatementLengthGrowsLinearly(t *testing.T) {
	mk := func(n int) query.UCQ {
		u := query.UCQ{}
		for i := 0; i < n; i++ {
			u.Disjuncts = append(u.Disjuncts, query.MustParseCQ("q(x) <- A(x), R(x, y), B(y)"))
		}
		return u
	}
	l10 := len(UCQ(mk(10), Options{Layout: engine.LayoutSimple}))
	l100 := len(UCQ(mk(100), Options{Layout: engine.LayoutSimple}))
	ratio := float64(l100) / float64(l10)
	if ratio < 8 || ratio > 12 {
		t.Errorf("length should scale ~10x: %d -> %d (%.1fx)", l10, l100, ratio)
	}
}
