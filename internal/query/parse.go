package query

import (
	"fmt"
	"strings"
	"unicode"
)

// ParseCQ parses a conjunctive query from a compact text syntax:
//
//	q(x) <- PhDStudent(x), worksWith(y, x)
//	q2(x,y) <- teachesTo(v,x), supervisedBy(x,w), teachesTo(v,y)
//
// Identifiers starting with a lowercase letter or '_' are variables;
// identifiers starting with an uppercase letter inside quotes, or any
// token wrapped in single/double quotes, are constants. Bare uppercase
// arguments are also constants ONLY when quoted; following the paper's
// convention, unquoted arguments are variables regardless of case, so
// predicates like worksWith(Ioana, Francois) in tests must quote the
// individuals: worksWith('Ioana','Francois').
func ParseCQ(s string) (CQ, error) {
	p := &parser{in: s}
	q, err := p.parseCQ()
	if err != nil {
		return CQ{}, fmt.Errorf("parse %q: %w", s, err)
	}
	return q, nil
}

// MustParseCQ parses a CQ and panics on error (for tests and fixtures).
func MustParseCQ(s string) CQ {
	q, err := ParseCQ(s)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	in  string
	pos int
}

func (p *parser) parseCQ() (CQ, error) {
	name, err := p.ident()
	if err != nil {
		return CQ{}, err
	}
	head, err := p.termList()
	if err != nil {
		return CQ{}, err
	}
	p.ws()
	if !p.literal("<-") && !p.literal("←") {
		return CQ{}, p.errf("expected '<-'")
	}
	var atoms []Atom
	for {
		p.ws()
		pred, err := p.ident()
		if err != nil {
			return CQ{}, err
		}
		args, err := p.termList()
		if err != nil {
			return CQ{}, err
		}
		if len(args) < 1 || len(args) > 2 {
			return CQ{}, p.errf("atom %s has arity %d; want 1 or 2", pred, len(args))
		}
		atoms = append(atoms, Atom{Pred: pred, Args: args})
		p.ws()
		if !p.literal(",") && !p.literal("∧") {
			break
		}
	}
	p.ws()
	if p.pos != len(p.in) {
		return CQ{}, p.errf("trailing input")
	}
	return NewCQ(name, head, atoms)
}

func (p *parser) termList() ([]Term, error) {
	p.ws()
	if !p.literal("(") {
		return nil, p.errf("expected '('")
	}
	var out []Term
	for {
		p.ws()
		t, err := p.term()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		p.ws()
		if p.literal(",") {
			continue
		}
		if p.literal(")") {
			return out, nil
		}
		return nil, p.errf("expected ',' or ')'")
	}
}

func (p *parser) term() (Term, error) {
	if p.pos < len(p.in) && (p.in[p.pos] == '\'' || p.in[p.pos] == '"') {
		quote := p.in[p.pos]
		p.pos++
		start := p.pos
		for p.pos < len(p.in) && p.in[p.pos] != quote {
			p.pos++
		}
		if p.pos == len(p.in) {
			return Term{}, p.errf("unterminated constant")
		}
		val := p.in[start:p.pos]
		p.pos++
		return Cst(val), nil
	}
	name, err := p.ident()
	if err != nil {
		return Term{}, err
	}
	return Var(name), nil
}

func (p *parser) ident() (string, error) {
	p.ws()
	start := p.pos
	for p.pos < len(p.in) {
		r := rune(p.in[p.pos])
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", p.errf("expected identifier")
	}
	return p.in[start:p.pos], nil
}

func (p *parser) ws() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t' || p.in[p.pos] == '\n') {
		p.pos++
	}
}

func (p *parser) literal(lit string) bool {
	if strings.HasPrefix(p.in[p.pos:], lit) {
		p.pos += len(lit)
		return true
	}
	return false
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}
