package query

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTermString(t *testing.T) {
	if got := Var("x").String(); got != "x" {
		t.Errorf("Var string = %q", got)
	}
	if got := Cst("Damian").String(); got != "'Damian'" {
		t.Errorf("Cst string = %q", got)
	}
	if Var("x").Const || !Cst("a").Const {
		t.Error("Const flags wrong")
	}
}

func TestSubstitutionApplyChains(t *testing.T) {
	s := Substitution{"x": Var("y"), "y": Var("z")}
	if got := s.Apply(Var("x")); got != Var("z") {
		t.Errorf("chain resolution = %v, want z", got)
	}
	if got := s.Apply(Cst("c")); got != Cst("c") {
		t.Errorf("constants must be fixed points, got %v", got)
	}
	if got := s.Apply(Var("w")); got != Var("w") {
		t.Errorf("unmapped var must be unchanged, got %v", got)
	}
}

func TestUnifyBasics(t *testing.T) {
	a := RoleAtom("R", Var("x"), Var("y"))
	b := RoleAtom("R", Var("z"), Cst("c"))
	s := Unify(a, b)
	if s == nil {
		t.Fatal("expected unifier")
	}
	if s.Apply(Var("y")) != Cst("c") {
		t.Errorf("y should map to 'c', got %v", s.Apply(Var("y")))
	}
	if got := a.Subst(s); !got.Equal(b.Subst(s)) {
		t.Errorf("unified atoms differ: %v vs %v", got, b.Subst(s))
	}
}

func TestUnifyFailures(t *testing.T) {
	if Unify(ConceptAtom("A", Var("x")), ConceptAtom("B", Var("x"))) != nil {
		t.Error("different predicates must not unify")
	}
	if Unify(RoleAtom("R", Cst("a"), Var("x")), RoleAtom("R", Cst("b"), Var("y"))) != nil {
		t.Error("distinct constants must not unify")
	}
	if Unify(ConceptAtom("A", Var("x")), RoleAtom("A", Var("x"), Var("y"))) != nil {
		t.Error("different arities must not unify")
	}
}

func TestUnifySameVariableTwice(t *testing.T) {
	// R(x,x) vs R(a,b): x→a then x(=a) vs b fails.
	if Unify(RoleAtom("R", Var("x"), Var("x")), RoleAtom("R", Cst("a"), Cst("b"))) != nil {
		t.Error("R(x,x) should not unify with R(a,b)")
	}
	s := Unify(RoleAtom("R", Var("x"), Var("x")), RoleAtom("R", Var("u"), Cst("b")))
	if s == nil {
		t.Fatal("R(x,x) should unify with R(u,'b')")
	}
	if s.Apply(Var("x")) != Cst("b") || s.Apply(Var("u")) != Cst("b") {
		t.Errorf("both x and u must resolve to 'b': x=%v u=%v", s.Apply(Var("x")), s.Apply(Var("u")))
	}
}

func TestUnifyPreferKeepsHeadVar(t *testing.T) {
	// Paper footnote 3: unifying supervisedBy(x,y) with supervisedBy(z,y)
	// where x is the head variable must keep x as representative.
	head := func(v string) bool { return v == "x" }
	s := UnifyPrefer(RoleAtom("supervisedBy", Var("x"), Var("y")),
		RoleAtom("supervisedBy", Var("z"), Var("y")), head)
	if s == nil {
		t.Fatal("expected unifier")
	}
	if s.Apply(Var("z")) != Var("x") {
		t.Errorf("z must map to head var x, got %v", s.Apply(Var("z")))
	}
	if s.Apply(Var("x")) != Var("x") {
		t.Errorf("x must stay x, got %v", s.Apply(Var("x")))
	}
}

func TestParseCQ(t *testing.T) {
	q := MustParseCQ("q(x) <- PhDStudent(x), worksWith(y, x)")
	if q.Name != "q" || len(q.Head) != 1 || q.Head[0] != Var("x") {
		t.Fatalf("bad head: %v", q)
	}
	if len(q.Atoms) != 2 || q.Atoms[1].Pred != "worksWith" {
		t.Fatalf("bad atoms: %v", q)
	}
	if q.String() != "q(x) ← PhDStudent(x) ∧ worksWith(y, x)" {
		t.Errorf("String = %q", q.String())
	}
}

func TestParseCQConstants(t *testing.T) {
	q := MustParseCQ(`q(x) <- worksWith(x, 'Francois')`)
	if !q.Atoms[0].Args[1].Const || q.Atoms[0].Args[1].Name != "Francois" {
		t.Fatalf("constant not parsed: %v", q)
	}
}

func TestParseCQErrors(t *testing.T) {
	for _, bad := range []string{
		"q(x)",                       // no body
		"q(x) <- A(x,y,z)",           // arity 3
		"q(z) <- A(x)",               // head var not in body
		"q(x) <- A(x) garbage",       // trailing input
		"q('c') <- A(x)",             // constant in head
		"q(x <- A(x)",                // broken parens
		"q(x) <- worksWith(x,'oops)", // unterminated constant
	} {
		if _, err := ParseCQ(bad); err == nil {
			t.Errorf("ParseCQ(%q) should fail", bad)
		}
	}
}

func TestIsUnbound(t *testing.T) {
	q := MustParseCQ("q(x) <- R(x, y), S(x, z), T(z, w)")
	if q.IsUnbound("x") {
		t.Error("head var x must not be unbound")
	}
	if !q.IsUnbound("y") || !q.IsUnbound("w") {
		t.Error("y and w occur once and are not head vars")
	}
	if q.IsUnbound("z") {
		t.Error("z occurs twice")
	}
}

func TestIsConnected(t *testing.T) {
	if !MustParseCQ("q(x) <- A(x), R(x,y), B(y)").IsConnected() {
		t.Error("path query is connected")
	}
	if MustParseCQ("q(x) <- A(x), B(y), R(y,z)").IsConnected() {
		t.Error("cartesian product must not be connected")
	}
	if !MustParseCQ("q(x) <- A(x)").IsConnected() {
		t.Error("single atom connected")
	}
}

func TestCanonicalKeyInvariantUnderRenaming(t *testing.T) {
	q1 := MustParseCQ("q(x) <- R(x, y), S(y, z)")
	q2 := MustParseCQ("q(x) <- R(x, a), S(a, b)")
	if CanonicalKey(q1) != CanonicalKey(q2) {
		t.Errorf("renamed queries must share keys:\n%s\n%s", CanonicalKey(q1), CanonicalKey(q2))
	}
}

func TestCanonicalKeyInvariantUnderReordering(t *testing.T) {
	q1 := MustParseCQ("q(x) <- R(x, y), S(y, z)")
	q2 := MustParseCQ("q(x) <- S(y, z), R(x, y)")
	if CanonicalKey(q1) != CanonicalKey(q2) {
		t.Errorf("reordered queries must share keys")
	}
}

func TestCanonicalKeyDistinguishes(t *testing.T) {
	pairs := [][2]string{
		{"q(x) <- R(x, y), S(y, z)", "q(x) <- R(x, y), S(x, z)"},
		{"q(x) <- R(x, y)", "q(x) <- R(y, x)"},
		{"q(x) <- A(x)", "q(x) <- B(x)"},
		{"q(x) <- R(x, x)", "q(x) <- R(x, y)"},
		{"q(x) <- R(x, 'c')", "q(x) <- R(x, y)"},
		{"q(x, y) <- R(x, y)", "q(x, x) <- R(x, x)"},
	}
	for _, p := range pairs {
		if CanonicalKey(MustParseCQ(p[0])) == CanonicalKey(MustParseCQ(p[1])) {
			t.Errorf("keys must differ: %s vs %s", p[0], p[1])
		}
	}
}

func TestCanonicalKeyUnboundVars(t *testing.T) {
	// Two distinct once-occurring variables both become "_", but a shared
	// variable must not.
	q1 := MustParseCQ("q(x) <- R(x, y), S(x, z)")
	q2 := MustParseCQ("q(x) <- R(x, u), S(x, v)")
	if CanonicalKey(q1) != CanonicalKey(q2) {
		t.Error("unbound vars should be anonymous")
	}
	q3 := MustParseCQ("q(x) <- R(x, y), S(x, y)")
	if CanonicalKey(q1) == CanonicalKey(q3) {
		t.Error("shared var differs from two unbound vars")
	}
}

func TestContainment(t *testing.T) {
	// Paper footnote 3: q(x)←PhD(x),sB(x,y),sB(z,y) is equivalent to its
	// minimal form q(x)←PhD(x),sB(x,y) (map z↦x).
	q1 := MustParseCQ("q(x) <- PhDStudent(x), supervisedBy(x, y), supervisedBy(z, y)")
	q2 := MustParseCQ("q(x) <- PhDStudent(x), supervisedBy(x, y)")
	if !Equivalent(q1, q2) {
		t.Error("q1 and q2 are equivalent (footnote 3)")
	}
	// A genuinely strict containment:
	q3 := MustParseCQ("q(x) <- PhDStudent(x), supervisedBy(y, x)")
	q4 := MustParseCQ("q(x) <- PhDStudent(x)")
	if !ContainedIn(q3, q4) {
		t.Error("q3 ⊆ q4")
	}
	if ContainedIn(q4, q3) {
		t.Error("q4 ⊄ q3")
	}
}

func TestContainmentHeadRepetition(t *testing.T) {
	q1 := MustParseCQ("q(x, x) <- R(x, x)")
	q2 := MustParseCQ("q(x, y) <- R(x, y)")
	if !ContainedIn(q1, q2) {
		t.Error("q(x,x)←R(x,x) ⊆ q(x,y)←R(x,y)")
	}
	if ContainedIn(q2, q1) {
		t.Error("general pair query is not contained in the diagonal one")
	}
}

func TestContainmentWithConstants(t *testing.T) {
	q1 := MustParseCQ("q(x) <- R(x, 'c')")
	q2 := MustParseCQ("q(x) <- R(x, y)")
	if !ContainedIn(q1, q2) {
		t.Error("constant query contained in variable query")
	}
	if ContainedIn(q2, q1) {
		t.Error("variable query not contained in constant query")
	}
}

func TestEquivalentModuloRedundancy(t *testing.T) {
	q1 := MustParseCQ("q(x) <- R(x, y), R(x, z)")
	q2 := MustParseCQ("q(x) <- R(x, y)")
	if !Equivalent(q1, q2) {
		t.Error("redundant atom does not change semantics")
	}
}

func TestMinimizeCQ(t *testing.T) {
	q := MustParseCQ("q(x) <- R(x, y), R(x, z), A(x)")
	m := MinimizeCQ(q)
	if len(m.Atoms) != 2 {
		t.Errorf("minimized to %d atoms, want 2: %v", len(m.Atoms), m)
	}
	if !Equivalent(m, q) {
		t.Error("minimization must preserve equivalence")
	}
}

func TestMinimizeCQKeepsHeadCoverage(t *testing.T) {
	q := MustParseCQ("q(x) <- A(x), R(y, z)")
	m := MinimizeCQ(q) // R(y,z) is a disconnected redundant-free atom; stays
	for _, h := range m.Head {
		if !m.bodyHasVar(h.Name) {
			t.Fatal("head var lost")
		}
	}
	if !Equivalent(m, q) {
		t.Error("must stay equivalent")
	}
}

func TestUCQDedupAndMinimize(t *testing.T) {
	u := UCQ{Disjuncts: []CQ{
		MustParseCQ("q(x) <- PhDStudent(x), worksWith(y, x)"),
		MustParseCQ("q(x) <- PhDStudent(x), worksWith(z, x)"), // dup modulo renaming
		MustParseCQ("q(x) <- supervisedBy(x, y)"),
		MustParseCQ("q(x) <- supervisedBy(x, y), supervisedBy(z, y)"), // ⊆ previous
	}}
	d := u.Dedup()
	if len(d.Disjuncts) != 3 {
		t.Fatalf("dedup: got %d disjuncts, want 3", len(d.Disjuncts))
	}
	m := u.Minimize()
	if len(m.Disjuncts) != 2 {
		t.Fatalf("minimize: got %d disjuncts, want 2: %v", len(m.Disjuncts), m)
	}
}

func TestUCQMinimizeKeepsOneOfEquivalentPair(t *testing.T) {
	u := UCQ{Disjuncts: []CQ{
		MustParseCQ("q(x) <- R(x, y), R(x, z)"),
		MustParseCQ("q(x) <- R(x, y)"),
	}}
	m := u.Minimize()
	if len(m.Disjuncts) != 1 {
		t.Fatalf("want a single survivor, got %d", len(m.Disjuncts))
	}
}

func TestSCQExpand(t *testing.T) {
	s := SCQ{
		Name: "q",
		Head: []Term{Var("x")},
		Blocks: [][]Atom{
			{ConceptAtom("A", Var("x")), ConceptAtom("B", Var("x"))},
			{RoleAtom("R", Var("x"), Var("y")), RoleAtom("S", Var("x"), Var("y"))},
		},
	}
	u := s.Expand()
	if len(u.Disjuncts) != 4 {
		t.Fatalf("expand: got %d disjuncts, want 4", len(u.Disjuncts))
	}
	if s.NumChoices() != 4 {
		t.Errorf("NumChoices = %d", s.NumChoices())
	}
}

func TestFactorizeUCQRoundTrip(t *testing.T) {
	// A full cartesian family must factor into a single SCQ.
	u := UCQ{Disjuncts: []CQ{
		MustParseCQ("q(x) <- A(x), R(x,y)"),
		MustParseCQ("q(x) <- A(x), S(x,y)"),
		MustParseCQ("q(x) <- B(x), R(x,y)"),
		MustParseCQ("q(x) <- B(x), S(x,y)"),
	}}
	f := FactorizeUCQ(u)
	if len(f.Disjuncts) != 1 {
		t.Fatalf("want 1 SCQ, got %d: %v", len(f.Disjuncts), f)
	}
	back := f.Expand().Dedup()
	if len(back.Disjuncts) != 4 {
		t.Fatalf("round trip lost disjuncts: %d", len(back.Disjuncts))
	}
	for _, orig := range u.Disjuncts {
		found := false
		for _, d := range back.Disjuncts {
			if CanonicalKey(d) == CanonicalKey(orig) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("disjunct lost in factorization: %v", orig)
		}
	}
}

func TestFactorizeUCQPartialFamily(t *testing.T) {
	// Missing one combination: must NOT factor into a product.
	u := UCQ{Disjuncts: []CQ{
		MustParseCQ("q(x) <- A(x), R(x,y)"),
		MustParseCQ("q(x) <- A(x), S(x,y)"),
		MustParseCQ("q(x) <- B(x), R(x,y)"),
	}}
	f := FactorizeUCQ(u)
	total := 0
	for _, s := range f.Disjuncts {
		total += s.NumChoices()
	}
	if total != 3 {
		t.Fatalf("factorization changed semantics: %d choices, want 3", total)
	}
}

func TestFactorizeUCQMixedShapes(t *testing.T) {
	u := UCQ{Disjuncts: []CQ{
		MustParseCQ("q(x) <- A(x), R(x,y)"),
		MustParseCQ("q(x) <- B(x)"),
	}}
	f := FactorizeUCQ(u)
	back := f.Expand().Dedup()
	if len(back.Disjuncts) != 2 {
		t.Fatalf("mixed shapes must survive: got %d", len(back.Disjuncts))
	}
}

func TestJUCQString(t *testing.T) {
	j := JUCQ{
		Name: "q",
		Head: []Term{Var("x")},
		Subs: []UCQ{
			{Disjuncts: []CQ{MustParseCQ("f1(x) <- A(x)")}},
			{Disjuncts: []CQ{MustParseCQ("f2(x) <- R(x,y)")}},
		},
	}
	s := j.String()
	if !strings.Contains(s, "⋈") || !strings.Contains(s, "A(x)") {
		t.Errorf("JUCQ string looks wrong: %s", s)
	}
}

// --- property-based tests ---

// genCQ builds a small random CQ over a fixed vocabulary.
func genCQ(r *rand.Rand) CQ {
	preds1 := []string{"A", "B", "C"}
	preds2 := []string{"R", "S"}
	vars := []string{"x", "y", "z", "w"}
	n := 1 + r.Intn(4)
	atoms := make([]Atom, 0, n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 0 {
			atoms = append(atoms, ConceptAtom(preds1[r.Intn(len(preds1))], Var(vars[r.Intn(len(vars))])))
		} else {
			atoms = append(atoms, RoleAtom(preds2[r.Intn(len(preds2))],
				Var(vars[r.Intn(len(vars))]), Var(vars[r.Intn(len(vars))])))
		}
	}
	// head: one var occurring in the body
	hv := atoms[0].Args[0]
	return CQ{Name: "q", Head: []Term{hv}, Atoms: atoms}
}

func TestPropContainmentReflexive(t *testing.T) {
	f := func(seed int64) bool {
		q := genCQ(rand.New(rand.NewSource(seed)))
		return ContainedIn(q, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropCanonicalKeyStableUnderShuffle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := genCQ(r)
		shuffled := q.Clone()
		r.Shuffle(len(shuffled.Atoms), func(i, j int) {
			shuffled.Atoms[i], shuffled.Atoms[j] = shuffled.Atoms[j], shuffled.Atoms[i]
		})
		return CanonicalKey(q) == CanonicalKey(shuffled)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropMinimizeEquivalent(t *testing.T) {
	f := func(seed int64) bool {
		q := genCQ(rand.New(rand.NewSource(seed)))
		m := MinimizeCQ(q)
		return Equivalent(m, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropFactorizePreservesDisjunctSet(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		u := UCQ{}
		for i := 0; i < n; i++ {
			u.Disjuncts = append(u.Disjuncts, genCQ(r))
		}
		u = u.Dedup()
		back := FactorizeUCQ(u).Expand().Dedup()
		if len(back.Disjuncts) < len(u.Disjuncts) {
			return false
		}
		keys := make(map[string]bool)
		for _, d := range back.Disjuncts {
			keys[CanonicalKey(d)] = true
		}
		for _, d := range u.Disjuncts {
			if !keys[CanonicalKey(d)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropSubstIdempotentOnConstants(t *testing.T) {
	f := func(name string) bool {
		if name == "" {
			return true
		}
		s := Substitution{"x": Var("y")}
		c := Cst(name)
		return s.Apply(c) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVarsAndPreds(t *testing.T) {
	q := MustParseCQ("q(x) <- R(x, y), S(y, z), A(x)")
	if got := q.Vars(); !reflect.DeepEqual(got, []string{"x", "y", "z"}) {
		t.Errorf("Vars = %v", got)
	}
	if got := q.Preds(); !reflect.DeepEqual(got, []string{"A", "R", "S"}) {
		t.Errorf("Preds = %v", got)
	}
}

func TestDedupAtoms(t *testing.T) {
	q := MustParseCQ("q(x) <- A(x), A(x), R(x,y)")
	d := q.DedupAtoms()
	if len(d.Atoms) != 2 {
		t.Errorf("DedupAtoms left %d atoms", len(d.Atoms))
	}
}
