package query

import "strings"

// Atom is a relational atom: a unary concept atom A(t) or a binary role
// atom R(t,t'). Higher arities are not used in the DL-LiteR setting but
// nothing below depends on arity ≤ 2 except where documented.
type Atom struct {
	Pred string
	Args []Term
}

// ConceptAtom builds the unary atom pred(t).
func ConceptAtom(pred string, t Term) Atom { return Atom{Pred: pred, Args: []Term{t}} }

// RoleAtom builds the binary atom pred(s, o).
func RoleAtom(pred string, s, o Term) Atom { return Atom{Pred: pred, Args: []Term{s, o}} }

// Arity returns the number of arguments of the atom.
func (a Atom) Arity() int { return len(a.Args) }

// Subst returns a copy of the atom with the substitution applied to its
// arguments.
func (a Atom) Subst(s Substitution) Atom {
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		args[i] = s.Apply(t)
	}
	return Atom{Pred: a.Pred, Args: args}
}

// Equal reports syntactic equality of two atoms.
func (a Atom) Equal(b Atom) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// Vars appends the names of the variables of the atom to dst, in
// argument order, with duplicates preserved.
func (a Atom) Vars(dst []string) []string {
	for _, t := range a.Args {
		if t.IsVar() {
			dst = append(dst, t.Name)
		}
	}
	return dst
}

// SharesVar reports whether a and b have at least one variable in common.
func (a Atom) SharesVar(b Atom) bool {
	for _, t := range a.Args {
		if t.Const {
			continue
		}
		for _, u := range b.Args {
			if u.IsVar() && u.Name == t.Name {
				return true
			}
		}
	}
	return false
}

func (a Atom) String() string {
	var b strings.Builder
	b.WriteString(a.Pred)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Unify computes a most general unifier of atoms a and b, or nil if they
// do not unify. Terms are flat (no function symbols) so unification is a
// simple union-find-free pass. The returned substitution may contain
// variable-to-variable chains; Substitution.Apply resolves them.
func Unify(a, b Atom) Substitution {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return nil
	}
	s := make(Substitution)
	for i := range a.Args {
		x := s.Apply(a.Args[i])
		y := s.Apply(b.Args[i])
		switch {
		case x == y:
			// already equal under s
		case x.IsVar():
			s.Bind(x.Name, y)
		case y.IsVar():
			s.Bind(y.Name, x)
		default: // distinct constants
			return nil
		}
	}
	return s
}

// UnifyPrefer computes an mgu like Unify, but when two variables are
// unified and one of them is "preferred" (e.g. a head variable of the
// enclosing query), the preferred one is kept as the representative.
// This mirrors footnote 3 of the paper: unifying supervisedBy(x,y) and
// supervisedBy(z,y) with head variable x must keep x.
func UnifyPrefer(a, b Atom, preferred func(string) bool) Substitution {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return nil
	}
	s := make(Substitution)
	for i := range a.Args {
		x := s.Apply(a.Args[i])
		y := s.Apply(b.Args[i])
		switch {
		case x == y:
		case x.IsVar() && y.IsVar():
			if preferred(y.Name) && !preferred(x.Name) {
				s.Bind(x.Name, y)
			} else {
				s.Bind(y.Name, x)
			}
		case x.IsVar():
			s.Bind(x.Name, y)
		case y.IsVar():
			s.Bind(y.Name, x)
		default:
			return nil
		}
	}
	return s
}
