package query

import (
	"sort"
	"strings"
)

// UCQ is a union of conjunctive queries with identical head arity
// (Table 4). The head of the UCQ is the head of its first disjunct; all
// disjuncts are expected to use the same head variable names (the
// reformulation algorithms guarantee this).
type UCQ struct {
	Name      string
	Disjuncts []CQ
}

// Head returns the shared head of the union, or nil if empty.
func (u UCQ) Head() []Term {
	if len(u.Disjuncts) == 0 {
		return nil
	}
	return u.Disjuncts[0].Head
}

// Dedup removes disjuncts with identical canonical keys, preserving
// first occurrences.
func (u UCQ) Dedup() UCQ {
	seen := make(map[string]bool, len(u.Disjuncts))
	out := make([]CQ, 0, len(u.Disjuncts))
	for _, d := range u.Disjuncts {
		k := CanonicalKey(d)
		if !seen[k] {
			seen[k] = true
			out = append(out, d)
		}
	}
	return UCQ{Name: u.Name, Disjuncts: out}
}

// Minimize removes disjuncts contained in another disjunct, yielding an
// equivalent, non-redundant UCQ (Section 2.3). When two disjuncts are
// equivalent, the earlier one survives.
func (u UCQ) Minimize() UCQ {
	ds := u.Dedup().Disjuncts
	keep := make([]bool, len(ds))
	for i := range keep {
		keep[i] = true
	}
	for i := range ds {
		if !keep[i] {
			continue
		}
		for j := range ds {
			if i == j || !keep[j] {
				continue
			}
			if ContainedIn(ds[j], ds[i]) {
				// ds[j] is redundant given ds[i] — unless the two are
				// equivalent and ds[j] is preferable (fewer atoms, or
				// same size and earlier); then drop ds[i] instead.
				if ContainedIn(ds[i], ds[j]) &&
					(len(ds[j].Atoms) < len(ds[i].Atoms) ||
						(len(ds[j].Atoms) == len(ds[i].Atoms) && j < i)) {
					keep[i] = false
					break
				}
				keep[j] = false
			}
		}
	}
	out := make([]CQ, 0, len(ds))
	for i, d := range ds {
		if keep[i] {
			out = append(out, d)
		}
	}
	return UCQ{Name: u.Name, Disjuncts: out}
}

func (u UCQ) String() string {
	parts := make([]string, len(u.Disjuncts))
	for i, d := range u.Disjuncts {
		parts[i] = "(" + d.String() + ")"
	}
	return strings.Join(parts, " ∨ ")
}

// SCQ is a semi-conjunctive query (Table 4): a join of unions of
// single-atom queries. Block i is a disjunction of atoms sharing the
// same variable pattern; the SCQ is the conjunction of its blocks. Head
// and existential variables are interpreted exactly as in a CQ whose
// atoms are one choice per block.
type SCQ struct {
	Name   string
	Head   []Term
	Blocks [][]Atom
}

// Expand converts the SCQ to the equivalent UCQ by distributing ∧ over ∨.
// It is used for correctness tests and as an evaluation fallback; the
// engine evaluates SCQs directly without expansion.
func (s SCQ) Expand() UCQ {
	out := []CQ{{Name: s.Name, Head: s.Head}}
	for _, block := range s.Blocks {
		next := make([]CQ, 0, len(out)*len(block))
		for _, partial := range out {
			for _, a := range block {
				atoms := make([]Atom, len(partial.Atoms), len(partial.Atoms)+1)
				copy(atoms, partial.Atoms)
				next = append(next, CQ{Name: s.Name, Head: s.Head, Atoms: append(atoms, a)})
			}
		}
		out = next
	}
	return UCQ{Name: s.Name, Disjuncts: out}
}

// NumChoices returns the number of CQs the SCQ stands for (the product
// of block sizes).
func (s SCQ) NumChoices() int {
	n := 1
	for _, b := range s.Blocks {
		n *= len(b)
	}
	return n
}

func (s SCQ) String() string {
	var b strings.Builder
	name := s.Name
	if name == "" {
		name = "q"
	}
	b.WriteString(name)
	b.WriteByte('(')
	for i, h := range s.Head {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(h.String())
	}
	b.WriteString(") ← ")
	for i, block := range s.Blocks {
		if i > 0 {
			b.WriteString(" ∧ ")
		}
		b.WriteByte('(')
		for j, a := range block {
			if j > 0 {
				b.WriteString(" ∨ ")
			}
			b.WriteString(a.String())
		}
		b.WriteByte(')')
	}
	return b.String()
}

// USCQ is a union of SCQs (Table 4).
type USCQ struct {
	Name      string
	Disjuncts []SCQ
}

// Expand converts the USCQ to the equivalent UCQ.
func (u USCQ) Expand() UCQ {
	var out []CQ
	for _, s := range u.Disjuncts {
		out = append(out, s.Expand().Disjuncts...)
	}
	return UCQ{Name: u.Name, Disjuncts: out}
}

func (u USCQ) String() string {
	parts := make([]string, len(u.Disjuncts))
	for i, s := range u.Disjuncts {
		parts[i] = "(" + s.String() + ")"
	}
	return strings.Join(parts, " ∨ ")
}

// JUCQ is a join of UCQs (Table 4): the cover-based reformulation shape
// of Definition 3. Head holds the free variables of the overall query;
// the subqueries join on equality of identically named head variables.
type JUCQ struct {
	Name string
	Head []Term
	Subs []UCQ
}

func (j JUCQ) String() string {
	var b strings.Builder
	name := j.Name
	if name == "" {
		name = "q"
	}
	b.WriteString(name)
	b.WriteByte('(')
	for i, h := range j.Head {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(h.String())
	}
	b.WriteString(") ← ")
	for i, s := range j.Subs {
		if i > 0 {
			b.WriteString(" ⋈ ")
		}
		b.WriteString("[" + s.String() + "]")
	}
	return b.String()
}

// JUSCQ is a join of USCQs (Table 4).
type JUSCQ struct {
	Name string
	Head []Term
	Subs []USCQ
}

func (j JUSCQ) String() string {
	var b strings.Builder
	name := j.Name
	if name == "" {
		name = "q"
	}
	b.WriteString(name)
	b.WriteByte('(')
	for i, h := range j.Head {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(h.String())
	}
	b.WriteString(") ← ")
	for i, s := range j.Subs {
		if i > 0 {
			b.WriteString(" ⋈ ")
		}
		b.WriteString("[" + s.String() + "]")
	}
	return b.String()
}

// FactorizeUCQ compresses a UCQ into an equivalent USCQ by exact
// cartesian factorization: disjuncts are grouped by their
// predicate-blind structure (same atom count, same variable pattern);
// a group factors into one SCQ when it contains exactly the cartesian
// product of its per-position predicate choices. Residual disjuncts
// become singleton SCQs. The result is always equivalent to the input.
func FactorizeUCQ(u UCQ) USCQ {
	type group struct {
		pattern string
		qs      []CQ
	}
	groups := make(map[string]*group)
	var order []string
	for _, d := range u.Disjuncts {
		p := patternKey(d)
		g, ok := groups[p]
		if !ok {
			g = &group{pattern: p}
			groups[p] = g
			order = append(order, p)
		}
		g.qs = append(g.qs, d)
	}
	var out []SCQ
	for _, p := range order {
		out = append(out, factorGroup(u.Name, groups[p].qs)...)
	}
	return USCQ{Name: u.Name, Disjuncts: out}
}

// patternKey renders a disjunct with predicates erased and atoms in
// their original order, with variables canonically renamed; two
// disjuncts with the same key differ only in predicate names per
// position. Atom order is preserved (not sorted) so that "position"
// is well defined within a group.
func patternKey(q CQ) string {
	headIdx := make(map[string]int)
	for i, h := range q.Head {
		if _, ok := headIdx[h.Name]; !ok {
			headIdx[h.Name] = i
		}
	}
	rename := make(map[string]string)
	next := 0
	var b strings.Builder
	for i, a := range q.Atoms {
		if i > 0 {
			b.WriteByte('&')
		}
		b.WriteByte('#') // predicate erased
		b.WriteByte('(')
		for j, t := range a.Args {
			if j > 0 {
				b.WriteByte(',')
			}
			switch {
			case t.Const:
				b.WriteString("'" + t.Name + "'")
			default:
				if k, ok := headIdx[t.Name]; ok {
					b.WriteString("$h")
					b.WriteString(itoa(k))
				} else {
					r, ok := rename[t.Name]
					if !ok {
						r = "$v" + itoa(next)
						next++
						rename[t.Name] = r
					}
					b.WriteString(r)
				}
			}
		}
		b.WriteByte(')')
	}
	b.WriteString("||H")
	b.WriteString(itoa(len(q.Head)))
	return b.String()
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	n := len(buf)
	for i > 0 {
		n--
		buf[n] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[n:])
}

// factorGroup factors a set of same-pattern disjuncts into SCQs.
func factorGroup(name string, qs []CQ) []SCQ {
	if len(qs) == 0 {
		return nil
	}
	n := len(qs[0].Atoms)
	// Predicate choices per position.
	choices := make([][]string, n)
	seen := make([]map[string]bool, n)
	for i := range choices {
		seen[i] = make(map[string]bool)
	}
	for _, q := range qs {
		for i, a := range q.Atoms {
			if !seen[i][a.Pred] {
				seen[i][a.Pred] = true
				choices[i] = append(choices[i], a.Pred)
			}
		}
	}
	product := 1
	for i := range choices {
		sort.Strings(choices[i])
		product *= len(choices[i])
	}
	if product == len(qs) && allCombosPresent(qs, choices) {
		// Exact cartesian product: one SCQ using the first disjunct's
		// variable pattern per position.
		base := qs[0]
		blocks := make([][]Atom, n)
		for i := 0; i < n; i++ {
			for _, p := range choices[i] {
				blocks[i] = append(blocks[i], Atom{Pred: p, Args: base.Atoms[i].Args})
			}
		}
		return []SCQ{{Name: name, Head: base.Head, Blocks: blocks}}
	}
	// Residual: singleton SCQs.
	out := make([]SCQ, len(qs))
	for i, q := range qs {
		blocks := make([][]Atom, len(q.Atoms))
		for j, a := range q.Atoms {
			blocks[j] = []Atom{a}
		}
		out[i] = SCQ{Name: name, Head: q.Head, Blocks: blocks}
	}
	return out
}

func allCombosPresent(qs []CQ, choices [][]string) bool {
	present := make(map[string]bool, len(qs))
	for _, q := range qs {
		var b strings.Builder
		for _, a := range q.Atoms {
			b.WriteString(a.Pred)
			b.WriteByte('|')
		}
		present[b.String()] = true
	}
	if len(present) != len(qs) {
		return false // duplicate predicate combos with different patterns
	}
	// Enumerate the product and check membership.
	idx := make([]int, len(choices))
	for {
		var b strings.Builder
		for i := range choices {
			b.WriteString(choices[i][idx[i]])
			b.WriteByte('|')
		}
		if !present[b.String()] {
			return false
		}
		// advance
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(choices[i]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return true
		}
	}
}
