package query

// ContainedIn reports whether q1 ⊆ q2 holds (every answer of q1 over any
// database is an answer of q2), decided by searching for a homomorphism
// from q2 into q1 that maps the head of q2 onto the head of q1
// positionally (Chandra–Merlin).
//
// Both queries must have the same head arity; otherwise false.
func ContainedIn(q1, q2 CQ) bool {
	if len(q1.Head) != len(q2.Head) {
		return false
	}
	// Seed mapping: head of q2 ↦ head of q1, positionally.
	h := make(Substitution)
	for i, t2 := range q2.Head {
		t1 := q1.Head[i]
		if bound, ok := h[t2.Name]; ok {
			if bound != t1 {
				return false // q2 repeats a head var that q1 does not
			}
			continue
		}
		h[t2.Name] = t1
	}
	return extendHom(q2.Atoms, 0, h, q1.Atoms)
}

// Equivalent reports mutual containment.
func Equivalent(q1, q2 CQ) bool {
	return ContainedIn(q1, q2) && ContainedIn(q2, q1)
}

// extendHom tries to map q2's atoms[i:] into targets, extending h.
func extendHom(atoms []Atom, i int, h Substitution, targets []Atom) bool {
	if i == len(atoms) {
		return true
	}
	a := atoms[i]
	for _, t := range targets {
		if t.Pred != a.Pred || len(t.Args) != len(a.Args) {
			continue
		}
		// try mapping a onto t
		added := make([]string, 0, len(a.Args))
		ok := true
		for j := range a.Args {
			src, dst := a.Args[j], t.Args[j]
			if src.Const {
				if src != dst {
					ok = false
					break
				}
				continue
			}
			if bound, exists := h[src.Name]; exists {
				if bound != dst {
					ok = false
					break
				}
				continue
			}
			h[src.Name] = dst
			added = append(added, src.Name)
		}
		if ok && extendHom(atoms, i+1, h, targets) {
			return true
		}
		for _, v := range added {
			delete(h, v)
		}
	}
	return false
}

// MinimizeCQ returns a core-like minimization of q: it repeatedly drops
// body atoms whose removal leaves an equivalent query. The result is
// equivalent to q. (Computing the exact core is NP-hard; greedy removal
// reaches a minimal — not necessarily minimum — equivalent subquery,
// which is what the paper's "minimal form" examples use.)
func MinimizeCQ(q CQ) CQ {
	cur := q.DedupAtoms()
	changed := true
	for changed {
		changed = false
		for i := 0; i < len(cur.Atoms); i++ {
			if len(cur.Atoms) == 1 {
				return cur
			}
			cand := cur.Clone()
			cand.Atoms = append(cand.Atoms[:i], cand.Atoms[i+1:]...)
			if !headCovered(cand) {
				continue
			}
			if ContainedIn(cand, cur) && ContainedIn(cur, cand) {
				cur = cand
				changed = true
				i--
			}
		}
	}
	return cur
}

func headCovered(q CQ) bool {
	for _, h := range q.Head {
		if !q.bodyHasVar(h.Name) {
			return false
		}
	}
	return true
}
