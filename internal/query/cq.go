package query

import (
	"fmt"
	"sort"
	"strings"
)

// CQ is a conjunctive query q(x̄) ← a1 ∧ … ∧ an. Head terms are the
// distinguished (free) variables x̄; all other variables are existential.
// Constants may not appear in the head.
type CQ struct {
	Name  string // optional query name, used in diagnostics only
	Head  []Term
	Atoms []Atom
}

// NewCQ builds a CQ, validating that head terms are variables occurring
// in the body.
func NewCQ(name string, head []Term, atoms []Atom) (CQ, error) {
	q := CQ{Name: name, Head: head, Atoms: atoms}
	for _, h := range head {
		if h.Const {
			return CQ{}, fmt.Errorf("query %s: head term %s is a constant", name, h)
		}
		if !q.bodyHasVar(h.Name) {
			return CQ{}, fmt.Errorf("query %s: head variable %s does not occur in the body", name, h)
		}
	}
	return q, nil
}

// MustCQ is NewCQ for statically known queries; it panics on invalid input.
func MustCQ(name string, head []Term, atoms []Atom) CQ {
	q, err := NewCQ(name, head, atoms)
	if err != nil {
		panic(err)
	}
	return q
}

func (q CQ) bodyHasVar(name string) bool {
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			if t.IsVar() && t.Name == name {
				return true
			}
		}
	}
	return false
}

// HeadVarSet returns the set of head variable names.
func (q CQ) HeadVarSet() map[string]bool {
	m := make(map[string]bool, len(q.Head))
	for _, h := range q.Head {
		m[h.Name] = true
	}
	return m
}

// IsHeadVar reports whether name is a head variable of q.
func (q CQ) IsHeadVar(name string) bool {
	for _, h := range q.Head {
		if h.Name == name {
			return true
		}
	}
	return false
}

// VarOccurrences counts, per variable name, the number of occurrences in
// the body of q.
func (q CQ) VarOccurrences() map[string]int {
	m := make(map[string]int)
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			if t.IsVar() {
				m[t.Name]++
			}
		}
	}
	return m
}

// IsUnbound reports whether variable name is "unbound" in the sense of
// the PerfectRef algorithm: it occurs exactly once in the body and is
// not a head variable.
func (q CQ) IsUnbound(name string) bool {
	if q.IsHeadVar(name) {
		return false
	}
	return q.VarOccurrences()[name] == 1
}

// Subst returns a copy of q with the substitution applied to head and
// body. The head may acquire repeated variables but never constants in
// reformulation use (PerfectRef never binds a head variable to a
// constant unless the query mentions that constant, which is legal).
func (q CQ) Subst(s Substitution) CQ {
	head := make([]Term, len(q.Head))
	for i, h := range q.Head {
		head[i] = s.Apply(h)
	}
	atoms := make([]Atom, len(q.Atoms))
	for i, a := range q.Atoms {
		atoms[i] = a.Subst(s)
	}
	return CQ{Name: q.Name, Head: head, Atoms: atoms}
}

// Clone returns a deep copy of q.
func (q CQ) Clone() CQ {
	head := make([]Term, len(q.Head))
	copy(head, q.Head)
	atoms := make([]Atom, len(q.Atoms))
	for i, a := range q.Atoms {
		args := make([]Term, len(a.Args))
		copy(args, a.Args)
		atoms[i] = Atom{Pred: a.Pred, Args: args}
	}
	return CQ{Name: q.Name, Head: head, Atoms: atoms}
}

// DedupAtoms removes exact duplicate atoms from the body, preserving
// order of first occurrence.
func (q CQ) DedupAtoms() CQ {
	seen := make(map[string]bool, len(q.Atoms))
	out := q.Atoms[:0:0]
	for _, a := range q.Atoms {
		k := a.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, a)
		}
	}
	q.Atoms = out
	return q
}

// Vars returns the distinct variable names of the body in order of first
// occurrence.
func (q CQ) Vars() []string {
	var out []string
	seen := make(map[string]bool)
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			if t.IsVar() && !seen[t.Name] {
				seen[t.Name] = true
				out = append(out, t.Name)
			}
		}
	}
	return out
}

// Preds returns the distinct predicate names used in the body, sorted.
func (q CQ) Preds() []string {
	seen := make(map[string]bool)
	for _, a := range q.Atoms {
		seen[a.Pred] = true
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// IsConnected reports whether the join graph of the body (atoms as
// nodes, shared variables as edges) is connected. The paper considers
// only connected queries (no cartesian products).
func (q CQ) IsConnected() bool {
	n := len(q.Atoms)
	if n <= 1 {
		return true
	}
	visited := make([]bool, n)
	stack := []int{0}
	visited[0] = true
	count := 1
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for j := 0; j < n; j++ {
			if !visited[j] && q.Atoms[i].SharesVar(q.Atoms[j]) {
				visited[j] = true
				count++
				stack = append(stack, j)
			}
		}
	}
	return count == n
}

// String renders the CQ in the paper's notation, e.g.
// "q(x) ← PhDStudent(x) ∧ worksWith(y, x)".
func (q CQ) String() string {
	var b strings.Builder
	name := q.Name
	if name == "" {
		name = "q"
	}
	b.WriteString(name)
	b.WriteByte('(')
	for i, h := range q.Head {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(h.String())
	}
	b.WriteString(") ← ")
	for i, a := range q.Atoms {
		if i > 0 {
			b.WriteString(" ∧ ")
		}
		b.WriteString(a.String())
	}
	return b.String()
}
