// Package query implements the first-order query dialects of the paper
// (Table 4): conjunctive queries (CQ), unions of CQs (UCQ),
// semi-conjunctive queries (SCQ), unions of SCQs (USCQ), joins of UCQs
// (JUCQ) and joins of USCQs (JUSCQ), together with substitutions,
// most-general unifiers, canonical forms, homomorphism-based containment
// and UCQ minimization.
//
// Queries are built from unary atoms A(t) (concepts) and binary atoms
// R(t,t') (roles) over variables and constants; this matches the
// DL-LiteR setting of the paper but the package itself is independent of
// any ontology language.
package query

import "strings"

// Term is a variable or a constant appearing in an atom argument.
// The zero value is an (invalid) variable with an empty name.
type Term struct {
	Name  string
	Const bool
}

// Var returns a variable term with the given name.
func Var(name string) Term { return Term{Name: name} }

// Cst returns a constant term with the given value.
func Cst(value string) Term { return Term{Name: value, Const: true} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return !t.Const }

// String renders the term; constants are quoted to disambiguate.
func (t Term) String() string {
	if t.Const {
		return "'" + t.Name + "'"
	}
	return t.Name
}

// Substitution maps variable names to terms. Applying a substitution
// leaves constants and unmapped variables untouched.
type Substitution map[string]Term

// Apply resolves t through the substitution, following chains of
// variable-to-variable bindings (the maps produced by Unify are not
// necessarily idempotent).
func (s Substitution) Apply(t Term) Term {
	for !t.Const {
		u, ok := s[t.Name]
		if !ok || u == t {
			return t
		}
		t = u
	}
	return t
}

// Bind records that variable v resolves to term t.
func (s Substitution) Bind(v string, t Term) { s[v] = t }

// Clone returns an independent copy of the substitution.
func (s Substitution) Clone() Substitution {
	c := make(Substitution, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func (s Substitution) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for k, v := range s {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(k)
		b.WriteString("→")
		b.WriteString(v.String())
	}
	b.WriteByte('}')
	return b.String()
}
