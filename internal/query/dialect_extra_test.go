package query

import (
	"strings"
	"testing"
)

func TestUCQHeadEmptyUnion(t *testing.T) {
	var u UCQ
	if u.Head() != nil {
		t.Error("empty union has no head")
	}
	if got := u.Dedup(); len(got.Disjuncts) != 0 {
		t.Error("dedup of empty union")
	}
	if got := u.Minimize(); len(got.Disjuncts) != 0 {
		t.Error("minimize of empty union")
	}
}

func TestSCQEmptyBlocksExpand(t *testing.T) {
	s := SCQ{Name: "q", Head: []Term{Var("x")}, Blocks: [][]Atom{
		{ConceptAtom("A", Var("x"))},
	}}
	u := s.Expand()
	if len(u.Disjuncts) != 1 {
		t.Fatalf("expand = %d disjuncts", len(u.Disjuncts))
	}
	if s.NumChoices() != 1 {
		t.Errorf("choices = %d", s.NumChoices())
	}
}

func TestUSCQStringAndExpand(t *testing.T) {
	u := USCQ{Disjuncts: []SCQ{
		{Name: "q", Head: []Term{Var("x")}, Blocks: [][]Atom{
			{ConceptAtom("A", Var("x")), ConceptAtom("B", Var("x"))},
		}},
		{Name: "q", Head: []Term{Var("x")}, Blocks: [][]Atom{
			{ConceptAtom("C", Var("x"))},
		}},
	}}
	if got := len(u.Expand().Disjuncts); got != 3 {
		t.Errorf("expanded = %d disjuncts, want 3", got)
	}
	s := u.String()
	if !strings.Contains(s, "∨") || !strings.Contains(s, "A(x)") {
		t.Errorf("rendering: %s", s)
	}
}

func TestFactorizeSingleton(t *testing.T) {
	u := UCQ{Disjuncts: []CQ{MustParseCQ("q(x) <- A(x)")}}
	f := FactorizeUCQ(u)
	if len(f.Disjuncts) != 1 || f.Disjuncts[0].NumChoices() != 1 {
		t.Errorf("singleton factorization = %v", f)
	}
}

func TestFactorizeConstantsBlockGrouping(t *testing.T) {
	// Same predicate-blind pattern but different constants must not be
	// merged into one product family.
	u := UCQ{Disjuncts: []CQ{
		MustParseCQ("q(x) <- R(x, 'a')"),
		MustParseCQ("q(x) <- R(x, 'b')"),
		MustParseCQ("q(x) <- S(x, 'a')"),
	}}
	f := FactorizeUCQ(u)
	total := 0
	for _, s := range f.Disjuncts {
		total += s.NumChoices()
	}
	if total != 3 {
		t.Fatalf("factorization changed semantics: %d choices", total)
	}
	back := f.Expand().Dedup()
	if len(back.Disjuncts) != 3 {
		t.Fatalf("round trip = %d disjuncts", len(back.Disjuncts))
	}
}

func TestJUSCQString(t *testing.T) {
	sub := USCQ{Disjuncts: []SCQ{{
		Head:   []Term{Var("x")},
		Blocks: [][]Atom{{ConceptAtom("A", Var("x"))}},
	}}}
	j := JUSCQ{Head: []Term{Var("x")}, Subs: []USCQ{sub, sub}}
	if !strings.Contains(j.String(), "⋈") {
		t.Errorf("JUSCQ rendering: %s", j.String())
	}
}

func TestCanonicalKeyBooleanQueries(t *testing.T) {
	q1 := CQ{Name: "b", Atoms: []Atom{ConceptAtom("A", Var("x"))}}
	q2 := CQ{Name: "c", Atoms: []Atom{ConceptAtom("A", Var("y"))}}
	if CanonicalKey(q1) != CanonicalKey(q2) {
		t.Error("boolean queries with renamed vars share keys")
	}
	q3 := CQ{Name: "b", Head: []Term{Var("x")}, Atoms: []Atom{ConceptAtom("A", Var("x"))}}
	if CanonicalKey(q1) == CanonicalKey(q3) {
		t.Error("boolean and unary-head queries must differ")
	}
}

func TestMinimizeCQSingleAtom(t *testing.T) {
	q := MustParseCQ("q(x) <- A(x)")
	if m := MinimizeCQ(q); len(m.Atoms) != 1 {
		t.Errorf("minimized single atom = %v", m)
	}
}
