package query

import (
	"sort"
	"strconv"
	"strings"
)

// CanonicalKey returns a string identifying q up to renaming of
// existential variables and reordering of body atoms. Head variables are
// identified by position. Unbound existential variables (occurring once,
// not in the head) are all rendered as "_".
//
// The key is used by PerfectRef to deduplicate generated CQs. It is a
// sound over-approximation: equal keys imply isomorphic queries, while a
// few isomorphic queries with pathological symmetries may receive
// different keys. That only costs redundant (still correct) disjuncts,
// which downstream minimization removes.
func CanonicalKey(q CQ) string {
	headIdx := make(map[string]int, len(q.Head))
	for i, h := range q.Head {
		if _, ok := headIdx[h.Name]; !ok {
			headIdx[h.Name] = i
		}
	}
	occ := q.VarOccurrences()

	// Pass 1: sort atoms by a variable-name-blind key, remembering the
	// groups of atoms whose blind keys tie.
	type entry struct {
		atom  Atom
		blind string
	}
	entries := make([]entry, len(q.Atoms))
	for i, a := range q.Atoms {
		entries[i] = entry{atom: a, blind: blindKey(a, headIdx, occ)}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].blind < entries[j].blind })

	// Pass 2: shared existential variable names depend on the atom
	// order, and atoms with equal blind keys may be ordered either way.
	// To make the key exact, minimize the rendered body over all
	// permutations within tie groups (groups are tiny in practice; a
	// global cap falls back to the stable order for pathological cases,
	// which costs only duplicate — still correct — disjuncts upstream).
	groups := tieRuns(len(entries), func(i, j int) bool { return entries[i].blind == entries[j].blind })
	perms := 1
	for _, g := range groups {
		perms *= factorialCapped(g[1] - g[0])
		if perms > 20000 {
			break
		}
	}
	render := func(order []int) string {
		rename := make(map[string]string)
		next := 0
		var b strings.Builder
		for k, idx := range order {
			if k > 0 {
				b.WriteByte('&')
			}
			a := entries[idx].atom
			b.WriteString(a.Pred)
			b.WriteByte('(')
			for j, t := range a.Args {
				if j > 0 {
					b.WriteByte(',')
				}
				switch {
				case t.Const:
					b.WriteString("'" + t.Name + "'")
				default:
					if i, ok := headIdx[t.Name]; ok {
						b.WriteString("$h" + strconv.Itoa(i))
					} else if occ[t.Name] <= 1 {
						b.WriteString("_")
					} else {
						r, ok := rename[t.Name]
						if !ok {
							r = "$v" + strconv.Itoa(next)
							next++
							rename[t.Name] = r
						}
						b.WriteString(r)
					}
				}
			}
			b.WriteByte(')')
		}
		return b.String()
	}
	base := make([]int, len(entries))
	for i := range base {
		base[i] = i
	}
	best := render(base)
	if perms > 1 && perms <= 20000 {
		permuteGroups(base, groups, 0, func(order []int) {
			if s := render(order); s < best {
				best = s
			}
		})
	}
	var b strings.Builder
	b.WriteString("H")
	b.WriteString(strconv.Itoa(len(q.Head)))
	for _, h := range q.Head {
		// repeated head variables matter: q(x,x) differs from q(x,y)
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(headIdx[h.Name]))
	}
	b.WriteString("::")
	b.WriteString(best)
	return b.String()
}

// tieRuns returns [start,end) index ranges of maximal runs of length > 1
// where eq holds between consecutive elements.
func tieRuns(n int, eq func(i, j int) bool) [][2]int {
	var runs [][2]int
	i := 0
	for i < n {
		j := i + 1
		for j < n && eq(j-1, j) {
			j++
		}
		if j-i > 1 {
			runs = append(runs, [2]int{i, j})
		}
		i = j
	}
	return runs
}

func factorialCapped(n int) int {
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
		if f > 20000 {
			return f
		}
	}
	return f
}

// permuteGroups enumerates all orderings of base obtained by permuting
// indices within each tie group, invoking visit for each ordering.
// base is mutated in place and restored between calls.
func permuteGroups(base []int, groups [][2]int, g int, visit func([]int)) {
	if g == len(groups) {
		visit(base)
		return
	}
	lo, hi := groups[g][0], groups[g][1]
	permuteRange(base, lo, hi, func() {
		permuteGroups(base, groups, g+1, visit)
	})
}

// permuteRange enumerates permutations of base[lo:hi] (Heap's algorithm),
// calling f for each; base is restored afterwards.
func permuteRange(base []int, lo, hi int, f func()) {
	n := hi - lo
	if n <= 1 {
		f()
		return
	}
	var heap func(k int)
	heap = func(k int) {
		if k == 1 {
			f()
			return
		}
		for i := 0; i < k; i++ {
			heap(k - 1)
			if k%2 == 0 {
				base[lo+i], base[lo+k-1] = base[lo+k-1], base[lo+i]
			} else {
				base[lo], base[lo+k-1] = base[lo+k-1], base[lo]
			}
		}
	}
	heap(n)
}

func blindKey(a Atom, headIdx map[string]int, occ map[string]int) string {
	var b strings.Builder
	b.WriteString(a.Pred)
	b.WriteByte('(')
	for j, t := range a.Args {
		if j > 0 {
			b.WriteByte(',')
		}
		switch {
		case t.Const:
			b.WriteString("'" + t.Name + "'")
		default:
			if i, ok := headIdx[t.Name]; ok {
				b.WriteString("$h" + strconv.Itoa(i))
			} else if occ[t.Name] <= 1 {
				b.WriteString("_")
			} else {
				b.WriteString("*") // shared existential: name-blind
			}
		}
	}
	b.WriteByte(')')
	return b.String()
}

// FreshVarGen hands out variable names guaranteed not to clash with an
// existing set of names.
type FreshVarGen struct {
	used map[string]bool
	n    int
}

// NewFreshVarGen builds a generator avoiding every variable name
// occurring in the given queries.
func NewFreshVarGen(qs ...CQ) *FreshVarGen {
	g := &FreshVarGen{used: make(map[string]bool)}
	for _, q := range qs {
		for _, h := range q.Head {
			g.used[h.Name] = true
		}
		for _, v := range q.Vars() {
			g.used[v] = true
		}
	}
	return g
}

// Reserve marks a name as taken.
func (g *FreshVarGen) Reserve(name string) { g.used[name] = true }

// Fresh returns a new variable term with an unused name.
func (g *FreshVarGen) Fresh() Term {
	for {
		name := "_u" + strconv.Itoa(g.n)
		g.n++
		if !g.used[name] {
			g.used[name] = true
			return Var(name)
		}
	}
}
