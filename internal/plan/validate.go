package plan

// Static well-formedness checking for the IR. Every backend compiles
// the same logical tree, so a malformed plan — a buggy lowering, a
// rewrite rule that dropped a head variable, a cover fragment that
// hides a join key — would otherwise surface as silently wrong rows
// (the native projectOp, for one, drops every row whose head variable
// the pipeline never bound). Validate makes those plans fail loudly at
// plan time instead: core.Answerer runs it after Rewrite, and each
// backend runs it again at the top of Compile, so trees handed to a
// backend directly (bypassing core) are covered too.

import (
	"fmt"

	"repro/internal/query"
)

// Validate checks the structural invariants of a plan tree:
//
//   - Access nodes are leaves with at least one atom; the alternatives
//     of a factorized block bind identical argument lists (FactorizeUCQ
//     only merges disjuncts differing in predicate names).
//   - Join has at least two inputs. A cover join (every input a
//     Distinct-rooted fragment) joins fragments on identically named
//     output columns, so a variable one fragment exposes in its head
//     must not occur body-only in another — the join key would be
//     invisible to the hash join.
//   - SemiJoin has a core plus at least one reducer, and every reducer
//     shares a variable with the core (a disconnected reducer cannot
//     restrict anything).
//   - Union has at least one arm; arms are projections (possibly
//     Distinct-wrapped, the push-Distinct rewrite shape) of equal
//     arity.
//   - Distinct has exactly one input and never sits directly above
//     another Distinct.
//   - Project has exactly one input, and every head variable is bound
//     by some access below it.
//   - Exchange has exactly one input, a non-empty repartition key, and
//     the key is a column of its input's output schema (a row can only
//     route on a value it carries).
//
// Errors are prefixed "plan: validate: " and name the first violation
// found in a deterministic (pre-order, input-order) walk.
func Validate(n *Node) error {
	if n == nil {
		return fmt.Errorf("plan: validate: nil node")
	}
	return validateNode(n)
}

func validateNode(n *Node) error {
	for _, in := range n.Inputs {
		if in == nil {
			return fmt.Errorf("plan: validate: %s has a nil input", n.Op)
		}
	}
	switch n.Op {
	case OpAccess:
		if len(n.Inputs) != 0 {
			return fmt.Errorf("plan: validate: access must be a leaf, has %d inputs", len(n.Inputs))
		}
		if len(n.Atoms) == 0 {
			return fmt.Errorf("plan: validate: access has no atoms")
		}
		for _, a := range n.Atoms {
			if len(a.Args) < 1 || len(a.Args) > 2 {
				return fmt.Errorf("plan: validate: atom %s has arity %d", a.String(), len(a.Args))
			}
		}
		for _, a := range n.Atoms[1:] {
			if !sameArgs(n.Atoms[0].Args, a.Args) {
				return fmt.Errorf("plan: validate: access block alternatives bind different arguments: %s vs %s",
					n.Atoms[0].String(), a.String())
			}
		}
	case OpJoin:
		if len(n.Inputs) < 2 {
			return fmt.Errorf("plan: validate: join has %d inputs, need at least 2", len(n.Inputs))
		}
	case OpSemiJoin:
		if len(n.Inputs) < 2 {
			return fmt.Errorf("plan: validate: semijoin has %d inputs, need a core and at least one reducer", len(n.Inputs))
		}
	case OpUnion:
		if len(n.Inputs) == 0 {
			return fmt.Errorf("plan: validate: union has no arms")
		}
	case OpDistinct:
		if len(n.Inputs) != 1 {
			return fmt.Errorf("plan: validate: distinct must have exactly one input, has %d", len(n.Inputs))
		}
		if n.Inputs[0].Op == OpDistinct {
			return fmt.Errorf("plan: validate: distinct directly above distinct")
		}
	case OpProject:
		if len(n.Inputs) != 1 {
			return fmt.Errorf("plan: validate: project must have exactly one input, has %d", len(n.Inputs))
		}
	case OpExchange:
		if len(n.Inputs) != 1 {
			return fmt.Errorf("plan: validate: exchange must have exactly one input, has %d", len(n.Inputs))
		}
		if n.Key == "" {
			return fmt.Errorf("plan: validate: exchange has no repartition key")
		}
	default:
		return fmt.Errorf("plan: validate: unknown operator %s", n.Op)
	}
	for _, in := range n.Inputs {
		if err := validateNode(in); err != nil {
			return err
		}
	}
	// Cross-input checks run after the inputs validated individually, so
	// their own structure (arm shapes, head bindings) can be relied on.
	switch n.Op {
	case OpJoin:
		if err := validateCoverJoin(n); err != nil {
			return err
		}
	case OpSemiJoin:
		core := outVars(n.Inputs[0])
		for i, red := range n.Inputs[1:] {
			if !sharesVar(outVars(red), core) {
				return fmt.Errorf("plan: validate: semijoin reducer %d shares no variable with the core", i)
			}
		}
	case OpUnion:
		var arity0 int
		for i, arm := range n.Inputs {
			p := armProjection(arm)
			if p == nil {
				return fmt.Errorf("plan: validate: union arm %d is %s, want project", i, arm.Op)
			}
			if i == 0 {
				arity0 = len(p.Head)
				continue
			}
			if len(p.Head) != arity0 {
				return fmt.Errorf("plan: validate: union arm %d has arity %d, arm 0 has arity %d",
					i, len(p.Head), arity0)
			}
		}
	case OpExchange:
		if !outVars(n.Inputs[0])[n.Key] {
			return fmt.Errorf("plan: validate: exchange key %q not in its input's output schema", n.Key)
		}
	case OpProject:
		bound := outVars(n.Inputs[0])
		for _, t := range n.Head {
			if t.IsVar() && !bound[t.Name] {
				return fmt.Errorf("plan: validate: head variable %q not bound by any access", t.Name)
			}
		}
	}
	return nil
}

// validateCoverJoin enforces the fragment-join key invariant on joins
// whose inputs are all Distinct-rooted fragments (the JUCQ/JUSCQ cover
// shape). Fragments join as relations on identically named columns —
// their projected heads — so a variable that one fragment exposes must
// appear in the head of every fragment mentioning it (align.go states
// the same invariant for shard alignment). A body-only occurrence
// would make the evaluation silently degrade to a cross product on
// that variable.
func validateCoverJoin(n *Node) error {
	for _, in := range n.Inputs {
		if unwrapExchange(in).Op != OpDistinct {
			return nil // not a cover join: ordinary body join of accesses
		}
	}
	heads := make([]map[string]bool, len(n.Inputs))
	bodies := make([]map[string]bool, len(n.Inputs))
	for i, in := range n.Inputs {
		heads[i] = outVars(in)
		bodies[i] = map[string]bool{}
		collectVars(in, bodies[i])
	}
	for i, head := range heads {
		for v := range head {
			for k, body := range bodies {
				if k != i && body[v] && !heads[k][v] {
					return fmt.Errorf("plan: validate: join key %q missing from fragment %d's head", v, k)
				}
			}
		}
	}
	return nil
}

// outVars returns the variables of n's output schema: what the subtree
// exposes to the operator above it.
func outVars(n *Node) map[string]bool {
	out := map[string]bool{}
	switch n.Op {
	case OpAccess:
		for _, a := range n.Atoms {
			for _, t := range a.Args {
				if t.IsVar() {
					out[t.Name] = true
				}
			}
		}
	case OpJoin:
		for _, in := range n.Inputs {
			for v := range outVars(in) {
				out[v] = true
			}
		}
	case OpSemiJoin:
		// Reducers only restrict; the output schema is the core's.
		if len(n.Inputs) > 0 {
			out = outVars(n.Inputs[0])
		}
	case OpUnion:
		// Arms are schema-compatible projections; the first arm's head
		// names the union's columns.
		if len(n.Inputs) > 0 {
			out = outVars(n.Inputs[0])
		}
	case OpDistinct, OpExchange:
		if len(n.Inputs) == 1 {
			out = outVars(n.Inputs[0])
		}
	case OpProject:
		for _, t := range n.Head {
			if t.IsVar() {
				out[t.Name] = true
			}
		}
	}
	return out
}

// collectVars adds every variable mentioned anywhere in the subtree.
func collectVars(n *Node, into map[string]bool) {
	for _, a := range n.Atoms {
		for _, t := range a.Args {
			if t.IsVar() {
				into[t.Name] = true
			}
		}
	}
	for _, t := range n.Head {
		if t.IsVar() {
			into[t.Name] = true
		}
	}
	for _, in := range n.Inputs {
		collectVars(in, into)
	}
}

func sameArgs(a, b []query.Term) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Const != b[i].Const || a[i].Name != b[i].Name {
			return false
		}
	}
	return true
}

func sharesVar(a, b map[string]bool) bool {
	for v := range a {
		if b[v] {
			return true
		}
	}
	return false
}
