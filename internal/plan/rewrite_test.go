package plan

import (
	"reflect"
	"testing"

	"repro/internal/query"
)

func TestRewriteCollapsesSingleArmUnion(t *testing.T) {
	u := query.UCQ{Name: "q", Disjuncts: []query.CQ{mustCQ(t, "q(x) <- A(x), R(x, y)")}}
	n := FromUCQ(u)
	r := Rewrite(n)
	if NodeCount(r) >= NodeCount(n) {
		t.Fatalf("node count %d -> %d, want a reduction", NodeCount(n), NodeCount(r))
	}
	if r.Op != OpDistinct || len(r.Inputs) != 1 || r.Inputs[0].Op != OpProject {
		t.Fatalf("rewritten tree = %s", r)
	}
	lo, err := Extract(r)
	if err != nil {
		t.Fatal(err)
	}
	if lo.Kind != KindUCQ || !reflect.DeepEqual(lo.UCQ, u) {
		t.Fatalf("extract changed the query: %+v", lo)
	}
	// A multi-arm union must be untouched.
	u2 := query.UCQ{Name: "q", Disjuncts: []query.CQ{
		mustCQ(t, "q(x) <- A(x)"), mustCQ(t, "q(x) <- B(x)")}}
	n2 := FromUCQ(u2)
	if Rewrite(n2) != n2 {
		t.Fatal("two-arm union must not be rewritten")
	}
}

func TestRewriteCollapsesFactorizedSingleArm(t *testing.T) {
	u := query.USCQ{Name: "q", Disjuncts: []query.SCQ{{
		Name: "q",
		Head: []query.Term{query.Var("x")},
		Blocks: [][]query.Atom{
			{query.ConceptAtom("A", query.Var("x")), query.ConceptAtom("B", query.Var("x"))},
			{query.RoleAtom("R", query.Var("x"), query.Var("y"))},
		},
	}}}
	n := FromUSCQ(u)
	r := Rewrite(n)
	if NodeCount(r) >= NodeCount(n) {
		t.Fatalf("node count %d -> %d, want a reduction", NodeCount(n), NodeCount(r))
	}
	lo, err := Extract(r)
	if err != nil {
		t.Fatal(err)
	}
	if lo.Kind != KindUSCQ || !reflect.DeepEqual(lo.USCQ, u) {
		t.Fatalf("extract changed the query: %+v", lo)
	}
}

func TestRewriteInsideCoverFragments(t *testing.T) {
	j := query.JUCQ{
		Name: "q",
		Head: []query.Term{query.Var("x")},
		Subs: []query.UCQ{
			{Name: "f1", Disjuncts: []query.CQ{mustCQ(t, "f1(x) <- R(x, y)")}},
			{Name: "f2", Disjuncts: []query.CQ{
				mustCQ(t, "f2(x) <- A(x)"), mustCQ(t, "f2(x) <- B(x)")}},
		},
	}
	n := FromJUCQ(j)
	r := Rewrite(n)
	if NodeCount(r) >= NodeCount(n) {
		t.Fatalf("node count %d -> %d, want a reduction", NodeCount(n), NodeCount(r))
	}
	lo, err := Extract(r)
	if err != nil {
		t.Fatal(err)
	}
	if lo.Kind != KindJUCQ || !reflect.DeepEqual(lo.JUCQ, j) {
		t.Fatalf("extract changed the query: %+v", lo)
	}
	// The cover shape survives: fragment 1's single-arm union collapsed,
	// fragment 2's two-arm union did not.
	join := r.Inputs[0].Inputs[0]
	if join.Op != OpJoin || len(join.Inputs) != 2 {
		t.Fatalf("join = %s", r)
	}
	if join.Inputs[0].Inputs[0].Op != OpProject {
		t.Fatalf("fragment 1 not collapsed: %s", join.Inputs[0])
	}
	if join.Inputs[1].Inputs[0].Op != OpUnion {
		t.Fatalf("fragment 2 wrongly collapsed: %s", join.Inputs[1])
	}
}

func TestRewriteMergesNestedProjects(t *testing.T) {
	body := &Node{Op: OpAccess, Atoms: []query.Atom{
		query.RoleAtom("R", query.Var("x"), query.Var("y"))}, Pos: 0}
	inner := &Node{Op: OpProject, Name: "inner",
		Head:   []query.Term{query.Var("x"), query.Var("y")},
		Inputs: []*Node{body}}
	outer := &Node{Op: OpProject, Name: "outer",
		Head:   []query.Term{query.Var("y"), query.Cst("c")},
		Inputs: []*Node{inner}}
	r := Rewrite(outer)
	if r.Op != OpProject || len(r.Inputs) != 1 || r.Inputs[0] != body {
		t.Fatalf("rewritten = %s", r)
	}
	if !reflect.DeepEqual(r.Head, outer.Head) || r.Name != "outer" {
		t.Fatalf("merged head/name wrong: %s", r)
	}
	if NodeCount(r) != 2 {
		t.Fatalf("node count = %d", NodeCount(r))
	}

	// Not mergeable: the outer head names a variable the inner head
	// does not export.
	bad := &Node{Op: OpProject,
		Head:   []query.Term{query.Var("z")},
		Inputs: []*Node{inner}}
	if r := Rewrite(bad); r.Inputs[0].Op != OpProject {
		t.Fatalf("unsound merge applied: %s", r)
	}
	// Not mergeable: a constant in the inner head has no name to
	// rebind through.
	constInner := &Node{Op: OpProject,
		Head:   []query.Term{query.Var("x"), query.Cst("k")},
		Inputs: []*Node{body}}
	top := &Node{Op: OpProject,
		Head:   []query.Term{query.Var("x")},
		Inputs: []*Node{constInner}}
	if r := Rewrite(top); r.Inputs[0].Op != OpProject {
		t.Fatalf("unsound merge applied: %s", r)
	}
}

// taggedUnion builds Distinct(Union(arms)) where each arm projects a
// distinct constant tag in the second head position — the disjoint
// shape the push-Distinct rule targets.
func taggedUnion(tags ...string) *Node {
	arms := make([]*Node, len(tags))
	for i, tag := range tags {
		body := &Node{Op: OpAccess, Atoms: []query.Atom{
			query.ConceptAtom("A"+tag, query.Var("x"))}, Pos: 0}
		arms[i] = &Node{Op: OpProject, Name: "arm-" + tag,
			Head:   []query.Term{query.Var("x"), query.Cst(tag)},
			Inputs: []*Node{body}}
	}
	return &Node{Op: OpDistinct, Name: "q", Inputs: []*Node{
		{Op: OpUnion, Name: "q", Inputs: arms}}}
}

func TestRewritePushesDistinctBelowDisjointUnion(t *testing.T) {
	n := taggedUnion("a", "b", "c")
	before := n.String()
	r := Rewrite(n)
	if r == n {
		t.Fatal("disjoint tagged union must be rewritten")
	}
	u := r.Inputs[0]
	if u.Op != OpUnion || len(u.Inputs) != 3 {
		t.Fatalf("rewritten = %s", r)
	}
	for i, arm := range u.Inputs {
		if arm.Op != OpDistinct || len(arm.Inputs) != 1 || arm.Inputs[0].Op != OpProject {
			t.Fatalf("arm %d = %s, want Distinct(Project)", i, arm)
		}
	}
	// Copy-on-write: the original tree is untouched.
	if n.String() != before {
		t.Fatal("rewrite mutated the input tree")
	}
	if n.Inputs[0].Inputs[0].Op != OpProject {
		t.Fatal("original arm was wrapped in place")
	}
	// The rewritten tree stays valid and extracts to the same query.
	if err := Validate(r); err != nil {
		t.Fatalf("Validate(rewritten) = %v", err)
	}
	lo1, err := Extract(n)
	if err != nil {
		t.Fatal(err)
	}
	lo2, err := Extract(r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lo1, lo2) {
		t.Fatalf("extract drifted: %+v vs %+v", lo1, lo2)
	}
	// Idempotent: the wrapped arms mean the rule already fired.
	if again := Rewrite(r); again != r {
		t.Fatalf("second rewrite changed the tree: %s", again)
	}
}

func TestRewritePushDistinctDoesNotFire(t *testing.T) {
	// Shared heads — every reformulated UCQ — are not disjoint.
	u := query.UCQ{Name: "q", Disjuncts: []query.CQ{
		mustCQ(t, "q(x) <- A(x)"), mustCQ(t, "q(x) <- B(x)")}}
	n := FromUCQ(u)
	if r := Rewrite(n); r != n {
		t.Fatalf("shared-head union rewritten: %s", r)
	}
	// A constant against a variable cannot prove disjointness either.
	mixed := taggedUnion("a", "b")
	mixed.Inputs[0].Inputs[1].Head[1] = query.Var("y")
	mixed.Inputs[0].Inputs[1].Inputs[0] = &Node{Op: OpAccess, Atoms: []query.Atom{
		query.RoleAtom("R", query.Var("x"), query.Var("y"))}, Pos: 0}
	if r := Rewrite(mixed); r != mixed {
		t.Fatalf("constant-vs-variable arms rewritten: %s", r)
	}
	// Equal constants overlap.
	same := taggedUnion("a", "a")
	if r := Rewrite(same); r != same {
		t.Fatalf("equal-constant arms rewritten: %s", r)
	}
}

func TestRewriteLeavesOriginalIntact(t *testing.T) {
	u := query.UCQ{Name: "q", Disjuncts: []query.CQ{mustCQ(t, "q(x) <- A(x)")}}
	n := FromUCQ(u)
	before := n.String()
	Rewrite(n)
	if n.String() != before {
		t.Fatal("rewrite mutated the input tree")
	}
}
