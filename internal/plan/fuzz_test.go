package plan

// FuzzRewriteValidate: any valid lowered plan still validates after
// Rewrite, and extraction is stable — Extract(Rewrite(relower(lo)))
// returns lo unchanged. The generator builds queries that are valid by
// construction (head variables bound, factorized blocks sharing
// argument lists, cover fragments exposing every shared variable), so
// a failure is always a plan-package bug, never a bad input. The seed
// corpus under testdata/fuzz covers all six From* lowerings.

import (
	"reflect"
	"testing"

	"repro/internal/query"
)

// byteFeed deals deterministic small integers from the fuzz input,
// returning 0 once the input is exhausted.
type byteFeed struct {
	d []byte
	i int
}

func (f *byteFeed) next(n int) int {
	if n <= 1 || f.i >= len(f.d) {
		return 0
	}
	b := f.d[f.i]
	f.i++
	return int(b) % n
}

var (
	fuzzVars     = []string{"x", "y", "z", "u", "v", "w"}
	fuzzConcepts = []string{"A", "B", "C", "D"}
	fuzzRoles    = []string{"R", "S", "T"}
)

// orderedVars lists the distinct variables of atoms in first-use order
// (map iteration would make generation nondeterministic).
func orderedVars(atoms []query.Atom) []string {
	var out []string
	seen := map[string]bool{}
	for _, a := range atoms {
		for _, t := range a.Args {
			if t.IsVar() && !seen[t.Name] {
				seen[t.Name] = true
				out = append(out, t.Name)
			}
		}
	}
	return out
}

func genAtom(f *byteFeed, pool []string) query.Atom {
	if f.next(2) == 0 {
		return query.Atom{Pred: fuzzConcepts[f.next(len(fuzzConcepts))],
			Args: []query.Term{query.Var(pool[f.next(len(pool))])}}
	}
	return query.Atom{Pred: fuzzRoles[f.next(len(fuzzRoles))],
		Args: []query.Term{query.Var(pool[f.next(len(pool))]), query.Var(pool[f.next(len(pool))])}}
}

// pickVars selects up to two distinct variables of used, in order. The
// result is non-nil even when empty: genUCQ/genUSCQ distinguish "no
// head chosen yet" (nil) from "boolean head" (empty) with it.
func pickVars(f *byteFeed, used []string) []query.Term {
	out := []query.Term{}
	taken := map[string]bool{}
	for i, n := 0, f.next(3); i < n && len(used) > 0; i++ {
		v := used[f.next(len(used))]
		if !taken[v] {
			taken[v] = true
			out = append(out, query.Var(v))
		}
	}
	return out
}

// bindHead fixes q's head, appending a concept atom for every head
// variable the body does not bind — generated queries stay safe.
func bindHead(f *byteFeed, q query.CQ, head []query.Term) query.CQ {
	q.Head = head
	bound := map[string]bool{}
	for _, v := range orderedVars(q.Atoms) {
		bound[v] = true
	}
	for _, t := range head {
		if t.IsVar() && !bound[t.Name] {
			bound[t.Name] = true
			q.Atoms = append(q.Atoms, query.Atom{Pred: fuzzConcepts[f.next(len(fuzzConcepts))],
				Args: []query.Term{t}})
		}
	}
	return q
}

// genCQ generates a safe CQ over pool. With head == nil it picks up to
// two body variables as the head; otherwise it adopts head, binding
// any missing head variable with an extra atom.
func genCQ(f *byteFeed, name string, head []query.Term, pool []string) query.CQ {
	q := query.CQ{Name: name}
	for i, n := 0, 1+f.next(3); i < n; i++ {
		q.Atoms = append(q.Atoms, genAtom(f, pool))
	}
	if head == nil {
		q.Head = pickVars(f, orderedVars(q.Atoms))
		return q
	}
	return bindHead(f, q, head)
}

// scqAtoms flattens an SCQ's blocks.
func scqAtoms(s query.SCQ) []query.Atom {
	var all []query.Atom
	for _, b := range s.Blocks {
		all = append(all, b...)
	}
	return all
}

// bindHeadSCQ fixes s's head, appending a singleton block for every
// head variable no block binds.
func bindHeadSCQ(f *byteFeed, s query.SCQ, head []query.Term) query.SCQ {
	s.Head = head
	bound := map[string]bool{}
	for _, v := range orderedVars(scqAtoms(s)) {
		bound[v] = true
	}
	for _, t := range head {
		if t.IsVar() && !bound[t.Name] {
			bound[t.Name] = true
			s.Blocks = append(s.Blocks, []query.Atom{{Pred: fuzzConcepts[f.next(len(fuzzConcepts))],
				Args: []query.Term{t}}})
		}
	}
	return s
}

// genSCQ generates a factorized SCQ: each block's alternatives share
// one argument list and differ only in predicate.
func genSCQ(f *byteFeed, name string, head []query.Term, pool []string) query.SCQ {
	s := query.SCQ{Name: name}
	for b, n := 0, 1+f.next(3); b < n; b++ {
		var args []query.Term
		if f.next(2) == 0 {
			args = []query.Term{query.Var(pool[f.next(len(pool))])}
		} else {
			args = []query.Term{query.Var(pool[f.next(len(pool))]), query.Var(pool[f.next(len(pool))])}
		}
		preds := fuzzConcepts
		if len(args) == 2 {
			preds = fuzzRoles
		}
		start, alts := f.next(len(preds)), 1+f.next(2)
		var block []query.Atom
		for a := 0; a < alts; a++ {
			block = append(block, query.Atom{Pred: preds[(start+a)%len(preds)], Args: args})
		}
		s.Blocks = append(s.Blocks, block)
	}
	if head == nil {
		s.Head = pickVars(f, orderedVars(scqAtoms(s)))
		return s
	}
	return bindHeadSCQ(f, s, head)
}

// genUCQ generates disjuncts sharing the first disjunct's head.
func genUCQ(f *byteFeed, name string, pool []string) query.UCQ {
	u := query.UCQ{Name: name}
	d0 := genCQ(f, name, nil, pool)
	u.Disjuncts = append(u.Disjuncts, d0)
	for i, n := 0, f.next(3); i < n; i++ {
		u.Disjuncts = append(u.Disjuncts, genCQ(f, name, d0.Head, pool))
	}
	return u
}

func genUSCQ(f *byteFeed, name string, pool []string) query.USCQ {
	u := query.USCQ{Name: name}
	d0 := genSCQ(f, name, nil, pool)
	u.Disjuncts = append(u.Disjuncts, d0)
	for i, n := 0, f.next(3); i < n; i++ {
		u.Disjuncts = append(u.Disjuncts, genSCQ(f, name, d0.Head, pool))
	}
	return u
}

// fragPools builds two fragment variable pools overlapping only in the
// shared prefix. The cover-join invariant (a variable two fragments
// mention appears in both heads) then holds by construction: only
// shared variables can co-occur, and fragHead forces every used shared
// variable into the fragment's head.
func fragPools(f *byteFeed) (shared []string, pools [][]string) {
	shared = fuzzVars[:1+f.next(2)]
	pools = [][]string{
		append(append([]string(nil), shared...), "z", "u"),
		append(append([]string(nil), shared...), "v", "w"),
	}
	return shared, pools
}

// fragHead computes one fragment's head: every shared variable its
// disjuncts mention, plus optionally one private variable.
func fragHead(f *byteFeed, shared []string, bodies []query.Atom) []query.Term {
	isShared := map[string]bool{}
	for _, v := range shared {
		isShared[v] = true
	}
	var head []query.Term
	var private []string
	for _, v := range orderedVars(bodies) {
		if isShared[v] {
			head = append(head, query.Var(v))
		} else {
			private = append(private, v)
		}
	}
	if len(private) > 0 && f.next(2) == 1 {
		head = append(head, query.Var(private[f.next(len(private))]))
	}
	return head
}

// coverHead picks the query head from the fragments' exposed variables.
func coverHead(f *byteFeed, fragHeads [][]query.Term) []query.Term {
	var used []string
	seen := map[string]bool{}
	for _, h := range fragHeads {
		for _, t := range h {
			if t.IsVar() && !seen[t.Name] {
				seen[t.Name] = true
				used = append(used, t.Name)
			}
		}
	}
	return pickVars(f, used)
}

func genJUCQ(f *byteFeed) query.JUCQ {
	shared, pools := fragPools(f)
	j := query.JUCQ{Name: "q"}
	var heads [][]query.Term
	for i, name := range []string{"f0", "f1"} {
		draft := genUCQ(f, name, pools[i])
		var bodies []query.Atom
		for _, d := range draft.Disjuncts {
			bodies = append(bodies, d.Atoms...)
		}
		head := fragHead(f, shared, bodies)
		sub := query.UCQ{Name: name}
		for _, d := range draft.Disjuncts {
			sub.Disjuncts = append(sub.Disjuncts, bindHead(f, d, head))
		}
		j.Subs = append(j.Subs, sub)
		heads = append(heads, head)
	}
	j.Head = coverHead(f, heads)
	return j
}

func genJUSCQ(f *byteFeed) query.JUSCQ {
	shared, pools := fragPools(f)
	j := query.JUSCQ{Name: "q"}
	var heads [][]query.Term
	for i, name := range []string{"f0", "f1"} {
		draft := genUSCQ(f, name, pools[i])
		var bodies []query.Atom
		for _, d := range draft.Disjuncts {
			bodies = append(bodies, scqAtoms(d)...)
		}
		head := fragHead(f, shared, bodies)
		sub := query.USCQ{Name: name}
		for _, d := range draft.Disjuncts {
			sub.Disjuncts = append(sub.Disjuncts, bindHeadSCQ(f, d, head))
		}
		j.Subs = append(j.Subs, sub)
		heads = append(heads, head)
	}
	j.Head = coverHead(f, heads)
	return j
}

// relower lowers an extracted dialect query back into the IR.
func relower(lo Lowered) *Node {
	switch lo.Kind {
	case KindUCQ:
		return FromUCQ(lo.UCQ)
	case KindUSCQ:
		return FromUSCQ(lo.USCQ)
	case KindJUCQ:
		return FromJUCQ(lo.JUCQ)
	default:
		return FromJUSCQ(lo.JUSCQ)
	}
}

func FuzzRewriteValidate(f *testing.F) {
	// One seed per From* lowering (first byte mod 6 selects the kind);
	// the same seeds are checked in under testdata/fuzz.
	f.Add([]byte("0fEd9hK2mQ"))
	f.Add([]byte("1aXc4Tq8Lw"))
	f.Add([]byte("2bYd5Ur9Mz"))
	f.Add([]byte("3cZe6Vs0Na"))
	f.Add([]byte("4dAf7Wt1Ob"))
	f.Add([]byte("5eBg8Xu2Pc"))
	// JUCQ whose shared variable is bound only in non-first position
	// inside one fragment — the shape the shard backend's shuffle
	// exchange compiles (f0(y, x) <- S(y, y), S(y, x) joined with
	// f1(x) <- A(x) on x).
	f.Add([]byte("4aaaaaaaaa"))
	f.Fuzz(func(t *testing.T, data []byte) {
		fd := &byteFeed{d: data}
		var n *Node
		switch fd.next(6) {
		case 0:
			cq := genCQ(fd, "q", nil, fuzzVars[:3])
			mustValidate(t, FromCQ(cq))
			n = FromUCQ(query.UCQ{Name: "q", Disjuncts: []query.CQ{cq}})
		case 1:
			n = FromUCQ(genUCQ(fd, "q", fuzzVars[:3]))
		case 2:
			scq := genSCQ(fd, "q", nil, fuzzVars[:3])
			mustValidate(t, FromSCQ(scq))
			n = FromUSCQ(query.USCQ{Name: "q", Disjuncts: []query.SCQ{scq}})
		case 3:
			n = FromUSCQ(genUSCQ(fd, "q", fuzzVars[:3]))
		case 4:
			n = FromJUCQ(genJUCQ(fd))
		default:
			n = FromJUSCQ(genJUSCQ(fd))
		}
		mustValidate(t, n)
		r := Rewrite(n)
		mustValidate(t, r)
		lo1, err := Extract(r)
		if err != nil {
			t.Fatalf("Extract(Rewrite): %v\n%s", err, r)
		}
		r2 := Rewrite(relower(lo1))
		mustValidate(t, r2)
		lo2, err := Extract(r2)
		if err != nil {
			t.Fatalf("Extract after relower: %v\n%s", err, r2)
		}
		if !reflect.DeepEqual(lo1, lo2) {
			t.Fatalf("extract round-trip diverged:\n%#v\n%#v", lo1, lo2)
		}
	})
}

func mustValidate(t *testing.T, n *Node) {
	t.Helper()
	if err := Validate(n); err != nil {
		t.Fatalf("Validate: %v\n%s", err, n)
	}
}
