package plan

// Estimate is a backend's whole-plan cost and output-cardinality
// prediction for one plan tree — the quantity the cover search
// minimizes and EXPLAIN reports.
type Estimate struct {
	Cost float64
	Card float64
}

// RunResult is one execution's output: decoded answer tuples plus the
// annotated explanation (estimates frozen at compile time, actual
// per-operator row counters observed during the run).
type RunResult struct {
	Tuples  [][]string
	Explain *Explain
}

// Executable is a compiled plan, ready to run any number of times
// against the backend's live data. Implementations must be safe for
// concurrent Run calls — physical state is rebuilt per run.
type Executable interface {
	// Estimate returns the whole-plan estimate frozen at compile time.
	Estimate() Estimate
	// Run executes the plan with the given worker budget (<= 1 is
	// fully sequential; backends may ignore the budget).
	Run(workers int) (*RunResult, error)
}

// Observer is an optional Backend extension: a backend that learns
// from its own executions implements it, and core.Answerer routes
// every run's Explain (estimates plus actual row counters) back to
// the backend that compiled the plan. Each backend keeps its own
// observations — the SQL path no longer borrows the native engine's
// Profile.Feedback statistics.
type Observer interface {
	Observe(n *Node, ex *Explain)
}

// Backend turns logical plans into executables — the physical half of
// the logical/physical split. The engine's native streaming-operator
// pipeline and the sqlexec SQL-text path both implement it; selecting
// a backend replaces the old ViaSQL switch.
type Backend interface {
	// Name identifies the backend (it keys answer-cache entries).
	Name() string
	// Compile lowers the plan into an executable.
	Compile(n *Node) (Executable, error)
	// Estimate scores the plan without compiling physical state; a
	// malformed plan costs +Inf rather than erroring (search code
	// treats it as "never pick this").
	Estimate(n *Node) Estimate
}
