package plan

import (
	"fmt"
	"strings"
)

// UnknownRows marks an ExplainNode figure the backend could not
// attribute (estimates for operators the planner does not cost
// individually, actuals for operators with no physical counterpart).
const UnknownRows = -1

// ExplainNode annotates one plan operator with estimated and observed
// figures. EstRows/EstCost/ActualRows are UnknownRows (-1) where no
// figure applies; zero is a real observation.
type ExplainNode struct {
	Op         string         `json:"op"`
	Detail     string         `json:"detail,omitempty"`
	EstRows    float64        `json:"estRows"`
	EstCost    float64        `json:"estCost"`
	ActualRows int64          `json:"actualRows"`
	Children   []*ExplainNode `json:"children,omitempty"`
}

// Explain is the full explanation of one executed (or estimated)
// plan: which backend compiled it, the whole-plan estimate, the SQL
// text when a SQL backend produced one, and the annotated operator
// tree.
type Explain struct {
	Backend string       `json:"backend"`
	EstCost float64      `json:"estCost"`
	EstCard float64      `json:"estCard"`
	SQL     string       `json:"sql,omitempty"`
	Root    *ExplainNode `json:"root"`
}

// Skeleton mirrors the plan tree into an unannotated ExplainNode tree
// (every figure UnknownRows), returning the node map backends use to
// attach estimates and actual row counters.
func Skeleton(n *Node) (*ExplainNode, map[*Node]*ExplainNode) {
	at := make(map[*Node]*ExplainNode)
	var build func(*Node) *ExplainNode
	build = func(m *Node) *ExplainNode {
		e := &ExplainNode{
			Op:         m.Op.String(),
			Detail:     m.Detail(),
			EstRows:    UnknownRows,
			EstCost:    UnknownRows,
			ActualRows: UnknownRows,
		}
		at[m] = e
		for _, in := range m.Inputs {
			e.Children = append(e.Children, build(in))
		}
		return e
	}
	return build(n), at
}

// Text renders the explanation as an indented tree, EXPLAIN ANALYZE
// style.
func (e *Explain) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "backend=%s estCost=%s estCard=%s\n", e.Backend, num(e.EstCost), num(e.EstCard))
	var walk func(n *ExplainNode, depth int)
	walk = func(n *ExplainNode, depth int) {
		label := n.Op
		if n.Detail != "" {
			label += " " + n.Detail
		}
		fmt.Fprintf(&b, "%s%-48s est=%-10s actual=%s\n",
			strings.Repeat("  ", depth), label, num(n.EstRows), actual(n.ActualRows))
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	if e.Root != nil {
		walk(e.Root, 0)
	}
	if e.SQL != "" {
		b.WriteString("sql: " + e.SQL + "\n")
	}
	return b.String()
}

func num(v float64) string {
	if v == UnknownRows {
		return "-"
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.1f", v), "0"), ".")
}

func actual(v int64) string {
	if v == UnknownRows {
		return "-"
	}
	return fmt.Sprintf("%d", v)
}
