package plan

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/query"
)

func mustCQ(t *testing.T, s string) query.CQ {
	t.Helper()
	q, err := query.ParseCQ(s)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestUCQRoundTrip: lowering then extracting is the identity on the
// UCQ — bodies reassemble in original atom order.
func TestUCQRoundTrip(t *testing.T) {
	u := query.UCQ{Name: "u", Disjuncts: []query.CQ{
		mustCQ(t, "q(x) <- A(x), R(x, y), B(y)"),
		mustCQ(t, "q(x) <- C(x)"),
		mustCQ(t, "q(x) <- R(x, y), S(y, z), T(z, w)"),
	}}
	lo, err := Extract(FromUCQ(u))
	if err != nil {
		t.Fatal(err)
	}
	if lo.Kind != KindUCQ {
		t.Fatalf("kind = %s", lo.Kind)
	}
	if !reflect.DeepEqual(lo.UCQ, u) {
		t.Errorf("round trip changed the UCQ:\n got %v\nwant %v", lo.UCQ, u)
	}
}

// TestJUCQRoundTrip: a multi-fragment cover reformulation survives the
// plan IR unchanged; a single-fragment one collapses to its UCQ (the
// shape that actually executes — no join, no materialization).
func TestJUCQRoundTrip(t *testing.T) {
	frag1 := query.UCQ{Name: "f1", Disjuncts: []query.CQ{
		mustCQ(t, "f1(x) <- A(x)"), mustCQ(t, "f1(x) <- B(x)"),
	}}
	frag2 := query.UCQ{Name: "f2", Disjuncts: []query.CQ{
		mustCQ(t, "f2(x, y) <- R(x, y)"),
	}}
	j := query.JUCQ{Name: "q_or", Head: []query.Term{query.Var("x"), query.Var("y")},
		Subs: []query.UCQ{frag1, frag2}}
	lo, err := Extract(FromJUCQ(j))
	if err != nil {
		t.Fatal(err)
	}
	if lo.Kind != KindJUCQ {
		t.Fatalf("kind = %s", lo.Kind)
	}
	if !reflect.DeepEqual(lo.JUCQ, j) {
		t.Errorf("round trip changed the JUCQ:\n got %v\nwant %v", lo.JUCQ, j)
	}

	single := query.JUCQ{Name: "q_or", Head: frag1.Head(), Subs: []query.UCQ{frag1}}
	lo, err = Extract(FromJUCQ(single))
	if err != nil {
		t.Fatal(err)
	}
	if lo.Kind != KindUCQ {
		t.Fatalf("single-fragment kind = %s, want ucq", lo.Kind)
	}
	if !reflect.DeepEqual(lo.UCQ, frag1) {
		t.Errorf("single-fragment round trip changed the UCQ")
	}
}

// TestUSCQRoundTrip: factorized queries keep their block structure
// through the IR (Access nodes hold whole blocks).
func TestUSCQRoundTrip(t *testing.T) {
	u := query.UCQ{Name: "u", Disjuncts: []query.CQ{
		mustCQ(t, "q(x) <- A(x), R(x, y)"),
		mustCQ(t, "q(x) <- A(x), S(x, y)"),
		mustCQ(t, "q(x) <- B(x), R(x, y)"),
		mustCQ(t, "q(x) <- B(x), S(x, y)"),
	}}
	f := query.FactorizeUCQ(u)
	lo, err := Extract(FromUSCQ(f))
	if err != nil {
		t.Fatal(err)
	}
	if lo.Kind != KindUSCQ {
		t.Fatalf("kind = %s", lo.Kind)
	}
	if !reflect.DeepEqual(lo.USCQ, f) {
		t.Errorf("round trip changed the USCQ:\n got %v\nwant %v", lo.USCQ, f)
	}
	jf := query.JUSCQ{Name: "j", Head: f.Expand().Head(), Subs: []query.USCQ{f, f}}
	lo, err = Extract(FromJUSCQ(jf))
	if err != nil {
		t.Fatal(err)
	}
	if lo.Kind != KindJUSCQ || !reflect.DeepEqual(lo.JUSCQ, jf) {
		t.Errorf("JUSCQ round trip changed the query (kind %s)", lo.Kind)
	}
}

// shape returns the ops of the arm body, root-first.
func bodyShape(t *testing.T, q query.CQ) *Node {
	t.Helper()
	n := FromCQ(q)
	if n.Op != OpProject || len(n.Inputs) != 1 {
		t.Fatalf("arm root = %s", n.Op)
	}
	return n.Inputs[0]
}

// TestSemiJoinClassification: existential atoms that only restrict the
// core become semijoin reducers; anything visible in the head or
// shared with another non-core atom must stay in the join.
func TestSemiJoinClassification(t *testing.T) {
	// R(x,y) only restricts x: y is private and not in the head.
	body := bodyShape(t, mustCQ(t, "q(x) <- A(x), R(x, y)"))
	if body.Op != OpSemiJoin || len(body.Inputs) != 2 {
		t.Fatalf("shape = %v", body)
	}
	if body.Inputs[0].Op != OpAccess || body.Inputs[0].Pos != 0 {
		t.Errorf("core = %v", body.Inputs[0])
	}
	if body.Inputs[1].Pos != 1 {
		t.Errorf("reducer = %v", body.Inputs[1])
	}

	// y is a head variable: R must join, not reduce.
	body = bodyShape(t, mustCQ(t, "q(x, y) <- A(x), R(x, y)"))
	if body.Op != OpJoin {
		t.Errorf("head-variable case: shape = %s, want join", body.Op)
	}

	// R and S share the existential variable y: neither has a private
	// variable, so semijoining either independently is off the table —
	// all three atoms join.
	body = bodyShape(t, mustCQ(t, "q(x) <- A(x), R(x, y), S(x, y)"))
	if body.Op != OpJoin || len(body.Inputs) != 3 {
		t.Errorf("shared-existential case: shape = %v, want 3-way join", body)
	}

	// S(y,z) dangles off R through y with z private: S reduces, R
	// (whose y is shared) stays in the core.
	body = bodyShape(t, mustCQ(t, "q(x) <- R(x, y), S(y, z)"))
	if body.Op != OpSemiJoin || len(body.Inputs) != 2 {
		t.Fatalf("dangling case: shape = %v", body)
	}
	if body.Inputs[0].Pos != 0 || body.Inputs[1].Pos != 1 {
		t.Errorf("dangling case: core/reducer = %v / %v", body.Inputs[0], body.Inputs[1])
	}

	// Classification never changes extraction: the CQ reassembles
	// identically from any split.
	for _, s := range []string{
		"q(x) <- A(x), R(x, y)",
		"q(x) <- A(x), R(x, y), S(x, y)",
		"q(x) <- R(x, y), S(y, z), T(z, w)",
	} {
		q := mustCQ(t, s)
		u := query.UCQ{Name: "u", Disjuncts: []query.CQ{q}}
		lo, err := Extract(FromUCQ(u))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(lo.UCQ.Disjuncts[0], q) {
			t.Errorf("%s: extraction changed the CQ to %v", s, lo.UCQ.Disjuncts[0])
		}
	}
}

// TestExtractRejectsMalformed: malformed trees error instead of
// panicking.
func TestExtractRejectsMalformed(t *testing.T) {
	cases := []*Node{
		nil,
		{Op: OpUnion},
		{Op: OpDistinct},
		{Op: OpDistinct, Inputs: []*Node{{Op: OpAccess}}},
		{Op: OpDistinct, Inputs: []*Node{{Op: OpProject, Inputs: []*Node{{Op: OpAccess}}}}},
		{Op: OpDistinct, Inputs: []*Node{{Op: OpUnion, Inputs: []*Node{{Op: OpJoin}}}}},
	}
	for i, n := range cases {
		if _, err := Extract(n); err == nil {
			t.Errorf("case %d: no error for malformed tree", i)
		}
	}
}

// TestExplainJSONRoundTrip: the EXPLAIN annotation survives JSON
// encode/decode with estimated and actual figures intact (the server
// serves exactly this structure).
func TestExplainJSONRoundTrip(t *testing.T) {
	u := query.UCQ{Name: "u", Disjuncts: []query.CQ{mustCQ(t, "q(x) <- A(x), R(x, y)")}}
	root, at := Skeleton(FromUCQ(u))
	for _, e := range at {
		e.EstRows, e.EstCost, e.ActualRows = 7.5, 12.25, 42
	}
	ex := &Explain{Backend: "native", EstCost: 123.5, EstCard: 7.5, Root: root}
	blob, err := json.Marshal(ex)
	if err != nil {
		t.Fatal(err)
	}
	var back Explain
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, ex) {
		t.Errorf("JSON round trip changed the explain:\n got %+v\nwant %+v", &back, ex)
	}
	text := ex.Text()
	for _, want := range []string{"backend=native", "distinct", "union", "semijoin", "A(x)", "actual=42"} {
		if !strings.Contains(text, want) {
			t.Errorf("Text() missing %q:\n%s", want, text)
		}
	}
}

// TestSkeletonCoversEveryNode: every IR node gets exactly one explain
// node, initialized to unknown.
func TestSkeletonCoversEveryNode(t *testing.T) {
	j := query.JUCQ{Name: "j", Head: []query.Term{query.Var("x")}, Subs: []query.UCQ{
		{Name: "f1", Disjuncts: []query.CQ{mustCQ(t, "f1(x) <- A(x)")}},
		{Name: "f2", Disjuncts: []query.CQ{mustCQ(t, "f2(x) <- B(x)")}},
	}}
	n := FromJUCQ(j)
	root, at := Skeleton(n)
	count := 0
	var walk func(*Node)
	walk = func(m *Node) {
		count++
		e := at[m]
		if e == nil {
			t.Fatalf("node %s has no explain entry", m.Op)
		}
		if e.EstRows != UnknownRows || e.ActualRows != UnknownRows {
			t.Errorf("node %s not initialized to unknown", m.Op)
		}
		for _, in := range m.Inputs {
			walk(in)
		}
	}
	walk(n)
	var countEx func(*ExplainNode) int
	countEx = func(e *ExplainNode) int {
		total := 1
		for _, c := range e.Children {
			total += countEx(c)
		}
		return total
	}
	if got := countEx(root); got != count {
		t.Errorf("skeleton has %d nodes, IR has %d", got, count)
	}
}
