package plan

import (
	"testing"

	"repro/internal/query"
)

// access builds a single-atom access leaf for hand-assembled trees.
func access(pos int, pred string, args ...query.Term) *Node {
	return &Node{Op: OpAccess, Atoms: []query.Atom{{Pred: pred, Args: args}}, Pos: pos}
}

func TestValidateAcceptsLowerings(t *testing.T) {
	x, y := query.Var("x"), query.Var("y")
	cq := mustCQ(t, "q(x) <- Prof(x), advisor(x, y)")
	ucq := query.UCQ{Name: "q", Disjuncts: []query.CQ{cq, mustCQ(t, "q(x) <- Student(x)")}}
	scq := query.SCQ{Name: "q", Head: []query.Term{x},
		Blocks: [][]query.Atom{{{Pred: "A", Args: []query.Term{x}}, {Pred: "B", Args: []query.Term{x}}}}}
	jucq := query.JUCQ{Name: "q", Head: []query.Term{x}, Subs: []query.UCQ{
		{Name: "f0", Disjuncts: []query.CQ{mustCQ(t, "f0(x, y) <- advisor(x, y)")}},
		{Name: "f1", Disjuncts: []query.CQ{mustCQ(t, "f1(y) <- Prof(y)")}},
	}}
	juscq := query.JUSCQ{Name: "q", Head: []query.Term{x}, Subs: []query.USCQ{
		{Name: "f0", Disjuncts: []query.SCQ{{Name: "f0", Head: []query.Term{x, y},
			Blocks: [][]query.Atom{{{Pred: "advisor", Args: []query.Term{x, y}}}}}}},
		{Name: "f1", Disjuncts: []query.SCQ{{Name: "f1", Head: []query.Term{y},
			Blocks: [][]query.Atom{{{Pred: "Prof", Args: []query.Term{y}}}}}}},
	}}
	for name, n := range map[string]*Node{
		"cq":    FromCQ(cq),
		"ucq":   FromUCQ(ucq),
		"scq":   FromSCQ(scq),
		"uscq":  FromUSCQ(query.USCQ{Name: "q", Disjuncts: []query.SCQ{scq}}),
		"jucq":  FromJUCQ(jucq),
		"juscq": FromJUSCQ(juscq),
	} {
		if err := Validate(n); err != nil {
			t.Errorf("%s: Validate(%s) = %v, want nil", name, n, err)
		}
		if err := Validate(Rewrite(n)); err != nil {
			t.Errorf("%s: Validate(Rewrite) = %v, want nil", name, err)
		}
	}
}

// TestValidateErrors pins the exact error message of each well-formed-
// ness rule — the messages are part of the diagnostic surface.
func TestValidateErrors(t *testing.T) {
	x, y := query.Var("x"), query.Var("y")
	cases := []struct {
		name string
		n    *Node
		want string
	}{
		{"nil", nil, "plan: validate: nil node"},
		{
			"unbound head variable",
			&Node{Op: OpProject, Head: []query.Term{x}, Inputs: []*Node{access(0, "A", y)}},
			`plan: validate: head variable "x" not bound by any access`,
		},
		{
			// Fragment 0 exposes y; fragment 1 mentions y body-only.
			"join key missing from one side",
			&Node{Op: OpDistinct, Inputs: []*Node{
				{Op: OpProject, Head: []query.Term{x}, Inputs: []*Node{
					{Op: OpJoin, Inputs: []*Node{
						{Op: OpDistinct, Inputs: []*Node{
							{Op: OpProject, Head: []query.Term{x, y}, Inputs: []*Node{access(0, "R", x, y)}},
						}},
						{Op: OpDistinct, Inputs: []*Node{
							{Op: OpProject, Head: []query.Term{x}, Inputs: []*Node{access(1, "S", x, y)}},
						}},
					}},
				}},
			}},
			`plan: validate: join key "y" missing from fragment 1's head`,
		},
		{
			"mismatched union arm schemas",
			&Node{Op: OpDistinct, Inputs: []*Node{
				{Op: OpUnion, Inputs: []*Node{
					{Op: OpProject, Head: []query.Term{x}, Inputs: []*Node{access(0, "A", x)}},
					{Op: OpProject, Head: []query.Term{x, y}, Inputs: []*Node{access(0, "R", x, y)}},
				}},
			}},
			"plan: validate: union arm 1 has arity 2, arm 0 has arity 1",
		},
		{
			"zero-arm union",
			&Node{Op: OpDistinct, Inputs: []*Node{{Op: OpUnion}}},
			"plan: validate: union has no arms",
		},
		{
			"distinct above distinct",
			&Node{Op: OpDistinct, Inputs: []*Node{
				{Op: OpDistinct, Inputs: []*Node{
					{Op: OpProject, Head: []query.Term{x}, Inputs: []*Node{access(0, "A", x)}},
				}},
			}},
			"plan: validate: distinct directly above distinct",
		},
		{
			"single-input join",
			&Node{Op: OpJoin, Inputs: []*Node{access(0, "A", x)}},
			"plan: validate: join has 1 inputs, need at least 2",
		},
		{
			"empty access",
			&Node{Op: OpAccess},
			"plan: validate: access has no atoms",
		},
		{
			"mixed block arguments",
			&Node{Op: OpAccess, Atoms: []query.Atom{
				{Pred: "A", Args: []query.Term{x}},
				{Pred: "B", Args: []query.Term{y}},
			}},
			"plan: validate: access block alternatives bind different arguments: A(x) vs B(y)",
		},
		{
			"disconnected semijoin reducer",
			&Node{Op: OpProject, Head: []query.Term{x}, Inputs: []*Node{
				{Op: OpSemiJoin, Inputs: []*Node{access(0, "A", x), access(1, "B", y)}},
			}},
			"plan: validate: semijoin reducer 0 shares no variable with the core",
		},
		{
			"union arm not a projection",
			&Node{Op: OpDistinct, Inputs: []*Node{
				{Op: OpUnion, Inputs: []*Node{access(0, "A", x)}},
			}},
			"plan: validate: union arm 0 is access, want project",
		},
		{
			"exchange without input",
			&Node{Op: OpExchange, Key: "x"},
			"plan: validate: exchange must have exactly one input, has 0",
		},
		{
			"exchange without key",
			&Node{Op: OpExchange, Inputs: []*Node{
				{Op: OpProject, Head: []query.Term{x}, Inputs: []*Node{access(0, "A", x)}},
			}},
			"plan: validate: exchange has no repartition key",
		},
		{
			"exchange key not in input schema",
			&Node{Op: OpExchange, Key: "z", Inputs: []*Node{
				{Op: OpDistinct, Inputs: []*Node{
					{Op: OpProject, Head: []query.Term{x, y}, Inputs: []*Node{access(0, "R", x, y)}},
				}},
			}},
			`plan: validate: exchange key "z" not in its input's output schema`,
		},
	}
	for _, tc := range cases {
		err := Validate(tc.n)
		if err == nil {
			t.Errorf("%s: Validate = nil, want %q", tc.name, tc.want)
			continue
		}
		if err.Error() != tc.want {
			t.Errorf("%s: Validate = %q, want %q", tc.name, err.Error(), tc.want)
		}
	}
}

// TestValidateAcceptsExchangeWrappedCover: the shard backend's shuffle
// IR — a cover join with a fragment under an Exchange on the join key —
// is well-formed; the exchange is transparent to the cover-join check.
func TestValidateAcceptsExchangeWrappedCover(t *testing.T) {
	x, y := query.Var("x"), query.Var("y")
	frag0 := &Node{Op: OpDistinct, Inputs: []*Node{
		{Op: OpProject, Head: []query.Term{x, y}, Inputs: []*Node{access(0, "worksFor", x, y)}},
	}}
	frag1 := &Node{Op: OpDistinct, Inputs: []*Node{
		{Op: OpProject, Head: []query.Term{y}, Inputs: []*Node{access(0, "Company", y)}},
	}}
	n := &Node{Op: OpDistinct, Inputs: []*Node{
		{Op: OpProject, Head: []query.Term{x, y}, Inputs: []*Node{
			{Op: OpJoin, Inputs: []*Node{
				{Op: OpExchange, Key: "y", Inputs: []*Node{frag0}},
				frag1,
			}},
		}},
	}}
	if err := Validate(n); err != nil {
		t.Fatalf("Validate = %v", err)
	}
}

// TestValidateCatchesCorruptedRewrite plays the buggy-rewrite-rule
// scenario end to end at the IR level: a "rewrite" that clones the
// tree but drops a variable from a fragment's projected head produces
// a plan Validate rejects — the failure mode is a loud plan-time
// error, not a silent fragment cross product.
func TestValidateCatchesCorruptedRewrite(t *testing.T) {
	jucq := query.JUCQ{Name: "q", Head: []query.Term{query.Var("x")}, Subs: []query.UCQ{
		{Name: "f0", Disjuncts: []query.CQ{mustCQ(t, "f0(x, y) <- advisor(x, y)")}},
		{Name: "f1", Disjuncts: []query.CQ{mustCQ(t, "f1(y) <- Prof(y)")}},
	}}
	good := Rewrite(FromJUCQ(jucq))
	if err := Validate(good); err != nil {
		t.Fatalf("Validate(good) = %v", err)
	}
	bad := dropFragmentHeadVar(good, "y")
	if bad == good {
		t.Fatal("corrupting rewrite did not change the tree")
	}
	err := Validate(bad)
	if err == nil {
		t.Fatalf("Validate accepted the corrupted tree %s", bad)
	}
	want := `plan: validate: join key "y" missing from fragment 0's head`
	if err.Error() != want {
		t.Fatalf("Validate = %q, want %q", err.Error(), want)
	}
}

// dropFragmentHeadVar is the deliberately broken rewrite: copy-on-write
// like the real pass, but it truncates the first projected head that
// names v — the kind of bug Validate exists to catch.
func dropFragmentHeadVar(n *Node, v string) *Node {
	for i, t := range n.Head {
		if n.Op == OpProject && t.IsVar() && t.Name == v {
			m := *n
			m.Head = append(append([]query.Term(nil), n.Head[:i]...), n.Head[i+1:]...)
			return &m
		}
	}
	for i, in := range n.Inputs {
		if r := dropFragmentHeadVar(in, v); r != in {
			m := *n
			m.Inputs = append([]*Node(nil), n.Inputs...)
			m.Inputs[i] = r
			return &m
		}
	}
	return n
}
