// Package plan is the backend-neutral logical-plan IR: the single
// representation every strategy lowers its chosen reformulation into
// before any backend sees it. The classic logical/physical split —
// reformulation/cover/search produce a Node tree (Access, Join,
// SemiJoin, Union, Distinct, Project), and a Backend turns the tree
// into something executable (the native streaming-operator engine, or
// the SQL text shipped to an RDBMS). Cost estimators score the same
// tree, so GDL/RDBMS and GDL/ext differ only in which Estimator walks
// identical plans, and EXPLAIN derives from the tree plus per-operator
// counters.
//
// The IR is deliberately small: exactly what is needed to express the
// paper's dialects (CQ, UCQ, SCQ, USCQ and the JUCQ/JUSCQ cover
// shapes). Nodes are immutable after construction — lowered trees are
// cached and shared across concurrent executions.
package plan

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/query"
)

// Op enumerates the logical operators.
type Op int

// The logical operators of the IR.
const (
	// OpAccess reads one relation: a concept or role atom. Atoms with
	// more than one entry is a factorized SCQ block (the union of the
	// alternatives' matches, per input row).
	OpAccess Op = iota
	// OpJoin is the natural join of its inputs on shared variables.
	OpJoin
	// OpSemiJoin filters its first input by the remaining inputs (the
	// paper's semijoin reducers f‖g): existential atoms that only
	// restrict the core, never extend the output.
	OpSemiJoin
	// OpUnion concatenates its inputs (UCQ / USCQ disjuncts).
	OpUnion
	// OpDistinct removes duplicate rows.
	OpDistinct
	// OpProject maps a body onto a query head.
	OpProject
	// OpExchange hash-repartitions its single input's rows on Key so
	// the operator above runs partition-local in a sharded execution
	// (the shuffle of classic distributed query processing). On a
	// single-node backend it is the identity — rows pass through
	// unchanged — so Extract sees straight through it.
	OpExchange
)

// String names the operator.
func (o Op) String() string {
	switch o {
	case OpAccess:
		return "access"
	case OpJoin:
		return "join"
	case OpSemiJoin:
		return "semijoin"
	case OpUnion:
		return "union"
	case OpDistinct:
		return "distinct"
	case OpProject:
		return "project"
	case OpExchange:
		return "exchange"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Node is one logical operator. A Node tree is immutable once built;
// backends compile it into fresh physical state per execution.
type Node struct {
	Op Op

	// Atoms is the accessed relation(s) (OpAccess only). More than one
	// atom means a factorized SCQ block: the alternatives' matches are
	// unioned per input row.
	Atoms []query.Atom
	// Pos is the atom (or SCQ block) index in the originating query
	// body (OpAccess only); extraction reassembles bodies in Pos order
	// so lowering then extracting is the identity on the query.
	Pos int

	// Head is the projected query head (OpProject only).
	Head []query.Term
	// Factorized marks a projection over a factorized SCQ body
	// (OpProject only): its Access inputs are blocks, not single
	// atoms, and backends must keep the factorized evaluation.
	Factorized bool

	// Name carries the originating query's name (diagnostics).
	Name string

	// Key is the repartition variable (OpExchange only): rows route to
	// the shard owning ShardOf(row[Key]).
	Key string

	Inputs []*Node
}

// FromCQ lowers one conjunctive query: project over the join of its
// atom accesses, with purely-restricting atoms split into a semijoin
// reducer (the paper's f‖g decoration on safe covers).
func FromCQ(q query.CQ) *Node {
	core, reducers := splitReducers(q)
	accs := make(map[int]*Node, len(q.Atoms))
	for i, a := range q.Atoms {
		accs[i] = &Node{Op: OpAccess, Atoms: []query.Atom{a}, Pos: i}
	}
	var body *Node
	if len(core) == 1 {
		body = accs[core[0]]
	} else {
		in := make([]*Node, len(core))
		for i, p := range core {
			in[i] = accs[p]
		}
		body = &Node{Op: OpJoin, Inputs: in}
	}
	if len(reducers) > 0 {
		in := make([]*Node, 0, 1+len(reducers))
		in = append(in, body)
		for _, p := range reducers {
			in = append(in, accs[p])
		}
		body = &Node{Op: OpSemiJoin, Inputs: in}
	}
	return &Node{Op: OpProject, Head: q.Head, Name: q.Name, Inputs: []*Node{body}}
}

// splitReducers partitions the atom indexes of q into the join core
// and the semijoin reducers. An atom may reduce (rather than join)
// when it has the paper's g-shape: at least one private existential
// variable (occurring nowhere else in the body nor in the head), every
// other variable bound by the remaining core, and a shared variable
// keeping it connected. Such an atom only restricts core rows — it can
// never extend the output. The classification is presentation-only —
// extraction merges reducers back in Pos order — but it is what lets
// EXPLAIN show the f‖g shape of safe covers.
func splitReducers(q query.CQ) (core, reducers []int) {
	n := len(q.Atoms)
	head := q.HeadVarSet()
	occ := q.VarOccurrences()
	inCore := make([]bool, n)
	coreLeft := n
	for i := range inCore {
		inCore[i] = true
	}
	varsOf := func(i int) []string { return q.Atoms[i].Vars(nil) }
	coreVars := func(skip int) map[string]bool {
		m := map[string]bool{}
		for k := 0; k < n; k++ {
			if k == skip || !inCore[k] {
				continue
			}
			for _, v := range varsOf(k) {
				m[v] = true
			}
		}
		return m
	}
	for i := n - 1; i >= 0; i-- {
		if coreLeft <= 1 {
			break
		}
		cv := coreVars(i)
		shares := false
		private := false
		reducible := true
		for _, v := range varsOf(i) {
			if cv[v] {
				shares = true
				continue
			}
			// A variable not bound by the rest of the core must be
			// private to this atom and invisible in the head.
			if head[v] || occ[v] > countInAtom(q.Atoms[i], v) {
				reducible = false
				break
			}
			private = true
		}
		if shares && private && reducible {
			inCore[i] = false
			coreLeft--
		}
	}
	for i := 0; i < n; i++ {
		if inCore[i] {
			core = append(core, i)
		} else {
			reducers = append(reducers, i)
		}
	}
	return core, reducers
}

// countInAtom counts occurrences of variable v in atom a.
func countInAtom(a query.Atom, v string) int {
	c := 0
	for _, t := range a.Args {
		if t.IsVar() && t.Name == v {
			c++
		}
	}
	return c
}

// FromUCQ lowers a union of conjunctive queries: distinct over the
// union of the per-disjunct trees.
func FromUCQ(u query.UCQ) *Node {
	arms := make([]*Node, len(u.Disjuncts))
	for i, d := range u.Disjuncts {
		arms[i] = FromCQ(d)
	}
	return &Node{Op: OpDistinct, Name: u.Name, Inputs: []*Node{
		{Op: OpUnion, Name: u.Name, Inputs: arms},
	}}
}

// FromSCQ lowers a semi-conjunctive query: project over the join of
// its block accesses (each Access holds one block's alternatives).
func FromSCQ(s query.SCQ) *Node {
	var body *Node
	if len(s.Blocks) == 1 {
		body = &Node{Op: OpAccess, Atoms: s.Blocks[0], Pos: 0}
	} else {
		in := make([]*Node, len(s.Blocks))
		for i, b := range s.Blocks {
			in[i] = &Node{Op: OpAccess, Atoms: b, Pos: i}
		}
		body = &Node{Op: OpJoin, Inputs: in}
	}
	return &Node{Op: OpProject, Head: s.Head, Name: s.Name, Factorized: true, Inputs: []*Node{body}}
}

// FromUSCQ lowers a union of semi-conjunctive queries.
func FromUSCQ(u query.USCQ) *Node {
	arms := make([]*Node, len(u.Disjuncts))
	for i, s := range u.Disjuncts {
		arms[i] = FromSCQ(s)
	}
	return &Node{Op: OpDistinct, Name: u.Name, Inputs: []*Node{
		{Op: OpUnion, Name: u.Name, Inputs: arms},
	}}
}

// FromJUCQ lowers a cover reformulation: distinct over the projection
// of the natural join of the fragment UCQ trees. A single-fragment
// JUCQ collapses to its fragment's UCQ tree — there is nothing to
// join, and backends evaluate the union directly (no materialization
// step), exactly what executes.
func FromJUCQ(j query.JUCQ) *Node {
	if len(j.Subs) == 1 {
		return FromUCQ(j.Subs[0])
	}
	frags := make([]*Node, len(j.Subs))
	for i, sub := range j.Subs {
		frags[i] = FromUCQ(sub)
	}
	return &Node{Op: OpDistinct, Name: j.Name, Inputs: []*Node{
		{Op: OpProject, Head: j.Head, Name: j.Name, Inputs: []*Node{
			{Op: OpJoin, Inputs: frags},
		}},
	}}
}

// FromJUSCQ is the factorized analogue of FromJUCQ.
func FromJUSCQ(j query.JUSCQ) *Node {
	if len(j.Subs) == 1 {
		return FromUSCQ(j.Subs[0])
	}
	frags := make([]*Node, len(j.Subs))
	for i, sub := range j.Subs {
		frags[i] = FromUSCQ(sub)
	}
	return &Node{Op: OpDistinct, Name: j.Name, Inputs: []*Node{
		{Op: OpProject, Head: j.Head, Name: j.Name, Inputs: []*Node{
			{Op: OpJoin, Inputs: frags},
		}},
	}}
}

// Kind identifies which dialect a plan tree extracts back into.
type Kind int

// The extractable dialects.
const (
	KindUCQ Kind = iota
	KindUSCQ
	KindJUCQ
	KindJUSCQ
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindUCQ:
		return "ucq"
	case KindUSCQ:
		return "uscq"
	case KindJUCQ:
		return "jucq"
	case KindJUSCQ:
		return "juscq"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Lowered is a plan tree extracted back into dialect form — the shape
// backends plan and execute. Exactly the field selected by Kind is
// meaningful.
type Lowered struct {
	Kind  Kind
	UCQ   query.UCQ
	USCQ  query.USCQ
	JUCQ  query.JUCQ
	JUSCQ query.JUSCQ
}

// Extract recovers the dialect query from a plan tree produced by the
// From* lowerings (or any tree of the same shape). Bodies reassemble
// in Pos order, so Extract(FromX(q)) returns q unchanged. Malformed
// trees return an error rather than panicking — backends surface it
// from Compile.
func Extract(n *Node) (Lowered, error) {
	if n == nil {
		return Lowered{}, fmt.Errorf("plan: nil node")
	}
	if n.Op != OpDistinct || len(n.Inputs) != 1 {
		return Lowered{}, fmt.Errorf("plan: root must be distinct over one input, got %s/%d", n.Op, len(n.Inputs))
	}
	switch child := n.Inputs[0]; child.Op {
	case OpUnion:
		return extractUnion(n.Name, child)
	case OpProject:
		if isCoverShape(child) {
			return extractCover(child)
		}
		// Distinct directly over an arm projection: the collapsed
		// single-arm-union shape the Rewrite pass produces.
		return extractSingleArm(n.Name, child)
	default:
		return Lowered{}, fmt.Errorf("plan: distinct input must be union or project, got %s", child.Op)
	}
}

// isCoverShape distinguishes a cover projection (wrapping the join of
// fragment subtrees, each a Distinct root, possibly behind an Exchange)
// from a plain arm projection whose union was collapsed away — the only
// two Projects a Distinct root can wrap.
func isCoverShape(p *Node) bool {
	if len(p.Inputs) != 1 || p.Inputs[0].Op != OpJoin {
		return false
	}
	join := p.Inputs[0]
	if len(join.Inputs) == 0 {
		return false
	}
	for _, in := range join.Inputs {
		if unwrapExchange(in).Op != OpDistinct {
			return false
		}
	}
	return true
}

// unwrapExchange steps over an OpExchange wrapper: for extraction and
// cover-shape checks an exchange is the identity on its input.
func unwrapExchange(n *Node) *Node {
	if n != nil && n.Op == OpExchange && len(n.Inputs) == 1 {
		return n.Inputs[0]
	}
	return n
}

// extractSingleArm turns Distinct(Project(body)) into the
// one-disjunct UCQ or USCQ it stands for.
func extractSingleArm(name string, arm *Node) (Lowered, error) {
	if arm.Factorized {
		s, err := extractSCQ(arm)
		if err != nil {
			return Lowered{}, err
		}
		return Lowered{Kind: KindUSCQ, USCQ: query.USCQ{Name: name, Disjuncts: []query.SCQ{s}}}, nil
	}
	cq, err := extractCQ(arm)
	if err != nil {
		return Lowered{}, err
	}
	return Lowered{Kind: KindUCQ, UCQ: query.UCQ{Name: name, Disjuncts: []query.CQ{cq}}}, nil
}

// extractUnion turns Distinct(Union(arms)) into a UCQ or USCQ. Arms
// may be Distinct-wrapped projections (the push-Distinct rewrite):
// under the root distinct the per-arm dedup changes no answer, so
// extraction strips it and recovers the same query.
func extractUnion(name string, u *Node) (Lowered, error) {
	arms := make([]*Node, len(u.Inputs))
	factorized := false
	for i, arm := range u.Inputs {
		p := armProjection(arm)
		if p == nil {
			return Lowered{}, fmt.Errorf("plan: union arm must be a projection, got %s", arm.Op)
		}
		arms[i] = p
		if p.Factorized {
			factorized = true
		}
	}
	if factorized {
		out := query.USCQ{Name: name}
		for _, arm := range arms {
			s, err := extractSCQ(arm)
			if err != nil {
				return Lowered{}, err
			}
			out.Disjuncts = append(out.Disjuncts, s)
		}
		return Lowered{Kind: KindUSCQ, USCQ: out}, nil
	}
	out := query.UCQ{Name: name}
	for _, arm := range arms {
		cq, err := extractCQ(arm)
		if err != nil {
			return Lowered{}, err
		}
		out.Disjuncts = append(out.Disjuncts, cq)
	}
	return Lowered{Kind: KindUCQ, UCQ: out}, nil
}

// armProjection resolves a union arm to its projection, stepping over
// an optional Distinct wrapper. Returns nil if the arm has neither
// shape.
func armProjection(arm *Node) *Node {
	if arm.Op == OpDistinct && len(arm.Inputs) == 1 {
		arm = arm.Inputs[0]
	}
	if arm.Op != OpProject {
		return nil
	}
	return arm
}

// extractCover turns Distinct(Project(Join(frag...))) into a JUCQ or
// JUSCQ. Mixed fragment dialects promote to JUSCQ, plain CQ disjuncts
// becoming all-singleton-block SCQs (semantically identical).
func extractCover(p *Node) (Lowered, error) {
	if len(p.Inputs) != 1 || p.Inputs[0].Op != OpJoin {
		return Lowered{}, fmt.Errorf("plan: cover projection must wrap a join")
	}
	join := p.Inputs[0]
	if len(join.Inputs) == 0 {
		return Lowered{}, fmt.Errorf("plan: cover join has no fragments")
	}
	subs := make([]Lowered, len(join.Inputs))
	anySCQ := false
	for i, frag := range join.Inputs {
		lo, err := Extract(unwrapExchange(frag))
		if err != nil {
			return Lowered{}, fmt.Errorf("plan: fragment %d: %w", i, err)
		}
		if lo.Kind != KindUCQ && lo.Kind != KindUSCQ {
			return Lowered{}, fmt.Errorf("plan: fragment %d extracts to %s, want ucq or uscq", i, lo.Kind)
		}
		if lo.Kind == KindUSCQ {
			anySCQ = true
		}
		subs[i] = lo
	}
	if anySCQ {
		out := query.JUSCQ{Name: p.Name, Head: p.Head}
		for _, lo := range subs {
			if lo.Kind == KindUSCQ {
				out.Subs = append(out.Subs, lo.USCQ)
				continue
			}
			out.Subs = append(out.Subs, ucqToUSCQ(lo.UCQ))
		}
		return Lowered{Kind: KindJUSCQ, JUSCQ: out}, nil
	}
	out := query.JUCQ{Name: p.Name, Head: p.Head}
	for _, lo := range subs {
		out.Subs = append(out.Subs, lo.UCQ)
	}
	return Lowered{Kind: KindJUCQ, JUCQ: out}, nil
}

// ucqToUSCQ converts each disjunct to the SCQ with one singleton block
// per atom — the same query, in factorized clothing.
func ucqToUSCQ(u query.UCQ) query.USCQ {
	out := query.USCQ{Name: u.Name}
	for _, d := range u.Disjuncts {
		s := query.SCQ{Name: d.Name, Head: d.Head}
		for _, a := range d.Atoms {
			s.Blocks = append(s.Blocks, []query.Atom{a})
		}
		out.Disjuncts = append(out.Disjuncts, s)
	}
	return out
}

// AccessLeaves collects the OpAccess descendants of n, sorted by Pos.
func AccessLeaves(n *Node) []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(m *Node) {
		if m.Op == OpAccess {
			out = append(out, m)
			return
		}
		for _, in := range m.Inputs {
			walk(in)
		}
	}
	walk(n)
	sort.SliceStable(out, func(a, b int) bool { return out[a].Pos < out[b].Pos })
	return out
}

// extractCQ reassembles the CQ of a non-factorized arm projection.
func extractCQ(arm *Node) (query.CQ, error) {
	if len(arm.Inputs) != 1 {
		return query.CQ{}, fmt.Errorf("plan: arm projection must have one input")
	}
	q := query.CQ{Name: arm.Name, Head: arm.Head}
	for _, acc := range AccessLeaves(arm.Inputs[0]) {
		if len(acc.Atoms) != 1 {
			return query.CQ{}, fmt.Errorf("plan: non-factorized arm has a %d-atom access block", len(acc.Atoms))
		}
		q.Atoms = append(q.Atoms, acc.Atoms[0])
	}
	if len(q.Atoms) == 0 {
		return query.CQ{}, fmt.Errorf("plan: arm has no accesses")
	}
	return q, nil
}

// extractSCQ reassembles the SCQ of a factorized arm projection.
func extractSCQ(arm *Node) (query.SCQ, error) {
	if len(arm.Inputs) != 1 {
		return query.SCQ{}, fmt.Errorf("plan: arm projection must have one input")
	}
	s := query.SCQ{Name: arm.Name, Head: arm.Head}
	for _, acc := range AccessLeaves(arm.Inputs[0]) {
		if len(acc.Atoms) == 0 {
			return query.SCQ{}, fmt.Errorf("plan: empty access block")
		}
		s.Blocks = append(s.Blocks, acc.Atoms)
	}
	if len(s.Blocks) == 0 {
		return query.SCQ{}, fmt.Errorf("plan: arm has no accesses")
	}
	return s, nil
}

// String renders the tree compactly (single line, diagnostics).
func (n *Node) String() string {
	var b strings.Builder
	n.render(&b)
	return b.String()
}

func (n *Node) render(b *strings.Builder) {
	b.WriteString(n.Op.String())
	if d := n.Detail(); d != "" {
		b.WriteString("[" + d + "]")
	}
	if len(n.Inputs) > 0 {
		b.WriteByte('(')
		for i, in := range n.Inputs {
			if i > 0 {
				b.WriteString(", ")
			}
			in.render(b)
		}
		b.WriteByte(')')
	}
}

// Detail is the operator-specific annotation shown in String and
// EXPLAIN output.
func (n *Node) Detail() string {
	switch n.Op {
	case OpAccess:
		parts := make([]string, len(n.Atoms))
		for i, a := range n.Atoms {
			parts[i] = a.String()
		}
		return strings.Join(parts, " ∨ ")
	case OpProject:
		parts := make([]string, len(n.Head))
		for i, h := range n.Head {
			parts[i] = h.String()
		}
		d := "(" + strings.Join(parts, ", ") + ")"
		if n.Name != "" {
			d = n.Name + d
		}
		return d
	case OpUnion:
		return fmt.Sprintf("%d arms", len(n.Inputs))
	case OpSemiJoin:
		return fmt.Sprintf("%d reducers", len(n.Inputs)-1)
	case OpExchange:
		return "on " + n.Key
	}
	return ""
}
