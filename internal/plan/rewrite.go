package plan

// Backend-neutral rewrite rules over the logical IR — the first two
// rules of the ROADMAP's rule-engine item. Rewrites run before
// lowering (core.Answerer applies them uniformly, so every backend
// compiles the simplified tree) and preserve Extract semantics: the
// dialect query recovered from a rewritten tree is the same query.

// Rewrite applies the simplification rules bottom-up until none fires:
//
//   - single-arm Union collapse: Union(x) → x. A one-disjunct UCQ —
//     the common case for unreformulated queries and most cover
//     fragments — needs no union operator at all.
//   - nested Project merge: Project(h1, Project(h2, body)) →
//     Project(h1, body) when h1 resolves through h2 (every h1 variable
//     is named by an h2 variable; constants pass through).
//   - push Distinct below non-overlapping Union arms:
//     Distinct(Union(a1..ak)) → Distinct(Union(Distinct(a1)..)) when
//     the arms are pairwise disjoint (some head position carries
//     different constants in both arms, so no row can come from two
//     arms). Per-arm dedup then bounds the root distinct's working set
//     by the largest arm instead of the whole union, and each arm
//     stays independently streamable. The rule fires once — it skips
//     unions whose arms are already Distinct-wrapped.
//
// Nodes are immutable, so Rewrite returns a new tree where anything
// changed and the original node where nothing did.
func Rewrite(n *Node) *Node {
	if n == nil {
		return nil
	}
	changed := false
	inputs := n.Inputs
	for i, in := range n.Inputs {
		r := Rewrite(in)
		if r != in {
			if !changed {
				inputs = make([]*Node, len(n.Inputs))
				copy(inputs, n.Inputs)
				changed = true
			}
			inputs[i] = r
		}
	}
	if changed {
		m := *n
		m.Inputs = inputs
		n = &m
	}
	if n.Op == OpUnion && len(n.Inputs) == 1 {
		return n.Inputs[0]
	}
	if n.Op == OpProject && len(n.Inputs) == 1 && n.Inputs[0].Op == OpProject {
		if m, ok := mergeProjects(n, n.Inputs[0]); ok {
			return m
		}
	}
	if n.Op == OpDistinct && len(n.Inputs) == 1 && n.Inputs[0].Op == OpUnion {
		if u, ok := pushDistinct(n.Inputs[0]); ok {
			m := *n
			m.Inputs = []*Node{u}
			return &m
		}
	}
	return n
}

// pushDistinct wraps each arm of a non-overlapping union in its own
// Distinct. Applicable when the union has at least two arms, every arm
// is a plain projection (an already-wrapped arm means the rule fired —
// rewriting again must be the identity), and the arms are pairwise
// disjoint: some head position carries distinct constants in both, so
// no output row can originate from more than one arm and per-arm dedup
// loses nothing the root distinct would keep.
func pushDistinct(u *Node) (*Node, bool) {
	if len(u.Inputs) < 2 {
		return nil, false
	}
	for _, arm := range u.Inputs {
		if arm.Op != OpProject {
			return nil, false
		}
	}
	for i := 0; i < len(u.Inputs); i++ {
		for k := i + 1; k < len(u.Inputs); k++ {
			if !disjointArms(u.Inputs[i], u.Inputs[k]) {
				return nil, false
			}
		}
	}
	arms := make([]*Node, len(u.Inputs))
	for i, arm := range u.Inputs {
		arms[i] = &Node{Op: OpDistinct, Name: arm.Name, Inputs: []*Node{arm}}
	}
	m := *u
	m.Inputs = arms
	return &m, true
}

// disjointArms reports whether two union arms can never emit the same
// row: some head position is a constant in both and the constants
// differ. (Reformulated UCQs share one head across disjuncts, so the
// rule targets hand-built unions of constant-tagged arms.)
func disjointArms(a, b *Node) bool {
	n := len(a.Head)
	if len(b.Head) < n {
		n = len(b.Head)
	}
	for i := 0; i < n; i++ {
		ta, tb := a.Head[i], b.Head[i]
		if !ta.IsVar() && !tb.IsVar() && ta.Name != tb.Name {
			return true
		}
	}
	return false
}

// mergeProjects composes two stacked projections into one. The outer
// head addresses the inner's output columns by variable name, so the
// merge is sound exactly when every outer variable is the name of an
// inner head variable (then it denotes the same body column) and no
// inner head term is a constant (constant columns have no name the
// outer head could be rebound to).
func mergeProjects(outer, inner *Node) (*Node, bool) {
	if len(inner.Inputs) != 1 {
		return nil, false
	}
	innerVars := make(map[string]bool, len(inner.Head))
	for _, t := range inner.Head {
		if !t.IsVar() {
			return nil, false
		}
		innerVars[t.Name] = true
	}
	for _, t := range outer.Head {
		if t.IsVar() && !innerVars[t.Name] {
			return nil, false
		}
	}
	m := &Node{
		Op:         OpProject,
		Head:       outer.Head,
		Name:       outer.Name,
		Factorized: inner.Factorized,
		Inputs:     inner.Inputs,
	}
	if m.Name == "" {
		m.Name = inner.Name
	}
	return m, true
}

// NodeCount returns the number of nodes in the tree (rewrite
// diagnostics and tests).
func NodeCount(n *Node) int {
	if n == nil {
		return 0
	}
	c := 1
	for _, in := range n.Inputs {
		c += NodeCount(in)
	}
	return c
}
