package plan

// Backend-neutral rewrite rules over the logical IR — the first two
// rules of the ROADMAP's rule-engine item. Rewrites run before
// lowering (core.Answerer applies them uniformly, so every backend
// compiles the simplified tree) and preserve Extract semantics: the
// dialect query recovered from a rewritten tree is the same query.

// Rewrite applies the simplification rules bottom-up until none fires:
//
//   - single-arm Union collapse: Union(x) → x. A one-disjunct UCQ —
//     the common case for unreformulated queries and most cover
//     fragments — needs no union operator at all.
//   - nested Project merge: Project(h1, Project(h2, body)) →
//     Project(h1, body) when h1 resolves through h2 (every h1 variable
//     is named by an h2 variable; constants pass through).
//
// Nodes are immutable, so Rewrite returns a new tree where anything
// changed and the original node where nothing did.
func Rewrite(n *Node) *Node {
	if n == nil {
		return nil
	}
	changed := false
	inputs := n.Inputs
	for i, in := range n.Inputs {
		r := Rewrite(in)
		if r != in {
			if !changed {
				inputs = make([]*Node, len(n.Inputs))
				copy(inputs, n.Inputs)
				changed = true
			}
			inputs[i] = r
		}
	}
	if changed {
		m := *n
		m.Inputs = inputs
		n = &m
	}
	if n.Op == OpUnion && len(n.Inputs) == 1 {
		return n.Inputs[0]
	}
	if n.Op == OpProject && len(n.Inputs) == 1 && n.Inputs[0].Op == OpProject {
		if m, ok := mergeProjects(n, n.Inputs[0]); ok {
			return m
		}
	}
	return n
}

// mergeProjects composes two stacked projections into one. The outer
// head addresses the inner's output columns by variable name, so the
// merge is sound exactly when every outer variable is the name of an
// inner head variable (then it denotes the same body column) and no
// inner head term is a constant (constant columns have no name the
// outer head could be rebound to).
func mergeProjects(outer, inner *Node) (*Node, bool) {
	if len(inner.Inputs) != 1 {
		return nil, false
	}
	innerVars := make(map[string]bool, len(inner.Head))
	for _, t := range inner.Head {
		if !t.IsVar() {
			return nil, false
		}
		innerVars[t.Name] = true
	}
	for _, t := range outer.Head {
		if t.IsVar() && !innerVars[t.Name] {
			return nil, false
		}
	}
	m := &Node{
		Op:         OpProject,
		Head:       outer.Head,
		Name:       outer.Name,
		Factorized: inner.Factorized,
		Inputs:     inner.Inputs,
	}
	if m.Name == "" {
		m.Name = inner.Name
	}
	return m, true
}

// NodeCount returns the number of nodes in the tree (rewrite
// diagnostics and tests).
func NodeCount(n *Node) int {
	if n == nil {
		return 0
	}
	c := 1
	for _, in := range n.Inputs {
		c += NodeCount(in)
	}
	return c
}
