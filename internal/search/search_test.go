package search

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/cover"
	"repro/internal/dllite"
	"repro/internal/engine"
	"repro/internal/naive"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/reformulate"
)

const paperTBox = `
PhDStudent <= Researcher
exists worksWith <= Researcher
exists worksWith- <= Researcher
worksWith <= worksWith-
role: supervisedBy <= worksWith
exists supervisedBy <= PhDStudent
`

const runningTBox = `
Graduate <= exists supervisedBy
role: supervisedBy <= worksWith
`

func buildDB(t *testing.T, text string) *engine.DB {
	t.Helper()
	db := engine.NewDB(engine.LayoutSimple)
	db.LoadABox(dllite.MustParseABox(text))
	return db
}

const sampleData = `
PhDStudent(Damian)
Graduate(Damian)
PhDStudent(Alice)
worksWith(Alice, Bob)
supervisedBy(Carl, Bob)
worksWith(Ioana, Francois)
supervisedBy(Damian, Ioana)
Researcher(Ioana)
Researcher(Francois)
`

func TestGDLFindsValidCover(t *testing.T) {
	tb := dllite.MustParseTBox(runningTBox)
	q := query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(x, y), supervisedBy(z, y)")
	db := buildDB(t, sampleData)
	ref := reformulate.New(tb)
	est := &RDBMSEstimator{DB: db, Profile: engine.ProfilePostgres()}
	res := GDL(q, tb, ref, est, Options{})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Cover.InGq(tb) {
		t.Errorf("GDL cover not in Gq: %v", res.Cover)
	}
	if res.ExploredLq+res.ExploredGq == 0 {
		t.Error("no covers explored")
	}
	// The winning cover's answers must equal the UCQ reformulation's.
	u := ref.MustReformulate(q)
	ab := dllite.MustParseABox(sampleData)
	want := naive.EvalUCQ(u, ab)
	got := naive.EvalJUCQ(res.JUCQ, ab)
	if !naive.SameAnswers(got, want) {
		t.Errorf("GDL cover answers differ: %v vs %v", got.Sorted(), want.Sorted())
	}
}

func TestGDLNeverWorseThanCroot(t *testing.T) {
	tb := dllite.MustParseTBox(paperTBox)
	q := query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(y, x)")
	db := buildDB(t, sampleData)
	ref := reformulate.New(tb)
	for _, est := range []Estimator{
		&RDBMSEstimator{DB: db, Profile: engine.ProfilePostgres()},
		&RDBMSEstimator{DB: db, Profile: engine.ProfileDB2()},
		&ExtEstimator{Model: cost.NewModel(db)},
	} {
		res := GDL(q, tb, ref, est, Options{})
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		root := cover.RootCover(q, tb)
		j, err := root.ReformulateJUCQ(ref)
		if err != nil {
			t.Fatal(err)
		}
		rootCost := est.Estimate(plan.FromJUCQ(j))
		if res.Cost > rootCost {
			t.Errorf("%s: GDL cost %.1f worse than Croot %.1f", est.Name(), res.Cost, rootCost)
		}
	}
}

func TestEDLAtLeastAsGoodAsGDL(t *testing.T) {
	tb := dllite.MustParseTBox(runningTBox)
	q := query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(x, y), supervisedBy(z, y)")
	db := buildDB(t, sampleData)
	ref := reformulate.New(tb)
	est := &ExtEstimator{Model: cost.NewModel(db)}
	gdl := GDL(q, tb, ref, est, Options{})
	edl := EDL(q, tb, ref, est, Options{})
	if gdl.Err != nil || edl.Err != nil {
		t.Fatal(gdl.Err, edl.Err)
	}
	if edl.Cost > gdl.Cost {
		t.Errorf("EDL (%.2f) must be ≤ GDL (%.2f)", edl.Cost, gdl.Cost)
	}
	if !edl.Cover.InGq(tb) {
		t.Error("EDL winner must be in Gq")
	}
}

func TestEDLRespectsLimit(t *testing.T) {
	tb := dllite.MustParseTBox("Unrelated <= Thing")
	q := query.MustParseCQ("q(x) <- A(x), R(x, y), B(y), S(y, z)")
	db := buildDB(t, "A(a)\nR(a, b)\nB(b)\nS(b, c)")
	ref := reformulate.New(tb)
	est := &ExtEstimator{Model: cost.NewModel(db)}
	res := EDL(q, tb, ref, est, Options{MaxCovers: 5})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.ExploredLq+res.ExploredGq > 5 {
		t.Errorf("explored %d covers, limit 5", res.ExploredLq+res.ExploredGq)
	}
}

func TestTimeLimitedGDL(t *testing.T) {
	tb := dllite.MustParseTBox(paperTBox)
	q := query.MustParseCQ(
		"q(x) <- PhDStudent(x), worksWith(x, y), Researcher(y), worksWith(y, z), PhDStudent(z)")
	db := buildDB(t, sampleData)
	ref := reformulate.New(tb)
	est := &ExtEstimator{Model: cost.NewModel(db)}
	res := GDL(q, tb, ref, est, Options{TimeLimit: 20 * time.Millisecond})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Elapsed > 500*time.Millisecond {
		t.Errorf("time-limited GDL ran %v", res.Elapsed)
	}
	if res.Cover.Q.Name == "" && len(res.Cover.Frags) == 0 {
		t.Error("time-limited GDL must still return a cover")
	}
	// Section 6.4: the time-limited result should be close to the full
	// run. We check it is never better (it explores a subset).
	full := GDL(q, tb, ref, est, Options{})
	if res.Cost < full.Cost {
		t.Errorf("time-limited GDL cost %.2f beats full GDL %.2f", res.Cost, full.Cost)
	}
}

func TestGDLExploresFewCovers(t *testing.T) {
	// Table 6's point: GDL explores dramatically fewer covers than |Gq|.
	tb := dllite.MustParseTBox("Unrelated <= Thing")
	q := query.MustParseCQ("q(x) <- A(x), R(x, y), B(y), S(y, z), C(z)")
	db := buildDB(t, "A(a)\nR(a, b)\nB(b)\nS(b, c)\nC(c)")
	ref := reformulate.New(tb)
	est := &ExtEstimator{Model: cost.NewModel(db)}
	res := GDL(q, tb, ref, est, Options{})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	gq := cover.CountGeneralizedCovers(q, tb, 0)
	explored := res.ExploredLq + res.ExploredGq
	if explored >= gq {
		t.Errorf("GDL explored %d of %d covers; expected far fewer", explored, gq)
	}
}

func TestEstimatorNames(t *testing.T) {
	db := buildDB(t, "A(a)")
	r := &RDBMSEstimator{DB: db, Profile: engine.ProfilePostgres()}
	if !strings.Contains(r.Name(), "postgres") {
		t.Errorf("name = %s", r.Name())
	}
	e := &ExtEstimator{Model: cost.NewModel(db)}
	if e.Name() != "ext" {
		t.Errorf("name = %s", e.Name())
	}
}

func TestGDLMemoizesCovers(t *testing.T) {
	tb := dllite.MustParseTBox(runningTBox)
	q := query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(x, y), supervisedBy(z, y)")
	db := buildDB(t, sampleData)
	ref := reformulate.New(tb)
	calls := 0
	est := &countingEstimator{inner: &ExtEstimator{Model: cost.NewModel(db)}, calls: &calls}
	res := GDL(q, tb, ref, est, Options{})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if calls != res.ExploredLq+res.ExploredGq {
		t.Errorf("estimator called %d times for %d distinct covers", calls, res.ExploredLq+res.ExploredGq)
	}
}

type countingEstimator struct {
	inner Estimator
	calls *int
}

func (c *countingEstimator) Name() string { return c.inner.Name() }
func (c *countingEstimator) Estimate(n *plan.Node) float64 {
	*c.calls++
	return c.inner.Estimate(n)
}
