package search

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/cover"
	"repro/internal/dllite"
	"repro/internal/engine"
	"repro/internal/query"
	"repro/internal/reformulate"
)

// TestEDLIsExhaustiveOptimum: on a space small enough to enumerate
// fully, EDL's winner must equal the brute-force minimum over every
// cover of Gq.
func TestEDLIsExhaustiveOptimum(t *testing.T) {
	tb := dllite.MustParseTBox(runningTBox)
	q := query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(x, y), supervisedBy(z, y)")
	db := buildDB(t, sampleData)
	ref := reformulate.New(tb)
	est := &ExtEstimator{Model: cost.NewModel(db)}

	best := -1.0
	cover.EnumerateGeneralizedCovers(q, tb, 0, func(c cover.Cover) bool {
		j, err := c.ReformulateJUCQ(ref)
		if err != nil {
			t.Fatal(err)
		}
		if v := est.EstimateJUCQ(j); best < 0 || v < best {
			best = v
		}
		return true
	})
	res := EDL(q, tb, ref, est, Options{})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Cost != best {
		t.Errorf("EDL cost %.2f != brute-force optimum %.2f", res.Cost, best)
	}
}

// TestGDLDeterministic: identical inputs yield identical covers.
func TestGDLDeterministic(t *testing.T) {
	tb := dllite.MustParseTBox(paperTBox)
	q := query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(y, x)")
	db := buildDB(t, sampleData)
	est := &ExtEstimator{Model: cost.NewModel(db)}
	r1 := GDL(q, tb, reformulate.New(tb), est, Options{})
	r2 := GDL(q, tb, reformulate.New(tb), est, Options{})
	if r1.Err != nil || r2.Err != nil {
		t.Fatal(r1.Err, r2.Err)
	}
	if r1.Cover.Key() != r2.Cover.Key() {
		t.Errorf("GDL nondeterministic: %v vs %v", r1.Cover, r2.Cover)
	}
	if r1.Cost != r2.Cost {
		t.Errorf("costs differ: %v vs %v", r1.Cost, r2.Cost)
	}
}

// TestGDLSingleAtomQuery: degenerate input.
func TestGDLSingleAtomQuery(t *testing.T) {
	tb := dllite.MustParseTBox(paperTBox)
	q := query.MustParseCQ("q(x) <- PhDStudent(x)")
	db := buildDB(t, sampleData)
	est := &RDBMSEstimator{DB: db, Profile: engine.ProfilePostgres()}
	res := GDL(q, tb, reformulate.New(tb), est, Options{})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Cover.Frags) != 1 {
		t.Errorf("single-atom query must keep one fragment: %v", res.Cover)
	}
	if res.Moves != 0 {
		t.Errorf("no moves possible, got %d", res.Moves)
	}
}

// TestGDLWithBrokenReformulator: blowup errors surface as Result.Err.
func TestGDLWithBrokenReformulator(t *testing.T) {
	tb := dllite.MustParseTBox(paperTBox)
	q := query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(y, x)")
	db := buildDB(t, sampleData)
	ref := reformulate.New(tb)
	ref.MaxQueries = 1 // everything blows the budget
	est := &ExtEstimator{Model: cost.NewModel(db)}
	res := GDL(q, tb, ref, est, Options{})
	if res.Err == nil {
		t.Fatal("expected reformulation error to propagate")
	}
}
