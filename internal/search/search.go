// Package search implements the cost-based cover search algorithms of
// Section 5.3: EDL (exhaustive over Lq and Gq) and GDL (greedy,
// Algorithm 1), including the time-limited GDL variant of Section 6.4.
// Both are parameterized by a cost estimator — either the engine
// profiles' explain-style estimation ("RDBMS") or the external model of
// package cost ("ext").
package search

import (
	"sync"
	"time"

	"repro/internal/cost"
	"repro/internal/cover"
	"repro/internal/dllite"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/reformulate"
)

// Estimator scores a candidate logical plan. The search lowers every
// cover's JUCQ reformulation into the plan IR and asks the estimator
// to cost that tree — the very tree the execution backend compiles —
// so the cost GDL assigns to the winning cover is the backend's
// estimate of the plan that runs.
type Estimator interface {
	Name() string
	Estimate(n *plan.Node) float64
}

// RDBMSEstimator uses the engine's per-profile plan costing — the
// paper's "explain through JDBC" option. It scores plans exactly as
// the native execution backend does.
type RDBMSEstimator struct {
	DB      *engine.DB
	Profile *engine.Profile
}

// Name identifies the estimator in reports.
func (e *RDBMSEstimator) Name() string { return "RDBMS(" + e.Profile.Name + ")" }

// Estimate plans the tree under the profile and returns its cost.
func (e *RDBMSEstimator) Estimate(n *plan.Node) float64 {
	return engine.NewBackend(e.DB, e.Profile).Estimate(n).Cost
}

// EstimateJUCQ scores a JUCQ by lowering it (compatibility shim for
// callers that have not built a plan tree).
func (e *RDBMSEstimator) EstimateJUCQ(j query.JUCQ) float64 {
	return e.Estimate(plan.FromJUCQ(j))
}

// BackendEstimator scores plans through an execution backend's own
// Estimate — GDL over the sql or shard backend then optimizes the
// plan as that backend will run it (a sharded Estimate sums per-shard
// figures, so covers that align with the partitioning win).
type BackendEstimator struct {
	Backend plan.Backend
}

// Name identifies the estimator in reports and memo keys.
func (e *BackendEstimator) Name() string { return "backend(" + e.Backend.Name() + ")" }

// Estimate delegates to the backend.
func (e *BackendEstimator) Estimate(n *plan.Node) float64 {
	return e.Backend.Estimate(n).Cost
}

// ExtEstimator uses the external cost model (package cost).
type ExtEstimator struct {
	Model *cost.Model
}

// Name identifies the estimator in reports.
func (e *ExtEstimator) Name() string { return "ext" }

// Estimate applies the textbook formulas to the plan tree.
func (e *ExtEstimator) Estimate(n *plan.Node) float64 {
	return e.Model.Estimate(n).Cost
}

// EstimateJUCQ scores a JUCQ by lowering it (compatibility shim for
// callers that have not built a plan tree).
func (e *ExtEstimator) EstimateJUCQ(j query.JUCQ) float64 {
	return e.Estimate(plan.FromJUCQ(j))
}

// Result is the outcome of a cover search.
type Result struct {
	Cover   cover.Cover
	JUCQ    query.JUCQ
	Cost    float64
	Err     error
	Elapsed time.Duration

	// ExploredLq / ExploredGq count the distinct covers whose cost was
	// estimated, split into simple (∈ Lq) and generalized — the
	// quantities reported in Table 6.
	ExploredLq int
	ExploredGq int
	// Moves is the number of greedy moves applied (GDL only).
	Moves int
}

// Options tune the search.
type Options struct {
	// TimeLimit stops GDL after the given duration (0 = none): the
	// time-limited GDL of Section 6.4.
	TimeLimit time.Duration
	// MaxCovers caps EDL enumeration (the paper stops A6 at 20003
	// generalized covers). 0 = unlimited.
	MaxCovers int
	// Memo, when non-nil, carries cover cost estimates across searches:
	// repeated GDL/EDL runs over the same query (server traffic) skip
	// reformulating and re-costing covers already explored. Estimates
	// served from the memo do not count toward ExploredLq/ExploredGq
	// (nothing was estimated anew).
	Memo *Memo
}

// Memo is a concurrency-safe cross-search cache of cover cost
// estimates, keyed by (cover key, estimator name). It must be dropped
// when the TBox, the data, or the estimator's statistics change — the
// Answerer ties its lifetime to the answer cache's versioned keys.
type Memo struct {
	mu sync.Mutex
	m  map[memoKey]memoEntry
}

type memoKey struct {
	cover string
	est   string
}

type memoEntry struct {
	cost float64
	jucq query.JUCQ
}

// NewMemo returns an empty cross-search estimate cache.
func NewMemo() *Memo {
	return &Memo{m: make(map[memoKey]memoEntry)}
}

// Len returns the number of memoized estimates.
func (m *Memo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.m)
}

func (m *Memo) get(cover, est string) (memoEntry, bool) {
	m.mu.Lock()
	e, ok := m.m[memoKey{cover, est}]
	m.mu.Unlock()
	return e, ok
}

func (m *Memo) put(cover, est string, e memoEntry) {
	m.mu.Lock()
	m.m[memoKey{cover, est}] = e
	m.mu.Unlock()
}

// evaluator memoizes cover cost estimates within one search, and
// through Options.Memo across searches. Memo keys are scoped by the
// query's canonical form: Cover.Key only encodes the fragment bitmasks,
// so two queries with the same atom count produce colliding cover keys
// and must not share entries.
type evaluator struct {
	ref   *reformulate.Reformulator
	est   Estimator
	memo  *Memo
	scope string
	seen  map[string]float64
	jucqs map[string]query.JUCQ
	lq    int
	gq    int
	err   error
}

func newEvaluator(ref *reformulate.Reformulator, est Estimator, memo *Memo, q query.CQ) *evaluator {
	return &evaluator{ref: ref, est: est, memo: memo, scope: query.CanonicalKey(q) + ";",
		seen: make(map[string]float64), jucqs: make(map[string]query.JUCQ)}
}

// estimate returns the cover's cost, reformulating its fragments if the
// cover has not been seen before (in this search or in the shared memo).
func (ev *evaluator) estimate(c cover.Cover) (float64, bool) {
	key := ev.scope + c.Key()
	if v, ok := ev.seen[key]; ok {
		return v, true
	}
	if ev.memo != nil {
		if e, ok := ev.memo.get(key, ev.est.Name()); ok {
			ev.seen[key] = e.cost
			ev.jucqs[key] = e.jucq
			return e.cost, true
		}
	}
	j, err := c.ReformulateJUCQ(ev.ref)
	if err != nil {
		ev.err = err
		return 0, false
	}
	// Score the rewritten tree — the exact shape core.Answerer hands
	// the execution backend after its IR simplification pass.
	v := ev.est.Estimate(plan.Rewrite(plan.FromJUCQ(j)))
	ev.seen[key] = v
	ev.jucqs[key] = j
	if ev.memo != nil {
		ev.memo.put(key, ev.est.Name(), memoEntry{cost: v, jucq: j})
	}
	if c.IsGeneralized() {
		ev.gq++
	} else {
		ev.lq++
	}
	return v, true
}

// GDL runs the greedy cover search of Algorithm 1: starting from Croot,
// repeatedly apply the best cost-improving move among unioning two
// fragments and enlarging a fragment with a connected atom; stop when
// no move improves the current cover (or the time limit strikes).
func GDL(q query.CQ, t *dllite.TBox, ref *reformulate.Reformulator, est Estimator, opts Options) Result {
	start := time.Now()
	deadline := time.Time{}
	if opts.TimeLimit > 0 {
		deadline = start.Add(opts.TimeLimit)
	}
	ev := newEvaluator(ref, est, opts.Memo, q)
	cur := cover.RootCover(q, t)
	curCost, ok := ev.estimate(cur)
	if !ok {
		return Result{Err: ev.err, Elapsed: time.Since(start)}
	}
	moves := 0
	for {
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		bestCover := cover.Cover{}
		bestCost := curCost
		found := false
		consider := func(c cover.Cover) bool {
			v, ok := ev.estimate(c)
			if !ok {
				return false
			}
			// Algorithm 1 keeps a move when it is at least as good as
			// the current cover and better than the best move so far.
			if (!found && v <= curCost) || (found && v < bestCost) {
				bestCover = c
				bestCost = v
				found = true
			}
			return true
		}
		// Union moves.
		for i := 0; i < len(cur.Frags); i++ {
			for j := i + 1; j < len(cur.Frags); j++ {
				if !consider(cur.UnionFragments(i, j)) {
					return Result{Err: ev.err, Elapsed: time.Since(start)}
				}
				if !deadline.IsZero() && time.Now().After(deadline) {
					goto done
				}
			}
		}
		// Enlarge moves: add a connected atom to a fragment's F-part.
		for i := 0; i < len(cur.Frags); i++ {
			for a := 0; a < len(q.Atoms); a++ {
				c, applies := cur.EnlargeFragment(i, a)
				if !applies {
					continue
				}
				// The atom must share a variable with the fragment
				// (Algorithm 1, line 5) and keep the cover valid.
				if !fragmentConnectedTo(cur, i, a) || c.Validate() != nil {
					continue
				}
				if !consider(c) {
					return Result{Err: ev.err, Elapsed: time.Since(start)}
				}
				if !deadline.IsZero() && time.Now().After(deadline) {
					goto done
				}
			}
		}
		if !found {
			// Algorithm 1 stops when no candidate move has estimated
			// cost ≤ the current cover's. Equal-cost moves are taken;
			// termination is guaranteed because unions strictly reduce
			// the fragment count and enlargements strictly grow the
			// fragments.
			break
		}
		cur = bestCover
		curCost = bestCost
		moves++
	}
done:
	key := ev.scope + cur.Key()
	return Result{
		Cover:      cur,
		JUCQ:       ev.jucqs[key],
		Cost:       curCost,
		Elapsed:    time.Since(start),
		ExploredLq: ev.lq,
		ExploredGq: ev.gq,
		Moves:      moves,
	}
}

// fragmentConnectedTo reports whether atom a shares a variable with
// fragment i's F-part.
func fragmentConnectedTo(c cover.Cover, i, a int) bool {
	f := c.Frags[i].F
	for k := 0; k < len(c.Q.Atoms); k++ {
		if f&(1<<uint(k)) != 0 && c.Q.Atoms[k].SharesVar(c.Q.Atoms[a]) {
			return true
		}
	}
	return false
}

// EDL exhaustively searches Lq and Gq (Section 5.3), up to
// opts.MaxCovers covers, returning the cheapest cover found. As the
// paper observes (Table 6), this is only feasible for small queries.
func EDL(q query.CQ, t *dllite.TBox, ref *reformulate.Reformulator, est Estimator, opts Options) Result {
	start := time.Now()
	ev := newEvaluator(ref, est, opts.Memo, q)
	var best cover.Cover
	bestCost := -1.0
	cover.EnumerateGeneralizedCovers(q, t, opts.MaxCovers, func(c cover.Cover) bool {
		v, ok := ev.estimate(c)
		if !ok {
			return false
		}
		if bestCost < 0 || v < bestCost {
			best = c
			bestCost = v
		}
		return true
	})
	if ev.err != nil {
		return Result{Err: ev.err, Elapsed: time.Since(start)}
	}
	key := ev.scope + best.Key()
	return Result{
		Cover:      best,
		JUCQ:       ev.jucqs[key],
		Cost:       bestCost,
		Elapsed:    time.Since(start),
		ExploredLq: ev.lq,
		ExploredGq: ev.gq,
	}
}
