// Package dllite implements DL-LiteR knowledge bases as defined in
// Section 2 of the paper: TBoxes of concept/role inclusions (with and
// without negation, covering all 22 constraint forms of Table 3 and its
// negated counterparts), ABoxes of concept/role assertions, predicate
// dependencies dep(N) (Definition 4), saturation-based assertion
// entailment and T-consistency checking.
package dllite

import "fmt"

// Role is a role name or its inverse: R or R⁻.
type Role struct {
	Name string
	Inv  bool
}

// R builds the direct role with the given name.
func R(name string) Role { return Role{Name: name} }

// RInv builds the inverse of the role with the given name.
func RInv(name string) Role { return Role{Name: name, Inv: true} }

// Inverse returns the inverse role: (R)⁻ = R⁻ and (R⁻)⁻ = R.
func (r Role) Inverse() Role { return Role{Name: r.Name, Inv: !r.Inv} }

func (r Role) String() string {
	if r.Inv {
		return r.Name + "⁻"
	}
	return r.Name
}

// Concept is a basic concept B of DL-LiteR: either an atomic concept A,
// or an unqualified existential restriction ∃R over a role or inverse
// role (the projection on the first attribute of R).
type Concept struct {
	// Name is the atomic concept name when Exists is false.
	Name string
	// Role is the restricted role when Exists is true.
	Role Role
	// Exists discriminates ∃R from atomic concepts.
	Exists bool
}

// C builds the atomic concept with the given name.
func C(name string) Concept { return Concept{Name: name} }

// Some builds the existential concept ∃r.
func Some(r Role) Concept { return Concept{Role: r, Exists: true} }

// PredName returns the underlying concept or role name — the cr(·)
// operation of Definition 4.
func (c Concept) PredName() string {
	if c.Exists {
		return c.Role.Name
	}
	return c.Name
}

func (c Concept) String() string {
	if c.Exists {
		return "∃" + c.Role.String()
	}
	return c.Name
}

// Assertion is an ABox fact: a concept assertion A(a) or a role
// assertion R(a,b).
type Assertion struct {
	Pred string
	S, O string // O is empty for concept assertions
}

// ConceptAssertion builds A(ind).
func ConceptAssertion(concept, ind string) Assertion {
	return Assertion{Pred: concept, S: ind}
}

// RoleAssertion builds R(s, o).
func RoleAssertion(role, s, o string) Assertion {
	return Assertion{Pred: role, S: s, O: o}
}

// IsRole reports whether the assertion is a role assertion.
func (a Assertion) IsRole() bool { return a.O != "" }

func (a Assertion) String() string {
	if a.IsRole() {
		return fmt.Sprintf("%s(%s, %s)", a.Pred, a.S, a.O)
	}
	return fmt.Sprintf("%s(%s)", a.Pred, a.S)
}
