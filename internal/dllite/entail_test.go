package dllite

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEntailsConceptInclusionChain(t *testing.T) {
	tb := MustParseTBox(`
PhDStudent <= GraduateStudent
GraduateStudent <= Student
Student <= Person
exists advisedBy <= Student
`)
	cases := []struct {
		l, r Concept
		want bool
	}{
		{C("PhDStudent"), C("Person"), true},
		{C("PhDStudent"), C("Student"), true},
		{C("Person"), C("PhDStudent"), false},
		{Some(R("advisedBy")), C("Person"), true},
		{Some(RInv("advisedBy")), C("Person"), false},
		{C("Student"), C("Student"), true},
	}
	for _, c := range cases {
		if got := tb.EntailsConceptInclusion(c.l, c.r); got != c.want {
			t.Errorf("%v ⊑ %v: got %v, want %v", c.l, c.r, got, c.want)
		}
	}
}

func TestEntailsRoleInclusionOrientation(t *testing.T) {
	tb := MustParseTBox(`
role: advisedBy <= supervisedBy
role: supervisedBy <= worksWith
worksWith <= worksWith-
hasAlumnus <= degreeFrom-
`)
	cases := []struct {
		l, r Role
		want bool
	}{
		{R("advisedBy"), R("worksWith"), true},
		{R("advisedBy"), RInv("worksWith"), true}, // via symmetry
		{RInv("advisedBy"), RInv("supervisedBy"), true},
		{R("worksWith"), R("advisedBy"), false},
		{R("hasAlumnus"), RInv("degreeFrom"), true},
		{RInv("hasAlumnus"), R("degreeFrom"), true},
		{R("hasAlumnus"), R("degreeFrom"), false},
	}
	for _, c := range cases {
		if got := tb.EntailsRoleInclusion(c.l, c.r); got != c.want {
			t.Errorf("%v ⊑ %v: got %v, want %v", c.l, c.r, got, c.want)
		}
	}
}

func TestEntailsRoleInclusionSymmetricClosure(t *testing.T) {
	// worksWith ⊑ worksWith⁻ also entails worksWith⁻ ⊑ worksWith.
	tb := MustParseTBox("worksWith <= worksWith-")
	if !tb.EntailsRoleInclusion(RInv("worksWith"), R("worksWith")) {
		t.Error("symmetry must close under inversion")
	}
}

func TestSubsumersIncludesSelf(t *testing.T) {
	tb := MustParseTBox("A <= B\nB <= exists P")
	subs := tb.Subsumers(C("A"))
	want := map[string]bool{"A": false, "B": false, "∃P": false}
	for _, s := range subs {
		if _, ok := want[s.String()]; ok {
			want[s.String()] = true
		}
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("subsumer %s missing from %v", k, subs)
		}
	}
}

// TestPropEntailmentConsistentWithDep: if b2's predicate is not in
// dep-relation reachable structure... we check a weaker, sound
// property: whenever EntailsConceptInclusion(b1, b2) holds for atomic
// b1, b2, every model-level consequence shows up in saturation — i.e.
// asserting b1(a) makes b2(a) entailed.
func TestPropEntailmentMatchesSaturation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		concepts := []string{"A", "B", "C", "D"}
		roles := []string{"P", "Q"}
		var axioms []Axiom
		n := 1 + r.Intn(7)
		randConcept := func() Concept {
			switch r.Intn(3) {
			case 0:
				return C(concepts[r.Intn(len(concepts))])
			case 1:
				return Some(R(roles[r.Intn(len(roles))]))
			default:
				return Some(RInv(roles[r.Intn(len(roles))]))
			}
		}
		for i := 0; i < n; i++ {
			if r.Intn(4) == 0 {
				lr, rr := R(roles[r.Intn(len(roles))]), R(roles[r.Intn(len(roles))])
				if r.Intn(2) == 0 {
					rr = rr.Inverse()
				}
				axioms = append(axioms, RIncl(lr, rr))
			} else {
				axioms = append(axioms, CIncl(randConcept(), randConcept()))
			}
		}
		tb := MustTBox(axioms)
		for _, c1 := range concepts {
			for _, c2 := range concepts {
				if !tb.IsConcept(c1) || !tb.IsConcept(c2) {
					continue
				}
				if tb.EntailsConceptInclusion(C(c1), C(c2)) {
					ab := NewABox()
					ab.Add(ConceptAssertion(c1, "a"))
					kb := KB{T: tb, A: ab}
					if !kb.EntailsConcept(C(c2), "a") {
						t.Logf("seed %d: %s ⊑ %s entailed but %s(a) not derived", seed, c1, c2, c2)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestLUBMStyleEntailment exercises entailment through existentials:
// asserting PhDStudent(a) with PhDStudent ⊑ ∃advisedBy and
// ∃advisedBy ⊑ Student makes Student(a) entailed.
func TestLUBMStyleEntailment(t *testing.T) {
	tb := MustParseTBox(`
PhDStudent <= exists advisedBy
exists advisedBy <= Student
`)
	if !tb.EntailsConceptInclusion(C("PhDStudent"), C("Student")) {
		t.Error("PhDStudent ⊑ ∃advisedBy ⊑ Student")
	}
	ab := NewABox()
	ab.Add(ConceptAssertion("PhDStudent", "a"))
	kb := KB{T: tb, A: ab}
	if !kb.EntailsConcept(C("Student"), "a") {
		t.Error("Student(a) must be entailed through the anonymous advisor")
	}
}
