package dllite

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// paperTBox is Table 2 of the paper (axioms T1–T7).
const paperTBox = `
# Table 2
PhDStudent <= Researcher
exists worksWith <= Researcher
exists worksWith- <= Researcher
worksWith <= worksWith-
role: supervisedBy <= worksWith
exists supervisedBy <= PhDStudent
PhDStudent <= not exists supervisedBy-
`

// paperABox is Example 1 (A1–A3).
const paperABox = `
worksWith(Ioana, Francois)
supervisedBy(Damian, Ioana)
supervisedBy(Damian, Francois)
`

func paperKB(t *testing.T) KB {
	t.Helper()
	tb, err := ParseTBoxString(paperTBox)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumConstraints() != 7 {
		t.Fatalf("want 7 axioms, got %d", tb.NumConstraints())
	}
	ab, err := ParseABox(strings.NewReader(paperABox))
	if err != nil {
		t.Fatal(err)
	}
	return KB{T: tb, A: ab}
}

func TestRoleInverse(t *testing.T) {
	r := R("worksWith")
	if r.Inverse() != RInv("worksWith") || r.Inverse().Inverse() != r {
		t.Error("inverse is an involution")
	}
	if R("supervisedBy").String() != "supervisedBy" || RInv("supervisedBy").String() != "supervisedBy⁻" {
		t.Error("role rendering")
	}
}

func TestConceptPredName(t *testing.T) {
	if C("A").PredName() != "A" {
		t.Error("atomic PredName")
	}
	if Some(RInv("R")).PredName() != "R" {
		t.Error("cr(∃R⁻) = R (Definition 4)")
	}
	if Some(R("R")).String() != "∃R" || Some(RInv("R")).String() != "∃R⁻" {
		t.Error("concept rendering")
	}
}

func TestParseAxiomForms(t *testing.T) {
	cases := map[string]Axiom{
		"A <= B":                    CIncl(C("A"), C("B")),
		"A <= exists R":             CIncl(C("A"), Some(R("R"))),
		"A <= exists R-":            CIncl(C("A"), Some(RInv("R"))),
		"exists R <= A":             CIncl(Some(R("R")), C("A")),
		"exists R- <= A":            CIncl(Some(RInv("R")), C("A")),
		"exists R <= exists S":      CIncl(Some(R("R")), Some(R("S"))),
		"exists R- <= exists S-":    CIncl(Some(RInv("R")), Some(RInv("S"))),
		"role: P <= Q":              RIncl(R("P"), R("Q")),
		"P <= Q-":                   RIncl(R("P"), RInv("Q")),
		"P- <= Q":                   RIncl(RInv("P"), R("Q")),
		"A <= not B":                CDisj(C("A"), C("B")),
		"A <= not exists R-":        CDisj(C("A"), Some(RInv("R"))),
		"role: P <= not Q":          RDisj(R("P"), R("Q")),
		"exists R <= not exists S-": CDisj(Some(R("R")), Some(RInv("S"))),
	}
	for in, want := range cases {
		got, err := ParseAxiom(in)
		if err != nil {
			t.Errorf("ParseAxiom(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseAxiom(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestParseAxiomErrors(t *testing.T) {
	for _, bad := range []string{
		"A B",              // no arrow
		"not A <= B",       // negation on lhs
		"A <= ",            // empty rhs
		" <= B",            // empty lhs
		"exists  <= B",     // empty role
		"role: <= Q",       // empty role lhs
		"A <= exists R- -", // junk
	} {
		if _, err := ParseAxiom(bad); err == nil {
			t.Errorf("ParseAxiom(%q) should fail", bad)
		}
	}
}

func TestFormatAxiomRoundTrip(t *testing.T) {
	axioms := []Axiom{
		CIncl(C("A"), C("B")),
		CIncl(Some(RInv("R")), Some(R("S"))),
		CDisj(C("A"), Some(RInv("R"))),
		RIncl(R("P"), RInv("Q")),
		RDisj(RInv("P"), R("Q")),
	}
	for _, ax := range axioms {
		back, err := ParseAxiom(FormatAxiom(ax))
		if err != nil {
			t.Fatalf("round trip %v: %v", ax, err)
		}
		if back != ax {
			t.Errorf("round trip %v -> %q -> %v", ax, FormatAxiom(ax), back)
		}
	}
}

func TestTBoxVocabulary(t *testing.T) {
	kb := paperKB(t)
	if got := kb.T.ConceptNames(); !reflect.DeepEqual(got, []string{"PhDStudent", "Researcher"}) {
		t.Errorf("concepts = %v", got)
	}
	if got := kb.T.RoleNames(); !reflect.DeepEqual(got, []string{"supervisedBy", "worksWith"}) {
		t.Errorf("roles = %v", got)
	}
}

func TestTBoxConceptRoleClash(t *testing.T) {
	_, err := ParseTBoxString("A <= B\nrole: A <= Q")
	if err == nil {
		t.Fatal("name used as concept and role must be rejected")
	}
}

func TestEntailmentsExample2(t *testing.T) {
	kb := paperKB(t)
	// K ⊨ worksWith(Francois, Ioana) via (T4)+(A1)
	if !kb.EntailsRole(R("worksWith"), "Francois", "Ioana") {
		t.Error("worksWith(Francois, Ioana) should be entailed")
	}
	// K ⊨ PhDStudent(Damian) via (A2)+(T6)
	if !kb.EntailsConcept(C("PhDStudent"), "Damian") {
		t.Error("PhDStudent(Damian) should be entailed")
	}
	// K ⊨ worksWith(Francois, Damian) via (A3)+(T5)+(T4)
	if !kb.EntailsRole(R("worksWith"), "Francois", "Damian") {
		t.Error("worksWith(Francois, Damian) should be entailed")
	}
	// K ⊨ Researcher(Ioana) via (A1)+(T2)
	if !kb.EntailsConcept(C("Researcher"), "Ioana") {
		t.Error("Researcher(Ioana) should be entailed")
	}
	// Negative control: no one is entailed to be supervised by Damian.
	if kb.EntailsRole(R("supervisedBy"), "Ioana", "Damian") {
		t.Error("supervisedBy(Ioana, Damian) must not be entailed")
	}
	// Inverse-role entailment query.
	if !kb.EntailsRole(RInv("supervisedBy"), "Ioana", "Damian") {
		t.Error("supervisedBy⁻(Ioana, Damian) holds since supervisedBy(Damian, Ioana)")
	}
	// ∃-membership: Damian ∈ ∃supervisedBy.
	if !kb.EntailsConcept(Some(R("supervisedBy")), "Damian") {
		t.Error("Damian ∈ ∃supervisedBy")
	}
}

func TestConsistencyExample1(t *testing.T) {
	kb := paperKB(t)
	if err := kb.CheckConsistency(); err != nil {
		t.Fatalf("paper KB is T-consistent, got %v", err)
	}
}

func TestInconsistencyDetection(t *testing.T) {
	kb := paperKB(t)
	// Damian is a PhDStudent; making him a supervisor violates (T7).
	kb.A.Add(RoleAssertion("supervisedBy", "Alice", "Damian"))
	err := kb.CheckConsistency()
	if err == nil {
		t.Fatal("expected inconsistency")
	}
	inc, ok := err.(*Inconsistency)
	if !ok {
		t.Fatalf("want *Inconsistency, got %T", err)
	}
	if inc.Axiom.Kind != ConceptDisjointness {
		t.Errorf("violated axiom = %v", inc.Axiom)
	}
}

func TestRoleDisjointnessDetection(t *testing.T) {
	tb := MustParseTBox("role: teaches <= not takes")
	ab := NewABox()
	ab.Add(RoleAssertion("teaches", "a", "b"))
	ab.Add(RoleAssertion("takes", "a", "b"))
	if err := (KB{T: tb, A: ab}).CheckConsistency(); err == nil {
		t.Fatal("role disjointness violation must be detected")
	}
	// Different pair: consistent.
	ab2 := NewABox()
	ab2.Add(RoleAssertion("teaches", "a", "b"))
	ab2.Add(RoleAssertion("takes", "b", "a"))
	if err := (KB{T: tb, A: ab2}).CheckConsistency(); err != nil {
		t.Fatalf("swapped pair does not violate: %v", err)
	}
}

func TestEntailedDisjointnessExample2(t *testing.T) {
	// Example 2 bullet 1: ∃supervisedBy ⊑ ¬∃supervisedBy⁻ is entailed
	// by (T6)+(T7). We verify operationally: any ABox with x both
	// supervised and supervising is inconsistent.
	tb, err := ParseTBoxString(paperTBox)
	if err != nil {
		t.Fatal(err)
	}
	ab := NewABox()
	ab.Add(RoleAssertion("supervisedBy", "x", "y"))
	ab.Add(RoleAssertion("supervisedBy", "z", "x"))
	if err := (KB{T: tb, A: ab}).CheckConsistency(); err == nil {
		t.Fatal("x supervised and supervising must be inconsistent under T6+T7")
	}
}

// Example 7/8 fixture.
const runningTBox = `
Graduate <= exists supervisedBy
role: supervisedBy <= worksWith
`

func TestDepExample8(t *testing.T) {
	tb := MustParseTBox(runningTBox)
	tb.DeclareConcept("PhDStudent")
	got := tb.Dep("worksWith")
	want := map[string]bool{"worksWith": true, "supervisedBy": true, "Graduate": true}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("dep(worksWith) = %v, want %v", got, want)
	}
	got = tb.Dep("supervisedBy")
	want = map[string]bool{"supervisedBy": true, "Graduate": true}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("dep(supervisedBy) = %v, want %v", got, want)
	}
	if d := tb.Dep("PhDStudent"); len(d) != 1 || !d["PhDStudent"] {
		t.Errorf("dep(PhDStudent) = %v", d)
	}
	if d := tb.Dep("Graduate"); len(d) != 1 || !d["Graduate"] {
		t.Errorf("dep(Graduate) = %v", d)
	}
}

func TestDepShared(t *testing.T) {
	tb := MustParseTBox(runningTBox)
	tb.DeclareConcept("PhDStudent")
	if !tb.DepShared("worksWith", "supervisedBy") {
		t.Error("worksWith and supervisedBy share supervisedBy")
	}
	if tb.DepShared("PhDStudent", "worksWith") {
		t.Error("PhDStudent shares nothing with worksWith")
	}
	if !tb.DepShared("Graduate", "Graduate") {
		t.Error("every predicate shares with itself")
	}
}

func TestDepUnknownName(t *testing.T) {
	tb := MustParseTBox(runningTBox)
	if d := tb.Dep("Unknown"); len(d) != 1 || !d["Unknown"] {
		t.Errorf("dep of unknown name = %v", d)
	}
}

func TestABoxDedup(t *testing.T) {
	ab := NewABox()
	if !ab.Add(ConceptAssertion("A", "a")) {
		t.Error("first add must succeed")
	}
	if ab.Add(ConceptAssertion("A", "a")) {
		t.Error("duplicate add must report false")
	}
	if ab.Size() != 1 {
		t.Errorf("size = %d", ab.Size())
	}
}

func TestABoxIndividuals(t *testing.T) {
	ab := MustParseABox("R(b, a)\nA(c)")
	if got := ab.Individuals(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("Individuals = %v", got)
	}
}

func TestParseAssertionErrors(t *testing.T) {
	for _, bad := range []string{"A", "A()", "R(a,b,c)", "(a)", "R(,b)"} {
		if _, err := ParseAssertion(bad); err == nil {
			t.Errorf("ParseAssertion(%q) should fail", bad)
		}
	}
}

func TestNegationFreeKBAlwaysConsistent(t *testing.T) {
	// Property (Section 2.1): in the absence of negation any KB is
	// consistent. Random positive TBoxes + random ABoxes.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		concepts := []string{"A", "B", "C", "D"}
		roles := []string{"P", "Q"}
		var axioms []Axiom
		n := 1 + r.Intn(8)
		for i := 0; i < n; i++ {
			randConcept := func() Concept {
				switch r.Intn(3) {
				case 0:
					return C(concepts[r.Intn(len(concepts))])
				case 1:
					return Some(R(roles[r.Intn(len(roles))]))
				default:
					return Some(RInv(roles[r.Intn(len(roles))]))
				}
			}
			if r.Intn(4) == 0 {
				lr, rr := R(roles[r.Intn(len(roles))]), R(roles[r.Intn(len(roles))])
				if r.Intn(2) == 0 {
					rr = rr.Inverse()
				}
				axioms = append(axioms, RIncl(lr, rr))
			} else {
				axioms = append(axioms, CIncl(randConcept(), randConcept()))
			}
		}
		tb, err := NewTBox(axioms)
		if err != nil {
			return true // concept/role clash in random vocab; skip
		}
		ab := NewABox()
		inds := []string{"a", "b", "c"}
		for i := 0; i < 5; i++ {
			if r.Intn(2) == 0 {
				ab.Add(ConceptAssertion(concepts[r.Intn(len(concepts))], inds[r.Intn(len(inds))]))
			} else {
				ab.Add(RoleAssertion(roles[r.Intn(len(roles))], inds[r.Intn(len(inds))], inds[r.Intn(len(inds))]))
			}
		}
		return (KB{T: tb, A: ab}).CheckConsistency() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropDepContainsSelfAndMonotone(t *testing.T) {
	// dep(N) always contains N, and adding an axiom Y ⊑ X can only grow
	// dependency sets.
	tb1 := MustParseTBox("A <= B")
	tb2 := MustParseTBox("A <= B\nC <= A")
	for _, n := range []string{"A", "B", "C"} {
		d1, d2 := tb1.Dep(n), tb2.Dep(n)
		if !d1[n] || !d2[n] {
			t.Errorf("dep(%s) must contain itself", n)
		}
		for k := range d1 {
			if !d2[k] {
				t.Errorf("dep not monotone for %s: lost %s", n, k)
			}
		}
	}
	if !tb2.Dep("B")["C"] {
		t.Error("B depends on C transitively")
	}
}

func TestAxiomStrings(t *testing.T) {
	if CIncl(C("A"), Some(RInv("R"))).String() != "A ⊑ ∃R⁻" {
		t.Error("concept inclusion rendering")
	}
	if CDisj(C("A"), C("B")).String() != "A ⊑ ¬B" {
		t.Error("disjointness rendering")
	}
	if RIncl(R("P"), RInv("Q")).String() != "P ⊑ Q⁻" {
		t.Error("role inclusion rendering")
	}
	if RDisj(R("P"), R("Q")).String() != "P ⊑ ¬Q" {
		t.Error("role disjointness rendering")
	}
}
