package dllite

import (
	"fmt"
	"sort"
	"sync"
)

// AxiomKind distinguishes the four DL-LiteR constraint families.
type AxiomKind int

const (
	// ConceptInclusion is B1 ⊑ B2.
	ConceptInclusion AxiomKind = iota
	// ConceptDisjointness is B1 ⊑ ¬B2.
	ConceptDisjointness
	// RoleInclusion is R1 ⊑ R2.
	RoleInclusion
	// RoleDisjointness is R1 ⊑ ¬R2.
	RoleDisjointness
)

// Axiom is a DL-LiteR TBox constraint. Concept axioms use LC/RC; role
// axioms use LR/RR. Negation may only occur on the right-hand side
// (Section 2.1); it is encoded by the Kind.
type Axiom struct {
	Kind   AxiomKind
	LC, RC Concept
	LR, RR Role
}

// CIncl builds the positive concept inclusion l ⊑ r.
func CIncl(l, r Concept) Axiom { return Axiom{Kind: ConceptInclusion, LC: l, RC: r} }

// CDisj builds the negative concept inclusion l ⊑ ¬r.
func CDisj(l, r Concept) Axiom { return Axiom{Kind: ConceptDisjointness, LC: l, RC: r} }

// RIncl builds the positive role inclusion l ⊑ r.
func RIncl(l, r Role) Axiom { return Axiom{Kind: RoleInclusion, LR: l, RR: r} }

// RDisj builds the negative role inclusion l ⊑ ¬r.
func RDisj(l, r Role) Axiom { return Axiom{Kind: RoleDisjointness, LR: l, RR: r} }

// IsNegative reports whether the axiom's right-hand side is negated.
func (a Axiom) IsNegative() bool {
	return a.Kind == ConceptDisjointness || a.Kind == RoleDisjointness
}

func (a Axiom) String() string {
	switch a.Kind {
	case ConceptInclusion:
		return fmt.Sprintf("%s ⊑ %s", a.LC, a.RC)
	case ConceptDisjointness:
		return fmt.Sprintf("%s ⊑ ¬%s", a.LC, a.RC)
	case RoleInclusion:
		return fmt.Sprintf("%s ⊑ %s", a.LR, a.RR)
	default:
		return fmt.Sprintf("%s ⊑ ¬%s", a.LR, a.RR)
	}
}

// TBox is a set of DL-LiteR axioms over declared concept and role names.
// Lookup indexes used by the reformulation algorithms are built lazily
// and cached; a TBox must not be mutated after first use.
type TBox struct {
	Axioms []Axiom

	concepts map[string]bool
	roles    map[string]bool

	depOnce sync.Once
	dep     map[string]map[string]bool // Definition 4, computed on demand
}

// NewTBox builds a TBox from axioms, inferring the vocabulary and
// validating that no name is used both as a concept and as a role.
func NewTBox(axioms []Axiom) (*TBox, error) {
	t := &TBox{
		Axioms:   axioms,
		concepts: make(map[string]bool),
		roles:    make(map[string]bool),
	}
	addC := func(c Concept) {
		if c.Exists {
			t.roles[c.Role.Name] = true
		} else {
			t.concepts[c.Name] = true
		}
	}
	for _, ax := range axioms {
		switch ax.Kind {
		case ConceptInclusion, ConceptDisjointness:
			addC(ax.LC)
			addC(ax.RC)
		case RoleInclusion, RoleDisjointness:
			t.roles[ax.LR.Name] = true
			t.roles[ax.RR.Name] = true
		}
	}
	for name := range t.concepts {
		if t.roles[name] {
			return nil, fmt.Errorf("dllite: %q used both as concept and as role", name)
		}
	}
	return t, nil
}

// MustTBox is NewTBox panicking on error, for fixtures.
func MustTBox(axioms []Axiom) *TBox {
	t, err := NewTBox(axioms)
	if err != nil {
		panic(err)
	}
	return t
}

// DeclareConcept registers a concept name not mentioned in any axiom.
func (t *TBox) DeclareConcept(name string) { t.concepts[name] = true }

// DeclareRole registers a role name not mentioned in any axiom.
func (t *TBox) DeclareRole(name string) { t.roles[name] = true }

// IsConcept reports whether name is a declared concept.
func (t *TBox) IsConcept(name string) bool { return t.concepts[name] }

// IsRole reports whether name is a declared role.
func (t *TBox) IsRole(name string) bool { return t.roles[name] }

// ConceptNames returns the sorted declared concept names.
func (t *TBox) ConceptNames() []string { return sortedKeys(t.concepts) }

// RoleNames returns the sorted declared role names.
func (t *TBox) RoleNames() []string { return sortedKeys(t.roles) }

// NumConstraints returns the number of axioms.
func (t *TBox) NumConstraints() int { return len(t.Axioms) }

// PositiveAxioms returns the negation-free axioms (used by reformulation).
func (t *TBox) PositiveAxioms() []Axiom {
	out := make([]Axiom, 0, len(t.Axioms))
	for _, ax := range t.Axioms {
		if !ax.IsNegative() {
			out = append(out, ax)
		}
	}
	return out
}

// NegativeAxioms returns the disjointness axioms (used by consistency).
func (t *TBox) NegativeAxioms() []Axiom {
	var out []Axiom
	for _, ax := range t.Axioms {
		if ax.IsNegative() {
			out = append(out, ax)
		}
	}
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Dep returns dep(name) per Definition 4: the set of concept and role
// names on which name depends w.r.t. the TBox, i.e. the fixpoint of
// following positive axioms Y ⊑ X backward from X-sides whose cr(X) is
// already in the set. The result always contains name itself. Safe for
// concurrent use: the lazy dep computation runs exactly once.
func (t *TBox) Dep(name string) map[string]bool {
	t.depOnce.Do(t.computeDeps)
	if d, ok := t.dep[name]; ok {
		return d
	}
	// Name without any axiom: depends only on itself.
	return map[string]bool{name: true}
}

// DepShared reports whether two predicate names depend on a common
// concept or role name (the Definition 5 safety test).
func (t *TBox) DepShared(a, b string) bool {
	da, db := t.Dep(a), t.Dep(b)
	if len(db) < len(da) {
		da, db = db, da
	}
	for n := range da {
		if db[n] {
			return true
		}
	}
	return false
}

// computeDeps materializes dep(·) for every declared name by a BFS over
// the reversed positive-inclusion graph: an edge cr(X) → cr(Y) exists
// for each positive axiom Y ⊑ X.
func (t *TBox) computeDeps() {
	edges := make(map[string][]string) // cr(RHS) -> cr(LHS)
	addEdge := func(rhs, lhs string) {
		edges[rhs] = append(edges[rhs], lhs)
	}
	for _, ax := range t.PositiveAxioms() {
		switch ax.Kind {
		case ConceptInclusion:
			addEdge(ax.RC.PredName(), ax.LC.PredName())
		case RoleInclusion:
			addEdge(ax.RR.Name, ax.LR.Name)
		}
	}
	t.dep = make(map[string]map[string]bool)
	var names []string
	names = append(names, t.ConceptNames()...)
	names = append(names, t.RoleNames()...)
	for _, n := range names {
		set := map[string]bool{n: true}
		queue := []string{n}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nxt := range edges[cur] {
				if !set[nxt] {
					set[nxt] = true
					queue = append(queue, nxt)
				}
			}
		}
		t.dep[n] = set
	}
}
