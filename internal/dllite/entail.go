package dllite

// TBox-level entailment of positive inclusions, by reachability in the
// inclusion graph: B1 ⊑ B2 is entailed iff B2 is reachable from B1
// following concept inclusions and the projections of role inclusions;
// R1 ⊑ R2 iff R2 (with orientation) is reachable from R1 through role
// inclusions. This is the classical polynomial TBox reasoning for
// DL-LiteR (subsumption without negation); negative entailment lives in
// closure.go.

// EntailsRoleInclusion reports T ⊨ r1 ⊑ r2.
func (t *TBox) EntailsRoleInclusion(r1, r2 Role) bool {
	if r1 == r2 {
		return true
	}
	// BFS over role inclusions, tracking orientation.
	seen := map[Role]bool{r1: true}
	queue := []Role{r1}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == r2 {
			return true
		}
		for _, ax := range t.PositiveAxioms() {
			if ax.Kind != RoleInclusion {
				continue
			}
			// cur matches LR directly or inverted.
			var next Role
			switch {
			case ax.LR == cur:
				next = ax.RR
			case ax.LR.Inverse() == cur:
				next = ax.RR.Inverse()
			default:
				continue
			}
			if !seen[next] {
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	return false
}

// EntailsConceptInclusion reports T ⊨ b1 ⊑ b2 for basic concepts,
// following concept inclusions plus the ∃-projections of role
// inclusions (r ⊑ s entails ∃r ⊑ ∃s and ∃r⁻ ⊑ ∃s⁻).
func (t *TBox) EntailsConceptInclusion(b1, b2 Concept) bool {
	if b1 == b2 {
		return true
	}
	seen := map[Concept]bool{b1: true}
	queue := []Concept{b1}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == b2 {
			return true
		}
		push := func(c Concept) {
			if !seen[c] {
				seen[c] = true
				queue = append(queue, c)
			}
		}
		for _, ax := range t.PositiveAxioms() {
			switch ax.Kind {
			case ConceptInclusion:
				if ax.LC == cur {
					push(ax.RC)
				}
			case RoleInclusion:
				if cur.Exists {
					switch {
					case ax.LR == cur.Role:
						push(Some(ax.RR))
					case ax.LR.Inverse() == cur.Role:
						push(Some(ax.RR.Inverse()))
					}
				}
			}
		}
	}
	return false
}

// Subsumers returns every basic concept b with T ⊨ c ⊑ b, including c
// itself (useful for classification-style output).
func (t *TBox) Subsumers(c Concept) []Concept {
	seen := map[Concept]bool{c: true}
	queue := []Concept{c}
	var out []Concept
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		out = append(out, cur)
		push := func(n Concept) {
			if !seen[n] {
				seen[n] = true
				queue = append(queue, n)
			}
		}
		for _, ax := range t.PositiveAxioms() {
			switch ax.Kind {
			case ConceptInclusion:
				if ax.LC == cur {
					push(ax.RC)
				}
			case RoleInclusion:
				if cur.Exists {
					switch {
					case ax.LR == cur.Role:
						push(Some(ax.RR))
					case ax.LR.Inverse() == cur.Role:
						push(Some(ax.RR.Inverse()))
					}
				}
			}
		}
	}
	return out
}
