package dllite

import (
	"fmt"
	"sort"
)

// ABox is a finite set of assertions. It preserves insertion order and
// deduplicates exact repeats.
type ABox struct {
	Assertions []Assertion
	seen       map[Assertion]bool
}

// NewABox builds an empty ABox.
func NewABox() *ABox {
	return &ABox{seen: make(map[Assertion]bool)}
}

// Add inserts an assertion if not already present and reports whether it
// was new.
func (a *ABox) Add(as Assertion) bool {
	if a.seen == nil {
		a.seen = make(map[Assertion]bool)
		for _, x := range a.Assertions {
			a.seen[x] = true
		}
	}
	if a.seen[as] {
		return false
	}
	a.seen[as] = true
	a.Assertions = append(a.Assertions, as)
	return true
}

// Size returns the number of stored facts.
func (a *ABox) Size() int { return len(a.Assertions) }

// Individuals returns the sorted set of individuals mentioned in the ABox.
func (a *ABox) Individuals() []string {
	set := make(map[string]bool)
	for _, as := range a.Assertions {
		set[as.S] = true
		if as.IsRole() {
			set[as.O] = true
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// KB is a knowledge base 〈T, A〉.
type KB struct {
	T *TBox
	A *ABox
}

// saturation holds the closure of a KB over named individuals:
// for every individual, the basic concepts it provably belongs to, and
// all entailed role assertions among named individuals. In DL-LiteR the
// only role assertions entailed over named individuals come from the
// role-inclusion closure of explicit role assertions, and concept
// memberships follow by closing concept inclusions over explicit
// concept assertions plus ∃R memberships; this is sound and complete
// for instance checking of basic concepts and roles (Calvanese et al.,
// JAR 2007, Lemma on canonical models restricted to named individuals).
type saturation struct {
	concepts map[string]map[Concept]bool // individual -> basic concepts
	roles    map[string]map[[2]string]bool
}

// saturate computes the closure. Runtime is O(|A| · |T|) per fixpoint
// round; intended for small-to-medium ABoxes (tests, examples, the
// consistency checker). Large-scale query answering goes through
// reformulation + the engine instead.
func (kb KB) saturate() *saturation {
	s := &saturation{
		concepts: make(map[string]map[Concept]bool),
		roles:    make(map[string]map[[2]string]bool),
	}
	addRole := func(role string, a, b string) bool {
		m := s.roles[role]
		if m == nil {
			m = make(map[[2]string]bool)
			s.roles[role] = m
		}
		k := [2]string{a, b}
		if m[k] {
			return false
		}
		m[k] = true
		return true
	}
	addConcept := func(ind string, c Concept) bool {
		m := s.concepts[ind]
		if m == nil {
			m = make(map[Concept]bool)
			s.concepts[ind] = m
		}
		if m[c] {
			return false
		}
		m[c] = true
		return true
	}
	for _, as := range kb.A.Assertions {
		if as.IsRole() {
			addRole(as.Pred, as.S, as.O)
		} else {
			addConcept(as.S, C(as.Pred))
		}
	}
	positives := kb.T.PositiveAxioms()
	// Concept inclusions to close memberships under: the TBox's own
	// plus the projections implied by role inclusions (LR ⊑ RR gives
	// ∃LR ⊑ ∃RR and ∃LR⁻ ⊑ ∃RR⁻). The projections matter when the
	// witness is anonymous — e.g. B ⊑ ∃Q and Q ⊑ P entail ∃P(b) for
	// every B(b) even though no P fact exists.
	type ci struct{ l, r Concept }
	var cis []ci
	for _, ax := range positives {
		switch ax.Kind {
		case ConceptInclusion:
			cis = append(cis, ci{ax.LC, ax.RC})
		case RoleInclusion:
			cis = append(cis, ci{Some(ax.LR), Some(ax.RR)})
			cis = append(cis, ci{Some(ax.LR.Inverse()), Some(ax.RR.Inverse())})
		}
	}
	for changed := true; changed; {
		changed = false
		// Role inclusions: R1 ⊑ R2 over current role facts.
		for _, ax := range positives {
			if ax.Kind != RoleInclusion {
				continue
			}
			for pair := range clonePairs(s.roles[ax.LR.Name]) {
				a, b := pair[0], pair[1]
				if ax.LR.Inv {
					a, b = b, a
				}
				// (a,b) is a fact of the abstract role ax.LR read
				// forward; now write it into ax.RR.
				x, y := a, b
				if ax.RR.Inv {
					x, y = y, x
				}
				if addRole(ax.RR.Name, x, y) {
					changed = true
				}
			}
		}
		// ∃R memberships from role facts.
		for role, pairs := range s.roles {
			for pair := range clonePairs(pairs) {
				if addConcept(pair[0], Some(R(role))) {
					changed = true
				}
				if addConcept(pair[1], Some(RInv(role))) {
					changed = true
				}
			}
		}
		// Concept inclusions B1 ⊑ B2 (including role-inclusion
		// projections). When B2 = ∃R the axiom creates an unnamed
		// witness, which never affects memberships of named individuals
		// beyond ∃R itself, so recording ∃R(ind) is exactly right.
		for _, c := range cis {
			for ind, set := range s.concepts {
				if set[c.l] {
					if addConcept(ind, c.r) {
						changed = true
					}
				}
			}
		}
	}
	return s
}

func clonePairs(m map[[2]string]bool) map[[2]string]bool {
	// Iterating while inserting into the same map is illegal; snapshot.
	out := make(map[[2]string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// EntailsConcept reports K ⊨ B(ind) for a basic concept B.
func (kb KB) EntailsConcept(b Concept, ind string) bool {
	return kb.saturate().concepts[ind][b]
}

// EntailsRole reports K ⊨ r(a, b) for a (possibly inverse) role r.
func (kb KB) EntailsRole(r Role, a, b string) bool {
	if r.Inv {
		a, b = b, a
	}
	return kb.saturate().roles[r.Name][[2]string{a, b}]
}

// Inconsistency describes a violated disjointness constraint.
type Inconsistency struct {
	Axiom   Axiom
	Witness []string // one or two individuals violating the axiom
}

func (v Inconsistency) Error() string {
	return fmt.Sprintf("KB inconsistent: %s violated by %v", v.Axiom, v.Witness)
}

// CheckConsistency verifies T-consistency of the ABox (Section 2.1):
// the KB is consistent iff no explicit or entailed fact contradicts a
// negative constraint. It returns nil when consistent, or an
// *Inconsistency describing the first violation found.
func (kb KB) CheckConsistency() error {
	s := kb.saturate()
	for _, ax := range kb.T.NegativeAxioms() {
		switch ax.Kind {
		case ConceptDisjointness:
			for ind, set := range s.concepts {
				if set[ax.LC] && set[ax.RC] {
					return &Inconsistency{Axiom: ax, Witness: []string{ind}}
				}
			}
		case RoleDisjointness:
			for pair := range s.roles[ax.LR.Name] {
				a, b := pair[0], pair[1]
				if ax.LR.Inv {
					a, b = b, a
				}
				x, y := a, b
				if ax.RR.Inv {
					x, y = y, x
				}
				if s.roles[ax.RR.Name][[2]string{x, y}] {
					return &Inconsistency{Axiom: ax, Witness: []string{pair[0], pair[1]}}
				}
			}
		}
	}
	return nil
}
