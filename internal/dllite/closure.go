package dllite

import "sort"

// This file implements the closure of negative inclusions cln(T)
// (Calvanese et al., JAR 2007, §5; the paper's Example 2 derives
// ∃supervisedBy ⊑ ¬∃supervisedBy⁻ from (T6)+(T7) this way): the set of
// disjointness constraints entailed by the TBox. The classical result
// is that a DL-LiteR KB is inconsistent iff some constraint of cln(T)
// is violated by the *explicit* ABox alone — the positive constraints
// are compiled into the closure, so consistency checking needs no
// saturation and no reformulation.

type conceptPair struct{ a, b string } // rendered concepts, a ≤ b
type rolePair struct{ a, b string }    // rendered roles, canonical orientation

func normConceptPair(x, y Concept) conceptPair {
	xs, ys := x.String(), y.String()
	if xs > ys {
		xs, ys = ys, xs
	}
	return conceptPair{xs, ys}
}

// normRolePair canonicalizes a role disjointness R ⊑ ¬S over its four
// equivalent orientations {R⊥S, S⊥R, R⁻⊥S⁻, S⁻⊥R⁻}.
func normRolePair(x, y Role) rolePair {
	cands := [][2]string{
		{x.String(), y.String()},
		{y.String(), x.String()},
		{x.Inverse().String(), y.Inverse().String()},
		{y.Inverse().String(), x.Inverse().String()},
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i][0] != cands[j][0] {
			return cands[i][0] < cands[j][0]
		}
		return cands[i][1] < cands[j][1]
	})
	return rolePair{cands[0][0], cands[0][1]}
}

// niClosure computes cln(T) as explicit axiom lists.
type niClosure struct {
	concepts map[conceptPair][2]Concept
	roles    map[rolePair][2]Role
}

// CloseNI computes the closure of the TBox's negative inclusions under
// its positive inclusions:
//
//	B1 ⊑ B2,  B2 ⊑ ¬B3 (or B3 ⊑ ¬B2)  ⟹  B1 ⊑ ¬B3
//	R1 ⊑ R2,  ∃R2 ⊑ ¬B  ⟹  ∃R1 ⊑ ¬B      (and the ⁻ variant)
//	R1 ⊑ R2,  R2 ⊑ ¬R3 (or R3 ⊑ ¬R2)    ⟹  R1 ⊑ ¬R3
//
// The result lists every entailed disjointness, including the asserted
// ones, with concept pairs normalized (B1 ⊑ ¬B2 ≡ B2 ⊑ ¬B1).
func (t *TBox) CloseNI() []Axiom {
	cl := &niClosure{
		concepts: make(map[conceptPair][2]Concept),
		roles:    make(map[rolePair][2]Role),
	}
	var queueC [][2]Concept
	var queueR [][2]Role
	addC := func(x, y Concept) {
		k := normConceptPair(x, y)
		if _, ok := cl.concepts[k]; !ok {
			cl.concepts[k] = [2]Concept{x, y}
			queueC = append(queueC, [2]Concept{x, y})
		}
	}
	addR := func(x, y Role) {
		k := normRolePair(x, y)
		if _, ok := cl.roles[k]; !ok {
			cl.roles[k] = [2]Role{x, y}
			queueR = append(queueR, [2]Role{x, y})
		}
	}
	for _, ax := range t.NegativeAxioms() {
		switch ax.Kind {
		case ConceptDisjointness:
			addC(ax.LC, ax.RC)
		case RoleDisjointness:
			addR(ax.LR, ax.RR)
		}
	}
	positives := t.PositiveAxioms()
	// Pre-expand role inclusions into the concept inclusions they imply
	// on their projections: LR ⊑ RR gives ∃LR ⊑ ∃RR and ∃LR⁻ ⊑ ∃RR⁻.
	type ci struct{ l, r Concept }
	var cis []ci
	for _, ax := range positives {
		switch ax.Kind {
		case ConceptInclusion:
			cis = append(cis, ci{ax.LC, ax.RC})
		case RoleInclusion:
			cis = append(cis, ci{Some(ax.LR), Some(ax.RR)})
			cis = append(cis, ci{Some(ax.LR.Inverse()), Some(ax.RR.Inverse())})
		}
	}
	for len(queueC) > 0 || len(queueR) > 0 {
		if len(queueC) > 0 {
			pair := queueC[0]
			queueC = queueC[1:]
			// B1 ⊑ B2 with B2 ∈ {pair}: derive B1 disjoint from the
			// other element.
			for _, c := range cis {
				if c.r == pair[0] {
					addC(c.l, pair[1])
				}
				if c.r == pair[1] {
					addC(c.l, pair[0])
				}
			}
			continue
		}
		pair := queueR[0]
		queueR = queueR[1:]
		for _, ax := range positives {
			if ax.Kind != RoleInclusion {
				continue
			}
			// LR ⊑ RR: RR (or RR⁻) appearing in the pair propagates to
			// LR (resp. LR⁻).
			for side := 0; side < 2; side++ {
				other := pair[1-side]
				if ax.RR == pair[side] {
					addR(ax.LR, other)
				}
				if ax.RR.Inverse() == pair[side] {
					addR(ax.LR.Inverse(), other)
				}
			}
		}
	}
	out := make([]Axiom, 0, len(cl.concepts)+len(cl.roles))
	for _, p := range cl.concepts {
		out = append(out, CDisj(p[0], p[1]))
	}
	for _, p := range cl.roles {
		out = append(out, RDisj(p[0], p[1]))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// EntailsConceptDisjointness reports T ⊨ b1 ⊑ ¬b2.
func (t *TBox) EntailsConceptDisjointness(b1, b2 Concept) bool {
	k := normConceptPair(b1, b2)
	for _, ax := range t.CloseNI() {
		if ax.Kind == ConceptDisjointness && normConceptPair(ax.LC, ax.RC) == k {
			return true
		}
	}
	return false
}

// EntailsRoleDisjointness reports T ⊨ r1 ⊑ ¬r2.
func (t *TBox) EntailsRoleDisjointness(r1, r2 Role) bool {
	k := normRolePair(r1, r2)
	for _, ax := range t.CloseNI() {
		if ax.Kind == RoleDisjointness && normRolePair(ax.LR, ax.RR) == k {
			return true
		}
	}
	return false
}

// CheckConsistencyViaClosure decides T-consistency by evaluating every
// constraint of cln(T) directly against the explicit ABox — no
// saturation. It must agree with KB.CheckConsistency (property-tested).
func (kb KB) CheckConsistencyViaClosure() error {
	// Index explicit memberships of basic concepts.
	inConcept := func(c Concept, ind string) bool {
		for _, as := range kb.A.Assertions {
			if c.Exists {
				if !as.IsRole() || as.Pred != c.Role.Name {
					continue
				}
				if !c.Role.Inv && as.S == ind {
					return true
				}
				if c.Role.Inv && as.O == ind {
					return true
				}
			} else if !as.IsRole() && as.Pred == c.Name && as.S == ind {
				return true
			}
		}
		return false
	}
	individuals := kb.A.Individuals()
	for _, ax := range kb.T.CloseNI() {
		switch ax.Kind {
		case ConceptDisjointness:
			for _, ind := range individuals {
				if inConcept(ax.LC, ind) && inConcept(ax.RC, ind) {
					return &Inconsistency{Axiom: ax, Witness: []string{ind}}
				}
			}
		case RoleDisjointness:
			for _, as := range kb.A.Assertions {
				if !as.IsRole() || as.Pred != ax.LR.Name {
					continue
				}
				a, b := as.S, as.O
				if ax.LR.Inv {
					a, b = b, a
				}
				x, y := a, b
				if ax.RR.Inv {
					x, y = y, x
				}
				for _, as2 := range kb.A.Assertions {
					if as2.IsRole() && as2.Pred == ax.RR.Name && as2.S == x && as2.O == y {
						return &Inconsistency{Axiom: ax, Witness: []string{as.S, as.O}}
					}
				}
			}
		}
	}
	return nil
}
