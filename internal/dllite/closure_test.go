package dllite

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestExample2EntailedDisjointness: K ⊨ ∃supervisedBy ⊑ ¬∃supervisedBy⁻
// due to (T6)+(T7) — the paper's Example 2, first bullet.
func TestExample2EntailedDisjointness(t *testing.T) {
	tb := MustParseTBox(`
PhDStudent <= Researcher
exists worksWith <= Researcher
exists worksWith- <= Researcher
worksWith <= worksWith-
role: supervisedBy <= worksWith
exists supervisedBy <= PhDStudent
PhDStudent <= not exists supervisedBy-
`)
	if !tb.EntailsConceptDisjointness(Some(R("supervisedBy")), Some(RInv("supervisedBy"))) {
		t.Error("∃supervisedBy ⊑ ¬∃supervisedBy⁻ must be entailed (T6+T7)")
	}
	// Asserted NI is also in the closure.
	if !tb.EntailsConceptDisjointness(C("PhDStudent"), Some(RInv("supervisedBy"))) {
		t.Error("asserted NI must be in the closure")
	}
	// Symmetric orientation works.
	if !tb.EntailsConceptDisjointness(Some(RInv("supervisedBy")), C("PhDStudent")) {
		t.Error("closure must be orientation-insensitive")
	}
	// Negative control.
	if tb.EntailsConceptDisjointness(C("Researcher"), C("PhDStudent")) {
		t.Error("Researcher and PhDStudent are not disjoint")
	}
}

func TestConceptNIPropagationChain(t *testing.T) {
	tb := MustParseTBox(`
A <= B
B <= C
C <= not D
E <= D
`)
	// A ⊑ B ⊑ C ⊥ D ⊒ E  ⟹  A ⊥ D, A ⊥ E, B ⊥ E, ...
	cases := [][2]Concept{
		{C("C"), C("D")},
		{C("B"), C("D")},
		{C("A"), C("D")},
		{C("A"), C("E")},
		{C("B"), C("E")},
		{C("C"), C("E")},
	}
	for _, c := range cases {
		if !tb.EntailsConceptDisjointness(c[0], c[1]) {
			t.Errorf("%v ⊥ %v must be entailed", c[0], c[1])
		}
	}
	if tb.EntailsConceptDisjointness(C("A"), C("B")) {
		t.Error("A and B are compatible")
	}
}

func TestRoleNIPropagation(t *testing.T) {
	tb := MustParseTBox(`
role: P <= Q
role: Q <= not S
role: T <= S
`)
	if !tb.EntailsRoleDisjointness(R("P"), R("S")) {
		t.Error("P ⊑ Q ⊥ S ⟹ P ⊥ S")
	}
	if !tb.EntailsRoleDisjointness(R("P"), R("T")) {
		t.Error("P ⊥ T via T ⊑ S")
	}
	// Inverse orientation of the same fact.
	if !tb.EntailsRoleDisjointness(RInv("P"), RInv("S")) {
		t.Error("P⁻ ⊥ S⁻ is the same constraint")
	}
}

func TestRoleInclusionLiftsToExistsNI(t *testing.T) {
	tb := MustParseTBox(`
role: P <= Q
exists Q <= not A
`)
	if !tb.EntailsConceptDisjointness(Some(R("P")), C("A")) {
		t.Error("P ⊑ Q and ∃Q ⊥ A imply ∃P ⊥ A")
	}
	// And the inverse projection is untouched.
	if tb.EntailsConceptDisjointness(Some(RInv("P")), C("A")) {
		t.Error("∃P⁻ ⊥ A must NOT follow")
	}
}

func TestCloseNIEmptyWithoutNegation(t *testing.T) {
	tb := MustParseTBox("A <= B\nrole: P <= Q")
	if got := tb.CloseNI(); len(got) != 0 {
		t.Errorf("negation-free TBox has empty closure, got %v", got)
	}
}

// randConsistencyKB builds random KBs with negative axioms.
func randConsistencyKB(r *rand.Rand) KB {
	concepts := []string{"A", "B", "C"}
	roles := []string{"P", "Q"}
	randConcept := func() Concept {
		switch r.Intn(3) {
		case 0:
			return C(concepts[r.Intn(len(concepts))])
		case 1:
			return Some(R(roles[r.Intn(len(roles))]))
		default:
			return Some(RInv(roles[r.Intn(len(roles))]))
		}
	}
	var axioms []Axiom
	n := 2 + r.Intn(7)
	for i := 0; i < n; i++ {
		switch r.Intn(5) {
		case 0:
			lr := R(roles[r.Intn(len(roles))])
			rr := R(roles[r.Intn(len(roles))])
			if r.Intn(2) == 0 {
				rr = rr.Inverse()
			}
			axioms = append(axioms, RIncl(lr, rr))
		case 1:
			axioms = append(axioms, CDisj(randConcept(), randConcept()))
		case 2:
			lr := R(roles[r.Intn(len(roles))])
			rr := R(roles[r.Intn(len(roles))])
			if lr.Name != rr.Name { // R ⊥ R would make R empty; keep it simple
				axioms = append(axioms, RDisj(lr, rr))
			}
		default:
			axioms = append(axioms, CIncl(randConcept(), randConcept()))
		}
	}
	tb := MustTBox(axioms)
	ab := NewABox()
	inds := []string{"a", "b", "c"}
	m := 1 + r.Intn(8)
	for i := 0; i < m; i++ {
		if r.Intn(2) == 0 {
			ab.Add(ConceptAssertion(concepts[r.Intn(len(concepts))], inds[r.Intn(len(inds))]))
		} else {
			ab.Add(RoleAssertion(roles[r.Intn(len(roles))], inds[r.Intn(len(inds))], inds[r.Intn(len(inds))]))
		}
	}
	return KB{T: tb, A: ab}
}

// TestPropClosureAgreesWithSaturation: the two independent consistency
// procedures (saturation vs. NI-closure) must agree on random KBs.
func TestPropClosureAgreesWithSaturation(t *testing.T) {
	f := func(seed int64) bool {
		kb := randConsistencyKB(rand.New(rand.NewSource(seed)))
		bySaturation := kb.CheckConsistency() == nil
		byClosure := kb.CheckConsistencyViaClosure() == nil
		if bySaturation != byClosure {
			t.Logf("seed %d: saturation=%v closure=%v\nT=%v\nA=%v",
				seed, bySaturation, byClosure, kb.T.Axioms, kb.A.Assertions)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
