package dllite

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseTBox reads a TBox from a line-oriented text format, one axiom per
// line. Blank lines and lines starting with '#' are ignored. Grammar:
//
//	axiom   := side "<=" [ "not" ] side
//	side    := name | "exists" role | role        (role sides only in role axioms)
//	role    := name [ "-" ]
//
// A side is a role inclusion side when both sides are bare role
// expressions (a name optionally suffixed by '-') and neither side is an
// 'exists' expression nor a declared concept. Because that is ambiguous
// for bare names, role axioms must mark at least one side with a '-' or
// be introduced by the "role:" prefix:
//
//	PhDStudent <= Researcher            # concept inclusion
//	exists worksWith <= Researcher      # ∃worksWith ⊑ Researcher
//	exists worksWith- <= Researcher     # ∃worksWith⁻ ⊑ Researcher
//	worksWith <= worksWith-             # role inclusion (rhs has '-')
//	role: supervisedBy <= worksWith     # role inclusion, explicit
//	PhDStudent <= not exists supervisedBy-
//	role: teaches <= not takes          # role disjointness
func ParseTBox(r io.Reader) (*TBox, error) {
	var axioms []Axiom
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ax, err := ParseAxiom(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		axioms = append(axioms, ax)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewTBox(axioms)
}

// ParseTBoxString is ParseTBox over a string.
func ParseTBoxString(s string) (*TBox, error) {
	return ParseTBox(strings.NewReader(s))
}

// MustParseTBox parses a TBox from a string and panics on error.
func MustParseTBox(s string) *TBox {
	t, err := ParseTBoxString(s)
	if err != nil {
		panic(err)
	}
	return t
}

// ParseAxiom parses a single axiom line.
func ParseAxiom(line string) (Axiom, error) {
	roleAxiom := false
	if rest, ok := strings.CutPrefix(line, "role:"); ok {
		roleAxiom = true
		line = strings.TrimSpace(rest)
	}
	parts := strings.SplitN(line, "<=", 2)
	if len(parts) != 2 {
		return Axiom{}, fmt.Errorf("axiom %q: missing '<='", line)
	}
	lhs := strings.TrimSpace(parts[0])
	rhs := strings.TrimSpace(parts[1])
	neg := false
	if rest, ok := strings.CutPrefix(rhs, "not "); ok {
		neg = true
		rhs = strings.TrimSpace(rest)
	}
	if strings.HasPrefix(lhs, "not ") {
		return Axiom{}, fmt.Errorf("axiom %q: negation is only allowed on the right-hand side", line)
	}
	lIsRoleExpr := isBareRole(lhs)
	rIsRoleExpr := isBareRole(rhs)
	if roleAxiom || (lIsRoleExpr && rIsRoleExpr && (strings.HasSuffix(lhs, "-") || strings.HasSuffix(rhs, "-"))) {
		lr, err := parseRole(lhs)
		if err != nil {
			return Axiom{}, fmt.Errorf("axiom %q: %w", line, err)
		}
		rr, err := parseRole(rhs)
		if err != nil {
			return Axiom{}, fmt.Errorf("axiom %q: %w", line, err)
		}
		if neg {
			return RDisj(lr, rr), nil
		}
		return RIncl(lr, rr), nil
	}
	lc, err := parseConcept(lhs)
	if err != nil {
		return Axiom{}, fmt.Errorf("axiom %q: %w", line, err)
	}
	rc, err := parseConcept(rhs)
	if err != nil {
		return Axiom{}, fmt.Errorf("axiom %q: %w", line, err)
	}
	if neg {
		return CDisj(lc, rc), nil
	}
	return CIncl(lc, rc), nil
}

func isBareRole(s string) bool {
	return !strings.HasPrefix(s, "exists ") && !strings.ContainsAny(s, " \t")
}

func parseRole(s string) (Role, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Role{}, fmt.Errorf("empty role")
	}
	if strings.ContainsAny(s, " \t") {
		return Role{}, fmt.Errorf("bad role %q", s)
	}
	if name, ok := strings.CutSuffix(s, "-"); ok {
		if name == "" || strings.HasSuffix(name, "-") {
			return Role{}, fmt.Errorf("bad inverse role %q", s)
		}
		return RInv(name), nil
	}
	return R(s), nil
}

func parseConcept(s string) (Concept, error) {
	s = strings.TrimSpace(s)
	if rest, ok := strings.CutPrefix(s, "exists "); ok {
		r, err := parseRole(strings.TrimSpace(rest))
		if err != nil {
			return Concept{}, err
		}
		return Some(r), nil
	}
	if s == "" || s == "exists" || s == "not" || strings.ContainsAny(s, " \t") || strings.HasSuffix(s, "-") {
		return Concept{}, fmt.Errorf("bad concept %q", s)
	}
	return C(s), nil
}

// FormatAxiom renders an axiom in the ParseAxiom input syntax
// (round-trippable, ASCII-only).
func FormatAxiom(a Axiom) string {
	roleStr := func(r Role) string {
		if r.Inv {
			return r.Name + "-"
		}
		return r.Name
	}
	conceptStr := func(c Concept) string {
		if c.Exists {
			return "exists " + roleStr(c.Role)
		}
		return c.Name
	}
	switch a.Kind {
	case ConceptInclusion:
		return conceptStr(a.LC) + " <= " + conceptStr(a.RC)
	case ConceptDisjointness:
		return conceptStr(a.LC) + " <= not " + conceptStr(a.RC)
	case RoleInclusion:
		return "role: " + roleStr(a.LR) + " <= " + roleStr(a.RR)
	default:
		return "role: " + roleStr(a.LR) + " <= not " + roleStr(a.RR)
	}
}

// ParseAssertion parses "A(a)" or "R(a,b)" fact lines.
func ParseAssertion(line string) (Assertion, error) {
	line = strings.TrimSpace(line)
	open := strings.IndexByte(line, '(')
	if open <= 0 || !strings.HasSuffix(line, ")") {
		return Assertion{}, fmt.Errorf("bad assertion %q", line)
	}
	pred := strings.TrimSpace(line[:open])
	inner := line[open+1 : len(line)-1]
	args := strings.Split(inner, ",")
	switch len(args) {
	case 1:
		s := strings.TrimSpace(args[0])
		if s == "" {
			return Assertion{}, fmt.Errorf("bad assertion %q", line)
		}
		return ConceptAssertion(pred, s), nil
	case 2:
		s, o := strings.TrimSpace(args[0]), strings.TrimSpace(args[1])
		if s == "" || o == "" {
			return Assertion{}, fmt.Errorf("bad assertion %q", line)
		}
		return RoleAssertion(pred, s, o), nil
	default:
		return Assertion{}, fmt.Errorf("bad assertion arity in %q", line)
	}
}

// ParseABox reads assertions, one per line; '#' comments and blanks are
// skipped.
func ParseABox(r io.Reader) (*ABox, error) {
	a := NewABox()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		as, err := ParseAssertion(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		a.Add(as)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return a, nil
}

// MustParseABox parses an ABox from a string and panics on error.
func MustParseABox(s string) *ABox {
	a, err := ParseABox(strings.NewReader(s))
	if err != nil {
		panic(err)
	}
	return a
}
