package cover

import (
	"repro/internal/query"
	"repro/internal/reformulate"
)

// ReformulateJUCQ builds the cover-based reformulation of the cover's
// query (Definition 3, generalized per Section 5.2): each fragment
// query is reformulated into a UCQ and the UCQs are joined. By Theorems
// 1 and 3, when the cover is in Lq or Gq the result is a FOL
// reformulation of the query w.r.t. the TBox behind r.
func (c Cover) ReformulateJUCQ(r *reformulate.Reformulator) (query.JUCQ, error) {
	j := query.JUCQ{Name: orName(c.Q.Name), Head: c.Q.Head}
	for i := range c.Frags {
		fq := c.FragmentQuery(i)
		u, err := r.Reformulate(fq)
		if err != nil {
			return query.JUCQ{}, err
		}
		u.Name = fq.Name
		j.Subs = append(j.Subs, u)
	}
	return j, nil
}

// ReformulateJUSCQ is the JUSCQ variant: fragment UCQs are factorized
// into USCQs (Section 2.2, [33]).
func (c Cover) ReformulateJUSCQ(r *reformulate.Reformulator) (query.JUSCQ, error) {
	j := query.JUSCQ{Name: orName(c.Q.Name), Head: c.Q.Head}
	for i := range c.Frags {
		fq := c.FragmentQuery(i)
		u, err := r.Reformulate(fq)
		if err != nil {
			return query.JUSCQ{}, err
		}
		s := query.FactorizeUCQ(u)
		s.Name = fq.Name
		j.Subs = append(j.Subs, s)
	}
	return j, nil
}

// ExpandJUCQ flattens a JUCQ into the equivalent UCQ by distributing
// joins over unions (used by tests as a correctness oracle; never used
// for evaluation — the whole point of the paper is not to do this).
func ExpandJUCQ(j query.JUCQ) query.UCQ {
	partials := []query.CQ{{Name: j.Name, Head: j.Head}}
	for _, sub := range j.Subs {
		var next []query.CQ
		for _, p := range partials {
			for _, d := range sub.Disjuncts {
				atoms := make([]query.Atom, len(p.Atoms), len(p.Atoms)+len(d.Atoms))
				copy(atoms, p.Atoms)
				atoms = append(atoms, d.Atoms...)
				next = append(next, query.CQ{Name: j.Name, Head: j.Head, Atoms: atoms})
			}
		}
		partials = next
	}
	for i := range partials {
		partials[i] = partials[i].DedupAtoms()
	}
	return query.UCQ{Name: j.Name, Disjuncts: partials}
}
