package cover

import (
	"math/bits"

	"repro/internal/dllite"
	"repro/internal/query"
)

// EnumerateSafeCovers enumerates the safe-cover lattice Lq
// (Section 5.1): every cover whose fragments are unions of Croot
// fragments (Theorem 2). Enumeration is by set partitions of the root
// fragments, bounded by the Bell number of their count. fn is invoked
// for each cover; returning false stops early. limit caps the number of
// covers produced (0 = unlimited). The number of covers enumerated is
// returned.
func EnumerateSafeCovers(q query.CQ, t *dllite.TBox, limit int, fn func(Cover) bool) int {
	root := RootCover(q, t)
	base := make([]uint64, len(root.Frags))
	for i, f := range root.Frags {
		base[i] = f.F
	}
	count := 0
	// Enumerate set partitions of base via restricted growth strings.
	n := len(base)
	rgs := make([]int, n)
	var rec func(i, max int) bool
	rec = func(i, max int) bool {
		if limit > 0 && count >= limit {
			return false
		}
		if i == n {
			groups := make(map[int]uint64)
			var order []int
			for j, g := range rgs {
				if _, ok := groups[g]; !ok {
					order = append(order, g)
				}
				groups[g] |= base[j]
			}
			c := Cover{Q: q}
			for _, g := range order {
				c.Frags = append(c.Frags, Simple(groups[g]))
			}
			count++
			return fn(c)
		}
		for g := 0; g <= max; g++ {
			rgs[i] = g
			nmax := max
			if g == max {
				nmax = max + 1
			}
			if !rec(i+1, nmax) {
				return false
			}
		}
		return true
	}
	if n > 0 {
		rec(0, 0)
	}
	return count
}

// CountSafeCovers returns |Lq| up to the given limit (0 = unlimited).
func CountSafeCovers(q query.CQ, t *dllite.TBox, limit int) int {
	return EnumerateSafeCovers(q, t, limit, func(Cover) bool { return true })
}

// EnumerateGeneralizedCovers enumerates the generalized space Gq
// (Section 5.2): for every safe cover {g1..gm}, every way of enlarging
// each fragment gi to a connected fi ⊇ gi by adding atoms from other
// fragments. Simple covers (fi = gi) are included, so Lq ⊆ Gq as sets
// of covers. fn returning false stops; limit caps production (0 =
// unlimited). Returns the number of covers enumerated.
func EnumerateGeneralizedCovers(q query.CQ, t *dllite.TBox, limit int, fn func(Cover) bool) int {
	count := 0
	stopped := false
	EnumerateSafeCovers(q, t, 0, func(c Cover) bool {
		// For each fragment, compute the candidate extension sets:
		// connected supersets of G within the query atoms.
		options := make([][]uint64, len(c.Frags))
		for i, f := range c.Frags {
			options[i] = connectedSupersets(q, f.G)
		}
		// Cartesian product over fragments.
		choice := make([]uint64, len(c.Frags))
		var rec func(i int) bool
		rec = func(i int) bool {
			if limit > 0 && count >= limit {
				return false
			}
			if i == len(c.Frags) {
				g := Cover{Q: q}
				for k, f := range c.Frags {
					g.Frags = append(g.Frags, Fragment{F: choice[k], G: f.G})
				}
				// Cover condition (ii): no F included in another F.
				if err := g.Validate(); err != nil {
					return true
				}
				count++
				return fn(g)
			}
			for _, ext := range options[i] {
				choice[i] = ext
				if !rec(i + 1) {
					return false
				}
			}
			return true
		}
		if !rec(0) {
			stopped = true
			return false
		}
		return true
	})
	_ = stopped
	return count
}

// CountGeneralizedCovers returns |Gq| up to limit (0 = unlimited).
func CountGeneralizedCovers(q query.CQ, t *dllite.TBox, limit int) int {
	return EnumerateGeneralizedCovers(q, t, limit, func(Cover) bool { return true })
}

// connectedSupersets returns all masks m with g ⊆ m ⊆ allAtoms such
// that m is connected, ordered with g first. Enumeration grows g by
// repeatedly adding atoms that share a variable with the current mask,
// which generates exactly the connected supersets.
func connectedSupersets(q query.CQ, g uint64) []uint64 {
	all := uint64(1)<<uint(len(q.Atoms)) - 1
	seen := map[uint64]bool{g: true}
	out := []uint64{g}
	for i := 0; i < len(out); i++ {
		cur := out[i]
		rest := all &^ cur
		for rest != 0 {
			bit := rest & (-rest)
			rest &^= bit
			a := bits.TrailingZeros64(bit)
			if !sharesVarWithMask(q, a, cur) {
				continue
			}
			next := cur | bit
			if !seen[next] {
				seen[next] = true
				out = append(out, next)
			}
		}
	}
	return out
}

func sharesVarWithMask(q query.CQ, atom int, mask uint64) bool {
	for i := 0; i < len(q.Atoms); i++ {
		if mask&(1<<uint(i)) != 0 && q.Atoms[i].SharesVar(q.Atoms[atom]) {
			return true
		}
	}
	return false
}

// UnionFragments returns the cover obtained by merging fragments i and
// j (both F- and G-parts), the GDL "union" move (Algorithm 1, line 3).
func (c Cover) UnionFragments(i, j int) Cover {
	out := Cover{Q: c.Q}
	merged := Fragment{F: c.Frags[i].F | c.Frags[j].F, G: c.Frags[i].G | c.Frags[j].G}
	for k, f := range c.Frags {
		if k == i {
			out.Frags = append(out.Frags, merged)
		} else if k != j {
			out.Frags = append(out.Frags, f)
		}
	}
	return out
}

// EnlargeFragment returns the cover obtained by adding atom a to
// fragment i's F-part (the GDL "enlarge" move, Algorithm 1, line 6), or
// false if the atom is already present.
func (c Cover) EnlargeFragment(i, a int) (Cover, bool) {
	bit := uint64(1) << uint(a)
	if c.Frags[i].F&bit != 0 {
		return Cover{}, false
	}
	out := c.Clone()
	out.Frags[i].F |= bit
	return out, true
}
