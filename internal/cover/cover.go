// Package cover implements the paper's query covers: simple covers
// (Definition 1) with their fragment queries (Definition 2), safe covers
// (Definition 5), the root cover Croot (Definition 6), the safe-cover
// lattice Lq (Section 5.1), generalized covers f‖g with semijoin-reducer
// atoms (Section 5.2, Definition 7) forming the space Gq, and
// cover-based reformulation into JUCQ/JUSCQ (Definition 3, Theorems 1
// and 3).
//
// Fragments are represented as bitmasks over the query's atom indexes;
// queries are limited to 64 atoms (the paper's workload peaks at 10).
package cover

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/dllite"
	"repro/internal/query"
)

// MaxAtoms bounds the number of atoms a covered query may have.
const MaxAtoms = 64

// Fragment is a generalized fragment f‖g: G ⊆ F are bitmasks over the
// atoms of the query. A simple fragment has F == G. Atoms in F\G only
// filter (semijoin-reduce) the fragment's answers; head variables are
// computed from G alone (Definition 7).
type Fragment struct {
	F, G uint64
}

// Simple builds the simple fragment over the given mask.
func Simple(mask uint64) Fragment { return Fragment{F: mask, G: mask} }

// IsSimple reports whether the fragment has no reducer atoms.
func (f Fragment) IsSimple() bool { return f.F == f.G }

// Size returns the number of atoms in F.
func (f Fragment) Size() int { return bits.OnesCount64(f.F) }

// Cover is a (possibly generalized) cover of a query: a set of
// fragments whose F-parts together contain every atom (Definition 1 /
// Section 5.2). The query is carried along because fragment semantics
// (head variables, connectivity) depend on it.
type Cover struct {
	Q     query.CQ
	Frags []Fragment
}

// NewSimple builds a simple cover from atom-index groups.
func NewSimple(q query.CQ, groups [][]int) (Cover, error) {
	if len(q.Atoms) > MaxAtoms {
		return Cover{}, fmt.Errorf("cover: query has %d atoms, max %d", len(q.Atoms), MaxAtoms)
	}
	c := Cover{Q: q}
	for _, g := range groups {
		var mask uint64
		for _, i := range g {
			if i < 0 || i >= len(q.Atoms) {
				return Cover{}, fmt.Errorf("cover: atom index %d out of range", i)
			}
			mask |= 1 << uint(i)
		}
		if mask == 0 {
			return Cover{}, fmt.Errorf("cover: empty fragment")
		}
		c.Frags = append(c.Frags, Simple(mask))
	}
	if err := c.Validate(); err != nil {
		return Cover{}, err
	}
	return c, nil
}

// MustSimple is NewSimple panicking on error.
func MustSimple(q query.CQ, groups [][]int) Cover {
	c, err := NewSimple(q, groups)
	if err != nil {
		panic(err)
	}
	return c
}

// Validate checks the structural cover conditions: every atom covered
// by some F, no F included in another F, G ⊆ F and G nonempty for every
// fragment (Definition 1 conditions (i),(ii); Section 5.2).
func (c Cover) Validate() error {
	all := uint64(1)<<uint(len(c.Q.Atoms)) - 1
	if len(c.Q.Atoms) == 64 {
		all = ^uint64(0)
	}
	var union uint64
	for i, f := range c.Frags {
		if f.G == 0 {
			return fmt.Errorf("cover: fragment %d has empty g-part", i)
		}
		if f.G&^f.F != 0 {
			return fmt.Errorf("cover: fragment %d has g ⊄ f", i)
		}
		union |= f.F
		for j, g := range c.Frags {
			if i != j && f.F&^g.F == 0 {
				return fmt.Errorf("cover: fragment %d included in fragment %d", i, j)
			}
		}
	}
	if union != all {
		return fmt.Errorf("cover: atoms %b not covered", all&^union)
	}
	return nil
}

// IsPartition reports whether the G-parts partition the query atoms.
func (c Cover) IsPartition() bool {
	all := uint64(1)<<uint(len(c.Q.Atoms)) - 1
	var union uint64
	for _, f := range c.Frags {
		if union&f.G != 0 {
			return false
		}
		union |= f.G
	}
	return union == all
}

// IsGeneralized reports whether any fragment carries reducer atoms.
func (c Cover) IsGeneralized() bool {
	for _, f := range c.Frags {
		if !f.IsSimple() {
			return true
		}
	}
	return false
}

// Key returns a canonical string identifying the cover (fragments
// sorted by mask), used for deduplication during search.
func (c Cover) Key() string {
	parts := make([]string, len(c.Frags))
	for i, f := range c.Frags {
		parts[i] = fmt.Sprintf("%x|%x", f.F, f.G)
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

// Clone returns an independent copy.
func (c Cover) Clone() Cover {
	frags := make([]Fragment, len(c.Frags))
	copy(frags, c.Frags)
	return Cover{Q: c.Q, Frags: frags}
}

func (c Cover) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, f := range c.Frags {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('{')
		first := true
		for a := 0; a < len(c.Q.Atoms); a++ {
			if f.F&(1<<uint(a)) != 0 {
				if !first {
					b.WriteString(", ")
				}
				first = false
				b.WriteString(c.Q.Atoms[a].String())
			}
		}
		b.WriteByte('}')
		if !f.IsSimple() {
			b.WriteString("‖{")
			first = true
			for a := 0; a < len(c.Q.Atoms); a++ {
				if f.G&(1<<uint(a)) != 0 {
					if !first {
						b.WriteString(", ")
					}
					first = false
					b.WriteString(c.Q.Atoms[a].String())
				}
			}
			b.WriteByte('}')
		}
	}
	b.WriteByte('}')
	return b.String()
}

// maskVars returns the set of variable names occurring in the atoms
// selected by mask.
func maskVars(q query.CQ, mask uint64) map[string]bool {
	out := make(map[string]bool)
	for i := 0; i < len(q.Atoms); i++ {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		for _, t := range q.Atoms[i].Args {
			if t.IsVar() {
				out[t.Name] = true
			}
		}
	}
	return out
}

// maskConnected reports whether the atoms selected by mask form a
// connected join graph.
func maskConnected(q query.CQ, mask uint64) bool {
	var idx []int
	for i := 0; i < len(q.Atoms); i++ {
		if mask&(1<<uint(i)) != 0 {
			idx = append(idx, i)
		}
	}
	if len(idx) <= 1 {
		return true
	}
	visited := map[int]bool{idx[0]: true}
	stack := []int{idx[0]}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, j := range idx {
			if !visited[j] && q.Atoms[i].SharesVar(q.Atoms[j]) {
				visited[j] = true
				stack = append(stack, j)
			}
		}
	}
	return len(visited) == len(idx)
}

// FragmentQuery builds the (generalized) fragment query q|f‖g of
// fragment k w.r.t. the cover (Definitions 2 and 7): the body consists
// of the atoms in F; the head consists of the free variables of q
// appearing in the atoms of G, plus the variables of G shared with the
// G-part of another fragment.
func (c Cover) FragmentQuery(k int) query.CQ {
	frag := c.Frags[k]
	gVars := maskVars(c.Q, frag.G)
	// Variables of other fragments' G-parts.
	otherG := make(map[string]bool)
	for j, f := range c.Frags {
		if j == k {
			continue
		}
		for v := range maskVars(c.Q, f.G) {
			otherG[v] = true
		}
	}
	var head []query.Term
	seen := make(map[string]bool)
	// Keep q's head order first for determinism, then shared join vars.
	for _, h := range c.Q.Head {
		if gVars[h.Name] && !seen[h.Name] {
			seen[h.Name] = true
			head = append(head, h)
		}
	}
	// Shared existential variables in a stable order: first occurrence
	// within the fragment's G atoms.
	for i := 0; i < len(c.Q.Atoms); i++ {
		if frag.G&(1<<uint(i)) == 0 {
			continue
		}
		for _, t := range c.Q.Atoms[i].Args {
			if t.IsVar() && otherG[t.Name] && !seen[t.Name] {
				seen[t.Name] = true
				head = append(head, t)
			}
		}
	}
	var atoms []query.Atom
	for i := 0; i < len(c.Q.Atoms); i++ {
		if frag.F&(1<<uint(i)) != 0 {
			atoms = append(atoms, c.Q.Atoms[i])
		}
	}
	return query.CQ{
		Name:  fmt.Sprintf("%s_f%d", orName(c.Q.Name), k),
		Head:  head,
		Atoms: atoms,
	}
}

func orName(n string) string {
	if n == "" {
		return "q"
	}
	return n
}

// FragmentQueries returns all fragment queries of the cover, in
// fragment order.
func (c Cover) FragmentQueries() []query.CQ {
	out := make([]query.CQ, len(c.Frags))
	for i := range c.Frags {
		out[i] = c.FragmentQuery(i)
	}
	return out
}

// SingleFragment returns the trivial one-fragment cover (always safe;
// its reformulation is exactly the plain CQ-to-UCQ one).
func SingleFragment(q query.CQ) Cover {
	mask := uint64(1)<<uint(len(q.Atoms)) - 1
	return Cover{Q: q, Frags: []Fragment{Simple(mask)}}
}

// IsSafe implements Definition 5: the cover must be a partition of the
// query atoms such that any two atoms whose predicates depend on a
// common concept or role name w.r.t. the TBox are in the same fragment.
// Generalized covers are "safe" when their G-parts satisfy this
// (Section 5.2 membership condition for Gq, first bullet).
func (c Cover) IsSafe(t *dllite.TBox) bool {
	if !c.IsPartition() {
		return false
	}
	n := len(c.Q.Atoms)
	fragOf := make([]int, n)
	for i := 0; i < n; i++ {
		fragOf[i] = -1
		for k, f := range c.Frags {
			if f.G&(1<<uint(i)) != 0 {
				fragOf[i] = k
				break
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if fragOf[i] != fragOf[j] && t.DepShared(c.Q.Atoms[i].Pred, c.Q.Atoms[j].Pred) {
				return false
			}
		}
	}
	return true
}

// InGq reports whether the cover belongs to the generalized search
// space Gq (Section 5.2): its G-parts form a safe cover and every
// F-part is connected.
func (c Cover) InGq(t *dllite.TBox) bool {
	if !c.IsSafe(t) {
		return false
	}
	for _, f := range c.Frags {
		if !maskConnected(c.Q, f.F) {
			return false
		}
	}
	return true
}

// RootCover computes Croot (Definition 6): the finest safe cover,
// obtained by grouping atoms whose predicates transitively share
// dependencies.
func RootCover(q query.CQ, t *dllite.TBox) Cover {
	n := len(q.Atoms)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if t.DepShared(q.Atoms[i].Pred, q.Atoms[j].Pred) {
				union(i, j)
			}
		}
	}
	masks := make(map[int]uint64)
	var order []int
	for i := 0; i < n; i++ {
		r := find(i)
		if _, ok := masks[r]; !ok {
			order = append(order, r)
		}
		masks[r] |= 1 << uint(i)
	}
	c := Cover{Q: q}
	for _, r := range order {
		c.Frags = append(c.Frags, Simple(masks[r]))
	}
	return c
}
