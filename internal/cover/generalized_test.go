package cover

import (
	"testing"

	"repro/internal/dllite"
	"repro/internal/naive"
	"repro/internal/query"
	"repro/internal/reformulate"
)

// TestDefinition7HeadFromGOnly: head variables of a generalized
// fragment come from G only — variables shared exclusively through
// reducer atoms (F\G) must not join.
func TestDefinition7HeadFromGOnly(t *testing.T) {
	q := query.MustParseCQ("q(x) <- A(x), R(x, y), S(y, z), B(z)")
	// Fragments: {A(x), R(x,y)}‖{A(x)} and {S(y,z), B(z)}‖{S(y,z), B(z)}.
	// x is the only head var; y is shared between R (a reducer in f1)
	// and S (in g2). Per Definition 7 the f1 fragment's head comes from
	// g1 = {A(x)}: just (x); y must NOT be exported by f1.
	c := Cover{Q: q, Frags: []Fragment{
		{F: 0b0011, G: 0b0001},
		{F: 0b1100, G: 0b1100},
	}}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	f1 := c.FragmentQuery(0)
	if len(f1.Head) != 1 || f1.Head[0].Name != "x" {
		t.Fatalf("f1 head = %v, want (x): reducer vars must not join", f1.Head)
	}
	f2 := c.FragmentQuery(1)
	// g2's variables shared with g1: none (g1 only has x). So f2
	// exports nothing beyond... y and z are not in g1, x not in f2.
	// q's head x is not in f2 either → f2 is boolean-ish.
	if len(f2.Head) != 0 {
		t.Fatalf("f2 head = %v, want ()", f2.Head)
	}
}

// TestGeneralizedVsSimpleSemantics: a reducer atom must only filter;
// the generalized cover answers exactly like the simple cover it
// extends (Theorem 3's equivalence argument), here on an empty TBox so
// plain evaluation is the oracle.
func TestGeneralizedVsSimpleSemantics(t *testing.T) {
	tb := dllite.MustParseTBox("Unused <= Thing")
	r := reformulate.New(tb)
	q := query.MustParseCQ("q(x) <- A(x), R(x, y), B(y)")
	simple := MustSimple(q, [][]int{{0}, {1, 2}})
	gen := Cover{Q: q, Frags: []Fragment{
		{F: 0b011, G: 0b001}, // A(x) with reducer R(x,y)
		{F: 0b110, G: 0b110}, // R(x,y) ∧ B(y)
	}}
	if err := gen.Validate(); err != nil {
		t.Fatal(err)
	}
	ab := dllite.MustParseABox(`
A(a1)
A(a2)
R(a1, b1)
R(x9, b2)
B(b1)
B(b2)
`)
	js, err := simple.ReformulateJUCQ(r)
	if err != nil {
		t.Fatal(err)
	}
	jg, err := gen.ReformulateJUCQ(r)
	if err != nil {
		t.Fatal(err)
	}
	as := naive.EvalJUCQ(js, ab)
	ag := naive.EvalJUCQ(jg, ab)
	if !naive.SameAnswers(as, ag) {
		t.Fatalf("generalized %v vs simple %v", ag.Sorted(), as.Sorted())
	}
	// And both match plain evaluation (empty TBox).
	plain := naive.EvalCQ(q, ab)
	if !naive.SameAnswers(as, plain) {
		t.Fatalf("cover answers %v vs plain %v", as.Sorted(), plain.Sorted())
	}
}

// TestConnectedSupersetsEnumeration: extensions must be connected and
// include the base.
func TestConnectedSupersetsEnumeration(t *testing.T) {
	q := query.MustParseCQ("q(x) <- A(x), R(x, y), B(y), C(z), S(z, w)")
	// Base: {A(x)} (atom 0). Connected supersets may grow through
	// R(x,y) and B(y) but never reach the disconnected C(z)/S(z,w)
	// component.
	got := connectedSupersets(q, 0b00001)
	for _, m := range got {
		if m&0b00001 == 0 {
			t.Errorf("superset %b lost the base", m)
		}
		if m&0b11000 != 0 {
			t.Errorf("superset %b crossed into the disconnected component", m)
		}
		if !maskConnected(q, m) {
			t.Errorf("superset %b is not connected", m)
		}
	}
	// {A}, {A,R}, {A,R,B} — exactly 3.
	if len(got) != 3 {
		t.Errorf("got %d supersets, want 3: %b", len(got), got)
	}
}

// TestRootCoverSingletonQuery and boolean query edge cases.
func TestRootCoverEdgeCases(t *testing.T) {
	tb := dllite.MustParseTBox("A <= B")
	q1 := query.MustParseCQ("q(x) <- A(x)")
	root := RootCover(q1, tb)
	if len(root.Frags) != 1 || root.Frags[0].F != 1 {
		t.Errorf("singleton root cover = %v", root)
	}
	// Boolean query (empty head).
	qb := query.CQ{Name: "b", Atoms: []query.Atom{
		query.ConceptAtom("A", query.Var("x")),
		query.ConceptAtom("C", query.Var("y")),
	}}
	rootB := RootCover(qb, tb)
	if len(rootB.Frags) != 2 {
		t.Errorf("boolean root cover = %v", rootB)
	}
	fq := rootB.FragmentQuery(0)
	if len(fq.Head) != 0 {
		t.Errorf("boolean fragment head = %v", fq.Head)
	}
}
