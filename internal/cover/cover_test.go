package cover

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/dllite"
	"repro/internal/naive"
	"repro/internal/query"
	"repro/internal/reformulate"
)

// Example 7 fixtures.
const runningTBox = `
Graduate <= exists supervisedBy
role: supervisedBy <= worksWith
`

var runningQuery = query.MustParseCQ(
	"q(x) <- PhDStudent(x), worksWith(x, y), supervisedBy(z, y)")

const paperTBox = `
PhDStudent <= Researcher
exists worksWith <= Researcher
exists worksWith- <= Researcher
worksWith <= worksWith-
role: supervisedBy <= worksWith
exists supervisedBy <= PhDStudent
PhDStudent <= not exists supervisedBy-
`

// TestExample5And6 reproduces the cover and fragment queries of
// Examples 5 and 6.
func TestExample5And6(t *testing.T) {
	q := query.MustParseCQ(
		"q(x, y) <- teachesTo(v, x), teachesTo(v, y), supervisedBy(x, w), supervisedBy(y, w)")
	c := MustSimple(q, [][]int{{0, 2}, {1, 3}})
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	f1 := c.FragmentQuery(0)
	// q|f1(x, v, w) ← teachesTo(v, x) ∧ supervisedBy(x, w)
	wantHead := []string{"x", "v", "w"}
	var gotHead []string
	for _, h := range f1.Head {
		gotHead = append(gotHead, h.Name)
	}
	if !reflect.DeepEqual(gotHead, wantHead) {
		t.Errorf("f1 head = %v, want %v", gotHead, wantHead)
	}
	if len(f1.Atoms) != 2 || f1.Atoms[0].Pred != "teachesTo" || f1.Atoms[1].Pred != "supervisedBy" {
		t.Errorf("f1 atoms = %v", f1.Atoms)
	}
	f2 := c.FragmentQuery(1)
	gotHead = nil
	for _, h := range f2.Head {
		gotHead = append(gotHead, h.Name)
	}
	if !reflect.DeepEqual(gotHead, []string{"y", "v", "w"}) {
		t.Errorf("f2 head = %v", gotHead)
	}
}

// TestExample7UnsafeCover: C1 = {{PhD, wW}, {sB}} is unsafe and its
// cover-based reformulation loses answers.
func TestExample7UnsafeCover(t *testing.T) {
	tb := dllite.MustParseTBox(runningTBox)
	c1 := MustSimple(runningQuery, [][]int{{0, 1}, {2}})
	if c1.IsSafe(tb) {
		t.Fatal("C1 must be unsafe (worksWith and supervisedBy share deps)")
	}
	// Its JUCQ misses q3/q4: evaluating over Example 7's ABox gives ∅.
	r := reformulate.New(tb)
	j, err := c1.ReformulateJUCQ(r)
	if err != nil {
		t.Fatal(err)
	}
	ab := dllite.MustParseABox("PhDStudent(Damian)\nGraduate(Damian)")
	got := naive.EvalJUCQ(j, ab)
	if got.Size() != 0 {
		t.Fatalf("unsafe cover should lose the answer here, got %v", got.Sorted())
	}
	// Whereas the single-fragment cover (plain UCQ) finds Damian.
	u, err := reformulate.CQToUCQ(runningQuery, tb)
	if err != nil {
		t.Fatal(err)
	}
	if full := naive.EvalUCQ(u, ab); full.Size() != 1 {
		t.Fatalf("UCQ reformulation must find Damian, got %v", full.Sorted())
	}
}

// TestExample10RootCover: Croot of the running example is
// {{PhDStudent(x)}, {worksWith(x,y), supervisedBy(z,y)}}.
func TestExample10RootCover(t *testing.T) {
	tb := dllite.MustParseTBox(runningTBox)
	root := RootCover(runningQuery, tb)
	if len(root.Frags) != 2 {
		t.Fatalf("Croot has %d fragments, want 2: %v", len(root.Frags), root)
	}
	if root.Frags[0].F != 0b001 || root.Frags[1].F != 0b110 {
		t.Errorf("Croot masks = %b, %b", root.Frags[0].F, root.Frags[1].F)
	}
	if !root.IsSafe(tb) {
		t.Error("Croot must be safe")
	}
	if !root.IsPartition() {
		t.Error("Croot must be a partition")
	}
}

// TestExample9SafeCoverAnswer: the C2-based JUCQ answers {Damian}.
func TestExample9SafeCoverAnswer(t *testing.T) {
	tb := dllite.MustParseTBox(runningTBox)
	c2 := MustSimple(runningQuery, [][]int{{0}, {1, 2}})
	if !c2.IsSafe(tb) {
		t.Fatal("C2 must be safe")
	}
	r := reformulate.New(tb)
	j, err := c2.ReformulateJUCQ(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Subs) != 2 {
		t.Fatalf("JUCQ has %d subqueries", len(j.Subs))
	}
	// Paper: qUCQ1 has 1 disjunct (PhDStudent(x)), qUCQ2 has 4.
	if len(j.Subs[0].Disjuncts) != 1 {
		t.Errorf("fragment 1: %d disjuncts, want 1", len(j.Subs[0].Disjuncts))
	}
	if len(j.Subs[1].Disjuncts) != 4 {
		t.Errorf("fragment 2: %d disjuncts, want 4", len(j.Subs[1].Disjuncts))
	}
	ab := dllite.MustParseABox("PhDStudent(Damian)\nGraduate(Damian)")
	got := naive.EvalJUCQ(j, ab)
	if got.Size() != 1 || got.Sorted()[0][0] != "Damian" {
		t.Fatalf("answer = %v, want {Damian}", got.Sorted())
	}
}

// TestExample11GeneralizedCover: C3 = {f1‖f1, f2‖f0} is in Gq and its
// reformulation answers {Damian}.
func TestExample11GeneralizedCover(t *testing.T) {
	tb := dllite.MustParseTBox(runningTBox)
	// atoms: 0=PhDStudent(x), 1=worksWith(x,y), 2=supervisedBy(z,y)
	c3 := Cover{Q: runningQuery, Frags: []Fragment{
		{F: 0b110, G: 0b110}, // f1‖f1
		{F: 0b011, G: 0b001}, // f2‖f0
	}}
	if err := c3.Validate(); err != nil {
		t.Fatal(err)
	}
	if !c3.IsGeneralized() {
		t.Error("C3 is generalized")
	}
	if !c3.InGq(tb) {
		t.Fatal("C3 must be in Gq")
	}
	// Head checks (Example 11): both fragment queries have head (x).
	for k := 0; k < 2; k++ {
		fq := c3.FragmentQuery(k)
		if len(fq.Head) != 1 || fq.Head[0].Name != "x" {
			t.Errorf("fragment %d head = %v, want (x)", k, fq.Head)
		}
	}
	r := reformulate.New(tb)
	j, err := c3.ReformulateJUCQ(r)
	if err != nil {
		t.Fatal(err)
	}
	ab := dllite.MustParseABox("PhDStudent(Damian)\nGraduate(Damian)")
	got := naive.EvalJUCQ(j, ab)
	if got.Size() != 1 || got.Sorted()[0][0] != "Damian" {
		t.Fatalf("answer = %v, want {Damian}", got.Sorted())
	}
}

// TestSingleFragmentIsUCQ: the trivial cover reduces to the plain UCQ.
func TestSingleFragmentIsUCQ(t *testing.T) {
	tb := dllite.MustParseTBox(runningTBox)
	c := SingleFragment(runningQuery)
	if !c.IsSafe(tb) {
		t.Fatal("single-fragment cover is always safe")
	}
	r := reformulate.New(tb)
	j, err := c.ReformulateJUCQ(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Subs) != 1 {
		t.Fatalf("want 1 subquery, got %d", len(j.Subs))
	}
	u, _ := reformulate.CQToUCQ(runningQuery, tb)
	if len(j.Subs[0].Disjuncts) != len(u.Disjuncts) {
		t.Errorf("single-fragment reformulation differs from UCQ: %d vs %d",
			len(j.Subs[0].Disjuncts), len(u.Disjuncts))
	}
}

// TestTheorem2FragmentsAreUnionsOfRoot: every enumerated safe cover's
// fragments are unions of Croot fragments.
func TestTheorem2FragmentsAreUnionsOfRoot(t *testing.T) {
	tb := dllite.MustParseTBox(paperTBox)
	q := query.MustParseCQ(
		"q(x) <- PhDStudent(x), worksWith(y, x), Researcher(y), teachesTo(y, z)")
	root := RootCover(q, tb)
	n := EnumerateSafeCovers(q, tb, 0, func(c Cover) bool {
		if !c.IsSafe(tb) {
			t.Errorf("enumerated cover not safe: %v", c)
		}
		for _, f := range c.Frags {
			// f.F must be a union of root fragments: every root fragment
			// is either fully inside or fully outside f.F.
			for _, rf := range root.Frags {
				inter := f.F & rf.F
				if inter != 0 && inter != rf.F {
					t.Errorf("fragment %b splits root fragment %b", f.F, rf.F)
				}
			}
		}
		return true
	})
	if n == 0 {
		t.Fatal("no covers enumerated")
	}
}

// TestLatticeSizeBellNumber: with no dependencies, |Lq| is the Bell
// number of the atom count (Section 5.1).
func TestLatticeSizeBellNumber(t *testing.T) {
	tb := dllite.MustParseTBox("Unrelated <= Thing")
	q := query.MustParseCQ("q(x) <- A(x), R(x, y), B(y)")
	if got := CountSafeCovers(q, tb, 0); got != 5 { // B3 = 5
		t.Errorf("|Lq| = %d, want Bell(3) = 5", got)
	}
	q4 := query.MustParseCQ("q(x) <- A(x), R(x, y), B(y), S(y, z)")
	if got := CountSafeCovers(q4, tb, 0); got != 15 { // B4 = 15
		t.Errorf("|Lq| = %d, want Bell(4) = 15", got)
	}
}

// TestLatticeCollapsesUnderDependencies: a dependency-rich TBox shrinks
// the lattice (Section 5.2 motivation).
func TestLatticeCollapsesUnderDependencies(t *testing.T) {
	tb := dllite.MustParseTBox(runningTBox)
	// Croot of the running query has 2 fragments → |Lq| = Bell(2) = 2.
	if got := CountSafeCovers(runningQuery, tb, 0); got != 2 {
		t.Errorf("|Lq| = %d, want 2", got)
	}
}

// TestGqContainsLq: the generalized enumeration covers at least the
// safe covers, and every member passes InGq.
func TestGqContainsLq(t *testing.T) {
	tb := dllite.MustParseTBox(runningTBox)
	lq := CountSafeCovers(runningQuery, tb, 0)
	seenSimple := 0
	gq := EnumerateGeneralizedCovers(runningQuery, tb, 0, func(c Cover) bool {
		if !c.InGq(tb) {
			t.Errorf("enumerated cover not in Gq: %v", c)
		}
		if !c.IsGeneralized() {
			seenSimple++
		}
		return true
	})
	if gq < lq {
		t.Errorf("|Gq| = %d < |Lq| = %d", gq, lq)
	}
	if seenSimple != lq {
		t.Errorf("Gq contains %d simple covers, want %d", seenSimple, lq)
	}
}

// TestEnumerationLimit: the limit short-circuits enumeration.
func TestEnumerationLimit(t *testing.T) {
	tb := dllite.MustParseTBox("Unrelated <= Thing")
	q := query.MustParseCQ("q(x) <- A(x), R(x, y), B(y), S(y, z), C(z)")
	if got := CountSafeCovers(q, tb, 7); got != 7 {
		t.Errorf("limited count = %d, want 7", got)
	}
	if got := CountGeneralizedCovers(q, tb, 9); got != 9 {
		t.Errorf("limited generalized count = %d, want 9", got)
	}
}

// TestUnionAndEnlargeMoves: GDL's moves preserve cover validity and Gq
// membership when applied from Croot.
func TestUnionAndEnlargeMoves(t *testing.T) {
	tb := dllite.MustParseTBox(runningTBox)
	root := RootCover(runningQuery, tb)
	u := root.UnionFragments(0, 1)
	if len(u.Frags) != 1 {
		t.Fatalf("union left %d fragments", len(u.Frags))
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	if !u.InGq(tb) {
		t.Error("union of safe cover fragments stays in Gq")
	}
	// Enlarge fragment 0 ({PhDStudent(x)}) with atom 1 (worksWith(x,y)).
	e, ok := root.EnlargeFragment(0, 1)
	if !ok {
		t.Fatal("enlarge must apply")
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if !e.InGq(tb) {
		t.Error("enlarged cover stays in Gq")
	}
	if _, ok := e.EnlargeFragment(0, 1); ok {
		t.Error("re-adding the same atom must report false")
	}
}

// TestValidateRejects: structural violations are caught.
func TestValidateRejects(t *testing.T) {
	q := query.MustParseCQ("q(x) <- A(x), R(x, y)")
	// Fragment included in another.
	bad := Cover{Q: q, Frags: []Fragment{Simple(0b11), Simple(0b01)}}
	if err := bad.Validate(); err == nil {
		t.Error("inclusion between fragments must be rejected")
	}
	// Atom not covered.
	bad = Cover{Q: q, Frags: []Fragment{Simple(0b01)}}
	if err := bad.Validate(); err == nil {
		t.Error("uncovered atom must be rejected")
	}
	// g ⊄ f.
	bad = Cover{Q: q, Frags: []Fragment{{F: 0b01, G: 0b11}, Simple(0b10)}}
	if err := bad.Validate(); err == nil {
		t.Error("g ⊄ f must be rejected")
	}
	// empty g.
	bad = Cover{Q: q, Frags: []Fragment{{F: 0b11, G: 0}}}
	if err := bad.Validate(); err == nil {
		t.Error("empty g must be rejected")
	}
}

// TestPropSafeCoverReformulationEquivalent is the Theorem 1 property:
// for every safe cover of the paper's Example 4 query, the cover-based
// JUCQ answers exactly the UCQ reformulation's answers, over random
// ABoxes.
func TestPropSafeCoverReformulationEquivalent(t *testing.T) {
	tb := dllite.MustParseTBox(paperTBox)
	q := query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(y, x)")
	r := reformulate.New(tb)
	ucq := r.MustReformulate(q)

	var covers []Cover
	EnumerateSafeCovers(q, tb, 0, func(c Cover) bool {
		covers = append(covers, c)
		return true
	})
	if len(covers) == 0 {
		t.Fatal("no safe covers")
	}
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		ab := randABox(rnd)
		want := naive.EvalUCQ(ucq, ab)
		for _, c := range covers {
			j, err := c.ReformulateJUCQ(r)
			if err != nil {
				return false
			}
			got := naive.EvalJUCQ(j, ab)
			if !naive.SameAnswers(got, want) {
				t.Logf("seed %d cover %v: got %v want %v", seed, c, got.Sorted(), want.Sorted())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropGeneralizedCoverReformulationEquivalent is the Theorem 3
// property over the running example: every cover in Gq yields the same
// answers as the UCQ reformulation, over random ABoxes.
func TestPropGeneralizedCoverReformulationEquivalent(t *testing.T) {
	tb := dllite.MustParseTBox(runningTBox)
	r := reformulate.New(tb)
	ucq := r.MustReformulate(runningQuery)

	var covers []Cover
	EnumerateGeneralizedCovers(runningQuery, tb, 0, func(c Cover) bool {
		covers = append(covers, c)
		return true
	})
	if len(covers) < 2 {
		t.Fatalf("expected several generalized covers, got %d", len(covers))
	}
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		ab := randABox(rnd)
		want := naive.EvalUCQ(ucq, ab)
		for _, c := range covers {
			j, err := c.ReformulateJUCQ(r)
			if err != nil {
				return false
			}
			got := naive.EvalJUCQ(j, ab)
			if !naive.SameAnswers(got, want) {
				t.Logf("seed %d cover %v: got %v want %v", seed, c, got.Sorted(), want.Sorted())
				return false
			}
			// JUSCQ must agree too.
			js, err := c.ReformulateJUSCQ(r)
			if err != nil {
				return false
			}
			if !naive.SameAnswers(naive.EvalJUSCQ(js, ab), want) {
				t.Logf("seed %d cover %v: JUSCQ mismatch", seed, c)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// randABox draws a small random ABox over the fixture vocabulary.
func randABox(r *rand.Rand) *dllite.ABox {
	ab := dllite.NewABox()
	inds := []string{"a", "b", "c", "d"}
	concepts := []string{"PhDStudent", "Researcher", "Graduate"}
	roles := []string{"worksWith", "supervisedBy"}
	n := 1 + r.Intn(10)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 0 {
			ab.Add(dllite.ConceptAssertion(concepts[r.Intn(len(concepts))], inds[r.Intn(len(inds))]))
		} else {
			ab.Add(dllite.RoleAssertion(roles[r.Intn(len(roles))], inds[r.Intn(len(inds))], inds[r.Intn(len(inds))]))
		}
	}
	return ab
}

// TestExpandJUCQMatchesJoin: expanding a JUCQ gives the same answers as
// joining materialized fragments.
func TestExpandJUCQMatchesJoin(t *testing.T) {
	tb := dllite.MustParseTBox(runningTBox)
	r := reformulate.New(tb)
	c2 := MustSimple(runningQuery, [][]int{{0}, {1, 2}})
	j, err := c2.ReformulateJUCQ(r)
	if err != nil {
		t.Fatal(err)
	}
	ab := dllite.MustParseABox(`
PhDStudent(Damian)
Graduate(Damian)
PhDStudent(Alice)
worksWith(Alice, Bob)
supervisedBy(Carl, Bob)
`)
	a1 := naive.EvalJUCQ(j, ab)
	a2 := naive.EvalUCQ(ExpandJUCQ(j), ab)
	if !naive.SameAnswers(a1, a2) {
		t.Fatalf("join %v vs expand %v", a1.Sorted(), a2.Sorted())
	}
}

// TestCoverKeyStable: keys identify covers independent of fragment order.
func TestCoverKeyStable(t *testing.T) {
	q := query.MustParseCQ("q(x) <- A(x), R(x, y)")
	c1 := Cover{Q: q, Frags: []Fragment{Simple(0b01), Simple(0b10)}}
	c2 := Cover{Q: q, Frags: []Fragment{Simple(0b10), Simple(0b01)}}
	if c1.Key() != c2.Key() {
		t.Error("keys must not depend on fragment order")
	}
	c3 := Cover{Q: q, Frags: []Fragment{{F: 0b11, G: 0b01}, Simple(0b10)}}
	if c1.Key() == c3.Key() {
		t.Error("generalized cover must have a different key")
	}
}
