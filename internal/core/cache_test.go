package core

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/query"
	"repro/internal/search"
)

// TestCacheHitSkipsPlanning: the second identical request is served from
// the cache (same answers, CacheHit set, no fresh search reported).
func TestCacheHitSkipsPlanning(t *testing.T) {
	q := query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(y, x)")
	for _, s := range Strategies() {
		a := answerer(t, engine.LayoutSimple, engine.ProfilePostgres())
		first, err := a.Answer(q, s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if first.CacheHit {
			t.Fatalf("%s: first request claims a cache hit", s)
		}
		second, err := a.Answer(q, s)
		if err != nil {
			t.Fatalf("%s repeat: %v", s, err)
		}
		if !second.CacheHit {
			t.Errorf("%s: repeat request missed the cache", s)
		}
		if second.Search != nil || second.SearchTime != 0 {
			t.Errorf("%s: cache hit still reports a search", s)
		}
		if len(second.Tuples) != len(first.Tuples) || second.Tuples[0][0] != first.Tuples[0][0] {
			t.Errorf("%s: hit answers %v != miss answers %v", s, second.Tuples, first.Tuples)
		}
		if second.SQL != first.SQL || second.NumDisjuncts != first.NumDisjuncts {
			t.Errorf("%s: cached artifacts differ", s)
		}
		hits, misses := a.Cache.Stats()
		if hits != 1 || misses != 1 {
			t.Errorf("%s: stats hits=%d misses=%d, want 1/1", s, hits, misses)
		}
	}
}

// TestCacheCanonicalization: isomorphic queries (renamed variables)
// share one cache entry; different strategies do not.
func TestCacheCanonicalization(t *testing.T) {
	a := answerer(t, engine.LayoutSimple, engine.ProfilePostgres())
	q1 := query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(y, x)")
	q2 := query.MustParseCQ("q(u) <- PhDStudent(u), worksWith(v, u)")
	if _, err := a.Answer(q1, StrategyUCQ); err != nil {
		t.Fatal(err)
	}
	res, err := a.Answer(q2, StrategyUCQ)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Error("isomorphic query missed the cache")
	}
	if len(res.Tuples) != 1 || res.Tuples[0][0] != "Damian" {
		t.Errorf("isomorphic hit answered %v", res.Tuples)
	}
	other, err := a.Answer(q1, StrategyCroot)
	if err != nil {
		t.Fatal(err)
	}
	if other.CacheHit {
		t.Error("different strategy hit the UCQ entry")
	}
	if a.Cache.Len() != 2 {
		t.Errorf("cache holds %d entries, want 2", a.Cache.Len())
	}
}

// TestCacheDataInvalidation: an ABox mutation bumps the data version;
// the next request re-plans and sees the new facts.
func TestCacheDataInvalidation(t *testing.T) {
	a := answerer(t, engine.LayoutSimple, engine.ProfilePostgres())
	q := query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(y, x)")
	first, err := a.Answer(q, StrategyGDLExt)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Tuples) != 1 {
		t.Fatalf("baseline answers = %v", first.Tuples)
	}
	v := a.DB.Version()
	a.DB.AddRoleFact("supervisedBy", "Eva", "Ioana")
	a.DB.Finalize()
	if a.DB.Version() == v {
		t.Fatal("mutation did not bump the data version")
	}
	second, err := a.Answer(q, StrategyGDLExt)
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheHit {
		t.Error("stale entry served after data mutation")
	}
	if len(second.Tuples) != 2 { // Damian and Eva
		t.Errorf("post-mutation answers = %v", second.Tuples)
	}
}

// TestCacheTBoxInvalidation: InvalidateTBox bumps the TBox version so
// cached plans from the old ontology become unreachable.
func TestCacheTBoxInvalidation(t *testing.T) {
	a := answerer(t, engine.LayoutSimple, engine.ProfilePostgres())
	q := query.MustParseCQ("q(x) <- Researcher(x)")
	if _, err := a.Answer(q, StrategyUCQ); err != nil {
		t.Fatal(err)
	}
	a.InvalidateTBox()
	res, err := a.Answer(q, StrategyUCQ)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Error("stale entry served after TBox invalidation")
	}
}

// TestTBoxInvalidationPurgesShardCache: an ontology swap must also
// flush the shard backend's own plan/result caches — their keys carry
// the data version only, so InvalidateTBox purges them explicitly.
func TestTBoxInvalidationPurgesShardCache(t *testing.T) {
	a := answerer(t, engine.LayoutSimple, engine.ProfilePostgres())
	sb, err := NewBackendByName("shard", a.DB, a.Profile, 2)
	if err != nil {
		t.Fatal(err)
	}
	a.Backend = sb
	q := query.MustParseCQ("q(x) <- Researcher(x)")
	for i := 0; i < 2; i++ {
		if _, err := a.Answer(q, StrategyUCQ); err != nil {
			t.Fatal(err)
		}
	}
	type cacher interface {
		CacheStats() (hits, misses uint64)
		CacheLen() int
		PurgeCache()
	}
	c, ok := sb.(cacher)
	if !ok {
		t.Fatal("shard backend lost its cache surface")
	}
	if h, m := c.CacheStats(); h+m == 0 {
		t.Fatal("shard caches never consulted")
	}
	if c.CacheLen() == 0 {
		t.Fatal("shard caches empty before invalidation")
	}
	a.InvalidateTBox()
	// Counters are cumulative and survive the purge; the entries do not.
	if c.CacheLen() != 0 {
		t.Fatalf("shard caches hold %d entries after TBox invalidation", c.CacheLen())
	}
	// The next answer still works and re-fills the caches.
	res, err := a.Answer(q, StrategyUCQ)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) == 0 {
		t.Fatalf("post-invalidation answers = %v", res.Tuples)
	}
}

// TestCacheDisabled: a nil cache re-runs the full pipeline every time.
func TestCacheDisabled(t *testing.T) {
	a := answerer(t, engine.LayoutSimple, engine.ProfilePostgres())
	a.Cache = nil
	q := query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(y, x)")
	for i := 0; i < 2; i++ {
		res, err := a.Answer(q, StrategyGDLExt)
		if err != nil {
			t.Fatal(err)
		}
		if res.CacheHit {
			t.Fatal("nil cache reported a hit")
		}
		if len(res.Tuples) != 1 {
			t.Fatalf("answers = %v", res.Tuples)
		}
	}
}

// TestCacheLRUEviction: the LRU evicts past capacity and keeps the hot
// entry.
func TestCacheLRUEviction(t *testing.T) {
	c := NewAnswerCache(2)
	k := func(s string) cacheKey { return cacheKey{canon: s} }
	c.put(k("a"), &cachedPlan{})
	c.put(k("b"), &cachedPlan{})
	if _, ok := c.get(k("a")); !ok { // promote a
		t.Fatal("a missing")
	}
	c.put(k("c"), &cachedPlan{}) // evicts b
	if _, ok := c.get(k("b")); ok {
		t.Error("b survived eviction")
	}
	if _, ok := c.get(k("a")); !ok {
		t.Error("hot entry a evicted")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
	c.Purge()
	if c.Len() != 0 {
		t.Errorf("purged len = %d", c.Len())
	}
}

// TestSearchMemoShared: repeated searches reuse a shared cover-estimate
// memo (plan cache disabled so the search actually re-runs; the memo is
// wired explicitly, as disabling the cache also disables the automatic
// one).
func TestSearchMemoShared(t *testing.T) {
	a := answerer(t, engine.LayoutSimple, engine.ProfilePostgres())
	a.Cache = nil
	a.SearchOpts.Memo = search.NewMemo()
	q := query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(y, x)")
	first, err := a.Answer(q, StrategyGDLExt)
	if err != nil {
		t.Fatal(err)
	}
	if first.Search == nil || first.Search.ExploredLq+first.Search.ExploredGq == 0 {
		t.Fatal("first search explored nothing")
	}
	second, err := a.Answer(q, StrategyGDLExt)
	if err != nil {
		t.Fatal(err)
	}
	if n := second.Search.ExploredLq + second.Search.ExploredGq; n != 0 {
		t.Errorf("repeat search re-estimated %d covers despite the memo", n)
	}
	if len(second.Tuples) != len(first.Tuples) {
		t.Errorf("answers drifted: %v vs %v", second.Tuples, first.Tuples)
	}
}
