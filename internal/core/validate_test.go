package core

import (
	"strings"
	"testing"

	"repro/internal/lubm"
	"repro/internal/plan"
	"repro/internal/query"
)

// TestCorruptedRewriteCaughtByValidate stands a deliberately broken
// rewrite rule into the Answerer's pipeline — one that renames a
// projected head variable to a variable no access binds — and asserts
// every backend fails the query with a plan-validation error. Without
// the Validate gate this exact corruption returns zero rows silently
// (the native projectOp marks unbound head variables dead and drops
// everything).
func TestCorruptedRewriteCaughtByValidate(t *testing.T) {
	orig := rewritePlan
	rewritePlan = func(n *plan.Node) *plan.Node { return corruptHeadVar(plan.Rewrite(n)) }
	defer func() { rewritePlan = orig }()

	a := lubmAnswerer(t)
	q := lubm.Queries()[1]
	for _, spec := range BackendSpecs() {
		backend, err := NewBackendByName(spec.Name, a.DB, a.Profile, 2)
		if err != nil {
			t.Fatalf("%s: NewBackendByName: %v", spec.Name, err)
		}
		res, err := a.AnswerWith(q, StrategyGDLExt, backend)
		if err == nil {
			t.Fatalf("%s: corrupted rewrite answered with %d tuples, want a validation error",
				spec.Name, len(res.Tuples))
		}
		if !strings.Contains(err.Error(), "plan: validate:") {
			t.Fatalf("%s: error %q does not come from plan.Validate", spec.Name, err)
		}
	}
}

// corruptHeadVar clones the path to the first variable-headed Project
// and renames that variable to one nothing binds.
func corruptHeadVar(n *plan.Node) *plan.Node {
	if n.Op == plan.OpProject {
		for i, term := range n.Head {
			if term.IsVar() {
				m := *n
				m.Head = append([]query.Term(nil), n.Head...)
				m.Head[i] = query.Var("__corrupt")
				return &m
			}
		}
	}
	for i, in := range n.Inputs {
		if r := corruptHeadVar(in); r != in {
			m := *n
			m.Inputs = append([]*plan.Node(nil), n.Inputs...)
			m.Inputs[i] = r
			return &m
		}
	}
	return n
}
