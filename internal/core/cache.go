package core

// The query-answering cache: cmd/obdaserver traffic is dominated by a
// small set of hot queries, yet every request used to re-run the cover
// search (GDL/EDL), PerfectRef reformulation, SQL generation, and
// planning before a single tuple was produced. AnswerCache memoizes
// that whole front half of Answer, keyed on the query's canonical form
// (isomorphic queries share an entry), the strategy, and the TBox/data
// versions — a TBox or ABox mutation bumps a version, so stale entries
// become unreachable and age out of the LRU. Execution itself always
// runs: the cached artifact is the plan, not the answer tuples, so
// updates to the data are reflected immediately after the version
// bump while unchanged deployments skip straight to the operator
// pipeline.

import (
	"time"

	"repro/internal/cache"
	"repro/internal/cover"
	"repro/internal/plan"
	"repro/internal/query"
)

// DefaultAnswerCacheSize is the LRU capacity New wires into an
// Answerer.
const DefaultAnswerCacheSize = 256

// cacheKey identifies one cached reformulation+plan.
type cacheKey struct {
	canon    string
	strategy Strategy
	tboxVer  uint64
	dataVer  uint64
	backend  string // executables are backend-specific
}

// cachedPlan is the reusable front half of one Answer call: the chosen
// cover, its reformulation, the generated SQL, the logical plan it
// lowered into, and the backend executable compiled from that plan.
// The IR and the executable are immutable/concurrency-safe; physical
// state is rebuilt inside every Run.
type cachedPlan struct {
	cover        cover.Cover
	numFragments int
	numDisjuncts int
	sql          string

	searchTime time.Duration // the original search cost, reported once

	jucq query.JUCQ // the JUCQ reformulation (zero for USCQ strategies)

	ir   *plan.Node      // the logical plan every backend compiles
	exec plan.Executable // compiled for the backend in the cache key
}

// AnswerCache is a concurrency-safe LRU of cachedPlans, built on the
// shared internal/cache LRU (the same implementation backing the shard
// backend's per-shard plan/result caches).
type AnswerCache struct {
	lru *cache.LRU[cacheKey, *cachedPlan]
}

// NewAnswerCache builds an empty cache holding up to capacity entries
// (capacity <= 0 falls back to DefaultAnswerCacheSize).
func NewAnswerCache(capacity int) *AnswerCache {
	if capacity <= 0 {
		capacity = DefaultAnswerCacheSize
	}
	return &AnswerCache{lru: cache.New[cacheKey, *cachedPlan](capacity)}
}

// get returns the cached plan for key, promoting it to most recently
// used.
func (c *AnswerCache) get(key cacheKey) (*cachedPlan, bool) {
	return c.lru.Get(key)
}

// put stores a plan under key, evicting the least recently used entry
// past capacity.
func (c *AnswerCache) put(key cacheKey, plan *cachedPlan) {
	c.lru.Put(key, plan)
}

// Len returns the number of cached plans.
func (c *AnswerCache) Len() int { return c.lru.Len() }

// Stats returns the cumulative hit and miss counts.
func (c *AnswerCache) Stats() (hits, misses uint64) { return c.lru.Stats() }

// Purge drops every cached entry (version bumps already make stale
// entries unreachable; Purge reclaims their memory eagerly).
func (c *AnswerCache) Purge() { c.lru.Purge() }
