package core

// The query-answering cache: cmd/obdaserver traffic is dominated by a
// small set of hot queries, yet every request used to re-run the cover
// search (GDL/EDL), PerfectRef reformulation, SQL generation, and
// planning before a single tuple was produced. AnswerCache memoizes
// that whole front half of Answer, keyed on the query's canonical form
// (isomorphic queries share an entry), the strategy, and the TBox/data
// versions — a TBox or ABox mutation bumps a version, so stale entries
// become unreachable and age out of the LRU. Execution itself always
// runs: the cached artifact is the plan, not the answer tuples, so
// updates to the data are reflected immediately after the version
// bump while unchanged deployments skip straight to the operator
// pipeline.

import (
	"container/list"
	"sync"
	"time"

	"repro/internal/cover"
	"repro/internal/plan"
	"repro/internal/query"
)

// DefaultAnswerCacheSize is the LRU capacity New wires into an
// Answerer.
const DefaultAnswerCacheSize = 256

// cacheKey identifies one cached reformulation+plan.
type cacheKey struct {
	canon    string
	strategy Strategy
	tboxVer  uint64
	dataVer  uint64
	backend  string // executables are backend-specific
}

// cachedPlan is the reusable front half of one Answer call: the chosen
// cover, its reformulation, the generated SQL, the logical plan it
// lowered into, and the backend executable compiled from that plan.
// The IR and the executable are immutable/concurrency-safe; physical
// state is rebuilt inside every Run.
type cachedPlan struct {
	cover        cover.Cover
	numFragments int
	numDisjuncts int
	sql          string

	searchTime time.Duration // the original search cost, reported once

	jucq query.JUCQ // the JUCQ reformulation (zero for USCQ strategies)

	ir   *plan.Node      // the logical plan every backend compiles
	exec plan.Executable // compiled for the backend in the cache key
}

// AnswerCache is a concurrency-safe LRU of cachedPlans.
type AnswerCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used; values are *cacheItem
	items map[cacheKey]*list.Element

	hits, misses uint64
}

type cacheItem struct {
	key  cacheKey
	plan *cachedPlan
}

// NewAnswerCache builds an empty cache holding up to capacity entries
// (capacity <= 0 falls back to DefaultAnswerCacheSize).
func NewAnswerCache(capacity int) *AnswerCache {
	if capacity <= 0 {
		capacity = DefaultAnswerCacheSize
	}
	return &AnswerCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[cacheKey]*list.Element),
	}
}

// get returns the cached plan for key, promoting it to most recently
// used.
func (c *AnswerCache) get(key cacheKey) (*cachedPlan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheItem).plan, true
}

// put stores a plan under key, evicting the least recently used entry
// past capacity.
func (c *AnswerCache) put(key cacheKey, plan *cachedPlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheItem).plan = plan
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheItem{key: key, plan: plan})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheItem).key)
	}
}

// Len returns the number of cached plans.
func (c *AnswerCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns the cumulative hit and miss counts.
func (c *AnswerCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Purge drops every cached entry (version bumps already make stale
// entries unreachable; Purge reclaims their memory eagerly).
func (c *AnswerCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[cacheKey]*list.Element)
}
