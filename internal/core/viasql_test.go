package core

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/lubm"
	"repro/internal/query"
	"repro/internal/sqlexec"
)

// TestViaSQLMatchesNative: routing evaluation through the generated SQL
// text (parse + execute) produces exactly the native answers for every
// strategy on the paper's running example.
func TestViaSQLMatchesNative(t *testing.T) {
	q := query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(y, x)")
	native := answerer(t, engine.LayoutSimple, engine.ProfilePostgres())
	sqlPath := answerer(t, engine.LayoutSimple, engine.ProfilePostgres())
	sqlPath.Backend = sqlexec.NewBackend(sqlPath.DB, sqlPath.Profile)
	for _, s := range []Strategy{StrategyUCQ, StrategyCroot, StrategyGDLExt} {
		rn, err := native.Answer(q, s)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := sqlPath.Answer(q, s)
		if err != nil {
			t.Fatalf("%s via SQL: %v", s, err)
		}
		if len(rn.Tuples) != len(rs.Tuples) {
			t.Fatalf("%s: native %d vs SQL-path %d answers", s, len(rn.Tuples), len(rs.Tuples))
		}
		seen := map[string]bool{}
		for _, tu := range rn.Tuples {
			seen[strings.Join(tu, "\x00")] = true
		}
		for _, tu := range rs.Tuples {
			if !seen[strings.Join(tu, "\x00")] {
				t.Errorf("%s: SQL path produced extra tuple %v", s, tu)
			}
		}
	}
}

// TestViaSQLWorkload runs the SQL path over the LUBM∃ workload under
// the Croot strategy (the WITH-heavy shape).
func TestViaSQLWorkload(t *testing.T) {
	tb := lubm.TBox()
	db := engine.NewDB(engine.LayoutSimple)
	lubm.Generate(lubm.Config{Universities: 1, Seed: 2}, db)
	db.Finalize()
	native := New(tb, db, engine.ProfilePostgres())
	viaSQL := New(tb, db, engine.ProfilePostgres())
	viaSQL.Backend = sqlexec.NewBackend(viaSQL.DB, viaSQL.Profile)
	for _, q := range lubm.Queries() {
		rn, err := native.Answer(q, StrategyCroot)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := viaSQL.Answer(q, StrategyCroot)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		if len(rn.Tuples) != len(rs.Tuples) {
			t.Errorf("%s: native %d vs SQL-path %d answers", q.Name, len(rn.Tuples), len(rs.Tuples))
		}
	}
}
