package core

import (
	"testing"

	"repro/internal/lubm"
)

// driftFactor is the documented cost-model accuracy bound: on every
// LUBM query's root-cover plan, the external model's cardinality
// estimate and the actual root row counter stay within a factor of 10
// of each other, after +1 smoothing so empty results do not divide by
// zero (a smoothed q-error, max(est+1, act+1)/min(est+1, act+1)).
//
// The bound is deliberately checked on Croot plans only: a root cover
// is one fragment whose estimate composes a handful of per-CQ figures,
// the estimator's home turf (observed worst case ≈ 9 on Q7, where 8
// estimated rows materialize as 0). UCQ-expansion estimates compound
// error across hundreds of disjuncts and drift by orders of magnitude
// (Q8: ≈37k estimated vs 5 actual) — exactly the miscalibration the
// paper's cover search exists to route around, so it is documented
// here rather than asserted.
const driftFactor = 10.0

// TestCostModelDriftGuard pins the external model to the engine's
// actual per-operator row counters: if a change to the statistics, the
// estimation formulas, or the plan lowering pushes root-cover estimates
// further than driftFactor from observed cardinalities, this fails
// before the search quality quietly degrades.
func TestCostModelDriftGuard(t *testing.T) {
	a := lubmAnswerer(t)
	for _, q := range lubm.Queries() {
		res, err := a.Answer(q, StrategyCroot)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		if res.Explain == nil || res.Explain.Root == nil {
			t.Fatalf("%s: no explain", q.Name)
		}
		est := a.Model.Estimate(res.Plan).Card
		actual := float64(res.Explain.Root.ActualRows)
		if est < 0 {
			t.Fatalf("%s: negative estimate %f", q.Name, est)
		}
		hi, lo := est+1, actual+1
		if hi < lo {
			hi, lo = lo, hi
		}
		if qerr := hi / lo; qerr > driftFactor {
			t.Errorf("%s: estimate %.1f vs actual %.0f rows drifts %.1fx (> %.0fx)",
				q.Name, est, actual, qerr, driftFactor)
		}
	}
}
