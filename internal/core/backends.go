package core

// The execution-backend registry: every backend selectable through
// cmd/obda's and cmd/obdaserver's -backend flag (and the server's
// per-request "backend" field) is constructed here, so the valid set,
// the descriptions served by GET /backends, and the error message for
// unknown names all come from one place.

import (
	"fmt"
	"runtime"
	"strings"

	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/shard"
	"repro/internal/sqlexec"
)

// BackendSpec describes one registered execution backend (served by
// GET /backends).
type BackendSpec struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// BackendSpecs lists the registered execution backends.
func BackendSpecs() []BackendSpec {
	return []BackendSpec{
		{Name: "native", Description: "in-process streaming operator engine (default)"},
		{Name: "sql", Description: "evaluation through the generated SQL text (the RDBMS statement surface)"},
		{Name: "shard", Description: "hash-partitioned parallel execution: per-shard operator trees (shuffle exchange for non-aligned join keys) merged through the parallel union, with per-shard plan/result caches"},
	}
}

// BackendNames lists the registered backend names.
func BackendNames() []string {
	specs := BackendSpecs()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// ValidBackend reports whether name is registered.
func ValidBackend(name string) bool {
	for _, s := range BackendSpecs() {
		if s.Name == name {
			return true
		}
	}
	return false
}

// NewBackendByName constructs the named backend over a finalized
// database and profile. shards applies to "shard" only (values < 1
// default to GOMAXPROCS). Unknown names error, naming the valid set.
func NewBackendByName(name string, db *engine.DB, prof *engine.Profile, shards int) (plan.Backend, error) {
	switch name {
	case "native":
		return engine.NewBackend(db, prof), nil
	case "sql":
		return sqlexec.NewBackend(db, prof), nil
	case "shard":
		if shards < 1 {
			shards = runtime.GOMAXPROCS(0)
		}
		return shard.New(db, prof, shards)
	}
	return nil, fmt.Errorf("core: unknown backend %q (valid: %s)", name, strings.Join(BackendNames(), ", "))
}
