package core

import (
	"encoding/json"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/lubm"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/sqlexec"
)

// lubmAnswerer wires an Answerer over a 1-university LUBM∃ database.
func lubmAnswerer(t *testing.T) *Answerer {
	t.Helper()
	db := engine.NewDB(engine.LayoutSimple)
	lubm.Generate(lubm.Config{Universities: 1, Seed: 2}, db)
	db.Finalize()
	return New(lubm.TBox(), db, engine.ProfilePostgres())
}

// emptyAnswerer wires an Answerer over a LUBM TBox with no facts.
func emptyAnswerer(t *testing.T) *Answerer {
	t.Helper()
	db := engine.NewDB(engine.LayoutSimple)
	db.Finalize()
	return New(lubm.TBox(), db, engine.ProfilePostgres())
}

func sorted(tuples [][]string) []string {
	out := make([]string, len(tuples))
	for i, tu := range tuples {
		out[i] = strings.Join(tu, "\x00")
	}
	sort.Strings(out)
	return out
}

// sweepQueries keeps the differential sweep (and its -race run)
// tractable for EDL's exhaustive enumeration: the chain, the 3-atom
// head-of query, the 2-atom widest-union Q11, and the 4-atom Q12.
func sweepQueries() []query.CQ {
	qs := lubm.Queries()
	return []query.CQ{qs[1], qs[3], qs[10], qs[11]}
}

// TestBackendsAgreeOnLUBM: every strategy must return the same certain
// answers through the native streaming backend, through the SQL-text
// backend, and through the shard backend at several fan-outs (including
// 1 — the degenerate partitioning — and 7, which leaves some shards
// empty on small data) — all lowerings of one logical plan. A separate
// Answerer per variant keeps the answer cache from conflating shard
// counts (the cache key carries the backend name, not its fan-out).
func TestBackendsAgreeOnLUBM(t *testing.T) {
	for name, build := range map[string]func(*testing.T) *Answerer{
		"lubm1": lubmAnswerer,
		"empty": emptyAnswerer,
	} {
		native := build(t)
		variants := map[string]*Answerer{
			"sql": build(t), "shard1": build(t), "shard2": build(t), "shard7": build(t),
		}
		variants["sql"].Backend = sqlexec.NewBackend(variants["sql"].DB, variants["sql"].Profile)
		for label, shards := range map[string]int{"shard1": 1, "shard2": 2, "shard7": 7} {
			a := variants[label]
			b, err := NewBackendByName("shard", a.DB, a.Profile, shards)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, label, err)
			}
			a.Backend = b
		}
		for _, q := range sweepQueries() {
			for _, s := range Strategies() {
				rn, err := native.Answer(q, s)
				if err != nil {
					t.Fatalf("%s/%s/%s native: %v", name, q.Name, s, err)
				}
				if name == "empty" && len(rn.Tuples) != 0 {
					t.Errorf("%s/%s: %d answers from an empty ABox", q.Name, s, len(rn.Tuples))
				}
				for label, a := range variants {
					rv, err := a.Answer(q, s)
					if err != nil {
						t.Fatalf("%s/%s/%s %s: %v", name, q.Name, s, label, err)
					}
					if !reflect.DeepEqual(sorted(rn.Tuples), sorted(rv.Tuples)) {
						t.Errorf("%s/%s/%s: backends disagree: native %d rows, %s %d rows",
							name, q.Name, s, len(rn.Tuples), label, len(rv.Tuples))
					}
				}
			}
		}
	}
}

// TestSearchCostMatchesExecutedEstimate: the cost the cover search
// assigned to the winning cover is exactly the backend's estimate of
// the plan that then executes — search and execution score the same IR
// with the same estimator, so nothing is lost in translation.
func TestSearchCostMatchesExecutedEstimate(t *testing.T) {
	a := lubmAnswerer(t)
	for _, q := range sweepQueries() {
		// gdl-rdbms searches with the engine's own estimator; EstCost
		// on the result is that same estimator applied to res.Plan.
		res, err := a.Answer(q, StrategyGDLRDBMS)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		if res.Search == nil {
			t.Fatalf("%s: no search result", q.Name)
		}
		if res.Search.Cost != res.EstCost {
			t.Errorf("%s/gdl-rdbms: search cost %.4f != executed estimate %.4f",
				q.Name, res.Search.Cost, res.EstCost)
		}

		// gdl-ext searches with the external model ε: its winning cost
		// must equal ε applied to the executed plan.
		res, err = a.Answer(q, StrategyGDLExt)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		if got := a.Model.Estimate(res.Plan).Cost; res.Search.Cost != got {
			t.Errorf("%s/gdl-ext: search cost %.4f != ε(plan) %.4f",
				q.Name, res.Search.Cost, got)
		}
	}
}

// TestExplainEveryStrategy: each strategy's Result carries an EXPLAIN
// that survives a JSON round trip with estimated figures and the actual
// root row count of the run.
func TestExplainEveryStrategy(t *testing.T) {
	a := lubmAnswerer(t)
	q := lubm.Queries()[3]
	for _, s := range Strategies() {
		res, err := a.Answer(q, s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		ex := res.Explain
		if ex == nil || ex.Root == nil {
			t.Fatalf("%s: no explain", s)
		}
		if ex.Backend != "native" {
			t.Errorf("%s: backend = %q", s, ex.Backend)
		}
		if ex.Root.ActualRows != int64(len(res.Tuples)) {
			t.Errorf("%s: root actual %d, want %d answers", s, ex.Root.ActualRows, len(res.Tuples))
		}
		if ex.Root.EstRows < 0 || ex.EstCost <= 0 {
			t.Errorf("%s: estimates missing (rows %.1f, cost %.1f)", s, ex.Root.EstRows, ex.EstCost)
		}
		blob, err := json.Marshal(ex)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		var back plan.Explain
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if !reflect.DeepEqual(&back, ex) {
			t.Errorf("%s: explain changed through JSON", s)
		}
	}
}

// TestSQLBackendExplainCarriesStatement: the SQL backend's EXPLAIN
// reports the statement it shipped.
func TestSQLBackendExplainCarriesStatement(t *testing.T) {
	a := answerer(t, engine.LayoutSimple, engine.ProfilePostgres())
	a.Backend = sqlexec.NewBackend(a.DB, a.Profile)
	res, err := a.Answer(query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(y, x)"), StrategyUCQ)
	if err != nil {
		t.Fatal(err)
	}
	if res.Explain == nil || res.Explain.Backend != "sql" {
		t.Fatalf("explain = %+v", res.Explain)
	}
	if !strings.Contains(res.Explain.SQL, "SELECT") {
		t.Errorf("explain carries no SQL: %q", res.Explain.SQL)
	}
	if res.Explain.Root.ActualRows != int64(len(res.Tuples)) {
		t.Errorf("root actual %d, want %d", res.Explain.Root.ActualRows, len(res.Tuples))
	}
}
