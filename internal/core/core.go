// Package core is the paper's contribution as a library: cost-driven
// cover-based query answering for DL-LiteR over an RDBMS-style engine
// (Figure 1). An Answerer owns the TBox, the loaded database, the
// engine profile, and the reformulation/search machinery; Answer runs
// one of the strategies the experiments compare:
//
//   - StrategyUCQ: the standard CQ-to-UCQ reformulation [13] evaluated
//     directly (the single-fragment cover).
//   - StrategyUSCQ: the CQ-to-USCQ reformulation [33].
//   - StrategyCroot: the JUCQ induced by the root cover (Definition 6).
//   - StrategyGDLRDBMS: GDL guided by the engine's own cost estimation.
//   - StrategyGDLExt: GDL guided by the external cost model ε.
//   - StrategyEDL: exhaustive search (small queries only).
//
// Every strategy computes the same certain answers (Theorems 1 and 3);
// they differ only in evaluation cost — and, on DB2-like profiles, in
// whether the SQL statement is accepted at all.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cost"
	"repro/internal/cover"
	"repro/internal/dllite"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/reformulate"
	"repro/internal/search"
	"repro/internal/sqlgen"
)

// Strategy selects how the FOL reformulation handed to the engine is
// chosen.
type Strategy string

// The strategies compared in the paper's experiments (Section 6).
const (
	StrategyUCQ      Strategy = "ucq"
	StrategyUCQMin   Strategy = "ucq-min" // §2.3's minimal UCQ
	StrategyUSCQ     Strategy = "uscq"
	StrategyCroot    Strategy = "croot"
	StrategyGDLRDBMS Strategy = "gdl-rdbms"
	StrategyGDLExt   Strategy = "gdl-ext"
	StrategyEDL      Strategy = "edl"
)

// Strategies lists all supported strategies.
func Strategies() []Strategy {
	return []Strategy{StrategyUCQ, StrategyUCQMin, StrategyUSCQ, StrategyCroot, StrategyGDLRDBMS, StrategyGDLExt, StrategyEDL}
}

// ValidStrategy reports whether s is one of Strategies().
func ValidStrategy(s Strategy) bool {
	for _, v := range Strategies() {
		if v == s {
			return true
		}
	}
	return false
}

// Description is the one-line summary of the strategy (served by
// GET /strategies).
func (s Strategy) Description() string {
	switch s {
	case StrategyUCQ:
		return "standard CQ-to-UCQ reformulation evaluated directly (single-fragment cover)"
	case StrategyUCQMin:
		return "containment-minimized UCQ reformulation (§2.3)"
	case StrategyUSCQ:
		return "factorized CQ-to-USCQ reformulation (semi-conjunctive disjuncts)"
	case StrategyCroot:
		return "JUCQ induced by the root cover (Definition 6), no search"
	case StrategyGDLRDBMS:
		return "greedy cover search costed by the engine's own estimation"
	case StrategyGDLExt:
		return "greedy cover search costed by the external model ε"
	case StrategyEDL:
		return "exhaustive cover search (small queries only)"
	}
	return ""
}

// Answerer answers conjunctive queries over a KB through the engine.
// Answer is safe for concurrent use: the reformulator, the caches, the
// profile's feedback sink, and the engine's statistics are all
// mutex-guarded, and the database is read-only during evaluation.
type Answerer struct {
	TBox    *dllite.TBox
	DB      *engine.DB
	Profile *engine.Profile

	Ref        *reformulate.Reformulator
	Model      *cost.Model
	SearchOpts search.Options

	// Backend compiles and executes the logical plans every strategy
	// lowers into. nil selects the native streaming engine;
	// sqlexec.NewBackend routes evaluation through the SQL text itself
	// (what shipping the reformulation to a real RDBMS does —
	// formerly the ViaSQL switch). The backend's Name keys the answer
	// cache, so swapping backends never serves a stale executable.
	Backend plan.Backend

	// Workers > 1 spreads evaluation over that many worker goroutines
	// (capped at GOMAXPROCS): union arms through the parallel union
	// operator, and the build sides of multi-fragment cover plans
	// through the streaming hash join's parallel build drain. Zero or
	// one keeps the fully sequential pipeline, matching the paper's
	// single-threaded engines. The SQL backend ignores it.
	Workers int

	// Cache, when non-nil, memoizes the front half of Answer (cover
	// search, reformulation, SQL generation, planning) per canonical
	// query, strategy, and TBox/data version. New enables it with
	// DefaultAnswerCacheSize; set to nil to re-run the full pipeline on
	// every request. Note that cached plans freeze the cardinality
	// estimates of the moment they were planned; Profile.Feedback
	// refinements apply to new entries only.
	Cache *AnswerCache

	// tboxVer counts TBox swaps (InvalidateTBox); it versions cache keys.
	tboxVer atomic.Uint64

	// The cover-estimate memo shared across searches, dropped whenever
	// the TBox or data version moves.
	memoMu   sync.Mutex
	memo     *search.Memo
	memoTbox uint64
	memoData uint64
}

// New wires an Answerer for the given TBox, database, and profile.
func New(tb *dllite.TBox, db *engine.DB, prof *engine.Profile) *Answerer {
	return &Answerer{
		TBox:    tb,
		DB:      db,
		Profile: prof,
		Ref:     reformulate.New(tb),
		Model:   cost.NewModel(db),
		Cache:   NewAnswerCache(DefaultAnswerCacheSize),
	}
}

// InvalidateTBox must be called after swapping in a new TBox: it
// rebuilds the reformulator's axiom indexes and the cost model, and
// bumps the TBox version so cached plans and cover estimates from the
// old ontology can no longer be served. ABox (data) mutations need no
// call here — engine.DB bumps its own version on every mutation and
// the cache keys include it.
func (a *Answerer) InvalidateTBox() {
	a.Ref = reformulate.New(a.TBox)
	a.Model = cost.NewModel(a.DB)
	a.tboxVer.Add(1)
	// Backends with their own caches (the shard backend's per-shard
	// plan/result LRUs) key on the data version only — a TBox swap must
	// flush them explicitly.
	if pc, ok := a.Backend.(interface{ PurgeCache() }); ok {
		pc.PurgeCache()
	}
}

// searchOpts returns the configured search options with the shared
// cover-estimate memo wired in (unless the caller set their own, or
// disabled caching entirely by setting Cache to nil — the memo's
// lifetime is tied to the cache's versioned keys).
func (a *Answerer) searchOpts() search.Options {
	opts := a.SearchOpts
	if opts.Memo == nil && a.Cache != nil {
		opts.Memo = a.currentMemo()
	}
	return opts
}

// backend returns the configured execution backend, defaulting to the
// native streaming engine.
func (a *Answerer) backend() plan.Backend {
	if a.Backend != nil {
		return a.Backend
	}
	return engine.NewBackend(a.DB, a.Profile)
}

// currentMemo returns the cross-search estimate memo for the current
// TBox/data versions, dropping stale ones.
func (a *Answerer) currentMemo() *search.Memo {
	tv, dv := a.tboxVer.Load(), a.DB.Version()
	a.memoMu.Lock()
	defer a.memoMu.Unlock()
	if a.memo == nil || a.memoTbox != tv || a.memoData != dv {
		a.memo = search.NewMemo()
		a.memoTbox, a.memoData = tv, dv
	}
	return a.memo
}

// Result reports one strategy's outcome on one query.
type Result struct {
	Strategy Strategy
	Query    query.CQ

	Tuples [][]string

	Cover        cover.Cover
	JUCQ         query.JUCQ
	NumDisjuncts int // total CQs across fragments
	NumFragments int

	// Plan is the logical plan the strategy lowered into — the tree
	// the backend compiled and executed (shared with the cache; do
	// not mutate).
	Plan *plan.Node
	// Explain annotates Plan with the backend's estimates and the
	// actual per-operator row counters of this execution.
	Explain *plan.Explain

	SQL     string
	SQLSize int
	EstCost float64

	SearchTime time.Duration // cover search (zero for fixed strategies and cache hits)
	EvalTime   time.Duration

	// CacheHit reports that the cover, reformulation, SQL, and plan came
	// from the answer cache — only evaluation ran for this request.
	CacheHit bool

	// Search carries the raw GDL/EDL result when applicable (fresh
	// searches only; cache hits skip the search entirely).
	Search *search.Result
}

// Answer runs the strategy end to end: choose a cover, reformulate,
// translate to SQL, enforce the profile's statement limit, and evaluate.
// The front half (everything up to and including planning) is served
// from the answer cache when possible; evaluation always runs against
// the live data.
func (a *Answerer) Answer(q query.CQ, s Strategy) (*Result, error) {
	return a.AnswerWith(q, s, nil)
}

// AnswerWith is Answer with a per-call execution backend override
// (nil selects the Answerer's configured backend). The cache keys by
// backend name, so one Answerer serves requests across backends
// without ever handing a plan compiled by one to another.
func (a *Answerer) AnswerWith(q query.CQ, s Strategy, backend plan.Backend) (*Result, error) {
	if backend == nil {
		backend = a.backend()
	}
	res := &Result{Strategy: s, Query: q}
	var key cacheKey
	if a.Cache != nil {
		key = cacheKey{
			canon:    query.CanonicalKey(q),
			strategy: s,
			tboxVer:  a.tboxVer.Load(),
			dataVer:  a.DB.Version(),
			backend:  backend.Name(),
		}
		if cp, ok := a.Cache.get(key); ok {
			res.CacheHit = true
			return a.execute(cp, res, backend)
		}
	}
	cp, err := a.buildPlan(q, s, res, backend)
	if err != nil {
		return nil, err
	}
	if a.Cache != nil {
		a.Cache.put(key, cp)
	}
	return a.execute(cp, res, backend)
}

// rewritePlan is the IR simplification pass buildPlan applies; a
// variable so tests can substitute a deliberately broken rewrite and
// prove plan.Validate catches its output at plan time.
var rewritePlan = plan.Rewrite

// buildPlan is the cacheable front half of Answer: choose the cover,
// reformulate it, generate the SQL, and plan the evaluation. It fills
// res's search fields (fresh searches only reach here).
func (a *Answerer) buildPlan(q query.CQ, s Strategy, res *Result, backend plan.Backend) (*cachedPlan, error) {
	var c cover.Cover
	switch s {
	case StrategyUCQ, StrategyUCQMin, StrategyUSCQ:
		c = cover.SingleFragment(q)
	case StrategyCroot:
		c = cover.RootCover(q, a.TBox)
	case StrategyGDLRDBMS:
		// The "RDBMS's own estimation" is the executing backend's: a
		// non-native backend (sql, shard) scores candidate covers with
		// its own Estimate, so the search optimizes the plan that will
		// actually run there.
		var est search.Estimator = &search.RDBMSEstimator{DB: a.DB, Profile: a.Profile}
		if backend.Name() != "native" {
			est = &search.BackendEstimator{Backend: backend}
		}
		sr := search.GDL(q, a.TBox, a.Ref, est, a.searchOpts())
		if sr.Err != nil {
			return nil, sr.Err
		}
		c = sr.Cover
		res.Search = &sr
		res.SearchTime = sr.Elapsed
	case StrategyGDLExt:
		sr := search.GDL(q, a.TBox, a.Ref, &search.ExtEstimator{Model: a.Model}, a.searchOpts())
		if sr.Err != nil {
			return nil, sr.Err
		}
		c = sr.Cover
		res.Search = &sr
		res.SearchTime = sr.Elapsed
	case StrategyEDL:
		opts := a.searchOpts()
		if opts.MaxCovers == 0 {
			opts.MaxCovers = 20000 // the paper's A6 cutoff
		}
		sr := search.EDL(q, a.TBox, a.Ref, &search.ExtEstimator{Model: a.Model}, opts)
		if sr.Err != nil {
			return nil, sr.Err
		}
		c = sr.Cover
		res.Search = &sr
		res.SearchTime = sr.Elapsed
	default:
		return nil, fmt.Errorf("core: unknown strategy %q", s)
	}
	cp := &cachedPlan{cover: c, numFragments: len(c.Frags), searchTime: res.SearchTime}

	if s == StrategyUSCQ {
		js, err := c.ReformulateJUSCQ(a.Ref)
		if err != nil {
			return nil, err
		}
		for _, sub := range js.Subs {
			cp.numDisjuncts += len(sub.Disjuncts)
		}
		cp.sql = sqlgen.JUSCQ(js, sqlgen.Options{Layout: a.DB.Layout})
		cp.ir = plan.FromJUSCQ(js)
	} else {
		j, err := c.ReformulateJUCQ(a.Ref)
		if err != nil {
			return nil, err
		}
		if s == StrategyUCQMin {
			// §2.3: evaluate the containment-minimized UCQ instead.
			m, err := a.Ref.ReformulateMinimal(q)
			if err != nil {
				return nil, err
			}
			j.Subs = []query.UCQ{m}
		}
		cp.jucq = j
		for _, sub := range j.Subs {
			cp.numDisjuncts += len(sub.Disjuncts)
		}
		cp.sql = sqlgen.JUCQ(j, sqlgen.Options{Layout: a.DB.Layout})
		cp.ir = plan.FromJUCQ(j)
	}
	// Backend-neutral IR simplification (single-arm union collapse,
	// nested project merge) — applied here so every backend compiles
	// the same rewritten tree the search estimators scored.
	// rewritePlan is a variable only so tests can stand in a broken
	// rewrite and assert plan.Validate rejects its output.
	cp.ir = rewritePlan(cp.ir)
	// Machine-checked invariants on the rewritten tree: a bad lowering
	// or a buggy rewrite rule fails here, before any backend compiles
	// it — not as silently wrong rows.
	if err := plan.Validate(cp.ir); err != nil {
		return nil, err
	}
	exec, err := backend.Compile(cp.ir)
	if err != nil {
		return nil, err
	}
	cp.exec = exec
	return cp, nil
}

// execute runs a (possibly cached) plan: enforce the profile's
// statement limit, run the compiled executable on the configured
// backend, and fill in the result (tuples, estimate, EXPLAIN).
func (a *Answerer) execute(cp *cachedPlan, res *Result, backend plan.Backend) (*Result, error) {
	res.Cover = cp.cover
	res.NumFragments = cp.numFragments
	res.NumDisjuncts = cp.numDisjuncts
	res.JUCQ = cp.jucq
	res.Plan = cp.ir
	res.SQL = cp.sql
	res.SQLSize = len(cp.sql)
	if err := a.Profile.CheckStatementSize(res.SQLSize); err != nil {
		return res, err
	}
	est := cp.exec.Estimate()
	start := time.Now()
	rr, err := cp.exec.Run(a.Workers)
	if err != nil {
		return res, err
	}
	res.EvalTime = time.Since(start)
	res.Tuples = rr.Tuples
	res.EstCost = est.Cost
	res.Explain = rr.Explain
	// Per-backend statistics feedback: hand the run's actuals back to
	// the backend that compiled the plan, so each backend's Estimate
	// self-corrects from its own executions.
	if ob, ok := backend.(plan.Observer); ok {
		ob.Observe(cp.ir, rr.Explain)
	}
	return res, nil
}

// Violation reports a disjointness constraint contradicted by the data.
type Violation struct {
	Axiom   dllite.Axiom
	Witness []string
}

// CheckConsistency verifies T-consistency of the loaded database by
// reformulation: for every negative constraint B1 ⊑ ¬B2, the boolean
// query asking for an individual in both B1 and B2 is answered through
// the engine; a non-empty answer is a violation. This scales to
// databases far beyond what dllite's saturation-based checker handles.
func (a *Answerer) CheckConsistency() ([]Violation, error) {
	var out []Violation
	for _, ax := range a.TBox.NegativeAxioms() {
		q, arity := unsatQuery(ax)
		u, err := a.Ref.Reformulate(q)
		if err != nil {
			return nil, err
		}
		ans := engine.EvaluateUCQ(u, a.DB, a.Profile)
		if len(ans.Tuples) > 0 {
			w := ans.Tuples[0][:arity]
			out = append(out, Violation{Axiom: ax, Witness: w})
		}
	}
	return out, nil
}

// unsatQuery builds the violation witness query of a negative axiom.
func unsatQuery(ax dllite.Axiom) (query.CQ, int) {
	x, y := query.Var("x"), query.Var("y")
	conceptAtom := func(c dllite.Concept, primary, spare query.Term) query.Atom {
		if !c.Exists {
			return query.ConceptAtom(c.Name, primary)
		}
		if c.Role.Inv {
			return query.RoleAtom(c.Role.Name, spare, primary)
		}
		return query.RoleAtom(c.Role.Name, primary, spare)
	}
	switch ax.Kind {
	case dllite.ConceptDisjointness:
		a1 := conceptAtom(ax.LC, x, query.Var("w1"))
		a2 := conceptAtom(ax.RC, x, query.Var("w2"))
		return query.CQ{Name: "unsat", Head: []query.Term{x}, Atoms: []query.Atom{a1, a2}}, 1
	default: // RoleDisjointness
		s1, o1 := x, y
		if ax.LR.Inv {
			s1, o1 = y, x
		}
		s2, o2 := x, y
		if ax.RR.Inv {
			s2, o2 = y, x
		}
		return query.CQ{Name: "unsat", Head: []query.Term{x, y}, Atoms: []query.Atom{
			query.RoleAtom(ax.LR.Name, s1, o1),
			query.RoleAtom(ax.RR.Name, s2, o2),
		}}, 2
	}
}

// CompareStrategies answers q under every given strategy; per-strategy
// failures (e.g. statement too long) come back in errs so callers can
// distinguish "slow" from "failed", exactly like Figures 2–3.
func (a *Answerer) CompareStrategies(q query.CQ, strategies []Strategy) (results []*Result, errs []error) {
	results = make([]*Result, len(strategies))
	errs = make([]error, len(strategies))
	for i, s := range strategies {
		results[i], errs[i] = a.Answer(q, s)
	}
	return results, errs
}
