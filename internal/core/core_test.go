package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/dllite"
	"repro/internal/engine"
	"repro/internal/query"
)

const paperTBox = `
PhDStudent <= Researcher
exists worksWith <= Researcher
exists worksWith- <= Researcher
worksWith <= worksWith-
role: supervisedBy <= worksWith
exists supervisedBy <= PhDStudent
PhDStudent <= not exists supervisedBy-
`

const paperABox = `
worksWith(Ioana, Francois)
supervisedBy(Damian, Ioana)
supervisedBy(Damian, Francois)
`

func answerer(t *testing.T, layout engine.Layout, prof *engine.Profile) *Answerer {
	t.Helper()
	tb := dllite.MustParseTBox(paperTBox)
	db := engine.NewDB(layout)
	db.LoadABox(dllite.MustParseABox(paperABox))
	return New(tb, db, prof)
}

// TestAllStrategiesAgreeOnExample3: every strategy answers {Damian} to
// the paper's Example 3 query, on both layouts.
func TestAllStrategiesAgreeOnExample3(t *testing.T) {
	q := query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(y, x)")
	for _, layout := range []engine.Layout{engine.LayoutSimple, engine.LayoutRDF} {
		a := answerer(t, layout, engine.ProfilePostgres())
		for _, s := range Strategies() {
			res, err := a.Answer(q, s)
			if err != nil {
				t.Fatalf("%v/%s: %v", layout, s, err)
			}
			if len(res.Tuples) != 1 || res.Tuples[0][0] != "Damian" {
				t.Errorf("%v/%s: answer = %v, want [Damian]", layout, s, res.Tuples)
			}
			if res.SQLSize == 0 || res.SQL == "" {
				t.Errorf("%v/%s: SQL not generated", layout, s)
			}
			if res.NumFragments == 0 {
				t.Errorf("%v/%s: fragments not reported", layout, s)
			}
		}
	}
}

// TestUCQMatchesPaperSizes: the UCQ strategy reports the Table 5 size.
func TestUCQMatchesPaperSizes(t *testing.T) {
	a := answerer(t, engine.LayoutSimple, engine.ProfilePostgres())
	q := query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(y, x)")
	res, err := a.Answer(q, StrategyUCQ)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumDisjuncts != 10 {
		t.Errorf("UCQ has %d disjuncts, want 10 (Table 5)", res.NumDisjuncts)
	}
	if res.NumFragments != 1 {
		t.Errorf("UCQ uses %d fragments", res.NumFragments)
	}
}

// TestStatementTooLong: an artificially tiny limit turns answers into
// the DB2 failure mode, with the partial Result still describing the
// attempted statement.
func TestStatementTooLong(t *testing.T) {
	prof := engine.ProfileDB2()
	prof.MaxStatementBytes = 64
	a := answerer(t, engine.LayoutSimple, prof)
	q := query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(y, x)")
	res, err := a.Answer(q, StrategyUCQ)
	if err == nil {
		t.Fatal("expected statement-too-long failure")
	}
	var tooLong *engine.StatementTooLongError
	if !errors.As(err, &tooLong) {
		t.Fatalf("error type = %T", err)
	}
	if res == nil || res.SQLSize <= 64 {
		t.Error("partial result must report the statement size")
	}
}

// TestConsistencyCheck: the paper KB is consistent; adding a
// supervising PhD student violates (T7).
func TestConsistencyCheck(t *testing.T) {
	a := answerer(t, engine.LayoutSimple, engine.ProfileDB2())
	v, err := a.CheckConsistency()
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("paper KB must be consistent, got %v", v)
	}
	// Damian supervises someone → he is in ∃supervisedBy⁻, but he is a
	// PhDStudent (entailed): violation of (T7).
	tb := dllite.MustParseTBox(paperTBox)
	db := engine.NewDB(engine.LayoutSimple)
	db.LoadABox(dllite.MustParseABox(paperABox + "supervisedBy(Alice, Damian)\n"))
	a2 := New(tb, db, engine.ProfileDB2())
	v, err = a2.CheckConsistency()
	if err != nil {
		t.Fatal(err)
	}
	if len(v) == 0 {
		t.Fatal("violation must be detected through reformulation")
	}
	if v[0].Axiom.Kind != dllite.ConceptDisjointness {
		t.Errorf("violated axiom = %v", v[0].Axiom)
	}
	if len(v[0].Witness) != 1 || v[0].Witness[0] != "Damian" {
		t.Errorf("witness = %v, want [Damian]", v[0].Witness)
	}
}

// TestRoleDisjointnessViaReformulation.
func TestRoleDisjointnessViaReformulation(t *testing.T) {
	tb := dllite.MustParseTBox("role: teaches <= not takes\nrole: mentors <= teaches")
	db := engine.NewDB(engine.LayoutSimple)
	db.LoadABox(dllite.MustParseABox("mentors(a, b)\ntakes(a, b)"))
	a := New(tb, db, engine.ProfilePostgres())
	v, err := a.CheckConsistency()
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 1 {
		t.Fatalf("want 1 violation (mentors ⊑ teaches ⊑ ¬takes), got %v", v)
	}
}

// TestCompareStrategies: per-strategy errors are isolated.
func TestCompareStrategies(t *testing.T) {
	prof := engine.ProfileDB2()
	prof.MaxStatementBytes = 700 // UCQ SQL exceeds this; Croot fragments too? keep loose
	a := answerer(t, engine.LayoutSimple, prof)
	q := query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(y, x)")
	results, errs := a.CompareStrategies(q, []Strategy{StrategyUCQ, StrategyCroot})
	if len(results) != 2 || len(errs) != 2 {
		t.Fatal("shape mismatch")
	}
	if errs[0] == nil {
		t.Error("UCQ should exceed the tiny limit")
	}
}

// TestUnknownStrategy.
func TestUnknownStrategy(t *testing.T) {
	a := answerer(t, engine.LayoutSimple, engine.ProfilePostgres())
	if _, err := a.Answer(query.MustParseCQ("q(x) <- PhDStudent(x)"), Strategy("bogus")); err == nil {
		t.Fatal("unknown strategy must error")
	}
}

// TestGDLReportsSearch: search metadata present for GDL strategies.
func TestGDLReportsSearch(t *testing.T) {
	a := answerer(t, engine.LayoutSimple, engine.ProfilePostgres())
	q := query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(y, x)")
	res, err := a.Answer(q, StrategyGDLExt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Search == nil || res.Search.ExploredLq+res.Search.ExploredGq == 0 {
		t.Error("GDL must report explored covers")
	}
	if !strings.HasPrefix(string(res.Strategy), "gdl") {
		t.Error("strategy label wrong")
	}
}

// TestUSCQSmallerSQL: the factorized reformulation's SQL is never
// larger than the UCQ's on the same query.
func TestUSCQSmallerSQL(t *testing.T) {
	a := answerer(t, engine.LayoutSimple, engine.ProfilePostgres())
	q := query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(y, x)")
	ucq, err := a.Answer(q, StrategyUCQ)
	if err != nil {
		t.Fatal(err)
	}
	uscq, err := a.Answer(q, StrategyUSCQ)
	if err != nil {
		t.Fatal(err)
	}
	if uscq.NumDisjuncts > ucq.NumDisjuncts {
		t.Errorf("USCQ has more disjuncts (%d) than UCQ (%d)", uscq.NumDisjuncts, ucq.NumDisjuncts)
	}
}
