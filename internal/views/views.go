// Package views implements the paper's stated future-work extension
// (Section 7): "efficient query answering using materialized CQ views,
// which may partially or completely rewrite the CQs appearing in the
// reformulated fragments."
//
// A Manager caches the materialized result of every fragment
// reformulation it evaluates, keyed by the fragment query (head and
// body, variable names included — JUCQ joins are name-sensitive). When
// a later query's cover contains the same fragment — reruns of the same
// query, or different queries sharing a star pattern like the paper's
// A3–A6 family — the WITH clause is answered from the view instead of
// being re-evaluated. Views are bound to one finalized database; they
// are invalidated wholesale by Reset after updates.
package views

import (
	"strings"

	"repro/internal/cover"
	"repro/internal/engine"
	"repro/internal/query"
	"repro/internal/reformulate"
)

// Manager caches materialized fragment relations over one database.
type Manager struct {
	DB      *engine.DB
	Profile *engine.Profile

	views map[string]*engine.Relation

	// Hits and Misses count cache outcomes for reporting and tests.
	Hits, Misses int
}

// NewManager builds an empty view cache over the database.
func NewManager(db *engine.DB, prof *engine.Profile) *Manager {
	return &Manager{DB: db, Profile: prof, views: make(map[string]*engine.Relation)}
}

// Reset drops every cached view (call after data updates).
func (m *Manager) Reset() {
	m.views = make(map[string]*engine.Relation)
	m.Hits, m.Misses = 0, 0
}

// Size returns the number of cached views.
func (m *Manager) Size() int { return len(m.views) }

// fragmentKey identifies a fragment query literally (name excluded):
// the cached relation's schema is the fragment's head variable names,
// so only an identical head/body pair may reuse it.
func fragmentKey(fq query.CQ) string {
	var b strings.Builder
	for _, h := range fq.Head {
		b.WriteString(h.String())
		b.WriteByte(',')
	}
	b.WriteString("<-")
	for _, a := range fq.Atoms {
		b.WriteString(a.String())
		b.WriteByte('&')
	}
	return b.String()
}

// MaterializeFragment returns the relation of one fragment query's UCQ
// reformulation, from cache when possible.
func (m *Manager) MaterializeFragment(fq query.CQ, u query.UCQ) *engine.Relation {
	key := fragmentKey(fq)
	if rel, ok := m.views[key]; ok {
		m.Hits++
		return rel
	}
	m.Misses++
	rel := engine.ExecUCQ(engine.PlanUCQ(u, m.DB, m.Profile), m.DB)
	m.views[key] = rel
	return rel
}

// AnswerCover evaluates a cover-based reformulation with view reuse:
// every fragment is materialized through the cache, then joined and
// projected exactly as engine.ExecJUCQ would.
func (m *Manager) AnswerCover(c cover.Cover, ref *reformulate.Reformulator) ([][]string, error) {
	frags := make([]*engine.Relation, len(c.Frags))
	for i := range c.Frags {
		fq := c.FragmentQuery(i)
		u, err := ref.Reformulate(fq)
		if err != nil {
			return nil, err
		}
		frags[i] = m.MaterializeFragment(fq, u)
	}
	rel := engine.JoinAndProject(frags, c.Q.Head, m.DB)
	return rel.Decode(m.DB.Dict), nil
}
