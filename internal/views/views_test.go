package views

import (
	"strings"
	"testing"

	"repro/internal/cover"
	"repro/internal/dllite"
	"repro/internal/engine"
	"repro/internal/lubm"
	"repro/internal/reformulate"
)

func setup(t *testing.T) (*dllite.TBox, *engine.DB, *reformulate.Reformulator, *Manager) {
	t.Helper()
	tb := lubm.TBox()
	db := engine.NewDB(engine.LayoutSimple)
	lubm.Generate(lubm.Config{Universities: 1, Seed: 3}, db)
	db.Finalize()
	return tb, db, reformulate.New(tb), NewManager(db, engine.ProfilePostgres())
}

// TestViewsMatchDirectEvaluation: answering through the view cache is
// answer-identical to engine.ExecJUCQ for every workload query's root
// cover.
func TestViewsMatchDirectEvaluation(t *testing.T) {
	tb, db, ref, mgr := setup(t)
	for _, q := range lubm.Queries() {
		c := cover.RootCover(q, tb)
		viaViews, err := mgr.AnswerCover(c, ref)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		j, err := c.ReformulateJUCQ(ref)
		if err != nil {
			t.Fatal(err)
		}
		direct := engine.EvaluateJUCQ(j, db, engine.ProfilePostgres())
		if len(viaViews) != len(direct.Tuples) {
			t.Errorf("%s: views gave %d answers, direct gave %d", q.Name, len(viaViews), len(direct.Tuples))
			continue
		}
		seen := make(map[string]bool, len(direct.Tuples))
		for _, tu := range direct.Tuples {
			seen[strings.Join(tu, "\x00")] = true
		}
		for _, tu := range viaViews {
			if !seen[strings.Join(tu, "\x00")] {
				t.Errorf("%s: extra tuple %v via views", q.Name, tu)
			}
		}
	}
}

// TestViewReuseOnRepeat: the second run of the same cover is all hits.
func TestViewReuseOnRepeat(t *testing.T) {
	tb, _, ref, mgr := setup(t)
	q := lubm.Queries()[2] // Q3
	c := cover.RootCover(q, tb)
	if _, err := mgr.AnswerCover(c, ref); err != nil {
		t.Fatal(err)
	}
	missesAfterFirst := mgr.Misses
	if mgr.Hits != 0 {
		t.Fatalf("first run must be all misses, hits=%d", mgr.Hits)
	}
	if _, err := mgr.AnswerCover(c, ref); err != nil {
		t.Fatal(err)
	}
	if mgr.Misses != missesAfterFirst {
		t.Errorf("second run must not miss (misses %d -> %d)", missesAfterFirst, mgr.Misses)
	}
	if mgr.Hits != len(c.Frags) {
		t.Errorf("second run hits = %d, want %d", mgr.Hits, len(c.Frags))
	}
}

// TestViewSharingAcrossStarFamily: A3 ⊂ A4 ⊂ A5 ⊂ A6 share fragment
// queries, so answering the family in sequence reuses views — the
// cross-query payoff the paper's future work aims at.
func TestViewSharingAcrossStarFamily(t *testing.T) {
	tb, _, ref, mgr := setup(t)
	for _, q := range lubm.StarQueries() {
		c := cover.RootCover(q, tb)
		if _, err := mgr.AnswerCover(c, ref); err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
	}
	if mgr.Hits == 0 {
		t.Errorf("star family shares fragments; expected cache hits, got 0 (misses=%d)", mgr.Misses)
	}
	// A3's three fragments recur in A4, A5, A6: ≥ 3+4+5 = at least the
	// shared singleton fragments hit.
	if mgr.Hits < 9 {
		t.Errorf("hits = %d, want ≥ 9 across the A3–A6 family", mgr.Hits)
	}
}

// TestReset drops the cache.
func TestReset(t *testing.T) {
	tb, _, ref, mgr := setup(t)
	c := cover.RootCover(lubm.Queries()[0], tb)
	if _, err := mgr.AnswerCover(c, ref); err != nil {
		t.Fatal(err)
	}
	if mgr.Size() == 0 {
		t.Fatal("views not cached")
	}
	mgr.Reset()
	if mgr.Size() != 0 || mgr.Hits != 0 || mgr.Misses != 0 {
		t.Error("reset must clear cache and counters")
	}
}

// TestFragmentKeyNameInsensitive: fragment names don't affect reuse,
// but variable names do.
func TestFragmentKeyNameInsensitive(t *testing.T) {
	q1 := lubm.Queries()[0]
	tb := lubm.TBox()
	c := cover.RootCover(q1, tb)
	f := c.FragmentQuery(0)
	g := f
	g.Name = "renamed"
	if fragmentKey(f) != fragmentKey(g) {
		t.Error("query name must not affect the view key")
	}
}
