package sqlexec

// The SQL-text implementation of plan.Backend: the logical plan is
// extracted back into its dialect, rendered to the exact SQL the
// paper would ship to the RDBMS (sqlgen), and executed by parsing and
// evaluating that text (Exec) — end-to-end through the statement
// surface, exactly what the old Answerer.ViaSQL switch did. Cost
// estimation delegates to the native engine backend: the SQL path has
// no optimizer of its own, and sharing the estimator keeps the two
// backends' Estimate comparable on identical plans.

import (
	"fmt"
	"sync"

	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/sqlgen"
)

// Backend executes logical plans through their SQL text.
type Backend struct {
	DB      *engine.DB
	Profile *engine.Profile

	// observed is the backend's own cardinality feedback: actual
	// whole-statement output counts per plan, keyed by the plan tree's
	// canonical rendering and versioned by the data (stale observations
	// die with the version). core.Answerer feeds it through Observe.
	mu       sync.Mutex
	observed map[obsKey]float64
}

type obsKey struct {
	plan    string
	dataVer uint64
}

// NewBackend wires the SQL backend over a database and profile.
func NewBackend(db *engine.DB, prof *engine.Profile) *Backend {
	return &Backend{DB: db, Profile: prof, observed: make(map[obsKey]float64)}
}

// Observe records one execution's actual output cardinality — the only
// counter the SQL surface reports (a real RDBMS exposes no per-operator
// actuals without instrumentation). It implements plan.Observer.
func (b *Backend) Observe(n *plan.Node, ex *plan.Explain) {
	if n == nil || ex == nil || ex.Root == nil || ex.Root.ActualRows < 0 {
		return
	}
	// Version() takes the DB's stats lock; read it before taking b.mu
	// so the two locks are never held together (lockorder analyzer).
	ver := b.DB.Version()
	b.mu.Lock()
	b.observed[obsKey{n.String(), ver}] = float64(ex.Root.ActualRows)
	b.mu.Unlock()
}

// Name identifies the backend in cache keys and EXPLAIN output.
func (b *Backend) Name() string { return "sql" }

// Compile extracts the plan, generates its SQL, and checks that the
// executor supports the layout (the SQL schema mirrors the simple
// layout's tables only).
func (b *Backend) Compile(n *plan.Node) (plan.Executable, error) {
	if b.DB.Layout != engine.LayoutSimple {
		return nil, fmt.Errorf("sqlexec: backend requires the simple layout, have %s", b.DB.Layout)
	}
	if err := plan.Validate(n); err != nil {
		return nil, err
	}
	lo, err := plan.Extract(n)
	if err != nil {
		return nil, err
	}
	var sql string
	switch lo.Kind {
	case plan.KindUCQ:
		u := lo.UCQ
		sql = sqlgen.JUCQ(query.JUCQ{Name: u.Name, Head: u.Head(), Subs: []query.UCQ{u}}, sqlgen.Options{Layout: b.DB.Layout})
	case plan.KindJUCQ:
		sql = sqlgen.JUCQ(lo.JUCQ, sqlgen.Options{Layout: b.DB.Layout})
	case plan.KindUSCQ:
		u := lo.USCQ
		head := u.Expand().Head()
		sql = sqlgen.JUSCQ(query.JUSCQ{Name: u.Name, Head: head, Subs: []query.USCQ{u}}, sqlgen.Options{Layout: b.DB.Layout})
	default:
		sql = sqlgen.JUSCQ(lo.JUSCQ, sqlgen.Options{Layout: b.DB.Layout})
	}
	return &sqlExecutable{b: b, node: n, sql: sql, est: b.Estimate(n)}, nil
}

// Estimate starts from the native engine's plan costing (the SQL path
// executes the same logical plan and has no optimizer of its own) and
// then overrides the cardinality with the backend's own observation of
// this exact plan on the current data, when one exists — the SQL
// path's feedback loop, independent of the native Profile.Feedback.
func (b *Backend) Estimate(n *plan.Node) plan.Estimate {
	est := engine.NewBackend(b.DB, b.Profile).Estimate(n)
	ver := b.DB.Version()
	b.mu.Lock()
	card, ok := b.observed[obsKey{n.String(), ver}]
	b.mu.Unlock()
	if ok {
		est.Card = card
	}
	return est
}

// sqlExecutable is one compiled statement.
type sqlExecutable struct {
	b    *Backend
	node *plan.Node
	sql  string
	est  plan.Estimate
}

// Estimate returns the compile-time estimate.
func (e *sqlExecutable) Estimate() plan.Estimate { return e.est }

// SQL exposes the generated statement (diagnostics and tests).
func (e *sqlExecutable) SQL() string { return e.sql }

// Run parses and evaluates the statement. The SQL surface reports no
// per-operator counters, so only the statement's total output is
// observed; workers is ignored (a real RDBMS owns its parallelism).
func (e *sqlExecutable) Run(workers int) (*plan.RunResult, error) {
	rel, err := Exec(e.sql, e.b.DB)
	if err != nil {
		return nil, err
	}
	root, _ := plan.Skeleton(e.node)
	root.EstRows = e.est.Card
	root.ActualRows = int64(len(rel.Rows))
	ex := &plan.Explain{
		Backend: e.b.Name(),
		EstCost: e.est.Cost,
		EstCard: e.est.Card,
		SQL:     e.sql,
		Root:    root,
	}
	return &plan.RunResult{Tuples: rel.Decode(e.b.DB.Dict), Explain: ex}, nil
}
