// Package sqlexec is the engine's SQL front-end: it parses the SQL
// dialect produced by package sqlgen (WITH, SELECT DISTINCT, UNION,
// inline subselects, equality predicates) and executes it against a
// simple-layout engine.DB. It closes the paper's loop — reformulations
// are shipped to the RDBMS *as SQL text* — and serves as an end-to-end
// oracle: sqlgen → sqlexec must agree with the engine's native
// evaluation (property-tested).
//
// Scope: the simple layout's grammar. RDF-layout SQL (hashed-column
// CASE expansions) is generated for statement-size accounting and
// executed natively by the engine; parsing it is deliberately out of
// scope (DESIGN.md §6).
package sqlexec

import (
	"fmt"
	"strings"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokString // 'literal'
	tokNumber
	tokSymbol // ( ) , = .
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased
	pos  int
}

var keywords = map[string]bool{
	"WITH": true, "AS": true, "SELECT": true, "DISTINCT": true,
	"FROM": true, "WHERE": true, "AND": true, "OR": true, "UNION": true,
}

// lex tokenizes the statement.
func lex(in string) ([]token, error) {
	var out []token
	i := 0
	for i < len(in) {
		c := in[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			j := i + 1
			for j < len(in) && in[j] != '\'' {
				j++
			}
			if j == len(in) {
				return nil, fmt.Errorf("sqlexec: unterminated string at %d", i)
			}
			out = append(out, token{kind: tokString, text: in[i+1 : j], pos: i})
			i = j + 1
		case c == '(' || c == ')' || c == ',' || c == '=' || c == '.':
			out = append(out, token{kind: tokSymbol, text: string(c), pos: i})
			i++
		case c >= '0' && c <= '9':
			j := i
			for j < len(in) && in[j] >= '0' && in[j] <= '9' {
				j++
			}
			out = append(out, token{kind: tokNumber, text: in[i:j], pos: i})
			i = j
		case isIdentStart(c):
			j := i
			for j < len(in) && isIdentPart(in[j]) {
				j++
			}
			word := in[i:j]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				out = append(out, token{kind: tokKeyword, text: upper, pos: i})
			} else {
				out = append(out, token{kind: tokIdent, text: word, pos: i})
			}
			i = j
		default:
			return nil, fmt.Errorf("sqlexec: unexpected character %q at %d", c, i)
		}
	}
	out = append(out, token{kind: tokEOF, pos: len(in)})
	return out, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
