package sqlexec

// Regression test for the backend's lock ordering: Observe and
// Estimate must read DB.Version() (which takes the DB's stats lock)
// before taking b.mu, never while holding it — the nested-acquisition
// shape internal/lint's lockorder analyzer flags. Run under -race,
// concurrent Observe/Estimate against concurrent stats access must
// neither race nor deadlock.

import (
	"sync"
	"testing"

	"repro/internal/dllite"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/query"
)

func TestObserveEstimateConcurrent(t *testing.T) {
	db := engine.NewDB(engine.LayoutSimple)
	db.LoadABox(dllite.MustParseABox(`
A(c1)
R(c1, c2)
`))
	b := NewBackend(db, engine.ProfilePostgres())

	cq := query.CQ{
		Name: "q",
		Head: []query.Term{query.Var("x")},
		Atoms: []query.Atom{
			{Pred: "A", Args: []query.Term{query.Var("x")}},
		},
	}
	n := plan.FromCQ(cq)
	ex := &plan.Explain{Root: &plan.ExplainNode{ActualRows: 7}}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				b.Observe(n, ex)
				b.Estimate(n)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				db.Version()
				db.Stats()
			}
		}()
	}
	wg.Wait()

	est := b.Estimate(n)
	if est.Card != 7 {
		t.Fatalf("Estimate.Card = %v, want observed 7", est.Card)
	}
}
