package sqlexec

import "fmt"

// AST for the sqlgen dialect.

// Stmt is a full statement: optional WITH clauses, then a union body.
type Stmt struct {
	CTEs []CTE
	Body *Union
}

// CTE is one WITH binding: name AS (union).
type CTE struct {
	Name string
	Body *Union
}

// Union is one or more SELECTs joined by UNION (set semantics).
type Union struct {
	Selects []*Select
}

// Select is SELECT [DISTINCT] items FROM sources [WHERE conds].
type Select struct {
	Distinct bool
	Items    []Item
	Sources  []Source
	Where    []Cond // conjunction of equality predicates
}

// Item is a projection item: a column reference or a literal, with an
// optional alias ("t0.id AS h0", "'lit' AS h1", "1").
type Item struct {
	Ref   *ColRef
	Lit   string // literal string value when Ref is nil and IsOne false
	IsOne bool   // the constant 1 used by boolean heads
	Alias string
}

// ColRef is qualified (t0.id) or bare (id, inside subselects).
type ColRef struct {
	Qual string // may be empty
	Col  string
}

// Source is a table or an inline subselect, with an alias.
type Source struct {
	Table string // table or CTE name when Sub is nil
	Sub   *Union
	Alias string
}

// Cond is an equality predicate between column refs and/or literals.
type Cond struct {
	L, R   *ColRef
	LLit   string
	RLit   string
	LIsLit bool
	RIsLit bool
}

// Parse parses a statement of the sqlgen dialect.
func Parse(in string) (*Stmt, error) {
	toks, err := lex(in)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.stmt()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("trailing input %q", p.cur().text)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqlexec: at offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.cur().kind == kind && p.cur().text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) error {
	if !p.accept(kind, text) {
		return p.errf("expected %q, found %q", text, p.cur().text)
	}
	return nil
}

func (p *parser) stmt() (*Stmt, error) {
	s := &Stmt{}
	if p.accept(tokKeyword, "WITH") {
		for {
			if p.cur().kind != tokIdent {
				return nil, p.errf("expected CTE name")
			}
			name := p.next().text
			if err := p.expect(tokKeyword, "AS"); err != nil {
				return nil, err
			}
			if err := p.expect(tokSymbol, "("); err != nil {
				return nil, err
			}
			body, err := p.union()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			s.CTEs = append(s.CTEs, CTE{Name: name, Body: body})
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	body, err := p.union()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

func (p *parser) union() (*Union, error) {
	u := &Union{}
	for {
		sel, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		u.Selects = append(u.Selects, sel)
		if !p.accept(tokKeyword, "UNION") {
			return u, nil
		}
	}
}

func (p *parser) selectStmt() (*Select, error) {
	if err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	s := &Select{}
	s.Distinct = p.accept(tokKeyword, "DISTINCT")
	for {
		item, err := p.item()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	for {
		src, err := p.source()
		if err != nil {
			return nil, err
		}
		s.Sources = append(s.Sources, src)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "WHERE") {
		for {
			c, err := p.cond()
			if err != nil {
				return nil, err
			}
			s.Where = append(s.Where, c)
			if !p.accept(tokKeyword, "AND") {
				break
			}
		}
	}
	return s, nil
}

func (p *parser) item() (Item, error) {
	var it Item
	switch p.cur().kind {
	case tokNumber:
		if p.next().text != "1" {
			return it, p.errf("only the literal 1 is supported in projections")
		}
		it.IsOne = true
	case tokString:
		it.Lit = p.next().text
	case tokIdent:
		ref, err := p.colRef()
		if err != nil {
			return it, err
		}
		it.Ref = ref
	default:
		return it, p.errf("expected projection item, found %q", p.cur().text)
	}
	if p.accept(tokKeyword, "AS") {
		if p.cur().kind != tokIdent {
			return it, p.errf("expected alias")
		}
		it.Alias = p.next().text
	}
	return it, nil
}

func (p *parser) colRef() (*ColRef, error) {
	if p.cur().kind != tokIdent {
		return nil, p.errf("expected column reference")
	}
	first := p.next().text
	if p.accept(tokSymbol, ".") {
		if p.cur().kind != tokIdent {
			return nil, p.errf("expected column after '.'")
		}
		return &ColRef{Qual: first, Col: p.next().text}, nil
	}
	return &ColRef{Col: first}, nil
}

func (p *parser) source() (Source, error) {
	var src Source
	if p.accept(tokSymbol, "(") {
		sub, err := p.union()
		if err != nil {
			return src, err
		}
		if err := p.expect(tokSymbol, ")"); err != nil {
			return src, err
		}
		src.Sub = sub
	} else {
		if p.cur().kind != tokIdent {
			return src, p.errf("expected table name")
		}
		src.Table = p.next().text
	}
	// optional alias (bare identifier)
	if p.cur().kind == tokIdent {
		src.Alias = p.next().text
	}
	return src, nil
}

func (p *parser) cond() (Cond, error) {
	var c Cond
	switch p.cur().kind {
	case tokString:
		c.LIsLit = true
		c.LLit = p.next().text
	case tokIdent:
		ref, err := p.colRef()
		if err != nil {
			return c, err
		}
		c.L = ref
	default:
		return c, p.errf("expected condition operand")
	}
	if err := p.expect(tokSymbol, "="); err != nil {
		return c, err
	}
	switch p.cur().kind {
	case tokString:
		c.RIsLit = true
		c.RLit = p.next().text
	case tokIdent:
		ref, err := p.colRef()
		if err != nil {
			return c, err
		}
		c.R = ref
	default:
		return c, p.errf("expected condition operand")
	}
	return c, nil
}
