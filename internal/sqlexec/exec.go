package sqlexec

import (
	"fmt"
	"strings"

	"repro/internal/engine"
)

// rel is an intermediate relation: named columns over dictionary ids.
type rel struct {
	cols []string
	rows [][]int64
}

func (r *rel) colIndex(name string) int {
	for i, c := range r.cols {
		if c == name {
			return i
		}
	}
	return -1
}

// resolve finds the column for a reference: exact "qual.col" when
// qualified, otherwise a unique ".col" suffix (or exact bare name).
func (r *rel) resolve(ref *ColRef) (int, error) {
	if ref.Qual != "" {
		if i := r.colIndex(ref.Qual + "." + ref.Col); i >= 0 {
			return i, nil
		}
		return -1, fmt.Errorf("sqlexec: unknown column %s.%s", ref.Qual, ref.Col)
	}
	if i := r.colIndex(ref.Col); i >= 0 {
		return i, nil
	}
	found := -1
	for i, c := range r.cols {
		if strings.HasSuffix(c, "."+ref.Col) {
			if found >= 0 {
				return -1, fmt.Errorf("sqlexec: ambiguous column %s", ref.Col)
			}
			found = i
		}
	}
	if found < 0 {
		return -1, fmt.Errorf("sqlexec: unknown column %s", ref.Col)
	}
	return found, nil
}

// Exec parses and executes a statement over a simple-layout database,
// returning a decoded engine.Relation.
func Exec(sql string, db *engine.DB) (*engine.Relation, error) {
	if db.Layout != engine.LayoutSimple {
		return nil, fmt.Errorf("sqlexec: only the simple layout is executable from SQL (got %v)", db.Layout)
	}
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return Run(stmt, db)
}

// Run executes a parsed statement.
func Run(stmt *Stmt, db *engine.DB) (*engine.Relation, error) {
	env := &execEnv{db: db, ctes: make(map[string]*rel)}
	for _, cte := range stmt.CTEs {
		r, err := env.union(cte.Body)
		if err != nil {
			return nil, fmt.Errorf("in WITH %s: %w", cte.Name, err)
		}
		env.ctes[cte.Name] = r
	}
	r, err := env.union(stmt.Body)
	if err != nil {
		return nil, err
	}
	return &engine.Relation{Schema: r.cols, Rows: r.rows}, nil
}

type execEnv struct {
	db   *engine.DB
	ctes map[string]*rel
}

func (e *execEnv) union(u *Union) (*rel, error) {
	var out *rel
	for _, sel := range u.Selects {
		r, err := e.selectStmt(sel)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = &rel{cols: r.cols}
		} else if len(out.cols) != len(r.cols) {
			return nil, fmt.Errorf("sqlexec: UNION arms with different arities (%d vs %d)", len(out.cols), len(r.cols))
		}
		out.rows = append(out.rows, r.rows...)
	}
	if out == nil {
		return &rel{}, nil
	}
	distinct(out)
	return out, nil
}

func distinct(r *rel) {
	seen := make(map[string]bool, len(r.rows))
	dst := r.rows[:0]
	var key strings.Builder
	for _, row := range r.rows {
		key.Reset()
		for _, v := range row {
			fmt.Fprintf(&key, "%x|", v)
		}
		k := key.String()
		if !seen[k] {
			seen[k] = true
			dst = append(dst, row)
		}
	}
	r.rows = dst
}

// sourceRel materializes one FROM source with columns prefixed by its
// effective alias.
func (e *execEnv) sourceRel(src Source) (*rel, error) {
	alias := src.Alias
	var base *rel
	switch {
	case src.Sub != nil:
		r, err := e.union(src.Sub)
		if err != nil {
			return nil, err
		}
		base = r
	case e.ctes[src.Table] != nil:
		c := e.ctes[src.Table]
		base = &rel{cols: c.cols, rows: c.rows}
		if alias == "" {
			alias = src.Table
		}
	case strings.HasPrefix(src.Table, "c_"):
		name := src.Table[2:]
		var rows [][]int64
		for _, id := range e.db.ConceptMembers(name) {
			rows = append(rows, []int64{id})
		}
		base = &rel{cols: []string{"id"}, rows: rows}
		if alias == "" {
			alias = src.Table
		}
	case strings.HasPrefix(src.Table, "r_"):
		name := src.Table[2:]
		var rows [][]int64
		e.db.RolePairs(name, func(s, o int64) {
			rows = append(rows, []int64{s, o})
		})
		base = &rel{cols: []string{"s", "o"}, rows: rows}
		if alias == "" {
			alias = src.Table
		}
	default:
		return nil, fmt.Errorf("sqlexec: unknown table %q", src.Table)
	}
	if alias == "" {
		return base, nil
	}
	cols := make([]string, len(base.cols))
	for i, c := range base.cols {
		// strip any previous qualification; the alias renames the source
		if j := strings.LastIndexByte(c, '.'); j >= 0 {
			c = c[j+1:]
		}
		cols[i] = alias + "." + c
	}
	return &rel{cols: cols, rows: base.rows}, nil
}

func (e *execEnv) selectStmt(sel *Select) (*rel, error) {
	// Progressive join over sources, applying WHERE conditions as soon
	// as both operands are available.
	applied := make([]bool, len(sel.Where))
	var cur *rel
	for _, src := range sel.Sources {
		next, err := e.sourceRel(src)
		if err != nil {
			return nil, err
		}
		if cur == nil {
			cur = next
		} else {
			cur, err = e.join(cur, next, sel.Where, applied)
			if err != nil {
				return nil, err
			}
		}
		if cur, err = e.applyFilters(cur, sel.Where, applied); err != nil {
			return nil, err
		}
	}
	if cur == nil {
		return nil, fmt.Errorf("sqlexec: SELECT without sources")
	}
	for i, done := range applied {
		if !done {
			return nil, fmt.Errorf("sqlexec: unsatisfiable condition %d (columns never available)", i)
		}
	}
	// Project.
	out := &rel{}
	type proj struct {
		col   int // column index when isCol
		lit   int64
		isCol bool
		ok    bool // false when a literal is absent from the dictionary
	}
	projs := make([]proj, len(sel.Items))
	for i, it := range sel.Items {
		name := it.Alias
		switch {
		case it.IsOne:
			if name == "" {
				name = "one"
			}
			// Boolean heads project the constant 1; intern it so the
			// row decodes uniformly.
			projs[i] = proj{lit: e.db.Dict.Encode("1"), ok: true}
		case it.Ref == nil:
			if name == "" {
				name = "lit"
			}
			id, found := e.db.Dict.Lookup(it.Lit)
			projs[i] = proj{lit: id, ok: found}
		default:
			if name == "" {
				name = it.Ref.Col
			}
			c, err := cur.resolve(it.Ref)
			if err != nil {
				return nil, err
			}
			projs[i] = proj{col: c, isCol: true, ok: true}
		}
		out.cols = append(out.cols, name)
	}
	for _, row := range cur.rows {
		pr := make([]int64, len(projs))
		ok := true
		for i, p := range projs {
			switch {
			case !p.ok:
				ok = false
			case p.isCol:
				pr[i] = row[p.col]
			default:
				pr[i] = p.lit
			}
			if !ok {
				break
			}
		}
		if ok {
			out.rows = append(out.rows, pr)
		}
	}
	if sel.Distinct {
		distinct(out)
	}
	return out, nil
}

// join hash-joins cur with next on every WHERE equality whose operands
// span the two relations; conditions used are marked applied.
func (e *execEnv) join(cur, next *rel, conds []Cond, applied []bool) (*rel, error) {
	var curIdx, nextIdx []int
	for i, c := range conds {
		if applied[i] || c.LIsLit || c.RIsLit {
			continue
		}
		li, lerr := cur.resolve(c.L)
		ri, rerr := next.resolve(c.R)
		if lerr == nil && rerr == nil {
			curIdx = append(curIdx, li)
			nextIdx = append(nextIdx, ri)
			applied[i] = true
			continue
		}
		// try the swapped orientation
		li2, lerr2 := next.resolve(c.L)
		ri2, rerr2 := cur.resolve(c.R)
		if lerr2 == nil && rerr2 == nil {
			curIdx = append(curIdx, ri2)
			nextIdx = append(nextIdx, li2)
			applied[i] = true
		}
	}
	out := &rel{cols: append(append([]string{}, cur.cols...), next.cols...)}
	key := func(row []int64, idx []int) string {
		var b strings.Builder
		for _, i := range idx {
			fmt.Fprintf(&b, "%x|", row[i])
		}
		return b.String()
	}
	buckets := make(map[string][][]int64, len(next.rows))
	for _, row := range next.rows {
		k := key(row, nextIdx)
		buckets[k] = append(buckets[k], row)
	}
	for _, lrow := range cur.rows {
		for _, rrow := range buckets[key(lrow, curIdx)] {
			row := make([]int64, 0, len(out.cols))
			row = append(row, lrow...)
			row = append(row, rrow...)
			out.rows = append(out.rows, row)
		}
	}
	return out, nil
}

// applyFilters applies every not-yet-applied condition whose operands
// all resolve within cur (literal comparisons and same-source column
// equalities).
func (e *execEnv) applyFilters(cur *rel, conds []Cond, applied []bool) (*rel, error) {
	for i, c := range conds {
		if applied[i] {
			continue
		}
		switch {
		case c.LIsLit && c.RIsLit:
			applied[i] = true
			if c.LLit != c.RLit {
				cur = &rel{cols: cur.cols}
			}
		case c.LIsLit || c.RIsLit:
			ref, lit := c.L, c.RLit
			if c.LIsLit {
				ref, lit = c.R, c.LLit
			}
			col, err := cur.resolve(ref)
			if err != nil {
				continue // column not available yet
			}
			applied[i] = true
			id, found := e.db.Dict.Lookup(lit)
			out := &rel{cols: cur.cols}
			if found {
				for _, row := range cur.rows {
					if row[col] == id {
						out.rows = append(out.rows, row)
					}
				}
			}
			cur = out
		default:
			li, lerr := cur.resolve(c.L)
			ri, rerr := cur.resolve(c.R)
			if lerr != nil || rerr != nil {
				continue
			}
			applied[i] = true
			out := &rel{cols: cur.cols}
			for _, row := range cur.rows {
				if row[li] == row[ri] {
					out.rows = append(out.rows, row)
				}
			}
			cur = out
		}
	}
	return cur, nil
}
