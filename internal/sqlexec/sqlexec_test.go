package sqlexec

import (
	"strings"
	"testing"

	"repro/internal/cover"
	"repro/internal/dllite"
	"repro/internal/engine"
	"repro/internal/lubm"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/reformulate"
	"repro/internal/sqlgen"
)

func testDB(t *testing.T) *engine.DB {
	t.Helper()
	db := engine.NewDB(engine.LayoutSimple)
	db.LoadABox(dllite.MustParseABox(`
PhDStudent(Damian)
Researcher(Ioana)
Researcher(Francois)
worksWith(Ioana, Francois)
supervisedBy(Damian, Ioana)
supervisedBy(Damian, Francois)
`))
	return db
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"SELECT",
		"SELECT DISTINCT FROM c_A",
		"SELECT DISTINCT t0.id",
		"SELECT DISTINCT 2 FROM c_A t0",
		"WITH f1 AS SELECT 1",
		"SELECT DISTINCT t0.id FROM c_A t0 WHERE",
		"SELECT DISTINCT t0.id FROM c_A t0 trailing garbage =",
		"SELECT DISTINCT t0.id FROM c_A t0 WHERE t0.id = ",
		"SELECT DISTINCT 'unterminated FROM c_A t0",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestSimpleSelect(t *testing.T) {
	db := testDB(t)
	rel, err := Exec("SELECT DISTINCT t0.id AS h0 FROM c_Researcher t0", db)
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 2 {
		t.Fatalf("rows = %d", len(rel.Rows))
	}
}

func TestJoinAndConstant(t *testing.T) {
	db := testDB(t)
	sql := "SELECT DISTINCT t0.s AS h0 FROM r_supervisedBy t0, r_worksWith t1 " +
		"WHERE t0.o = t1.s AND t1.o = 'Francois'"
	rel, err := Exec(sql, db)
	if err != nil {
		t.Fatal(err)
	}
	got := rel.Decode(db.Dict)
	if len(got) != 1 || got[0][0] != "Damian" {
		t.Fatalf("answers = %v", got)
	}
}

func TestUnknownTableEmpty(t *testing.T) {
	db := testDB(t)
	if _, err := Exec("SELECT DISTINCT t0.id FROM c_Unicorn t0", db); err != nil {
		t.Fatalf("unknown concept table is an empty relation: %v", err)
	}
	if _, err := Exec("SELECT DISTINCT t0.id FROM nope t0", db); err == nil {
		t.Fatal("tables without the c_/r_ prefix must be rejected")
	}
}

func TestMissingConstantYieldsEmpty(t *testing.T) {
	db := testDB(t)
	rel, err := Exec("SELECT DISTINCT t0.s FROM r_worksWith t0 WHERE t0.o = 'Nobody'", db)
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 0 {
		t.Fatalf("rows = %d, want 0", len(rel.Rows))
	}
}

func TestUnionDistinct(t *testing.T) {
	db := testDB(t)
	sql := "SELECT DISTINCT t0.id AS h0 FROM c_Researcher t0 UNION " +
		"SELECT DISTINCT t0.id AS h0 FROM c_Researcher t0"
	rel, err := Exec(sql, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 2 {
		t.Fatalf("union must deduplicate: %d rows", len(rel.Rows))
	}
}

func TestBooleanHead(t *testing.T) {
	db := testDB(t)
	rel, err := Exec("SELECT DISTINCT 1 FROM c_PhDStudent t0", db)
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 1 {
		t.Fatalf("boolean true = %d rows", len(rel.Rows))
	}
	if got := rel.Decode(db.Dict); got[0][0] != "1" {
		t.Fatalf("boolean decodes to %q", got[0][0])
	}
}

func TestWithClause(t *testing.T) {
	db := testDB(t)
	sql := "WITH f1 AS (SELECT DISTINCT t0.s AS h0, t0.o AS h1 FROM r_supervisedBy t0), " +
		"f2 AS (SELECT DISTINCT t0.id AS h0 FROM c_Researcher t0) " +
		"SELECT DISTINCT f1.h0 FROM f1, f2 WHERE f1.h1 = f2.h0"
	rel, err := Exec(sql, db)
	if err != nil {
		t.Fatal(err)
	}
	got := rel.Decode(db.Dict)
	if len(got) != 1 || got[0][0] != "Damian" {
		t.Fatalf("answers = %v", got)
	}
}

func TestRDFLayoutRejected(t *testing.T) {
	db := engine.NewDB(engine.LayoutRDF)
	db.LoadABox(dllite.MustParseABox("A(a)"))
	if _, err := Exec("SELECT DISTINCT t0.id FROM c_A t0", db); err == nil {
		t.Fatal("RDF-layout databases must be rejected")
	}
}

func TestSameVariableTwiceInAtom(t *testing.T) {
	db := engine.NewDB(engine.LayoutSimple)
	db.LoadABox(dllite.MustParseABox("R(a, a)\nR(a, b)"))
	// sqlgen renders q(x) <- R(x,x) with a self-equality condition.
	sql := sqlgen.CQ(query.MustParseCQ("q(x) <- R(x, x)"), sqlgen.Options{Layout: engine.LayoutSimple})
	rel, err := Exec(sql, db)
	if err != nil {
		t.Fatalf("%v\nsql: %s", err, sql)
	}
	got := rel.Decode(db.Dict)
	if len(got) != 1 || got[0][0] != "a" {
		t.Fatalf("diagonal = %v", got)
	}
}

// relSet collapses a decoded relation to a tuple set.
func relSet(rows [][]string) map[string]bool {
	out := make(map[string]bool, len(rows))
	for _, r := range rows {
		out[strings.Join(r, "\x00")] = true
	}
	return out
}

// TestRoundTripPaperExample: generate SQL for the paper's Example 4 UCQ
// and JUCQ, execute it through the SQL front-end, and compare against
// the engine's native evaluation.
func TestRoundTripPaperExample(t *testing.T) {
	tb := dllite.MustParseTBox(`
PhDStudent <= Researcher
exists worksWith <= Researcher
exists worksWith- <= Researcher
worksWith <= worksWith-
role: supervisedBy <= worksWith
exists supervisedBy <= PhDStudent
`)
	db := testDB(t)
	ref := reformulate.New(tb)
	q := query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(y, x)")
	u := ref.MustReformulate(q)

	native := engine.EvaluateUCQ(u, db, engine.ProfilePostgres())
	sql := sqlgen.UCQ(u, sqlgen.Options{Layout: engine.LayoutSimple})
	rel, err := Exec(sql, db)
	if err != nil {
		t.Fatalf("%v\nsql: %s", err, sql)
	}
	if !sameSets(relSet(rel.Decode(db.Dict)), relSet(native.Tuples)) {
		t.Fatalf("SQL path %v differs from native %v", rel.Decode(db.Dict), native.Tuples)
	}

	// And the JUCQ WITH form.
	c := cover.RootCover(q, tb)
	j, err := c.ReformulateJUCQ(ref)
	if err != nil {
		t.Fatal(err)
	}
	nativeJ := engine.EvaluateJUCQ(j, db, engine.ProfilePostgres())
	sqlJ := sqlgen.JUCQ(j, sqlgen.Options{Layout: engine.LayoutSimple})
	relJ, err := Exec(sqlJ, db)
	if err != nil {
		t.Fatalf("%v\nsql: %s", err, sqlJ)
	}
	if !sameSets(relSet(relJ.Decode(db.Dict)), relSet(nativeJ.Tuples)) {
		t.Fatalf("JUCQ SQL path %v differs from native %v", relJ.Decode(db.Dict), nativeJ.Tuples)
	}
}

func sameSets(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// TestRoundTripWorkload is the heavyweight oracle: for every workload
// query and every safe cover strategy shape (UCQ and Croot), the SQL
// text produced by sqlgen executes to exactly the engine's answers.
func TestRoundTripWorkload(t *testing.T) {
	tb := lubm.TBox()
	db := engine.NewDB(engine.LayoutSimple)
	lubm.Generate(lubm.Config{Universities: 1, Seed: 5}, db)
	db.Finalize()
	ref := reformulate.New(tb)
	for _, q := range lubm.Queries() {
		u := ref.MustReformulate(q)
		native := engine.EvaluateUCQ(u, db, engine.ProfilePostgres())
		rel, err := Exec(sqlgen.UCQ(u, sqlgen.Options{Layout: engine.LayoutSimple}), db)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		if !sameSets(relSet(rel.Decode(db.Dict)), relSet(native.Tuples)) {
			t.Errorf("%s: UCQ SQL path differs (%d vs %d tuples)",
				q.Name, len(rel.Rows), len(native.Tuples))
		}
		c := cover.RootCover(q, tb)
		j, err := c.ReformulateJUCQ(ref)
		if err != nil {
			t.Fatal(err)
		}
		nativeJ := engine.EvaluateJUCQ(j, db, engine.ProfilePostgres())
		relJ, err := Exec(sqlgen.JUCQ(j, sqlgen.Options{Layout: engine.LayoutSimple}), db)
		if err != nil {
			t.Fatalf("%s (JUCQ): %v", q.Name, err)
		}
		if !sameSets(relSet(relJ.Decode(db.Dict)), relSet(nativeJ.Tuples)) {
			t.Errorf("%s: JUCQ SQL path differs (%d vs %d tuples)",
				q.Name, len(relJ.Rows), len(nativeJ.Tuples))
		}
	}
}

// TestRoundTripUSCQ: the factorized SQL (inline union subselects) also
// round-trips.
func TestRoundTripUSCQ(t *testing.T) {
	tb := lubm.TBox()
	db := engine.NewDB(engine.LayoutSimple)
	lubm.Generate(lubm.Config{Universities: 1, Seed: 5}, db)
	db.Finalize()
	ref := reformulate.New(tb)
	q := lubm.Queries()[2] // Q3
	u := ref.MustReformulate(q)
	uscq := query.FactorizeUCQ(u)
	native := engine.EvaluateUSCQ(uscq, db, engine.ProfilePostgres())
	rel, err := Exec(sqlgen.USCQ(uscq, sqlgen.Options{Layout: engine.LayoutSimple}), db)
	if err != nil {
		t.Fatal(err)
	}
	if !sameSets(relSet(rel.Decode(db.Dict)), relSet(native.Tuples)) {
		t.Fatalf("USCQ SQL path differs: %d vs %d tuples", len(rel.Rows), len(native.Tuples))
	}
}

func TestObservedCardinalityFeedback(t *testing.T) {
	db := testDB(t)
	db.Finalize()
	b := NewBackend(db, engine.ProfilePostgres())
	u := query.UCQ{Name: "q", Disjuncts: []query.CQ{
		query.MustParseCQ("q(x) <- Researcher(x)"),
		query.MustParseCQ("q(x) <- PhDStudent(x)"),
	}}
	n := plan.FromUCQ(u)
	before := b.Estimate(n)
	ex, err := b.Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	b.Observe(n, res.Explain)
	after := b.Estimate(n)
	if after.Card != float64(len(res.Tuples)) {
		t.Fatalf("observed card = %v, want %d", after.Card, len(res.Tuples))
	}
	if after.Cost != before.Cost {
		t.Fatalf("observation must not change cost: %v vs %v", after.Cost, before.Cost)
	}
	// Observations are versioned by the data: a mutation invalidates.
	db.AddConceptFact("Researcher", "Zo")
	db.Finalize()
	if got := b.Estimate(n); got.Card == after.Card && got.Card != b.baseCard(n) {
		t.Fatalf("stale observation served after data change: %v", got.Card)
	}
}

// baseCard is the unobserved estimate's cardinality (test helper).
func (b *Backend) baseCard(n *plan.Node) float64 {
	return engine.NewBackend(b.DB, b.Profile).Estimate(n).Card
}
