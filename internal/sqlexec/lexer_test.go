package sqlexec

import "testing"

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT DISTINCT t0.id AS h0 FROM c_A t0 WHERE t0.id = 'x y'")
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[tokenKind]int{}
	for _, tok := range toks {
		kinds[tok.kind]++
	}
	if kinds[tokKeyword] != 6 { // SELECT DISTINCT AS FROM WHERE + ... count
		t.Logf("tokens: %v", toks)
	}
	// The quoted literal keeps its inner spaces.
	found := false
	for _, tok := range toks {
		if tok.kind == tokString && tok.text == "x y" {
			found = true
		}
	}
	if !found {
		t.Error("string literal not lexed")
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Error("missing EOF token")
	}
}

func TestLexKeywordCaseInsensitive(t *testing.T) {
	toks, err := lex("select distinct from")
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks[:3] {
		if tok.kind != tokKeyword {
			t.Errorf("token %q not a keyword", tok.text)
		}
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lex("'unterminated"); err == nil {
		t.Error("unterminated string must fail")
	}
	if _, err := lex("valid until ;"); err == nil {
		t.Error("unexpected character must fail")
	}
}

func TestLexNumbersAndSymbols(t *testing.T) {
	toks, err := lex("1 ( ) , = . 42")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokNumber || toks[0].text != "1" {
		t.Errorf("first token = %v", toks[0])
	}
	if toks[6].kind != tokNumber || toks[6].text != "42" {
		t.Errorf("last number = %v", toks[6])
	}
	for _, i := range []int{1, 2, 3, 4, 5} {
		if toks[i].kind != tokSymbol {
			t.Errorf("token %d = %v, want symbol", i, toks[i])
		}
	}
}
