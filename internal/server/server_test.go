package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dllite"
	"repro/internal/engine"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	tb := dllite.MustParseTBox(`
PhDStudent <= Researcher
role: supervisedBy <= worksWith
exists supervisedBy <= PhDStudent
worksWith <= worksWith-
PhDStudent <= not exists supervisedBy-
`)
	db := engine.NewDB(engine.LayoutSimple)
	db.LoadABox(dllite.MustParseABox(`
worksWith(Ioana, Francois)
supervisedBy(Damian, Ioana)
`))
	srv := httptest.NewServer(New(core.New(tb, db, engine.ProfilePostgres())))
	t.Cleanup(srv.Close)
	return srv
}

func postQuery(t *testing.T, srv *httptest.Server, body string) (*http.Response, QueryResponse) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/query", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out QueryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func TestQueryEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, out := postQuery(t, srv,
		`{"query": "q(x) <- PhDStudent(x), worksWith(y, x)", "strategy": "ucq"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(out.Answers) != 1 || out.Answers[0][0] != "Damian" {
		t.Fatalf("answers = %v", out.Answers)
	}
	if out.Disjuncts == 0 || out.SQLBytes == 0 {
		t.Errorf("stats missing: %+v", out)
	}
}

func TestDefaultStrategy(t *testing.T) {
	srv := testServer(t)
	resp, out := postQuery(t, srv, `{"query": "q(x) <- Researcher(x)"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.Strategy != string(core.StrategyGDLExt) {
		t.Errorf("default strategy = %s", out.Strategy)
	}
}

func TestBadRequests(t *testing.T) {
	srv := testServer(t)
	for _, body := range []string{
		`not json`,
		`{"query": "broken(("}`,
		`{"query": "q(x) <- A(x)", "strategy": "bogus"}`,
	} {
		resp, _ := postQuery(t, srv, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status = %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestMethodRouting(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query status = %d", resp.StatusCode)
	}
}

func TestConsistencyEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/consistency")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out ConsistencyResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Consistent {
		t.Errorf("KB should be consistent: %+v", out)
	}
}

func TestConsistencyViolationReported(t *testing.T) {
	tb := dllite.MustParseTBox("A <= not B")
	db := engine.NewDB(engine.LayoutSimple)
	db.LoadABox(dllite.MustParseABox("A(x)\nB(x)"))
	srv := httptest.NewServer(New(core.New(tb, db, engine.ProfilePostgres())))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/consistency")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out ConsistencyResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Consistent || len(out.Violations) != 1 {
		t.Errorf("violation not reported: %+v", out)
	}
}

func TestStatsEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Facts != 2 || out.Roles != 2 {
		t.Errorf("stats = %+v", out)
	}
	if !strings.Contains(out.Layout, "Simple") {
		t.Errorf("layout = %s", out.Layout)
	}
}

func TestStrategiesEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/strategies")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []StrategyInfo
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(core.Strategies()) {
		t.Errorf("strategies = %v", out)
	}
	for _, st := range out {
		if st.Name == "" || st.Description == "" {
			t.Errorf("strategy %+v missing name or description", st)
		}
	}
}

// TestConcurrentQueries: Answer is safe for concurrent use, so requests
// run in parallel up to GOMAXPROCS; concurrent clients must all
// succeed.
func TestConcurrentQueries(t *testing.T) {
	srv := testServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/query", "application/json",
				bytes.NewBufferString(`{"query": "q(x) <- PhDStudent(x)", "strategy": "ucq"}`))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentAnswerMixedStrategies drives concurrent Answerer.Answer
// calls through the HTTP server across every strategy, with parallel
// evaluation workers, cardinality feedback, and the plan cache all
// active — the shared state the race detector must find clean: the
// Reformulator's memo, the search memo, the answer cache, the DB's lazy
// statistics, the TBox dependency index, and the feedback sink.
func TestConcurrentAnswerMixedStrategies(t *testing.T) {
	tb := dllite.MustParseTBox(`
PhDStudent <= Researcher
role: supervisedBy <= worksWith
exists supervisedBy <= PhDStudent
exists supervisedBy- <= Researcher
worksWith <= worksWith-
`)
	db := engine.NewDB(engine.LayoutSimple)
	db.LoadABox(dllite.MustParseABox(`
worksWith(Ioana, Francois)
supervisedBy(Damian, Ioana)
supervisedBy(Eva, Francois)
`))
	prof := engine.ProfilePostgres()
	prof.Feedback = engine.NewCardFeedback()
	a := core.New(tb, db, prof)
	a.Workers = 4
	srv := httptest.NewServer(New(a))
	defer srv.Close()

	queries := []string{
		"q(x) <- PhDStudent(x), worksWith(y, x)",
		"q(x) <- Researcher(x)",
		"q(x, y) <- supervisedBy(x, y), Researcher(y)",
	}
	strategies := []core.Strategy{
		core.StrategyUCQ, core.StrategyUSCQ, core.StrategyCroot,
		core.StrategyGDLRDBMS, core.StrategyGDLExt,
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		q, s := queries[i%len(queries)], strategies[i%len(strategies)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(QueryRequest{Query: q, Strategy: string(s)})
			resp, err := http.Post(srv.URL+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var out QueryResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("%s/%s: status %d", q, s, resp.StatusCode)
				return
			}
			if len(out.Answers) == 0 {
				errs <- fmt.Errorf("%s/%s: empty answers", q, s)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if hits, misses := a.Cache.Stats(); hits+misses != 64 || misses < uint64(len(queries)) {
		t.Errorf("cache stats hits=%d misses=%d over 64 requests", hits, misses)
	}
}

func TestStatementTooLongStatus(t *testing.T) {
	tb := dllite.MustParseTBox("A <= B")
	db := engine.NewDB(engine.LayoutSimple)
	db.LoadABox(dllite.MustParseABox("A(x)"))
	prof := engine.ProfileDB2()
	prof.MaxStatementBytes = 10
	srv := httptest.NewServer(New(core.New(tb, db, prof)))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/query", "application/json",
		bytes.NewBufferString(`{"query": "q(x) <- B(x)", "strategy": "ucq"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d, want 413", resp.StatusCode)
	}
}

// TestUnknownStrategyRejected: an unrecognized strategy is a 400 whose
// message lists every valid strategy, before any search or evaluation
// runs.
func TestUnknownStrategyRejected(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Post(srv.URL+"/query", "application/json",
		bytes.NewBufferString(`{"query": "q(x) <- Researcher(x)", "strategy": "bogus"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	msg := out["error"]
	if !strings.Contains(msg, `"bogus"`) {
		t.Errorf("error %q does not name the bad strategy", msg)
	}
	for _, st := range core.Strategies() {
		if !strings.Contains(msg, string(st)) {
			t.Errorf("error %q does not list valid strategy %s", msg, st)
		}
	}
}

// TestExplainEndpoint: POST /explain returns the annotated plan with
// both estimated and actual figures, and GET /explain accepts the same
// request as URL parameters.
func TestExplainEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Post(srv.URL+"/explain", "application/json",
		bytesNewBuffer(`{"query": "q(x) <- PhDStudent(x), worksWith(y, x)", "strategy": "croot"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out ExplainResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Explain == nil || out.Explain.Root == nil {
		t.Fatal("no explain tree in response")
	}
	if out.Explain.Backend != "native" {
		t.Errorf("backend = %s", out.Explain.Backend)
	}
	if out.Explain.Root.ActualRows < 0 {
		t.Errorf("root actualRows = %d, want observed count", out.Explain.Root.ActualRows)
	}
	if out.Text == "" || !strings.Contains(out.Text, "distinct") {
		t.Errorf("text rendering missing: %q", out.Text)
	}

	get, err := http.Get(srv.URL + "/explain?query=" + url.QueryEscape("q(x) <- Researcher(x)") + "&strategy=ucq")
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	if get.StatusCode != http.StatusOK {
		t.Fatalf("GET status = %d", get.StatusCode)
	}
	var gout ExplainResponse
	if err := json.NewDecoder(get.Body).Decode(&gout); err != nil {
		t.Fatal(err)
	}
	if gout.Strategy != "ucq" || gout.Explain == nil {
		t.Errorf("GET explain = %+v", gout)
	}
}

func bytesNewBuffer(s string) *bytes.Buffer { return bytes.NewBufferString(s) }

func TestBackendsEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/backends")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []BackendInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 {
		t.Fatalf("backends = %+v", infos)
	}
	names := map[string]bool{}
	defaults := 0
	for _, in := range infos {
		names[in.Name] = true
		if in.Description == "" {
			t.Fatalf("backend %s has no description", in.Name)
		}
		if in.Default {
			defaults++
			if in.Name != "native" {
				t.Fatalf("default backend = %s", in.Name)
			}
		}
	}
	if !names["native"] || !names["sql"] || !names["shard"] || defaults != 1 {
		t.Fatalf("backends = %+v", infos)
	}
}

func TestQueryPerRequestBackend(t *testing.T) {
	srv := testServer(t)
	want := ""
	for _, backend := range []string{"", "native", "sql", "shard"} {
		body := fmt.Sprintf(`{"query": "q(x) <- Researcher(x)", "strategy": "ucq", "backend": %q}`, backend)
		resp, out := postQuery(t, srv, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("backend %q: status = %d", backend, resp.StatusCode)
		}
		wantName := backend
		if backend == "" {
			wantName = "native"
		}
		if out.Backend != wantName {
			t.Fatalf("backend %q: response backend = %q", backend, out.Backend)
		}
		got := fmt.Sprint(out.Answers)
		if want == "" {
			want = got
		} else if got != want {
			t.Fatalf("backend %q answers %s, want %s", backend, got, want)
		}
	}
}

func TestUnknownBackendRejected(t *testing.T) {
	srv := testServer(t)
	resp, _ := postQuery(t, srv, `{"query": "q(x) <- Researcher(x)", "backend": "duckdb"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var e map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	msg := e["error"]
	if !strings.Contains(msg, "duckdb") || !strings.Contains(msg, "native") ||
		!strings.Contains(msg, "sql") || !strings.Contains(msg, "shard") {
		t.Fatalf("error = %q", msg)
	}
	// GET form validates the same way.
	get, err := http.Get(srv.URL + "/explain?query=" + url.QueryEscape("q(x) <- Researcher(x)") + "&backend=duckdb")
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	if get.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET status = %d", get.StatusCode)
	}
}
