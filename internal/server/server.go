// Package server exposes an Answerer over a small JSON-HTTP API — the
// shape OBDA deployments take in practice (the paper's motivation cites
// national-scale medical-records services). Endpoints:
//
//	POST /query        {"query": "q(x) <- A(x)", "strategy": "gdl-ext", "backend": "shard"}
//	POST /explain      same payload; returns the EXPLAIN annotation
//	GET  /explain      ?query=...&strategy=...&backend=... (convenience form)
//	GET  /consistency  T-consistency report
//	GET  /stats        database statistics
//	GET  /strategies   supported strategies with descriptions
//	GET  /backends     registered execution backends with descriptions
//
// The handler is a plain http.Handler, wired by cmd/obdaserver and
// tested with httptest.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/query"
)

// Server handles OBDA requests over one Answerer. Answer is safe for
// concurrent use, so requests run concurrently up to GOMAXPROCS; the
// semaphore only bounds how many evaluations compete for CPU at once.
// Hot queries hit the Answerer's plan cache and skip straight to
// evaluation.
type Server struct {
	A   *core.Answerer
	mux *http.ServeMux
	sem chan struct{}

	defaultBackend string
	shards         int
	bmu            sync.Mutex
	backends       map[string]*backendEntry
}

// backendEntry caches one lazily constructed backend. Construction
// runs under the entry's Once, not under bmu: building the shard
// backend partitions the whole database (locking its statistics), and
// holding bmu across that would stall every concurrent request on an
// unrelated backend — the lock-across-blocking-call shape the
// lockorder analyzer flags.
type backendEntry struct {
	once sync.Once
	b    plan.Backend
	err  error
}

// Options configure the server's execution backends.
type Options struct {
	// DefaultBackend serves requests that name no backend ("" →
	// "native"). Must be a registered backend name.
	DefaultBackend string
	// Shards is the shard backend's fan-out (< 1 → GOMAXPROCS).
	Shards int
}

// New builds the HTTP server around an Answerer with default options.
func New(a *core.Answerer) *Server { return NewWithOptions(a, Options{}) }

// NewWithOptions builds the HTTP server around an Answerer. Backends
// are constructed lazily on first use (the shard backend partitions
// the whole database) and cached for the server's lifetime — the data
// is read-only while serving.
func NewWithOptions(a *core.Answerer, opts Options) *Server {
	def := opts.DefaultBackend
	if def == "" {
		def = "native"
	}
	s := &Server{
		A:              a,
		mux:            http.NewServeMux(),
		sem:            make(chan struct{}, runtime.GOMAXPROCS(0)),
		defaultBackend: def,
		shards:         opts.Shards,
		backends:       make(map[string]*backendEntry),
	}
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /explain", s.handleExplain)
	s.mux.HandleFunc("GET /explain", s.handleExplain)
	s.mux.HandleFunc("GET /consistency", s.handleConsistency)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /strategies", s.handleStrategies)
	s.mux.HandleFunc("GET /backends", s.handleBackends)
	return s
}

// backendFor returns the named execution backend, constructing and
// caching it on first use. bmu guards only the map lookup; the
// construction itself runs once per name under the entry's Once, so
// concurrent requests for other backends never wait on it.
func (s *Server) backendFor(name string) (plan.Backend, error) {
	s.bmu.Lock()
	e, ok := s.backends[name]
	if !ok {
		e = &backendEntry{}
		s.backends[name] = e
	}
	s.bmu.Unlock()
	e.once.Do(func() {
		e.b, e.err = core.NewBackendByName(name, s.A.DB, s.A.Profile, s.shards)
	})
	return e.b, e.err
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// QueryRequest is the POST /query payload.
type QueryRequest struct {
	Query    string `json:"query"`
	Strategy string `json:"strategy,omitempty"` // default gdl-ext
	Backend  string `json:"backend,omitempty"`  // default the server's -backend
}

// QueryResponse is the POST /query result.
type QueryResponse struct {
	Answers   [][]string `json:"answers"`
	Strategy  string     `json:"strategy"`
	Fragments int        `json:"fragments"`
	Disjuncts int        `json:"disjuncts"`
	SQLBytes  int        `json:"sqlBytes"`
	SearchMs  float64    `json:"searchMs"`
	EvalMs    float64    `json:"evalMs"`
	Cover     string     `json:"cover"`
	Backend   string     `json:"backend"`
	CacheHit  bool       `json:"cacheHit"`
	// ShardCache carries the shard backend's cumulative plan/result
	// cache counters; absent for backends without a cache.
	ShardCache *ShardCacheStats `json:"shardCache,omitempty"`
}

// ShardCacheStats reports a caching backend's cumulative hit/miss
// counters (the shard backend's plan and result caches summed).
type ShardCacheStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// cacheStatsOf extracts the optional cache counters from a backend.
func cacheStatsOf(b plan.Backend) *ShardCacheStats {
	if cs, ok := b.(interface{ CacheStats() (hits, misses uint64) }); ok {
		h, m := cs.CacheStats()
		return &ShardCacheStats{Hits: h, Misses: m}
	}
	return nil
}

// decodeRequest parses a query+strategy+backend triple from the
// request (JSON body for POST, URL parameters for GET), validating
// the strategy and backend names against their registries.
func (s *Server) decodeRequest(r *http.Request) (query.CQ, core.Strategy, string, int, error) {
	var req QueryRequest
	if r.Method == http.MethodGet {
		req.Query = r.URL.Query().Get("query")
		req.Strategy = r.URL.Query().Get("strategy")
		req.Backend = r.URL.Query().Get("backend")
	} else if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return query.CQ{}, "", "", http.StatusBadRequest, errors.New("bad JSON: " + err.Error())
	}
	q, err := query.ParseCQ(req.Query)
	if err != nil {
		return query.CQ{}, "", "", http.StatusBadRequest, err
	}
	strategy := core.Strategy(req.Strategy)
	if req.Strategy == "" {
		strategy = core.StrategyGDLExt
	}
	if !core.ValidStrategy(strategy) {
		valid := make([]string, 0, len(core.Strategies()))
		for _, st := range core.Strategies() {
			valid = append(valid, string(st))
		}
		return query.CQ{}, "", "", http.StatusBadRequest,
			fmt.Errorf("unknown strategy %q (valid: %s)", req.Strategy, strings.Join(valid, ", "))
	}
	backend := req.Backend
	if backend == "" {
		backend = s.defaultBackend
	}
	if !core.ValidBackend(backend) {
		return query.CQ{}, "", "", http.StatusBadRequest,
			fmt.Errorf("unknown backend %q (valid: %s)", req.Backend, strings.Join(core.BackendNames(), ", "))
	}
	return q, strategy, backend, 0, nil
}

// answer runs the request through the Answerer under the CPU
// semaphore, mapping failures onto HTTP status codes.
func (s *Server) answer(w http.ResponseWriter, r *http.Request) (*core.Result, plan.Backend) {
	q, strategy, backendName, code, err := s.decodeRequest(r)
	if err != nil {
		httpError(w, code, err.Error())
		return nil, nil
	}
	backend, err := s.backendFor(backendName)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return nil, nil
	}
	s.sem <- struct{}{}
	res, err := s.A.AnswerWith(q, strategy, backend)
	<-s.sem
	if err != nil {
		var tooLong *engine.StatementTooLongError
		if errors.As(err, &tooLong) {
			httpError(w, http.StatusRequestEntityTooLarge, err.Error())
			return nil, nil
		}
		httpError(w, http.StatusBadRequest, err.Error())
		return nil, nil
	}
	return res, backend
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	res, backend := s.answer(w, r)
	if res == nil {
		return
	}
	resp := QueryResponse{
		Answers:    res.Tuples,
		Strategy:   string(res.Strategy),
		Fragments:  res.NumFragments,
		Disjuncts:  res.NumDisjuncts,
		SQLBytes:   res.SQLSize,
		SearchMs:   ms(res.SearchTime),
		EvalMs:     ms(res.EvalTime),
		Cover:      res.Cover.String(),
		CacheHit:   res.CacheHit,
		ShardCache: cacheStatsOf(backend),
	}
	if res.Explain != nil {
		resp.Backend = res.Explain.Backend
	}
	writeJSON(w, resp)
}

// ExplainResponse is the /explain result: the strategy's chosen cover
// and the backend's annotated plan (estimated cost/cardinality plus
// the actual per-operator row counters of the run), both as a
// structured tree and pre-rendered text.
type ExplainResponse struct {
	Strategy  string `json:"strategy"`
	Cover     string `json:"cover"`
	Fragments int    `json:"fragments"`
	Disjuncts int    `json:"disjuncts"`
	Answers   int    `json:"answers"`
	CacheHit  bool   `json:"cacheHit"`
	// ShardCache mirrors QueryResponse.ShardCache.
	ShardCache *ShardCacheStats `json:"shardCache,omitempty"`
	Explain    *plan.Explain    `json:"explain"`
	Text       string           `json:"text"`
}

// handleExplain answers the query like POST /query but returns the
// EXPLAIN annotation instead of the tuples.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	res, backend := s.answer(w, r)
	if res == nil {
		return
	}
	resp := ExplainResponse{
		Strategy:   string(res.Strategy),
		Cover:      res.Cover.String(),
		Fragments:  res.NumFragments,
		Disjuncts:  res.NumDisjuncts,
		Answers:    len(res.Tuples),
		CacheHit:   res.CacheHit,
		ShardCache: cacheStatsOf(backend),
		Explain:    res.Explain,
	}
	if res.Explain != nil {
		resp.Text = res.Explain.Text()
	}
	writeJSON(w, resp)
}

// ConsistencyResponse reports T-consistency.
type ConsistencyResponse struct {
	Consistent bool     `json:"consistent"`
	Violations []string `json:"violations,omitempty"`
}

func (s *Server) handleConsistency(w http.ResponseWriter, r *http.Request) {
	s.sem <- struct{}{}
	violations, err := s.A.CheckConsistency()
	<-s.sem
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := ConsistencyResponse{Consistent: len(violations) == 0}
	for _, v := range violations {
		resp.Violations = append(resp.Violations,
			v.Axiom.String()+" violated by "+joinWitness(v.Witness))
	}
	writeJSON(w, resp)
}

func joinWitness(w []string) string {
	out := ""
	for i, s := range w {
		if i > 0 {
			out += ", "
		}
		out += s
	}
	return out
}

// StatsResponse summarizes the loaded database.
type StatsResponse struct {
	Facts    int    `json:"facts"`
	Entities int    `json:"entities"`
	Concepts int    `json:"concepts"`
	Roles    int    `json:"roles"`
	Layout   string `json:"layout"`
	Profile  string `json:"profile"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.A.DB.Stats()
	writeJSON(w, StatsResponse{
		Facts:    st.TotalFacts,
		Entities: st.TotalEntities,
		Concepts: len(st.ConceptCard),
		Roles:    len(st.RoleCard),
		Layout:   s.A.DB.Layout.String(),
		Profile:  s.A.Profile.Name,
	})
}

// StrategyInfo describes one strategy in GET /strategies.
type StrategyInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

func (s *Server) handleStrategies(w http.ResponseWriter, r *http.Request) {
	out := make([]StrategyInfo, 0, len(core.Strategies()))
	for _, st := range core.Strategies() {
		out = append(out, StrategyInfo{Name: string(st), Description: st.Description()})
	}
	writeJSON(w, out)
}

// BackendInfo describes one execution backend in GET /backends.
type BackendInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Default     bool   `json:"default,omitempty"`
}

func (s *Server) handleBackends(w http.ResponseWriter, r *http.Request) {
	specs := core.BackendSpecs()
	out := make([]BackendInfo, 0, len(specs))
	for _, sp := range specs {
		out = append(out, BackendInfo{
			Name:        sp.Name,
			Description: sp.Description,
			Default:     sp.Name == s.defaultBackend,
		})
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
