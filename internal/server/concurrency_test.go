package server

// Regression test for backendFor's locking discipline: bmu must guard
// only the map lookup, never backend construction. The old code held
// bmu across core.NewBackendByName — building the shard backend
// partitions the whole database and locks its statistics, the
// lock-across-blocking-call shape internal/lint's lockorder analyzer
// flags. This test hammers backendFor from many goroutines (run under
// -race in CI) and checks each name resolves to exactly one cached
// instance.

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dllite"
	"repro/internal/engine"
	"repro/internal/plan"
)

func TestBackendForConcurrent(t *testing.T) {
	tb := dllite.MustParseTBox(`
PhDStudent <= Researcher
role: supervisedBy <= worksWith
`)
	db := engine.NewDB(engine.LayoutSimple)
	db.LoadABox(dllite.MustParseABox(`
worksWith(Ioana, Francois)
supervisedBy(Damian, Ioana)
`))
	s := New(core.New(tb, db, engine.ProfilePostgres()))

	names := make([]string, 0, 4)
	for _, spec := range core.BackendSpecs() {
		names = append(names, spec.Name)
	}
	names = append(names, "no-such-backend")

	const perName = 16
	got := make([][]plan.Backend, len(names))
	for i := range got {
		got[i] = make([]plan.Backend, perName)
	}
	var wg sync.WaitGroup
	for i, name := range names {
		for j := 0; j < perName; j++ {
			wg.Add(1)
			go func(i, j int, name string) {
				defer wg.Done()
				b, err := s.backendFor(name)
				if name == "no-such-backend" {
					if err == nil {
						t.Errorf("backendFor(%q) succeeded, want error", name)
					}
					return
				}
				if err != nil {
					t.Errorf("backendFor(%q): %v", name, err)
					return
				}
				got[i][j] = b
			}(i, j, name)
		}
	}
	wg.Wait()

	for i, name := range names {
		if name == "no-such-backend" {
			continue
		}
		for j := 1; j < perName; j++ {
			if got[i][j] != got[i][0] {
				t.Errorf("backendFor(%q) returned distinct instances across goroutines", name)
				break
			}
		}
	}
}
