// Package lint is the repo's custom static-analysis suite: machine
// checks for the engine's operator lifecycle contract (opcontract),
// the lock discipline around channels and blocking calls (lockorder),
// and the copy-on-write rule of the plan-IR rewrite pass (cowrewrite).
//
// The analyzers are purely syntactic — go/parser and go/ast over the
// module's source, no go/types and no external driver. Type
// information would make resolution exact, but the stdlib's
// source-mode importer is unreliable under module layouts, and the
// x/tools analysis driver is a dependency this module deliberately
// avoids. The invariants checked here are local and structural enough
// that name-based resolution over declared receiver and field types
// catches every real shape in this repo; the testdata fixtures pin
// exactly what each analyzer can and cannot see.
//
// Findings can be suppressed with a comment on the offending line or
// the line above:
//
//	//obdalint:ignore <analyzer> <reason>
//
// The reason is mandatory by convention (the fixture tests enforce the
// analyzer name only); an ignore without an analyzer name suppresses
// every analyzer on that line.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one analyzer hit.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one named check over a loaded program.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Program) []Finding
}

// All lists every analyzer in the suite, in report order.
var All = []*Analyzer{OpContract, LockOrder, CowRewrite}

// File is one parsed source file.
type File struct {
	Path string
	AST  *ast.File
}

// Package groups the files of one directory.
type Package struct {
	Name       string // package clause name
	ImportPath string // module path + relative dir; "" when no go.mod
	Dir        string
	Files      []*File
}

// Program is a loaded source tree plus its suppression table.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package

	// suppress maps file path -> line -> analyzer names ignored there
	// ("" ignores all). A suppression on line L covers findings on L
	// and L+1 (comment-above style).
	suppress map[string]map[int][]string
}

// Load parses the packages under root selected by patterns. A pattern
// is either a directory ("./x", "internal/plan") or a recursive walk
// ("./...", "./internal/..."). Walks skip testdata, vendor, hidden and
// underscore-prefixed directories; _test.go files are never loaded
// (the analyzers check production invariants). With no patterns,
// "./..." is assumed.
func Load(root string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	module := moduleName(root)
	dirs, err := expand(root, patterns)
	if err != nil {
		return nil, err
	}
	p := &Program{
		Fset:     token.NewFileSet(),
		suppress: make(map[string]map[int][]string),
	}
	for _, dir := range dirs {
		pkg, err := p.loadDir(root, module, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			p.Pkgs = append(p.Pkgs, pkg)
		}
	}
	return p, nil
}

// moduleName reads the module path from root's go.mod, or "".
func moduleName(root string) string {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// expand resolves patterns to the list of directories to load.
func expand(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		base := filepath.Join(root, pat)
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// loadDir parses one directory's non-test files into a Package, or nil
// when the directory holds no Go source.
func (p *Program) loadDir(root, module, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Dir: dir}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(p.Fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if pkg.Name == "" {
			pkg.Name = f.Name.Name
		}
		if f.Name.Name != pkg.Name {
			// A stray second package in one directory: keep the first.
			continue
		}
		pkg.Files = append(pkg.Files, &File{Path: path, AST: f})
		p.scanSuppressions(path, f)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	if module != "" {
		if rel, err := filepath.Rel(root, dir); err == nil {
			if rel == "." {
				pkg.ImportPath = module
			} else {
				pkg.ImportPath = module + "/" + filepath.ToSlash(rel)
			}
		}
	}
	return pkg, nil
}

// scanSuppressions records every //obdalint:ignore comment in f.
func (p *Program) scanSuppressions(path string, f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimPrefix(text, "/*")
			text = strings.TrimSpace(text)
			rest, ok := strings.CutPrefix(text, "obdalint:ignore")
			if !ok {
				continue
			}
			name := ""
			if fields := strings.Fields(rest); len(fields) > 0 {
				name = fields[0]
			}
			line := p.Fset.Position(c.Pos()).Line
			if p.suppress[path] == nil {
				p.suppress[path] = make(map[int][]string)
			}
			p.suppress[path][line] = append(p.suppress[path][line], name)
		}
	}
}

func (p *Program) suppressed(f Finding) bool {
	lines := p.suppress[f.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, at := range []int{f.Pos.Line, f.Pos.Line - 1} {
		for _, name := range lines[at] {
			if name == "" || name == f.Analyzer {
				return true
			}
		}
	}
	return false
}

// Run applies the analyzers, drops suppressed findings, and returns
// the rest sorted by position.
func (p *Program) Run(analyzers ...*Analyzer) []Finding {
	var out []Finding
	for _, a := range analyzers {
		for _, f := range a.Run(p) {
			if !p.suppressed(f) {
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}
