package lint

// lockorder checks the module's lock discipline: while a sync.Mutex or
// sync.RWMutex is held, a function must not
//
//   - send on a channel (the consumer may never drain it),
//   - acquire another lock (nested acquisition — ordering hazards),
//   - call a potentially long-blocking entry point by name (Answer,
//     AnswerWith, Run, Wait, Drain), or
//   - call a function that transitively locks or sends.
//
// Lock regions are tracked per function: X.Lock()/X.RLock() opens a
// region on the path of X, X.Unlock()/X.RUnlock() closes it, and a
// deferred unlock holds it to the end of the function. The transitive
// "may block" property is propagated over a syntactic call graph:
// same-package calls, imported-package calls (pkg.Fn), receiver-method
// calls (including one level of embedding), and method calls through
// declared receiver field types (b.DB.Version() with DB *engine.DB).
// Interface method calls and calls on local variables are not resolved
// — the analyzer under-approximates there; function literals are never
// entered (their bodies run under another frame's discipline).

import (
	"go/ast"
	"go/token"
)

// LockOrder is the lock-discipline analyzer.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "No channel sends, nested lock acquisitions, or blocking calls while holding a mutex",
	Run:  runLockOrder,
}

// denyNames are method names that mark long-running work regardless of
// whether the callee resolves: the answering entry points and the
// pipeline drains.
var denyNames = map[string]bool{
	"Answer": true, "AnswerWith": true, "Run": true, "Wait": true, "Drain": true,
}

// loFunc is one function in the syntactic call graph.
type loFunc struct {
	decl    *ast.FuncDecl
	pkg     *Package
	imports map[string]string // the declaring file's import table

	directWhy string // non-empty when the body itself locks or sends
	calls     map[string]bool

	blocking bool
	why      string
}

type loProgram struct {
	funcs map[string]*loFunc
	// structs and methods per package import path
	structs map[string]map[string]*structInfo
	methods map[string]map[string]map[string]*ast.FuncDecl
}

func runLockOrder(p *Program) []Finding {
	lp := buildGraph(p)
	lp.propagate()
	var out []Finding
	for _, lf := range lp.funcs {
		out = append(out, lp.checkRegions(p, lf)...)
	}
	return out
}

func funcKey(pkgPath, recvType, name string) string {
	if recvType != "" {
		return pkgPath + "." + recvType + "." + name
	}
	return pkgPath + "." + name
}

func buildGraph(p *Program) *loProgram {
	lp := &loProgram{
		funcs:   map[string]*loFunc{},
		structs: map[string]map[string]*structInfo{},
		methods: map[string]map[string]map[string]*ast.FuncDecl{},
	}
	for _, pkg := range p.Pkgs {
		lp.structs[pkg.ImportPath] = structTable(pkg)
		lp.methods[pkg.ImportPath] = methodTable(pkg)
		for _, f := range pkg.Files {
			imports := importTable(f.AST)
			for _, decl := range f.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				lf := &loFunc{decl: fd, pkg: pkg, imports: imports, calls: map[string]bool{}}
				lp.scanBody(lf)
				lp.funcs[funcKey(pkg.ImportPath, recvType(fd), fd.Name.Name)] = lf
			}
		}
	}
	return lp
}

// scanBody records a function's direct blocking behavior and resolved
// call edges. Function literals are skipped throughout.
func (lp *loProgram) scanBody(lf *loFunc) {
	inspectNoFuncLit(lf.decl.Body, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.SendStmt:
			if lf.directWhy == "" {
				lf.directWhy = "sends on a channel"
			}
		case *ast.CallExpr:
			if base, name, _, ok := selCall(x); ok {
				if name == "Lock" || name == "RLock" {
					if lf.directWhy == "" {
						lf.directWhy = "acquires a lock"
					}
					_ = base
				}
			}
			if key, ok := lp.resolveCall(lf, x); ok {
				lf.calls[key] = true
			}
		}
	})
}

// inspectNoFuncLit is ast.Inspect minus function-literal bodies.
func inspectNoFuncLit(root ast.Node, visit func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// resolveCall maps a call expression to a function key, syntactically.
func (lp *loProgram) resolveCall(lf *loFunc, call *ast.CallExpr) (string, bool) {
	self := lf.pkg.ImportPath
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		key := funcKey(self, "", fun.Name)
		if _, ok := lp.funcs[key]; ok {
			return key, true
		}
	case *ast.SelectorExpr:
		method := fun.Sel.Name
		switch base := fun.X.(type) {
		case *ast.Ident:
			// pkg.Fn through the imports.
			if path, ok := lf.imports[base.Name]; ok {
				return funcKey(path, "", method), true
			}
			// recv.Method, including one level of embedding.
			if base.Name == recvName(lf.decl) {
				tn := recvType(lf.decl)
				if key, ok := lp.methodKey(self, tn, method); ok {
					return key, true
				}
			}
		case *ast.SelectorExpr:
			// recv.Field.Method through the declared field type.
			if id, ok := base.X.(*ast.Ident); ok && id.Name == recvName(lf.decl) {
				tn := recvType(lf.decl)
				if st := lp.structs[self][tn]; st != nil {
					if ref, ok := st.fields[base.Sel.Name]; ok && ref.Name != "" {
						if key, ok := lp.methodKey(ref.Pkg, ref.Name, method); ok {
							return key, true
						}
					}
				}
			}
		}
	}
	return "", false
}

// methodKey finds method on type tn in package pkgPath, falling back
// to one level of embedded types.
func (lp *loProgram) methodKey(pkgPath, tn, method string) (string, bool) {
	if _, ok := lp.methods[pkgPath][tn][method]; ok {
		return funcKey(pkgPath, tn, method), true
	}
	if st := lp.structs[pkgPath][tn]; st != nil {
		for _, emb := range st.embeds {
			if _, ok := lp.methods[emb.Pkg][emb.Name][method]; ok {
				return funcKey(emb.Pkg, emb.Name, method), true
			}
		}
	}
	return "", false
}

// propagate runs the may-block fixpoint over the call graph.
func (lp *loProgram) propagate() {
	for _, lf := range lp.funcs {
		if lf.directWhy != "" {
			lf.blocking = true
			lf.why = lf.directWhy
		}
	}
	for changed := true; changed; {
		changed = false
		for _, lf := range lp.funcs {
			if lf.blocking {
				continue
			}
			for callee := range lf.calls {
				if c := lp.funcs[callee]; c != nil && c.blocking {
					lf.blocking = true
					lf.why = "calls " + callee + ", which " + c.why
					changed = true
					break
				}
			}
		}
	}
}

// heldLock is one open lock region.
type heldLock struct {
	path string
	pos  token.Pos
}

// checkRegions walks one function flagging violations inside its lock
// regions.
func (lp *loProgram) checkRegions(p *Program, lf *loFunc) []Finding {
	fd := lf.decl
	if fd.Body == nil {
		return nil
	}
	env := newPathEnv(recvName(fd))
	var held []heldLock
	var out []Finding
	report := func(pos token.Pos, msg string) {
		out = append(out, Finding{
			Pos:      p.Fset.Position(pos),
			Analyzer: "lockorder",
			Message:  msg + " while holding " + held[len(held)-1].path,
		})
	}
	lockPath := func(call *ast.CallExpr) (string, string, bool) {
		base, name, _, ok := selCall(call)
		if !ok {
			return "", "", false
		}
		switch name {
		case "Lock", "RLock", "Unlock", "RUnlock":
			path, ok := env.resolve(base)
			if !ok || path == "" {
				// Fall back to the printed expression so unresolved
				// mutexes (package-level, locals) still pair up.
				path = exprString(base)
			}
			return path, name, path != ""
		}
		return "", "", false
	}

	walkWithEnv(fd.Body.List, env, func(s ast.Stmt) {
		// Lock/Unlock bookkeeping on direct call statements.
		switch st := s.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if path, op, ok := lockPath(call); ok {
					switch op {
					case "Lock", "RLock":
						if len(held) > 0 && held[len(held)-1].path != path {
							report(call.Pos(), "acquires "+path)
						}
						held = append(held, heldLock{path: path, pos: call.Pos()})
					case "Unlock", "RUnlock":
						for i := len(held) - 1; i >= 0; i-- {
							if held[i].path == path {
								held = append(held[:i], held[i+1:]...)
								break
							}
						}
					}
					return
				}
			}
		case *ast.DeferStmt:
			// A deferred unlock keeps the region open to function end;
			// nothing to do. Other deferred calls run after the region.
			return
		}
		if len(held) == 0 {
			return
		}
		// Inside a region: flag sends and blocking calls. Compound
		// statements are inspected only through their expression parts
		// — walkWithEnv visits their inner statements separately, and
		// inspecting the whole subtree here would double-report.
		var scope []ast.Node
		switch st := s.(type) {
		case *ast.IfStmt:
			if st.Cond != nil {
				scope = append(scope, st.Cond)
			}
		case *ast.ForStmt:
			if st.Cond != nil {
				scope = append(scope, st.Cond)
			}
			if st.Post != nil {
				scope = append(scope, st.Post)
			}
		case *ast.RangeStmt:
			scope = append(scope, st.X)
		case *ast.SwitchStmt:
			if st.Tag != nil {
				scope = append(scope, st.Tag)
			}
		case *ast.TypeSwitchStmt:
			if st.Assign != nil {
				scope = append(scope, st.Assign)
			}
		case *ast.SelectStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					scope = append(scope, cc.Comm)
				}
			}
		case *ast.BlockStmt, *ast.LabeledStmt:
			// inner statements visited by recursion
		default:
			scope = append(scope, s)
		}
		visitInScope := func(n ast.Node) {
			switch x := n.(type) {
			case *ast.SendStmt:
				report(x.Pos(), "sends on a channel")
			case *ast.CallExpr:
				if path, op, ok := lockPath(x); ok {
					// Nested ExprStmt bookkeeping already handled
					// top-level calls; here only non-statement lock
					// calls remain, and pairing is ambiguous — only
					// flag acquisitions of other locks.
					if (op == "Lock" || op == "RLock") && path != held[len(held)-1].path {
						report(x.Pos(), "acquires "+path)
					}
					return
				}
				if _, name, _, ok := selCall(x); ok && denyNames[name] {
					report(x.Pos(), "calls "+name)
					return
				}
				if key, ok := lp.resolveCall(lf, x); ok {
					if c := lp.funcs[key]; c != nil && c.blocking {
						report(x.Pos(), "calls "+key+", which "+c.why+",")
					}
				}
			}
		}
		for _, n := range scope {
			inspectNoFuncLit(n, visitInScope)
		}
	})
	return out
}

// exprString renders simple selector chains for lock-path fallback.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if base := exprString(x.X); base != "" {
			return base + "." + x.Sel.Name
		}
	case *ast.ParenExpr:
		return exprString(x.X)
	}
	return ""
}
