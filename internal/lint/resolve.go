package lint

// Shared syntactic resolution: receiver-relative access paths, method
// tables, and declared field types. All name-based — see the package
// comment for why no go/types.

import (
	"go/ast"
	"strconv"
	"strings"
)

// recvName returns the receiver identifier of a method declaration
// ("" for plain functions or anonymous receivers).
func recvName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// recvType returns the receiver's type name, stripped of pointers
// ("" for plain functions).
func recvType(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	return typeName(fd.Recv.List[0].Type)
}

// typeName extracts the bare name of a type expression: the "Batch"
// of *Batch, engine.Batch, or []Batch. Returns "" for anything more
// structural (func types, maps, channels).
func typeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return typeName(t.X)
	case *ast.SelectorExpr:
		return t.Sel.Name
	case *ast.ArrayType:
		return typeName(t.Elt)
	case *ast.ParenExpr:
		return typeName(t.X)
	case *ast.IndexExpr: // generic instantiation
		return typeName(t.X)
	}
	return ""
}

// methodTable indexes a package's methods by receiver type name.
func methodTable(pkg *Package) map[string]map[string]*ast.FuncDecl {
	out := map[string]map[string]*ast.FuncDecl{}
	for _, f := range pkg.Files {
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil {
				continue
			}
			tn := recvType(fd)
			if tn == "" {
				continue
			}
			if out[tn] == nil {
				out[tn] = map[string]*ast.FuncDecl{}
			}
			out[tn][fd.Name.Name] = fd
		}
	}
	return out
}

// typeRef names a type as (import path, type name). Pkg is "" for
// same-package or unresolvable references.
type typeRef struct {
	Pkg  string
	Name string
}

// structInfo is the declared shape of one struct type.
type structInfo struct {
	fields map[string]typeRef // named fields
	embeds []typeRef          // anonymous fields, declaration order
}

// structTable indexes a package's struct declarations, resolving field
// types against the file's imports (so b.DB with DB *engine.DB becomes
// {repro/internal/engine, DB}).
func structTable(pkg *Package) map[string]*structInfo {
	out := map[string]*structInfo{}
	for _, f := range pkg.Files {
		imports := importTable(f.AST)
		for _, decl := range f.AST.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				info := &structInfo{fields: map[string]typeRef{}}
				for _, fld := range st.Fields.List {
					ref := resolveTypeRef(fld.Type, pkg.ImportPath, imports)
					if len(fld.Names) == 0 {
						if ref.Name != "" {
							info.embeds = append(info.embeds, ref)
						}
						continue
					}
					for _, name := range fld.Names {
						info.fields[name.Name] = ref
					}
				}
				out[ts.Name.Name] = info
			}
		}
	}
	return out
}

// importTable maps local import names to import paths for one file.
func importTable(f *ast.File) map[string]string {
	out := map[string]string{}
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := path
		if i := strings.LastIndex(path, "/"); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		out[name] = path
	}
	return out
}

// resolveTypeRef names a field's type: same-package idents keep
// selfPkg, selector types resolve through the imports.
func resolveTypeRef(e ast.Expr, selfPkg string, imports map[string]string) typeRef {
	switch t := e.(type) {
	case *ast.Ident:
		return typeRef{Pkg: selfPkg, Name: t.Name}
	case *ast.StarExpr:
		return resolveTypeRef(t.X, selfPkg, imports)
	case *ast.ParenExpr:
		return resolveTypeRef(t.X, selfPkg, imports)
	case *ast.ArrayType:
		return resolveTypeRef(t.Elt, selfPkg, imports)
	case *ast.SelectorExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			if path, ok := imports[id.Name]; ok {
				return typeRef{Pkg: path, Name: t.Sel.Name}
			}
		}
	}
	return typeRef{}
}

// pathEnv resolves expressions to access paths relative to one root
// identifier (a receiver or parameter). The root resolves to "";
// o.builds to "builds"; a range value over o.builds to "builds[]"; and
// bt.child with bt bound by that range to "builds[].child".
type pathEnv struct {
	root string
	vars map[string]string
}

func newPathEnv(root string) *pathEnv {
	return &pathEnv{root: root, vars: map[string]string{}}
}

// bind records a local alias for a path (assignment or range value).
func (env *pathEnv) bind(name, path string) {
	if name != "" && name != "_" {
		env.vars[name] = path
	}
}

// resolve maps an expression to its access path. The boolean is false
// when the expression is not rooted at the environment's root or one
// of its aliases.
func (env *pathEnv) resolve(e ast.Expr) (string, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		if x.Name == env.root {
			return "", true
		}
		if p, ok := env.vars[x.Name]; ok {
			return p, true
		}
	case *ast.SelectorExpr:
		if p, ok := env.resolve(x.X); ok {
			if p == "" {
				return x.Sel.Name, true
			}
			return p + "." + x.Sel.Name, true
		}
	case *ast.ParenExpr:
		return env.resolve(x.X)
	case *ast.StarExpr:
		return env.resolve(x.X)
	case *ast.IndexExpr:
		if p, ok := env.resolve(x.X); ok {
			return p + "[]", true
		}
	}
	return "", false
}

// walkWithEnv traverses statements in order, keeping env up to date
// across alias assignments and range bindings, and calls visit on
// every statement. Nested blocks share the same env (good enough for
// the straight-line shapes these analyzers check). Function literals
// are not entered: their bodies run on another goroutine or under
// another frame's discipline.
func walkWithEnv(stmts []ast.Stmt, env *pathEnv, visit func(ast.Stmt)) {
	for _, s := range stmts {
		visit(s)
		switch st := s.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i, lhs := range st.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					if p, ok := env.resolve(st.Rhs[i]); ok {
						// m := *n copies the value — not an alias.
						if _, isStar := st.Rhs[i].(*ast.StarExpr); !isStar {
							env.bind(id.Name, p)
							continue
						}
					}
					delete(env.vars, id.Name)
				}
			}
		case *ast.RangeStmt:
			if p, ok := env.resolve(st.X); ok {
				if id, ok := st.Value.(*ast.Ident); ok {
					env.bind(id.Name, p+"[]")
				}
			}
			walkWithEnv(st.Body.List, env, visit)
		case *ast.IfStmt:
			if st.Init != nil {
				walkWithEnv([]ast.Stmt{st.Init}, env, visit)
			}
			walkWithEnv(st.Body.List, env, visit)
			if st.Else != nil {
				walkWithEnv([]ast.Stmt{st.Else}, env, visit)
			}
		case *ast.ForStmt:
			walkWithEnv(st.Body.List, env, visit)
		case *ast.BlockStmt:
			walkWithEnv(st.List, env, visit)
		case *ast.SwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkWithEnv(cc.Body, env, visit)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkWithEnv(cc.Body, env, visit)
				}
			}
		case *ast.SelectStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					walkWithEnv(cc.Body, env, visit)
				}
			}
		case *ast.LabeledStmt:
			walkWithEnv([]ast.Stmt{st.Stmt}, env, visit)
		}
	}
}

// selCall matches a call of the form <expr>.<name>(...) and returns
// the base expression and method name.
func selCall(e ast.Expr) (ast.Expr, string, *ast.CallExpr, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, "", nil, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", nil, false
	}
	return sel.X, sel.Sel.Name, call, true
}
