package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// wantMarks scans fixture sources for "// want <analyzer>" markers and
// returns the expected finding positions as "path:line".
func wantMarks(t *testing.T, dir, analyzer string) map[string]bool {
	t.Helper()
	out := map[string]bool{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			if strings.Contains(sc.Text(), "// want "+analyzer) {
				out[fmt.Sprintf("%s:%d", path, line)] = true
			}
		}
		f.Close()
	}
	return out
}

// runFixture loads one fixture package and checks the analyzer's
// findings exactly match its want markers.
func runFixture(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	prog, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := wantMarks(t, dir, a.Name)
	got := map[string]bool{}
	for _, f := range prog.Run(a) {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		if !want[key] {
			t.Errorf("unexpected finding: %s", f)
		}
		got[key] = true
	}
	for key := range want {
		if !got[key] {
			t.Errorf("missing finding at %s (marked // want %s)", key, a.Name)
		}
	}
}

func TestOpContractFixture(t *testing.T) { runFixture(t, OpContract, "opcontract") }
func TestLockOrderFixture(t *testing.T)  { runFixture(t, LockOrder, "lockorder") }
func TestCowRewriteFixture(t *testing.T) { runFixture(t, CowRewrite, "cowrewrite") }

// TestSuppression checks both //obdalint:ignore placements silence an
// otherwise-certain finding.
func TestSuppression(t *testing.T) {
	dir := filepath.Join("testdata", "src", "suppress")
	prog, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: without suppression the fixture would be flagged.
	raw := CowRewrite.Run(prog)
	if len(raw) != 2 {
		t.Fatalf("fixture should trip cowrewrite twice pre-suppression, got %d", len(raw))
	}
	if fs := prog.Run(CowRewrite); len(fs) != 0 {
		t.Fatalf("suppressed findings still reported: %v", fs)
	}
}

// TestRepoClean is the acceptance gate: the full production tree must
// produce zero findings (testdata fixtures are skipped by the loader).
func TestRepoClean(t *testing.T) {
	prog, err := Load(filepath.Join("..", ".."), "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Pkgs) < 10 {
		t.Fatalf("loaded only %d packages — loader lost the tree", len(prog.Pkgs))
	}
	for _, f := range prog.Run(All...) {
		t.Errorf("%s", f)
	}
}

// TestLoadSkipsTestdataAndTests pins the loader's scope: walks skip
// fixture trees, and _test.go files are never parsed.
func TestLoadSkipsTestdataAndTests(t *testing.T) {
	prog, err := Load(".", "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range prog.Pkgs {
		if strings.Contains(pkg.Dir, "testdata") {
			t.Errorf("loader descended into %s", pkg.Dir)
		}
		for _, f := range pkg.Files {
			if strings.HasSuffix(f.Path, "_test.go") {
				t.Errorf("loader parsed test file %s", f.Path)
			}
		}
	}
}
