package lint

// cowrewrite enforces the plan package's copy-on-write rule: logical
// plan nodes (*plan.Node) are shared immutable values — rewrite rules
// and any helper receiving a *Node must build modified copies
// (m := *n; m.X = ...; return &m), never assign through the pointer
// they were handed. Violations silently corrupt every other plan (and
// every cache entry) sharing the subtree.
//
// The analyzer runs on packages named "plan" and flags, for each
// function with a *Node parameter: field or element assignments rooted
// at the parameter or one of its pointer aliases (m := n, range values
// of n.Inputs), and whole-value stores (*n = ...). A value copy
// (m := *n) is the sanctioned idiom and never tainted.

import (
	"go/ast"
)

// CowRewrite is the copy-on-write analyzer for the plan IR.
var CowRewrite = &Analyzer{
	Name: "cowrewrite",
	Doc:  "plan rewrite rules must copy *Node values, never mutate through a parameter",
	Run:  runCowRewrite,
}

func runCowRewrite(p *Program) []Finding {
	var out []Finding
	for _, pkg := range p.Pkgs {
		if pkg.Name != "plan" {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				out = append(out, checkCow(p, fd)...)
			}
		}
	}
	return out
}

// nodeParams returns the names of parameters (and pointer receivers)
// typed *Node.
func nodeParams(fd *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, fld := range fl.List {
			star, ok := fld.Type.(*ast.StarExpr)
			if !ok || typeName(star.X) != "Node" {
				continue
			}
			for _, name := range fld.Names {
				out[name.Name] = true
			}
		}
	}
	add(fd.Type.Params)
	add(fd.Recv)
	return out
}

func checkCow(p *Program, fd *ast.FuncDecl) []Finding {
	tainted := nodeParams(fd)
	if len(tainted) == 0 {
		return nil
	}
	var out []Finding
	flag := func(pos ast.Node, via string) {
		out = append(out, Finding{
			Pos:      p.Fset.Position(pos.Pos()),
			Analyzer: "cowrewrite",
			Message:  fd.Name.Name + " mutates shared *Node " + via + "; copy first (m := *" + via + ")",
		})
	}
	// rootIdent finds the base identifier of a selector/index chain.
	var rootIdent func(e ast.Expr) *ast.Ident
	rootIdent = func(e ast.Expr) *ast.Ident {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			return rootIdent(x.X)
		case *ast.IndexExpr:
			return rootIdent(x.X)
		case *ast.StarExpr:
			return rootIdent(x.X)
		case *ast.ParenExpr:
			return rootIdent(x.X)
		}
		return nil
	}
	var walk func(stmts []ast.Stmt)
	walk = func(stmts []ast.Stmt) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *ast.AssignStmt:
				// Alias tracking first: m := n taints m, m := *n does not.
				if len(st.Lhs) == len(st.Rhs) {
					for i, lhs := range st.Lhs {
						id, ok := lhs.(*ast.Ident)
						if !ok {
							continue
						}
						if rid, isID := st.Rhs[i].(*ast.Ident); isID && tainted[rid.Name] {
							tainted[id.Name] = true
						} else {
							delete(tainted, id.Name)
						}
					}
				}
				for _, lhs := range st.Lhs {
					if _, isID := lhs.(*ast.Ident); isID {
						continue // plain variable (re)binding, handled above
					}
					if id := rootIdent(lhs); id != nil && tainted[id.Name] {
						flag(st, id.Name)
					}
				}
			case *ast.IncDecStmt:
				if id := rootIdent(st.X); id != nil && tainted[id.Name] {
					flag(st, id.Name)
				}
			case *ast.RangeStmt:
				// Ranging over n.Inputs hands out shared *Node elements.
				if id := rootIdent(st.X); id != nil && tainted[id.Name] {
					if v, ok := st.Value.(*ast.Ident); ok {
						tainted[v.Name] = true
					}
				}
				walk(st.Body.List)
			case *ast.IfStmt:
				if st.Init != nil {
					walk([]ast.Stmt{st.Init})
				}
				walk(st.Body.List)
				if st.Else != nil {
					walk([]ast.Stmt{st.Else})
				}
			case *ast.ForStmt:
				walk(st.Body.List)
			case *ast.BlockStmt:
				walk(st.List)
			case *ast.SwitchStmt:
				for _, c := range st.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						walk(cc.Body)
					}
				}
			case *ast.TypeSwitchStmt:
				for _, c := range st.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						walk(cc.Body)
					}
				}
			case *ast.LabeledStmt:
				walk([]ast.Stmt{st.Stmt})
			}
		}
	}
	walk(fd.Body.List)
	return out
}
