// Fixture for the cowrewrite analyzer. The package is named "plan" so
// the analyzer engages; trailing want-marker comments name the
// required findings.
// Parsed only, never compiled.
package plan

type Node struct {
	Op     int
	Inputs []*Node
}

// goodRewrite is the sanctioned copy-on-write idiom.
func goodRewrite(n *Node) *Node {
	m := *n
	m.Op = 1
	m.Inputs = append([]*Node(nil), n.Inputs...)
	return &m
}

// goodRead only inspects the shared node.
func goodRead(n *Node) int {
	total := n.Op
	for _, in := range n.Inputs {
		total += in.Op
	}
	return total
}

// goodFresh mutates a node it constructed itself.
func goodFresh(n *Node) *Node {
	fresh := &Node{Op: n.Op}
	fresh.Inputs = n.Inputs
	return fresh
}

// badRewrite mutates the shared node directly.
func badRewrite(n *Node) *Node {
	n.Op = 1 // want cowrewrite
	return n
}

// badAlias mutates it through a pointer alias.
func badAlias(n *Node) *Node {
	m := n
	m.Op = 2 // want cowrewrite
	return m
}

// badChild mutates shared children handed out by range and by index.
func badChild(n *Node) {
	for _, in := range n.Inputs {
		in.Op = 3 // want cowrewrite
	}
	n.Inputs[0] = nil // want cowrewrite
}

// badStar overwrites the shared value wholesale.
func badStar(n *Node) {
	*n = Node{} // want cowrewrite
}
