// Fixture for the opcontract analyzer. The types here mirror the
// engine's operator shapes; a trailing want-marker comment names
// each line the analyzer must flag, everything else must stay clean. The fixture is
// parsed, never compiled.
package opcontract

type Batch struct{ n int }

func (b *Batch) Len() int          { return b.n }
func (b *Batch) Width() int        { return 0 }
func (b *Batch) Row(i int) []int64 { return nil }

type Operator interface {
	Next(out *Batch) bool
	Close()
	Children() []Operator
}

type opBase struct{ open bool }

func (o *opBase) closeOnce() bool {
	was := o.open
	o.open = false
	return was
}

// goodOp follows the whole contract: guarded Close, every Children
// shape closed (scalar field, ranged slice field, nested range path).
type goodOp struct {
	opBase
	probe    Operator
	children []Operator
	builds   []struct{ child Operator }
}

func (o *goodOp) Open()                {}
func (o *goodOp) Next(out *Batch) bool { return false }

func (o *goodOp) Close() {
	if !o.closeOnce() {
		return
	}
	o.probe.Close()
	for _, c := range o.children {
		c.Close()
	}
	for _, bt := range o.builds {
		bt.child.Close()
	}
}

func (o *goodOp) Children() []Operator {
	out := []Operator{o.probe}
	out = append(out, o.children...)
	for _, bt := range o.builds {
		out = append(out, bt.child)
	}
	return out
}

// helperOp delegates its teardown to a same-type helper — one level of
// indirection the analyzer follows.
type helperOp struct {
	opBase
	child Operator
}

func (o *helperOp) Open()                {}
func (o *helperOp) Next(out *Batch) bool { return false }
func (o *helperOp) Close()               { o.teardown() }
func (o *helperOp) teardown() {
	if !o.closeOnce() {
		return
	}
	o.child.Close()
}
func (o *helperOp) Children() []Operator { return []Operator{o.child} }

// emptyOp has no children and an empty Close — allowed.
type emptyOp struct{ opBase }

func (o *emptyOp) Open()                {}
func (o *emptyOp) Next(out *Batch) bool { return false }
func (o *emptyOp) Close()               {}
func (o *emptyOp) Children() []Operator { return nil }

// leakOp reports a child it never closes.
type leakOp struct {
	opBase
	child Operator
	stats int
}

func (o *leakOp) Open()                {}
func (o *leakOp) Next(out *Batch) bool { return false }

func (o *leakOp) Close() { // want opcontract
	if !o.closeOnce() {
		return
	}
	o.stats++
}

func (o *leakOp) Children() []Operator { return []Operator{o.child} }

// rudeOp closes its child but has no idempotence guard.
type rudeOp struct {
	opBase
	child Operator
}

func (o *rudeOp) Open()                {}
func (o *rudeOp) Next(out *Batch) bool { return false }

func (o *rudeOp) Close() { // want opcontract
	o.child.Close()
}

func (o *rudeOp) Children() []Operator { return []Operator{o.child} }

// hoardOp retains the caller's batch in various guises.
type hoardOp struct {
	opBase
	last  *Batch
	row   []int64
	rows  [][]int64
	count int
}

func (o *hoardOp) Open() {}

func (o *hoardOp) Next(out *Batch) bool {
	o.count = out.Len() // scalar read: fine
	o.last = out        // want opcontract
	o.row = out.Row(0)  // want opcontract
	alias := out
	o.last = alias                      // want opcontract
	o.rows = append(o.rows, out.Row(1)) // want opcontract
	return false
}

func (o *hoardOp) Close() {
	if !o.closeOnce() {
		return
	}
}

func (o *hoardOp) Children() []Operator { return nil }
