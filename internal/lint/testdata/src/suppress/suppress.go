// Fixture for the suppression mechanism: both placements of
// //obdalint:ignore (line above and same line) silence a finding the
// cowrewrite analyzer would otherwise report.
package plan

type Node struct {
	Op     int
	Inputs []*Node
}

func initNode(n *Node) {
	//obdalint:ignore cowrewrite caller passes a node it just allocated
	n.Op = 1
	n.Inputs = nil //obdalint:ignore cowrewrite same: fresh node
}
