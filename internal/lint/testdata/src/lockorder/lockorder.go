// Fixture for the lockorder analyzer: channel sends, nested lock
// acquisitions, deny-listed calls, and transitively blocking calls
// inside mutex regions. Trailing want-marker comments name the
// required findings.
package lockorder

import "sync"

type queue struct {
	mu  sync.Mutex
	sub sync.Mutex
	ch  chan int
	n   int
}

// goodPush releases the lock before the send.
func (q *queue) goodPush(v int) {
	q.mu.Lock()
	q.n++
	q.mu.Unlock()
	q.ch <- v
}

// badSend holds the lock (deferred unlock) across the send.
func (q *queue) badSend(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.ch <- v // want lockorder
}

// badNested acquires a second lock inside the first's region.
func (q *queue) badNested() {
	q.mu.Lock()
	q.sub.Lock() // want lockorder
	q.sub.Unlock()
	q.mu.Unlock()
}

// goodSequential pairs the locks one after the other.
func (q *queue) goodSequential() {
	q.mu.Lock()
	q.n++
	q.mu.Unlock()
	q.sub.Lock()
	q.sub.Unlock()
}

// locked takes q.mu — transitively blocking for any caller under a
// different lock.
func (q *queue) locked() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// badIndirect calls a lock-taking method while holding another lock.
func (q *queue) badIndirect() {
	q.sub.Lock()
	defer q.sub.Unlock()
	_ = q.locked() // want lockorder
}

// goodIndirect makes the same call lock-free.
func (q *queue) goodIndirect() int {
	return q.locked()
}

type runner struct{}

func (r *runner) Run() {}

// badDeny calls a deny-listed entry point under the lock; the callee
// need not resolve — the name alone is the signal.
func (q *queue) badDeny(r *runner) {
	q.mu.Lock()
	defer q.mu.Unlock()
	r.Run() // want lockorder
}

// goodDeny runs it after the region.
func (q *queue) goodDeny(r *runner) {
	q.mu.Lock()
	q.n++
	q.mu.Unlock()
	r.Run()
}

// goodGoroutine: sends inside a spawned function literal run on
// another goroutine, outside this frame's lock region.
func (q *queue) goodGoroutine() {
	q.mu.Lock()
	defer q.mu.Unlock()
	go func() { q.ch <- 1 }()
}
