package lint

// opcontract checks the engine's Operator lifecycle contract on every
// type that structurally implements it (methods Next(*Batch) bool,
// Close(), Children() []Operator):
//
//  1. Close must close every child Children() reports — children are
//     resolved to receiver-relative paths (o.child, o.children ranged,
//     o.builds[].child) and Close (plus one level of same-type helper
//     calls) must call .Close() on each path.
//  2. A Close with side effects must guard them behind closeOnce():
//     parents may close a child that another path already closed, so
//     Close is contractually idempotent.
//  3. Next must not store the received *Batch — or anything derived
//     from it (aliases, &b, b.Row(...)) — into a receiver field. The
//     caller owns the batch and recycles it; retaining it aliases
//     future batches' storage. Scalar reads (b.Len(), b.Width()) are
//     fine.

import (
	"go/ast"
)

// OpContract is the operator-lifecycle analyzer.
var OpContract = &Analyzer{
	Name: "opcontract",
	Doc:  "Operator impls: Close closes all children and is idempotent via closeOnce; Next never retains the caller's batch",
	Run:  runOpContract,
}

func runOpContract(p *Program) []Finding {
	var out []Finding
	for _, pkg := range p.Pkgs {
		methods := methodTable(pkg)
		for tn, ms := range methods {
			next, close_, children := ms["Next"], ms["Close"], ms["Children"]
			if next == nil || close_ == nil || children == nil || !isOperatorNext(next) {
				continue
			}
			out = append(out, checkClose(p, tn, close_, children, ms)...)
			out = append(out, checkNextRetention(p, tn, next)...)
		}
	}
	return out
}

// isOperatorNext matches the signature Next(*Batch) bool (the Batch
// type matched by name — *Batch or *engine.Batch).
func isOperatorNext(fd *ast.FuncDecl) bool {
	ft := fd.Type
	if ft.Params == nil || len(ft.Params.List) != 1 {
		return false
	}
	star, ok := ft.Params.List[0].Type.(*ast.StarExpr)
	if !ok || typeName(star.X) != "Batch" {
		return false
	}
	return ft.Results != nil && len(ft.Results.List) == 1 && typeName(ft.Results.List[0].Type) == "bool"
}

func checkClose(p *Program, tn string, close_, children *ast.FuncDecl, ms map[string]*ast.FuncDecl) []Finding {
	var out []Finding
	pos := p.Fset.Position(close_.Pos())

	required := childPaths(children)
	closed, callsGuard := closeEffects(close_, ms, 1)
	for _, cp := range required {
		if !closed[cp] {
			out = append(out, Finding{
				Pos:      pos,
				Analyzer: "opcontract",
				Message:  tn + ".Close does not close child " + cp + " reported by Children",
			})
		}
	}
	if close_.Body != nil && len(close_.Body.List) > 0 && !callsGuard {
		out = append(out, Finding{
			Pos:      pos,
			Analyzer: "opcontract",
			Message:  tn + ".Close has side effects but no closeOnce() guard; Close must be idempotent",
		})
	}
	return out
}

// childPaths collects the receiver-relative paths of every child
// expression Children can report: composite-literal elements, append
// arguments, and directly returned slice fields (whose elements get
// the path suffix "[]").
func childPaths(fd *ast.FuncDecl) []string {
	if fd.Body == nil {
		return nil
	}
	env := newPathEnv(recvName(fd))
	seen := map[string]bool{}
	var paths []string
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			paths = append(paths, path)
		}
	}
	addExpr := func(e ast.Expr) {
		if path, ok := env.resolve(e); ok && path != "" {
			add(path)
		}
	}
	walkWithEnv(fd.Body.List, env, func(s ast.Stmt) {
		ast.Inspect(s, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CompositeLit:
				for _, el := range x.Elts {
					addExpr(el)
				}
			case *ast.CallExpr:
				if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "append" {
					for i, a := range x.Args {
						if i == 0 {
							continue
						}
						if x.Ellipsis.IsValid() && i == len(x.Args)-1 {
							if path, ok := env.resolve(a); ok && path != "" {
								add(path + "[]")
							}
							continue
						}
						addExpr(a)
					}
				}
			case *ast.ReturnStmt:
				for _, r := range x.Results {
					if path, ok := env.resolve(r); ok && path != "" {
						add(path + "[]")
					}
				}
			}
			return true
		})
	})
	return paths
}

// closeEffects walks a Close method (and, at depth > 0, same-type
// helper methods it calls) collecting the set of closed child paths
// and whether closeOnce() is called.
func closeEffects(fd *ast.FuncDecl, ms map[string]*ast.FuncDecl, depth int) (map[string]bool, bool) {
	closed := map[string]bool{}
	guard := false
	if fd.Body == nil {
		return closed, guard
	}
	recv := recvName(fd)
	env := newPathEnv(recv)
	walkWithEnv(fd.Body.List, env, func(s ast.Stmt) {
		ast.Inspect(s, func(n ast.Node) bool {
			e, isExpr := n.(ast.Expr)
			if !isExpr {
				return true
			}
			base, name, _, ok := selCall(e)
			if !ok {
				return true
			}
			switch name {
			case "Close":
				if path, ok := env.resolve(base); ok && path != "" {
					closed[path] = true
				}
			case "closeOnce":
				if id, ok := base.(*ast.Ident); ok && id.Name == recv {
					guard = true
				}
			default:
				// One level of same-type helpers: o.teardown() may hold
				// the closes and the guard.
				if depth > 0 {
					if id, ok := base.(*ast.Ident); ok && id.Name == recv {
						if helper := ms[name]; helper != nil {
							hc, hg := closeEffects(helper, ms, depth-1)
							for p := range hc {
								closed[p] = true
							}
							guard = guard || hg
						}
					}
				}
			}
			return true
		})
	})
	return closed, guard
}

// checkNextRetention flags receiver-field assignments in Next whose
// right-hand side captures the batch parameter.
func checkNextRetention(p *Program, tn string, fd *ast.FuncDecl) []Finding {
	if fd.Body == nil {
		return nil
	}
	recv := recvName(fd)
	param := ""
	if names := fd.Type.Params.List[0].Names; len(names) > 0 {
		param = names[0].Name
	}
	if param == "" || param == "_" {
		return nil
	}
	var out []Finding
	tainted := map[string]bool{param: true}
	env := newPathEnv(recv)
	walkWithEnv(fd.Body.List, env, func(s ast.Stmt) {
		as, ok := s.(*ast.AssignStmt)
		if !ok {
			return
		}
		for i, lhs := range as.Lhs {
			var rhs ast.Expr
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			} else {
				rhs = as.Rhs[0]
			}
			if id, ok := lhs.(*ast.Ident); ok {
				if captures(rhs, tainted) {
					tainted[id.Name] = true
				} else {
					delete(tainted, id.Name)
				}
				continue
			}
			if path, ok := env.resolve(lhs); ok && path != "" && captures(rhs, tainted) {
				out = append(out, Finding{
					Pos:      p.Fset.Position(as.Pos()),
					Analyzer: "opcontract",
					Message:  tn + ".Next stores the caller's *Batch (or a view of it) into field " + path + "; batches are recycled by the caller",
				})
			}
		}
	})
	return out
}

// captures reports whether evaluating e retains memory owned by a
// tainted batch: the batch itself, a pointer to it, a row slice from
// it. Scalar accessors (Len, Width) do not capture.
func captures(e ast.Expr, tainted map[string]bool) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return tainted[x.Name]
	case *ast.CallExpr:
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && tainted[id.Name] {
				switch sel.Sel.Name {
				case "Len", "Width":
					return false
				}
				return true
			}
		}
		for _, a := range x.Args {
			if captures(a, tainted) {
				return true
			}
		}
		return false
	case *ast.UnaryExpr:
		return captures(x.X, tainted)
	case *ast.StarExpr:
		// *b copies the value but the copy shares row storage.
		return captures(x.X, tainted)
	case *ast.ParenExpr:
		return captures(x.X, tainted)
	case *ast.SelectorExpr:
		return captures(x.X, tainted)
	case *ast.IndexExpr:
		return captures(x.X, tainted) || captures(x.Index, tainted)
	case *ast.SliceExpr:
		return captures(x.X, tainted)
	case *ast.BinaryExpr:
		// Arithmetic/comparison over batch reads yields scalars.
		return false
	}
	return false
}
