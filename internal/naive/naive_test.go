package naive

import (
	"testing"

	"repro/internal/dllite"
	"repro/internal/query"
)

func abox(t *testing.T, s string) *dllite.ABox {
	t.Helper()
	return dllite.MustParseABox(s)
}

func TestEvalCQBasics(t *testing.T) {
	ab := abox(t, `
A(a)
A(b)
R(a, b)
R(b, c)
`)
	rel := EvalCQ(query.MustParseCQ("q(x, y) <- A(x), R(x, y)"), ab)
	if rel.Size() != 2 {
		t.Fatalf("got %d rows: %v", rel.Size(), rel.Sorted())
	}
	sorted := rel.Sorted()
	if sorted[0].Key() != (Tuple{"a", "b"}).Key() || sorted[1].Key() != (Tuple{"b", "c"}).Key() {
		t.Errorf("rows = %v", sorted)
	}
}

func TestEvalCQConstants(t *testing.T) {
	ab := abox(t, "R(a, b)\nR(c, b)\nR(a, d)")
	rel := EvalCQ(query.MustParseCQ("q(x) <- R(x, 'b')"), ab)
	if rel.Size() != 2 {
		t.Fatalf("rows = %v", rel.Sorted())
	}
}

func TestEvalCQRepeatedVar(t *testing.T) {
	ab := abox(t, "R(a, a)\nR(a, b)")
	rel := EvalCQ(query.MustParseCQ("q(x) <- R(x, x)"), ab)
	if rel.Size() != 1 || rel.Sorted()[0][0] != "a" {
		t.Fatalf("diagonal = %v", rel.Sorted())
	}
}

func TestEvalCQBoolean(t *testing.T) {
	ab := abox(t, "A(a)")
	q := query.CQ{Name: "b", Atoms: []query.Atom{query.ConceptAtom("A", query.Var("x"))}}
	if EvalCQ(q, ab).Size() != 1 {
		t.Error("boolean true must yield the empty tuple")
	}
	q2 := query.CQ{Name: "b", Atoms: []query.Atom{query.ConceptAtom("B", query.Var("x"))}}
	if EvalCQ(q2, ab).Size() != 0 {
		t.Error("boolean false must yield no tuples")
	}
}

func TestEvalUCQUnionsDistinct(t *testing.T) {
	ab := abox(t, "A(a)\nB(a)\nB(b)")
	u := query.UCQ{Disjuncts: []query.CQ{
		query.MustParseCQ("q(x) <- A(x)"),
		query.MustParseCQ("q(x) <- B(x)"),
	}}
	rel := EvalUCQ(u, ab)
	if rel.Size() != 2 {
		t.Fatalf("union = %v", rel.Sorted())
	}
}

func TestEvalJUCQJoins(t *testing.T) {
	ab := abox(t, `
A(a)
A(b)
R(a, c)
`)
	j := query.JUCQ{
		Name: "q",
		Head: []query.Term{query.Var("x")},
		Subs: []query.UCQ{
			{Disjuncts: []query.CQ{query.MustParseCQ("f1(x) <- A(x)")}},
			{Disjuncts: []query.CQ{query.MustParseCQ("f2(x) <- R(x, y)")}},
		},
	}
	rel := EvalJUCQ(j, ab)
	if rel.Size() != 1 || rel.Sorted()[0][0] != "a" {
		t.Fatalf("join = %v", rel.Sorted())
	}
}

func TestEvalJUCQCartesianWhenNoSharedVars(t *testing.T) {
	ab := abox(t, "A(a)\nB(b)\nB(c)")
	j := query.JUCQ{
		Name: "q",
		Head: []query.Term{query.Var("x"), query.Var("y")},
		Subs: []query.UCQ{
			{Disjuncts: []query.CQ{query.MustParseCQ("f1(x) <- A(x)")}},
			{Disjuncts: []query.CQ{query.MustParseCQ("f2(y) <- B(y)")}},
		},
	}
	if got := EvalJUCQ(j, ab).Size(); got != 2 {
		t.Fatalf("cartesian join = %d rows, want 2", got)
	}
}

func TestEvalSCQAndUSCQ(t *testing.T) {
	ab := abox(t, "A(a)\nB(b)\nR(a, x1)\nS(b, x2)")
	s := query.SCQ{
		Name: "q",
		Head: []query.Term{query.Var("x")},
		Blocks: [][]query.Atom{
			{query.ConceptAtom("A", query.Var("x")), query.ConceptAtom("B", query.Var("x"))},
			{query.RoleAtom("R", query.Var("x"), query.Var("y")),
				query.RoleAtom("S", query.Var("x"), query.Var("y"))},
		},
	}
	if got := EvalSCQ(s, ab).Size(); got != 2 {
		t.Fatalf("SCQ = %d rows, want 2 (a and b)", got)
	}
	u := query.USCQ{Disjuncts: []query.SCQ{s}}
	if got := EvalUSCQ(u, ab).Size(); got != 2 {
		t.Fatalf("USCQ = %d rows", got)
	}
}

func TestSameAnswers(t *testing.T) {
	r1 := NewRelation([]string{"x"})
	r1.Add(Tuple{"a"})
	r2 := NewRelation([]string{"x"})
	r2.Add(Tuple{"a"})
	if !SameAnswers(r1, r2) {
		t.Error("identical relations must compare equal")
	}
	r2.Add(Tuple{"b"})
	if SameAnswers(r1, r2) {
		t.Error("different sizes must differ")
	}
	r3 := NewRelation([]string{"x"})
	r3.Add(Tuple{"c"})
	if SameAnswers(r1, r3) {
		t.Error("different tuples must differ")
	}
}

func TestRelationSortedStable(t *testing.T) {
	r := NewRelation([]string{"x"})
	r.Add(Tuple{"b"})
	r.Add(Tuple{"a"})
	r.Add(Tuple{"a"}) // duplicate collapses
	s := r.Sorted()
	if len(s) != 2 || s[0][0] != "a" || s[1][0] != "b" {
		t.Errorf("sorted = %v", s)
	}
}
