// Package naive provides a deliberately simple reference evaluator for
// the FOL query dialects over small ABoxes. It is the correctness
// oracle the test suites and examples compare the real engine and the
// cover-based reformulations against; it makes no attempt at
// efficiency (nested-loop matching, full materialization).
package naive

import (
	"sort"
	"strings"

	"repro/internal/dllite"
	"repro/internal/query"
)

// Tuple is an answer tuple; the zero-length tuple encodes boolean true.
type Tuple []string

// Key renders the tuple as a map key.
func (t Tuple) Key() string { return strings.Join(t, "\x00") }

// Relation is a set of tuples with a schema of variable names.
type Relation struct {
	Schema []string
	Tuples map[string]Tuple
}

// NewRelation builds an empty relation with the given schema.
func NewRelation(schema []string) *Relation {
	return &Relation{Schema: schema, Tuples: make(map[string]Tuple)}
}

// Add inserts a tuple.
func (r *Relation) Add(t Tuple) { r.Tuples[t.Key()] = t }

// Size returns the number of tuples.
func (r *Relation) Size() int { return len(r.Tuples) }

// Sorted returns the tuples sorted lexicographically (stable output for
// tests and examples).
func (r *Relation) Sorted() []Tuple {
	out := make([]Tuple, 0, len(r.Tuples))
	for _, t := range r.Tuples {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// EvalCQ evaluates a CQ over the ABox by backtracking over assertions.
func EvalCQ(q query.CQ, ab *dllite.ABox) *Relation {
	schema := make([]string, len(q.Head))
	for i, h := range q.Head {
		schema[i] = h.Name
	}
	rel := NewRelation(schema)
	bind := make(map[string]string)
	var rec func(i int)
	rec = func(i int) {
		if i == len(q.Atoms) {
			t := make(Tuple, len(q.Head))
			for j, h := range q.Head {
				t[j] = bind[h.Name]
			}
			rel.Add(t)
			return
		}
		a := q.Atoms[i]
		for _, as := range ab.Assertions {
			if as.Pred != a.Pred || as.IsRole() != (a.Arity() == 2) {
				continue
			}
			var undo []string
			ok := matchTerm(a.Args[0], as.S, bind, &undo)
			if ok && a.Arity() == 2 {
				ok = matchTerm(a.Args[1], as.O, bind, &undo)
			}
			if ok {
				rec(i + 1)
			}
			for _, v := range undo {
				delete(bind, v)
			}
		}
	}
	rec(0)
	return rel
}

func matchTerm(t query.Term, val string, bind map[string]string, undo *[]string) bool {
	if t.Const {
		return t.Name == val
	}
	if v, ok := bind[t.Name]; ok {
		return v == val
	}
	bind[t.Name] = val
	*undo = append(*undo, t.Name)
	return true
}

// EvalUCQ evaluates a UCQ (union of the disjunct answers).
func EvalUCQ(u query.UCQ, ab *dllite.ABox) *Relation {
	schema := make([]string, len(u.Head()))
	for i, h := range u.Head() {
		schema[i] = h.Name
	}
	rel := NewRelation(schema)
	for _, d := range u.Disjuncts {
		for _, t := range EvalCQ(d, ab).Tuples {
			rel.Add(t)
		}
	}
	return rel
}

// EvalSCQ evaluates an SCQ by expansion.
func EvalSCQ(s query.SCQ, ab *dllite.ABox) *Relation {
	return EvalUCQ(s.Expand(), ab)
}

// EvalUSCQ evaluates a USCQ by expansion.
func EvalUSCQ(u query.USCQ, ab *dllite.ABox) *Relation {
	return EvalUCQ(u.Expand(), ab)
}

// EvalJUCQ evaluates a JUCQ: each sub-UCQ is materialized, the results
// are natural-joined on shared schema variables, and the overall head
// is projected out with set semantics.
func EvalJUCQ(j query.JUCQ, ab *dllite.ABox) *Relation {
	cur := unitRelation()
	for _, sub := range j.Subs {
		cur = naturalJoin(cur, EvalUCQ(sub, ab))
	}
	return project(cur, j.Head)
}

// EvalJUSCQ evaluates a JUSCQ analogously.
func EvalJUSCQ(j query.JUSCQ, ab *dllite.ABox) *Relation {
	cur := unitRelation()
	for _, sub := range j.Subs {
		cur = naturalJoin(cur, EvalUSCQ(sub, ab))
	}
	return project(cur, j.Head)
}

func unitRelation() *Relation {
	r := NewRelation(nil)
	r.Add(Tuple{})
	return r
}

func naturalJoin(l, r *Relation) *Relation {
	var common [][2]int // (left idx, right idx)
	rIdx := make(map[string]int, len(r.Schema))
	for i, v := range r.Schema {
		rIdx[v] = i
	}
	var rExtra []int
	schema := append([]string(nil), l.Schema...)
	for i, v := range l.Schema {
		if j, ok := rIdx[v]; ok {
			common = append(common, [2]int{i, j})
		}
	}
	for j, v := range r.Schema {
		found := false
		for _, c := range common {
			if c[1] == j {
				found = true
				break
			}
		}
		if !found {
			rExtra = append(rExtra, j)
			schema = append(schema, v)
		}
	}
	out := NewRelation(schema)
	// Hash the right side on the common columns.
	buckets := make(map[string][]Tuple)
	for _, rt := range r.Tuples {
		var kb strings.Builder
		for _, c := range common {
			kb.WriteString(rt[c[1]])
			kb.WriteByte('\x00')
		}
		buckets[kb.String()] = append(buckets[kb.String()], rt)
	}
	for _, lt := range l.Tuples {
		var kb strings.Builder
		for _, c := range common {
			kb.WriteString(lt[c[0]])
			kb.WriteByte('\x00')
		}
		for _, rt := range buckets[kb.String()] {
			t := make(Tuple, 0, len(schema))
			t = append(t, lt...)
			for _, j := range rExtra {
				t = append(t, rt[j])
			}
			out.Add(t)
		}
	}
	return out
}

func project(r *Relation, head []query.Term) *Relation {
	idx := make([]int, len(head))
	for i, h := range head {
		idx[i] = -1
		for j, v := range r.Schema {
			if v == h.Name {
				idx[i] = j
				break
			}
		}
	}
	schema := make([]string, len(head))
	for i, h := range head {
		schema[i] = h.Name
	}
	out := NewRelation(schema)
	for _, t := range r.Tuples {
		p := make(Tuple, len(head))
		for i, j := range idx {
			if j >= 0 {
				p[i] = t[j]
			}
		}
		out.Add(p)
	}
	return out
}

// SameAnswers reports whether two relations contain exactly the same
// tuple sets.
func SameAnswers(a, b *Relation) bool {
	if len(a.Tuples) != len(b.Tuples) {
		return false
	}
	for k := range a.Tuples {
		if _, ok := b.Tuples[k]; !ok {
			return false
		}
	}
	return true
}
