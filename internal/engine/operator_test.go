package engine

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dllite"
	"repro/internal/query"
)

func TestBatchBasics(t *testing.T) {
	b := NewBatch(2)
	if b.Width() != 2 || b.Len() != 0 || b.Full() {
		t.Fatalf("fresh batch: width=%d len=%d full=%v", b.Width(), b.Len(), b.Full())
	}
	r := b.Append([]int64{1, 2})
	r[1] = 7 // in-place column write after append
	b.Append([]int64{3, 4})
	if b.Len() != 2 {
		t.Fatalf("len = %d", b.Len())
	}
	if got := b.Row(0); got[0] != 1 || got[1] != 7 {
		t.Fatalf("row0 = %v", got)
	}
	if got := b.Row(1); got[0] != 3 || got[1] != 4 {
		t.Fatalf("row1 = %v", got)
	}
	var c Batch
	c.CopyFrom(b)
	b.Reset()
	if b.Len() != 0 || c.Len() != 2 || c.Row(1)[1] != 4 {
		t.Fatal("Reset/CopyFrom broken")
	}
	// Width-zero batches still count rows (boolean pipelines).
	z := NewBatch(0)
	z.Append(nil)
	z.Append(nil)
	if z.Len() != 2 {
		t.Fatalf("width-0 len = %d", z.Len())
	}
}

func TestRowSetExactness(t *testing.T) {
	s := newRowSet(2)
	if !s.insert([]int64{1, 2}) || s.insert([]int64{1, 2}) {
		t.Fatal("basic dedup broken")
	}
	if !s.insert([]int64{2, 1}) {
		t.Fatal("order must matter")
	}
	// Width 0: all rows identical.
	z := newRowSet(0)
	if !z.insert(nil) || z.insert(nil) {
		t.Fatal("width-0 dedup broken")
	}
}

// TestPropPipelineMatchesMaterializedCQ: the streaming pipeline and the
// materializing reference executor agree on random CQs, data, layouts,
// and profiles — duplicates included.
func TestPropPipelineMatchesMaterializedCQ(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ab := dllite.MustParseABox(randABoxText(r))
		q := randQuery(r)
		for _, layout := range []Layout{LayoutSimple, LayoutRDF} {
			db := NewDB(layout)
			db.LoadABox(ab)
			p := PlanCQ(q, db, ProfilePostgres())
			stream := ExecCQ(p, db)
			mat := ExecCQMaterialized(p, db)
			if len(stream.Rows) != len(mat.Rows) {
				t.Logf("seed=%d layout=%v: %d vs %d rows (duplicates must match too)",
					seed, layout, len(stream.Rows), len(mat.Rows))
				return false
			}
			if !sameSets(relToSet(stream, db.Dict), relToSet(mat, db.Dict)) {
				t.Logf("seed=%d layout=%v: row sets differ", seed, layout)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestPropPipelineMatchesMaterializedUCQ: same for whole UCQs (with
// DISTINCT), streaming sequential and parallel.
func TestPropPipelineMatchesMaterializedUCQ(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ab := dllite.MustParseABox(randABoxText(r))
		var u query.UCQ
		for i, n := 0, 1+r.Intn(5); i < n; i++ {
			u.Disjuncts = append(u.Disjuncts, randQuery(r))
		}
		for i := range u.Disjuncts {
			u.Disjuncts[i].Head = u.Disjuncts[i].Head[:1]
		}
		db := NewDB(LayoutSimple)
		db.LoadABox(ab)
		plan := PlanUCQ(u, db, ProfilePostgres())
		mat := ExecUCQMaterialized(plan, db)
		seq := ExecUCQ(plan, db)
		par := Drain(CompileUCQ(plan, db, nil, 4))
		return sameSets(relToSet(seq, db.Dict), relToSet(mat, db.Dict)) &&
			sameSets(relToSet(par, db.Dict), relToSet(mat, db.Dict))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPipelineCrossesBatchBoundaries joins relations large enough that
// every operator emits many batches.
func TestPipelineCrossesBatchBoundaries(t *testing.T) {
	var sb strings.Builder
	n := DefaultBatchSize*3 + 17
	for i := 0; i < n; i++ {
		sb.WriteString("R(s" + itoa(i) + ", h" + itoa(i%5) + ")\n")
	}
	for i := 0; i < 5; i++ {
		sb.WriteString("S(h" + itoa(i) + ", t" + itoa(i) + ")\n")
	}
	for _, layout := range []Layout{LayoutSimple, LayoutRDF} {
		db := loadDB(t, layout, sb.String())
		q := query.MustParseCQ("q(x, z) <- R(x, y), S(y, z)")
		p := PlanCQ(q, db, ProfilePostgres())
		stream := ExecCQ(p, db)
		mat := ExecCQMaterialized(p, db)
		if len(stream.Rows) != n || len(mat.Rows) != n {
			t.Fatalf("%v: stream=%d mat=%d want %d", layout, len(stream.Rows), len(mat.Rows), n)
		}
		if !sameSets(relToSet(stream, db.Dict), relToSet(mat, db.Dict)) {
			t.Fatalf("%v: executors disagree", layout)
		}
	}
}

func TestPipelineStatsAndExplain(t *testing.T) {
	db := loadDB(t, LayoutSimple, sampleABox)
	q := query.MustParseCQ("q(x) <- PhDStudent(x), supervisedBy(x, y), Researcher(y)")
	p := PlanCQ(q, db, ProfilePostgres())
	op := CompileCQ(p, db, nil)
	rel := Drain(op)
	if len(rel.Rows) != 2 { // Damian × two supervisors
		t.Fatalf("rows = %d", len(rel.Rows))
	}
	stats := CollectStats(op)
	if len(stats) < 3 {
		t.Fatalf("stats = %v", stats)
	}
	if stats[0].Rows != 2 || stats[0].Batches == 0 {
		t.Errorf("root stats = %+v", stats[0])
	}
	expl := ExplainPipeline(op)
	for _, want := range []string{"project", "rows="} {
		if !strings.Contains(expl, want) {
			t.Errorf("explain missing %q:\n%s", want, expl)
		}
	}
}

// TestFeedbackAdaptsEstimates: executing with Profile.Feedback enabled
// replaces the statistics-derived fanout with the observed one on the
// next planning round.
func TestFeedbackAdaptsEstimates(t *testing.T) {
	// Skewed role: statistics assume uniform fanout card/distinct(S),
	// but the member of A ("hub") holds almost every edge.
	var sb strings.Builder
	for i := 0; i < 99; i++ {
		sb.WriteString("R(hub, o" + itoa(i) + ")\n")
	}
	sb.WriteString("R(solo, o0)\nA(hub)\n")
	db := loadDB(t, LayoutSimple, sb.String())
	prof := ProfilePostgres()
	prof.Feedback = NewCardFeedback()
	q := query.MustParseCQ("q(y) <- A(x), R(x, y)")

	before := PlanCQ(q, db, prof)
	ans := EvaluateCQ(q, db, prof)
	if len(ans.Tuples) != 99 {
		t.Fatalf("answers = %d", len(ans.Tuples))
	}
	if _, ok := prof.Feedback.Fanout("R", AccessRoleFwd); !ok {
		t.Fatal("execution did not record feedback for the fwd probe")
	}
	after := PlanCQ(q, db, prof)
	errBefore := before.EstCard - 99
	errAfter := after.EstCard - 99
	abs := func(x float64) float64 {
		if x < 0 {
			return -x
		}
		return x
	}
	if abs(errAfter) >= abs(errBefore) {
		t.Errorf("feedback did not improve the estimate: before=%.1f after=%.1f (actual 99)",
			before.EstCard, after.EstCard)
	}
}

// Regression for the absent-predicate hazard: every layout-dispatched
// access path over a predicate with no stored table must return empty,
// never panic, on both layouts.
func TestAbsentPredicateAccessPaths(t *testing.T) {
	for _, layout := range []Layout{LayoutSimple, LayoutRDF} {
		db := loadDB(t, layout, sampleABox)
		if got := db.ConceptMembers("NoConcept"); len(got) != 0 {
			t.Errorf("%v: ConceptMembers = %v", layout, got)
		}
		if db.ConceptContains("NoConcept", 0) {
			t.Errorf("%v: ConceptContains true", layout)
		}
		if got := db.RoleObjects("noRole", 0); len(got) != 0 {
			t.Errorf("%v: RoleObjects = %v", layout, got)
		}
		if got := db.RoleSubjects("noRole", 0); len(got) != 0 {
			t.Errorf("%v: RoleSubjects = %v", layout, got)
		}
		if db.RoleContains("noRole", 0, 0) {
			t.Errorf("%v: RoleContains true", layout)
		}
		db.RolePairs("noRole", func(s, o int64) { t.Errorf("%v: RolePairs visited (%d,%d)", layout, s, o) })

		// End to end: queries mixing absent predicates with bound and
		// unbound arguments stay empty through every access path.
		for _, qs := range []string{
			"q(x) <- NoConcept(x)",
			"q(x) <- PhDStudent(x), NoConcept(x)",
			"q(x, y) <- noRole(x, y)",
			"q(x) <- PhDStudent(x), noRole(x, y)",
			"q(x) <- PhDStudent(x), noRole(y, x)",
			"q(x) <- PhDStudent(x), noRole(x, x)",
		} {
			q := query.MustParseCQ(qs)
			if ans := EvaluateCQ(q, db, ProfilePostgres()); len(ans.Tuples) != 0 {
				t.Errorf("%v: %s = %v, want empty", layout, qs, ans.Tuples)
			}
		}
	}
}

// TestRoleFinalize: DB.Finalize finalizes role tables too — pairs and
// both adjacency indexes come out sorted, and index queries work after
// load on both layouts.
func TestRoleFinalize(t *testing.T) {
	ab := "R(c, z)\nR(a, y)\nR(a, x)\nR(b, w)\n"
	for _, layout := range []Layout{LayoutSimple, LayoutRDF} {
		db := loadDB(t, layout, ab)
		if layout == LayoutSimple {
			tbl := db.Role("R")
			for i := 1; i < len(tbl.Pairs); i++ {
				p, q := tbl.Pairs[i-1], tbl.Pairs[i]
				if p[0] > q[0] || (p[0] == q[0] && p[1] > q[1]) {
					t.Fatalf("pairs unsorted after Finalize: %v", tbl.Pairs)
				}
			}
			objs := db.RoleObjects("R", db.Dict.toID["a"])
			for i := 1; i < len(objs); i++ {
				if objs[i-1] > objs[i] {
					t.Fatalf("fwd index unsorted: %v", objs)
				}
			}
		}
		// Post-load index queries (fwd and rev) on both layouts.
		q := query.MustParseCQ("q(y) <- R('a', y)")
		if ans := EvaluateCQ(q, db, ProfileDB2()); len(ans.Tuples) != 2 {
			t.Errorf("%v: fwd index after load = %v", layout, ans.Tuples)
		}
		q = query.MustParseCQ("q(x) <- R(x, 'w')")
		if ans := EvaluateCQ(q, db, ProfileDB2()); len(ans.Tuples) != 1 || ans.Tuples[0][0] != "b" {
			t.Errorf("%v: rev index after load = %v", layout, ans.Tuples)
		}
	}
}

// TestPropPipelineSCQMatchesMaterializedExpansion: the SCQ pipeline
// (block-union joins) equals the materialized evaluation of the
// expanded UCQ.
func TestPropPipelineSCQMatchesMaterializedExpansion(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ab := dllite.MustParseABox(randABoxText(r))
		s := query.SCQ{
			Name: "q",
			Head: []query.Term{query.Var("x")},
			Blocks: [][]query.Atom{
				{query.ConceptAtom("A", query.Var("x")), query.ConceptAtom("Researcher", query.Var("x"))},
				{query.RoleAtom("R", query.Var("x"), query.Var("y")),
					query.RoleAtom("S", query.Var("x"), query.Var("y"))},
			},
		}
		db := NewDB(LayoutSimple)
		db.LoadABox(ab)
		got := ExecSCQ(PlanSCQ(s, db, ProfilePostgres()), db)
		got.Distinct()
		want := ExecUCQMaterialized(PlanUCQ(s.Expand(), db, ProfilePostgres()), db)
		return sameSets(relToSet(got, db.Dict), relToSet(want, db.Dict))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPipelineReuse: a compiled operator tree re-executes from scratch
// on every Open/Drain cycle (the amortized-compilation mode the
// benchmarks measure).
func TestPipelineReuse(t *testing.T) {
	db := loadDB(t, LayoutSimple, sampleABox)
	u := query.UCQ{Disjuncts: []query.CQ{
		query.MustParseCQ("q(x) <- PhDStudent(x)"),
		query.MustParseCQ("q(x) <- Researcher(x)"),
		query.MustParseCQ("q(x) <- supervisedBy(x, y)"),
	}}
	plan := PlanUCQ(u, db, ProfilePostgres())
	op := CompileUCQ(plan, db, nil, 1)
	first := Drain(op)
	for i := 0; i < 3; i++ {
		again := Drain(op)
		if !sameSets(relToSet(again, db.Dict), relToSet(first, db.Dict)) {
			t.Fatalf("re-execution %d differs: %v vs %v", i, again, first)
		}
	}
	par := CompileUCQ(plan, db, nil, 4)
	for i := 0; i < 3; i++ {
		again := Drain(par)
		if !sameSets(relToSet(again, db.Dict), relToSet(first, db.Dict)) {
			t.Fatalf("parallel re-execution %d differs", i)
		}
	}
}

// TestReuseResetsStatsAndFeedback: re-executing a compiled tree resets
// the per-operator counters each Open, so ExplainPipeline reports one
// execution and cardinality feedback does not inflate across reuses.
func TestReuseResetsStatsAndFeedback(t *testing.T) {
	db := loadDB(t, LayoutSimple, sampleABox)
	prof := ProfilePostgres()
	prof.Feedback = NewCardFeedback()
	u := query.UCQ{Disjuncts: []query.CQ{query.MustParseCQ("q(x, y) <- supervisedBy(x, y)")}}
	plan := PlanUCQ(u, db, prof)
	op := CompileUCQ(plan, db, prof, 1)
	Drain(op)
	first := CollectStats(op)
	r1, ok := prof.Feedback.Fanout("supervisedBy", AccessRoleScan)
	if !ok {
		t.Fatal("no feedback after first execution")
	}
	Drain(op)
	second := CollectStats(op)
	for i := range first {
		if first[i].Rows != second[i].Rows || first[i].Batches != second[i].Batches {
			t.Fatalf("stats drifted across reuse: %+v vs %+v", first[i], second[i])
		}
	}
	r2, _ := prof.Feedback.Fanout("supervisedBy", AccessRoleScan)
	if r1 != r2 {
		t.Errorf("feedback inflated across reuse: %.2f -> %.2f", r1, r2)
	}

	// Same invariant through the parallel union operator.
	multi := query.UCQ{Disjuncts: []query.CQ{
		query.MustParseCQ("q(x) <- PhDStudent(x)"),
		query.MustParseCQ("q(x) <- Researcher(x)"),
	}}
	pp := PlanUCQ(multi, db, prof)
	pop := CompileUCQ(pp, db, prof, 4)
	Drain(pop)
	pf := CollectStats(pop)
	Drain(pop)
	ps := CollectStats(pop)
	for i := range pf {
		if pf[i].Rows != ps[i].Rows {
			t.Fatalf("parallel stats drifted across reuse: %+v vs %+v", pf[i], ps[i])
		}
	}
}

// TestParallelCloseBeforeOpen: Close on a never-opened parallel union
// is a no-op like on every other operator.
func TestParallelCloseBeforeOpen(t *testing.T) {
	db := loadDB(t, LayoutSimple, sampleABox)
	u := query.UCQ{Disjuncts: []query.CQ{
		query.MustParseCQ("q(x) <- PhDStudent(x)"),
		query.MustParseCQ("q(x) <- Researcher(x)"),
	}}
	plan := PlanUCQ(u, db, ProfilePostgres())
	arms := []Operator{CompileCQ(plan.Plans[0], db, nil), CompileCQ(plan.Plans[1], db, nil)}
	op := NewUnionParallel(headSchema(plan.U.Head()), arms, 4)
	op.Close() // must not panic or block
}
