package engine

import (
	"encoding/gob"
	"fmt"
	"io"
)

// snapshot is the serialized form of a database: the dictionary plus
// the logical tables. The physical layout (indexes, RDF tables, stats)
// is rebuilt on load, so snapshots are layout-portable: a snapshot
// written from a simple-layout store can be loaded as an RDF-layout
// one and vice versa.
type snapshot struct {
	Version  int
	Layout   Layout
	Dict     []string
	Concepts map[string][]int64
	Roles    map[string][][2]int64
}

const snapshotVersion = 1

// Save writes the database to w in a binary (gob) format.
func (db *DB) Save(w io.Writer) error {
	s := snapshot{
		Version:  snapshotVersion,
		Layout:   db.Layout,
		Dict:     db.Dict.toS,
		Concepts: make(map[string][]int64, len(db.concepts)),
		Roles:    make(map[string][][2]int64, len(db.roles)),
	}
	for name, t := range db.concepts {
		s.Concepts[name] = t.IDs
	}
	for name, t := range db.roles {
		s.Roles[name] = t.Pairs
	}
	return gob.NewEncoder(w).Encode(s)
}

// Load reads a snapshot written by Save and rebuilds a ready-to-query
// database under the requested layout (pass the snapshot's own layout
// via LayoutFromSnapshot to keep it).
func Load(r io.Reader, layout Layout) (*DB, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("engine: decode snapshot: %w", err)
	}
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("engine: unsupported snapshot version %d", s.Version)
	}
	if layout == LayoutFromSnapshot {
		layout = s.Layout
	}
	db := NewDB(layout)
	// Rebuild the dictionary with identical ids.
	for _, str := range s.Dict {
		db.Dict.Encode(str)
	}
	for name, ids := range s.Concepts {
		t := newConceptTable()
		for _, id := range ids {
			t.add(id)
		}
		db.concepts[name] = t
	}
	for name, pairs := range s.Roles {
		t := newRoleTable()
		for _, p := range pairs {
			t.add(p[0], p[1])
		}
		db.roles[name] = t
	}
	db.Finalize()
	return db, nil
}

// LayoutFromSnapshot instructs Load to keep the layout recorded in the
// snapshot.
const LayoutFromSnapshot Layout = -1
