package engine

// The original materialize-everything executor, kept as the reference
// path: it builds every intermediate result as [][]int64. The streaming
// operator pipeline (operator.go, compile.go) is the production path;
// this one serves as the differential-testing oracle and as the
// baseline the benchmarks compare allocations against.

import "repro/internal/query"

// ExecCQMaterialized evaluates a planned CQ by materializing every
// intermediate, returning rows projected on the CQ head (duplicates
// preserved; callers apply Distinct).
func ExecCQMaterialized(plan CQPlan, db *DB) *Relation {
	q := plan.Q
	// Column layout: variables in order of first use across the plan.
	colOf := map[string]int{}
	var cols []string
	for _, s := range plan.Steps {
		for _, t := range q.Atoms[s.Atom].Args {
			if t.IsVar() {
				if _, ok := colOf[t.Name]; !ok {
					colOf[t.Name] = len(cols)
					cols = append(cols, t.Name)
				}
			}
		}
	}
	rows := [][]int64{make([]int64, len(cols))}
	boundMask := make([]bool, len(cols))
	for _, s := range plan.Steps {
		rows = execStep(q.Atoms[s.Atom], rows, colOf, boundMask, db)
		for _, t := range q.Atoms[s.Atom].Args {
			if t.IsVar() {
				boundMask[colOf[t.Name]] = true
			}
		}
		if len(rows) == 0 {
			break
		}
	}
	// Project onto the head.
	out := &Relation{Schema: headSchema(q.Head)}
	for _, row := range rows {
		pr := make([]int64, len(q.Head))
		ok := true
		for i, h := range q.Head {
			if h.Const {
				id, found := db.Dict.Lookup(h.Name)
				if !found {
					ok = false
					break
				}
				pr[i] = id
			} else {
				pr[i] = row[colOf[h.Name]]
			}
		}
		if ok {
			out.Rows = append(out.Rows, pr)
		}
	}
	return out
}

// execStep joins the current rows with one atom using index lookups.
func execStep(a query.Atom, rows [][]int64, colOf map[string]int, bound []bool, db *DB) [][]int64 {
	// resolve returns (value, isBound) of a term under a row.
	resolve := func(t query.Term, row []int64) (int64, bool, bool) {
		if t.Const {
			id, ok := db.Dict.Lookup(t.Name)
			return id, true, ok
		}
		c := colOf[t.Name]
		if bound[c] {
			return row[c], true, true
		}
		return 0, false, true
	}
	var out [][]int64
	emit := func(row []int64, t query.Term, v int64) []int64 {
		if t.Const {
			return row
		}
		c := colOf[t.Name]
		if bound[c] {
			return row
		}
		nr := make([]int64, len(row))
		copy(nr, row)
		nr[c] = v
		return nr
	}
	if a.Arity() == 1 {
		for _, row := range rows {
			v, isB, ok := resolve(a.Args[0], row)
			if !ok {
				continue
			}
			if isB {
				if db.ConceptContains(a.Pred, v) {
					out = append(out, row)
				}
				continue
			}
			for _, id := range db.ConceptMembers(a.Pred) {
				out = append(out, emit(row, a.Args[0], id))
			}
		}
		return out
	}
	sameVar := a.Args[0].IsVar() && a.Args[1].IsVar() && a.Args[0].Name == a.Args[1].Name
	for _, row := range rows {
		s, sB, okS := resolve(a.Args[0], row)
		o, oB, okO := resolve(a.Args[1], row)
		if !okS || !okO {
			continue
		}
		switch {
		case sB && oB:
			if db.RoleContains(a.Pred, s, o) {
				out = append(out, row)
			}
		case sB && sameVar:
			if db.RoleContains(a.Pred, s, s) {
				out = append(out, row)
			}
		case sB:
			for _, v := range db.RoleObjects(a.Pred, s) {
				out = append(out, emit(row, a.Args[1], v))
			}
		case oB:
			for _, v := range db.RoleSubjects(a.Pred, o) {
				out = append(out, emit(row, a.Args[0], v))
			}
		default:
			if sameVar {
				db.RolePairs(a.Pred, func(ps, po int64) {
					if ps == po {
						out = append(out, emit(row, a.Args[0], ps))
					}
				})
			} else {
				db.RolePairs(a.Pred, func(ps, po int64) {
					nr := emit(row, a.Args[0], ps)
					nr = emit(nr, a.Args[1], po)
					out = append(out, nr)
				})
			}
		}
	}
	return out
}

// ExecUCQMaterialized evaluates a planned UCQ with DISTINCT through the
// materializing path.
func ExecUCQMaterialized(plan UCQPlan, db *DB) *Relation {
	out := &Relation{Schema: headSchema(plan.U.Head())}
	for i := range plan.Plans {
		r := ExecCQMaterialized(plan.Plans[i], db)
		out.Rows = append(out.Rows, r.Rows...)
	}
	out.Distinct()
	return out
}
