package engine

// Compilation of planned queries into streaming operator trees
// (operator.go). The pipeline row layout of one CQ/SCQ is the set of
// its variables in order of first use, exactly as the materializing
// executor laid them out; each plan step becomes a scan (first unbound
// atom), a filter (fully bound atom), or an index-nested-loop join.

import (
	"sort"

	"repro/internal/query"
)

// pipelineLayout assigns every variable of the atom sequence a column,
// in order of first use.
func pipelineLayout(atomSeq [][]query.Term) (map[string]int, []string) {
	colOf := map[string]int{}
	var cols []string
	for _, args := range atomSeq {
		for _, t := range args {
			if t.IsVar() {
				if _, ok := colOf[t.Name]; !ok {
					colOf[t.Name] = len(cols)
					cols = append(cols, t.Name)
				}
			}
		}
	}
	return colOf, cols
}

// newAtomJoin compiles one atom against the current layout and bound
// mask. Constants are resolved once; a constant absent from the
// dictionary makes the atom dead (it can match nothing).
func newAtomJoin(a query.Atom, access StepAccess, colOf map[string]int, bound []bool, db *DB) *atomJoin {
	j := &atomJoin{db: db, pred: a.Pred, arity: a.Arity(), access: access}
	ref := func(t query.Term) termRef {
		if t.Const {
			id, ok := db.Dict.Lookup(t.Name)
			if !ok {
				j.dead = true
			}
			return termRef{isConst: true, constID: id}
		}
		c := colOf[t.Name]
		return termRef{col: c, bound: bound[c]}
	}
	j.s = ref(a.Args[0])
	if j.arity > 1 {
		j.o = ref(a.Args[1])
		j.sameVar = a.Args[0].IsVar() && a.Args[1].IsVar() && a.Args[0].Name == a.Args[1].Name
	}
	return j
}

// accessOf derives the physical access path of an atom from which of
// its arguments are bound — the same dispatch estimateStep performs.
func accessOf(a query.Atom, colOf map[string]int, bound []bool) StepAccess {
	isBound := func(t query.Term) bool { return t.Const || bound[colOf[t.Name]] }
	if a.Arity() == 1 {
		if isBound(a.Args[0]) {
			return AccessConceptProbe
		}
		return AccessConceptScan
	}
	sB, oB := isBound(a.Args[0]), isBound(a.Args[1])
	sameVar := a.Args[0].IsVar() && a.Args[1].IsVar() && a.Args[0].Name == a.Args[1].Name
	switch {
	case sB && (oB || sameVar):
		return AccessRoleProbe
	case sB:
		return AccessRoleFwd
	case oB:
		return AccessRoleRev
	default:
		return AccessRoleScan
	}
}

// markBound records an atom's variables as bound after its step runs.
func markBound(a query.Atom, colOf map[string]int, bound []bool) {
	for _, t := range a.Args {
		if t.IsVar() {
			bound[colOf[t.Name]] = true
		}
	}
}

// compileStep appends one plan step to the pipeline: the first wholly
// unbound atom becomes a source scan; fully bound atoms become
// filters; everything else an index-nested-loop join.
func compileStep(cur Operator, cols []string, alts []*atomJoin, prof *Profile) Operator {
	if cur == nil {
		if len(alts) == 1 && alts[0].unbound() {
			return newScan(cols, alts[0], alts[0].db, prof)
		}
		cur = newSingleton(cols)
	}
	if len(alts) == 1 && alts[0].fullyBound() {
		return newFilter(cur, alts[0], prof)
	}
	return newJoin(cur, alts, prof)
}

// compileProject closes a pipeline with head projection.
func compileProject(cur Operator, head []query.Term, colOf map[string]int, db *DB) Operator {
	srcCols := make([]int, len(head))
	consts := make([]int64, len(head))
	dead := false
	for i, h := range head {
		srcCols[i] = -1
		if h.Const {
			id, ok := db.Dict.Lookup(h.Name)
			if !ok {
				dead = true
			}
			consts[i] = id
			continue
		}
		if c, ok := colOf[h.Name]; ok {
			srcCols[i] = c
		} else {
			// Head variable never bound by any atom: no row qualifies.
			dead = true
		}
	}
	return newProject(cur, headSchema(head), srcCols, consts, dead)
}

// CompileCQ builds the streaming operator tree of a planned CQ:
// source → (filter|join)* → project. Duplicates are preserved, like
// ExecCQ. prof (optional, may be nil) receives per-operator cardinality
// feedback through prof.Feedback when executions close.
func CompileCQ(plan CQPlan, db *DB, prof *Profile) Operator {
	q := plan.Q
	seq := make([][]query.Term, len(plan.Steps))
	for i, s := range plan.Steps {
		seq[i] = q.Atoms[s.Atom].Args
	}
	colOf, cols := pipelineLayout(seq)
	bound := make([]bool, len(cols))
	var cur Operator
	for _, s := range plan.Steps {
		a := q.Atoms[s.Atom]
		j := newAtomJoin(a, s.Access, colOf, bound, db)
		cur = compileStep(cur, cols, []*atomJoin{j}, prof)
		markBound(a, colOf, bound)
	}
	if cur == nil {
		cur = newSingleton(cols)
	}
	return compileProject(cur, q.Head, colOf, db)
}

// CompileUCQ builds the UCQ tree: distinct over the union of the arm
// pipelines. With workers > 1 and more than one arm, the union is the
// parallel operator that spreads arms over worker goroutines.
func CompileUCQ(plan UCQPlan, db *DB, prof *Profile, workers int) Operator {
	schema := headSchema(plan.U.Head())
	arms := make([]Operator, len(plan.Plans))
	for i := range plan.Plans {
		arms[i] = CompileCQ(plan.Plans[i], db, prof)
	}
	var u Operator
	if workers > 1 && len(arms) > 1 {
		u = NewUnionParallel(schema, arms, workers)
	} else {
		u = newUnion(schema, arms)
	}
	return newDistinct(u)
}

// CompileSCQ builds the streaming tree of a planned semi-conjunctive
// query: each block becomes one join whose alternatives are the block's
// atoms (their matches are unioned per input row — the factorized
// evaluation). Duplicates are preserved, like ExecSCQ.
func CompileSCQ(plan SCQPlan, db *DB, prof *Profile) Operator {
	s := plan.S
	var seq [][]query.Term
	for _, block := range s.Blocks {
		for _, a := range block {
			seq = append(seq, a.Args)
		}
	}
	colOf, cols := pipelineLayout(seq)
	bound := make([]bool, len(cols))
	var cur Operator
	for _, bi := range plan.Order {
		block := s.Blocks[bi]
		alts := make([]*atomJoin, len(block))
		for i, a := range block {
			alts[i] = newAtomJoin(a, accessOf(a, colOf, bound), colOf, bound, db)
		}
		cur = compileStep(cur, cols, alts, prof)
		for _, a := range block {
			markBound(a, colOf, bound)
		}
	}
	if cur == nil {
		cur = newSingleton(cols)
	}
	return compileProject(cur, s.Head, colOf, db)
}

// CompileUSCQ builds distinct over the union of the SCQ pipelines,
// parallel across disjuncts when workers > 1.
func CompileUSCQ(plan USCQPlan, db *DB, prof *Profile, workers int) Operator {
	var schema []string
	if len(plan.Plans) > 0 {
		schema = headSchema(plan.Plans[0].S.Head)
	}
	arms := make([]Operator, len(plan.Plans))
	for i := range plan.Plans {
		arms[i] = CompileSCQ(plan.Plans[i], db, prof)
	}
	var u Operator
	if workers > 1 && len(arms) > 1 {
		u = NewUnionParallel(schema, arms, workers)
	} else {
		u = newUnion(schema, arms)
	}
	return newDistinct(u)
}

// compileProjectNamed projects a pipeline whose schema already names
// its columns (a fragment join) onto the overall query head.
func compileProjectNamed(cur Operator, head []query.Term, db *DB) Operator {
	colOf := map[string]int{}
	for i, v := range cur.Schema() {
		if _, ok := colOf[v]; !ok {
			colOf[v] = i
		}
	}
	return compileProject(cur, head, colOf, db)
}

// NewProjectNamed is the exported form of compileProjectNamed for
// composing backends (internal/shard) that assemble their own fragment
// joins and need the head projection above them.
func NewProjectNamed(cur Operator, head []query.Term, db *DB) Operator {
	return compileProjectNamed(cur, head, db)
}

// CoverJoinOrder is the exported form of coverJoinOrder for composing
// backends that must fix one global join order across shards.
func CoverJoinOrder(ests []float64) (probe int, builds []int) {
	return coverJoinOrder(ests)
}

// coverJoinOrder picks the fragment join order from the plan's
// estimated fragment cardinalities: the largest fragment drives the
// streaming probe pass, the others become build tables loaded
// smallest-first (cheapest hash tables early, so an empty build side
// short-circuits as soon as possible).
func coverJoinOrder(ests []float64) (probe int, builds []int) {
	probe = 0
	for i, e := range ests {
		if e > ests[probe] {
			probe = i
		}
	}
	for i := range ests {
		if i != probe {
			builds = append(builds, i)
		}
	}
	sort.SliceStable(builds, func(a, b int) bool { return ests[builds[a]] < ests[builds[b]] })
	return probe, builds
}

// coverWorkerSplit divides one worker budget between the fragment
// pipelines and the cross-fragment build drain: multi-fragment plans
// spend the budget across fragments (the hash join drains build sides
// in parallel, each fragment pipeline getting an equal share for its
// internal parallel union), while a single-fragment plan hands the
// whole budget to the fragment's union.
func coverWorkerSplit(workers, frags int) int {
	if frags <= 1 {
		return workers
	}
	per := workers / frags
	if per < 1 {
		per = 1
	}
	return per
}

// CompileJUCQ builds the end-to-end streaming tree of a planned JUCQ
// cover: per-fragment pipelines (scan → … → union → distinct, the WITH
// … DISTINCT clauses of Section 3) feed the streaming hash join, whose
// output is projected onto the overall head and deduplicated. No
// fragment is materialized as a Relation; workers bounds the goroutines
// of the build drain and the fragments' parallel unions together.
func CompileJUCQ(plan JUCQPlan, db *DB, prof *Profile, workers int) Operator {
	head := plan.J.Head
	if len(plan.Frags) == 0 {
		return newUnion(headSchema(head), nil)
	}
	perFrag := coverWorkerSplit(workers, len(plan.Frags))
	frags := make([]Operator, len(plan.Frags))
	ests := make([]float64, len(plan.Frags))
	for i := range plan.Frags {
		frags[i] = CompileUCQ(plan.Frags[i], db, prof, perFrag)
		ests[i] = plan.Frags[i].EstCard
	}
	if len(frags) == 1 {
		return newDistinct(compileProjectNamed(frags[0], head, db))
	}
	probe, builds := coverJoinOrder(ests)
	hj := NewHashJoin(frags, probe, builds, workers)
	return newDistinct(compileProjectNamed(hj, head, db))
}

// CompileJUSCQ is the JUSCQ analogue of CompileJUCQ: factorized USCQ
// fragment pipelines feeding the streaming hash join.
func CompileJUSCQ(plan JUSCQPlan, db *DB, prof *Profile, workers int) Operator {
	head := plan.J.Head
	if len(plan.Frags) == 0 {
		return newUnion(headSchema(head), nil)
	}
	perFrag := coverWorkerSplit(workers, len(plan.Frags))
	frags := make([]Operator, len(plan.Frags))
	ests := make([]float64, len(plan.Frags))
	for i := range plan.Frags {
		frags[i] = CompileUSCQ(plan.Frags[i], db, prof, perFrag)
		ests[i] = plan.Frags[i].EstCard
	}
	if len(frags) == 1 {
		return newDistinct(compileProjectNamed(frags[0], head, db))
	}
	probe, builds := coverJoinOrder(ests)
	hj := NewHashJoin(frags, probe, builds, workers)
	return newDistinct(compileProjectNamed(hj, head, db))
}
