package engine

// Regression tests for the Operator Close contract: Close closes every
// child Children() reports and is idempotent — double Close (or Close
// without Open) repeats no side effect. The contract is machine-checked
// syntactically by internal/lint's opcontract analyzer; these tests pin
// the runtime behavior it encodes, on the two operators that owed a
// child close (the parallel union of the shard merge path, and the
// hash join's build sides).

import (
	"testing"
)

// lifecycleOp is a source stub counting its Open/Close transitions.
type lifecycleOp struct {
	opBase
	total   int // rows to emit per execution
	emitted int
	opens   int
	closes  int
}

func newLifecycleOp(total int) *lifecycleOp {
	return &lifecycleOp{opBase: opBase{name: "stub", schema: []string{"x"}}, total: total}
}

func (o *lifecycleOp) Open() {
	o.resetStats()
	o.opens++
	o.emitted = 0
}

func (o *lifecycleOp) Next(out *Batch) bool {
	out.Reset()
	for o.emitted < o.total && !out.Full() {
		out.Append([]int64{int64(o.emitted)})
		o.emitted++
	}
	return o.yield(out)
}

func (o *lifecycleOp) Close() {
	if !o.closeOnce() {
		return
	}
	o.closes++
}

func (o *lifecycleOp) Children() []Operator { return nil }

// assertBalanced checks every stub was closed exactly as often as it
// was opened — the contract violation the old parallel-union Close
// allowed (children interrupted mid-stream could stay open, children
// never scheduled must not be closed).
func assertBalanced(t *testing.T, stubs []*lifecycleOp) {
	t.Helper()
	for i, s := range stubs {
		if s.closes != s.opens {
			t.Errorf("child %d: opens=%d closes=%d, want balanced", i, s.opens, s.closes)
		}
	}
}

func TestUnionParallelEarlyCloseClosesChildren(t *testing.T) {
	stubs := make([]*lifecycleOp, 8)
	children := make([]Operator, len(stubs))
	for i := range stubs {
		stubs[i] = newLifecycleOp(200_000)
		children[i] = stubs[i]
	}
	op := NewUnionParallel([]string{"x"}, children, 4)
	op.Open()
	b := NewBatch(1)
	if !op.Next(b) {
		t.Fatal("no batch from 8 producing children")
	}
	op.Close() // early close: most children are mid-stream or unstarted
	assertBalanced(t, stubs)
	op.Close() // double close must not re-close children
	assertBalanced(t, stubs)
}

func TestUnionParallelFullDrainCloseBalanced(t *testing.T) {
	stubs := make([]*lifecycleOp, 4)
	children := make([]Operator, len(stubs))
	for i := range stubs {
		stubs[i] = newLifecycleOp(10)
		children[i] = stubs[i]
	}
	op := NewUnionParallel([]string{"x"}, children, 4)
	rel := Drain(op)
	if len(rel.Rows) != 40 {
		t.Fatalf("drained %d rows, want 40", len(rel.Rows))
	}
	assertBalanced(t, stubs)
	for _, s := range stubs {
		if s.opens != 1 {
			t.Fatalf("child opened %d times, want 1", s.opens)
		}
	}
	op.Close()
	assertBalanced(t, stubs)
}

func TestHashJoinCloseClosesBuildChildren(t *testing.T) {
	probe := newLifecycleOp(5)
	build1 := newLifecycleOp(5)
	build2 := newLifecycleOp(5)
	op := NewHashJoin([]Operator{probe, build1, build2}, 0, []int{1, 2}, 1)
	rel := Drain(op)
	if len(rel.Rows) != 5 {
		t.Fatalf("drained %d rows, want 5", len(rel.Rows))
	}
	stubs := []*lifecycleOp{probe, build1, build2}
	assertBalanced(t, stubs)
	// The build children were opened and closed exactly once (by load,
	// during Open) — the operator-level Close must not double that.
	for i, s := range stubs {
		if s.opens != 1 || s.closes != 1 {
			t.Fatalf("child %d: opens=%d closes=%d, want 1/1", i, s.opens, s.closes)
		}
	}
	op.Close()
	assertBalanced(t, stubs)
}

func TestHashJoinEarlyCloseBalanced(t *testing.T) {
	probe := newLifecycleOp(100_000)
	build := newLifecycleOp(10)
	op := NewHashJoin([]Operator{probe, build}, 0, []int{1}, 1)
	op.Open()
	op.Close() // closed before any Next
	assertBalanced(t, []*lifecycleOp{probe, build})
}

// TestCloseWithoutOpenIsNoOp: a compiled-but-never-opened tree may be
// closed (e.g. by a parallel union tearing down unstarted children).
func TestCloseWithoutOpenIsNoOp(t *testing.T) {
	stub := newLifecycleOp(1)
	for _, op := range []Operator{
		stub,
		newUnion([]string{"x"}, []Operator{newLifecycleOp(1)}),
		newDistinct(newLifecycleOp(1)),
		NewUnionParallel([]string{"x"}, []Operator{newLifecycleOp(1), newLifecycleOp(1)}, 2),
		NewHashJoin([]Operator{newLifecycleOp(1), newLifecycleOp(1)}, 0, []int{1}, 1),
	} {
		op.Close()
	}
	if stub.closes != 0 {
		t.Fatalf("Close without Open ran side effects (%d closes)", stub.closes)
	}
}
