package engine

// Hash partitioning of a database into first-column shards — the
// storage half of the sharded execution backend (internal/shard). A
// Partitioning splits every concept table on its member column and
// every role table on its subject column, so any join whose atoms all
// bind the same first-column variable is co-partitioned: every match
// lives wholly inside one shard and the shards can be evaluated
// independently. Relations that a plan cannot align are exposed
// "broadcast": each shard's view reads the full base table for them.
//
// The shards share the base dictionary, so ids (and therefore hashes,
// join keys, and decoded answers) are identical across shards and the
// base.

import "fmt"

// ShardOf maps a dictionary id to its shard among n. Ids are assigned
// densely in insertion order, so they are mixed first — modulo alone
// would correlate shards with load order.
func ShardOf(id int64, n int) int {
	return int(mix64(uint64(id)) % uint64(n))
}

// Partitioning is a database split into n first-column hash shards.
type Partitioning struct {
	Base   *DB
	shards []*DB
}

// Partition splits db into n shards. It requires the simple layout
// (the RDF layout's entity-hashed tables are monolithic) and a
// finalized base. n < 1 is an error; n == 1 degenerates to the base
// itself, so a single-shard backend behaves exactly like the native
// one plus the merge operator.
func Partition(db *DB, n int) (*Partitioning, error) {
	if n < 1 {
		return nil, fmt.Errorf("engine: cannot partition into %d shards", n)
	}
	if db.Layout != LayoutSimple {
		return nil, fmt.Errorf("engine: partitioning requires the simple layout, have %s", db.Layout)
	}
	p := &Partitioning{Base: db}
	if n == 1 {
		p.shards = []*DB{db}
		return p, nil
	}
	p.shards = make([]*DB, n)
	for i := range p.shards {
		p.shards[i] = &DB{
			Dict:     db.Dict,
			Layout:   LayoutSimple,
			concepts: make(map[string]*ConceptTable, len(db.concepts)),
			roles:    make(map[string]*RoleTable, len(db.roles)),
		}
	}
	for name, t := range db.concepts {
		parts := make([]*ConceptTable, n)
		for i := range parts {
			parts[i] = newConceptTable()
		}
		for _, id := range t.IDs {
			parts[ShardOf(id, n)].add(id)
		}
		for i := range parts {
			p.shards[i].concepts[name] = parts[i]
		}
	}
	for name, t := range db.roles {
		parts := make([]*RoleTable, n)
		for i := range parts {
			parts[i] = newRoleTable()
		}
		for _, pair := range t.Pairs {
			parts[ShardOf(pair[0], n)].add(pair[0], pair[1])
		}
		for i := range parts {
			p.shards[i].roles[name] = parts[i]
		}
	}
	for _, s := range p.shards {
		s.Finalize()
	}
	return p, nil
}

// NumShards returns the shard count.
func (p *Partitioning) NumShards() int { return len(p.shards) }

// Shard returns shard i's fully partitioned database (every relation
// split). Most callers want View instead.
func (p *Partitioning) Shard(i int) *DB { return p.shards[i] }

// View returns shard i's database for one plan's partitioning choice:
// relations in partitioned read shard i's split table, everything else
// reads the full base table (the broadcast side of non-aligned joins).
// The view shares all table storage and the dictionary; only the maps
// and statistics are fresh. Views are immutable snapshots — mutating
// the base after partitioning is not supported.
func (p *Partitioning) View(i int, partitioned map[string]bool) *DB {
	if len(p.shards) == 1 {
		return p.Base
	}
	sh := p.shards[i]
	v := &DB{
		Dict:     p.Base.Dict,
		Layout:   LayoutSimple,
		concepts: make(map[string]*ConceptTable, len(p.Base.concepts)),
		roles:    make(map[string]*RoleTable, len(p.Base.roles)),
	}
	for name, t := range p.Base.concepts {
		if partitioned[name] {
			v.concepts[name] = sh.concepts[name]
		} else {
			v.concepts[name] = t
		}
	}
	for name, t := range p.Base.roles {
		if partitioned[name] {
			v.roles[name] = sh.roles[name]
		} else {
			v.roles[name] = t
		}
	}
	// Tables are already finalized (sorted, indexed); only the
	// statistics need computing for this mix.
	v.stats = computeStatistics(v)
	return v
}
