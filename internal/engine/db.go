package engine

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/dllite"
)

// Layout selects the physical data layout (Section 6.1).
type Layout int

const (
	// LayoutSimple stores a unary table per concept and a binary table
	// per role, with all one- and two-attribute indexes.
	LayoutSimple Layout = iota
	// LayoutRDF stores assertions in DB2RDF-style entity-oriented
	// hashed-column tables (DPH/RPH) [9].
	LayoutRDF
)

func (l Layout) String() string {
	if l == LayoutRDF {
		return "RDF layout"
	}
	return "Simple layout"
}

// DB is a loaded database (the ABox under a physical layout).
type DB struct {
	Dict   *Dictionary
	Layout Layout

	concepts map[string]*ConceptTable
	roles    map[string]*RoleTable
	rdf      *rdfStore // non-nil when Layout == LayoutRDF

	// statsMu guards stats and version: queries running concurrently
	// (server traffic) may all ask for statistics while a late
	// Finalize is still computing them.
	statsMu sync.Mutex
	stats   *Statistics
	version uint64
}

// NewDB builds an empty database with the given layout.
func NewDB(layout Layout) *DB {
	return &DB{
		Dict:     NewDictionary(),
		Layout:   layout,
		concepts: make(map[string]*ConceptTable),
		roles:    make(map[string]*RoleTable),
	}
}

// AddConceptFact stores A(ind).
func (db *DB) AddConceptFact(concept, ind string) {
	id := db.Dict.Encode(ind)
	t := db.concepts[concept]
	if t == nil {
		t = newConceptTable()
		db.concepts[concept] = t
	}
	t.add(id)
	db.invalidate()
}

// AddRoleFact stores R(s, o).
func (db *DB) AddRoleFact(role, s, o string) {
	sid, oid := db.Dict.Encode(s), db.Dict.Encode(o)
	t := db.roles[role]
	if t == nil {
		t = newRoleTable()
		db.roles[role] = t
	}
	t.add(sid, oid)
	db.invalidate()
}

// invalidate drops the cached statistics and bumps the data version —
// every ABox mutation makes answer/plan caches keyed on Version stale.
func (db *DB) invalidate() {
	db.statsMu.Lock()
	db.stats = nil
	db.version++
	db.statsMu.Unlock()
}

// Version returns the data version: a counter bumped by every ABox
// mutation. Caches keyed on (query, TBox version, Version) are
// invalidated wholesale by updates.
func (db *DB) Version() uint64 {
	db.statsMu.Lock()
	defer db.statsMu.Unlock()
	return db.version
}

// LoadABox bulk-loads an ABox and finalizes the layout.
func (db *DB) LoadABox(ab *dllite.ABox) {
	for _, as := range ab.Assertions {
		if as.IsRole() {
			db.AddRoleFact(as.Pred, as.S, as.O)
		} else {
			db.AddConceptFact(as.Pred, as.S)
		}
	}
	db.Finalize()
}

// Finalize sorts tables, derives the RDF layout when selected, and
// computes statistics. It must be called after loading and before
// querying; loaders in this repo call it for you.
func (db *DB) Finalize() {
	db.statsMu.Lock()
	defer db.statsMu.Unlock()
	db.finalizeLocked()
}

func (db *DB) finalizeLocked() {
	for _, t := range db.concepts {
		t.finalize()
	}
	for _, t := range db.roles {
		t.finalize()
	}
	if db.Layout == LayoutRDF {
		db.rdf = buildRDFStore(db)
	}
	db.stats = computeStatistics(db)
}

// NumFacts returns the total number of stored assertions.
func (db *DB) NumFacts() int {
	n := 0
	for _, t := range db.concepts {
		n += t.Card()
	}
	for _, t := range db.roles {
		n += t.Card()
	}
	return n
}

// Concept returns the concept table (nil when absent: empty relation).
func (db *DB) Concept(name string) *ConceptTable { return db.concepts[name] }

// Role returns the role table (nil when absent: empty relation).
func (db *DB) Role(name string) *RoleTable { return db.roles[name] }

// ConceptNames returns the stored concept table names, sorted.
func (db *DB) ConceptNames() []string {
	out := make([]string, 0, len(db.concepts))
	for k := range db.concepts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// RoleNames returns the stored role table names, sorted.
func (db *DB) RoleNames() []string {
	out := make([]string, 0, len(db.roles))
	for k := range db.roles {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Stats returns the table statistics, computing them if needed. Safe
// for concurrent use: parallel queries may race a lazy finalize.
func (db *DB) Stats() *Statistics {
	db.statsMu.Lock()
	defer db.statsMu.Unlock()
	if db.stats == nil {
		db.finalizeLocked()
	}
	return db.stats
}

// Statistics holds per-table cardinalities and distinct-value counts —
// what the cost models consume (Section 6.1: "statistics on the stored
// data (cardinality and number of distinct values in each stored table
// attribute)").
type Statistics struct {
	TotalFacts    int
	TotalEntities int

	ConceptCard map[string]int
	RoleCard    map[string]int
	RoleDistS   map[string]int
	RoleDistO   map[string]int
}

func computeStatistics(db *DB) *Statistics {
	s := &Statistics{
		ConceptCard: make(map[string]int),
		RoleCard:    make(map[string]int),
		RoleDistS:   make(map[string]int),
		RoleDistO:   make(map[string]int),
	}
	for name, t := range db.concepts {
		s.ConceptCard[name] = t.Card()
		s.TotalFacts += t.Card()
	}
	for name, t := range db.roles {
		s.RoleCard[name] = t.Card()
		s.RoleDistS[name] = t.DistinctS()
		s.RoleDistO[name] = t.DistinctO()
		s.TotalFacts += t.Card()
	}
	s.TotalEntities = db.Dict.Size()
	return s
}

// CardConcept returns the concept cardinality (0 for unknown tables).
func (s *Statistics) CardConcept(name string) int { return s.ConceptCard[name] }

// CardRole returns the role cardinality (0 for unknown tables).
func (s *Statistics) CardRole(name string) int { return s.RoleCard[name] }

// String summarizes the statistics.
func (s *Statistics) String() string {
	return fmt.Sprintf("stats{facts=%d, entities=%d, concepts=%d, roles=%d}",
		s.TotalFacts, s.TotalEntities, len(s.ConceptCard), len(s.RoleCard))
}
