package engine

import (
	"sync"
	"testing"
)

// exchangeInput builds one relation-source per shard whose rows carry
// the key in column 1 (deliberately not column 0 — the exchange must
// route on the named column, not the first).
func exchangeInput(n, rowsPerSource int) []Operator {
	srcs := make([]Operator, n)
	for i := 0; i < n; i++ {
		rel := &Relation{Schema: []string{"x", "k"}}
		for r := 0; r < rowsPerSource; r++ {
			// x identifies the producing source and row; k spreads over
			// the shard space.
			rel.Rows = append(rel.Rows, []int64{int64(i*rowsPerSource + r), int64(r * 7)})
		}
		srcs[i] = NewRelationSource(rel)
	}
	return srcs
}

// drainEndpoints opens and drains every endpoint concurrently (a
// destination without a consumer would legitimately backpressure the
// producers feeding the others) and returns the rows each received.
func drainEndpoints(t *testing.T, eps []Operator) [][][]int64 {
	t.Helper()
	out := make([][][]int64, len(eps))
	var wg sync.WaitGroup
	for i, ep := range eps {
		wg.Add(1)
		go func(i int, ep Operator) {
			defer wg.Done()
			rel := Drain(ep)
			out[i] = rel.Rows
		}(i, ep)
	}
	wg.Wait()
	return out
}

func TestExchangeRoutesByKey(t *testing.T) {
	const n, rows = 3, 50
	srcs := exchangeInput(n, rows)
	hub, eps, err := NewExchange(srcs, "k", 4)
	if err != nil {
		t.Fatal(err)
	}
	if hub.Key() != "k" {
		t.Fatalf("key = %q", hub.Key())
	}
	got := drainEndpoints(t, eps)
	seen := map[int64]bool{}
	total := 0
	for i, rs := range got {
		for _, row := range rs {
			if d := ShardOf(row[1], n); d != i {
				t.Fatalf("row %v delivered to shard %d, owner is %d", row, i, d)
			}
			if seen[row[0]] {
				t.Fatalf("row id %d delivered twice", row[0])
			}
			seen[row[0]] = true
			total++
		}
	}
	if total != n*rows {
		t.Fatalf("delivered %d rows, want %d", total, n*rows)
	}
	// Counters agree with the delivery: every row is counted at its
	// destination, and only off-shard rows count as moved.
	var recv int64
	for i := range eps {
		recv += hub.DeliveredTo(i)
	}
	if recv != int64(n*rows) {
		t.Fatalf("DeliveredTo sums to %d, want %d", recv, n*rows)
	}
	var sent int64
	for i := range eps {
		sent += hub.SentFrom(i)
	}
	if sent != hub.RowsMoved() {
		t.Fatalf("SentFrom sums to %d, RowsMoved = %d", sent, hub.RowsMoved())
	}
	if hub.RowsMoved() <= 0 || hub.RowsMoved() > int64(n*rows) {
		t.Fatalf("RowsMoved = %d", hub.RowsMoved())
	}
}

// TestExchangeHotKey routes every row to one shard — the skew case the
// bounded channels must survive: producers of the cold shards
// backpressure against the single hot consumer.
func TestExchangeHotKey(t *testing.T) {
	const n = 4
	const rows = 3000 // several batches deep, past the channel capacity
	hot := int64(11)
	hotShard := ShardOf(hot, n)
	srcs := make([]Operator, n)
	for i := 0; i < n; i++ {
		rel := &Relation{Schema: []string{"x", "k"}}
		for r := 0; r < rows; r++ {
			rel.Rows = append(rel.Rows, []int64{int64(i*rows + r), hot})
		}
		srcs[i] = NewRelationSource(rel)
	}
	hub, eps, err := NewExchange(srcs, "k", 2)
	if err != nil {
		t.Fatal(err)
	}
	got := drainEndpoints(t, eps)
	for i, rs := range got {
		want := 0
		if i == hotShard {
			want = n * rows
		}
		if len(rs) != want {
			t.Fatalf("shard %d received %d rows, want %d", i, len(rs), want)
		}
	}
	if hub.DeliveredTo(hotShard) != int64(n*rows) {
		t.Fatalf("DeliveredTo(hot) = %d", hub.DeliveredTo(hotShard))
	}
	// Every source but the hot shard's own shipped all its rows across.
	if want := int64((n - 1) * rows); hub.RowsMoved() != want {
		t.Fatalf("RowsMoved = %d, want %d", hub.RowsMoved(), want)
	}
}

// TestExchangeEarlyClose abandons the endpoints after at most one
// batch each: Close must unblock the producers and tear the hub down
// without deadlock (timeout) or leaked goroutines (-race watches the
// teardown ordering).
func TestExchangeEarlyClose(t *testing.T) {
	const n = 3
	srcs := exchangeInput(n, 5000)
	_, eps, err := NewExchange(srcs, "k", 4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, ep := range eps {
		wg.Add(1)
		go func(ep Operator) {
			defer wg.Done()
			ep.Open()
			b := NewBatch(len(ep.Schema()))
			ep.Next(b) // at most one batch, then abandon the stream
			ep.Close()
		}(ep)
	}
	wg.Wait()
}

// TestExchangeCloseWithoutOpen tears a never-started hub down: no
// producer ran, so Close must not wait for one.
func TestExchangeCloseWithoutOpen(t *testing.T) {
	srcs := exchangeInput(2, 10)
	_, eps, err := NewExchange(srcs, "k", 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, ep := range eps {
		ep.Close()
	}
}

func TestExchangeErrors(t *testing.T) {
	if _, _, err := NewExchange(exchangeInput(1, 1), "k", 2); err == nil {
		t.Fatal("single-shard exchange must error")
	}
	if _, _, err := NewExchange(exchangeInput(2, 1), "nope", 2); err == nil {
		t.Fatal("unknown key must error")
	}
}

// TestUnionFanIn checks the per-child merge against the plain union:
// same multiset of rows, any order.
func TestUnionFanIn(t *testing.T) {
	rels := []*Relation{
		{Schema: []string{"x"}, Rows: [][]int64{{1}, {2}, {3}}},
		{Schema: []string{"x"}, Rows: [][]int64{{4}}},
		{Schema: []string{"x"}, Rows: [][]int64{}},
		{Schema: []string{"x"}, Rows: [][]int64{{5}, {6}}},
	}
	children := make([]Operator, len(rels))
	for i, r := range rels {
		children[i] = NewRelationSource(r)
	}
	got := Drain(NewUnionFanIn([]string{"x"}, children))
	seen := map[int64]int{}
	for _, row := range got.Rows {
		seen[row[0]]++
	}
	if len(got.Rows) != 6 || len(seen) != 6 {
		t.Fatalf("fan-in rows = %v", got.Rows)
	}
	// Single child: falls back to the plain union.
	one := Drain(NewUnionFanIn([]string{"x"}, children[:1]))
	if len(one.Rows) != 3 {
		t.Fatalf("single-child fan-in rows = %v", one.Rows)
	}
}

// TestCaptureReplaysStream checks the result-cache plumbing: a fully
// drained Capture yields a complete relation that a RelationSource
// replays byte-for-byte; an abandoned Capture reports incomplete.
func TestCaptureReplaysStream(t *testing.T) {
	rel := &Relation{Schema: []string{"x", "y"}, Rows: [][]int64{{1, 2}, {3, 4}, {5, 6}}}
	cap1 := NewCapture(NewRelationSource(rel))
	out := Drain(cap1)
	if len(out.Rows) != 3 {
		t.Fatalf("drained %d rows", len(out.Rows))
	}
	captured, complete := cap1.Result()
	if !complete || len(captured.Rows) != 3 {
		t.Fatalf("capture = %v complete=%v", captured, complete)
	}
	replay := Drain(NewRelationSource(captured))
	for i, row := range replay.Rows {
		if row[0] != rel.Rows[i][0] || row[1] != rel.Rows[i][1] {
			t.Fatalf("replay row %d = %v", i, row)
		}
	}

	// Abandoned mid-stream: the partial capture must not be marked
	// complete (it would poison a result cache).
	big := &Relation{Schema: []string{"x"}}
	for i := 0; i < 5000; i++ {
		big.Rows = append(big.Rows, []int64{int64(i)})
	}
	cap2 := NewCapture(NewRelationSource(big))
	cap2.Open()
	b := NewBatch(1)
	cap2.Next(b)
	cap2.Close()
	if _, complete := cap2.Result(); complete {
		t.Fatal("abandoned capture must be incomplete")
	}
}
