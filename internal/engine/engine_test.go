package engine

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cover"
	"repro/internal/dllite"
	"repro/internal/naive"
	"repro/internal/query"
	"repro/internal/reformulate"
)

func TestDictionaryRoundTrip(t *testing.T) {
	d := NewDictionary()
	a := d.Encode("alpha")
	b := d.Encode("beta")
	if a == b {
		t.Fatal("distinct strings share an id")
	}
	if d.Encode("alpha") != a {
		t.Fatal("re-encoding changed the id")
	}
	if d.Decode(a) != "alpha" || d.Decode(b) != "beta" {
		t.Fatal("decode mismatch")
	}
	if _, ok := d.Lookup("gamma"); ok {
		t.Fatal("lookup of unknown string must fail")
	}
	if d.Size() != 2 {
		t.Fatalf("size = %d", d.Size())
	}
}

func TestPropDictionary(t *testing.T) {
	f := func(ss []string) bool {
		d := NewDictionary()
		ids := make(map[string]int64)
		for _, s := range ss {
			id := d.Encode(s)
			if prev, ok := ids[s]; ok && prev != id {
				return false
			}
			ids[s] = id
			if d.Decode(id) != s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func loadDB(t *testing.T, layout Layout, aboxText string) *DB {
	t.Helper()
	db := NewDB(layout)
	db.LoadABox(dllite.MustParseABox(aboxText))
	return db
}

const sampleABox = `
worksWith(Ioana, Francois)
supervisedBy(Damian, Ioana)
supervisedBy(Damian, Francois)
PhDStudent(Damian)
Researcher(Ioana)
Researcher(Francois)
`

func TestBasicEvaluationBothLayouts(t *testing.T) {
	for _, layout := range []Layout{LayoutSimple, LayoutRDF} {
		db := loadDB(t, layout, sampleABox)
		if db.NumFacts() != 6 {
			t.Fatalf("%v: facts = %d", layout, db.NumFacts())
		}
		q := query.MustParseCQ("q(x) <- PhDStudent(x), supervisedBy(x, y), Researcher(y)")
		ans := EvaluateCQ(q, db, ProfilePostgres())
		if len(ans.Tuples) != 1 || ans.Tuples[0][0] != "Damian" {
			t.Fatalf("%v: answer = %v", layout, ans.Tuples)
		}
	}
}

func TestConstantsAndMissingTables(t *testing.T) {
	db := loadDB(t, LayoutSimple, sampleABox)
	// Constant present.
	q := query.MustParseCQ("q(x) <- supervisedBy(x, 'Ioana')")
	ans := EvaluateCQ(q, db, ProfilePostgres())
	if len(ans.Tuples) != 1 || ans.Tuples[0][0] != "Damian" {
		t.Fatalf("answer = %v", ans.Tuples)
	}
	// Constant absent from the data: empty result, no panic.
	q = query.MustParseCQ("q(x) <- supervisedBy(x, 'Nobody')")
	if ans := EvaluateCQ(q, db, ProfilePostgres()); len(ans.Tuples) != 0 {
		t.Fatalf("expected empty, got %v", ans.Tuples)
	}
	// Unknown table: empty result.
	q = query.MustParseCQ("q(x) <- Unicorn(x)")
	if ans := EvaluateCQ(q, db, ProfilePostgres()); len(ans.Tuples) != 0 {
		t.Fatalf("expected empty, got %v", ans.Tuples)
	}
}

func TestRepeatedVariableAtom(t *testing.T) {
	db := loadDB(t, LayoutSimple, "R(a, a)\nR(a, b)\nR(b, b)")
	q := query.MustParseCQ("q(x) <- R(x, x)")
	ans := EvaluateCQ(q, db, ProfilePostgres())
	if len(ans.Tuples) != 2 {
		t.Fatalf("diagonal answer = %v", ans.Tuples)
	}
}

// randABoxText builds a random ABox over a small vocabulary.
func randABoxText(r *rand.Rand) string {
	concepts := []string{"A", "B", "PhDStudent", "Researcher"}
	roles := []string{"R", "S", "worksWith", "supervisedBy"}
	inds := []string{"a", "b", "c", "d", "e"}
	var sb strings.Builder
	n := 3 + r.Intn(25)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 0 {
			sb.WriteString(concepts[r.Intn(len(concepts))])
			sb.WriteString("(" + inds[r.Intn(len(inds))] + ")\n")
		} else {
			sb.WriteString(roles[r.Intn(len(roles))])
			sb.WriteString("(" + inds[r.Intn(len(inds))] + ", " + inds[r.Intn(len(inds))] + ")\n")
		}
	}
	return sb.String()
}

// randQuery builds a random connected-ish CQ.
func randQuery(r *rand.Rand) query.CQ {
	concepts := []string{"A", "B", "PhDStudent", "Researcher"}
	roles := []string{"R", "S", "worksWith", "supervisedBy"}
	vars := []string{"x", "y", "z"}
	n := 1 + r.Intn(3)
	var atoms []query.Atom
	for i := 0; i < n; i++ {
		if r.Intn(2) == 0 {
			atoms = append(atoms, query.ConceptAtom(concepts[r.Intn(len(concepts))], query.Var(vars[r.Intn(len(vars))])))
		} else {
			atoms = append(atoms, query.RoleAtom(roles[r.Intn(len(roles))],
				query.Var(vars[r.Intn(len(vars))]), query.Var(vars[r.Intn(len(vars))])))
		}
	}
	return query.CQ{Name: "q", Head: []query.Term{atoms[0].Args[0]}, Atoms: atoms}
}

func relToSet(rel *Relation, d *Dictionary) map[string]bool {
	out := make(map[string]bool, len(rel.Rows))
	for _, row := range rel.Rows {
		parts := make([]string, len(row))
		for i, id := range row {
			parts[i] = d.Decode(id)
		}
		out[strings.Join(parts, "\x00")] = true
	}
	return out
}

func naiveToSet(rel *naive.Relation) map[string]bool {
	out := make(map[string]bool, rel.Size())
	for k := range rel.Tuples {
		out[k] = true
	}
	return out
}

func sameSets(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// TestPropEngineMatchesNaiveCQ: the engine agrees with the reference
// evaluator on random CQs, data, layouts, and profiles.
func TestPropEngineMatchesNaiveCQ(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		text := randABoxText(r)
		ab := dllite.MustParseABox(text)
		q := randQuery(r)
		want := naiveToSet(naive.EvalCQ(q, ab))
		for _, layout := range []Layout{LayoutSimple, LayoutRDF} {
			for _, prof := range []*Profile{ProfilePostgres(), ProfileDB2()} {
				db := NewDB(layout)
				db.LoadABox(ab)
				p := PlanCQ(q, db, prof)
				rel := ExecCQ(p, db)
				rel.Distinct()
				if !sameSets(relToSet(rel, db.Dict), want) {
					t.Logf("seed=%d layout=%v prof=%s q=%v", seed, layout, prof.Name, q)
					t.Logf("abox:\n%s", text)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestPropEngineMatchesNaiveJUCQ: full reformulation pipeline — the
// engine's JUCQ answers match the naive evaluator's on random covers.
func TestPropEngineMatchesNaiveJUCQ(t *testing.T) {
	tb := dllite.MustParseTBox(`
PhDStudent <= Researcher
exists worksWith <= Researcher
exists worksWith- <= Researcher
worksWith <= worksWith-
role: supervisedBy <= worksWith
exists supervisedBy <= PhDStudent
`)
	q := query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(y, x)")
	ref := reformulate.New(tb)
	var covers []cover.Cover
	cover.EnumerateGeneralizedCovers(q, tb, 0, func(c cover.Cover) bool {
		covers = append(covers, c)
		return true
	})
	if len(covers) == 0 {
		t.Fatal("no covers")
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ab := dllite.MustParseABox(randABoxText(r))
		c := covers[r.Intn(len(covers))]
		j, err := c.ReformulateJUCQ(ref)
		if err != nil {
			return false
		}
		want := naiveToSet(naive.EvalJUCQ(j, ab))
		for _, layout := range []Layout{LayoutSimple, LayoutRDF} {
			db := NewDB(layout)
			db.LoadABox(ab)
			ans := EvaluateJUCQ(j, db, ProfileDB2())
			got := make(map[string]bool, len(ans.Tuples))
			for _, tu := range ans.Tuples {
				got[strings.Join(tu, "\x00")] = true
			}
			if !sameSets(got, want) {
				t.Logf("seed=%d layout=%v cover=%v", seed, layout, c)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestPropSCQMatchesExpansion: factorized SCQ evaluation equals the
// expanded UCQ evaluation.
func TestPropSCQMatchesExpansion(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ab := dllite.MustParseABox(randABoxText(r))
		s := query.SCQ{
			Name: "q",
			Head: []query.Term{query.Var("x")},
			Blocks: [][]query.Atom{
				{query.ConceptAtom("A", query.Var("x")), query.ConceptAtom("PhDStudent", query.Var("x"))},
				{query.RoleAtom("R", query.Var("x"), query.Var("y")),
					query.RoleAtom("worksWith", query.Var("x"), query.Var("y"))},
			},
		}
		db := NewDB(LayoutSimple)
		db.LoadABox(ab)
		p := PlanSCQ(s, db, ProfilePostgres())
		got := ExecSCQ(p, db)
		got.Distinct()
		wantRel := ExecUCQ(PlanUCQ(s.Expand(), db, ProfilePostgres()), db)
		if !sameSets(relToSet(got, db.Dict), relToSet(wantRel, db.Dict)) {
			t.Logf("seed=%d", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSamplingShortcutFlag(t *testing.T) {
	db := loadDB(t, LayoutSimple, sampleABox)
	var ds []query.CQ
	for i := 0; i < 100; i++ {
		ds = append(ds, query.MustParseCQ("q(x) <- PhDStudent(x)"))
	}
	u := query.UCQ{Disjuncts: ds}
	pg := PlanUCQ(u, db, ProfilePostgres())
	if !pg.Sampled {
		t.Error("postgres profile must sample unions with >64 arms")
	}
	db2 := PlanUCQ(u, db, ProfileDB2())
	if db2.Sampled {
		t.Error("db2 profile must not sample")
	}
	small := query.UCQ{Disjuncts: ds[:10]}
	if PlanUCQ(small, db, ProfilePostgres()).Sampled {
		t.Error("small unions are never sampled")
	}
}

func TestStatementSizeLimit(t *testing.T) {
	p := ProfileDB2()
	if err := p.CheckStatementSize(100); err != nil {
		t.Fatalf("small statement rejected: %v", err)
	}
	err := p.CheckStatementSize(2_247_118)
	if err == nil {
		t.Fatal("oversized statement must be rejected")
	}
	if !strings.Contains(err.Error(), "too long or too complex") {
		t.Errorf("error text = %q", err)
	}
	if err := ProfilePostgres().CheckStatementSize(50_000_000); err != nil {
		t.Errorf("postgres has no limit: %v", err)
	}
}

func TestPlanChoosesIndexAccess(t *testing.T) {
	// With a bound subject available, the planner should use the
	// forward index rather than a scan.
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		sb.WriteString("R(s" + itoa(i) + ", o" + itoa(i%7) + ")\n")
	}
	sb.WriteString("A(s3)\n")
	db := loadDB(t, LayoutSimple, sb.String())
	q := query.MustParseCQ("q(y) <- A(x), R(x, y)")
	p := PlanCQ(q, db, ProfilePostgres())
	if len(p.Steps) != 2 {
		t.Fatalf("steps = %d", len(p.Steps))
	}
	if p.Q.Atoms[p.Steps[0].Atom].Pred != "A" {
		t.Errorf("planner should start from the small concept table, got %v", p)
	}
	if p.Steps[1].Access != AccessRoleFwd {
		t.Errorf("second step should be index-fwd, got %v", p.Steps[1].Access)
	}
	// Executing matches expectation.
	rel := ExecCQ(p, db)
	rel.Distinct()
	if len(rel.Rows) != 1 {
		t.Fatalf("rows = %d", len(rel.Rows))
	}
}

func TestExplainStrings(t *testing.T) {
	db := loadDB(t, LayoutSimple, sampleABox)
	q := query.MustParseCQ("q(x) <- PhDStudent(x), supervisedBy(x, y)")
	p := PlanCQ(q, db, ProfilePostgres())
	if !strings.Contains(p.String(), "est cost") {
		t.Error("CQ explain should mention cost")
	}
	j := query.JUCQ{Name: "q", Head: q.Head, Subs: []query.UCQ{{Disjuncts: []query.CQ{q}}}}
	jp := PlanJUCQ(j, db, ProfilePostgres())
	if !strings.Contains(jp.String(), "WITH") {
		t.Error("JUCQ explain should mention WITH")
	}
}

func TestRDFLayoutCostsMore(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 500; i++ {
		sb.WriteString("R(s" + itoa(i) + ", o" + itoa(i%31) + ")\n")
	}
	ab := dllite.MustParseABox(sb.String())
	q := query.MustParseCQ("q(x, y) <- R(x, y)")
	simple := NewDB(LayoutSimple)
	simple.LoadABox(ab)
	rdf := NewDB(LayoutRDF)
	rdf.LoadABox(ab)
	pS := PlanCQ(q, simple, ProfileDB2())
	pR := PlanCQ(q, rdf, ProfileDB2())
	if pR.EstCost <= pS.EstCost {
		t.Errorf("RDF layout must be estimated costlier: %.1f vs %.1f", pR.EstCost, pS.EstCost)
	}
	// Same answers on both layouts.
	a1 := EvaluateCQ(q, simple, ProfileDB2())
	a2 := EvaluateCQ(q, rdf, ProfileDB2())
	if len(a1.Tuples) != len(a2.Tuples) {
		t.Errorf("layouts disagree: %d vs %d tuples", len(a1.Tuples), len(a2.Tuples))
	}
}

func TestStatisticsValues(t *testing.T) {
	db := loadDB(t, LayoutSimple, sampleABox)
	st := db.Stats()
	if st.CardConcept("PhDStudent") != 1 || st.CardConcept("Researcher") != 2 {
		t.Errorf("concept cards wrong: %v", st.ConceptCard)
	}
	if st.CardRole("supervisedBy") != 2 {
		t.Errorf("role card wrong: %v", st.RoleCard)
	}
	if st.RoleDistS["supervisedBy"] != 1 || st.RoleDistO["supervisedBy"] != 2 {
		t.Errorf("distinct counts wrong: %v / %v", st.RoleDistS, st.RoleDistO)
	}
	if st.TotalFacts != 6 {
		t.Errorf("total facts = %d", st.TotalFacts)
	}
}

func TestHashJoinNoCommonColumns(t *testing.T) {
	l := &Relation{Schema: []string{"x"}, Rows: [][]int64{{1}, {2}}}
	r := &Relation{Schema: []string{"y"}, Rows: [][]int64{{7}, {8}, {9}}}
	j := HashJoin(l, r)
	if len(j.Rows) != 6 {
		t.Errorf("cartesian join = %d rows, want 6", len(j.Rows))
	}
	if len(j.Schema) != 2 {
		t.Errorf("schema = %v", j.Schema)
	}
}

func TestHashJoinSharedColumn(t *testing.T) {
	l := &Relation{Schema: []string{"x", "y"}, Rows: [][]int64{{1, 10}, {2, 20}}}
	r := &Relation{Schema: []string{"y", "z"}, Rows: [][]int64{{10, 100}, {10, 101}, {30, 300}}}
	j := HashJoin(l, r)
	if len(j.Rows) != 2 {
		t.Errorf("join = %d rows, want 2", len(j.Rows))
	}
	if len(j.Schema) != 3 {
		t.Errorf("schema = %v", j.Schema)
	}
}

func TestRelationDistinct(t *testing.T) {
	r := &Relation{Schema: []string{"x"}, Rows: [][]int64{{1}, {1}, {2}}}
	r.Distinct()
	if len(r.Rows) != 2 {
		t.Errorf("distinct = %d rows", len(r.Rows))
	}
}

func TestRDFOverflowSlots(t *testing.T) {
	// More predicates than slots: overflow chains must still work.
	var sb strings.Builder
	for i := 0; i < DefaultRDFSlots+5; i++ {
		sb.WriteString("P" + itoa(i) + "(e, o" + itoa(i) + ")\n")
	}
	db := loadDB(t, LayoutRDF, sb.String())
	for i := 0; i < DefaultRDFSlots+5; i++ {
		q := query.MustParseCQ("q(y) <- P" + itoa(i) + "(x, y)")
		ans := EvaluateCQ(q, db, ProfileDB2())
		if len(ans.Tuples) != 1 || ans.Tuples[0][0] != "o"+itoa(i) {
			t.Fatalf("predicate P%d lost in overflow: %v", i, ans.Tuples)
		}
	}
}

func TestStatsInvalidatedByUpdates(t *testing.T) {
	db := loadDB(t, LayoutSimple, sampleABox)
	before := db.Stats().TotalFacts
	db.AddConceptFact("Researcher", "NewPerson")
	db.Finalize()
	after := db.Stats().TotalFacts
	if after != before+1 {
		t.Errorf("stats not refreshed: %d -> %d", before, after)
	}
}

func TestJUSCQEngineMatchesNaive(t *testing.T) {
	tb := dllite.MustParseTBox(`
PhDStudent <= Researcher
role: supervisedBy <= worksWith
exists supervisedBy <= PhDStudent
`)
	q := query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(y, x)")
	ref := reformulate.New(tb)
	c := cover.RootCover(q, tb)
	js, err := c.ReformulateJUSCQ(ref)
	if err != nil {
		t.Fatal(err)
	}
	ab := dllite.MustParseABox(sampleABox)
	want := naive.EvalJUSCQ(js, ab)
	db := NewDB(LayoutSimple)
	db.LoadABox(ab)
	ans := EvaluateJUSCQ(js, db, ProfileDB2())
	got := make(map[string]bool, len(ans.Tuples))
	for _, tu := range ans.Tuples {
		got[strings.Join(tu, "\x00")] = true
	}
	if !sameSets(got, naiveToSet(want)) {
		t.Fatalf("engine JUSCQ %v vs naive %v", ans.Tuples, want.Sorted())
	}
}
