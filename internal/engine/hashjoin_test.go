package engine

import (
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"repro/internal/dllite"
	"repro/internal/query"
)

// jucqOf builds a JUCQ whose fragments are single-CQ UCQs parsed from
// the given texts, with the given overall head variables.
func jucqOf(headVars []string, frags ...string) query.JUCQ {
	j := query.JUCQ{Name: "q"}
	for _, v := range headVars {
		j.Head = append(j.Head, query.Var(v))
	}
	for _, f := range frags {
		j.Subs = append(j.Subs, query.UCQ{Disjuncts: []query.CQ{query.MustParseCQ(f)}})
	}
	return j
}

// TestHashJoinMatchesMaterializedJUCQ: the streaming hash-join pipeline
// and the materialize-every-fragment executor agree on a multi-fragment
// cover, on both layouts, sequential and parallel.
func TestHashJoinMatchesMaterializedJUCQ(t *testing.T) {
	j := jucqOf([]string{"x"},
		"f1(x, y) <- supervisedBy(x, y)",
		"f2(y) <- Researcher(y)",
		"f3(x) <- PhDStudent(x)",
	)
	for _, layout := range []Layout{LayoutSimple, LayoutRDF} {
		db := loadDB(t, layout, sampleABox)
		plan := PlanJUCQ(j, db, ProfilePostgres())
		want := ExecJUCQMaterialized(plan, db)
		if len(want.Rows) != 1 { // Damian
			t.Fatalf("%v: materialized = %d rows", layout, len(want.Rows))
		}
		for _, workers := range []int{1, 4} {
			got := Drain(CompileJUCQ(plan, db, nil, workers))
			if !sameSets(relToSet(got, db.Dict), relToSet(want, db.Dict)) {
				t.Fatalf("%v workers=%d: streaming %v != materialized %v",
					layout, workers, got.Rows, want.Rows)
			}
		}
	}
}

// TestHashJoinEmptyBuildSide: a fragment with no matches kills the join
// (dead short-circuit), matching the materialized fold.
func TestHashJoinEmptyBuildSide(t *testing.T) {
	j := jucqOf([]string{"x"},
		"f1(x, y) <- supervisedBy(x, y)",
		"f2(y) <- Unicorn(y)",
	)
	db := loadDB(t, LayoutSimple, sampleABox)
	plan := PlanJUCQ(j, db, ProfilePostgres())
	for _, workers := range []int{1, 4} {
		got := Drain(CompileJUCQ(plan, db, nil, workers))
		if len(got.Rows) != 0 {
			t.Fatalf("workers=%d: want empty, got %v", workers, got.Rows)
		}
	}
	if want := ExecJUCQMaterialized(plan, db); len(want.Rows) != 0 {
		t.Fatalf("materialized disagrees: %v", want.Rows)
	}
}

// TestHashJoinCrossProduct: fragments sharing no variable join as a
// cross product (empty join-column list).
func TestHashJoinCrossProduct(t *testing.T) {
	j := jucqOf([]string{"x", "y"},
		"f1(x) <- PhDStudent(x)",
		"f2(y) <- Researcher(y)",
	)
	db := loadDB(t, LayoutSimple, sampleABox)
	plan := PlanJUCQ(j, db, ProfilePostgres())
	want := ExecJUCQMaterialized(plan, db)
	if len(want.Rows) != 2 { // Damian × {Ioana, Francois}
		t.Fatalf("materialized = %v", want.Rows)
	}
	for _, workers := range []int{1, 4} {
		got := Drain(CompileJUCQ(plan, db, nil, workers))
		if !sameSets(relToSet(got, db.Dict), relToSet(want, db.Dict)) {
			t.Fatalf("workers=%d: %v != %v", workers, got.Rows, want.Rows)
		}
	}
}

// TestHashJoinReuse: the compiled cover tree re-executes from scratch on
// every Open/Drain cycle, sequential and parallel.
func TestHashJoinReuse(t *testing.T) {
	j := jucqOf([]string{"x"},
		"f1(x, y) <- supervisedBy(x, y)",
		"f2(y) <- Researcher(y)",
	)
	db := loadDB(t, LayoutSimple, sampleABox)
	plan := PlanJUCQ(j, db, ProfilePostgres())
	for _, workers := range []int{1, 4} {
		op := CompileJUCQ(plan, db, nil, workers)
		first := Drain(op)
		if len(first.Rows) == 0 {
			t.Fatal("unexpected empty join")
		}
		for i := 0; i < 3; i++ {
			again := Drain(op)
			if !sameSets(relToSet(again, db.Dict), relToSet(first, db.Dict)) {
				t.Fatalf("workers=%d: re-execution %d differs", workers, i)
			}
		}
	}
}

// randJUCQ builds a random multi-fragment JUCQ over the shared test
// vocabulary: every fragment binds its head variables, fragments may or
// may not share variables (exercising both keyed joins and cross
// products), and fragments may be empty on the random data.
func randJUCQ(r *rand.Rand) query.JUCQ {
	concepts := []string{"A", "B", "PhDStudent", "Researcher", "Nothing"}
	roles := []string{"R", "S", "worksWith", "supervisedBy"}
	headSets := [][]string{{"x"}, {"y"}, {"x", "y"}}
	nf := 2 + r.Intn(2)
	j := query.JUCQ{Name: "q"}
	seen := map[string]bool{}
	for f := 0; f < nf; f++ {
		hv := headSets[r.Intn(len(headSets))]
		var head []query.Term
		for _, v := range hv {
			head = append(head, query.Var(v))
			if !seen[v] {
				seen[v] = true
				j.Head = append(j.Head, query.Var(v))
			}
		}
		u := query.UCQ{}
		for d, nd := 0, 1+r.Intn(2); d < nd; d++ {
			var atoms []query.Atom
			for _, v := range hv {
				// Bind every head variable.
				if r.Intn(2) == 0 {
					atoms = append(atoms, query.ConceptAtom(concepts[r.Intn(len(concepts))], query.Var(v)))
				} else {
					atoms = append(atoms, query.RoleAtom(roles[r.Intn(len(roles))], query.Var(v), query.Var("z")))
				}
			}
			if r.Intn(2) == 0 {
				atoms = append(atoms, query.RoleAtom(roles[r.Intn(len(roles))],
					query.Var(hv[0]), query.Var("w")))
			}
			u.Disjuncts = append(u.Disjuncts, query.CQ{Name: "f", Head: head, Atoms: atoms})
		}
		j.Subs = append(j.Subs, u)
	}
	return j
}

// TestPropHashJoinMatchesMaterialized: streaming cover execution equals
// the materialized fold on random fragment sets, data, and worker
// counts — empty fragments and cross products included.
func TestPropHashJoinMatchesMaterialized(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ab := dllite.MustParseABox(randABoxText(r))
		j := randJUCQ(r)
		db := NewDB(LayoutSimple)
		db.LoadABox(ab)
		plan := PlanJUCQ(j, db, ProfilePostgres())
		want := ExecJUCQMaterialized(plan, db)
		for _, workers := range []int{1, 4} {
			got := Drain(CompileJUCQ(plan, db, nil, workers))
			if !sameSets(relToSet(got, db.Dict), relToSet(want, db.Dict)) {
				t.Logf("seed=%d workers=%d: %d vs %d rows for %s",
					seed, workers, len(got.Rows), len(want.Rows), j.String())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestCoverJoinOrder: the largest fragment drives the probe pass and the
// build sides load smallest-first.
func TestCoverJoinOrder(t *testing.T) {
	probe, builds := coverJoinOrder([]float64{10, 500, 3, 40})
	if probe != 1 {
		t.Fatalf("probe = %d", probe)
	}
	if len(builds) != 3 || builds[0] != 2 || builds[1] != 0 || builds[2] != 3 {
		t.Fatalf("builds = %v", builds)
	}
}

// TestClampWorkers: the shared worker-budget policy caps at the task
// count, the machine, and the requested budget, with a floor of one.
func TestClampWorkers(t *testing.T) {
	maxp := runtime.GOMAXPROCS(0)
	if got, want := clampWorkers(8, 2), min(2, maxp); got != want {
		t.Fatalf("clamp to tasks: %d, want %d", got, want)
	}
	if got := clampWorkers(0, 5); got != 1 {
		t.Fatalf("floor: %d", got)
	}
	if got := clampWorkers(3, 5); got > 3 || got > maxp {
		t.Fatalf("budget exceeded: %d", got)
	}
	if got := clampWorkers(1000, 1000); got > maxp {
		t.Fatalf("machine cap exceeded: %d > %d", got, maxp)
	}
}
