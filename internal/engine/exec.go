package engine

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/query"
)

// Relation is a materialized intermediate or final result: rows of ids
// under a schema of variable names.
type Relation struct {
	Schema []string
	Rows   [][]int64
}

// rowKey serializes a row for hashing.
func rowKey(row []int64) string {
	buf := make([]byte, 8*len(row))
	for i, v := range row {
		binary.LittleEndian.PutUint64(buf[i*8:], uint64(v))
	}
	return string(buf)
}

// Distinct removes duplicate rows in place (stable).
func (r *Relation) Distinct() {
	seen := make(map[string]bool, len(r.Rows))
	out := r.Rows[:0]
	for _, row := range r.Rows {
		k := rowKey(row)
		if !seen[k] {
			seen[k] = true
			out = append(out, row)
		}
	}
	r.Rows = out
}

// Decode renders the relation as sorted string tuples via the dictionary.
func (r *Relation) Decode(d *Dictionary) [][]string {
	out := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		t := make([]string, len(row))
		for j, id := range row {
			t[j] = d.Decode(id)
		}
		out[i] = t
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// ExecCQ evaluates a planned CQ, returning rows projected on the CQ
// head (duplicates preserved; callers apply Distinct).
func ExecCQ(plan CQPlan, db *DB) *Relation {
	q := plan.Q
	// Column layout: variables in order of first use across the plan.
	colOf := map[string]int{}
	var cols []string
	for _, s := range plan.Steps {
		for _, t := range q.Atoms[s.Atom].Args {
			if t.IsVar() {
				if _, ok := colOf[t.Name]; !ok {
					colOf[t.Name] = len(cols)
					cols = append(cols, t.Name)
				}
			}
		}
	}
	rows := [][]int64{make([]int64, len(cols))}
	boundMask := make([]bool, len(cols))
	for _, s := range plan.Steps {
		rows = execStep(q.Atoms[s.Atom], rows, colOf, boundMask, db)
		for _, t := range q.Atoms[s.Atom].Args {
			if t.IsVar() {
				boundMask[colOf[t.Name]] = true
			}
		}
		if len(rows) == 0 {
			break
		}
	}
	// Project onto the head.
	out := &Relation{Schema: headSchema(q.Head)}
	for _, row := range rows {
		pr := make([]int64, len(q.Head))
		ok := true
		for i, h := range q.Head {
			if h.Const {
				id, found := db.Dict.Lookup(h.Name)
				if !found {
					ok = false
					break
				}
				pr[i] = id
			} else {
				pr[i] = row[colOf[h.Name]]
			}
		}
		if ok {
			out.Rows = append(out.Rows, pr)
		}
	}
	return out
}

func headSchema(head []query.Term) []string {
	s := make([]string, len(head))
	for i, h := range head {
		s[i] = h.Name
	}
	return s
}

// execStep joins the current rows with one atom using index lookups.
func execStep(a query.Atom, rows [][]int64, colOf map[string]int, bound []bool, db *DB) [][]int64 {
	// resolve returns (value, isBound) of a term under a row.
	resolve := func(t query.Term, row []int64) (int64, bool, bool) {
		if t.Const {
			id, ok := db.Dict.Lookup(t.Name)
			return id, true, ok
		}
		c := colOf[t.Name]
		if bound[c] {
			return row[c], true, true
		}
		return 0, false, true
	}
	var out [][]int64
	emit := func(row []int64, t query.Term, v int64) []int64 {
		if t.Const {
			return row
		}
		c := colOf[t.Name]
		if bound[c] {
			return row
		}
		nr := make([]int64, len(row))
		copy(nr, row)
		nr[c] = v
		return nr
	}
	if a.Arity() == 1 {
		for _, row := range rows {
			v, isB, ok := resolve(a.Args[0], row)
			if !ok {
				continue
			}
			if isB {
				if db.ConceptContains(a.Pred, v) {
					out = append(out, row)
				}
				continue
			}
			for _, id := range db.ConceptMembers(a.Pred) {
				out = append(out, emit(row, a.Args[0], id))
			}
		}
		return out
	}
	sameVar := a.Args[0].IsVar() && a.Args[1].IsVar() && a.Args[0].Name == a.Args[1].Name
	for _, row := range rows {
		s, sB, okS := resolve(a.Args[0], row)
		o, oB, okO := resolve(a.Args[1], row)
		if !okS || !okO {
			continue
		}
		switch {
		case sB && oB:
			if db.RoleContains(a.Pred, s, o) {
				out = append(out, row)
			}
		case sB && sameVar:
			if db.RoleContains(a.Pred, s, s) {
				out = append(out, row)
			}
		case sB:
			for _, v := range db.RoleObjects(a.Pred, s) {
				out = append(out, emit(row, a.Args[1], v))
			}
		case oB:
			for _, v := range db.RoleSubjects(a.Pred, o) {
				out = append(out, emit(row, a.Args[0], v))
			}
		default:
			if sameVar {
				db.RolePairs(a.Pred, func(ps, po int64) {
					if ps == po {
						out = append(out, emit(row, a.Args[0], ps))
					}
				})
			} else {
				db.RolePairs(a.Pred, func(ps, po int64) {
					nr := emit(row, a.Args[0], ps)
					nr = emit(nr, a.Args[1], po)
					out = append(out, nr)
				})
			}
		}
	}
	return out
}

// ExecUCQ evaluates a planned UCQ with DISTINCT.
func ExecUCQ(plan UCQPlan, db *DB) *Relation {
	out := &Relation{Schema: headSchema(plan.U.Head())}
	for i := range plan.Plans {
		r := ExecCQ(plan.Plans[i], db)
		out.Rows = append(out.Rows, r.Rows...)
	}
	out.Distinct()
	return out
}

// HashJoin joins two relations on their shared schema variables.
func HashJoin(l, r *Relation) *Relation {
	rIdx := make(map[string]int, len(r.Schema))
	for i, v := range r.Schema {
		rIdx[v] = i
	}
	var common [][2]int
	inCommon := make([]bool, len(r.Schema))
	for i, v := range l.Schema {
		if j, ok := rIdx[v]; ok {
			common = append(common, [2]int{i, j})
			inCommon[j] = true
		}
	}
	schema := append([]string(nil), l.Schema...)
	var rExtra []int
	for j, v := range r.Schema {
		if !inCommon[j] {
			rExtra = append(rExtra, j)
			schema = append(schema, v)
		}
	}
	key := func(row []int64, idx [][2]int, side int) string {
		k := make([]int64, len(idx))
		for i, c := range idx {
			k[i] = row[c[side]]
		}
		return rowKey(k)
	}
	buckets := make(map[string][][]int64, len(r.Rows))
	for _, rt := range r.Rows {
		buckets[key(rt, common, 1)] = append(buckets[key(rt, common, 1)], rt)
	}
	out := &Relation{Schema: schema}
	for _, lt := range l.Rows {
		for _, rt := range buckets[key(lt, common, 0)] {
			row := make([]int64, 0, len(schema))
			row = append(row, lt...)
			for _, j := range rExtra {
				row = append(row, rt[j])
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// ExecJUCQ evaluates a planned JUCQ: materialize each fragment with
// DISTINCT (the WITH clauses of Section 3), join smallest-first, then
// project the overall head with DISTINCT.
func ExecJUCQ(plan JUCQPlan, db *DB) *Relation {
	frags := make([]*Relation, len(plan.Frags))
	for i := range plan.Frags {
		frags[i] = ExecUCQ(plan.Frags[i], db)
	}
	return JoinAndProject(frags, plan.J.Head, db)
}

// JoinAndProject joins materialized fragment relations smallest-first
// and projects the overall head with DISTINCT — the tail of the WITH
// query of Section 3. It is exported so view-based evaluation
// (package views) can substitute cached fragment relations.
func JoinAndProject(frags []*Relation, head []query.Term, db *DB) *Relation {
	if len(frags) == 0 {
		return &Relation{Schema: headSchema(head)}
	}
	ordered := make([]*Relation, len(frags))
	copy(ordered, frags)
	sort.SliceStable(ordered, func(i, j int) bool { return len(ordered[i].Rows) < len(ordered[j].Rows) })
	cur := ordered[0]
	for _, f := range ordered[1:] {
		cur = HashJoin(cur, f)
		if len(cur.Rows) == 0 {
			break
		}
	}
	return projectRelation(cur, head, db)
}

func projectRelation(r *Relation, head []query.Term, db *DB) *Relation {
	idx := make([]int, len(head))
	for i, h := range head {
		idx[i] = -1
		for j, v := range r.Schema {
			if v == h.Name {
				idx[i] = j
				break
			}
		}
	}
	out := &Relation{Schema: headSchema(head)}
	for _, row := range r.Rows {
		pr := make([]int64, len(head))
		ok := true
		for i, h := range head {
			switch {
			case idx[i] >= 0:
				pr[i] = row[idx[i]]
			case h.Const:
				id, found := db.Dict.Lookup(h.Name)
				if !found {
					ok = false
				}
				pr[i] = id
			default:
				ok = false
			}
			if !ok {
				break
			}
		}
		if ok {
			out.Rows = append(out.Rows, pr)
		}
	}
	out.Distinct()
	return out
}

// Answer is the user-facing result of evaluating a query: decoded
// tuples plus the execution's estimated cost.
type Answer struct {
	Tuples  [][]string
	EstCost float64
}

// EvaluateCQ plans and runs a plain CQ.
func EvaluateCQ(q query.CQ, db *DB, prof *Profile) Answer {
	p := PlanCQ(q, db, prof)
	r := ExecCQ(p, db)
	r.Distinct()
	return Answer{Tuples: r.Decode(db.Dict), EstCost: p.EstCost}
}

// EvaluateUCQ plans and runs a UCQ.
func EvaluateUCQ(u query.UCQ, db *DB, prof *Profile) Answer {
	p := PlanUCQ(u, db, prof)
	r := ExecUCQ(p, db)
	return Answer{Tuples: r.Decode(db.Dict), EstCost: p.EstCost}
}

// EvaluateJUCQ plans and runs a JUCQ.
func EvaluateJUCQ(j query.JUCQ, db *DB, prof *Profile) Answer {
	p := PlanJUCQ(j, db, prof)
	r := ExecJUCQ(p, db)
	return Answer{Tuples: r.Decode(db.Dict), EstCost: p.EstCost}
}

// String renders a Relation compactly (diagnostics).
func (r *Relation) String() string {
	return fmt.Sprintf("relation%v (%d rows)", r.Schema, len(r.Rows))
}
