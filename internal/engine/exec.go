package engine

import (
	"fmt"
	"sort"

	"repro/internal/query"
)

// Relation is a materialized final result (or cached fragment): rows of
// ids under a schema of variable names. Intermediates of the hot path
// no longer materialize Relations — they stream through the operator
// pipeline (operator.go) and are drained into a Relation only at the
// top.
type Relation struct {
	Schema []string
	Rows   [][]int64
}

// Distinct removes duplicate rows in place (stable), deduplicating
// through the 64-bit row hash (collisions verified exactly — no
// string keys).
func (r *Relation) Distinct() {
	set := newRowSet(len(r.Schema))
	out := r.Rows[:0]
	for _, row := range r.Rows {
		if set.insert(row) {
			out = append(out, row)
		}
	}
	r.Rows = out
}

// Decode renders the relation as sorted string tuples via the dictionary.
func (r *Relation) Decode(d *Dictionary) [][]string {
	out := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		t := make([]string, len(row))
		for j, id := range row {
			t[j] = d.Decode(id)
		}
		out[i] = t
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// ExecCQ evaluates a planned CQ through the streaming operator
// pipeline, returning rows projected on the CQ head (duplicates
// preserved; callers apply Distinct).
func ExecCQ(plan CQPlan, db *DB) *Relation {
	return Drain(CompileCQ(plan, db, nil))
}

func headSchema(head []query.Term) []string {
	s := make([]string, len(head))
	for i, h := range head {
		s[i] = h.Name
	}
	return s
}

// ExecUCQ evaluates a planned UCQ with DISTINCT through the streaming
// pipeline (sequential union; use CompileUCQ with workers > 1 for the
// parallel union operator).
func ExecUCQ(plan UCQPlan, db *DB) *Relation {
	return Drain(CompileUCQ(plan, db, nil, 1))
}

// HashJoin joins two materialized relations on their shared schema
// variables (used for JUCQ fragment joins and cached views). Buckets
// key on the 64-bit hash of the join columns; matches are verified
// exactly.
func HashJoin(l, r *Relation) *Relation {
	rIdx := make(map[string]int, len(r.Schema))
	for i, v := range r.Schema {
		rIdx[v] = i
	}
	var common [][2]int
	inCommon := make([]bool, len(r.Schema))
	for i, v := range l.Schema {
		if j, ok := rIdx[v]; ok {
			common = append(common, [2]int{i, j})
			inCommon[j] = true
		}
	}
	schema := append([]string(nil), l.Schema...)
	var rExtra []int
	for j, v := range r.Schema {
		if !inCommon[j] {
			rExtra = append(rExtra, j)
			schema = append(schema, v)
		}
	}
	key := func(row []int64, side int) uint64 {
		h := uint64(0x9e3779b97f4a7c15)
		for _, c := range common {
			h = mix64(h ^ uint64(row[c[side]]))
		}
		return h
	}
	equalOn := func(lt, rt []int64) bool {
		for _, c := range common {
			if lt[c[0]] != rt[c[1]] {
				return false
			}
		}
		return true
	}
	buckets := make(map[uint64][]int, len(r.Rows))
	for i, rt := range r.Rows {
		h := key(rt, 1)
		buckets[h] = append(buckets[h], i)
	}
	out := &Relation{Schema: schema}
	for _, lt := range l.Rows {
		for _, ri := range buckets[key(lt, 0)] {
			rt := r.Rows[ri]
			if !equalOn(lt, rt) {
				continue
			}
			row := make([]int64, 0, len(schema))
			row = append(row, lt...)
			for _, j := range rExtra {
				row = append(row, rt[j])
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// ExecJUCQ evaluates a planned JUCQ through the streaming cover
// pipeline: fragment union pipelines feed the streaming hash join —
// no fragment Relation is materialized.
func ExecJUCQ(plan JUCQPlan, db *DB) *Relation {
	return Drain(CompileJUCQ(plan, db, nil, 1))
}

// ExecJUCQMaterialized is the pre-streaming cover path, kept as the
// differential-testing oracle and benchmark baseline: materialize each
// fragment with DISTINCT (the WITH clauses of Section 3), join
// smallest-first (plan estimates breaking ties), then project the
// overall head with DISTINCT.
func ExecJUCQMaterialized(plan JUCQPlan, db *DB) *Relation {
	frags := make([]*Relation, len(plan.Frags))
	ests := make([]float64, len(plan.Frags))
	for i := range plan.Frags {
		frags[i] = ExecUCQ(plan.Frags[i], db)
		ests[i] = plan.Frags[i].EstCard
	}
	return JoinAndProjectEst(frags, ests, plan.J.Head, db)
}

// JoinAndProject joins materialized fragment relations smallest-first
// and projects the overall head with DISTINCT — the tail of the WITH
// query of Section 3. It is exported so view-based evaluation
// (package views) can substitute cached fragment relations.
func JoinAndProject(frags []*Relation, head []query.Term, db *DB) *Relation {
	return JoinAndProjectEst(frags, nil, head, db)
}

// JoinAndProjectEst is JoinAndProject with the planner's estimated
// fragment cardinalities: fragments fold left-to-right ordered by
// materialized size, with the estimates breaking ties, so the smallest
// build side always joins first even when actual sizes coincide. ests
// may be nil (pure size order).
func JoinAndProjectEst(frags []*Relation, ests []float64, head []query.Term, db *DB) *Relation {
	if len(frags) == 0 {
		return &Relation{Schema: headSchema(head)}
	}
	order := make([]int, len(frags))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		i, j := order[a], order[b]
		if len(frags[i].Rows) != len(frags[j].Rows) {
			return len(frags[i].Rows) < len(frags[j].Rows)
		}
		if ests != nil {
			return ests[i] < ests[j]
		}
		return false
	})
	cur := frags[order[0]]
	for _, fi := range order[1:] {
		cur = HashJoin(cur, frags[fi])
		if len(cur.Rows) == 0 {
			break
		}
	}
	return projectRelation(cur, head, db)
}

func projectRelation(r *Relation, head []query.Term, db *DB) *Relation {
	idx := make([]int, len(head))
	for i, h := range head {
		idx[i] = -1
		for j, v := range r.Schema {
			if v == h.Name {
				idx[i] = j
				break
			}
		}
	}
	out := &Relation{Schema: headSchema(head)}
	for _, row := range r.Rows {
		pr := make([]int64, len(head))
		ok := true
		for i, h := range head {
			switch {
			case idx[i] >= 0:
				pr[i] = row[idx[i]]
			case h.Const:
				id, found := db.Dict.Lookup(h.Name)
				if !found {
					ok = false
				}
				pr[i] = id
			default:
				ok = false
			}
			if !ok {
				break
			}
		}
		if ok {
			out.Rows = append(out.Rows, pr)
		}
	}
	out.Distinct()
	return out
}

// Answer is the user-facing result of evaluating a query: decoded
// tuples plus the execution's estimated cost.
type Answer struct {
	Tuples  [][]string
	EstCost float64
}

// EvaluateCQ plans and runs a plain CQ through the pipeline; observed
// cardinalities flow into prof.Feedback when enabled.
func EvaluateCQ(q query.CQ, db *DB, prof *Profile) Answer {
	p := PlanCQ(q, db, prof)
	r := Drain(CompileCQ(p, db, prof))
	r.Distinct()
	return Answer{Tuples: r.Decode(db.Dict), EstCost: p.EstCost}
}

// EvaluateUCQ plans and runs a UCQ.
func EvaluateUCQ(u query.UCQ, db *DB, prof *Profile) Answer {
	p := PlanUCQ(u, db, prof)
	r := Drain(CompileUCQ(p, db, prof, 1))
	return Answer{Tuples: r.Decode(db.Dict), EstCost: p.EstCost}
}

// EvaluateUCQParallel plans and runs a UCQ with its union arms spread
// over worker goroutines through the parallel union operator.
func EvaluateUCQParallel(u query.UCQ, db *DB, prof *Profile, workers int) Answer {
	return ExecUCQPlanned(PlanUCQ(u, db, prof), db, prof, workers)
}

// ExecUCQPlanned runs an already planned UCQ through the streaming
// pipeline and decodes the result — the execution half of
// EvaluateUCQParallel, reusable when the plan is cached.
func ExecUCQPlanned(p UCQPlan, db *DB, prof *Profile, workers int) Answer {
	r := Drain(CompileUCQ(p, db, prof, workers))
	return Answer{Tuples: r.Decode(db.Dict), EstCost: p.EstCost}
}

// EvaluateJUCQ plans and runs a JUCQ.
func EvaluateJUCQ(j query.JUCQ, db *DB, prof *Profile) Answer {
	return EvaluateJUCQParallel(j, db, prof, 1)
}

// EvaluateJUCQParallel plans and runs a JUCQ through the streaming
// cover pipeline: fragment pipelines feed the streaming hash join, and
// the worker budget is split between the join's parallel build drain
// and the fragments' parallel unions (workers <= 1 keeps the fully
// sequential pipeline); observed cardinalities flow into prof.Feedback
// when enabled.
func EvaluateJUCQParallel(j query.JUCQ, db *DB, prof *Profile, workers int) Answer {
	p := PlanJUCQ(j, db, prof)
	return ExecJUCQPlanned(p, db, prof, workers)
}

// ExecJUCQPlanned runs an already planned JUCQ through the streaming
// cover pipeline and decodes the result — the execution half of
// EvaluateJUCQParallel, reusable when the plan is cached.
func ExecJUCQPlanned(p JUCQPlan, db *DB, prof *Profile, workers int) Answer {
	r := Drain(CompileJUCQ(p, db, prof, workers))
	return Answer{Tuples: r.Decode(db.Dict), EstCost: p.EstCost}
}

// String renders a Relation compactly (diagnostics).
func (r *Relation) String() string {
	return fmt.Sprintf("relation%v (%d rows)", r.Schema, len(r.Rows))
}
