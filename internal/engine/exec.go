package engine

import (
	"fmt"
	"sort"

	"repro/internal/query"
)

// Relation is a materialized final result (or cached fragment): rows of
// ids under a schema of variable names. Intermediates of the hot path
// no longer materialize Relations — they stream through the operator
// pipeline (operator.go) and are drained into a Relation only at the
// top.
type Relation struct {
	Schema []string
	Rows   [][]int64
}

// Distinct removes duplicate rows in place (stable), deduplicating
// through the 64-bit row hash (collisions verified exactly — no
// string keys).
func (r *Relation) Distinct() {
	set := newRowSet(len(r.Schema))
	out := r.Rows[:0]
	for _, row := range r.Rows {
		if set.insert(row) {
			out = append(out, row)
		}
	}
	r.Rows = out
}

// Decode renders the relation as sorted string tuples via the dictionary.
func (r *Relation) Decode(d *Dictionary) [][]string {
	out := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		t := make([]string, len(row))
		for j, id := range row {
			t[j] = d.Decode(id)
		}
		out[i] = t
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// ExecCQ evaluates a planned CQ through the streaming operator
// pipeline, returning rows projected on the CQ head (duplicates
// preserved; callers apply Distinct).
func ExecCQ(plan CQPlan, db *DB) *Relation {
	return Drain(CompileCQ(plan, db, nil))
}

func headSchema(head []query.Term) []string {
	s := make([]string, len(head))
	for i, h := range head {
		s[i] = h.Name
	}
	return s
}

// ExecUCQ evaluates a planned UCQ with DISTINCT through the streaming
// pipeline (sequential union; use CompileUCQ with workers > 1 for the
// parallel union operator).
func ExecUCQ(plan UCQPlan, db *DB) *Relation {
	return Drain(CompileUCQ(plan, db, nil, 1))
}

// HashJoin joins two materialized relations on their shared schema
// variables (used for JUCQ fragment joins and cached views). Buckets
// key on the 64-bit hash of the join columns; matches are verified
// exactly.
func HashJoin(l, r *Relation) *Relation {
	rIdx := make(map[string]int, len(r.Schema))
	for i, v := range r.Schema {
		rIdx[v] = i
	}
	var common [][2]int
	inCommon := make([]bool, len(r.Schema))
	for i, v := range l.Schema {
		if j, ok := rIdx[v]; ok {
			common = append(common, [2]int{i, j})
			inCommon[j] = true
		}
	}
	schema := append([]string(nil), l.Schema...)
	var rExtra []int
	for j, v := range r.Schema {
		if !inCommon[j] {
			rExtra = append(rExtra, j)
			schema = append(schema, v)
		}
	}
	key := func(row []int64, side int) uint64 {
		h := uint64(0x9e3779b97f4a7c15)
		for _, c := range common {
			h = mix64(h ^ uint64(row[c[side]]))
		}
		return h
	}
	equalOn := func(lt, rt []int64) bool {
		for _, c := range common {
			if lt[c[0]] != rt[c[1]] {
				return false
			}
		}
		return true
	}
	buckets := make(map[uint64][]int, len(r.Rows))
	for i, rt := range r.Rows {
		h := key(rt, 1)
		buckets[h] = append(buckets[h], i)
	}
	out := &Relation{Schema: schema}
	for _, lt := range l.Rows {
		for _, ri := range buckets[key(lt, 0)] {
			rt := r.Rows[ri]
			if !equalOn(lt, rt) {
				continue
			}
			row := make([]int64, 0, len(schema))
			row = append(row, lt...)
			for _, j := range rExtra {
				row = append(row, rt[j])
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// ExecJUCQ evaluates a planned JUCQ: materialize each fragment with
// DISTINCT (the WITH clauses of Section 3), join smallest-first, then
// project the overall head with DISTINCT.
func ExecJUCQ(plan JUCQPlan, db *DB) *Relation {
	frags := make([]*Relation, len(plan.Frags))
	for i := range plan.Frags {
		frags[i] = ExecUCQ(plan.Frags[i], db)
	}
	return JoinAndProject(frags, plan.J.Head, db)
}

// JoinAndProject joins materialized fragment relations smallest-first
// and projects the overall head with DISTINCT — the tail of the WITH
// query of Section 3. It is exported so view-based evaluation
// (package views) can substitute cached fragment relations.
func JoinAndProject(frags []*Relation, head []query.Term, db *DB) *Relation {
	if len(frags) == 0 {
		return &Relation{Schema: headSchema(head)}
	}
	ordered := make([]*Relation, len(frags))
	copy(ordered, frags)
	sort.SliceStable(ordered, func(i, j int) bool { return len(ordered[i].Rows) < len(ordered[j].Rows) })
	cur := ordered[0]
	for _, f := range ordered[1:] {
		cur = HashJoin(cur, f)
		if len(cur.Rows) == 0 {
			break
		}
	}
	return projectRelation(cur, head, db)
}

func projectRelation(r *Relation, head []query.Term, db *DB) *Relation {
	idx := make([]int, len(head))
	for i, h := range head {
		idx[i] = -1
		for j, v := range r.Schema {
			if v == h.Name {
				idx[i] = j
				break
			}
		}
	}
	out := &Relation{Schema: headSchema(head)}
	for _, row := range r.Rows {
		pr := make([]int64, len(head))
		ok := true
		for i, h := range head {
			switch {
			case idx[i] >= 0:
				pr[i] = row[idx[i]]
			case h.Const:
				id, found := db.Dict.Lookup(h.Name)
				if !found {
					ok = false
				}
				pr[i] = id
			default:
				ok = false
			}
			if !ok {
				break
			}
		}
		if ok {
			out.Rows = append(out.Rows, pr)
		}
	}
	out.Distinct()
	return out
}

// Answer is the user-facing result of evaluating a query: decoded
// tuples plus the execution's estimated cost.
type Answer struct {
	Tuples  [][]string
	EstCost float64
}

// EvaluateCQ plans and runs a plain CQ through the pipeline; observed
// cardinalities flow into prof.Feedback when enabled.
func EvaluateCQ(q query.CQ, db *DB, prof *Profile) Answer {
	p := PlanCQ(q, db, prof)
	r := Drain(CompileCQ(p, db, prof))
	r.Distinct()
	return Answer{Tuples: r.Decode(db.Dict), EstCost: p.EstCost}
}

// EvaluateUCQ plans and runs a UCQ.
func EvaluateUCQ(u query.UCQ, db *DB, prof *Profile) Answer {
	p := PlanUCQ(u, db, prof)
	r := Drain(CompileUCQ(p, db, prof, 1))
	return Answer{Tuples: r.Decode(db.Dict), EstCost: p.EstCost}
}

// EvaluateUCQParallel plans and runs a UCQ with its union arms spread
// over worker goroutines through the parallel union operator.
func EvaluateUCQParallel(u query.UCQ, db *DB, prof *Profile, workers int) Answer {
	p := PlanUCQ(u, db, prof)
	r := Drain(CompileUCQ(p, db, prof, workers))
	return Answer{Tuples: r.Decode(db.Dict), EstCost: p.EstCost}
}

// EvaluateJUCQ plans and runs a JUCQ.
func EvaluateJUCQ(j query.JUCQ, db *DB, prof *Profile) Answer {
	return EvaluateJUCQParallel(j, db, prof, 1)
}

// EvaluateJUCQParallel plans and runs a JUCQ, evaluating each
// fragment's union arms over worker goroutines (workers <= 1 keeps the
// sequential pipeline); observed cardinalities flow into prof.Feedback
// when enabled.
func EvaluateJUCQParallel(j query.JUCQ, db *DB, prof *Profile, workers int) Answer {
	p := PlanJUCQ(j, db, prof)
	frags := make([]*Relation, len(p.Frags))
	for i := range p.Frags {
		frags[i] = Drain(CompileUCQ(p.Frags[i], db, prof, workers))
	}
	r := JoinAndProject(frags, p.J.Head, db)
	return Answer{Tuples: r.Decode(db.Dict), EstCost: p.EstCost}
}

// String renders a Relation compactly (diagnostics).
func (r *Relation) String() string {
	return fmt.Sprintf("relation%v (%d rows)", r.Schema, len(r.Rows))
}
