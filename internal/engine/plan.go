package engine

import (
	"fmt"
	"strings"

	"repro/internal/query"
)

// StepAccess identifies the physical access path of a plan step.
type StepAccess int

const (
	// AccessConceptScan reads a whole concept table.
	AccessConceptScan StepAccess = iota
	// AccessConceptProbe checks membership of a bound term.
	AccessConceptProbe
	// AccessRoleScan reads a whole role table.
	AccessRoleScan
	// AccessRoleFwd expands a bound subject through the forward index.
	AccessRoleFwd
	// AccessRoleRev expands a bound object through the reverse index.
	AccessRoleRev
	// AccessRoleProbe checks a fully bound pair.
	AccessRoleProbe
)

func (a StepAccess) String() string {
	switch a {
	case AccessConceptScan:
		return "concept-scan"
	case AccessConceptProbe:
		return "concept-probe"
	case AccessRoleScan:
		return "role-scan"
	case AccessRoleFwd:
		return "index-fwd"
	case AccessRoleRev:
		return "index-rev"
	default:
		return "pair-probe"
	}
}

// PlanStep is one pipelined step of a CQ plan: join the rows produced
// so far with one atom, through a chosen access path.
type PlanStep struct {
	Atom    int
	Access  StepAccess
	EstIn   float64
	EstOut  float64
	EstCost float64
}

// CQPlan is a left-deep pipelined plan for one conjunctive query.
type CQPlan struct {
	Q       query.CQ
	Steps   []PlanStep
	EstCard float64
	EstCost float64
}

// String renders the plan EXPLAIN-style.
func (p CQPlan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CQ %s (est cost %.1f, est rows %.1f)\n", p.Q.Name, p.EstCost, p.EstCard)
	for _, s := range p.Steps {
		fmt.Fprintf(&b, "  %-14s %-40s rows≈%-10.1f cost≈%.1f\n",
			s.Access, p.Q.Atoms[s.Atom].String(), s.EstOut, s.EstCost)
	}
	return b.String()
}

// PlanCQ builds a plan for q with a greedy join-order heuristic:
// repeatedly pick the remaining atom with the smallest estimated output
// cardinality given the variables bound so far (index access preferred
// automatically, since bound-variable expansions estimate far below
// cross products).
func PlanCQ(q query.CQ, db *DB, prof *Profile) CQPlan {
	st := db.Stats()
	n := len(q.Atoms)
	used := make([]bool, n)
	bound := map[string]bool{}
	plan := CQPlan{Q: q}
	card := 1.0
	cost := 0.0
	for picked := 0; picked < n; picked++ {
		bestIdx := -1
		var best PlanStep
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			step := estimateStep(q.Atoms[i], bound, card, st, prof, db.Layout)
			step.Atom = i
			if bestIdx < 0 || step.EstOut < best.EstOut ||
				(step.EstOut == best.EstOut && step.EstCost < best.EstCost) {
				bestIdx = i
				best = step
			}
		}
		used[bestIdx] = true
		for _, t := range q.Atoms[bestIdx].Args {
			if t.IsVar() {
				bound[t.Name] = true
			}
		}
		plan.Steps = append(plan.Steps, best)
		card = best.EstOut
		cost += best.EstCost
	}
	plan.EstCard = card
	plan.EstCost = cost
	return plan
}

// estimateStep estimates joining the current intermediate result (est.
// cardinality in) with one atom, choosing the access path from which
// arguments are bound. When the profile carries execution feedback
// (Profile.Feedback), the statistics-derived fanout is replaced by the
// observed per-operator ratio from earlier executions.
func estimateStep(a query.Atom, bound map[string]bool, in float64, st *Statistics, prof *Profile, layout Layout) PlanStep {
	step := estimateStepStatic(a, bound, in, st, prof, layout)
	if prof.Feedback != nil {
		if ratio, ok := prof.Feedback.Fanout(a.Pred, step.Access); ok {
			out := in * ratio
			// Rescale the emit-proportional share of the cost.
			step.EstCost += (out - step.EstOut) * prof.CEmit
			if step.EstCost < 0 {
				step.EstCost = 0
			}
			step.EstOut = out
		}
	}
	return step
}

// estimateStepStatic is the purely statistics-driven estimate.
func estimateStepStatic(a query.Atom, bound map[string]bool, in float64, st *Statistics, prof *Profile, layout Layout) PlanStep {
	isBound := func(t query.Term) bool { return t.Const || bound[t.Name] }
	layoutF := 1.0
	if layout == LayoutRDF {
		layoutF = prof.RDFSlotFactor
	}
	ent := float64(st.TotalEntities)
	if ent < 1 {
		ent = 1
	}
	var step PlanStep
	step.EstIn = in
	if a.Arity() == 1 {
		cardA := float64(st.CardConcept(a.Pred))
		if isBound(a.Args[0]) {
			step.Access = AccessConceptProbe
			sel := cardA / ent
			step.EstOut = in * sel
			step.EstCost = in*prof.CProbe*layoutF + step.EstOut*prof.CEmit
		} else {
			step.Access = AccessConceptScan
			step.EstOut = in * cardA
			step.EstCost = in*cardA*prof.CScanTuple*layoutF + step.EstOut*prof.CEmit
		}
		return step
	}
	cardR := float64(st.CardRole(a.Pred))
	dS := float64(st.RoleDistS[a.Pred])
	dO := float64(st.RoleDistO[a.Pred])
	if dS < 1 {
		dS = 1
	}
	if dO < 1 {
		dO = 1
	}
	sBound, oBound := isBound(a.Args[0]), isBound(a.Args[1])
	sameVar := a.Args[0].IsVar() && a.Args[1].IsVar() && a.Args[0].Name == a.Args[1].Name
	switch {
	case sBound && (oBound || sameVar):
		step.Access = AccessRoleProbe
		sel := cardR / (dS * dO)
		if sel > 1 {
			sel = 1
		}
		step.EstOut = in * sel
		step.EstCost = in*prof.CProbe*layoutF + step.EstOut*prof.CEmit
	case sBound:
		step.Access = AccessRoleFwd
		fan := cardR / dS
		step.EstOut = in * fan
		step.EstCost = in*prof.CProbe*layoutF + step.EstOut*prof.CEmit
	case oBound:
		step.Access = AccessRoleRev
		fan := cardR / dO
		step.EstOut = in * fan
		step.EstCost = in*prof.CProbe*layoutF + step.EstOut*prof.CEmit
	default:
		step.Access = AccessRoleScan
		out := in * cardR
		if sameVar {
			// diagonal: R(x,x) keeps ~card/max(dS,dO) tuples
			d := dS
			if dO > d {
				d = dO
			}
			out = in * cardR / d
		}
		step.EstOut = out
		step.EstCost = in*cardR*prof.CScanTuple*layoutF + step.EstOut*prof.CEmit
	}
	return step
}

// UCQPlan is a union of CQ plans followed by DISTINCT.
type UCQPlan struct {
	U       query.UCQ
	Plans   []CQPlan
	EstCard float64
	EstCost float64
	// Sampled reports whether the profile estimated this union from a
	// sample of its arms (the Postgres shortcut).
	Sampled bool
}

// PlanUCQ plans every disjunct and aggregates cost. When the profile
// samples (#arms > SampleThreshold), only SampleSize arms are planned
// for ESTIMATION and the rest are extrapolated — exactly the behaviour
// that misleads GDL/RDBMS on Q9–Q11 in the paper. Execution still runs
// all arms (plans for unsampled arms are built on demand at exec time).
func PlanUCQ(u query.UCQ, db *DB, prof *Profile) UCQPlan {
	up := UCQPlan{U: u}
	n := len(u.Disjuncts)
	sample := n
	if prof.SampleThreshold > 0 && n > prof.SampleThreshold {
		sample = prof.SampleSize
		up.Sampled = true
	}
	var costSum, cardSum float64
	for i := 0; i < n; i++ {
		p := PlanCQ(u.Disjuncts[i], db, prof)
		up.Plans = append(up.Plans, p)
		if i < sample {
			costSum += p.EstCost
			cardSum += p.EstCard
		}
	}
	if up.Sampled {
		scale := float64(n) / float64(sample)
		costSum *= scale
		cardSum *= scale
	}
	up.EstCard = cardSum // union upper bound; DISTINCT may shrink it
	up.EstCost = costSum + cardSum*prof.CDedup
	return up
}

// JUCQPlan materializes each fragment UCQ, then joins them.
type JUCQPlan struct {
	J       query.JUCQ
	Frags   []UCQPlan
	EstCard float64
	EstCost float64
}

// PlanJUCQ plans the paper's WITH-based evaluation shape (Section 3):
// every fragment reformulation is materialized with DISTINCT; joining
// the materialized results is left to hash joins ordered by size.
func PlanJUCQ(j query.JUCQ, db *DB, prof *Profile) JUCQPlan {
	jp := JUCQPlan{J: j}
	cost := 0.0
	for _, sub := range j.Subs {
		up := PlanUCQ(sub, db, prof)
		jp.Frags = append(jp.Frags, up)
		cost += up.EstCost + up.EstCard*prof.CMat
	}
	// Join cost: linear in the inputs (hash join), pairwise smallest
	// first; output estimated with the independence assumption.
	card := 1.0
	for _, f := range jp.Frags {
		card *= maxf(f.EstCard, 1)
	}
	// crude containment: overall output cannot exceed the smallest input
	for _, f := range jp.Frags {
		if f.EstCard > 0 && f.EstCard < card {
			card = f.EstCard
		}
	}
	for _, f := range jp.Frags {
		cost += f.EstCard * prof.CProbe
	}
	cost += card * prof.CEmit
	jp.EstCard = card
	jp.EstCost = cost
	return jp
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// String renders the JUCQ plan EXPLAIN-style.
func (p JUCQPlan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "JUCQ %s (est cost %.1f, est rows %.1f)\n", p.J.Name, p.EstCost, p.EstCard)
	for i, f := range p.Frags {
		fmt.Fprintf(&b, " WITH f%d AS union of %d CQs (est cost %.1f, est rows %.1f, sampled=%v)\n",
			i+1, len(f.Plans), f.EstCost, f.EstCard, f.Sampled)
	}
	return b.String()
}
