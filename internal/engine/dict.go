// Package engine implements the RDBMS substrate the paper delegates
// query evaluation to (Section 6.1): dictionary-encoded storage with a
// unary table per concept and a binary table per role plus one- and
// two-attribute indexes (the "simple layout"), an entity-oriented
// DB2RDF-style layout ("RDF layout", [9]), a streaming batched
// operator executor for the FOL dialects (CQ, UCQ, SCQ, USCQ, JUCQ,
// JUSCQ), a greedy join-order optimizer, table statistics, and
// per-profile cost estimation emulating Postgres's explain and DB2's
// db2expln — including Postgres's estimation shortcuts on very large
// unions and DB2's statement-length limit, both of which the paper
// measures.
//
// Execution model: plans compile (compile.go) into trees of Operators
// (operator.go) exchanging fixed-size batches of int64 rows — scans,
// index-nested-loop joins, filters, projection, streaming DISTINCT
// over a 64-bit hash set, and sequential or parallel union (the
// parallel union operator owns its worker pool). ExecCQ/ExecUCQ are
// thin wrappers draining compiled pipelines into Relations; the old
// materialize-everything executor survives as ExecCQMaterialized/
// ExecUCQMaterialized for differential testing and benchmarking.
// Per-operator row counters (OpStats, ExplainPipeline) can feed the
// planner through Profile.Feedback for adaptive re-estimation.
package engine

import "sort"

// Dictionary maps individual names to dense int64 ids (Section 6.1:
// "facts are dictionary-encoded into integers, prior to storing them in
// the RDBMS").
type Dictionary struct {
	toID map[string]int64
	toS  []string
}

// NewDictionary builds an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{toID: make(map[string]int64)}
}

// Encode interns s, returning its id.
func (d *Dictionary) Encode(s string) int64 {
	if id, ok := d.toID[s]; ok {
		return id
	}
	id := int64(len(d.toS))
	d.toID[s] = id
	d.toS = append(d.toS, s)
	return id
}

// Lookup returns the id of s without interning; ok is false when s is
// unknown (a constant absent from the data can match nothing).
func (d *Dictionary) Lookup(s string) (int64, bool) {
	id, ok := d.toID[s]
	return id, ok
}

// Decode returns the string for id; it panics on unknown ids (ids only
// come from this dictionary).
func (d *Dictionary) Decode(id int64) string { return d.toS[id] }

// Size returns the number of interned strings.
func (d *Dictionary) Size() int { return len(d.toS) }

// ConceptTable is the unary table of a concept: the sorted set of
// member ids, with a hash index (the "one-attribute index").
type ConceptTable struct {
	IDs []int64
	set map[int64]bool
}

func newConceptTable() *ConceptTable {
	return &ConceptTable{set: make(map[int64]bool)}
}

func (t *ConceptTable) add(id int64) {
	if !t.set[id] {
		t.set[id] = true
		t.IDs = append(t.IDs, id)
	}
}

func (t *ConceptTable) finalize() {
	sort.Slice(t.IDs, func(i, j int) bool { return t.IDs[i] < t.IDs[j] })
}

// Contains probes the one-attribute index.
func (t *ConceptTable) Contains(id int64) bool {
	if t == nil {
		return false
	}
	return t.set[id]
}

// Card returns the table cardinality.
func (t *ConceptTable) Card() int {
	if t == nil {
		return 0
	}
	return len(t.IDs)
}

// RoleTable is the binary table of a role with both two-attribute
// indexes: forward (subject → objects) and reverse (object → subjects).
type RoleTable struct {
	Pairs [][2]int64
	fwd   map[int64][]int64
	rev   map[int64][]int64
	pairs map[[2]int64]bool
}

func newRoleTable() *RoleTable {
	return &RoleTable{
		fwd:   make(map[int64][]int64),
		rev:   make(map[int64][]int64),
		pairs: make(map[[2]int64]bool),
	}
}

func (t *RoleTable) add(s, o int64) {
	k := [2]int64{s, o}
	if t.pairs[k] {
		return
	}
	t.pairs[k] = true
	t.Pairs = append(t.Pairs, k)
	t.fwd[s] = append(t.fwd[s], o)
	t.rev[o] = append(t.rev[o], s)
}

// finalize sorts the pair list and both adjacency indexes, giving
// deterministic scan and index-expansion order regardless of load
// order (concept tables get the same treatment; see DB.Finalize).
func (t *RoleTable) finalize() {
	sort.Slice(t.Pairs, func(i, j int) bool {
		if t.Pairs[i][0] != t.Pairs[j][0] {
			return t.Pairs[i][0] < t.Pairs[j][0]
		}
		return t.Pairs[i][1] < t.Pairs[j][1]
	})
	for _, vs := range t.fwd {
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	}
	for _, vs := range t.rev {
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	}
}

// Card returns the number of stored pairs.
func (t *RoleTable) Card() int {
	if t == nil {
		return 0
	}
	return len(t.Pairs)
}

// DistinctS returns the number of distinct subjects.
func (t *RoleTable) DistinctS() int {
	if t == nil {
		return 0
	}
	return len(t.fwd)
}

// DistinctO returns the number of distinct objects.
func (t *RoleTable) DistinctO() int {
	if t == nil {
		return 0
	}
	return len(t.rev)
}

// Objects returns the objects paired with subject s (forward index).
func (t *RoleTable) Objects(s int64) []int64 {
	if t == nil {
		return nil
	}
	return t.fwd[s]
}

// Subjects returns the subjects paired with object o (reverse index).
func (t *RoleTable) Subjects(o int64) []int64 {
	if t == nil {
		return nil
	}
	return t.rev[o]
}

// ContainsPair probes the two-attribute index.
func (t *RoleTable) ContainsPair(s, o int64) bool {
	if t == nil {
		return false
	}
	return t.pairs[[2]int64{s, o}]
}
