package engine

import "sync"

// Profile models an RDBMS's optimizer/runtime personality — the aspects
// of Postgres and DB2 the paper's experiments expose (Sections 6.1–6.3).
type Profile struct {
	Name string

	// Feedback, when non-nil, accumulates the per-operator cardinalities
	// the streaming executor observes (rows in/out of every join and
	// filter) and feeds them back into estimateStep — the engine's
	// "learning optimizer" loop. Nil (the default) keeps the planner
	// purely statistics-driven, matching the paper's engines.
	Feedback *CardFeedback

	// MaxStatementBytes is the maximum accepted SQL statement length; 0
	// means unlimited. DB2 rejects reformulated queries past ~2.1 MB
	// with "The statement is too long or too complex" (Section 6.3).
	MaxStatementBytes int

	// SampleThreshold/SampleSize model Postgres's estimation shortcuts
	// on extremely large queries (Section 6.3: "Postgres takes drastic
	// shortcuts when estimating the cost of an extremely large query").
	// When a union has more than SampleThreshold arms, its cost is
	// extrapolated from the first SampleSize arms. 0 disables sampling.
	SampleThreshold int
	SampleSize      int

	// Cost-model constants (cost units per tuple). Fitted per engine by
	// internal/cost.Calibrate; defaults are sensible out of the box.
	CScanTuple float64 // sequential scan, per tuple
	CProbe     float64 // index probe, per input row
	CEmit      float64 // per produced row
	CDedup     float64 // per row entering a DISTINCT
	CMat       float64 // per row materialized into a CTE

	// RDFSlotFactor scales access costs on the RDF layout: every probe
	// must inspect the hashed predicate columns.
	RDFSlotFactor float64
}

// ProfilePostgres returns the Postgres-like profile: no statement
// limit, sampling shortcuts on very large unions.
func ProfilePostgres() *Profile {
	return &Profile{
		Name:            "postgres",
		SampleThreshold: 64,
		SampleSize:      16,
		CScanTuple:      1.0,
		CProbe:          1.4,
		CEmit:           0.6,
		CDedup:          0.9,
		CMat:            2.0,
		RDFSlotFactor:   float64(DefaultRDFSlots),
	}
}

// ProfileDB2 returns the DB2-like profile: exhaustive cost estimation
// but a hard statement-length limit; repeated scans are cheaper
// (buffer-locality work cited as [21] in the paper).
func ProfileDB2() *Profile {
	return &Profile{
		Name:              "db2",
		MaxStatementBytes: 2 * 1024 * 1024,
		CScanTuple:        0.8, // efficient repeated scans
		CProbe:            1.3,
		CEmit:             0.6,
		CDedup:            0.9,
		CMat:              1.8,
		RDFSlotFactor:     float64(DefaultRDFSlots),
	}
}

// StatementTooLongError mirrors DB2's SQL0101N failure mode.
type StatementTooLongError struct {
	Size  int
	Limit int
}

func (e *StatementTooLongError) Error() string {
	// Wording follows the server error quoted in Section 6.3.
	return "The statement is too long or too complex. Current SQL statement size is " +
		itoa(e.Size) + " (limit " + itoa(e.Limit) + ")"
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var buf [20]byte
	n := len(buf)
	for i > 0 {
		n--
		buf[n] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		n--
		buf[n] = '-'
	}
	return string(buf[n:])
}

// CheckStatementSize returns a StatementTooLongError when the profile
// rejects a statement of the given size.
func (p *Profile) CheckStatementSize(size int) error {
	if p.MaxStatementBytes > 0 && size > p.MaxStatementBytes {
		return &StatementTooLongError{Size: size, Limit: p.MaxStatementBytes}
	}
	return nil
}

// CardFeedback accumulates observed per-operator cardinalities keyed by
// (predicate, access path): the executor's joins and filters report how
// many output rows each input row actually produced, and the planner
// corrects its fanout estimates with the observed ratio. Safe for
// concurrent use (parallel union workers flush on Close).
type CardFeedback struct {
	mu  sync.Mutex
	fan map[feedbackKey]float64
}

type feedbackKey struct {
	pred   string
	access StepAccess
}

// NewCardFeedback returns an empty feedback accumulator; assign it to
// Profile.Feedback to enable adaptive estimation.
func NewCardFeedback() *CardFeedback {
	return &CardFeedback{fan: make(map[feedbackKey]float64)}
}

// Observe records that in input rows produced out output rows through
// the given access path. Observations blend by exponential moving
// average so drifting data ages out stale ratios.
func (f *CardFeedback) Observe(pred string, access StepAccess, in, out int64) {
	if f == nil || in <= 0 {
		return
	}
	ratio := float64(out) / float64(in)
	k := feedbackKey{pred, access}
	f.mu.Lock()
	if prev, ok := f.fan[k]; ok {
		f.fan[k] = 0.5*prev + 0.5*ratio
	} else {
		f.fan[k] = ratio
	}
	f.mu.Unlock()
}

// Fanout returns the observed output-per-input ratio for an access
// path, if any execution has reported one.
func (f *CardFeedback) Fanout(pred string, access StepAccess) (float64, bool) {
	if f == nil {
		return 0, false
	}
	f.mu.Lock()
	r, ok := f.fan[feedbackKey{pred, access}]
	f.mu.Unlock()
	return r, ok
}

// observeStep is the executor-side hook: nil-safe on both the profile
// and its feedback sink.
func (p *Profile) observeStep(pred string, access StepAccess, in, out int64) {
	if p == nil || p.Feedback == nil {
		return
	}
	p.Feedback.Observe(pred, access, in, out)
}
