package engine

import "repro/internal/query"

// SCQPlan orders the blocks of a semi-conjunctive query. Each step
// unions the alternative atoms of one block — the factorized evaluation
// that makes USCQs cheaper than expanded UCQs [33].
type SCQPlan struct {
	S       query.SCQ
	Order   []int
	EstCard float64
	EstCost float64
}

// PlanSCQ greedily orders blocks by estimated output cardinality, with
// a block's estimate being the sum over its alternative atoms.
func PlanSCQ(s query.SCQ, db *DB, prof *Profile) SCQPlan {
	st := db.Stats()
	n := len(s.Blocks)
	used := make([]bool, n)
	bound := map[string]bool{}
	plan := SCQPlan{S: s}
	card, cost := 1.0, 0.0
	for picked := 0; picked < n; picked++ {
		best := -1
		var bestOut, bestCost float64
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			var outSum, costSum float64
			for _, a := range s.Blocks[i] {
				step := estimateStep(a, bound, card, st, prof, db.Layout)
				outSum += step.EstOut
				costSum += step.EstCost
			}
			if best < 0 || outSum < bestOut {
				best, bestOut, bestCost = i, outSum, costSum
			}
		}
		used[best] = true
		for _, a := range s.Blocks[best] {
			for _, t := range a.Args {
				if t.IsVar() {
					bound[t.Name] = true
				}
			}
		}
		plan.Order = append(plan.Order, best)
		card = bestOut
		cost += bestCost
	}
	plan.EstCard = card
	plan.EstCost = cost
	return plan
}

// ExecSCQ evaluates a planned SCQ through the streaming pipeline: each
// block compiles to one join whose alternatives union per input row
// (duplicates preserved; callers apply Distinct).
func ExecSCQ(plan SCQPlan, db *DB) *Relation {
	return Drain(CompileSCQ(plan, db, nil))
}

// USCQPlan is a union of SCQ plans with DISTINCT.
type USCQPlan struct {
	U       query.USCQ
	Plans   []SCQPlan
	EstCard float64
	EstCost float64
}

// PlanUSCQ plans every SCQ disjunct.
func PlanUSCQ(u query.USCQ, db *DB, prof *Profile) USCQPlan {
	up := USCQPlan{U: u}
	for _, s := range u.Disjuncts {
		p := PlanSCQ(s, db, prof)
		up.Plans = append(up.Plans, p)
		up.EstCard += p.EstCard
		up.EstCost += p.EstCost
	}
	up.EstCost += up.EstCard * prof.CDedup
	return up
}

// ExecUSCQ evaluates a planned USCQ with DISTINCT through the
// streaming pipeline.
func ExecUSCQ(plan USCQPlan, db *DB) *Relation {
	if len(plan.Plans) == 0 {
		return &Relation{}
	}
	return Drain(CompileUSCQ(plan, db, nil, 1))
}

// JUSCQPlan materializes USCQ fragments and joins them.
type JUSCQPlan struct {
	J       query.JUSCQ
	Frags   []USCQPlan
	EstCard float64
	EstCost float64
}

// PlanJUSCQ mirrors PlanJUCQ for the USCQ dialect.
func PlanJUSCQ(j query.JUSCQ, db *DB, prof *Profile) JUSCQPlan {
	jp := JUSCQPlan{J: j}
	cost := 0.0
	for _, sub := range j.Subs {
		up := PlanUSCQ(sub, db, prof)
		jp.Frags = append(jp.Frags, up)
		cost += up.EstCost + up.EstCard*prof.CMat
	}
	card := 1.0
	for _, f := range jp.Frags {
		card *= maxf(f.EstCard, 1)
	}
	for _, f := range jp.Frags {
		if f.EstCard > 0 && f.EstCard < card {
			card = f.EstCard
		}
		cost += f.EstCard * prof.CProbe
	}
	cost += card * prof.CEmit
	jp.EstCard = card
	jp.EstCost = cost
	return jp
}

// ExecJUSCQ evaluates a planned JUSCQ through the streaming cover
// pipeline: factorized fragment pipelines feed the streaming hash join
// — no fragment Relation is materialized.
func ExecJUSCQ(plan JUSCQPlan, db *DB) *Relation {
	return Drain(CompileJUSCQ(plan, db, nil, 1))
}

// ExecJUSCQMaterialized is the pre-streaming cover path, kept as the
// differential-testing oracle and benchmark baseline: materialize each
// USCQ fragment, join smallest-first (plan estimates breaking ties),
// project the head with DISTINCT.
func ExecJUSCQMaterialized(plan JUSCQPlan, db *DB) *Relation {
	frags := make([]*Relation, len(plan.Frags))
	ests := make([]float64, len(plan.Frags))
	for i := range plan.Frags {
		frags[i] = ExecUSCQ(plan.Frags[i], db)
		ests[i] = plan.Frags[i].EstCard
	}
	return JoinAndProjectEst(frags, ests, plan.J.Head, db)
}

// EvaluateUSCQ plans and runs a USCQ; observed cardinalities flow into
// prof.Feedback when enabled.
func EvaluateUSCQ(u query.USCQ, db *DB, prof *Profile) Answer {
	return EvaluateUSCQParallel(u, db, prof, 1)
}

// EvaluateUSCQParallel plans and runs a USCQ with its union arms
// spread over worker goroutines through the parallel union operator
// (workers <= 1 keeps the sequential pipeline).
func EvaluateUSCQParallel(u query.USCQ, db *DB, prof *Profile, workers int) Answer {
	p := PlanUSCQ(u, db, prof)
	r := &Relation{}
	if len(p.Plans) > 0 {
		r = Drain(CompileUSCQ(p, db, prof, workers))
	}
	return Answer{Tuples: r.Decode(db.Dict), EstCost: p.EstCost}
}

// EvaluateJUSCQ plans and runs a JUSCQ.
func EvaluateJUSCQ(j query.JUSCQ, db *DB, prof *Profile) Answer {
	return EvaluateJUSCQParallel(j, db, prof, 1)
}

// EvaluateJUSCQParallel plans and runs a JUSCQ through the streaming
// cover pipeline: factorized fragment pipelines feed the streaming
// hash join, with the worker budget split between the join's parallel
// build drain and the fragments' parallel unions (workers <= 1 keeps
// the fully sequential pipeline).
func EvaluateJUSCQParallel(j query.JUSCQ, db *DB, prof *Profile, workers int) Answer {
	p := PlanJUSCQ(j, db, prof)
	return ExecJUSCQPlanned(p, db, prof, workers)
}

// ExecJUSCQPlanned runs an already planned JUSCQ through the streaming
// cover pipeline and decodes the result — the execution half of
// EvaluateJUSCQParallel, reusable when the plan is cached.
func ExecJUSCQPlanned(p JUSCQPlan, db *DB, prof *Profile, workers int) Answer {
	r := Drain(CompileJUSCQ(p, db, prof, workers))
	return Answer{Tuples: r.Decode(db.Dict), EstCost: p.EstCost}
}

// ExecUSCQPlanned runs an already planned USCQ through the streaming
// pipeline and decodes the result (the single-fragment cover fast
// path, reusable when the plan is cached).
func ExecUSCQPlanned(p USCQPlan, db *DB, prof *Profile, workers int) Answer {
	r := &Relation{}
	if len(p.Plans) > 0 {
		r = Drain(CompileUSCQ(p, db, prof, workers))
	}
	return Answer{Tuples: r.Decode(db.Dict), EstCost: p.EstCost}
}
