package engine

import (
	"sort"

	"repro/internal/query"
)

// SCQPlan orders the blocks of a semi-conjunctive query. Each step
// unions the alternative atoms of one block — the factorized evaluation
// that makes USCQs cheaper than expanded UCQs [33].
type SCQPlan struct {
	S       query.SCQ
	Order   []int
	EstCard float64
	EstCost float64
}

// PlanSCQ greedily orders blocks by estimated output cardinality, with
// a block's estimate being the sum over its alternative atoms.
func PlanSCQ(s query.SCQ, db *DB, prof *Profile) SCQPlan {
	st := db.Stats()
	n := len(s.Blocks)
	used := make([]bool, n)
	bound := map[string]bool{}
	plan := SCQPlan{S: s}
	card, cost := 1.0, 0.0
	for picked := 0; picked < n; picked++ {
		best := -1
		var bestOut, bestCost float64
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			var outSum, costSum float64
			for _, a := range s.Blocks[i] {
				step := estimateStep(a, bound, card, st, prof, db.Layout)
				outSum += step.EstOut
				costSum += step.EstCost
			}
			if best < 0 || outSum < bestOut {
				best, bestOut, bestCost = i, outSum, costSum
			}
		}
		used[best] = true
		for _, a := range s.Blocks[best] {
			for _, t := range a.Args {
				if t.IsVar() {
					bound[t.Name] = true
				}
			}
		}
		plan.Order = append(plan.Order, best)
		card = bestOut
		cost += bestCost
	}
	plan.EstCard = card
	plan.EstCost = cost
	return plan
}

// ExecSCQ evaluates a planned SCQ.
func ExecSCQ(plan SCQPlan, db *DB) *Relation {
	s := plan.S
	colOf := map[string]int{}
	var cols []string
	for _, block := range s.Blocks {
		for _, a := range block {
			for _, t := range a.Args {
				if t.IsVar() {
					if _, ok := colOf[t.Name]; !ok {
						colOf[t.Name] = len(cols)
						cols = append(cols, t.Name)
					}
				}
			}
		}
	}
	rows := [][]int64{make([]int64, len(cols))}
	bound := make([]bool, len(cols))
	for _, bi := range plan.Order {
		var next [][]int64
		for _, a := range s.Blocks[bi] {
			next = append(next, execStep(a, rows, colOf, bound, db)...)
		}
		for _, a := range s.Blocks[bi] {
			for _, t := range a.Args {
				if t.IsVar() {
					bound[colOf[t.Name]] = true
				}
			}
		}
		rows = next
		if len(rows) == 0 {
			break
		}
	}
	out := &Relation{Schema: headSchema(s.Head)}
	for _, row := range rows {
		pr := make([]int64, len(s.Head))
		ok := true
		for i, h := range s.Head {
			if h.Const {
				id, found := db.Dict.Lookup(h.Name)
				if !found {
					ok = false
					break
				}
				pr[i] = id
			} else {
				pr[i] = row[colOf[h.Name]]
			}
		}
		if ok {
			out.Rows = append(out.Rows, pr)
		}
	}
	return out
}

// USCQPlan is a union of SCQ plans with DISTINCT.
type USCQPlan struct {
	U       query.USCQ
	Plans   []SCQPlan
	EstCard float64
	EstCost float64
}

// PlanUSCQ plans every SCQ disjunct.
func PlanUSCQ(u query.USCQ, db *DB, prof *Profile) USCQPlan {
	up := USCQPlan{U: u}
	for _, s := range u.Disjuncts {
		p := PlanSCQ(s, db, prof)
		up.Plans = append(up.Plans, p)
		up.EstCard += p.EstCard
		up.EstCost += p.EstCost
	}
	up.EstCost += up.EstCard * prof.CDedup
	return up
}

// ExecUSCQ evaluates a planned USCQ with DISTINCT.
func ExecUSCQ(plan USCQPlan, db *DB) *Relation {
	var out *Relation
	for i := range plan.Plans {
		r := ExecSCQ(plan.Plans[i], db)
		if out == nil {
			out = &Relation{Schema: r.Schema}
		}
		out.Rows = append(out.Rows, r.Rows...)
	}
	if out == nil {
		out = &Relation{}
	}
	out.Distinct()
	return out
}

// JUSCQPlan materializes USCQ fragments and joins them.
type JUSCQPlan struct {
	J       query.JUSCQ
	Frags   []USCQPlan
	EstCard float64
	EstCost float64
}

// PlanJUSCQ mirrors PlanJUCQ for the USCQ dialect.
func PlanJUSCQ(j query.JUSCQ, db *DB, prof *Profile) JUSCQPlan {
	jp := JUSCQPlan{J: j}
	cost := 0.0
	for _, sub := range j.Subs {
		up := PlanUSCQ(sub, db, prof)
		jp.Frags = append(jp.Frags, up)
		cost += up.EstCost + up.EstCard*prof.CMat
	}
	card := 1.0
	for _, f := range jp.Frags {
		card *= maxf(f.EstCard, 1)
	}
	for _, f := range jp.Frags {
		if f.EstCard > 0 && f.EstCard < card {
			card = f.EstCard
		}
		cost += f.EstCard * prof.CProbe
	}
	cost += card * prof.CEmit
	jp.EstCard = card
	jp.EstCost = cost
	return jp
}

// ExecJUSCQ evaluates a planned JUSCQ.
func ExecJUSCQ(plan JUSCQPlan, db *DB) *Relation {
	frags := make([]*Relation, len(plan.Frags))
	for i := range plan.Frags {
		frags[i] = ExecUSCQ(plan.Frags[i], db)
	}
	sort.SliceStable(frags, func(i, j int) bool { return len(frags[i].Rows) < len(frags[j].Rows) })
	cur := frags[0]
	for _, f := range frags[1:] {
		cur = HashJoin(cur, f)
		if len(cur.Rows) == 0 {
			break
		}
	}
	return projectRelation(cur, plan.J.Head, db)
}

// EvaluateUSCQ plans and runs a USCQ.
func EvaluateUSCQ(u query.USCQ, db *DB, prof *Profile) Answer {
	p := PlanUSCQ(u, db, prof)
	r := ExecUSCQ(p, db)
	return Answer{Tuples: r.Decode(db.Dict), EstCost: p.EstCost}
}

// EvaluateJUSCQ plans and runs a JUSCQ.
func EvaluateJUSCQ(j query.JUSCQ, db *DB, prof *Profile) Answer {
	p := PlanJUSCQ(j, db, prof)
	r := ExecJUSCQ(p, db)
	return Answer{Tuples: r.Decode(db.Dict), EstCost: p.EstCost}
}
