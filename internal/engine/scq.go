package engine

import "repro/internal/query"

// SCQPlan orders the blocks of a semi-conjunctive query. Each step
// unions the alternative atoms of one block — the factorized evaluation
// that makes USCQs cheaper than expanded UCQs [33].
type SCQPlan struct {
	S       query.SCQ
	Order   []int
	EstCard float64
	EstCost float64
}

// PlanSCQ greedily orders blocks by estimated output cardinality, with
// a block's estimate being the sum over its alternative atoms.
func PlanSCQ(s query.SCQ, db *DB, prof *Profile) SCQPlan {
	st := db.Stats()
	n := len(s.Blocks)
	used := make([]bool, n)
	bound := map[string]bool{}
	plan := SCQPlan{S: s}
	card, cost := 1.0, 0.0
	for picked := 0; picked < n; picked++ {
		best := -1
		var bestOut, bestCost float64
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			var outSum, costSum float64
			for _, a := range s.Blocks[i] {
				step := estimateStep(a, bound, card, st, prof, db.Layout)
				outSum += step.EstOut
				costSum += step.EstCost
			}
			if best < 0 || outSum < bestOut {
				best, bestOut, bestCost = i, outSum, costSum
			}
		}
		used[best] = true
		for _, a := range s.Blocks[best] {
			for _, t := range a.Args {
				if t.IsVar() {
					bound[t.Name] = true
				}
			}
		}
		plan.Order = append(plan.Order, best)
		card = bestOut
		cost += bestCost
	}
	plan.EstCard = card
	plan.EstCost = cost
	return plan
}

// ExecSCQ evaluates a planned SCQ through the streaming pipeline: each
// block compiles to one join whose alternatives union per input row
// (duplicates preserved; callers apply Distinct).
func ExecSCQ(plan SCQPlan, db *DB) *Relation {
	return Drain(CompileSCQ(plan, db, nil))
}

// USCQPlan is a union of SCQ plans with DISTINCT.
type USCQPlan struct {
	U       query.USCQ
	Plans   []SCQPlan
	EstCard float64
	EstCost float64
}

// PlanUSCQ plans every SCQ disjunct.
func PlanUSCQ(u query.USCQ, db *DB, prof *Profile) USCQPlan {
	up := USCQPlan{U: u}
	for _, s := range u.Disjuncts {
		p := PlanSCQ(s, db, prof)
		up.Plans = append(up.Plans, p)
		up.EstCard += p.EstCard
		up.EstCost += p.EstCost
	}
	up.EstCost += up.EstCard * prof.CDedup
	return up
}

// ExecUSCQ evaluates a planned USCQ with DISTINCT through the
// streaming pipeline.
func ExecUSCQ(plan USCQPlan, db *DB) *Relation {
	if len(plan.Plans) == 0 {
		return &Relation{}
	}
	return Drain(CompileUSCQ(plan, db, nil, 1))
}

// JUSCQPlan materializes USCQ fragments and joins them.
type JUSCQPlan struct {
	J       query.JUSCQ
	Frags   []USCQPlan
	EstCard float64
	EstCost float64
}

// PlanJUSCQ mirrors PlanJUCQ for the USCQ dialect.
func PlanJUSCQ(j query.JUSCQ, db *DB, prof *Profile) JUSCQPlan {
	jp := JUSCQPlan{J: j}
	cost := 0.0
	for _, sub := range j.Subs {
		up := PlanUSCQ(sub, db, prof)
		jp.Frags = append(jp.Frags, up)
		cost += up.EstCost + up.EstCard*prof.CMat
	}
	card := 1.0
	for _, f := range jp.Frags {
		card *= maxf(f.EstCard, 1)
	}
	for _, f := range jp.Frags {
		if f.EstCard > 0 && f.EstCard < card {
			card = f.EstCard
		}
		cost += f.EstCard * prof.CProbe
	}
	cost += card * prof.CEmit
	jp.EstCard = card
	jp.EstCost = cost
	return jp
}

// ExecJUSCQ evaluates a planned JUSCQ: materialize each USCQ fragment,
// join smallest-first, project the head with DISTINCT.
func ExecJUSCQ(plan JUSCQPlan, db *DB) *Relation {
	frags := make([]*Relation, len(plan.Frags))
	for i := range plan.Frags {
		frags[i] = ExecUSCQ(plan.Frags[i], db)
	}
	return JoinAndProject(frags, plan.J.Head, db)
}

// EvaluateUSCQ plans and runs a USCQ; observed cardinalities flow into
// prof.Feedback when enabled.
func EvaluateUSCQ(u query.USCQ, db *DB, prof *Profile) Answer {
	return EvaluateUSCQParallel(u, db, prof, 1)
}

// EvaluateUSCQParallel plans and runs a USCQ with its union arms
// spread over worker goroutines through the parallel union operator
// (workers <= 1 keeps the sequential pipeline).
func EvaluateUSCQParallel(u query.USCQ, db *DB, prof *Profile, workers int) Answer {
	p := PlanUSCQ(u, db, prof)
	r := &Relation{}
	if len(p.Plans) > 0 {
		r = Drain(CompileUSCQ(p, db, prof, workers))
	}
	return Answer{Tuples: r.Decode(db.Dict), EstCost: p.EstCost}
}

// EvaluateJUSCQ plans and runs a JUSCQ.
func EvaluateJUSCQ(j query.JUSCQ, db *DB, prof *Profile) Answer {
	return EvaluateJUSCQParallel(j, db, prof, 1)
}

// EvaluateJUSCQParallel plans and runs a JUSCQ, evaluating each
// fragment's disjuncts over worker goroutines (workers <= 1 keeps the
// sequential pipeline).
func EvaluateJUSCQParallel(j query.JUSCQ, db *DB, prof *Profile, workers int) Answer {
	p := PlanJUSCQ(j, db, prof)
	frags := make([]*Relation, len(p.Frags))
	for i := range p.Frags {
		fr := &Relation{}
		if len(p.Frags[i].Plans) > 0 {
			fr = Drain(CompileUSCQ(p.Frags[i], db, prof, workers))
		}
		frags[i] = fr
	}
	r := JoinAndProject(frags, p.J.Head, db)
	return Answer{Tuples: r.Decode(db.Dict), EstCost: p.EstCost}
}
