package engine

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dllite"
	"repro/internal/query"
)

func TestSnapshotRoundTrip(t *testing.T) {
	db := loadDB(t, LayoutSimple, sampleABox)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf, LayoutFromSnapshot)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumFacts() != db.NumFacts() {
		t.Fatalf("facts: %d vs %d", back.NumFacts(), db.NumFacts())
	}
	if back.Layout != LayoutSimple {
		t.Errorf("layout = %v", back.Layout)
	}
	q := query.MustParseCQ("q(x) <- PhDStudent(x), supervisedBy(x, y), Researcher(y)")
	a1 := EvaluateCQ(q, db, ProfilePostgres())
	a2 := EvaluateCQ(q, back, ProfilePostgres())
	if len(a1.Tuples) != len(a2.Tuples) || a1.Tuples[0][0] != a2.Tuples[0][0] {
		t.Fatalf("answers differ: %v vs %v", a1.Tuples, a2.Tuples)
	}
}

func TestSnapshotCrossLayout(t *testing.T) {
	db := loadDB(t, LayoutSimple, sampleABox)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	rdf, err := Load(&buf, LayoutRDF)
	if err != nil {
		t.Fatal(err)
	}
	if rdf.Layout != LayoutRDF {
		t.Fatalf("layout = %v", rdf.Layout)
	}
	q := query.MustParseCQ("q(x, y) <- supervisedBy(x, y)")
	if got := EvaluateCQ(q, rdf, ProfileDB2()); len(got.Tuples) != 2 {
		t.Fatalf("RDF-layout reload answers = %v", got.Tuples)
	}
}

func TestSnapshotPreservesDictionaryIDs(t *testing.T) {
	db := loadDB(t, LayoutSimple, sampleABox)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf, LayoutFromSnapshot)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Damian", "Ioana", "Francois"} {
		a, okA := db.Dict.Lookup(name)
		b, okB := back.Dict.Lookup(name)
		if !okA || !okB || a != b {
			t.Errorf("dictionary id for %s: %d/%v vs %d/%v", name, a, okA, b, okB)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a snapshot"), LayoutFromSnapshot); err == nil {
		t.Fatal("garbage must be rejected")
	}
}

func TestSnapshotEmptyDB(t *testing.T) {
	db := NewDB(LayoutSimple)
	db.LoadABox(dllite.NewABox())
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf, LayoutFromSnapshot)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumFacts() != 0 {
		t.Fatalf("facts = %d", back.NumFacts())
	}
}
