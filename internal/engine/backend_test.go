package engine

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/plan"
	"repro/internal/query"
)

// backendUCQ is a small multi-arm reformulation over the sample data.
func backendUCQ(t *testing.T) query.UCQ {
	t.Helper()
	return query.UCQ{Name: "u", Disjuncts: []query.CQ{
		query.MustParseCQ("q(x) <- PhDStudent(x), worksWith(y, x)"),
		query.MustParseCQ("q(x) <- supervisedBy(x, y), Researcher(y)"),
	}}
}

// TestBackendMatchesPlannedExec: compiling through the plan IR returns
// exactly the tuples and estimate of the direct planned execution.
func TestBackendMatchesPlannedExec(t *testing.T) {
	db := loadDB(t, LayoutSimple, sampleABox)
	prof := ProfilePostgres()
	b := NewBackend(db, prof)
	u := backendUCQ(t)

	exec, err := b.Compile(plan.FromUCQ(u))
	if err != nil {
		t.Fatal(err)
	}
	rr, err := exec.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	p := PlanUCQ(u, db, prof)
	want := ExecUCQPlanned(p, db, prof, 1)
	if !reflect.DeepEqual(rr.Tuples, want.Tuples) {
		t.Errorf("tuples = %v, want %v", rr.Tuples, want.Tuples)
	}
	if est := exec.Estimate(); est.Cost != p.EstCost || est.Card != p.EstCard {
		t.Errorf("estimate = %+v, want cost %.1f card %.1f", est, p.EstCost, p.EstCard)
	}
}

// TestBackendJUCQMatchesPlannedExec: the two-fragment cover shape runs
// through the hash join and still matches the direct execution.
func TestBackendJUCQMatchesPlannedExec(t *testing.T) {
	db := loadDB(t, LayoutSimple, sampleABox)
	prof := ProfilePostgres()
	b := NewBackend(db, prof)
	j := query.JUCQ{Name: "j", Head: []query.Term{query.Var("x")}, Subs: []query.UCQ{
		{Name: "f1", Disjuncts: []query.CQ{query.MustParseCQ("f1(x) <- PhDStudent(x)")}},
		{Name: "f2", Disjuncts: []query.CQ{
			query.MustParseCQ("f2(x) <- worksWith(y, x)"),
			query.MustParseCQ("f2(x) <- supervisedBy(x, y)"),
		}},
	}}
	exec, err := b.Compile(plan.FromJUCQ(j))
	if err != nil {
		t.Fatal(err)
	}
	rr, err := exec.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	p := PlanJUCQ(j, db, prof)
	want := ExecJUCQPlanned(p, db, prof, 1)
	if !reflect.DeepEqual(rr.Tuples, want.Tuples) {
		t.Errorf("tuples = %v, want %v", rr.Tuples, want.Tuples)
	}
	if est := exec.Estimate(); est.Cost != p.EstCost {
		t.Errorf("estimate cost = %.1f, want %.1f", est.Cost, p.EstCost)
	}
}

// TestBackendExplainActuals: after a run, the explain tree carries the
// observed row counters — the root's actual equals the answer count,
// every access leaf is annotated, and estimates come from the plan.
func TestBackendExplainActuals(t *testing.T) {
	db := loadDB(t, LayoutSimple, sampleABox)
	prof := ProfilePostgres()
	b := NewBackend(db, prof)
	u := backendUCQ(t)
	exec, err := b.Compile(plan.FromUCQ(u))
	if err != nil {
		t.Fatal(err)
	}
	rr, err := exec.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	ex := rr.Explain
	if ex == nil || ex.Root == nil {
		t.Fatal("no explain")
	}
	if ex.Backend != "native" {
		t.Errorf("backend = %s", ex.Backend)
	}
	if ex.Root.ActualRows != int64(len(rr.Tuples)) {
		t.Errorf("root actual = %d, want %d", ex.Root.ActualRows, len(rr.Tuples))
	}
	if ex.Root.EstRows < 0 || ex.EstCost <= 0 {
		t.Errorf("root estimate missing: est=%.1f cost=%.1f", ex.Root.EstRows, ex.EstCost)
	}
	var accesses, annotated int
	var walk func(*plan.ExplainNode)
	walk = func(e *plan.ExplainNode) {
		if e.Op == "access" {
			accesses++
			if e.ActualRows >= 0 {
				annotated++
			}
			if e.EstRows < 0 {
				t.Errorf("access %q has no estimate", e.Detail)
			}
		}
		for _, c := range e.Children {
			walk(c)
		}
	}
	walk(ex.Root)
	if accesses == 0 || annotated != accesses {
		t.Errorf("%d/%d access nodes annotated with actuals", annotated, accesses)
	}
}

// TestBackendUSCQ: the factorized dialect compiles and matches its
// planned execution.
func TestBackendUSCQ(t *testing.T) {
	db := loadDB(t, LayoutSimple, sampleABox)
	prof := ProfilePostgres()
	b := NewBackend(db, prof)
	u := query.FactorizeUCQ(backendUCQ(t))
	exec, err := b.Compile(plan.FromUSCQ(u))
	if err != nil {
		t.Fatal(err)
	}
	rr, err := exec.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	want := ExecUSCQPlanned(PlanUSCQ(u, db, prof), db, prof, 1)
	if !reflect.DeepEqual(rr.Tuples, want.Tuples) {
		t.Errorf("tuples = %v, want %v", rr.Tuples, want.Tuples)
	}
}

// TestBackendEstimateMalformed: a malformed tree estimates to +Inf and
// fails Compile with an error.
func TestBackendEstimateMalformed(t *testing.T) {
	db := loadDB(t, LayoutSimple, sampleABox)
	b := NewBackend(db, ProfilePostgres())
	bad := &plan.Node{Op: plan.OpUnion}
	if _, err := b.Compile(bad); err == nil {
		t.Error("Compile accepted a malformed tree")
	}
	if est := b.Estimate(bad); !math.IsInf(est.Cost, 1) {
		t.Errorf("estimate of malformed tree = %+v, want +Inf cost", est)
	}
}
