package engine

// Layout-dispatched access paths. The executor only goes through these,
// so the same plans run on both layouts; the RDF layout pays its
// per-slot probing cost inside rdfStore.
//
// Every path guards the table lookup explicitly: a query over a
// predicate absent from the data must return empty, not panic. (The
// probe paths previously leaned on the tables' nil-receiver method
// guards; the guards now live here so the invariant is visible at the
// dispatch layer and survives table-type refactors.)

// ConceptMembers returns all members of a concept.
func (db *DB) ConceptMembers(name string) []int64 {
	if db.Layout == LayoutRDF {
		return db.rdf.conceptMembers(name)
	}
	t := db.concepts[name]
	if t == nil {
		return nil
	}
	return t.IDs
}

// ConceptContains probes concept membership.
func (db *DB) ConceptContains(name string, id int64) bool {
	if db.Layout == LayoutRDF {
		return db.rdf.conceptContains(name, id)
	}
	t := db.concepts[name]
	if t == nil {
		return false
	}
	return t.Contains(id)
}

// RoleObjects returns the objects reachable from subject s.
func (db *DB) RoleObjects(name string, s int64) []int64 {
	if db.Layout == LayoutRDF {
		return db.rdf.roleObjects(name, s)
	}
	t := db.roles[name]
	if t == nil {
		return nil
	}
	return t.Objects(s)
}

// RoleSubjects returns the subjects reaching object o.
func (db *DB) RoleSubjects(name string, o int64) []int64 {
	if db.Layout == LayoutRDF {
		return db.rdf.roleSubjects(name, o)
	}
	t := db.roles[name]
	if t == nil {
		return nil
	}
	return t.Subjects(o)
}

// RoleContains probes pair membership.
func (db *DB) RoleContains(name string, s, o int64) bool {
	if db.Layout == LayoutRDF {
		return db.rdf.roleContains(name, s, o)
	}
	t := db.roles[name]
	if t == nil {
		return false
	}
	return t.ContainsPair(s, o)
}

// RolePairs visits every pair of the role (full scan).
func (db *DB) RolePairs(name string, visit func(s, o int64)) {
	if db.Layout == LayoutRDF {
		db.rdf.rolePairs(name, visit)
		return
	}
	t := db.roles[name]
	if t == nil {
		return
	}
	for _, p := range t.Pairs {
		visit(p[0], p[1])
	}
}
