package engine

// rdfStore is the DB2RDF-style entity-oriented layout [9]: a direct
// primary hash table (DPH) with one row per subject and NumSlots
// hashed predicate columns, plus the reverse table (RPH) keyed by
// object. Concept memberships are stored under the reserved rdf:type
// predicate, whose object is the (dictionary-encoded) concept name.
//
// The layout reproduces the two effects the paper measures on DB2's RDF
// store: (i) accessing one predicate requires inspecting every hashed
// column (long disjunctive SQL, slower scans — the executor really does
// probe the slots), and (ii) the SQL translation of a reformulated
// query explodes in size, tripping DB2's statement-length limit
// (enforced from the generated SQL by package sqlgen + the profile).
//
// The paper notes DB2RDF assigns predicates to columns with a linear
// programming solver; we use first-fit hashing with per-row overflow,
// which preserves the measured behaviour (Section "Out of scope" of
// DESIGN.md).
type rdfStore struct {
	// NumSlots is the number of hashed predicate columns per row.
	NumSlots int

	dph map[int64]*rdfRow // subject → row
	rph map[int64]*rdfRow // object  → row

	preds    []string         // predicate id → name (role names + typePred)
	predID   map[string]int32 // name → predicate id
	typePred int32

	conceptID map[string]int64 // concept name → object id used under rdf:type
}

type rdfSlot struct {
	pred int32 // -1 when empty
	vals []int64
}

type rdfRow struct {
	slots    []rdfSlot
	overflow []rdfSlot // predicates that did not fit in the hashed columns
}

// DefaultRDFSlots mirrors DB2RDF's modest column budget.
const DefaultRDFSlots = 12

func buildRDFStore(db *DB) *rdfStore {
	st := &rdfStore{
		NumSlots:  DefaultRDFSlots,
		dph:       make(map[int64]*rdfRow),
		rph:       make(map[int64]*rdfRow),
		predID:    make(map[string]int32),
		conceptID: make(map[string]int64),
	}
	intern := func(name string) int32 {
		if id, ok := st.predID[name]; ok {
			return id
		}
		id := int32(len(st.preds))
		st.predID[name] = id
		st.preds = append(st.preds, name)
		return id
	}
	st.typePred = intern("rdf:type")
	for _, role := range db.RoleNames() {
		p := intern(role)
		for _, pair := range db.roles[role].Pairs {
			st.insert(st.dph, pair[0], p, pair[1])
			st.insert(st.rph, pair[1], p, pair[0])
		}
	}
	for _, concept := range db.ConceptNames() {
		cid := db.Dict.Encode("class:" + concept)
		st.conceptID[concept] = cid
		for _, s := range db.concepts[concept].IDs {
			st.insert(st.dph, s, st.typePred, cid)
			st.insert(st.rph, cid, st.typePred, s)
		}
	}
	return st
}

func (st *rdfStore) insert(tab map[int64]*rdfRow, key int64, pred int32, val int64) {
	row := tab[key]
	if row == nil {
		row = &rdfRow{slots: make([]rdfSlot, st.NumSlots)}
		for i := range row.slots {
			row.slots[i].pred = -1
		}
		tab[key] = row
	}
	// First-fit from the hash position (linear probing).
	h := int(uint32(pred)) % st.NumSlots
	for i := 0; i < st.NumSlots; i++ {
		s := &row.slots[(h+i)%st.NumSlots]
		if s.pred == pred {
			s.vals = append(s.vals, val)
			return
		}
		if s.pred == -1 {
			s.pred = pred
			s.vals = []int64{val}
			return
		}
	}
	for i := range row.overflow {
		if row.overflow[i].pred == pred {
			row.overflow[i].vals = append(row.overflow[i].vals, val)
			return
		}
	}
	row.overflow = append(row.overflow, rdfSlot{pred: pred, vals: []int64{val}})
}

// probe scans a row's hashed columns (and overflow) for pred — the
// column-disjunction DB2RDF SQL performs. It deliberately inspects
// every slot rather than hashing directly, matching the generated SQL's
// CASE over all columns.
func (row *rdfRow) probe(pred int32) []int64 {
	if row == nil {
		return nil
	}
	for i := range row.slots {
		if row.slots[i].pred == pred {
			return row.slots[i].vals
		}
	}
	for i := range row.overflow {
		if row.overflow[i].pred == pred {
			return row.overflow[i].vals
		}
	}
	return nil
}

// --- access paths used by the executor on LayoutRDF ---

func (st *rdfStore) roleObjects(role string, s int64) []int64 {
	p, ok := st.predID[role]
	if !ok {
		return nil
	}
	return st.dph[s].probe(p)
}

func (st *rdfStore) roleSubjects(role string, o int64) []int64 {
	p, ok := st.predID[role]
	if !ok {
		return nil
	}
	return st.rph[o].probe(p)
}

func (st *rdfStore) roleContains(role string, s, o int64) bool {
	for _, v := range st.roleObjects(role, s) {
		if v == o {
			return true
		}
	}
	return false
}

// rolePairs performs the full-table scan: every DPH row, every column.
func (st *rdfStore) rolePairs(role string, visit func(s, o int64)) {
	p, ok := st.predID[role]
	if !ok {
		return
	}
	for s, row := range st.dph {
		for _, v := range row.probe(p) {
			visit(s, v)
		}
	}
}

func (st *rdfStore) conceptMembers(concept string) []int64 {
	cid, ok := st.conceptID[concept]
	if !ok {
		return nil
	}
	return st.rph[cid].probe(st.typePred)
}

func (st *rdfStore) conceptContains(concept string, id int64) bool {
	cid, ok := st.conceptID[concept]
	if !ok {
		return false
	}
	for _, v := range st.dph[id].probe(st.typePred) {
		if v == cid {
			return true
		}
	}
	return false
}
