package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// The shuffle exchange: the repartition operator of classic
// distributed query processing, scoped to the shard backend's
// in-process shards. NewExchange takes one source pipeline per shard
// and returns one endpoint operator per shard; every row a source
// produces is routed to the endpoint of the shard owning
// ShardOf(row[key]), so the operator consuming endpoint i sees exactly
// the rows whose key hashes to shard i — a downstream join on that key
// runs shard-local with no broadcast.
//
// Rows travel in batches over bounded channels (exchangeChanCap deep),
// so a slow consumer backpressures the producers instead of buffering
// the whole stream. Producers come from the shared clampWorkers
// budget; each drains whole source pipelines, staging rows into
// per-destination batches and shipping them as they fill.
//
// Lifecycle: the hub starts lazily on the first endpoint Open and is
// torn down cooperatively. An endpoint that closes early discards its
// channel (producers drop batches for it instead of blocking); when
// every endpoint has discarded, the hub's stop channel halts the
// producers mid-stream. Endpoint Close then waits for its own source's
// producer to finish before closing the source — the close is
// sequenced after the producer's deferred Close, never concurrent with
// it.

// exchangeChanCap bounds each destination channel in batches. Small on
// purpose: the exchange exists to stream, not to buffer a
// materialized partition.
const exchangeChanCap = 4

// Exchange is the shared hub behind the per-shard endpoint operators.
// Exported for the shard backend, which needs the rows-moved counters
// for EXPLAIN after the run.
type Exchange struct {
	sources []Operator
	keyCol  int
	key     string
	workers int
	n       int
	width   int

	chans   []chan *Batch   // hub -> endpoint i
	dstop   []chan struct{} // closed when endpoint i discards
	dOnce   []sync.Once
	srcDone []chan struct{} // closed when source i's producer is done
	stop    chan struct{}   // closed when every endpoint discarded
	ndisc   atomic.Int32
	start   sync.Once
	started atomic.Bool
	stopped sync.Once
	wg      sync.WaitGroup
	pool    sync.Pool

	sent []atomic.Int64 // rows source i routed to a different shard
	recv []atomic.Int64 // rows delivered to endpoint i
}

// NewExchange builds a hub over one source pipeline per shard and
// returns it with the per-shard endpoints. key must be a column of the
// shared source schema; workers bounds the producer pool (clamped to
// GOMAXPROCS and the shard count).
func NewExchange(sources []Operator, key string, workers int) (*Exchange, []Operator, error) {
	n := len(sources)
	if n < 2 {
		return nil, nil, fmt.Errorf("engine: exchange needs at least 2 shards, have %d", n)
	}
	schema := sources[0].Schema()
	keyCol := -1
	for i, v := range schema {
		if v == key {
			keyCol = i
			break
		}
	}
	if keyCol < 0 {
		return nil, nil, fmt.Errorf("engine: exchange key %q not in source schema %v", key, schema)
	}
	h := &Exchange{
		sources: sources,
		keyCol:  keyCol,
		key:     key,
		workers: workers,
		n:       n,
		width:   len(schema),
		chans:   make([]chan *Batch, n),
		dstop:   make([]chan struct{}, n),
		dOnce:   make([]sync.Once, n),
		srcDone: make([]chan struct{}, n),
		stop:    make(chan struct{}),
		sent:    make([]atomic.Int64, n),
		recv:    make([]atomic.Int64, n),
	}
	for i := 0; i < n; i++ {
		h.chans[i] = make(chan *Batch, exchangeChanCap)
		h.dstop[i] = make(chan struct{})
		h.srcDone[i] = make(chan struct{})
	}
	h.pool.New = func() any { return NewBatch(h.width) }
	eps := make([]Operator, n)
	for i := 0; i < n; i++ {
		eps[i] = &exchangeOp{
			opBase: opBase{name: "exchange", schema: schema},
			hub:    h,
			child:  sources[i],
			idx:    i,
		}
	}
	return h, eps, nil
}

// Key returns the repartition column name.
func (h *Exchange) Key() string { return h.key }

// SentFrom returns how many rows source i routed to a shard other than
// its own.
func (h *Exchange) SentFrom(i int) int64 { return h.sent[i].Load() }

// DeliveredTo returns how many rows were delivered to endpoint i
// (local and remote).
func (h *Exchange) DeliveredTo(i int) int64 { return h.recv[i].Load() }

// RowsMoved returns the total rows that crossed shards.
func (h *Exchange) RowsMoved() int64 {
	var total int64
	for i := range h.sent {
		total += h.sent[i].Load()
	}
	return total
}

// run starts the producer pool exactly once (the first endpoint Open).
func (h *Exchange) run() {
	h.start.Do(func() {
		h.started.Store(true)
		jobs := make(chan int, h.n)
		for i := 0; i < h.n; i++ {
			jobs <- i
		}
		close(jobs)
		for w := 0; w < clampWorkers(h.workers, h.n); w++ {
			h.wg.Add(1)
			go func() {
				defer h.wg.Done()
				for i := range jobs {
					if !h.halted() {
						h.drainSource(i)
					}
					close(h.srcDone[i])
				}
			}()
		}
		go func() {
			h.wg.Wait()
			for _, ch := range h.chans {
				close(ch)
			}
		}()
	})
}

func (h *Exchange) halted() bool {
	select {
	case <-h.stop:
		return true
	default:
		return false
	}
}

// discard marks endpoint d as no longer consuming: producers drop its
// batches, and once every endpoint has discarded the whole hub halts.
func (h *Exchange) discard(d int) {
	h.dOnce[d].Do(func() {
		close(h.dstop[d])
		if int(h.ndisc.Add(1)) == h.n {
			h.stopped.Do(func() { close(h.stop) })
		}
	})
}

// drainSource runs source idx to completion, routing its rows into
// per-destination staging batches and shipping each as it fills.
func (h *Exchange) drainSource(idx int) {
	in := h.sources[idx]
	in.Open()
	defer in.Close()
	staging := make([]*Batch, h.n)
	b := NewBatch(h.width)
	for in.Next(b) {
		for r := 0; r < b.Len(); r++ {
			row := b.Row(r)
			d := ShardOf(row[h.keyCol], h.n)
			if d != idx {
				h.sent[idx].Add(1)
			}
			st := staging[d]
			if st == nil {
				st = h.pool.Get().(*Batch)
				st.Reset()
				staging[d] = st
			}
			st.Append(row)
			if st.Full() {
				h.ship(d, st)
				staging[d] = nil
			}
		}
		if h.halted() {
			break
		}
	}
	for d, st := range staging {
		if st != nil && st.Len() > 0 {
			h.ship(d, st)
		}
	}
}

// ship hands a staged batch to destination d, or recycles it if d has
// discarded.
func (h *Exchange) ship(d int, b *Batch) {
	rows := int64(b.Len()) // before the send: the consumer owns b after
	select {
	case h.chans[d] <- b:
		h.recv[d].Add(rows)
	case <-h.dstop[d]:
		h.pool.Put(b)
	}
}

// exchangeOp is the per-shard endpoint: a plain single-consumer
// operator whose stream is its shard's partition of every source's
// output.
type exchangeOp struct {
	opBase
	hub   *Exchange
	child Operator // this endpoint's shard-local source (hub opens it)
	idx   int
}

func (o *exchangeOp) Open() {
	o.resetStats()
	o.hub.run()
}

func (o *exchangeOp) Next(out *Batch) bool {
	b, ok := <-o.hub.chans[o.idx]
	if !ok {
		return false
	}
	out.CopyFrom(b)
	b.Reset()
	o.hub.pool.Put(b)
	return o.yield(out)
}

func (o *exchangeOp) Close() {
	if !o.closeOnce() {
		return
	}
	o.hub.discard(o.idx)
	// Wait for this endpoint's source producer: its deferred Close (or
	// never-opened skip) happens before srcDone closes, so the close
	// below is sequenced after it — a guarded no-op, never a race. A
	// hub that never started (the tree was torn down without Open —
	// every endpoint Open precedes any endpoint Close otherwise) has no
	// producer to wait for.
	if o.hub.started.Load() {
		<-o.hub.srcDone[o.idx]
	}
	o.child.Close()
}

func (o *exchangeOp) Children() []Operator { return []Operator{o.child} }
