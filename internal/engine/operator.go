package engine

// Streaming batched operator model. Instead of materializing every
// intermediate result as [][]int64, plans compile (compile.go) into a
// tree of Operators exchanging fixed-capacity batches of int64 rows:
//
//	Open()          prepare state (recursively opens children)
//	Next(*Batch)    fill the caller's batch; false when exhausted
//	Close()         release state, flush cardinality feedback
//
// The operators are the classic relational set specialized to the
// dictionary-encoded storage: source scans (scanOp, singletonOp), an
// index-nested-loop join driven by the plan's access paths (joinOp),
// a fully-bound filter (filterOp), head projection (projectOp),
// streaming DISTINCT over a 64-bit hash set (distinctOp), and
// sequential / parallel union (unionOp, parallel.go's unionParallelOp).
// Every operator counts the batches and rows it emits; per-operator
// cardinalities feed the planner's cost model through
// Profile.Feedback (profile.go).

import (
	"fmt"
	"strings"
)

// DefaultBatchSize is the row capacity of one exchanged batch.
const DefaultBatchSize = 1024

// Batch is a fixed-capacity, row-major buffer of int64 rows flowing
// between operators. Width zero (boolean pipelines) is supported: rows
// are counted even though they carry no columns.
type Batch struct {
	width int
	n     int
	data  []int64
}

// NewBatch allocates a batch for rows of the given width. Storage
// grows lazily up to the row capacity, so short streams (the common
// case across hundreds of reformulation arms) stay cheap.
func NewBatch(width int) *Batch {
	return &Batch{width: width}
}

// Width returns the number of columns per row.
func (b *Batch) Width() int { return b.width }

// Len returns the number of rows currently held.
func (b *Batch) Len() int { return b.n }

// Full reports whether the batch reached its row capacity.
func (b *Batch) Full() bool { return b.n >= DefaultBatchSize }

// Reset empties the batch, keeping its storage.
func (b *Batch) Reset() {
	b.n = 0
	b.data = b.data[:0]
}

// Row returns the i-th row, aliasing the batch's storage.
func (b *Batch) Row(i int) []int64 { return b.data[i*b.width : (i+1)*b.width] }

// Append copies row into the batch and returns the in-batch slice so
// callers can overwrite individual columns in place.
func (b *Batch) Append(row []int64) []int64 {
	b.data = append(b.data, row...)
	b.n++
	return b.data[len(b.data)-b.width:]
}

// CopyFrom replaces the batch's contents with src's.
func (b *Batch) CopyFrom(src *Batch) {
	b.width = src.width
	b.n = src.n
	b.data = append(b.data[:0], src.data...)
}

// OpStats reports what one operator produced during execution.
type OpStats struct {
	Op      string
	Batches int64
	Rows    int64
}

// Operator is the streaming execution interface. Next fills the
// caller's batch (resetting it first) and returns false once the
// stream is exhausted; batches need not be full. Operators are
// single-consumer and not safe for concurrent Next calls; the parallel
// union runs each child on exactly one worker.
type Operator interface {
	// Schema names the columns of emitted batches; emitted batches have
	// width len(Schema()).
	Schema() []string
	Open()
	Next(out *Batch) bool
	Close()
	Stats() OpStats
	Children() []Operator
}

// opBase carries the shared schema, emit counters, and the open/closed
// lifecycle bit behind closeOnce.
type opBase struct {
	name    string
	schema  []string
	batches int64
	rows    int64
	opened  bool
}

func (o *opBase) Schema() []string { return o.schema }

// resetStats zeroes the emit counters and arms closeOnce; every
// operator calls it from Open so a reused (compiled-once) tree reports
// per-execution cardinalities, keeping Stats, ExplainPipeline, and the
// feedback flushed at Close scoped to one execution.
func (o *opBase) resetStats() {
	o.batches, o.rows = 0, 0
	o.opened = true
}

// closeOnce reports whether this Close call balances a prior Open,
// flipping the operator to closed. Every non-trivial Close guards its
// side effects (child closes, feedback flushes) with it, making double
// Close and Close-without-Open safe no-ops — the idempotency half of
// the Operator contract, machine-checked by internal/lint's opcontract
// analyzer. Operators are single-consumer, so no locking is needed;
// concurrent closers (parallel union workers vs the consumer) are
// ordered by the worker WaitGroup.
func (o *opBase) closeOnce() bool {
	if !o.opened {
		return false
	}
	o.opened = false
	return true
}

func (o *opBase) Stats() OpStats {
	return OpStats{Op: o.name, Batches: o.batches, Rows: o.rows}
}

// yield counts out's rows and reports whether it is non-empty.
func (o *opBase) yield(out *Batch) bool {
	if out.Len() == 0 {
		return false
	}
	o.batches++
	o.rows += int64(out.Len())
	return true
}

// --- hashing (shared by distinctOp, Relation.Distinct, HashJoin) ---

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// mixing function, so dedup needs no string keys.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashRow hashes a row order-sensitively.
func hashRow(row []int64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range row {
		h = mix64(h ^ uint64(v))
	}
	return h
}

func equalRows(a, b []int64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// rowSet is an exact duplicate detector: rows bucket by 64-bit hash and
// collisions are resolved by comparing against an arena of inserted
// rows, so no false merges occur.
type rowSet struct {
	width int
	seen  map[uint64][]int
	arena []int64
}

func newRowSet(width int) *rowSet {
	return &rowSet{width: width, seen: make(map[uint64][]int)}
}

// insert adds row if unseen, reporting whether it was new.
func (s *rowSet) insert(row []int64) bool {
	h := hashRow(row)
	for _, off := range s.seen[h] {
		if equalRows(s.arena[off:off+s.width], row) {
			return false
		}
	}
	s.seen[h] = append(s.seen[h], len(s.arena))
	s.arena = append(s.arena, row...)
	return true
}

// --- source operators ---

// singletonOp emits one all-zero row: the seed of a pipelined plan
// whose first step binds its own columns.
type singletonOp struct {
	opBase
	done bool
	zero []int64
}

func newSingleton(schema []string) *singletonOp {
	return &singletonOp{
		opBase: opBase{name: "singleton", schema: schema},
		zero:   make([]int64, len(schema)),
	}
}

func (o *singletonOp) Open() {
	o.resetStats()
	o.done = false
}

func (o *singletonOp) Next(out *Batch) bool {
	out.Reset()
	if o.done {
		return false
	}
	o.done = true
	out.Append(o.zero)
	return o.yield(out)
}

func (o *singletonOp) Close()               {}
func (o *singletonOp) Children() []Operator { return nil }

// scanOp is a source table scan: it streams a whole concept table (one
// column) or role table (two columns, or one for the R(x,x) diagonal)
// into fresh full-width rows.
type scanOp struct {
	opBase
	db   *DB
	join *atomJoin // unbound atom describing what to scan
	prof *Profile

	zero    []int64
	members []int64    // concept scan / diagonal
	pairs   [][2]int64 // role scan
	pos     int
}

func newScan(schema []string, j *atomJoin, db *DB, prof *Profile) *scanOp {
	return &scanOp{
		opBase: opBase{name: "scan(" + j.pred + ")", schema: schema},
		db:     db,
		join:   j,
		prof:   prof,
		zero:   make([]int64, len(schema)),
	}
}

func (o *scanOp) Open() {
	o.resetStats()
	o.pos = 0
	o.members, o.pairs = nil, nil
	if o.join.dead {
		return
	}
	switch {
	case o.join.arity == 1:
		o.members = o.db.ConceptMembers(o.join.pred)
	case o.join.sameVar:
		for _, p := range rolePairsAll(o.db, o.join.pred) {
			if p[0] == p[1] {
				o.members = append(o.members, p[0])
			}
		}
	default:
		o.pairs = rolePairsAll(o.db, o.join.pred)
	}
}

func (o *scanOp) Next(out *Batch) bool {
	out.Reset()
	if o.members != nil || o.join.arity == 1 || o.join.sameVar {
		for o.pos < len(o.members) && !out.Full() {
			r := out.Append(o.zero)
			r[o.join.s.col] = o.members[o.pos]
			o.pos++
		}
		return o.yield(out)
	}
	for o.pos < len(o.pairs) && !out.Full() {
		p := o.pairs[o.pos]
		r := out.Append(o.zero)
		r[o.join.s.col] = p[0]
		r[o.join.o.col] = p[1]
		o.pos++
	}
	return o.yield(out)
}

func (o *scanOp) Close() {
	if !o.closeOnce() {
		return
	}
	// A source scan has one conceptual input row; the observed ratio is
	// therefore the scanned cardinality itself.
	o.prof.observeStep(o.join.pred, o.join.access, 1, o.rows)
}

func (o *scanOp) Children() []Operator { return nil }

// rolePairsAll materializes the pair list of a role once per operator:
// the simple layout returns the stored slice for free; the RDF layout
// pays one DPH sweep instead of one per input row.
func rolePairsAll(db *DB, pred string) [][2]int64 {
	if db.Layout != LayoutRDF {
		if t := db.roles[pred]; t != nil {
			return t.Pairs
		}
		return nil
	}
	var out [][2]int64
	db.RolePairs(pred, func(s, o int64) { out = append(out, [2]int64{s, o}) })
	return out
}

// --- atom joining (shared by scan/filter/join) ---

// termRef is a compiled atom argument: a dictionary constant or a
// column of the pipeline's row layout, with the bound-ness the planner
// established for this step.
type termRef struct {
	isConst bool
	constID int64
	col     int
	bound   bool
}

func (t termRef) isBound() bool { return t.isConst || t.bound }

func (t termRef) value(row []int64) int64 {
	if t.isConst {
		return t.constID
	}
	return row[t.col]
}

// atomJoin is the compiled form of joining the pipeline's rows with one
// atom through the layout-dispatched access paths.
type atomJoin struct {
	db      *DB
	pred    string
	arity   int
	access  StepAccess
	s, o    termRef
	sameVar bool
	// dead marks an atom with a constant absent from the dictionary: it
	// can match nothing.
	dead bool

	// cached full role scan (built lazily, once per operator, for
	// mid-pipeline cross products).
	scanPairs   [][2]int64
	scanDiag    []int64
	scansLoaded bool
}

// fullyBound reports whether the atom only checks already-bound values,
// compiling to a filter instead of a join.
func (j *atomJoin) fullyBound() bool {
	if j.arity == 1 {
		return j.s.isBound()
	}
	return j.s.isBound() && (j.o.isBound() || j.sameVar)
}

// unbound reports whether no argument is bound — a source scan.
func (j *atomJoin) unbound() bool {
	if j.dead {
		return false
	}
	if j.arity == 1 {
		return !j.s.isBound()
	}
	return !j.s.isBound() && !j.o.isBound()
}

// keep evaluates a fully bound atom against one row.
func (j *atomJoin) keep(row []int64) bool {
	if j.dead {
		return false
	}
	if j.arity == 1 {
		return j.db.ConceptContains(j.pred, j.s.value(row))
	}
	s := j.s.value(row)
	o := s
	if !j.sameVar {
		o = j.o.value(row)
	}
	return j.db.RoleContains(j.pred, s, o)
}

// matchSet is one row's pending expansions: either keep copies of the
// row unchanged, or vals written to column wc1, or pairs written to
// columns (wc1, wc2).
type matchSet struct {
	keep     int
	vals     []int64
	pairs    [][2]int64
	wc1, wc2 int
}

func (m matchSet) count() int {
	if m.pairs != nil {
		return len(m.pairs)
	}
	if m.vals != nil {
		return len(m.vals)
	}
	return m.keep
}

// matches computes the expansions of one input row through this atom.
func (j *atomJoin) matches(row []int64) matchSet {
	if j.dead {
		return matchSet{}
	}
	if j.arity == 1 {
		if j.s.isBound() {
			if j.db.ConceptContains(j.pred, j.s.value(row)) {
				return matchSet{keep: 1}
			}
			return matchSet{}
		}
		return matchSet{vals: j.db.ConceptMembers(j.pred), wc1: j.s.col}
	}
	sB, oB := j.s.isBound(), j.o.isBound()
	switch {
	case sB && (oB || j.sameVar):
		if j.keep(row) {
			return matchSet{keep: 1}
		}
		return matchSet{}
	case sB:
		return matchSet{vals: j.db.RoleObjects(j.pred, j.s.value(row)), wc1: j.o.col}
	case oB:
		return matchSet{vals: j.db.RoleSubjects(j.pred, j.o.value(row)), wc1: j.s.col}
	default:
		j.loadScan()
		if j.sameVar {
			return matchSet{vals: j.scanDiag, wc1: j.s.col}
		}
		return matchSet{pairs: j.scanPairs, wc1: j.s.col, wc2: j.o.col}
	}
}

func (j *atomJoin) loadScan() {
	if j.scansLoaded {
		return
	}
	j.scansLoaded = true
	pairs := rolePairsAll(j.db, j.pred)
	if j.sameVar {
		for _, p := range pairs {
			if p[0] == p[1] {
				j.scanDiag = append(j.scanDiag, p[0])
			}
		}
		return
	}
	j.scanPairs = pairs
}

// --- filter ---

// filterOp keeps the rows satisfying a fully bound atom (probe access).
type filterOp struct {
	opBase
	child  Operator
	join   *atomJoin
	prof   *Profile
	rowsIn int64
	in     *Batch
}

func newFilter(child Operator, j *atomJoin, prof *Profile) *filterOp {
	return &filterOp{
		opBase: opBase{name: "filter(" + j.pred + ")", schema: child.Schema()},
		child:  child,
		join:   j,
		prof:   prof,
	}
}

func (o *filterOp) Open() {
	o.resetStats()
	o.rowsIn = 0
	if o.in == nil {
		o.in = NewBatch(len(o.child.Schema()))
	}
	o.in.Reset()
	o.child.Open()
}

func (o *filterOp) Next(out *Batch) bool {
	out.Reset()
	for out.Len() == 0 {
		if !o.child.Next(o.in) {
			return false
		}
		o.rowsIn += int64(o.in.Len())
		for i := 0; i < o.in.Len(); i++ {
			row := o.in.Row(i)
			if o.join.keep(row) {
				out.Append(row)
			}
		}
	}
	return o.yield(out)
}

func (o *filterOp) Close() {
	if !o.closeOnce() {
		return
	}
	o.child.Close()
	o.prof.observeStep(o.join.pred, o.join.access, o.rowsIn, o.rows)
}

func (o *filterOp) Children() []Operator { return []Operator{o.child} }

// --- index-nested-loop join ---

// joinOp extends each input row with the matches of one or more
// alternative atoms (several alternatives = one SCQ block), probing the
// forward/reverse indexes for bound arguments and scanning otherwise.
type joinOp struct {
	opBase
	child  Operator
	alts   []*atomJoin
	prof   *Profile
	rowsIn int64

	in     *Batch
	inPos  int
	curRow []int64
	altIdx int

	pend    matchSet
	pendIdx int
}

func newJoin(child Operator, alts []*atomJoin, prof *Profile) *joinOp {
	preds := make([]string, len(alts))
	for i, a := range alts {
		preds[i] = a.pred
	}
	return &joinOp{
		opBase: opBase{name: "join(" + strings.Join(preds, "|") + ")", schema: child.Schema()},
		child:  child,
		alts:   alts,
		prof:   prof,
	}
}

func (o *joinOp) Open() {
	o.resetStats()
	o.rowsIn = 0
	if o.in == nil {
		o.in = NewBatch(len(o.child.Schema()))
	}
	o.in.Reset()
	o.inPos, o.altIdx = 0, 0
	o.curRow = nil
	o.pend, o.pendIdx = matchSet{}, 0
	o.child.Open()
}

func (o *joinOp) Next(out *Batch) bool {
	out.Reset()
	for {
		// Drain the pending expansions of (current row, current atom).
		if o.pendIdx < o.pend.count() {
			if out.Full() {
				return o.yield(out)
			}
			o.emitMatch(out)
			o.pendIdx++
			continue
		}
		// Next alternative atom for the current row.
		if o.curRow != nil {
			if o.altIdx < len(o.alts) {
				o.pend = o.alts[o.altIdx].matches(o.curRow)
				o.pendIdx = 0
				o.altIdx++
				continue
			}
			o.curRow = nil
		}
		// Next row of the current input batch.
		if o.inPos < o.in.Len() {
			o.curRow = o.in.Row(o.inPos)
			o.inPos++
			o.altIdx = 0
			continue
		}
		// Pull the next input batch.
		if !o.child.Next(o.in) {
			return o.yield(out)
		}
		o.rowsIn += int64(o.in.Len())
		o.inPos = 0
	}
}

func (o *joinOp) emitMatch(out *Batch) {
	m := &o.pend
	switch {
	case m.pairs != nil:
		r := out.Append(o.curRow)
		r[m.wc1] = m.pairs[o.pendIdx][0]
		r[m.wc2] = m.pairs[o.pendIdx][1]
	case m.vals != nil:
		r := out.Append(o.curRow)
		r[m.wc1] = m.vals[o.pendIdx]
	default:
		out.Append(o.curRow)
	}
}

func (o *joinOp) Close() {
	if !o.closeOnce() {
		return
	}
	o.child.Close()
	if len(o.alts) == 1 {
		o.prof.observeStep(o.alts[0].pred, o.alts[0].access, o.rowsIn, o.rows)
	}
}

func (o *joinOp) Children() []Operator { return []Operator{o.child} }

// --- projection ---

// projectOp maps pipeline rows onto the query head: source columns for
// head variables, dictionary ids for head constants. A head constant
// absent from the dictionary (dead) matches nothing; a head variable
// absent from the pipeline's schema drops the row.
type projectOp struct {
	opBase
	child Operator
	// srcCols[i] ≥ 0 reads that pipeline column; -1 emits consts[i].
	srcCols []int
	consts  []int64
	dead    bool

	in      *Batch
	scratch []int64
}

func newProject(child Operator, schema []string, srcCols []int, consts []int64, dead bool) *projectOp {
	return &projectOp{
		opBase:  opBase{name: "project", schema: schema},
		child:   child,
		srcCols: srcCols,
		consts:  consts,
		dead:    dead,
	}
}

func (o *projectOp) Open() {
	o.resetStats()
	if o.in == nil {
		o.in = NewBatch(len(o.child.Schema()))
		o.scratch = make([]int64, len(o.schema))
	}
	o.in.Reset()
	o.child.Open()
}

func (o *projectOp) Next(out *Batch) bool {
	out.Reset()
	if o.dead {
		return false
	}
	for out.Len() == 0 {
		if !o.child.Next(o.in) {
			return false
		}
		for i := 0; i < o.in.Len(); i++ {
			row := o.in.Row(i)
			for c, src := range o.srcCols {
				if src >= 0 {
					o.scratch[c] = row[src]
				} else {
					o.scratch[c] = o.consts[c]
				}
			}
			out.Append(o.scratch)
		}
	}
	return o.yield(out)
}

func (o *projectOp) Close() {
	if !o.closeOnce() {
		return
	}
	o.child.Close()
}
func (o *projectOp) Children() []Operator { return []Operator{o.child} }

// --- streaming distinct ---

// distinctOp streams DISTINCT: rows hash into a 64-bit set (collisions
// verified exactly against an arena), and only first occurrences pass.
type distinctOp struct {
	opBase
	child Operator
	in    *Batch
	set   *rowSet
}

func newDistinct(child Operator) *distinctOp {
	return &distinctOp{
		opBase: opBase{name: "distinct", schema: child.Schema()},
		child:  child,
	}
}

func (o *distinctOp) Open() {
	o.resetStats()
	if o.in == nil {
		o.in = NewBatch(len(o.child.Schema()))
	}
	o.in.Reset()
	o.set = newRowSet(len(o.child.Schema()))
	o.child.Open()
}

func (o *distinctOp) Next(out *Batch) bool {
	out.Reset()
	for out.Len() == 0 {
		if !o.child.Next(o.in) {
			return false
		}
		for i := 0; i < o.in.Len(); i++ {
			row := o.in.Row(i)
			if o.set.insert(row) {
				out.Append(row)
			}
		}
	}
	return o.yield(out)
}

func (o *distinctOp) Close() {
	if !o.closeOnce() {
		return
	}
	o.child.Close()
}
func (o *distinctOp) Children() []Operator { return []Operator{o.child} }

// --- sequential union ---

// unionOp concatenates its children's streams (UNION ALL; wrap in
// distinctOp for UNION).
type unionOp struct {
	opBase
	children []Operator
	idx      int
}

func newUnion(schema []string, children []Operator) *unionOp {
	return &unionOp{opBase: opBase{name: "union", schema: schema}, children: children}
}

func (o *unionOp) Open() {
	o.resetStats()
	o.idx = 0
	for _, c := range o.children {
		c.Open()
	}
}

func (o *unionOp) Next(out *Batch) bool {
	out.Reset()
	for o.idx < len(o.children) {
		if o.children[o.idx].Next(out) {
			return o.yield(out)
		}
		o.idx++
	}
	return false
}

func (o *unionOp) Close() {
	if !o.closeOnce() {
		return
	}
	for _, c := range o.children {
		c.Close()
	}
}

func (o *unionOp) Children() []Operator { return o.children }

// --- draining and diagnostics ---

// Drain runs a compiled pipeline to completion and materializes its
// output as a Relation — the bridge to the materialized-relation world
// of HashJoin, views, and result decoding.
func Drain(op Operator) *Relation {
	op.Open()
	defer op.Close()
	rel := &Relation{Schema: op.Schema()}
	b := NewBatch(len(op.Schema()))
	for op.Next(b) {
		for i := 0; i < b.Len(); i++ {
			rel.Rows = append(rel.Rows, append([]int64(nil), b.Row(i)...))
		}
	}
	return rel
}

// ExplainPipeline renders an operator tree with the per-operator row
// and batch counters gathered during execution — the "EXPLAIN ANALYZE"
// of the streaming path.
func ExplainPipeline(op Operator) string {
	var b strings.Builder
	var walk func(op Operator, depth int)
	walk = func(op Operator, depth int) {
		st := op.Stats()
		fmt.Fprintf(&b, "%s%-24s rows=%-8d batches=%d\n",
			strings.Repeat("  ", depth), st.Op, st.Rows, st.Batches)
		children := op.Children()
		// Render children deterministically even if the slice is shared.
		for _, c := range children {
			walk(c, depth+1)
		}
	}
	walk(op, 0)
	return b.String()
}

// CollectStats flattens the tree's statistics, roots first.
func CollectStats(op Operator) []OpStats {
	var out []OpStats
	var walk func(op Operator)
	walk = func(op Operator) {
		out = append(out, op.Stats())
		for _, c := range op.Children() {
			walk(c)
		}
	}
	walk(op)
	return out
}
