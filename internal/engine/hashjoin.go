package engine

import (
	"fmt"
	"runtime"
	"sync"
)

// Streaming hash join for cover fragments. A JUCQ/JUSCQ plan evaluates
// a cover as the join of its fragment reformulations (Section 3); until
// now that join materialized every fragment as a Relation and folded
// them through the pairwise HashJoin. hashJoinOp brings the join into
// the operator model: the build-side fragments are whole streaming
// pipelines drained into compact hash tables by parallel workers during
// Open, and the driving (largest) fragment is then probed in one
// streaming pass — no fragment Relation is ever materialized, and
// probe work overlaps the tail of the build phase through the usual
// batch flow.

// clampWorkers bounds a worker request to the machine and the number of
// runnable tasks — the shared budget policy of unionParallelOp and
// hashJoinOp.
func clampWorkers(workers, tasks int) int {
	if workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > tasks {
		workers = tasks
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// buildTable is one build side of the join chain: the child pipeline's
// rows in an arena, bucketed by the 64-bit hash of the join columns the
// fragment shares with the output schema accumulated so far.
type buildTable struct {
	child Operator
	width int
	// join pairs (output column, build column); empty means cross
	// product (fragments sharing no variable).
	join [][2]int
	// extra build columns appended to the output schema, written at
	// outBase.
	extra   []int
	outBase int

	arena   []int64
	buckets map[uint64][]int32
}

// load drains the child pipeline into the hash table. The child is
// opened and closed here, exactly once per execution.
func (bt *buildTable) load() {
	bt.arena = bt.arena[:0]
	bt.buckets = make(map[uint64][]int32)
	bt.child.Open()
	defer bt.child.Close()
	b := NewBatch(bt.width)
	for bt.child.Next(b) {
		for i := 0; i < b.Len(); i++ {
			row := b.Row(i)
			h := uint64(0x9e3779b97f4a7c15)
			for _, jc := range bt.join {
				h = mix64(h ^ uint64(row[jc[1]]))
			}
			bt.buckets[h] = append(bt.buckets[h], int32(len(bt.arena)/int32Width(bt.width)))
			bt.arena = append(bt.arena, row...)
		}
	}
}

// int32Width guards the degenerate zero-width (boolean fragment) case:
// rows carry no columns, so arena offsets cannot index them — every row
// is identical and the row count lives in the bucket slice length.
func int32Width(w int) int {
	if w == 0 {
		return 1
	}
	return w
}

func (bt *buildTable) rowAt(i int32) []int64 {
	w := int32Width(bt.width)
	return bt.arena[int(i)*w : int(i)*w+bt.width]
}

// probeHash hashes the already-bound output columns this table joins on.
func (bt *buildTable) probeHash(out []int64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, jc := range bt.join {
		h = mix64(h ^ uint64(out[jc[0]]))
	}
	return h
}

func (bt *buildTable) equalOn(out, brow []int64) bool {
	for _, jc := range bt.join {
		if out[jc[0]] != brow[jc[1]] {
			return false
		}
	}
	return true
}

// hashJoinOp joins one probe pipeline against n build pipelines on
// identically named schema columns (the JUCQ fragment-join semantics).
// Build tables are loaded during Open by up to `workers` goroutines,
// one per build fragment; Next then streams the probe child through the
// chain of tables, expanding each probe row into the join results.
type hashJoinOp struct {
	opBase
	probe   Operator
	builds  []*buildTable
	workers int

	in      *Batch
	inPos   int
	scratch []int64
	pend    []int64 // expanded rows of the current probe row, width len(schema)
	pendPos int
	dead    bool // some build side is empty: no row can join
}

// NewHashJoin builds the streaming fragment join. children[probeIdx]
// is the driving (probe) side; every other child becomes a build table,
// joined left-to-right in the order given by buildOrder (indexes into
// children). The output schema is the probe schema followed by each
// build's so-far-unseen columns. workers bounds the goroutines draining
// build pipelines during Open (shared-budget clamp with the parallel
// union: capped at GOMAXPROCS and at the number of build sides).
func NewHashJoin(children []Operator, probeIdx int, buildOrder []int, workers int) Operator {
	probe := children[probeIdx]
	schema := append([]string(nil), probe.Schema()...)
	colOf := map[string]int{}
	for i, v := range schema {
		if _, ok := colOf[v]; !ok {
			colOf[v] = i
		}
	}
	builds := make([]*buildTable, 0, len(buildOrder))
	for _, bi := range buildOrder {
		c := children[bi]
		bt := &buildTable{child: c, width: len(c.Schema()), outBase: len(schema)}
		for j, v := range c.Schema() {
			if oc, ok := colOf[v]; ok {
				bt.join = append(bt.join, [2]int{oc, j})
			} else {
				colOf[v] = len(schema)
				schema = append(schema, v)
				bt.extra = append(bt.extra, j)
			}
		}
		builds = append(builds, bt)
	}
	return &hashJoinOp{
		opBase:  opBase{name: fmt.Sprintf("hash-join(%d)", len(builds)), schema: schema},
		probe:   probe,
		builds:  builds,
		workers: workers,
	}
}

func (o *hashJoinOp) Open() {
	o.resetStats()
	if o.in == nil {
		o.in = NewBatch(len(o.probe.Schema()))
		o.scratch = make([]int64, len(o.schema))
	}
	o.in.Reset()
	o.inPos = 0
	o.pend = o.pend[:0]
	o.pendPos = 0
	o.dead = false

	// The probe pipeline opens first: a parallel union there starts
	// producing into its buffers while the build tables load.
	o.probe.Open()

	w := clampWorkers(o.workers, len(o.builds))
	if w <= 1 {
		for _, bt := range o.builds {
			bt.load()
		}
	} else {
		jobs := make(chan *buildTable, len(o.builds))
		for _, bt := range o.builds {
			jobs <- bt
		}
		close(jobs)
		var wg sync.WaitGroup
		for i := 0; i < w; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for bt := range jobs {
					bt.load()
				}
			}()
		}
		wg.Wait()
	}
	for _, bt := range o.builds {
		if len(bt.buckets) == 0 {
			o.dead = true
		}
	}
}

func (o *hashJoinOp) Next(out *Batch) bool {
	out.Reset()
	if o.dead {
		return false
	}
	width := len(o.schema)
	for {
		// Flush pending expansions of the current probe row.
		for o.pendPos*width < len(o.pend) && !out.Full() {
			out.Append(o.pend[o.pendPos*width : (o.pendPos+1)*width])
			o.pendPos++
		}
		if out.Full() {
			return o.yield(out)
		}
		// Advance to the next probe row.
		if o.inPos >= o.in.Len() {
			if !o.probe.Next(o.in) {
				return o.yield(out)
			}
			o.inPos = 0
			continue
		}
		copy(o.scratch, o.in.Row(o.inPos))
		o.inPos++
		o.pend = o.pend[:0]
		o.pendPos = 0
		o.expand(0)
	}
}

// expand walks the build chain for the probe row currently in scratch,
// appending every full join result to pend. Each level writes its extra
// columns into a disjoint range of scratch, so a single scratch row
// backs the whole traversal.
func (o *hashJoinOp) expand(level int) {
	if level == len(o.builds) {
		o.pend = append(o.pend, o.scratch...)
		return
	}
	bt := o.builds[level]
	for _, ri := range bt.buckets[bt.probeHash(o.scratch)] {
		brow := bt.rowAt(ri)
		if !bt.equalOn(o.scratch, brow) {
			continue
		}
		for k, c := range bt.extra {
			o.scratch[bt.outBase+k] = brow[c]
		}
		o.expand(level + 1)
	}
}

// Close closes the probe pipeline and every build child. Build
// pipelines were already drained and closed by load() during Open, so
// their Close here is a no-op through the closeOnce guard — it exists
// so the operator honors the contract (Close closes everything
// Children reports) without double-counting cardinality feedback.
func (o *hashJoinOp) Close() {
	if !o.closeOnce() {
		return
	}
	o.probe.Close()
	for _, bt := range o.builds {
		bt.child.Close()
	}
}

func (o *hashJoinOp) Children() []Operator {
	out := []Operator{o.probe}
	for _, bt := range o.builds {
		out = append(out, bt.child)
	}
	return out
}
