package engine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dllite"
	"repro/internal/query"
)

// drainParallel compiles a UCQ plan with the parallel union operator
// and drains it.
func drainParallel(plan UCQPlan, db *DB, workers int) *Relation {
	return Drain(CompileUCQ(plan, db, nil, workers))
}

func TestParallelMatchesSequential(t *testing.T) {
	db := loadDB(t, LayoutSimple, sampleABox)
	u := query.UCQ{Disjuncts: []query.CQ{
		query.MustParseCQ("q(x) <- PhDStudent(x)"),
		query.MustParseCQ("q(x) <- Researcher(x)"),
		query.MustParseCQ("q(x) <- supervisedBy(x, y)"),
		query.MustParseCQ("q(x) <- worksWith(y, x)"),
	}}
	plan := PlanUCQ(u, db, ProfilePostgres())
	seq := ExecUCQ(plan, db)
	for _, workers := range []int{1, 2, 4, 16} {
		par := drainParallel(plan, db, workers)
		if !sameSets(relToSet(par, db.Dict), relToSet(seq, db.Dict)) {
			t.Errorf("workers=%d: parallel result differs", workers)
		}
	}
}

// TestPropParallelEquivalence asserts, on randomized UCQs and data,
// that the parallel union operator computes exactly the sequential
// ExecUCQ answer set (run under -race in CI).
func TestPropParallelEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ab := dllite.MustParseABox(randABoxText(r))
		db := NewDB(LayoutSimple)
		db.LoadABox(ab)
		var u query.UCQ
		n := 1 + r.Intn(6)
		for i := 0; i < n; i++ {
			u.Disjuncts = append(u.Disjuncts, randQuery(r))
		}
		// All disjuncts must share head arity for a well-formed UCQ.
		for i := range u.Disjuncts {
			u.Disjuncts[i].Head = u.Disjuncts[i].Head[:1]
		}
		plan := PlanUCQ(u, db, ProfileDB2())
		seq := ExecUCQ(plan, db)
		par := drainParallel(plan, db, 4)
		return sameSets(relToSet(par, db.Dict), relToSet(seq, db.Dict))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestParallelSingleArmFallsBack(t *testing.T) {
	db := loadDB(t, LayoutSimple, sampleABox)
	u := query.UCQ{Disjuncts: []query.CQ{query.MustParseCQ("q(x) <- Researcher(x)")}}
	plan := PlanUCQ(u, db, ProfilePostgres())
	if got := drainParallel(plan, db, 8); len(got.Rows) != 2 {
		t.Errorf("single-arm parallel = %d rows", len(got.Rows))
	}
}

// TestParallelEarlyClose closes the parallel union before draining it;
// the workers must unblock and exit without deadlock or leak.
func TestParallelEarlyClose(t *testing.T) {
	db := loadDB(t, LayoutSimple, sampleABox)
	var ds []query.CQ
	for i := 0; i < 32; i++ {
		ds = append(ds, query.MustParseCQ("q(x) <- Researcher(x)"))
		ds = append(ds, query.MustParseCQ("q(x) <- supervisedBy(x, y)"))
	}
	plan := PlanUCQ(query.UCQ{Disjuncts: ds}, db, ProfilePostgres())
	arms := make([]Operator, len(plan.Plans))
	for i := range plan.Plans {
		arms[i] = CompileCQ(plan.Plans[i], db, nil)
	}
	op := NewUnionParallel(headSchema(plan.U.Head()), arms, 4)
	op.Open()
	b := NewBatch(len(op.Schema()))
	op.Next(b) // take at most one batch, then abandon the rest
	op.Close()
}

// TestParallelFeedbackIsRaceFree drains a parallel union whose arms
// flush cardinality feedback into a shared profile on Close.
func TestParallelFeedbackIsRaceFree(t *testing.T) {
	db := loadDB(t, LayoutSimple, sampleABox)
	prof := ProfilePostgres()
	prof.Feedback = NewCardFeedback()
	var ds []query.CQ
	for i := 0; i < 16; i++ {
		ds = append(ds, query.MustParseCQ("q(x) <- Researcher(x)"))
		ds = append(ds, query.MustParseCQ("q(x) <- supervisedBy(x, y)"))
	}
	plan := PlanUCQ(query.UCQ{Disjuncts: ds}, db, prof)
	rel := Drain(CompileUCQ(plan, db, prof, 8))
	if len(rel.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rel.Rows))
	}
	if _, ok := prof.Feedback.Fanout("supervisedBy", AccessRoleScan); !ok {
		t.Error("parallel execution should have flushed feedback")
	}
}
