package engine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dllite"
	"repro/internal/query"
)

func TestParallelMatchesSequential(t *testing.T) {
	db := loadDB(t, LayoutSimple, sampleABox)
	u := query.UCQ{Disjuncts: []query.CQ{
		query.MustParseCQ("q(x) <- PhDStudent(x)"),
		query.MustParseCQ("q(x) <- Researcher(x)"),
		query.MustParseCQ("q(x) <- supervisedBy(x, y)"),
		query.MustParseCQ("q(x) <- worksWith(y, x)"),
	}}
	plan := PlanUCQ(u, db, ProfilePostgres())
	seq := ExecUCQ(plan, db)
	for _, workers := range []int{1, 2, 4, 16} {
		par := ExecUCQParallel(plan, db, workers)
		if !sameSets(relToSet(par, db.Dict), relToSet(seq, db.Dict)) {
			t.Errorf("workers=%d: parallel result differs", workers)
		}
	}
}

func TestPropParallelEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ab := dllite.MustParseABox(randABoxText(r))
		db := NewDB(LayoutSimple)
		db.LoadABox(ab)
		var u query.UCQ
		n := 1 + r.Intn(6)
		for i := 0; i < n; i++ {
			u.Disjuncts = append(u.Disjuncts, randQuery(r))
		}
		// All disjuncts must share head arity for a well-formed UCQ.
		for i := range u.Disjuncts {
			u.Disjuncts[i].Head = u.Disjuncts[i].Head[:1]
		}
		plan := PlanUCQ(u, db, ProfileDB2())
		seq := ExecUCQ(plan, db)
		par := ExecUCQParallel(plan, db, 4)
		return sameSets(relToSet(par, db.Dict), relToSet(seq, db.Dict))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestParallelSingleArmFallsBack(t *testing.T) {
	db := loadDB(t, LayoutSimple, sampleABox)
	u := query.UCQ{Disjuncts: []query.CQ{query.MustParseCQ("q(x) <- Researcher(x)")}}
	plan := PlanUCQ(u, db, ProfilePostgres())
	if got := ExecUCQParallel(plan, db, 8); len(got.Rows) != 2 {
		t.Errorf("single-arm parallel = %d rows", len(got.Rows))
	}
}
