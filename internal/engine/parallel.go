package engine

import (
	"runtime"
	"sync"
)

// ExecUCQParallel evaluates a planned UCQ with its arms spread over
// worker goroutines. This is an engine capability beyond the paper
// (neither Postgres 9.3 nor DB2 10.5 parallelized union arms); it is
// exercised by the ablation benchmarks to show how much of the UCQ
// penalty is latency rather than total work. The database is read-only
// during execution, so concurrent arm evaluation is safe.
func ExecUCQParallel(plan UCQPlan, db *DB, workers int) *Relation {
	n := len(plan.Plans)
	if workers <= 1 || n <= 1 {
		return ExecUCQ(plan, db)
	}
	if workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]*Relation, n)
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = ExecCQ(plan.Plans[i], db)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	out := &Relation{Schema: headSchema(plan.U.Head())}
	for _, r := range results {
		out.Rows = append(out.Rows, r.Rows...)
	}
	out.Distinct()
	return out
}
