package engine

import (
	"sync"
)

// unionParallelOp is the parallel union: an engine operator that owns a
// pool of worker goroutines, each draining whole child pipelines and
// handing finished batches to the single consumer. This replaces the
// old ExecUCQParallel special case — parallel union is now an engine
// capability any compiled plan can use (neither Postgres 9.3 nor DB2
// 10.5 parallelized union arms; the ablation benchmarks use it to show
// how much of the UCQ penalty is latency rather than total work). The
// database is read-only during execution, so concurrent arm evaluation
// is safe. Output batch order is nondeterministic across children; set
// semantics are unaffected (wrap in distinct, or sort after decode).
type unionParallelOp struct {
	opBase
	children []Operator
	workers  int
	// perChild pins one dedicated goroutine to every child instead of
	// pulling children from a shared job queue (NewUnionFanIn).
	perChild bool

	results chan *Batch
	stop    chan struct{}
	stopped sync.Once
	wg      sync.WaitGroup
	pool    sync.Pool
}

// NewUnionParallel builds a parallel union over children with up to
// workers goroutines (the shared clampWorkers budget: capped at
// GOMAXPROCS and at len(children)). With workers <= 1 or fewer than
// two children, it degrades to the sequential union.
func NewUnionParallel(schema []string, children []Operator, workers int) Operator {
	workers = clampWorkers(workers, len(children))
	if workers <= 1 || len(children) <= 1 {
		return newUnion(schema, children)
	}
	return &unionParallelOp{
		opBase:   opBase{name: "union-parallel", schema: schema},
		children: children,
		workers:  workers,
	}
}

// NewUnionFanIn builds a parallel union with exactly one dedicated
// goroutine per child, bypassing the GOMAXPROCS clamp. The shard
// backend's exchange path needs this shape: every child consumes
// exchange endpoints fed by bounded channels, so a child left waiting
// for a pooled worker would never drain its channel and the producers
// filling it would stall the children that do have workers. Goroutines
// beyond GOMAXPROCS are a scheduling matter, not a correctness one — a
// blocked consumer costs nothing.
func NewUnionFanIn(schema []string, children []Operator) Operator {
	if len(children) <= 1 {
		return newUnion(schema, children)
	}
	return &unionParallelOp{
		opBase:   opBase{name: "union-fanin", schema: schema},
		children: children,
		workers:  len(children),
		perChild: true,
	}
}

func (o *unionParallelOp) Open() {
	o.resetStats()
	o.results = make(chan *Batch, o.workers*2)
	o.stop = make(chan struct{})
	o.stopped = sync.Once{}
	width := len(o.schema)
	o.pool.New = func() any { return NewBatch(width) }

	if o.perChild {
		for _, c := range o.children {
			o.wg.Add(1)
			go func(c Operator) {
				defer o.wg.Done()
				o.drainChild(c)
			}(c)
		}
	} else {
		jobs := make(chan int, len(o.children))
		for i := range o.children {
			jobs <- i
		}
		close(jobs)

		for w := 0; w < o.workers; w++ {
			o.wg.Add(1)
			go func() {
				defer o.wg.Done()
				for i := range jobs {
					if !o.drainChild(o.children[i]) {
						return // stop requested
					}
				}
			}()
		}
	}
	go func() {
		o.wg.Wait()
		close(o.results)
	}()
}

// drainChild runs one child pipeline to completion, shipping its
// batches to the consumer. It returns false when the operator was
// closed early.
func (o *unionParallelOp) drainChild(c Operator) bool {
	c.Open()
	defer c.Close()
	for {
		b := o.pool.Get().(*Batch)
		if !c.Next(b) {
			o.pool.Put(b)
			return true
		}
		select {
		case o.results <- b:
		case <-o.stop:
			return false
		}
	}
}

func (o *unionParallelOp) Next(out *Batch) bool {
	b, ok := <-o.results
	if !ok {
		return false
	}
	out.CopyFrom(b)
	b.Reset()
	o.pool.Put(b)
	return o.yield(out)
}

func (o *unionParallelOp) Close() {
	if !o.closeOnce() {
		return
	}
	o.stopped.Do(func() { close(o.stop) })
	// Unblock any producer and wait for the workers to finish.
	for range o.results {
	}
	// The workers have exited (results closes only after wg.Wait), so
	// closing every child here is race-free. Children a worker already
	// drained were closed by drainChild, and children never picked up
	// were never opened — both make this a no-op through their own
	// closeOnce guard. What it catches is the early-close case: a child
	// interrupted mid-stream by the stop channel, whose deferred Close
	// ran, plus any child whose state outlives its worker.
	for _, c := range o.children {
		c.Close()
	}
}

func (o *unionParallelOp) Children() []Operator { return o.children }
