package engine

// The native implementation of plan.Backend: logical plans extract
// back into the dialect the planner understands (UCQ/USCQ or the
// JUCQ/JUSCQ cover shapes), are costed by the profile's explain-style
// estimation, and execute through the streaming operator pipeline.
// Because operator trees are single-use, Compile freezes only the
// immutable plans; each Run builds a fresh tree, drains it, and walks
// it alongside the IR to report actual per-operator row counters in
// the EXPLAIN annotation.

import (
	"math"

	"repro/internal/plan"
	"repro/internal/query"
)

// Backend runs logical plans on the in-process streaming engine.
type Backend struct {
	DB      *DB
	Profile *Profile
}

// NewBackend wires the native backend over a database and profile.
func NewBackend(db *DB, prof *Profile) *Backend { return &Backend{DB: db, Profile: prof} }

// Name identifies the backend in cache keys and EXPLAIN output.
func (b *Backend) Name() string { return "native" }

// Compiled is a lowered logical plan: exactly one of the plan groups
// is set, mirroring the dialect the tree extracted into. It implements
// plan.Executable; composing backends (internal/shard) reach the
// per-run operator tree through Tree instead of the opaque Run.
type Compiled struct {
	b    *Backend
	node *plan.Node
	kind plan.Kind
	est  plan.Estimate

	ucq   *UCQPlan
	uscq  *USCQPlan
	jucq  *JUCQPlan
	juscq *JUSCQPlan
}

// lower validates the tree, extracts it, and plans it under the
// profile. Validation runs here — not only in core — so plans handed
// to the backend directly are checked too; Estimate maps the error to
// a +Inf cost.
func (b *Backend) lower(n *plan.Node) (*Compiled, error) {
	if err := plan.Validate(n); err != nil {
		return nil, err
	}
	lo, err := plan.Extract(n)
	if err != nil {
		return nil, err
	}
	c := &Compiled{b: b, node: n, kind: lo.Kind}
	switch lo.Kind {
	case plan.KindUCQ:
		p := PlanUCQ(lo.UCQ, b.DB, b.Profile)
		c.ucq = &p
		c.est = plan.Estimate{Cost: p.EstCost, Card: p.EstCard}
	case plan.KindUSCQ:
		p := PlanUSCQ(lo.USCQ, b.DB, b.Profile)
		c.uscq = &p
		c.est = plan.Estimate{Cost: p.EstCost, Card: p.EstCard}
	case plan.KindJUCQ:
		p := PlanJUCQ(lo.JUCQ, b.DB, b.Profile)
		c.jucq = &p
		c.est = plan.Estimate{Cost: p.EstCost, Card: p.EstCard}
	default:
		p := PlanJUSCQ(lo.JUSCQ, b.DB, b.Profile)
		c.juscq = &p
		c.est = plan.Estimate{Cost: p.EstCost, Card: p.EstCard}
	}
	return c, nil
}

// Compile lowers the plan into a reusable executable.
func (b *Backend) Compile(n *plan.Node) (plan.Executable, error) { return b.lower(n) }

// CompilePlan is the per-shard compile hook: it lowers the plan like
// Compile but returns the concrete *Compiled, whose Tree method hands
// composing backends a fresh operator pipeline per run.
func (b *Backend) CompilePlan(n *plan.Node) (*Compiled, error) { return b.lower(n) }

// NewDistinctOperator wraps any operator in the streaming distinct —
// the merge step of backends that union independently produced
// streams (shard fan-in).
func NewDistinctOperator(in Operator) Operator { return newDistinct(in) }

// Estimate scores the plan; malformed trees cost +Inf.
func (b *Backend) Estimate(n *plan.Node) plan.Estimate {
	c, err := b.lower(n)
	if err != nil {
		return plan.Estimate{Cost: math.Inf(1)}
	}
	return c.est
}

// Estimate returns the compile-time estimate.
func (c *Compiled) Estimate() plan.Estimate { return c.est }

// Tree builds a fresh streaming operator pipeline for one run,
// returning it with an annotation callback that — once the tree has
// been drained — maps the operators' actual row counters (plus the
// estimates frozen in the plans) onto an EXPLAIN skeleton of the plan.
// Operator trees are single-use; call Tree again for another run.
func (c *Compiled) Tree(workers int) (Operator, func(at map[*plan.Node]*plan.ExplainNode)) {
	db, prof := c.b.DB, c.b.Profile
	switch c.kind {
	case plan.KindUCQ:
		if len(c.ucq.Plans) == 0 {
			return newUnion(headSchema(c.ucq.U.Head()), nil), func(map[*plan.Node]*plan.ExplainNode) {}
		}
		op := CompileUCQ(*c.ucq, db, prof, workers)
		return op, func(at map[*plan.Node]*plan.ExplainNode) {
			annotateUnionTree(op, c.node, at, c.ucq, nil)
		}
	case plan.KindUSCQ:
		if len(c.uscq.Plans) == 0 {
			return newUnion(nil, nil), func(map[*plan.Node]*plan.ExplainNode) {}
		}
		op := CompileUSCQ(*c.uscq, db, prof, workers)
		return op, func(at map[*plan.Node]*plan.ExplainNode) {
			annotateUnionTree(op, c.node, at, nil, c.uscq)
		}
	default:
		op, frags := c.buildCoverTree(workers)
		return op, func(at map[*plan.Node]*plan.ExplainNode) {
			c.annotateCoverTree(op, frags, at)
		}
	}
}

// Run builds a fresh operator tree, drains it, and annotates the
// EXPLAIN skeleton with the estimates frozen in the plans and the
// actual row counters the operators observed.
func (c *Compiled) Run(workers int) (*plan.RunResult, error) {
	root, at := plan.Skeleton(c.node)
	ex := &plan.Explain{Backend: c.b.Name(), EstCost: c.est.Cost, EstCard: c.est.Card, Root: root}
	op, annotate := c.Tree(workers)
	rel := Drain(op)
	annotate(at)
	return &plan.RunResult{Tuples: rel.Decode(c.b.DB.Dict), Explain: ex}, nil
}

// buildCoverTree assembles the streaming cover pipeline exactly like
// CompileJUCQ/CompileJUSCQ, but keeps the fragment roots in original
// fragment order — the hash join reorders its children (probe first,
// builds by size), which would scramle the IR mapping.
func (c *Compiled) buildCoverTree(workers int) (root Operator, frags []Operator) {
	db, prof := c.b.DB, c.b.Profile
	var n int
	var head []string
	var ests []float64
	if c.kind == plan.KindJUCQ {
		n = len(c.jucq.Frags)
		head = headSchema(c.jucq.J.Head)
	} else {
		n = len(c.juscq.Frags)
		head = headSchema(c.juscq.J.Head)
	}
	if n == 0 {
		return newUnion(head, nil), nil
	}
	perFrag := coverWorkerSplit(workers, n)
	frags = make([]Operator, n)
	ests = make([]float64, n)
	for i := 0; i < n; i++ {
		if c.kind == plan.KindJUCQ {
			frags[i] = CompileUCQ(c.jucq.Frags[i], db, prof, perFrag)
			ests[i] = c.jucq.Frags[i].EstCard
		} else {
			frags[i] = CompileUSCQ(c.juscq.Frags[i], db, prof, perFrag)
			ests[i] = c.juscq.Frags[i].EstCard
		}
	}
	var headTerms = c.coverHead()
	if n == 1 {
		return newDistinct(compileProjectNamed(frags[0], headTerms, db)), frags
	}
	probe, builds := coverJoinOrder(ests)
	hj := NewHashJoin(frags, probe, builds, workers)
	return newDistinct(compileProjectNamed(hj, headTerms, db)), frags
}

func (c *Compiled) coverHead() []query.Term {
	if c.kind == plan.KindJUCQ {
		return c.jucq.J.Head
	}
	return c.juscq.J.Head
}

// annotateCoverTree maps the cover pipeline's counters onto the IR:
// Distinct ← the root dedup, Project ← the head projection, Join ←
// the hash join, and each fragment subtree ← its Distinct(Union(...))
// pipeline.
func (c *Compiled) annotateCoverTree(op Operator, frags []Operator, at map[*plan.Node]*plan.ExplainNode) {
	distinctIR := c.node
	if distinctIR.Op != plan.OpDistinct || len(distinctIR.Inputs) != 1 {
		return
	}
	projectIR := distinctIR.Inputs[0]
	if projectIR.Op != plan.OpProject || len(projectIR.Inputs) != 1 {
		return
	}
	joinIR := projectIR.Inputs[0]
	setExplain(at[distinctIR], c.est.Card, c.est.Cost, op)
	if kids := op.Children(); len(kids) == 1 {
		projOp := kids[0]
		setExplain(at[projectIR], c.est.Card, plan.UnknownRows, projOp)
		if jk := projOp.Children(); len(jk) == 1 && len(frags) > 1 {
			setExplain(at[joinIR], plan.UnknownRows, plan.UnknownRows, jk[0])
		}
	}
	for i, fop := range frags {
		if i >= len(joinIR.Inputs) {
			break
		}
		if c.kind == plan.KindJUCQ {
			annotateUnionTree(fop, joinIR.Inputs[i], at, &c.jucq.Frags[i], nil)
		} else {
			annotateUnionTree(fop, joinIR.Inputs[i], at, nil, &c.juscq.Frags[i])
		}
	}
}

// annotateUnionTree maps a Distinct(Union(arms)) pipeline onto its IR
// subtree. Exactly one of up/sp is set (UCQ vs factorized USCQ).
func annotateUnionTree(op Operator, n *plan.Node, at map[*plan.Node]*plan.ExplainNode, up *UCQPlan, sp *USCQPlan) {
	if n.Op != plan.OpDistinct || len(n.Inputs) != 1 {
		return
	}
	if n.Inputs[0].Op == plan.OpProject {
		// Collapsed single-arm-union shape (plan.Rewrite): the IR has
		// no Union node, but the physical tree keeps its union stage —
		// map the single arm straight onto the projection.
		if up != nil {
			setExplain(at[n], up.EstCard, up.EstCost, op)
		} else {
			setExplain(at[n], sp.EstCard, sp.EstCost, op)
		}
		kids := op.Children()
		if len(kids) != 1 {
			return
		}
		arms := kids[0].Children()
		if len(arms) != 1 {
			return
		}
		if up != nil && len(up.Plans) == 1 {
			annotateArm(arms[0], n.Inputs[0], at, armSteps(up.Plans[0]), up.Plans[0].EstCard, up.Plans[0].EstCost)
		} else if sp != nil && len(sp.Plans) == 1 {
			annotateArm(arms[0], n.Inputs[0], at, scqSteps(sp.Plans[0]), sp.Plans[0].EstCard, sp.Plans[0].EstCost)
		}
		return
	}
	if n.Inputs[0].Op != plan.OpUnion {
		return
	}
	unionIR := n.Inputs[0]
	if up != nil {
		setExplain(at[n], up.EstCard, up.EstCost, op)
	} else {
		setExplain(at[n], sp.EstCard, sp.EstCost, op)
	}
	kids := op.Children()
	if len(kids) != 1 {
		return
	}
	unionOp := kids[0]
	setExplain(at[unionIR], plan.UnknownRows, plan.UnknownRows, unionOp)
	arms := unionOp.Children()
	for i, armOp := range arms {
		if i >= len(unionIR.Inputs) {
			break
		}
		if up != nil && i < len(up.Plans) {
			annotateArm(armOp, unionIR.Inputs[i], at, armSteps(up.Plans[i]), up.Plans[i].EstCard, up.Plans[i].EstCost)
		} else if sp != nil && i < len(sp.Plans) {
			annotateArm(armOp, unionIR.Inputs[i], at, scqSteps(sp.Plans[i]), sp.Plans[i].EstCard, sp.Plans[i].EstCost)
		}
	}
}

// armStep pairs one pipeline position with the body index it resolves
// and its planned output estimate (UnknownRows when the planner does
// not cost steps individually, as for SCQ blocks).
type armStep struct {
	pos     int
	estRows float64
	estCost float64
}

func armSteps(p CQPlan) []armStep {
	out := make([]armStep, len(p.Steps))
	for i, s := range p.Steps {
		out[i] = armStep{pos: s.Atom, estRows: s.EstOut, estCost: s.EstCost}
	}
	return out
}

func scqSteps(p SCQPlan) []armStep {
	out := make([]armStep, len(p.Order))
	for i, b := range p.Order {
		out[i] = armStep{pos: b, estRows: plan.UnknownRows, estCost: plan.UnknownRows}
	}
	return out
}

// annotateArm maps one arm pipeline (project over a scan/filter/join
// chain) onto its IR projection. The chain below the projection holds
// one operator per plan step, bottom-up: the leaf is step 0 when it
// is a scan, or a synthetic singleton source (not a step) otherwise.
func annotateArm(armOp Operator, armIR *plan.Node, at map[*plan.Node]*plan.ExplainNode, steps []armStep, estCard, estCost float64) {
	if armIR.Op != plan.OpProject || len(armIR.Inputs) != 1 {
		return
	}
	setExplain(at[armIR], estCard, estCost, armOp)
	// Walk the single-child chain below the projection.
	var chain []Operator
	kids := armOp.Children()
	for len(kids) == 1 {
		chain = append(chain, kids[0])
		kids = kids[0].Children()
	}
	if len(chain) == 0 {
		return
	}
	if _, ok := chain[len(chain)-1].(*singletonOp); ok {
		chain = chain[:len(chain)-1]
	}
	// chain is top-down; steps are bottom-up.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	byPos := make(map[int]*plan.ExplainNode)
	for _, acc := range plan.AccessLeaves(armIR.Inputs[0]) {
		byPos[acc.Pos] = at[acc]
	}
	var topRows int64 = plan.UnknownRows
	var topEst float64 = plan.UnknownRows
	for k, op := range chain {
		if k >= len(steps) {
			break
		}
		e := byPos[steps[k].pos]
		if e == nil {
			continue
		}
		setExplain(e, steps[k].estRows, steps[k].estCost, op)
		topRows = op.Stats().Rows
		topEst = steps[k].estRows
	}
	// Interior Join/SemiJoin nodes observe the rows flowing into the
	// projection (the full body's output).
	annotateBodyOps(armIR.Inputs[0], at, topEst, topRows)
}

// annotateBodyOps stamps the arm body's Join/SemiJoin nodes with the
// body output figures.
func annotateBodyOps(n *plan.Node, at map[*plan.Node]*plan.ExplainNode, estRows float64, rows int64) {
	if n.Op != plan.OpJoin && n.Op != plan.OpSemiJoin {
		return
	}
	if e := at[n]; e != nil {
		e.EstRows = estRows
		e.ActualRows = rows
	}
	for _, in := range n.Inputs {
		annotateBodyOps(in, at, plan.UnknownRows, plan.UnknownRows)
	}
}

// setExplain records one operator's estimate and observed row count.
func setExplain(e *plan.ExplainNode, estRows, estCost float64, op Operator) {
	if e == nil {
		return
	}
	e.EstRows = estRows
	e.EstCost = estCost
	if op != nil {
		e.ActualRows = op.Stats().Rows
	}
}
