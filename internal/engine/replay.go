package engine

// Replay plumbing for the shard backend's per-shard result cache: a
// Capture tees a live pipeline's output into a Relation as it streams,
// and a RelationSource replays a cached Relation as an operator, so a
// cached shard slots into the same merge tree as a live one.

// relationSourceOp streams a materialized Relation.
type relationSourceOp struct {
	opBase
	rel *Relation
	pos int
}

// NewRelationSource returns an operator that emits rel's rows in
// order. The relation is shared, not copied — callers must treat it as
// immutable for the operator's lifetime.
func NewRelationSource(rel *Relation) Operator {
	return &relationSourceOp{
		opBase: opBase{name: "relation-source", schema: rel.Schema},
		rel:    rel,
	}
}

func (o *relationSourceOp) Open() {
	o.resetStats()
	o.pos = 0
}

func (o *relationSourceOp) Next(out *Batch) bool {
	out.Reset()
	for o.pos < len(o.rel.Rows) && !out.Full() {
		out.Append(o.rel.Rows[o.pos])
		o.pos++
	}
	return o.yield(out)
}

func (o *relationSourceOp) Close() {
	o.closeOnce()
}

func (o *relationSourceOp) Children() []Operator { return nil }

// Capture tees its child's stream into a Relation. Result reports
// whether the stream ran to completion — an interrupted run must not
// be cached as the shard's answer.
type Capture struct {
	opBase
	child    Operator
	rel      *Relation
	complete bool
}

// NewCapture wraps in, recording every batch that flows through.
func NewCapture(in Operator) *Capture {
	return &Capture{
		opBase: opBase{name: "capture", schema: in.Schema()},
		child:  in,
		rel:    &Relation{Schema: in.Schema()},
	}
}

func (o *Capture) Open() {
	o.resetStats()
	o.complete = false
	o.rel = &Relation{Schema: o.schema}
	o.child.Open()
}

func (o *Capture) Next(out *Batch) bool {
	if !o.child.Next(out) {
		o.complete = true
		return false
	}
	// Copy the rows out of the batch — the caller recycles it.
	for i := 0; i < out.Len(); i++ {
		row := make([]int64, out.Width())
		copy(row, out.Row(i))
		o.rel.Rows = append(o.rel.Rows, row)
	}
	return o.yield(out)
}

func (o *Capture) Close() {
	if !o.closeOnce() {
		return
	}
	o.child.Close()
}

func (o *Capture) Children() []Operator { return []Operator{o.child} }

// Result returns the captured relation and whether the child stream
// was drained to completion.
func (o *Capture) Result() (*Relation, bool) { return o.rel, o.complete }
