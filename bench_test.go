// Benchmarks regenerating the paper's evaluation artifacts (Section 6).
// One top-level benchmark per table/figure, with sub-benchmarks per
// query × strategy so `go test -bench=.` prints the same series the
// paper plots:
//
//	BenchmarkFigure2    — Fig. 2: Postgres profile, simple layout
//	BenchmarkFigure3    — Fig. 3: DB2 profile, simple + RDF layouts
//	BenchmarkTable6     — Tab. 6: search-space exploration for A3–A6
//	BenchmarkStats      — §2.3/6.1: CQ-to-UCQ reformulation per query
//	BenchmarkTimeLimitedGDL — §6.4: 20 ms-budget GDL
//	BenchmarkGDLSearch  — §6.3: full GDL search per query/estimator
//
// Dataset scale is kept benchmark-friendly (BenchUniversities); use
// cmd/experiments for larger runs.
package repro

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/lubm"
	"repro/internal/reformulate"
	"repro/internal/search"
)

// BenchUniversities scales the benchmark databases.
const BenchUniversities = 4

var (
	envOnce sync.Once
	envPG   *exp.Env // Postgres profile, simple layout
	envDB2  *exp.Env // DB2 profile, simple layout
	envRDF  *exp.Env // DB2 profile, RDF layout
)

func benchEnvs() (*exp.Env, *exp.Env, *exp.Env) {
	envOnce.Do(func() {
		envPG = exp.BuildEnv(BenchUniversities, 1, engine.LayoutSimple, engine.ProfilePostgres())
		envDB2 = exp.BuildEnv(BenchUniversities, 1, engine.LayoutSimple, engine.ProfileDB2())
		envRDF = exp.BuildEnv(BenchUniversities, 1, engine.LayoutRDF, engine.ProfileDB2())
	})
	return envPG, envDB2, envRDF
}

// BenchmarkFigure2 measures evaluation time of each Figure 2 series
// (UCQ, Croot, GDL/RDBMS, GDL/ext) per workload query on the Postgres
// profile and simple layout.
func BenchmarkFigure2(b *testing.B) {
	env, _, _ := benchEnvs()
	for _, q := range lubm.Queries() {
		for _, s := range exp.Figure2Strategies() {
			b.Run(fmt.Sprintf("%s/%s", q.Name, s), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					cell := exp.RunCell(env, q, s)
					if cell.Err != nil {
						b.Fatal(cell.Err)
					}
				}
			})
		}
	}
}

// BenchmarkFigure3 measures the DB2-profile series of Figure 3 on both
// layouts; statement-too-long failures are reported as skips (the
// figure's grey bars), not errors.
func BenchmarkFigure3(b *testing.B) {
	_, envS, envR := benchEnvs()
	for _, q := range lubm.Queries() {
		for _, s := range exp.Figure2Strategies() {
			b.Run(fmt.Sprintf("%s/%s/simple", q.Name, s), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if cell := exp.RunCell(envS, q, s); cell.Err != nil {
						b.Fatal(cell.Err)
					}
				}
			})
		}
		for _, s := range []core.Strategy{core.StrategyUCQ, core.StrategyCroot, core.StrategyGDLRDBMS} {
			b.Run(fmt.Sprintf("%s/%s/rdf", q.Name, s), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					cell := exp.RunCell(envR, q, s)
					if cell.Err != nil {
						var tooLong *engine.StatementTooLongError
						if asErr(cell.Err, &tooLong) {
							b.Skipf("statement too long (%d bytes) — Figure 3 failure bar", tooLong.Size)
						}
						b.Fatal(cell.Err)
					}
				}
			})
		}
	}
}

func asErr(err error, target **engine.StatementTooLongError) bool {
	t, ok := err.(*engine.StatementTooLongError)
	if ok {
		*target = t
	}
	return ok
}

// BenchmarkTable6 measures the cover-space work of Section 6.2: safe
// and generalized cover enumeration plus the GDL search, per star
// query.
func BenchmarkTable6(b *testing.B) {
	env, _, _ := benchEnvs()
	ref := reformulate.New(env.TBox)
	for _, q := range lubm.StarQueries() {
		b.Run(q.Name+"/enumerate", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cover.CountSafeCovers(q, env.TBox, 0)
				cover.CountGeneralizedCovers(q, env.TBox, exp.GqCap)
			}
		})
		b.Run(q.Name+"/gdl", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := search.GDL(q, env.TBox, ref,
					&search.ExtEstimator{Model: env.A.Model}, search.Options{})
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		})
	}
}

// BenchmarkStats measures CQ-to-UCQ reformulation time per workload
// query (the §6.1 reformulation-size discussion; RAPID's job in the
// paper). A fresh Reformulator per iteration defeats memoization.
func BenchmarkStats(b *testing.B) {
	tb := lubm.TBox()
	for _, q := range lubm.Queries() {
		b.Run(q.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ref := reformulate.New(tb)
				if _, err := ref.Reformulate(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTimeLimitedGDL measures the §6.4 variant: GDL stopped after
// 20 ms, per query.
func BenchmarkTimeLimitedGDL(b *testing.B) {
	env, _, _ := benchEnvs()
	ref := reformulate.New(env.TBox)
	est := &search.ExtEstimator{Model: env.A.Model}
	for _, q := range lubm.Queries() {
		b.Run(q.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := search.GDL(q, env.TBox, ref, est, search.Options{TimeLimit: 20 * time.Millisecond})
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		})
	}
}

// BenchmarkGDLSearch measures full GDL per estimator on the largest
// workload query (the §6.3 "GDL ran between 1 ms and 207 ms" numbers).
func BenchmarkGDLSearch(b *testing.B) {
	env, _, _ := benchEnvs()
	ref := reformulate.New(env.TBox)
	q9 := lubm.Queries()[8]
	b.Run("Q9/ext", func(b *testing.B) {
		est := &search.ExtEstimator{Model: env.A.Model}
		for i := 0; i < b.N; i++ {
			search.GDL(q9, env.TBox, ref, est, search.Options{})
		}
	})
	b.Run("Q9/rdbms", func(b *testing.B) {
		est := &search.RDBMSEstimator{DB: env.DB, Profile: env.Profile}
		for i := 0; i < b.N; i++ {
			search.GDL(q9, env.TBox, ref, est, search.Options{})
		}
	})
}

// BenchmarkExecutorPaths reports every UCQ evaluation path the engine
// offers on the full workload: the streaming operator pipeline
// (sequential and parallel union) and the materialize-everything
// reference executor. Run with -benchmem to compare allocations.
func BenchmarkExecutorPaths(b *testing.B) {
	env, _, _ := benchEnvs()
	ref := reformulate.New(env.TBox)
	for _, qi := range []int{1, 2, 8} { // Q2, Q3, Q9
		q := lubm.Queries()[qi]
		plan := engine.PlanUCQ(ref.MustReformulate(q), env.DB, env.Profile)
		b.Run(q.Name+"/streaming", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				engine.ExecUCQ(plan, env.DB)
			}
		})
		b.Run(q.Name+"/streaming-warm", func(b *testing.B) {
			b.ReportAllocs()
			op := engine.CompileUCQ(plan, env.DB, nil, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				engine.Drain(op)
			}
		})
		b.Run(q.Name+"/streaming-parallel", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				engine.Drain(engine.CompileUCQ(plan, env.DB, nil, 4))
			}
		})
		b.Run(q.Name+"/materialized", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				engine.ExecUCQMaterialized(plan, env.DB)
			}
		})
	}
}
