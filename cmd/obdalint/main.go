// Command obdalint runs the repo's custom static-analysis suite (see
// internal/lint): opcontract (operator lifecycle), lockorder (mutex
// discipline), and cowrewrite (plan-IR copy-on-write).
//
// Usage:
//
//	go run ./cmd/obdalint [packages]
//
// Packages are directory patterns relative to the module root ("./..."
// by default). Exit status 1 when findings are reported.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	patterns := os.Args[1:]
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "obdalint: %v\n", err)
		os.Exit(2)
	}
	prog, err := lint.Load(root, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "obdalint: %v\n", err)
		os.Exit(2)
	}
	findings := prog.Run(lint.All...)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
	fmt.Printf("obdalint: %d packages, %d analyzers, no findings\n", len(prog.Pkgs), len(lint.All))
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
