// Command obdaserver serves a DL-LiteR knowledge base over HTTP
// (see internal/server for the API).
//
// Usage:
//
//	obdaserver -tbox ont.dl -abox data.facts -addr :8080 \
//	           -profile postgres -layout simple
//
// Try it:
//
//	curl -s localhost:8080/stats
//	curl -s -X POST localhost:8080/query \
//	     -d '{"query": "q(x) <- PhDStudent(x)", "strategy": "gdl-ext"}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dllite"
	"repro/internal/engine"
	"repro/internal/server"
)

func main() {
	var (
		tboxPath    = flag.String("tbox", "", "path to the TBox file (required)")
		aboxPath    = flag.String("abox", "", "path to the ABox file (required)")
		addr        = flag.String("addr", ":8080", "listen address")
		profileName = flag.String("profile", "postgres", "engine profile: postgres or db2")
		layoutName  = flag.String("layout", "simple", "data layout: simple or rdf")
		backendName = flag.String("backend", "native", "default execution backend: native, sql, or shard (requests may override per-query)")
		shards      = flag.Int("shards", 0, "shard backend fan-out (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *tboxPath == "" || *aboxPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	tf, err := os.Open(*tboxPath)
	fatal(err)
	tb, err := dllite.ParseTBox(tf)
	tf.Close()
	fatal(err)
	af, err := os.Open(*aboxPath)
	fatal(err)
	ab, err := dllite.ParseABox(af)
	af.Close()
	fatal(err)

	layout := engine.LayoutSimple
	if strings.EqualFold(*layoutName, "rdf") {
		layout = engine.LayoutRDF
	}
	prof := engine.ProfilePostgres()
	if strings.EqualFold(*profileName, "db2") {
		prof = engine.ProfileDB2()
	}
	db := engine.NewDB(layout)
	db.LoadABox(ab)
	a := core.New(tb, db, prof)
	def := strings.ToLower(*backendName)
	if def == "" {
		def = "native"
	}
	a.Backend, err = core.NewBackendByName(def, db, prof, *shards)
	fatal(err)
	log.Printf("obdaserver: %d facts, %d axioms, %s, %s profile, %s backend, listening on %s",
		db.NumFacts(), tb.NumConstraints(), layout, prof.Name, a.Backend.Name(), *addr)
	srv := server.NewWithOptions(a, server.Options{DefaultBackend: def, Shards: *shards})
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "obdaserver: %v\n", err)
		os.Exit(1)
	}
}
