// Command experiments regenerates every table and figure of the
// paper's evaluation (Section 6) on scaled LUBM∃ databases. See the
// per-experiment index in DESIGN.md and the recorded outputs in
// EXPERIMENTS.md.
//
// Usage:
//
//	experiments -all                 # everything, both scales
//	experiments -fig2 -scale 8       # Figure 2 on an 8-university DB
//	experiments -table6 -stats -timelimited -gcov
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/engine"
	"repro/internal/exp"
)

func main() {
	var (
		all         = flag.Bool("all", false, "run every experiment")
		fig2        = flag.Bool("fig2", false, "Figure 2: Postgres profile, simple layout")
		fig3        = flag.Bool("fig3", false, "Figure 3: DB2 profile, simple + RDF layouts")
		table6      = flag.Bool("table6", false, "Table 6: search-space sizes for A3–A6")
		stats       = flag.Bool("stats", false, "Sections 2.3/6.1: reformulation statistics")
		timelimited = flag.Bool("timelimited", false, "Section 6.4: time-limited GDL")
		gcov        = flag.Bool("gcov", false, "Section 6.3: generalized-cover frequency")
		minVsBest   = flag.Bool("minvsbest", false, "Section 2.3: minimal UCQ vs best cover")
		scale1      = flag.Int("scale", 8, "universities for the small dataset (LUBM∃ 15M analogue)")
		scale2      = flag.Int("scale2", 32, "universities for the large dataset (LUBM∃ 100M analogue)")
		bothScales  = flag.Bool("both-scales", false, "run figures on both dataset scales")
		seed        = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()
	if *all {
		*fig2, *fig3, *table6, *stats, *timelimited, *gcov, *minVsBest = true, true, true, true, true, true, true
		*bothScales = true
	}
	if !(*fig2 || *fig3 || *table6 || *stats || *timelimited || *gcov || *minVsBest) {
		flag.Usage()
		os.Exit(2)
	}
	scales := []int{*scale1}
	if *bothScales {
		scales = append(scales, *scale2)
	}

	if *table6 {
		env := exp.BuildEnv(*scale1, *seed, engine.LayoutSimple, engine.ProfilePostgres())
		runTable6(env)
	}
	if *stats {
		env := exp.BuildEnv(*scale1, *seed, engine.LayoutSimple, engine.ProfilePostgres())
		runStats(env)
	}
	for _, sc := range scales {
		if *fig2 {
			fmt.Printf("\n== Figure 2: evaluation time (ms), Postgres profile, simple layout, %d universities ==\n", sc)
			env := exp.BuildEnv(sc, *seed, engine.LayoutSimple, engine.ProfilePostgres())
			fmt.Printf("(%d facts)\n", env.DB.NumFacts())
			renderCells(exp.RunFigure2(env))
		}
		if *fig3 {
			fmt.Printf("\n== Figure 3: evaluation time (ms), DB2 profile, simple + RDF layouts, %d universities ==\n", sc)
			envS := exp.BuildEnv(sc, *seed, engine.LayoutSimple, engine.ProfileDB2())
			envR := exp.BuildEnv(sc, *seed, engine.LayoutRDF, engine.ProfileDB2())
			fmt.Printf("(%d facts)\n", envS.DB.NumFacts())
			renderCells(exp.RunFigure3(envS, envR))
		}
	}
	if *timelimited {
		env := exp.BuildEnv(*scale1, *seed, engine.LayoutSimple, engine.ProfilePostgres())
		runTimeLimited(env)
	}
	if *gcov {
		env := exp.BuildEnv(*scale1, *seed, engine.LayoutSimple, engine.ProfilePostgres())
		runGCov(env)
	}
	if *minVsBest {
		env := exp.BuildEnv(*scale2, *seed, engine.LayoutSimple, engine.ProfilePostgres())
		runMinVsBest(env)
	}
}

func runMinVsBest(env *exp.Env) {
	fmt.Println("\n== Minimal UCQ vs best cover (Section 2.3) ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "query\t|minUCQ|\tminimize(ms)\tmin eval(ms)\tbest eval(ms)\tspeedup(incl. minimize)\tsame answers")
	for _, r := range exp.RunMinVsBest(env) {
		speedup := 0.0
		if r.BestTime > 0 {
			speedup = float64(r.MinUCQTime+r.MinimizeTime) / float64(r.BestTime)
		}
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%.1f\t%.1f\t%.1fx\t%v\n",
			r.Query, r.MinUCQSize, ms(r.MinimizeTime), ms(r.MinUCQTime), ms(r.BestTime), speedup, r.SameAnswers)
	}
	w.Flush()
}

func renderCells(cells []exp.Cell) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "query\tseries\teval(ms)\tsearch(ms)\tanswers\tdisjuncts\tfrags\tsql(bytes)\tstatus")
	for _, c := range cells {
		status := "ok"
		if c.Err != nil {
			status = "ERROR: " + c.Err.Error()
			if len(status) > 60 {
				status = status[:60] + "…"
			}
		}
		fmt.Fprintf(w, "%s\t%s\t%.1f\t%.1f\t%d\t%d\t%d\t%d\t%s\n",
			c.Query, c.Label(), ms(c.EvalTime), ms(c.SearchTime),
			c.Answers, c.Disjuncts, c.Fragments, c.SQLSize, status)
	}
	w.Flush()
}

func runTable6(env *exp.Env) {
	fmt.Println("\n== Table 6: search-space sizes for the star queries A3–A6 ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "query\tatoms\t|Lq|\t|Gq|\tGDL explored Lq\tGDL explored Gq\tGDL time(ms)")
	for _, r := range exp.RunTable6(env) {
		gq := fmt.Sprintf("%d", r.Gq)
		if r.GqCapped {
			gq = "> " + fmt.Sprintf("%d", r.Gq-1)
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%s\t%d\t%d\t%.1f\n",
			r.Query, r.Atoms, r.Lq, gq, r.GDLLq, r.GDLGq, ms(r.GDLElapsed))
	}
	w.Flush()
}

func runStats(env *exp.Env) {
	fmt.Println("\n== Reformulation statistics (Sections 2.3 and 6.1) ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "query\tatoms\t|UCQ|\t|minUCQ|\t|USCQ|\tSQL simple(B)\tSQL RDF(B)\tRDF>limit\treform(ms)")
	rows := exp.RunStats(env, true)
	totalAtoms, totalUCQ := 0, 0
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%v\t%.1f\n",
			r.Query, r.Atoms, r.UCQSize, r.MinUCQSize, r.USCQSize,
			r.SQLSimple, r.SQLRDF, r.RDFTooLong, ms(r.ReformSimple))
		totalAtoms += r.Atoms
		totalUCQ += r.UCQSize
	}
	w.Flush()
	fmt.Printf("avg atoms %.2f, avg |UCQ| %.1f (paper: 5.77 and 290.2)\n",
		float64(totalAtoms)/float64(len(rows)), float64(totalUCQ)/float64(len(rows)))
}

func runTimeLimited(env *exp.Env) {
	fmt.Println("\n== Time-limited GDL at 20ms vs full GDL (Section 6.4) ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "query\tfull cost\tfull(ms)\tlimited cost\tlimited(ms)\tsame cover")
	for _, r := range exp.RunTimeLimited(env, 20*time.Millisecond) {
		fmt.Fprintf(w, "%s\t%.0f\t%.1f\t%.0f\t%.1f\t%v\n",
			r.Query, r.FullCost, ms(r.FullTime), r.LimitedCost, ms(r.LimitedTime), r.SameCover)
	}
	w.Flush()
}

func runGCov(env *exp.Env) {
	fmt.Println("\n== Generalized covers picked by GDL (Section 6.3) ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "query\tGDL/ext generalized\tGDL/RDBMS generalized")
	ext, rdbms := 0, 0
	rows := exp.RunGCov(env)
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%v\t%v\n", r.Query, r.ExtGeneralized, r.RDBMSGenerali)
		if r.ExtGeneralized {
			ext++
		}
		if r.RDBMSGenerali {
			rdbms++
		}
	}
	w.Flush()
	fmt.Printf("ext: %d/%d, RDBMS: %d/%d\n", ext, len(rows), rdbms, len(rows))
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
