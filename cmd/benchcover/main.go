// Command benchcover runs the cover-execution benchmark matrix
// programmatically (testing.Benchmark) and writes the series to
// BENCH_cover.json: materialized vs streaming hash-join execution of
// multi-fragment root covers at 1/2/4/8 workers, plus the repeated
// query with the answer cache on and off.
//
// Usage:
//
//	benchcover                      # BENCH_cover.json in the cwd
//	benchcover -o out.json -scale 8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/lubm"
	"repro/internal/reformulate"
)

// Entry is one benchmark series point.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

func record(out *[]Entry, name string, fn func(b *testing.B)) {
	r := testing.Benchmark(fn)
	e := Entry{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	*out = append(*out, e)
	fmt.Printf("%-40s %10d iter %14.0f ns/op %10d B/op %8d allocs/op\n",
		e.Name, e.Iterations, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
}

func main() {
	var (
		out   = flag.String("o", "BENCH_cover.json", "output file")
		scale = flag.Int("scale", 4, "universities in the generated database")
		seed  = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	env := exp.BuildEnv(*scale, *seed, engine.LayoutSimple, engine.ProfilePostgres())
	ref := reformulate.New(env.TBox)
	var entries []Entry

	for _, qi := range []int{2, 8} { // Q3, Q9
		q := lubm.Queries()[qi]
		c := cover.RootCover(q, env.TBox)
		j, err := c.ReformulateJUCQ(ref)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcover:", err)
			os.Exit(1)
		}
		plan := engine.PlanJUCQ(j, env.DB, env.Profile)
		record(&entries, q.Name+"/materialized", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				engine.ExecJUCQMaterialized(plan, env.DB)
			}
		})
		for _, workers := range []int{1, 2, 4, 8} {
			record(&entries, fmt.Sprintf("%s/streaming-w%d", q.Name, workers), func(b *testing.B) {
				b.ReportAllocs()
				op := engine.CompileJUCQ(plan, env.DB, nil, workers)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					engine.Drain(op)
				}
			})
		}
	}

	q9 := lubm.Queries()[8]
	for _, mode := range []string{"cached", "uncached"} {
		record(&entries, "Q9/gdl-ext/"+mode, func(b *testing.B) {
			b.ReportAllocs()
			a := core.New(env.TBox, env.DB, env.Profile)
			if mode == "uncached" {
				a.Cache = nil
			}
			if _, err := a.Answer(q9, core.StrategyGDLExt); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.Answer(q9, core.StrategyGDLExt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcover:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchcover:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}
