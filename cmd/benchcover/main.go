// Command benchcover runs the cover-execution benchmark matrix
// programmatically (testing.Benchmark) and writes the series to
// BENCH_cover.json: materialized vs streaming hash-join execution of
// multi-fragment root covers at 1/2/4/8 workers, plus the repeated
// query with the answer cache on and off. It also writes
// BENCH_shard.json: the shard backend at 1/2/4/8 shards against the
// serial native baseline, with the speedup and the GOMAXPROCS the run
// saw (sharded speedup needs cores to spread over).
//
// Usage:
//
//	benchcover                      # BENCH_cover.json + BENCH_shard.json
//	benchcover -o out.json -shard-o shard.json -scale 8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/lubm"
	"repro/internal/plan"
	"repro/internal/reformulate"
	"repro/internal/shard"
)

// Entry is one benchmark series point.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

func record(out *[]Entry, name string, fn func(b *testing.B)) {
	r := testing.Benchmark(fn)
	e := Entry{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	*out = append(*out, e)
	fmt.Printf("%-40s %10d iter %14.0f ns/op %10d B/op %8d allocs/op\n",
		e.Name, e.Iterations, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
}

// ShardEntry is one point of the BENCH_shard.json series: the shard
// backend at a given fan-out against the serial native baseline on the
// same plan. Speedup > 1 needs cores to spread over — GoMaxProcs
// records how many the run had.
type ShardEntry struct {
	Query      string  `json:"query"`
	Shards     int     `json:"shards"` // 0 = the native baseline
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp int64   `json:"bytes_per_op"`
	Speedup    float64 `json:"speedup_vs_native"`
	GoMaxProcs int     `json:"gomaxprocs"`
	// Warning is set when the run cannot show what the series is for
	// (e.g. a single-core run cannot show parallel speedup).
	Warning string `json:"warning,omitempty"`
}

// shardWarning qualifies a shard series point measured without cores
// to spread over.
func shardWarning() string {
	if runtime.GOMAXPROCS(0) == 1 {
		return "single-core run (GOMAXPROCS=1): the shard series measures partition overhead, not parallel speedup"
	}
	return ""
}

// shardSeries measures the native serial baseline and the shard
// backend at 1/2/4/8 shards over the workload plans.
func shardSeries(env *exp.Env) ([]ShardEntry, error) {
	ref := reformulate.New(env.TBox)
	var series []ShardEntry
	for _, qi := range []int{2, 8} { // Q3, Q9
		q := lubm.Queries()[qi]
		c := cover.RootCover(q, env.TBox)
		j, err := c.ReformulateJUCQ(ref)
		if err != nil {
			return nil, err
		}
		ir := plan.Rewrite(plan.FromJUCQ(j))
		measure := func(b plan.Backend, workers int) (float64, int64, error) {
			exec, err := b.Compile(ir)
			if err != nil {
				return 0, 0, err
			}
			r := testing.Benchmark(func(tb *testing.B) {
				tb.ReportAllocs()
				for i := 0; i < tb.N; i++ {
					if _, err := exec.Run(workers); err != nil {
						tb.Fatal(err)
					}
				}
			})
			return float64(r.T.Nanoseconds()) / float64(r.N), r.AllocedBytesPerOp(), nil
		}
		baseNs, baseBytes, err := measure(engine.NewBackend(env.DB, env.Profile), 1)
		if err != nil {
			return nil, err
		}
		series = append(series, ShardEntry{
			Query: q.Name, Shards: 0, NsPerOp: baseNs, BytesPerOp: baseBytes,
			Speedup: 1, GoMaxProcs: runtime.GOMAXPROCS(0), Warning: shardWarning(),
		})
		fmt.Printf("%-24s %14.0f ns/op %10d B/op  (native baseline)\n", q.Name+"/native", baseNs, baseBytes)
		for _, n := range []int{1, 2, 4, 8} {
			sb, err := shard.New(env.DB, env.Profile, n)
			if err != nil {
				return nil, err
			}
			ns, bytes, err := measure(sb, n)
			if err != nil {
				return nil, err
			}
			series = append(series, ShardEntry{
				Query: q.Name, Shards: n, NsPerOp: ns, BytesPerOp: bytes,
				Speedup: baseNs / ns, GoMaxProcs: runtime.GOMAXPROCS(0), Warning: shardWarning(),
			})
			fmt.Printf("%-24s %14.0f ns/op %10d B/op  %5.2fx vs native\n",
				fmt.Sprintf("%s/shard-n%d", q.Name, n), ns, bytes, baseNs/ns)
		}
	}
	return series, nil
}

func main() {
	var (
		out      = flag.String("o", "BENCH_cover.json", "output file")
		shardOut = flag.String("shard-o", "BENCH_shard.json", "shard series output file")
		scale    = flag.Int("scale", 4, "universities in the generated database")
		seed     = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	env := exp.BuildEnv(*scale, *seed, engine.LayoutSimple, engine.ProfilePostgres())
	ref := reformulate.New(env.TBox)
	var entries []Entry

	for _, qi := range []int{2, 8} { // Q3, Q9
		q := lubm.Queries()[qi]
		c := cover.RootCover(q, env.TBox)
		j, err := c.ReformulateJUCQ(ref)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcover:", err)
			os.Exit(1)
		}
		plan := engine.PlanJUCQ(j, env.DB, env.Profile)
		record(&entries, q.Name+"/materialized", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				engine.ExecJUCQMaterialized(plan, env.DB)
			}
		})
		for _, workers := range []int{1, 2, 4, 8} {
			record(&entries, fmt.Sprintf("%s/streaming-w%d", q.Name, workers), func(b *testing.B) {
				b.ReportAllocs()
				op := engine.CompileJUCQ(plan, env.DB, nil, workers)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					engine.Drain(op)
				}
			})
		}
	}

	q9 := lubm.Queries()[8]
	for _, mode := range []string{"cached", "uncached"} {
		record(&entries, "Q9/gdl-ext/"+mode, func(b *testing.B) {
			b.ReportAllocs()
			a := core.New(env.TBox, env.DB, env.Profile)
			if mode == "uncached" {
				a.Cache = nil
			}
			if _, err := a.Answer(q9, core.StrategyGDLExt); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.Answer(q9, core.StrategyGDLExt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	writeJSON(*out, entries)

	series, err := shardSeries(env)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcover:", err)
		os.Exit(1)
	}
	writeJSON(*shardOut, series)
}

func writeJSON(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcover:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchcover:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", path)
}
