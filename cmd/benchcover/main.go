// Command benchcover runs the cover-execution benchmark matrix
// programmatically (testing.Benchmark) and writes the series to
// BENCH_cover.json: materialized vs streaming hash-join execution of
// multi-fragment root covers at 1/2/4/8 workers, plus the repeated
// query with the answer cache on and off. It also writes
// BENCH_shard.json: the shard backend at 1/2/4/8 shards against the
// serial native baseline, with the speedup and the GOMAXPROCS the run
// saw (sharded speedup needs cores to spread over).
//
// The shard series includes a hand-built shuffle cover (QShuffle:
// memberOf(x, d) joined with Department(d) on d, which no shard
// partitioning aligns first-position) so the exchange path is measured
// alongside the aligned plans, plus one warm-cache point showing the
// shard answer cache replaying the same plan.
//
// Usage:
//
//	benchcover                      # BENCH_cover.json + BENCH_shard.json
//	benchcover -o out.json -shard-o shard.json -scale 8
//	benchcover -short -shard        # CI smoke: scale-1 DB, shard series only
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/lubm"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/reformulate"
	"repro/internal/shard"
)

// Entry is one benchmark series point.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

func record(out *[]Entry, name string, fn func(b *testing.B)) {
	r := testing.Benchmark(fn)
	e := Entry{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	*out = append(*out, e)
	fmt.Printf("%-40s %10d iter %14.0f ns/op %10d B/op %8d allocs/op\n",
		e.Name, e.Iterations, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
}

// ShardEntry is one point of the BENCH_shard.json series: the shard
// backend at a given fan-out against the serial native baseline on the
// same plan. Speedup > 1 needs cores to spread over — GoMaxProcs
// records how many the run had.
type ShardEntry struct {
	Query      string  `json:"query"`
	Shards     int     `json:"shards"` // 0 = the native baseline
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp int64   `json:"bytes_per_op"`
	Speedup    float64 `json:"speedup_vs_native"`
	GoMaxProcs int     `json:"gomaxprocs"`
	// Cached marks the warm-cache point: the shard answer cache replays
	// the per-shard results instead of re-executing. All other shard
	// points purge the cache every iteration.
	Cached bool `json:"cached,omitempty"`
	// Warning is set when the run cannot show what the series is for
	// (e.g. a single-core run cannot show parallel speedup).
	Warning string `json:"warning,omitempty"`
}

// shardWarning qualifies a shard series point measured without cores
// to spread over.
func shardWarning() string {
	if runtime.GOMAXPROCS(0) == 1 {
		return "single-core run (GOMAXPROCS=1): the shard series measures partition overhead, not parallel speedup"
	}
	return ""
}

// shuffleJUCQ builds the two-fragment cover whose join key no shard
// partitioning aligns first-position: memberOf(x, d) binds d in object
// position, Department(d) in subject position, so a hash-partitioned
// run must repartition the memberOf rows through the exchange to join
// shard-locally on d.
func shuffleJUCQ() (query.JUCQ, error) {
	f0, err := query.ParseCQ("q(x, d) <- memberOf(x, d)")
	if err != nil {
		return query.JUCQ{}, err
	}
	f1, err := query.ParseCQ("q(d) <- Department(d)")
	if err != nil {
		return query.JUCQ{}, err
	}
	return query.JUCQ{
		Name: "QShuffle",
		Head: f0.Head,
		Subs: []query.UCQ{
			{Name: "f0", Disjuncts: []query.CQ{f0}},
			{Name: "f1", Disjuncts: []query.CQ{f1}},
		},
	}, nil
}

// shardCase is one plan of the shard series.
type shardCase struct {
	name string
	ir   *plan.Node
}

// shardCases assembles the shard-series workload: the Q3/Q9 cover
// plans (aligned, skipped in short mode) plus the QShuffle exchange
// plan.
func shardCases(env *exp.Env, short bool) ([]shardCase, error) {
	var cases []shardCase
	if !short {
		ref := reformulate.New(env.TBox)
		for _, qi := range []int{2, 8} { // Q3, Q9
			q := lubm.Queries()[qi]
			c := cover.RootCover(q, env.TBox)
			j, err := c.ReformulateJUCQ(ref)
			if err != nil {
				return nil, err
			}
			cases = append(cases, shardCase{q.Name, plan.Rewrite(plan.FromJUCQ(j))})
		}
	}
	j, err := shuffleJUCQ()
	if err != nil {
		return nil, err
	}
	cases = append(cases, shardCase{j.Name, plan.Rewrite(plan.FromJUCQ(j))})
	return cases, nil
}

// shardSeries measures the native serial baseline and the shard
// backend over the workload plans (fan-outs 1/2/4/8, or 1/2 in short
// mode). Shard iterations purge the backend's answer cache so the
// numbers measure execution, not replay; one extra warm-cache point at
// the largest fan-out shows what the cache saves.
func shardSeries(env *exp.Env, short bool) ([]ShardEntry, error) {
	cases, err := shardCases(env, short)
	if err != nil {
		return nil, err
	}
	fanouts := []int{1, 2, 4, 8}
	if short {
		fanouts = []int{1, 2}
	}
	var series []ShardEntry
	for _, c := range cases {
		ir := c.ir
		measure := func(b plan.Backend, workers int, purgeEach bool) (float64, int64, error) {
			exec, err := b.Compile(ir)
			if err != nil {
				return 0, 0, err
			}
			purger, _ := b.(interface{ PurgeCache() })
			r := testing.Benchmark(func(tb *testing.B) {
				tb.ReportAllocs()
				for i := 0; i < tb.N; i++ {
					if purgeEach && purger != nil {
						purger.PurgeCache()
					}
					if _, err := exec.Run(workers); err != nil {
						tb.Fatal(err)
					}
				}
			})
			return float64(r.T.Nanoseconds()) / float64(r.N), r.AllocedBytesPerOp(), nil
		}
		baseNs, baseBytes, err := measure(engine.NewBackend(env.DB, env.Profile), 1, false)
		if err != nil {
			return nil, err
		}
		series = append(series, ShardEntry{
			Query: c.name, Shards: 0, NsPerOp: baseNs, BytesPerOp: baseBytes,
			Speedup: 1, GoMaxProcs: runtime.GOMAXPROCS(0), Warning: shardWarning(),
		})
		fmt.Printf("%-24s %14.0f ns/op %10d B/op  (native baseline)\n", c.name+"/native", baseNs, baseBytes)
		for _, n := range fanouts {
			sb, err := shard.New(env.DB, env.Profile, n)
			if err != nil {
				return nil, err
			}
			ns, bytes, err := measure(sb, n, true)
			if err != nil {
				return nil, err
			}
			series = append(series, ShardEntry{
				Query: c.name, Shards: n, NsPerOp: ns, BytesPerOp: bytes,
				Speedup: baseNs / ns, GoMaxProcs: runtime.GOMAXPROCS(0), Warning: shardWarning(),
			})
			fmt.Printf("%-24s %14.0f ns/op %10d B/op  %5.2fx vs native\n",
				fmt.Sprintf("%s/shard-n%d", c.name, n), ns, bytes, baseNs/ns)
			if n == fanouts[len(fanouts)-1] {
				cns, cbytes, err := measure(sb, n, false)
				if err != nil {
					return nil, err
				}
				series = append(series, ShardEntry{
					Query: c.name, Shards: n, NsPerOp: cns, BytesPerOp: cbytes, Cached: true,
					Speedup: baseNs / cns, GoMaxProcs: runtime.GOMAXPROCS(0), Warning: shardWarning(),
				})
				fmt.Printf("%-24s %14.0f ns/op %10d B/op  %5.2fx vs native (warm cache)\n",
					fmt.Sprintf("%s/shard-n%d-cached", c.name, n), cns, cbytes, baseNs/cns)
			}
		}
	}
	return series, nil
}

func main() {
	var (
		out       = flag.String("o", "BENCH_cover.json", "output file")
		shardOut  = flag.String("shard-o", "BENCH_shard.json", "shard series output file")
		scale     = flag.Int("scale", 4, "universities in the generated database")
		seed      = flag.Int64("seed", 1, "generator seed")
		short     = flag.Bool("short", false, "smoke mode: scale-1 database, QShuffle only, shard fan-outs 1 and 2")
		shardOnly = flag.Bool("shard", false, "run only the shard series (skip the cover matrix)")
	)
	flag.Parse()
	if *short {
		*scale = 1
	}

	env := exp.BuildEnv(*scale, *seed, engine.LayoutSimple, engine.ProfilePostgres())
	if *shardOnly {
		series, err := shardSeries(env, *short)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcover:", err)
			os.Exit(1)
		}
		writeJSON(*shardOut, series)
		return
	}
	ref := reformulate.New(env.TBox)
	var entries []Entry

	for _, qi := range []int{2, 8} { // Q3, Q9
		q := lubm.Queries()[qi]
		c := cover.RootCover(q, env.TBox)
		j, err := c.ReformulateJUCQ(ref)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcover:", err)
			os.Exit(1)
		}
		plan := engine.PlanJUCQ(j, env.DB, env.Profile)
		record(&entries, q.Name+"/materialized", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				engine.ExecJUCQMaterialized(plan, env.DB)
			}
		})
		for _, workers := range []int{1, 2, 4, 8} {
			record(&entries, fmt.Sprintf("%s/streaming-w%d", q.Name, workers), func(b *testing.B) {
				b.ReportAllocs()
				op := engine.CompileJUCQ(plan, env.DB, nil, workers)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					engine.Drain(op)
				}
			})
		}
	}

	q9 := lubm.Queries()[8]
	for _, mode := range []string{"cached", "uncached"} {
		record(&entries, "Q9/gdl-ext/"+mode, func(b *testing.B) {
			b.ReportAllocs()
			a := core.New(env.TBox, env.DB, env.Profile)
			if mode == "uncached" {
				a.Cache = nil
			}
			if _, err := a.Answer(q9, core.StrategyGDLExt); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.Answer(q9, core.StrategyGDLExt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	writeJSON(*out, entries)

	series, err := shardSeries(env, *short)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcover:", err)
		os.Exit(1)
	}
	writeJSON(*shardOut, series)
}

func writeJSON(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcover:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchcover:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", path)
}
