// Command lubmgen emits a LUBM∃ ABox (one fact per line, the format
// cmd/obda's -abox flag reads) and the benchmark TBox.
//
// Usage:
//
//	lubmgen -universities 8 -seed 1 -o data.facts
//	lubmgen -tbox -o ontology.dl
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/dllite"
	"repro/internal/lubm"
	"repro/internal/ntriples"
)

type writerSink struct {
	w     *bufio.Writer
	facts int
}

func (s *writerSink) AddConceptFact(c, ind string) {
	fmt.Fprintf(s.w, "%s(%s)\n", c, ind)
	s.facts++
}

func (s *writerSink) AddRoleFact(r, a, b string) {
	fmt.Fprintf(s.w, "%s(%s, %s)\n", r, a, b)
	s.facts++
}

func main() {
	var (
		universities = flag.Int("universities", 1, "number of universities to generate")
		seed         = flag.Int64("seed", 1, "generator seed")
		out          = flag.String("o", "", "output file (default stdout)")
		tboxOnly     = flag.Bool("tbox", false, "emit the LUBM∃ TBox instead of data")
		format       = flag.String("format", "facts", "output format: facts or nt (N-Triples)")
		base         = flag.String("base", ntriples.DefaultBase, "base IRI for -format nt")
	)
	flag.Parse()

	var f *os.File = os.Stdout
	if *out != "" {
		var err error
		f, err = os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lubmgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
	}
	w := bufio.NewWriter(f)
	defer w.Flush()

	if *tboxOnly {
		tb := lubm.TBox()
		for _, ax := range tb.Axioms {
			fmt.Fprintln(w, dllite.FormatAxiom(ax))
		}
		fmt.Fprintf(os.Stderr, "lubmgen: %d axioms (%d concepts, %d roles)\n",
			tb.NumConstraints(), len(tb.ConceptNames()), len(tb.RoleNames()))
		return
	}
	if *format == "nt" {
		ab := lubm.GenerateABox(lubm.Config{Universities: *universities, Seed: *seed})
		if err := ntriples.Write(w, ab, ntriples.Options{Base: *base}); err != nil {
			fmt.Fprintf(os.Stderr, "lubmgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "lubmgen: %d triples for %d universities (seed %d)\n",
			ab.Size(), *universities, *seed)
		return
	}
	sink := &writerSink{w: w}
	lubm.Generate(lubm.Config{Universities: *universities, Seed: *seed}, sink)
	fmt.Fprintf(os.Stderr, "lubmgen: %d facts for %d universities (seed %d)\n",
		sink.facts, *universities, *seed)
}
