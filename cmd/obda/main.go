// Command obda answers a conjunctive query over a DL-LiteR knowledge
// base through the cover-based reformulation pipeline.
//
// Usage:
//
//	obda -tbox ontology.dl -abox data.facts \
//	     -query "q(x) <- PhDStudent(x), worksWith(y, x)" \
//	     -strategy gdl-ext -profile postgres -layout simple [-sql] [-explain]
//
// TBox syntax (one axiom per line): see dllite.ParseTBox. ABox syntax:
// one fact per line, A(a) or R(a,b).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dllite"
	"repro/internal/engine"
	"repro/internal/ntriples"
	"repro/internal/query"
	"repro/internal/sqlgen"
)

func main() {
	var (
		tboxPath    = flag.String("tbox", "", "path to the TBox file (required)")
		aboxPath    = flag.String("abox", "", "path to the ABox file (required)")
		queryText   = flag.String("query", "", "conjunctive query, e.g. \"q(x) <- A(x), R(x, y)\" (required)")
		strategy    = flag.String("strategy", "gdl-ext", "one of: ucq, uscq, croot, gdl-rdbms, gdl-ext, edl")
		profileName = flag.String("profile", "postgres", "engine profile: postgres or db2")
		layoutName  = flag.String("layout", "simple", "data layout: simple or rdf")
		showSQL     = flag.Bool("sql", false, "print the generated SQL")
		explain     = flag.Bool("explain", false, "print cover, fragment and cost details")
		consistency = flag.Bool("check-consistency", false, "verify T-consistency before answering")
		viaSQL      = flag.Bool("via-sql", false, "execute through the generated SQL text (alias for -backend sql)")
		backendName = flag.String("backend", "native", "execution backend: native, sql, or shard")
		shards      = flag.Int("shards", 0, "shard backend fan-out (0 = GOMAXPROCS; -backend shard only)")
		workers     = flag.Int("workers", 0, "evaluation worker budget (0 = sequential)")
		aboxFormat  = flag.String("abox-format", "facts", "ABox file format: facts or nt (N-Triples)")
	)
	flag.Parse()
	if *tboxPath == "" || *aboxPath == "" || *queryText == "" {
		flag.Usage()
		os.Exit(2)
	}
	tb, err := parseTBoxFile(*tboxPath)
	fatal(err)
	ab, err := parseABoxFile(*aboxPath, *aboxFormat)
	fatal(err)

	layout := engine.LayoutSimple
	if strings.EqualFold(*layoutName, "rdf") {
		layout = engine.LayoutRDF
	}
	prof := engine.ProfilePostgres()
	if strings.EqualFold(*profileName, "db2") {
		prof = engine.ProfileDB2()
	}
	db := engine.NewDB(layout)
	db.LoadABox(ab)

	q, err := query.ParseCQ(*queryText)
	fatal(err)

	a := core.New(tb, db, prof)
	a.Workers = *workers
	name := strings.ToLower(*backendName)
	if *viaSQL {
		name = "sql"
	}
	a.Backend, err = core.NewBackendByName(name, db, prof, *shards)
	fatal(err)
	if *consistency {
		violations, err := a.CheckConsistency()
		fatal(err)
		for _, v := range violations {
			fmt.Printf("INCONSISTENT: %s violated by %v\n", v.Axiom, v.Witness)
		}
		if len(violations) > 0 {
			os.Exit(1)
		}
		fmt.Println("KB is T-consistent")
	}

	res, err := a.Answer(q, core.Strategy(*strategy))
	if err != nil {
		fmt.Fprintf(os.Stderr, "obda: %v\n", err)
		os.Exit(1)
	}
	if *explain {
		fmt.Printf("strategy:   %s\n", res.Strategy)
		fmt.Printf("cover:      %v\n", res.Cover)
		fmt.Printf("fragments:  %d, disjuncts: %d\n", res.NumFragments, res.NumDisjuncts)
		fmt.Printf("sql size:   %d bytes\n", res.SQLSize)
		fmt.Printf("est. cost:  %.1f\n", res.EstCost)
		fmt.Printf("search:     %v, eval: %v\n", res.SearchTime, res.EvalTime)
		if res.Search != nil {
			fmt.Printf("explored:   %d Lq + %d Gq covers\n",
				res.Search.ExploredLq, res.Search.ExploredGq)
		}
		if res.Explain != nil {
			fmt.Print(res.Explain.Text())
		}
		if cs, ok := a.Backend.(interface{ CacheStats() (hits, misses uint64) }); ok {
			h, m := cs.CacheStats()
			fmt.Printf("shard cache: %d hit(s), %d miss(es)\n", h, m)
		}
	}
	if *showSQL {
		fmt.Println(sqlgen.JUCQ(res.JUCQ, sqlgen.Options{Layout: layout, Pretty: true}))
	}
	for _, t := range res.Tuples {
		fmt.Println(strings.Join(t, "\t"))
	}
	fmt.Fprintf(os.Stderr, "%d answer(s)\n", len(res.Tuples))
}

func parseTBoxFile(path string) (*dllite.TBox, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dllite.ParseTBox(f)
}

func parseABoxFile(path, format string) (*dllite.ABox, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if format == "nt" {
		return ntriples.Read(f, ntriples.Options{})
	}
	return dllite.ParseABox(f)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "obda: %v\n", err)
		os.Exit(1)
	}
}
